#!/bin/sh
# verify.sh — the repo's full verification gate: static checks, a clean
# build, and the entire test suite under the race detector (the concurrent
# server/client paths are only trustworthy -race clean). `make verify` runs
# this; CI should too. The tier-1 subset (build + tests without -race) is
# what ROADMAP.md tracks as the never-regress line.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
echo "verify: OK"
