#!/bin/sh
# verify.sh — the repo's full verification gate: static checks, a clean
# build, and the entire test suite under the race detector (the concurrent
# server/client paths are only trustworthy -race clean). `make verify` runs
# this; CI should too. The tier-1 subset (build + tests without -race) is
# what ROADMAP.md tracks as the never-regress line.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== api compatibility gate =="
# Diff the exported surface of the root package against the checked-in
# snapshot (testdata/api.txt). Also runs as part of the full test pass
# below; re-run explicitly so an accidental API break names itself here.
go test . -count=1 -run TestPublicAPISnapshot
echo "== go test -race =="
go test -race ./...
echo "== chaos / fault-injection (race) =="
# The request-lifecycle suite (deadline propagation, cancel, shed, drain),
# the netsim fault-injection run, the replication fleet suite (failover
# preserving acked ingests, full-sync surviving feed loss), and the
# session-table churn/expiry hammer. Already part of the full -race pass
# above; re-run un-cached and verbose-on-failure so a flake names itself.
go test -race -count=1 -short -run \
	'TestChaos|TestShutdown|TestShedUnderBurst|TestCancelFreesServerSlot|TestDeadlineEnforcedServerSide|TestProxy' \
	./internal/server/ ./internal/netsim/ ./internal/repl/ ./internal/track/
echo "verify: OK"
