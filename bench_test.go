// Benchmarks regenerating each figure of the paper's evaluation (see
// DESIGN.md section 4 for the figure-to-module map and EXPERIMENTS.md for
// paper-vs-measured results). Each benchmark runs one experiment at a
// reduced scale; use cmd/vpbench for the full quick/full-scale runs and the
// printed data series.
//
// The shared corpus and wardriven venues are cached across benchmarks, so
// the first corpus-touching benchmark pays the render+SIFT setup cost.
package visualprint_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"visualprint"
	"visualprint/internal/bench"
)

// benchScale keeps `go test -bench=.` tractable: a small corpus and
// shrunken venues. Shapes (orderings, ratios) are preserved; magnitudes are
// reported by cmd/vpbench at quick/full scale.
func benchScale() bench.Scale {
	return bench.Scale{
		Name: "bench", Scenes: 10, Distractors: 20, QueriesPerScene: 2,
		ImgW: 160, ImgH: 120, VenueShrink: 0.25, LocalizationQueries: 5,
	}
}

func run1(b *testing.B, f func(bench.Scale) (*bench.Experiment, error)) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		e, err := f(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Points) == 0 {
			b.Fatalf("%s produced no data", e.ID)
		}
	}
}

// BenchmarkFig02EncodingFPS regenerates Figure 2 (uplink vs sustainable FPS
// per encoding).
func BenchmarkFig02EncodingFPS(b *testing.B) { run1(b, bench.Fig02EncodingFPS) }

// BenchmarkFig03KeypointCDF regenerates Figure 3 (usable keypoints under
// PNG vs JPEG).
func BenchmarkFig03KeypointCDF(b *testing.B) { run1(b, bench.Fig03KeypointCDF) }

// BenchmarkFig05FeatureRatio regenerates Figure 5 (feature/image size
// ratio).
func BenchmarkFig05FeatureRatio(b *testing.B) { run1(b, bench.Fig05FeatureRatio) }

// BenchmarkFig06DimDominance regenerates Figure 6a (few dimensions dominate
// NN distance).
func BenchmarkFig06DimDominance(b *testing.B) { run1(b, bench.Fig06DimDominance) }

// BenchmarkFig06PCA regenerates Figure 6b (descriptor covariance
// eigenvalue decay).
func BenchmarkFig06PCA(b *testing.B) { run1(b, bench.Fig06PCA) }

// BenchmarkFig13PrecisionRecall regenerates Figure 13 (precision/recall
// CDFs for the five schemes).
func BenchmarkFig13PrecisionRecall(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		ep, er, err := bench.Fig13PrecisionRecall(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(ep.Points) == 0 || len(er.Points) == 0 {
			b.Fatal("fig13 produced no data")
		}
	}
}

// BenchmarkFig14UploadTrace regenerates Figure 14 (cumulative upload,
// VisualPrint vs frames).
func BenchmarkFig14UploadTrace(b *testing.B) { run1(b, bench.Fig14UploadTrace) }

// BenchmarkFig15Memory regenerates Figure 15 (client disk/memory by
// scheme).
func BenchmarkFig15Memory(b *testing.B) { run1(b, bench.Fig15Memory) }

// BenchmarkFig16Latency regenerates Figure 16 (SIFT vs oracle filtering
// latency).
func BenchmarkFig16Latency(b *testing.B) { run1(b, bench.Fig16Latency) }

// BenchmarkFig18Energy regenerates Figure 18 (component power traces).
func BenchmarkFig18Energy(b *testing.B) { run1(b, bench.Fig18Energy) }

// BenchmarkFig19Localization regenerates Figure 19 (3D localization error
// CDFs per venue).
func BenchmarkFig19Localization(b *testing.B) { run1(b, bench.Fig19Localization) }

// BenchmarkFig20AxisError regenerates Figure 20 (error by axis).
func BenchmarkFig20AxisError(b *testing.B) { run1(b, bench.Fig20AxisError) }

// BenchmarkTakeaways regenerates the paper's evaluation-takeaways summary.
func BenchmarkTakeaways(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Takeaways(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no takeaways")
		}
	}
}

// BenchmarkConcurrentQueryThroughput measures multi-client localization
// throughput over the multiplexed v2 protocol, scaling the client count up
// to GOMAXPROCS (see EXPERIMENTS.md for recorded scaling results).
func BenchmarkConcurrentQueryThroughput(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		e, err := bench.QueryThroughput(sc, runtime.GOMAXPROCS(0), 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Points) == 0 {
			b.Fatal("throughput produced no data")
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func runAblation(b *testing.B, f func() (*bench.Experiment, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Points) == 0 {
			b.Fatalf("%s produced no data", e.ID)
		}
	}
}

// BenchmarkAblationVerification: verification Bloom filter on/off.
func BenchmarkAblationVerification(b *testing.B) { runAblation(b, bench.AblationVerification) }

// BenchmarkAblationMultiprobe: multiprobe on/off.
func BenchmarkAblationMultiprobe(b *testing.B) { runAblation(b, bench.AblationMultiprobe) }

// BenchmarkAblationSaturation: counter width sweep.
func BenchmarkAblationSaturation(b *testing.B) { runAblation(b, bench.AblationSaturation) }

// BenchmarkAblationLSHParams: L/M/W sweep around the paper's values.
func BenchmarkAblationLSHParams(b *testing.B) { runAblation(b, bench.AblationLSHParams) }

// BenchmarkAblationICP: map error with/without ICP drift correction.
func BenchmarkAblationICP(b *testing.B) { run1(b, bench.AblationICP) }

// Server-side Locate microbenchmarks (see DESIGN.md "Performance" and
// BENCH_locate.json). The workload is synthetic — no rendering or SIFT —
// so ns/op and allocs/op isolate the query pipeline: LSH candidate
// retrieval, clustering, and the DE pose solve.

var (
	locateWorkloadOnce sync.Once
	locateWorkload     *bench.LocateWorkload
	locateWorkloadErr  error
)

func getLocateWorkload(b *testing.B) *bench.LocateWorkload {
	b.Helper()
	locateWorkloadOnce.Do(func() {
		locateWorkload, locateWorkloadErr = bench.NewLocateWorkload(bench.DefaultLocateWorkload())
	})
	if locateWorkloadErr != nil {
		b.Fatal(locateWorkloadErr)
	}
	return locateWorkload
}

// BenchmarkLocate measures one full server-side localization query
// (200-keypoint fingerprint, ~4k-mapping database, deadline-free solve).
// This is the headline number BENCH_locate.json tracks.
func BenchmarkLocate(b *testing.B) {
	w := getLocateWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocateThroughput measures queries/s over the live TCP protocol at
// 1, 2 and 4 concurrent clients against the same workload.
func BenchmarkLocateThroughput(b *testing.B) {
	w := getLocateWorkload(b)
	for _, clients := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qps, err := w.QPS(clients, 4)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(qps, "queries/s")
			}
		})
	}
}

// Persistence benchmarks (see DESIGN.md "Persistence" and EXPERIMENTS.md).

// persistenceMappings builds a synthetic ingest corpus: descriptor bytes and
// positions only — rendering is not what these benchmarks measure.
func persistenceMappings(n int) []visualprint.Mapping {
	ms := make([]visualprint.Mapping, n)
	for i := range ms {
		for j := range ms[i].Desc {
			ms[i].Desc[j] = byte((i*131 + j*31) % 251)
		}
		ms[i].Pos.X = float64(i%97) * 0.25
		ms[i].Pos.Y = float64(i%13) * 0.2
		ms[i].Pos.Z = float64(i%59) * 0.3
	}
	return ms
}

// BenchmarkIngestThroughputMemory is the in-memory ingest baseline the
// durable variant is compared against.
func BenchmarkIngestThroughputMemory(b *testing.B) {
	benchIngest(b, false)
}

// BenchmarkIngestThroughputDurable measures WAL-backed ingest: every batch
// is logged and fsynced before it is acknowledged.
func BenchmarkIngestThroughputDurable(b *testing.B) {
	benchIngest(b, true)
}

func benchIngest(b *testing.B, durable bool) {
	const batch = 500
	ms := persistenceMappings(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := visualprint.NewServer(visualprint.DefaultServerConfig())
		if err != nil {
			b.Fatal(err)
		}
		if durable {
			if err := srv.OpenData(b.TempDir()); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for k := 0; k < 8; k++ {
			if err := srv.Ingest(ms); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(8*batch), "mappings/op")
}

// BenchmarkColdRecoveryWAL measures a cold start that replays the whole log
// (no snapshot): the worst-case restart.
func BenchmarkColdRecoveryWAL(b *testing.B) { benchColdRecovery(b, false) }

// BenchmarkColdRecoverySnapshot measures a cold start from a compacted
// snapshot with an empty WAL tail: the common restart.
func BenchmarkColdRecoverySnapshot(b *testing.B) { benchColdRecovery(b, true) }

func benchColdRecovery(b *testing.B, compacted bool) {
	dir := b.TempDir()
	srv, err := visualprint.NewServer(visualprint.DefaultServerConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.OpenData(dir); err != nil {
		b.Fatal(err)
	}
	ms := persistenceMappings(500)
	for k := 0; k < 8; k++ {
		if err := srv.Ingest(ms); err != nil {
			b.Fatal(err)
		}
	}
	if compacted {
		if err := srv.Database().Compact(); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	want := srv.Database().Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv2, err := visualprint.NewServer(visualprint.DefaultServerConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := srv2.OpenData(dir); err != nil {
			b.Fatal(err)
		}
		if srv2.Database().Len() != want {
			b.Fatalf("recovered %d mappings, want %d", srv2.Database().Len(), want)
		}
		b.StopTimer()
		if err := srv2.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(want), "mappings/op")
}
