// Benchmarks regenerating each figure of the paper's evaluation (see
// DESIGN.md section 4 for the figure-to-module map and EXPERIMENTS.md for
// paper-vs-measured results). Each benchmark runs one experiment at a
// reduced scale; use cmd/vpbench for the full quick/full-scale runs and the
// printed data series.
//
// The shared corpus and wardriven venues are cached across benchmarks, so
// the first corpus-touching benchmark pays the render+SIFT setup cost.
package visualprint_test

import (
	"runtime"
	"testing"

	"visualprint/internal/bench"
)

// benchScale keeps `go test -bench=.` tractable: a small corpus and
// shrunken venues. Shapes (orderings, ratios) are preserved; magnitudes are
// reported by cmd/vpbench at quick/full scale.
func benchScale() bench.Scale {
	return bench.Scale{
		Name: "bench", Scenes: 10, Distractors: 20, QueriesPerScene: 2,
		ImgW: 160, ImgH: 120, VenueShrink: 0.25, LocalizationQueries: 5,
	}
}

func run1(b *testing.B, f func(bench.Scale) (*bench.Experiment, error)) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		e, err := f(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Points) == 0 {
			b.Fatalf("%s produced no data", e.ID)
		}
	}
}

// BenchmarkFig02EncodingFPS regenerates Figure 2 (uplink vs sustainable FPS
// per encoding).
func BenchmarkFig02EncodingFPS(b *testing.B) { run1(b, bench.Fig02EncodingFPS) }

// BenchmarkFig03KeypointCDF regenerates Figure 3 (usable keypoints under
// PNG vs JPEG).
func BenchmarkFig03KeypointCDF(b *testing.B) { run1(b, bench.Fig03KeypointCDF) }

// BenchmarkFig05FeatureRatio regenerates Figure 5 (feature/image size
// ratio).
func BenchmarkFig05FeatureRatio(b *testing.B) { run1(b, bench.Fig05FeatureRatio) }

// BenchmarkFig06DimDominance regenerates Figure 6a (few dimensions dominate
// NN distance).
func BenchmarkFig06DimDominance(b *testing.B) { run1(b, bench.Fig06DimDominance) }

// BenchmarkFig06PCA regenerates Figure 6b (descriptor covariance
// eigenvalue decay).
func BenchmarkFig06PCA(b *testing.B) { run1(b, bench.Fig06PCA) }

// BenchmarkFig13PrecisionRecall regenerates Figure 13 (precision/recall
// CDFs for the five schemes).
func BenchmarkFig13PrecisionRecall(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		ep, er, err := bench.Fig13PrecisionRecall(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(ep.Points) == 0 || len(er.Points) == 0 {
			b.Fatal("fig13 produced no data")
		}
	}
}

// BenchmarkFig14UploadTrace regenerates Figure 14 (cumulative upload,
// VisualPrint vs frames).
func BenchmarkFig14UploadTrace(b *testing.B) { run1(b, bench.Fig14UploadTrace) }

// BenchmarkFig15Memory regenerates Figure 15 (client disk/memory by
// scheme).
func BenchmarkFig15Memory(b *testing.B) { run1(b, bench.Fig15Memory) }

// BenchmarkFig16Latency regenerates Figure 16 (SIFT vs oracle filtering
// latency).
func BenchmarkFig16Latency(b *testing.B) { run1(b, bench.Fig16Latency) }

// BenchmarkFig18Energy regenerates Figure 18 (component power traces).
func BenchmarkFig18Energy(b *testing.B) { run1(b, bench.Fig18Energy) }

// BenchmarkFig19Localization regenerates Figure 19 (3D localization error
// CDFs per venue).
func BenchmarkFig19Localization(b *testing.B) { run1(b, bench.Fig19Localization) }

// BenchmarkFig20AxisError regenerates Figure 20 (error by axis).
func BenchmarkFig20AxisError(b *testing.B) { run1(b, bench.Fig20AxisError) }

// BenchmarkTakeaways regenerates the paper's evaluation-takeaways summary.
func BenchmarkTakeaways(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Takeaways(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no takeaways")
		}
	}
}

// BenchmarkConcurrentQueryThroughput measures multi-client localization
// throughput over the multiplexed v2 protocol, scaling the client count up
// to GOMAXPROCS (see EXPERIMENTS.md for recorded scaling results).
func BenchmarkConcurrentQueryThroughput(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		e, err := bench.QueryThroughput(sc, runtime.GOMAXPROCS(0), 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Points) == 0 {
			b.Fatal("throughput produced no data")
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func runAblation(b *testing.B, f func() (*bench.Experiment, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Points) == 0 {
			b.Fatalf("%s produced no data", e.ID)
		}
	}
}

// BenchmarkAblationVerification: verification Bloom filter on/off.
func BenchmarkAblationVerification(b *testing.B) { runAblation(b, bench.AblationVerification) }

// BenchmarkAblationMultiprobe: multiprobe on/off.
func BenchmarkAblationMultiprobe(b *testing.B) { runAblation(b, bench.AblationMultiprobe) }

// BenchmarkAblationSaturation: counter width sweep.
func BenchmarkAblationSaturation(b *testing.B) { runAblation(b, bench.AblationSaturation) }

// BenchmarkAblationLSHParams: L/M/W sweep around the paper's values.
func BenchmarkAblationLSHParams(b *testing.B) { runAblation(b, bench.AblationLSHParams) }

// BenchmarkAblationICP: map error with/without ICP drift correction.
func BenchmarkAblationICP(b *testing.B) { run1(b, bench.AblationICP) }
