// Command vprender renders views of a procedural venue to PNG files — a
// debugging and inspection aid for the simulated worlds (what does the
// wardriver actually see?). It renders one frontal view per point of
// interest plus an overview sweep from the venue center, and optionally a
// depth map per view.
//
//	vprender -venue gallery -out /tmp/gallery -views 6 -depth
package main

import (
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"log"
	"math"
	"os"
	"path/filepath"

	"visualprint"
)

func main() {
	venue := flag.String("venue", "gallery", "venue world: office, cafeteria, grocery, gallery")
	seed := flag.Uint("seed", 1, "venue construction seed")
	out := flag.String("out", "renders", "output directory")
	views := flag.Int("views", 6, "POI views to render")
	width := flag.Int("w", 480, "image width")
	height := flag.Int("h", 360, "image height")
	depth := flag.Bool("depth", false, "also write depth heat maps")
	flag.Parse()

	var world *visualprint.World
	switch *venue {
	case "office":
		world = visualprint.NewOfficeWorld(uint32(*seed))
	case "cafeteria":
		world = visualprint.NewCafeteriaWorld(uint32(*seed))
	case "grocery":
		world = visualprint.NewGroceryWorld(uint32(*seed))
	case "gallery":
		world = visualprint.NewGalleryWorld(uint32(*seed))
	default:
		log.Fatalf("unknown venue %q", *venue)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	save := func(name string, fr *visualprint.Frame) {
		path := filepath.Join(*out, name+".png")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := png.Encode(f, fr.Image.ToImage()); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
		if !*depth {
			return
		}
		dm := image.NewRGBA(image.Rect(0, 0, fr.Cam.W, fr.Cam.H))
		maxD := 0.0
		for _, d := range fr.Depth {
			maxD = math.Max(maxD, float64(d))
		}
		for y := 0; y < fr.Cam.H; y++ {
			for x := 0; x < fr.Cam.W; x++ {
				d := fr.DepthAt(x, y) / maxD
				// Near = blue, far = red.
				dm.Set(x, y, color.RGBA{R: uint8(255 * d), B: uint8(255 * (1 - d)), A: 255})
			}
		}
		dpath := filepath.Join(*out, name+"-depth.png")
		df, err := os.Create(dpath)
		if err != nil {
			log.Fatal(err)
		}
		defer df.Close()
		if err := png.Encode(df, dm); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", dpath)
	}

	// POI views.
	pois := world.POIsOfKind(visualprint.POIUnique)
	for i := 0; i < *views && i < len(pois); i++ {
		cam := visualprint.CameraFacing(world, pois[i], 3, 0.15, -0.05, *width, *height)
		fr, err := visualprint.Render(world, cam)
		if err != nil {
			log.Fatal(err)
		}
		save(fmt.Sprintf("%s-poi%02d", world.Name, i), fr)
	}
	// Overview sweep from the center.
	cam := visualprint.NewCamera(*width, *height)
	cam.Pos = visualprint.Vec3{
		X: (world.Min.X + world.Max.X) / 2,
		Y: 1.6,
		Z: (world.Min.Z + world.Max.Z) / 2,
	}
	for i := 0; i < 4; i++ {
		cam.Yaw = float64(i) * math.Pi / 2
		fr, err := visualprint.Render(world, cam)
		if err != nil {
			log.Fatal(err)
		}
		save(fmt.Sprintf("%s-sweep%d", world.Name, i), fr)
	}
}
