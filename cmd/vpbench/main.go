// Command vpbench regenerates the paper's evaluation figures from the
// simulated substrate and prints their data series (optionally as CSV).
//
//	vpbench -exp all                # every figure at quick scale
//	vpbench -exp fig13,fig19        # selected experiments
//	vpbench -exp takeaways          # the paper-vs-measured summary table
//	vpbench -scale full -csv out/   # paper-scale corpus, CSV files
//	vpbench -exp locate -scale full -locate-json BENCH_locate.json
//	vpbench -exp track -scale full -track-json BENCH_track.json
//	vpbench -exp oracle -scale full -oracle-json BENCH_oracle.json
//	vpbench -exp locate -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiment ids: fig02 fig03 fig05 fig06 fig13 fig14 fig15 fig16 fig18
// fig19 fig20 extra-latency throughput locate track oracle takeaways
// ablations.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"visualprint/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	locateJSON := flag.String("locate-json", "", "file to write the locate benchmark result as JSON (BENCH_locate.json)")
	trackJSON := flag.String("track-json", "", "file to write the walk-trajectory tracking benchmark result as JSON (BENCH_track.json)")
	oracleJSON := flag.String("oracle-json", "", "file to write the oracle distribution benchmark result as JSON (BENCH_oracle.json)")
	oracleGate := flag.Float64("oracle-gate", 0, "with -exp oracle: fail (exit 1) if the smallest-batch bytes-per-update reduction of versioned sync vs full refetch falls below this factor")
	obsOn := flag.Bool("obs", false, "enable observability instrumentation on the benchmark database (measures tracer overhead)")
	locateShards := flag.Int("locate-shards", 0, "run the locate benchmark against a venue sharded this many ways (0/1: direct single database; >1 measures scatter-gather routing overhead)")
	baseline := flag.String("baseline", "", "baseline locate JSON (e.g. BENCH_locate_short.json) to compare ns/op against")
	maxRegress := flag.Float64("max-regress", 2.0, "with -baseline: fail (exit 1) if ns/op exceeds baseline by this factor")
	coresList := flag.String("cores", "", "comma-separated core counts (e.g. 1,2,4): rerun the locate QPS measurement with GOMAXPROCS pinned per entry and emit the QPS-vs-cores curve")
	coresGate := flag.Float64("cores-gate", 0, "with -cores including 1 and 2: fail (exit 1) if 2-core QPS < this factor x 1-core QPS (skipped when the host has <2 CPUs)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		// Profiles are flushed only on the success path; error paths
		// os.Exit without one, which is fine for a measurement tool.
		defer pprof.StopCPUProfile()
		defer f.Close()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.Quick()
	case "full":
		sc = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	all := wanted["all"]

	run := func(id string, f func(bench.Scale) (*bench.Experiment, error)) {
		if !all && !wanted[id] {
			return
		}
		e, err := f(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		printExperiment(e)
		writeCSV(*csvDir, e)
	}

	run("fig02", bench.Fig02EncodingFPS)
	run("fig03", bench.Fig03KeypointCDF)
	run("fig05", bench.Fig05FeatureRatio)
	run("fig06", func(s bench.Scale) (*bench.Experiment, error) {
		a, err := bench.Fig06DimDominance(s)
		if err != nil {
			return nil, err
		}
		printExperiment(a)
		writeCSV(*csvDir, a)
		return bench.Fig06PCA(s)
	})
	if all || wanted["fig13"] {
		ep, er, err := bench.Fig13PrecisionRecall(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig13: %v\n", err)
			os.Exit(1)
		}
		printExperiment(ep)
		writeCSV(*csvDir, ep)
		printExperiment(er)
		writeCSV(*csvDir, er)
	}
	run("fig14", bench.Fig14UploadTrace)
	run("extra-latency", bench.ExtraLatencyTail)
	run("fig15", bench.Fig15Memory)
	run("fig16", bench.Fig16Latency)
	run("fig18", bench.Fig18Energy)
	run("fig19", bench.Fig19Localization)
	run("fig20", bench.Fig20AxisError)
	run("throughput", func(s bench.Scale) (*bench.Experiment, error) {
		return bench.QueryThroughput(s, 0, 8)
	})

	if all || wanted["locate"] {
		// quick scale runs the CI-sized workload (exercised on every push
		// by `make bench-short`); full scale runs the standard workload
		// whose numbers are comparable against the recorded baseline.
		cfg, iters, perClient := bench.ShortLocateWorkload(), 3, 2
		if *scaleName == "full" {
			cfg, iters, perClient = bench.DefaultLocateWorkload(), 10, 4
		}
		cfg.EnableObs = *obsOn
		cfg.Shards = *locateShards
		cores, err := parseCores(*coresList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cores: %v\n", err)
			os.Exit(2)
		}
		res, err := bench.RunLocateBenchmark(cfg, iters, []int{1, 2, 4}, perClient, cores)
		if err != nil {
			fmt.Fprintf(os.Stderr, "locate: %v\n", err)
			os.Exit(1)
		}
		printLocate(res)
		if *locateJSON != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err == nil {
				err = os.WriteFile(*locateJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "locate-json: %v\n", err)
				os.Exit(1)
			}
		}
		if *baseline != "" {
			if err := checkRegression(*baseline, *maxRegress, res); err != nil {
				fmt.Fprintf(os.Stderr, "locate regression check: %v\n", err)
				os.Exit(1)
			}
		}
		if *coresGate > 0 {
			if err := checkCoresGate(*coresGate, res); err != nil {
				fmt.Fprintf(os.Stderr, "locate cores gate: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if all || wanted["track"] {
		// quick scale runs the CI-sized walk (`make bench-track-short`);
		// full scale runs the standard walk behind `make bench-track`.
		cfg := bench.ShortTrackWorkload()
		if *scaleName == "full" {
			cfg = bench.DefaultTrackWorkload()
		}
		res, err := bench.RunTrackBenchmark(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "track: %v\n", err)
			os.Exit(1)
		}
		printTrack(res)
		if *trackJSON != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err == nil {
				err = os.WriteFile(*trackJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "track-json: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if all || wanted["oracle"] {
		// quick scale runs the CI-sized workload (behind `make bench-check`);
		// full scale runs the standard 4k-mapping venue.
		cfg := bench.ShortOracleWorkload()
		if *scaleName == "full" {
			cfg = bench.DefaultOracleWorkload()
		}
		res, err := bench.RunOracleBenchmark(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
			os.Exit(1)
		}
		printOracle(res)
		if *oracleJSON != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err == nil {
				err = os.WriteFile(*oracleJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "oracle-json: %v\n", err)
				os.Exit(1)
			}
		}
		if *oracleGate > 0 {
			if err := checkOracleGate(*oracleGate, res); err != nil {
				fmt.Fprintf(os.Stderr, "oracle gate: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if all || wanted["ablations"] {
		for _, f := range []func() (*bench.Experiment, error){
			bench.AblationVerification,
			bench.AblationMultiprobe,
			bench.AblationSaturation,
			bench.AblationLSHParams,
		} {
			e, err := f()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ablation: %v\n", err)
				os.Exit(1)
			}
			printExperiment(e)
			writeCSV(*csvDir, e)
		}
		e, err := bench.AblationICP(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation-icp: %v\n", err)
			os.Exit(1)
		}
		printExperiment(e)
		writeCSV(*csvDir, e)
	}

	if all || wanted["takeaways"] {
		rows, err := bench.Takeaways(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "takeaways: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("== Evaluation takeaways (paper vs measured) ==")
		for _, r := range rows {
			fmt.Printf("  %-16s %s\n", r.ID, r.Claim)
			fmt.Printf("  %-16s   paper:    %s\n", "", r.Paper)
			fmt.Printf("  %-16s   measured: %s\n", "", r.Measured)
		}
	}
}

// parseCores parses the -cores flag value ("1,2,4") into core counts.
func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var cores []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		cores = append(cores, n)
	}
	return cores, nil
}

// checkCoresGate enforces the multi-core scaling floor: 2-core QPS must be
// at least `factor` times 1-core QPS. On a host without at least 2 real
// CPUs the gate is meaningless (pinning GOMAXPROCS=2 just oversubscribes
// the single core), so it prints a skip notice and passes.
func checkCoresGate(factor float64, res *bench.LocateBenchResult) error {
	if runtime.NumCPU() < 2 {
		fmt.Printf("  cores gate: skipped (host has %d CPU; scaling unmeasurable)\n", runtime.NumCPU())
		return nil
	}
	var q1, q2 float64
	for _, p := range res.QPSVsCores {
		switch p.Cores {
		case 1:
			q1 = p.QPS
		case 2:
			q2 = p.QPS
		}
	}
	if q1 <= 0 || q2 <= 0 {
		return fmt.Errorf("gate needs 1-core and 2-core sweep points (run with -cores 1,2,...)")
	}
	scale := q2 / q1
	fmt.Printf("  cores gate: 2-core %.2f q/s vs 1-core %.2f q/s = %.2fx (floor %.2fx)\n",
		q2, q1, scale, factor)
	if scale < factor {
		return fmt.Errorf("2-core QPS only %.2fx of 1-core (floor %.2fx)", scale, factor)
	}
	return nil
}

// checkRegression compares a fresh locate result against a recorded
// baseline JSON file (BENCH_locate.json schema) and errors if ns/op
// regressed by more than maxRegress. The threshold is deliberately loose
// (2x by default): it is a CI tripwire for catastrophic slowdowns on
// shared runners, not a precision gate.
func checkRegression(path string, maxRegress float64, res *bench.LocateBenchResult) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base bench.LocateBenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if base.NsPerOp <= 0 {
		return fmt.Errorf("%s has no ns_per_op", path)
	}
	ratio := res.NsPerOp / base.NsPerOp
	fmt.Printf("  regression check: %.1f ms/op vs baseline %.1f ms/op (%s) = %.2fx (limit %.2fx)\n",
		res.NsPerOp/1e6, base.NsPerOp/1e6, base.Recorded, ratio, maxRegress)
	if ratio > maxRegress {
		return fmt.Errorf("ns/op regressed %.2fx over baseline %s (limit %.2fx)", ratio, path, maxRegress)
	}
	return nil
}

// checkOracleGate enforces the downlink-saving floor: at the smallest
// measured update size, versioned sync must cost at least `factor` times
// fewer bytes per client per update than full refetch.
func checkOracleGate(factor float64, res *bench.OracleBenchResult) error {
	if len(res.Points) == 0 {
		return fmt.Errorf("no measured points")
	}
	p := res.Points[0]
	for _, q := range res.Points[1:] {
		if q.BatchMappings < p.BatchMappings {
			p = q
		}
	}
	fmt.Printf("  oracle gate: %d-mapping updates cost %.0f B vs %.0f B full = %.1fx reduction (floor %.1fx)\n",
		p.BatchMappings, p.DeltaBytesPerUpdate, p.FullBytesPerUpdate, p.ReductionX, factor)
	if p.ReductionX < factor {
		return fmt.Errorf("smallest-batch reduction %.2fx below floor %.2fx", p.ReductionX, factor)
	}
	return nil
}

// printOracle prints the oracle distribution downlink summary.
func printOracle(r *bench.OracleBenchResult) {
	fmt.Printf("== oracle: bytes-per-client-per-update, versioned sync vs full refetch ==\n")
	fmt.Printf("  base corpus %d mappings, full blob %d B (%s)\n",
		r.Workload.BaseMappings, r.FullBlobBytes, r.Host)
	for _, p := range r.Points {
		fmt.Printf("  %4d-mapping updates: %8.0f B/update delta  %8.0f B/update full  %6.1fx reduction\n",
			p.BatchMappings, p.DeltaBytesPerUpdate, p.FullBytesPerUpdate, p.ReductionX)
	}
	fmt.Println()
}

// printTrack prints the walk-trajectory (continuous localization) summary.
func printTrack(r *bench.TrackBenchResult) {
	fmt.Printf("== track: continuous localization over a %d-frame walk ==\n", r.Workload.Frames)
	fmt.Printf("  cold: %5.1f DE generations/frame  %.1f ms/frame  median err %.1f mm (max %.1f)\n",
		r.Cold.MeanGenerations, r.Cold.NsPerFrame/1e6, r.Cold.MedianErrM*1000, r.Cold.MaxErrM*1000)
	fmt.Printf("  warm: %5.1f DE generations/frame  %.1f ms/frame  median err %.1f mm (max %.1f)\n",
		r.Warm.MeanGenerations, r.Warm.NsPerFrame/1e6, r.Warm.MedianErrM*1000, r.Warm.MaxErrM*1000)
	fmt.Printf("  warm/cold generations: %.3fx   warm hits %d/%d (%.0f%%)   (%s)\n",
		r.GenRatio, r.WarmHits, r.Warm.Frames, r.WarmHitRatio*100, r.Host)
	fmt.Println()
}

// printLocate prints the Locate microbenchmark summary.
func printLocate(r *bench.LocateBenchResult) {
	fmt.Printf("== locate: server-side Locate microbenchmark ==\n")
	fmt.Printf("  %.1f ms/op  %.0f allocs/op  %.0f B/op  (%d iters, %s)\n",
		r.NsPerOp/1e6, r.AllocsPerOp, r.BytesPerOp, r.Iters, r.Host)
	for _, c := range []string{"1", "2", "4"} {
		if q, ok := r.QueriesPerSec[c]; ok {
			fmt.Printf("  %s client(s): %.2f queries/s\n", c, q)
		}
	}
	for _, p := range r.QPSVsCores {
		fmt.Printf("  %d core(s) (%d clients, NumCPU=%d): %.2f queries/s (%.2fx vs 1 core)\n",
			p.Cores, p.Clients, p.NumCPU, p.QPS, p.ScaleVs1)
	}
	if r.Baseline != nil {
		fmt.Printf("  baseline %.1f ms/op (%s) -> speedup %.2fx\n",
			r.Baseline.NsPerOp/1e6, r.Baseline.Recorded, r.SpeedupNs)
	}
	fmt.Println()
}

// printExperiment prints a compact textual rendering: notes plus per-series
// summaries (quartiles for CDFs, endpoints for traces).
func printExperiment(e *bench.Experiment) {
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	for _, s := range e.Series() {
		pts := e.SeriesPoints(s)
		if len(pts) == 0 {
			continue
		}
		if isCDF(e) {
			fmt.Printf("  %-34s p25=%.3g median=%.3g p75=%.3g max=%.3g (n=%d)\n",
				s, atY(pts, 0.25), atY(pts, 0.5), atY(pts, 0.75), pts[len(pts)-1].X, len(pts))
		} else {
			fmt.Printf("  %-34s ", s)
			max := 6
			if len(pts) <= max {
				for _, p := range pts {
					fmt.Printf("(%.3g, %.4g) ", p.X, p.Y)
				}
			} else {
				stride := len(pts) / max
				for i := 0; i < len(pts); i += stride {
					fmt.Printf("(%.3g, %.4g) ", pts[i].X, pts[i].Y)
				}
			}
			fmt.Println()
		}
	}
	for _, n := range e.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	fmt.Println()
}

func isCDF(e *bench.Experiment) bool { return e.YLabel == "CDF" }

// atY returns the x value where the CDF series first reaches y.
func atY(pts []bench.Point, y float64) float64 {
	for _, p := range pts {
		if p.Y >= y {
			return p.X
		}
	}
	if len(pts) > 0 {
		return pts[len(pts)-1].X
	}
	return 0
}

func writeCSV(dir string, e *bench.Experiment) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	f, err := os.Create(filepath.Join(dir, e.ID+".csv"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	w.Write([]string{"series", e.XLabel, e.YLabel})
	for _, p := range e.Points {
		w.Write([]string{p.Series,
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64)})
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
	}
}
