// Command vpserver runs the VisualPrint cloud service: it accepts
// wardriving ingest, serves uniqueness-oracle downloads, and answers
// localization queries over the binary TCP protocol.
//
// With -data the database is durable: ingests are written to a write-ahead
// log before they are acknowledged, a background snapshotter compacts the
// log, and a restart (graceful or not) recovers the exact map.
//
//	vpserver -listen :7310 -data /var/lib/visualprint
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"visualprint"
)

func main() {
	listen := flag.String("listen", ":7310", "listen address")
	data := flag.String("data", "", "data directory for durable storage (empty: in-memory)")
	debugAddr := flag.String("debug-addr", "", "HTTP debug listen address serving /debug/metrics and /debug/pprof/ (empty: disabled)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	if err := visualprint.SetLogLevel(*logLevel); err != nil {
		log.Fatal(err)
	}
	srv, err := visualprint.NewServer(visualprint.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	if *data != "" {
		if err := srv.OpenData(*data); err != nil {
			log.Fatalf("opening data dir %s: %v", *data, err)
		}
		log.Printf("data dir %s: recovered %d mappings", *data, srv.Database().Len())
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("visualprint server listening on %s", addr)
	if *debugAddr != "" {
		dAddr, err := srv.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatalf("debug listener: %v", err)
		}
		log.Printf("debug endpoints on http://%s/debug/metrics", dAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (%d mappings served)", srv.Database().Len())
	if *data != "" {
		// Fold the WAL into a snapshot so the next start recovers fast.
		if err := srv.Database().Compact(); err != nil {
			log.Printf("final compaction: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
