// Command vpserver runs the VisualPrint cloud service: it accepts
// wardriving ingest, serves uniqueness-oracle downloads, and answers
// localization queries over the binary TCP protocol.
//
// With -data the database is durable: ingests are written to a write-ahead
// log before they are acknowledged, a background snapshotter compacts the
// log, and a restart (graceful or not) recovers the exact map.
//
//	vpserver -listen :7310 -data /var/lib/visualprint
//
// With -advertise the server joins a replication fleet: started bare it is
// the primary; started with -primary it replicates that node's write-ahead
// log and serves reads from byte-identical state. Run cmd/vpsentinel over
// the fleet for automatic failover.
//
//	vpserver -listen :7310 -data /srv/a -advertise host-a:7310
//	vpserver -listen :7311 -data /srv/b -advertise host-b:7311 -primary host-a:7310
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"visualprint"
)

// venueShardsFlag parses repeated -venue-shards name=N values into venue
// topology options.
type venueShardsFlag struct {
	opts []visualprint.ServerOption
}

func (f *venueShardsFlag) String() string { return "" }

func (f *venueShardsFlag) Set(v string) error {
	name, count, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=shards, got %q", v)
	}
	n, err := strconv.Atoi(count)
	if err != nil || n < 1 {
		return fmt.Errorf("bad shard count %q", count)
	}
	f.opts = append(f.opts, visualprint.WithVenueShards(name, n))
	return nil
}

func main() {
	listen := flag.String("listen", ":7310", "listen address")
	data := flag.String("data", "", "data directory for durable storage (empty: in-memory)")
	debugAddr := flag.String("debug-addr", "", "HTTP debug listen address serving /debug/metrics and /debug/pprof/ (empty: disabled)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	maxInFlight := flag.Int("max-in-flight", 0, "max concurrently executing requests (0: default, 4x GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", -1, "max requests queued for a slot before shedding with overloaded (-1: default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests before canceling them")
	var venueShards venueShardsFlag
	flag.Var(&venueShards, "venue-shards", "shard topology for a named venue as name=N (repeatable; applies at venue creation)")
	advertise := flag.String("advertise", "", "address fleet peers and redirected clients reach this node at; enables replication (requires -data)")
	primary := flag.String("primary", "", "start as a replica of this primary address (with -advertise; empty: start as the primary)")
	minSync := flag.Int("min-sync-replicas", 0, "acknowledge ingests only after this many replicas confirm them durable (0: local durability only)")
	syncTimeout := flag.Duration("sync-timeout", 0, "bound on the semi-sync replica wait (0: default 5s)")
	maxStaleness := flag.Duration("max-staleness", 0, "how stale a replica may serve reads before redirecting to the primary (0: default 3s)")
	flag.Parse()

	if err := visualprint.SetLogLevel(*logLevel); err != nil {
		log.Fatal(err)
	}
	opts := venueShards.opts
	if *maxInFlight > 0 {
		opts = append(opts, visualprint.WithMaxInFlight(*maxInFlight))
	}
	if *queueDepth >= 0 {
		opts = append(opts, visualprint.WithQueueDepth(*queueDepth))
	}
	opts = append(opts, visualprint.WithDrainTimeout(*drainTimeout))
	if *primary != "" && *advertise == "" {
		log.Fatal("-primary requires -advertise")
	}
	if *advertise != "" {
		if *data == "" {
			log.Fatal("replication (-advertise) requires -data")
		}
		opts = append(opts, visualprint.WithReplication(visualprint.ReplicationOptions{
			Advertise:       *advertise,
			Primary:         *primary,
			MinSyncReplicas: *minSync,
			SyncTimeout:     *syncTimeout,
			MaxStaleness:    *maxStaleness,
		}))
	}
	srv, err := visualprint.NewServer(visualprint.DefaultServerConfig(), opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *data != "" {
		if err := srv.OpenData(*data); err != nil {
			log.Fatalf("opening data dir %s: %v", *data, err)
		}
		log.Printf("data dir %s: recovered %d mappings (default venue)", *data, srv.Stats().Mappings)
		for _, v := range srv.Venues() {
			log.Printf("  venue %s: %d mappings", v, srv.VenueStats(v).Mappings)
		}
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("visualprint server listening on %s", addr)
	if *advertise != "" {
		st := srv.ReplStatus()
		log.Printf("replication: role=%s epoch=%d advertise=%s primary=%s", st.Role, st.Epoch, *advertise, st.Primary)
	}
	if *debugAddr != "" {
		dAddr, err := srv.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatalf("debug listener: %v", err)
		}
		log.Printf("debug endpoints on http://%s/debug/metrics", dAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining (%d mappings served); second signal forces exit", srv.Stats().Mappings)
	// A second signal skips the drain: cut everything off immediately.
	go func() {
		<-sig
		log.Print("forced shutdown")
		srv.Close() //nolint:errcheck // exiting either way
		os.Exit(1)
	}()
	if *data != "" {
		// Fold every venue's WAL into a snapshot so the next start
		// recovers fast.
		if err := srv.Compact(); err != nil {
			log.Printf("final compaction: %v", err)
		}
	}
	// Graceful drain: stop accepting, refuse new requests with the typed
	// shutting-down error, let in-flight work finish (bounded by
	// -drain-timeout), flush the WAL, then exit.
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Print("drained cleanly")
}
