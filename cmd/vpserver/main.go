// Command vpserver runs the VisualPrint cloud service: it accepts
// wardriving ingest, serves uniqueness-oracle downloads, and answers
// localization queries over the binary TCP protocol.
//
//	vpserver -listen :7310
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"visualprint"
)

func main() {
	listen := flag.String("listen", ":7310", "listen address")
	flag.Parse()

	srv, err := visualprint.NewServer(visualprint.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("visualprint server listening on %s", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (%d mappings served)", srv.Database().Len())
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
