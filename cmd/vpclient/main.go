// Command vpclient plays the smartphone role against a running vpserver:
// it downloads the uniqueness oracle, captures query frames in a venue,
// filters keypoints to the most-unique fingerprint, and requests
// localization — reporting accuracy and bandwidth.
//
//	vpclient -server localhost:7310 -venue office -seed 1 -queries 5
//
// The venue and seed must match what vpwardrive ingested.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"visualprint"
)

func main() {
	serverAddr := flag.String("server", "localhost:7310", "vpserver address")
	venue := flag.String("venue", "office", "venue world: office, cafeteria, grocery, gallery")
	venueID := flag.String("venue-id", "", "named server venue to query (empty: the default venue; must match vpwardrive -venue-id)")
	seed := flag.Uint("seed", 1, "venue construction seed (must match vpwardrive)")
	queries := flag.Int("queries", 5, "number of query viewpoints")
	selectN := flag.Int("select", 200, "most-unique keypoints to upload per query")
	stats := flag.Bool("stats", false, "print server state (size, persistence) and exit")
	metrics := flag.Bool("metrics", false, "print server observability report (counters, latency quantiles, slow log) and exit")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline (propagated to the server)")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "TCP connect timeout")
	flag.Parse()

	var world *visualprint.World
	switch *venue {
	case "office":
		world = visualprint.NewOfficeWorld(uint32(*seed))
	case "cafeteria":
		world = visualprint.NewCafeteriaWorld(uint32(*seed))
	case "grocery":
		world = visualprint.NewGroceryWorld(uint32(*seed))
	case "gallery":
		world = visualprint.NewGalleryWorld(uint32(*seed))
	default:
		log.Fatalf("unknown venue %q", *venue)
	}

	// Retries cover transient overload and lost connections; the per-call
	// contexts below bound each request end to end, server included.
	client, err := visualprint.Connect(*serverAddr,
		visualprint.WithDialTimeout(*dialTimeout),
		visualprint.WithRetryPolicy(visualprint.DefaultRetryPolicy()),
		visualprint.WithVenue(*venueID))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	reqCtx := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), *timeout)
	}

	if *stats {
		printStats(client, reqCtx)
		return
	}
	if *metrics {
		printMetrics(client, reqCtx)
		return
	}

	ctx, cancel := reqCtx()
	oracle, blobSize, err := client.FetchOracle(ctx)
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("oracle downloaded: %.1f MB compressed, %.1f MB in RAM",
		float64(blobSize)/1e6, float64(oracle.MemoryBytes())/1e6)

	sc := visualprint.DefaultSiftConfig()
	sc.ContrastThreshold = 0.02
	pois := world.POIsOfKind(visualprint.POIUnique)
	success := 0
	for q := 0; q < *queries && q < len(pois); q++ {
		cam := visualprint.CameraFacing(world, pois[(q*5)%len(pois)], 3.0, 0.25, -0.05, 240, 180)
		fr, err := visualprint.Render(world, cam)
		if err != nil {
			log.Fatal(err)
		}
		kps := visualprint.ExtractKeypoints(fr.Image, sc)
		sel, err := oracle.SelectUnique(kps, *selectN)
		if err != nil {
			log.Fatal(err)
		}
		qctx, qcancel := reqCtx()
		res, err := client.Query(qctx, sel, visualprint.IntrinsicsOf(cam))
		qcancel()
		if err != nil {
			log.Printf("query %d: %v", q, err)
			continue
		}
		success++
		log.Printf("query %d: %d/%d keypoints uploaded, error %.2f m, %d matches",
			q, len(sel), len(kps), res.Position.Dist(cam.Pos), res.Matched)
	}
	log.Printf("%d/%d queries localized; %.1f KB uploaded total",
		success, *queries, float64(client.BytesSent())/1024)
}

// printMetrics fetches and prints the server's observability report:
// counters and gauges sorted by name, latency histograms as quantiles,
// and the slow-request log with per-stage breakdowns.
func printMetrics(client *visualprint.Client, reqCtx func() (context.Context, context.CancelFunc)) {
	ctx, cancel := reqCtx()
	defer cancel()
	rep, err := client.Metrics(ctx)
	if err != nil {
		if errors.Is(err, visualprint.ErrMetricsUnsupported) {
			log.Fatalf("server does not support the metrics RPC (old binary, or observability disabled): %v", err)
		}
		log.Fatal(err)
	}
	fmt.Printf("uptime: %s\n", (time.Duration(rep.UptimeSeconds * float64(time.Second))).Round(time.Second))

	// Replication gets its own section: the node's role and offsets from the
	// repl state RPC, plus every repl_* / failover instrument pulled out of
	// the generic listings. Servers without replication answer the state RPC
	// with an error; the section is simply omitted then.
	isRepl := func(name string) bool {
		return strings.HasPrefix(name, "repl_") || name == "failovers_total"
	}
	replCounters, replGauges := map[string]uint64{}, map[string]int64{}
	for name, v := range rep.Counters {
		if isRepl(name) {
			replCounters[name] = v
			delete(rep.Counters, name)
		}
	}
	for name, v := range rep.Gauges {
		if isRepl(name) {
			replGauges[name] = v
			delete(rep.Gauges, name)
		}
	}
	sctx, scancel := reqCtx()
	rst, rerr := client.ReplStatus(sctx)
	scancel()
	if rerr == nil || len(replCounters)+len(replGauges) > 0 {
		fmt.Println("\nreplication:")
		if rerr == nil {
			fmt.Printf("  %-28s %s\n", "role", rst.Role)
			fmt.Printf("  %-28s %d\n", "epoch", rst.Epoch)
			fmt.Printf("  %-28s %d\n", "applied_records", rst.Applied)
			fmt.Printf("  %-28s %s\n", "staleness", rst.Staleness.Round(time.Millisecond))
			fmt.Printf("  %-28s %s\n", "primary", rst.Primary)
		}
		for _, name := range sortedKeys(replCounters) {
			fmt.Printf("  %-28s %d\n", name, replCounters[name])
		}
		for _, name := range sortedKeys(replGauges) {
			if strings.HasSuffix(name, "_ns") {
				fmt.Printf("  %-28s %s\n", name, ns(replGauges[name]))
				continue
			}
			fmt.Printf("  %-28s %d\n", name, replGauges[name])
		}
	}

	// Continuous-localization sessions likewise: every track_* instrument
	// in one section, with the warm-hit ratio derived up front. Omitted
	// entirely on servers without the tracking subsystem.
	trackCounters, trackGauges := map[string]uint64{}, map[string]int64{}
	for name, v := range rep.Counters {
		if strings.HasPrefix(name, "track_") {
			trackCounters[name] = v
			delete(rep.Counters, name)
		}
	}
	for name, v := range rep.Gauges {
		if strings.HasPrefix(name, "track_") {
			trackGauges[name] = v
			delete(rep.Gauges, name)
		}
	}
	if len(trackCounters)+len(trackGauges) > 0 {
		fmt.Println("\ntracking (continuous localization):")
		if warm, cold := trackCounters["track_warm"], trackCounters["track_cold"]; warm+cold > 0 {
			fmt.Printf("  %-28s %.1f%% (%d warm / %d session queries)\n",
				"warm_hit_ratio", 100*float64(warm)/float64(warm+cold), warm, warm+cold)
		}
		for _, name := range sortedKeys(trackCounters) {
			fmt.Printf("  %-28s %d\n", name, trackCounters[name])
		}
		for _, name := range sortedKeys(trackGauges) {
			fmt.Printf("  %-28s %d\n", name, trackGauges[name])
		}
	}

	fmt.Println("\ncounters:")
	for _, name := range sortedKeys(rep.Counters) {
		fmt.Printf("  %-28s %d\n", name, rep.Counters[name])
	}
	fmt.Println("\ngauges:")
	for _, name := range sortedKeys(rep.Gauges) {
		fmt.Printf("  %-28s %d\n", name, rep.Gauges[name])
	}
	fmt.Println("\nlatency (p50 / p90 / p99 / max):")
	for _, name := range sortedKeys(rep.Histograms) {
		h := rep.Histograms[name]
		if h.Count == 0 {
			continue
		}
		// Histograms are nanosecond-valued by convention except the few
		// counting ones (e.g. wal_batch_records), which print raw.
		render := ns
		if !strings.HasSuffix(name, "_ns") {
			render = func(v int64) string { return strconv.FormatInt(v, 10) }
		}
		fmt.Printf("  %-28s %9s %9s %9s %9s  (n=%d)\n", name,
			render(h.P50), render(h.P90), render(h.P99), render(h.Max), h.Count)
	}
	if len(rep.Slow) > 0 {
		fmt.Println("\nslow requests (newest first):")
		for _, s := range rep.Slow {
			fmt.Printf("  %s %s total %s", time.Unix(0, s.UnixNano).Format(time.RFC3339), s.Op, ns(s.TotalNs))
			for _, stage := range sortedKeys(s.StageNs) {
				fmt.Printf("  %s=%s", stage, ns(s.StageNs[stage]))
			}
			fmt.Println()
		}
	}
}

// sortedKeys returns m's keys in lexical order, so the report is stable
// run to run.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ns renders a nanosecond quantity at a human scale.
func ns(v int64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

// printStats fetches and prints the server's full state report.
func printStats(client *visualprint.Client, reqCtx func() (context.Context, context.CancelFunc)) {
	ctx, cancel := reqCtx()
	defer cancel()
	s, err := client.StatsFull(ctx)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mappings:               %d", s.Mappings)
	log.Printf("database size:          %.1f MB", float64(s.DatabaseBytes)/1e6)
	log.Printf("oracle inserts:         %d", s.OracleInserts)
	log.Printf("oracle snapshot bytes:  %.1f MB", float64(s.OracleSnapshotBytes)/1e6)
	if !s.Persistent {
		log.Printf("persistence:            in-memory")
		return
	}
	log.Printf("persistence:            durable")
	log.Printf("snapshot covers:        %d records", s.SnapshotSeq)
	log.Printf("wal size:               %.1f MB", float64(s.WALBytes)/1e6)
	if s.LastCompactionUnix > 0 {
		log.Printf("last compaction:        %s", time.Unix(s.LastCompactionUnix, 0).Format(time.RFC3339))
	} else {
		log.Printf("last compaction:        never")
	}
}
