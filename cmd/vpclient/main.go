// Command vpclient plays the smartphone role against a running vpserver:
// it downloads the uniqueness oracle, captures query frames in a venue,
// filters keypoints to the most-unique fingerprint, and requests
// localization — reporting accuracy and bandwidth.
//
//	vpclient -server localhost:7310 -venue office -seed 1 -queries 5
//
// The venue and seed must match what vpwardrive ingested.
package main

import (
	"context"
	"flag"
	"log"
	"time"

	"visualprint"
)

func main() {
	serverAddr := flag.String("server", "localhost:7310", "vpserver address")
	venue := flag.String("venue", "office", "venue: office, cafeteria, grocery, gallery")
	seed := flag.Uint("seed", 1, "venue construction seed (must match vpwardrive)")
	queries := flag.Int("queries", 5, "number of query viewpoints")
	selectN := flag.Int("select", 200, "most-unique keypoints to upload per query")
	stats := flag.Bool("stats", false, "print server state (size, persistence) and exit")
	flag.Parse()

	var world *visualprint.World
	switch *venue {
	case "office":
		world = visualprint.NewOfficeWorld(uint32(*seed))
	case "cafeteria":
		world = visualprint.NewCafeteriaWorld(uint32(*seed))
	case "grocery":
		world = visualprint.NewGroceryWorld(uint32(*seed))
	case "gallery":
		world = visualprint.NewGalleryWorld(uint32(*seed))
	default:
		log.Fatalf("unknown venue %q", *venue)
	}

	client, err := visualprint.Connect(*serverAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if *stats {
		printStats(client)
		return
	}

	oracle, blobSize, err := client.FetchOracle(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("oracle downloaded: %.1f MB compressed, %.1f MB in RAM",
		float64(blobSize)/1e6, float64(oracle.MemoryBytes())/1e6)

	sc := visualprint.DefaultSiftConfig()
	sc.ContrastThreshold = 0.02
	pois := world.POIsOfKind(visualprint.POIUnique)
	success := 0
	for q := 0; q < *queries && q < len(pois); q++ {
		cam := visualprint.CameraFacing(world, pois[(q*5)%len(pois)], 3.0, 0.25, -0.05, 240, 180)
		fr, err := visualprint.Render(world, cam)
		if err != nil {
			log.Fatal(err)
		}
		kps := visualprint.ExtractKeypoints(fr.Image, sc)
		sel, err := oracle.SelectUnique(kps, *selectN)
		if err != nil {
			log.Fatal(err)
		}
		res, err := client.Query(context.Background(), sel, visualprint.IntrinsicsOf(cam))
		if err != nil {
			log.Printf("query %d: %v", q, err)
			continue
		}
		success++
		log.Printf("query %d: %d/%d keypoints uploaded, error %.2f m, %d matches",
			q, len(sel), len(kps), res.Position.Dist(cam.Pos), res.Matched)
	}
	log.Printf("%d/%d queries localized; %.1f KB uploaded total",
		success, *queries, float64(client.BytesSent())/1024)
}

// printStats fetches and prints the server's full state report.
func printStats(client *visualprint.Client) {
	s, err := client.StatsFull(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mappings:               %d", s.Mappings)
	log.Printf("database size:          %.1f MB", float64(s.DatabaseBytes)/1e6)
	log.Printf("oracle inserts:         %d", s.OracleInserts)
	log.Printf("oracle snapshot bytes:  %.1f MB", float64(s.OracleSnapshotBytes)/1e6)
	if !s.Persistent {
		log.Printf("persistence:            in-memory")
		return
	}
	log.Printf("persistence:            durable")
	log.Printf("snapshot covers:        %d records", s.SnapshotSeq)
	log.Printf("wal size:               %.1f MB", float64(s.WALBytes)/1e6)
	if s.LastCompactionUnix > 0 {
		log.Printf("last compaction:        %s", time.Unix(s.LastCompactionUnix, 0).Format(time.RFC3339))
	} else {
		log.Printf("last compaction:        never")
	}
}
