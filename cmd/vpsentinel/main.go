// Command vpsentinel watches a VisualPrint replication fleet and performs
// automatic failover: it probes every member's replication state each
// interval, and when the primary stays unreachable for -down-after
// consecutive rounds it promotes the most-caught-up replica at a fresh
// epoch and points the rest of the fleet (and any stale ex-primary that
// later reappears) at it.
//
//	vpsentinel -fleet host-a:7310,host-b:7311,host-c:7312
//
// Run one sentinel per fleet. Epochs make a second sentinel safe (servers
// reject stale instructions) but the two will not coordinate their choices.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"visualprint"
	"visualprint/internal/obs"
	"visualprint/internal/repl"
)

func main() {
	fleet := flag.String("fleet", "", "comma-separated advertised addresses of every fleet member (primary included)")
	interval := flag.Duration("interval", 500*time.Millisecond, "probe period")
	downAfter := flag.Int("down-after", 3, "consecutive rounds without a reachable primary before failover")
	dialTimeout := flag.Duration("dial-timeout", time.Second, "per-probe dial+RPC bound")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	if err := visualprint.SetLogLevel(*logLevel); err != nil {
		log.Fatal(err)
	}
	var addrs []string
	for _, a := range strings.Split(*fleet, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) < 2 {
		log.Fatal("-fleet needs at least two members (a primary and a replica)")
	}
	s, err := repl.StartSentinel(repl.SentinelConfig{
		Fleet:       addrs,
		Interval:    *interval,
		DownAfter:   *downAfter,
		DialTimeout: *dialTimeout,
		Log:         obs.Default(),
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("vpsentinel watching %d members: %s", len(addrs), strings.Join(addrs, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	s.Close()
	log.Printf("vpsentinel stopped after %d failovers", s.Failovers())
}
