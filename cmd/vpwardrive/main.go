// Command vpwardrive simulates the Tango wardriving phase of a venue and
// streams the keypoint-to-3D mappings to a running vpserver.
//
//	vpwardrive -server localhost:7310 -venue office -seed 1
package main

import (
	"context"
	"flag"
	"log"

	"visualprint"
)

func main() {
	serverAddr := flag.String("server", "localhost:7310", "vpserver address")
	venue := flag.String("venue", "office", "venue: office, cafeteria, grocery, gallery")
	seed := flag.Uint("seed", 1, "venue construction seed")
	drift := flag.Float64("drift", 0.05, "dead-reckoning drift stddev per sqrt-meter")
	icpFix := flag.Bool("icp", true, "correct drift with ICP before upload")
	batch := flag.Int("batch", 2000, "mappings per ingest message")
	flag.Parse()

	var world *visualprint.World
	switch *venue {
	case "office":
		world = visualprint.NewOfficeWorld(uint32(*seed))
	case "cafeteria":
		world = visualprint.NewCafeteriaWorld(uint32(*seed))
	case "grocery":
		world = visualprint.NewGroceryWorld(uint32(*seed))
	case "gallery":
		world = visualprint.NewGalleryWorld(uint32(*seed))
	default:
		log.Fatalf("unknown venue %q", *venue)
	}

	cfg := visualprint.DefaultWardriveConfig()
	cfg.Drift.PosStddevPerMeter = *drift
	log.Printf("wardriving %s (%.0fx%.0f m)...", world.Name, world.Max.X, world.Max.Z)
	snaps, err := visualprint.Wardrive(world, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d snapshots captured", len(snaps))
	if *icpFix {
		before, after, err := visualprint.CorrectDrift(snaps)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ICP: map error %.2f m -> %.2f m", before, after)
	}
	ms := visualprint.MappingsFrom(snaps)

	client, err := visualprint.Connect(*serverAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < len(ms); i += *batch {
		end := i + *batch
		if end > len(ms) {
			end = len(ms)
		}
		total, err := client.Ingest(context.Background(), ms[i:end])
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ingested %d/%d (server total %d)", end, len(ms), total)
	}
	log.Printf("done: uploaded %.1f MB", float64(client.BytesSent())/1e6)
}
