// Command vpwardrive simulates the Tango wardriving phase of a venue and
// streams the keypoint-to-3D mappings to a running vpserver.
//
//	vpwardrive -server localhost:7310 -venue office -seed 1
//
// With -data the mappings are instead ingested into a local durable
// database directory — no server needed — which a later
// `vpserver -data <dir>` serves directly:
//
//	vpwardrive -data /var/lib/visualprint -venue office -seed 1
package main

import (
	"context"
	"flag"
	"log"

	"visualprint"
)

func main() {
	serverAddr := flag.String("server", "localhost:7310", "vpserver address")
	data := flag.String("data", "", "ingest into this local data directory instead of a server")
	venue := flag.String("venue", "office", "venue world: office, cafeteria, grocery, gallery")
	venueID := flag.String("venue-id", "", "named server venue to ingest into (empty: the default venue)")
	venueShards := flag.Int("venue-shards", 0, "shard count if this upload creates the named venue (0: server default)")
	seed := flag.Uint("seed", 1, "venue construction seed")
	drift := flag.Float64("drift", 0.05, "dead-reckoning drift stddev per sqrt-meter")
	icpFix := flag.Bool("icp", true, "correct drift with ICP before upload")
	batch := flag.Int("batch", 2000, "mappings per ingest message")
	flag.Parse()

	var world *visualprint.World
	switch *venue {
	case "office":
		world = visualprint.NewOfficeWorld(uint32(*seed))
	case "cafeteria":
		world = visualprint.NewCafeteriaWorld(uint32(*seed))
	case "grocery":
		world = visualprint.NewGroceryWorld(uint32(*seed))
	case "gallery":
		world = visualprint.NewGalleryWorld(uint32(*seed))
	default:
		log.Fatalf("unknown venue %q", *venue)
	}

	cfg := visualprint.DefaultWardriveConfig()
	cfg.Drift.PosStddevPerMeter = *drift
	log.Printf("wardriving %s (%.0fx%.0f m)...", world.Name, world.Max.X, world.Max.Z)
	snaps, err := visualprint.Wardrive(world, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d snapshots captured", len(snaps))
	if *icpFix {
		before, after, err := visualprint.CorrectDrift(snaps)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ICP: map error %.2f m -> %.2f m", before, after)
	}
	ms := visualprint.MappingsFrom(snaps)

	if *data != "" {
		ingestLocal(*data, *venueID, *venueShards, ms, *batch)
		return
	}

	client, err := visualprint.Connect(*serverAddr, visualprint.WithVenue(*venueID))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < len(ms); i += *batch {
		end := i + *batch
		if end > len(ms) {
			end = len(ms)
		}
		total, err := client.Ingest(context.Background(), ms[i:end])
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ingested %d/%d (server total %d)", end, len(ms), total)
	}
	log.Printf("done: uploaded %.1f MB", float64(client.BytesSent())/1e6)
}

// ingestLocal writes the mappings into a durable database directory without
// a network hop: open (recovering any prior state), append, snapshot, close.
func ingestLocal(dir, venueID string, venueShards int, ms []visualprint.Mapping, batch int) {
	var opts []visualprint.ServerOption
	if venueID != "" && venueShards > 0 {
		opts = append(opts, visualprint.WithVenueShards(venueID, venueShards))
	}
	srv, err := visualprint.NewServer(visualprint.DefaultServerConfig(), opts...)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.OpenData(dir); err != nil {
		log.Fatalf("opening data dir %s: %v", dir, err)
	}
	if n := srv.VenueStats(venueID).Mappings; n > 0 {
		log.Printf("data dir %s: extending existing map of %d mappings", dir, n)
	}
	total := 0
	for i := 0; i < len(ms); i += batch {
		end := i + batch
		if end > len(ms) {
			end = len(ms)
		}
		total, err = srv.IngestVenue(context.Background(), venueID, ms[i:end])
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ingested %d/%d (local total %d)", end, len(ms), total)
	}
	// Compact so vpserver's next start loads one snapshot instead of
	// replaying the whole log.
	if err := srv.Compact(); err != nil {
		log.Fatalf("compacting: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("done: %d mappings durable in %s", total, dir)
}
