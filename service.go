package visualprint

import (
	"context"
	"net"
	"net/http"
	"os"

	"visualprint/internal/obs"
	"visualprint/internal/server"
	"visualprint/internal/sift"
)

// ServerConfig configures the cloud service.
type ServerConfig = server.DatabaseConfig

// DefaultServerConfig returns a configuration scaled for simulated venues.
func DefaultServerConfig() ServerConfig { return server.DefaultDatabaseConfig() }

// Server is the VisualPrint cloud service: the LSH keypoint-to-3D lookup
// table, the uniqueness oracle, and the localization pipeline, served over
// a length-prefixed binary TCP protocol.
type Server struct {
	db    *server.Database
	srv   *server.Server
	debug *http.Server
}

// NewServer creates a cloud service with an empty database.
func NewServer(cfg ServerConfig) (*Server, error) {
	db, err := server.NewDatabase(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{db: db}, nil
}

// OpenData makes the database durable, backed by the given directory: every
// acknowledged ingest is written to a write-ahead log before it is applied,
// and a background snapshotter periodically folds the log into a compact
// binary snapshot. If the directory already holds data — including data left
// by a crashed process — the prior state is recovered first, bit-identically.
// Must be called before any ingest; an empty dir string is a no-op (the
// server stays in-memory).
func (s *Server) OpenData(dir string) error {
	if dir == "" {
		return nil
	}
	return s.db.Open(dir)
}

// Listen starts serving on addr ("host:port"; ":0" picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	srv, err := server.ListenAndServe(addr, s.db)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return srv.Addr(), nil
}

// ServeDebug starts an HTTP debug listener on addr serving the metrics
// report as JSON at /debug/metrics and the standard pprof handlers under
// /debug/pprof/. It returns the bound address; Close stops the listener.
// Enables observability on the database if nothing has yet.
func (s *Server) ServeDebug(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.debug = &http.Server{Handler: obs.DebugMux(s.db.EnableObs())}
	go s.debug.Serve(ln)
	return ln.Addr(), nil
}

// Metrics returns the server's observability report directly (in-process).
// Enables observability on the database if nothing has yet.
func (s *Server) Metrics() MetricsReport {
	return s.db.EnableObs().Report()
}

// Close stops the network listener (if any), the debug listener (if any)
// and, for a durable server, flushes and closes the data directory.
func (s *Server) Close() error {
	var err error
	if s.srv != nil {
		err = s.srv.Close()
	}
	if s.debug != nil {
		if dErr := s.debug.Close(); err == nil {
			err = dErr
		}
	}
	if dbErr := s.db.Close(); err == nil {
		err = dbErr
	}
	return err
}

// Database gives direct (in-process) access to the service state, used by
// Pipeline and the benchmark harness.
func (s *Server) Database() *server.Database { return s.db }

// Ingest adds wardriven mappings directly (in-process).
func (s *Server) Ingest(ms []Mapping) error { return s.db.Ingest(ms) }

// DBStats is the server's state report: mapping and byte counts plus
// persistence status (snapshot coverage, WAL size, last compaction). It is
// what Client.StatsFull returns over the wire.
type DBStats = server.DBStats

// Client is a connection to a VisualPrint cloud service.
type Client = server.Client

// Connect dials a VisualPrint server.
func Connect(addr string) (*Client, error) { return server.Dial(addr) }

// DialContext dials a VisualPrint server, honoring the context's deadline
// and cancellation during connection establishment.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	return server.DialContext(ctx, addr)
}

// Typed localization failures, re-exported so callers can errors.Is on a
// Query error — locally or through a networked Client, where the sentinel
// travels as a stable wire code — instead of matching message text.
var (
	ErrEmptyDatabase = server.ErrEmptyDatabase
	ErrTooFewMatches = server.ErrTooFewMatches
	ErrNoConsensus   = server.ErrNoConsensus
)

// IsRemoteError reports whether err was diagnosed by the server (as opposed
// to a transport failure).
func IsRemoteError(err error) bool { return server.IsRemote(err) }

// MetricsReport is the server's observability report: uptime, counters,
// gauges, latency histograms with quantile summaries, and the slow-request
// log with per-stage breakdowns. Client.Metrics returns it over the wire;
// Server.Metrics and the debug HTTP endpoint produce the same report.
type MetricsReport = obs.Report

// Observability error sentinels, re-exported for errors.Is.
var (
	// ErrMetricsUnsupported: the dialed server predates the metrics RPC
	// or runs with observability disabled.
	ErrMetricsUnsupported = server.ErrMetricsUnsupported
	// ErrConnectionLost: the transport died with requests in flight.
	ErrConnectionLost = server.ErrConnectionLost
)

// SetLogLevel replaces the process-wide default logger (used by servers,
// databases and stores whose owner never installed one) with one writing
// level-tagged lines to stderr at the given minimum level: "debug",
// "info", "warn" or "error".
func SetLogLevel(level string) error {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return err
	}
	obs.SetDefault(obs.New(os.Stderr, lv))
	return nil
}

// QueryUploadBytes returns the wire size of a localization query carrying n
// keypoints — 200 keypoints cost ~29 KB, in line with the paper's "short
// description (~30KB)".
func QueryUploadBytes(n int) int64 { return server.QueryUploadBytes(n) }

// Pipeline is the single-process convenience API: world, wardriving, cloud
// database and client-side filtering in one object. It is what the examples
// and benchmarks use when network transport is not the subject under test.
type Pipeline struct {
	World  *World
	Server *Server
	Oracle *Oracle

	// SelectCount is how many most-unique keypoints a query uploads
	// (the paper evaluates 200 and 500).
	SelectCount int
	// Sift configures client-side extraction.
	Sift SiftConfig
	// BlurThreshold rejects frames whose BlurScore falls below it before
	// any extraction work (0 disables the check). The client app performs
	// this quick check to skip motion-blurred frames.
	BlurThreshold float64
}

// ErrFrameBlurred is returned by LocalizeFrame for frames rejected by the
// blur gate.
var ErrFrameBlurred = errFrameBlurred{}

type errFrameBlurred struct{}

func (errFrameBlurred) Error() string { return "visualprint: frame rejected as blurred" }

// NewPipeline builds a pipeline over a world with a fresh server.
func NewPipeline(w *World, cfg ServerConfig) (*Pipeline, error) {
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	sc := sift.DefaultConfig()
	sc.ContrastThreshold = 0.02
	return &Pipeline{
		World:       w,
		Server:      srv,
		SelectCount: 200,
		Sift:        sc,
	}, nil
}

// Wardrive walks the world, optionally corrects drift with ICP, ingests
// the mappings, and installs the (server-identical) oracle for client-side
// filtering. It returns the number of mappings ingested.
func (p *Pipeline) Wardrive(cfg WardriveConfig, correctDrift bool) (int, error) {
	snaps, err := Wardrive(p.World, cfg)
	if err != nil {
		return 0, err
	}
	if correctDrift {
		if _, _, err := CorrectDrift(snaps); err != nil {
			return 0, err
		}
	}
	ms := MappingsFrom(snaps)
	if err := p.Server.Ingest(ms); err != nil {
		return 0, err
	}
	// In-process deployments share the oracle object; a networked client
	// would FetchOracle instead.
	p.Oracle = p.Server.Database().Oracle()
	return len(ms), nil
}

// QueryStats reports what a localization query consumed.
type QueryStats struct {
	ExtractedKeypoints int
	UploadedKeypoints  int
	UploadBytes        int64
}

// Localize captures a frame from cam, extracts keypoints, filters them to
// the SelectCount most unique via the oracle, and runs the server's
// localization pipeline. It is the end-to-end client flow of the paper's
// Figure 7 without the network in between.
func (p *Pipeline) Localize(cam Camera) (LocateResult, QueryStats, error) {
	fr, err := Render(p.World, cam)
	if err != nil {
		return LocateResult{}, QueryStats{}, err
	}
	return p.LocalizeFrame(fr)
}

// LocalizeFrame runs the client flow on an already-rendered frame. Frames
// failing the blur gate return ErrFrameBlurred without any extraction work.
func (p *Pipeline) LocalizeFrame(fr *Frame) (LocateResult, QueryStats, error) {
	if p.BlurThreshold > 0 && BlurScore(fr.Image) < p.BlurThreshold {
		return LocateResult{}, QueryStats{}, ErrFrameBlurred
	}
	kps := ExtractKeypoints(fr.Image, p.Sift)
	sel := kps
	if p.Oracle != nil && p.SelectCount > 0 && len(kps) > p.SelectCount {
		var err error
		sel, err = p.Oracle.SelectUnique(kps, p.SelectCount)
		if err != nil {
			return LocateResult{}, QueryStats{}, err
		}
	}
	stats := QueryStats{
		ExtractedKeypoints: len(kps),
		UploadedKeypoints:  len(sel),
		UploadBytes:        QueryUploadBytes(len(sel)),
	}
	res, err := p.Server.Database().Locate(sel, IntrinsicsOf(fr.Cam))
	if err != nil {
		return LocateResult{}, stats, err
	}
	return res, stats, nil
}
