package visualprint

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"visualprint/internal/obs"
	"visualprint/internal/server"
	"visualprint/internal/sift"
)

// ServerConfig configures the cloud service.
type ServerConfig = server.DatabaseConfig

// DefaultServerConfig returns a configuration scaled for simulated venues.
func DefaultServerConfig() ServerConfig { return server.DefaultDatabaseConfig() }

// Server is the VisualPrint cloud service: the LSH keypoint-to-3D lookup
// table, the uniqueness oracle, and the localization pipeline, served over
// a length-prefixed binary TCP protocol.
type Server struct {
	db    *server.Database
	srv   *server.Server
	debug *http.Server
	opts  []ServerOption
}

// ServerOption configures the network front end of a Server — admission
// control bounds and drain behavior. Options are recorded by NewServer and
// take effect at Listen.
type ServerOption = server.Option

// WithMaxInFlight bounds concurrently executing requests; n <= 0 removes
// the bound (and with it, admission control and load shedding).
func WithMaxInFlight(n int) ServerOption { return server.WithMaxInFlight(n) }

// WithQueueDepth bounds requests waiting for an execution slot; arrivals
// beyond the bound are shed immediately with ErrOverloaded. The default is
// twice the in-flight bound.
func WithQueueDepth(n int) ServerOption { return server.WithQueueDepth(n) }

// WithDrainTimeout bounds how long Shutdown waits for in-flight requests
// when its context has no deadline of its own; past it, remaining work is
// canceled. 0 (the default) waits indefinitely.
func WithDrainTimeout(d time.Duration) ServerOption { return server.WithDrainTimeout(d) }

// NewServer creates a cloud service with an empty database. Options
// configure the network front end once Listen starts it.
func NewServer(cfg ServerConfig, opts ...ServerOption) (*Server, error) {
	db, err := server.NewDatabase(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{db: db, opts: opts}, nil
}

// OpenData makes the database durable, backed by the given directory: every
// acknowledged ingest is written to a write-ahead log before it is applied,
// and a background snapshotter periodically folds the log into a compact
// binary snapshot. If the directory already holds data — including data left
// by a crashed process — the prior state is recovered first, bit-identically.
// Must be called before any ingest; an empty dir string is a no-op (the
// server stays in-memory).
func (s *Server) OpenData(dir string) error {
	if dir == "" {
		return nil
	}
	return s.db.Open(dir)
}

// Listen starts serving on addr ("host:port"; ":0" picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	srv, err := server.ListenAndServe(addr, s.db, s.opts...)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return srv.Addr(), nil
}

// ServeDebug starts an HTTP debug listener on addr serving the metrics
// report as JSON at /debug/metrics and the standard pprof handlers under
// /debug/pprof/. It returns the bound address; Close stops the listener.
// Enables observability on the database if nothing has yet.
func (s *Server) ServeDebug(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.debug = &http.Server{
		Handler: obs.DebugMux(s.db.EnableObs()),
		// A debug port must not let a stalled peer pin a connection
		// forever while it sends its request header.
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func(srv *http.Server) {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Default().Warnf("visualprint debug listener: %v", err)
		}
	}(s.debug)
	return ln.Addr(), nil
}

// Metrics returns the server's observability report directly (in-process).
// Enables observability on the database if nothing has yet.
func (s *Server) Metrics() MetricsReport {
	return s.db.EnableObs().Report()
}

// Close stops the network listener (if any), the debug listener (if any)
// and, for a durable server, flushes and closes the data directory.
// In-flight requests are cut off; use Shutdown to drain them gracefully.
func (s *Server) Close() error {
	var err error
	if s.srv != nil {
		err = s.srv.Close()
	}
	if s.debug != nil {
		if dErr := s.debug.Close(); err == nil {
			err = dErr
		}
	}
	if dbErr := s.db.Close(); err == nil {
		err = dbErr
	}
	return err
}

// Shutdown stops the service gracefully: the listener closes, new requests
// are refused with ErrShuttingDown, and in-flight requests run to
// completion with their responses flushed. If ctx expires first (or the
// WithDrainTimeout bound does, when ctx has no deadline), remaining
// requests are canceled; their pipelines unwind promptly and answer
// ErrCanceled. The write-ahead log is flushed and the data directory
// closed either way, so an acknowledged ingest is durable across a forced
// drain too. Returns nil on a clean drain, ctx.Err() on a forced one.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.srv != nil {
		err = s.srv.Shutdown(ctx)
	}
	if s.debug != nil {
		if dErr := s.debug.Close(); err == nil {
			err = dErr
		}
	}
	if dbErr := s.db.Close(); err == nil {
		err = dbErr
	}
	return err
}

// Database gives direct (in-process) access to the service state, used by
// Pipeline and the benchmark harness.
func (s *Server) Database() *server.Database { return s.db }

// Ingest adds wardriven mappings directly (in-process).
func (s *Server) Ingest(ms []Mapping) error {
	return s.db.Ingest(context.Background(), ms)
}

// IngestContext is Ingest under a context: cancellation is honored before
// the batch is logged; once the write-ahead log has accepted it, the batch
// runs to completion so an acknowledgment always means durable.
func (s *Server) IngestContext(ctx context.Context, ms []Mapping) error {
	return s.db.Ingest(ctx, ms)
}

// DBStats is the server's state report: mapping and byte counts plus
// persistence status (snapshot coverage, WAL size, last compaction). It is
// what Client.StatsFull returns over the wire.
type DBStats = server.DBStats

// Client is a connection to a VisualPrint cloud service.
type Client = server.Client

// DialOption configures a client built by Connect or DialContext.
type DialOption = server.DialOption

// RetryPolicy controls client-side retries: exponential backoff with
// jitter, applied only to errors that are provably safe to retry
// (ErrOverloaded always; a lost connection only for idempotent requests).
// Typed request outcomes — ErrNoConsensus, a deadline — are never retried.
type RetryPolicy = server.RetryPolicy

// DefaultRetryPolicy is a reasonable interactive-use policy: four attempts
// spanning roughly a quarter second of backoff.
func DefaultRetryPolicy() RetryPolicy { return server.DefaultRetryPolicy() }

// WithDialTimeout bounds each TCP dial — the initial connect and any
// automatic reconnect after a lost connection.
func WithDialTimeout(d time.Duration) DialOption { return server.WithDialTimeout(d) }

// WithRetryPolicy enables client-side retries; the default is none.
func WithRetryPolicy(p RetryPolicy) DialOption { return server.WithRetryPolicy(p) }

// WithClientLogger routes the client's connection-lifecycle messages
// (redials, envelope fallback) to l; nil silences them.
func WithClientLogger(l *Logger) DialOption { return server.WithLogger(l) }

// Logger is the level-tagged logger used across the library; build one
// with NewLogger or install a process-wide default with SetLogLevel.
type Logger = obs.Logger

// NewLogger builds a Logger writing level-tagged lines to w at the given
// minimum level: "debug", "info", "warn" or "error".
func NewLogger(w io.Writer, level string) (*Logger, error) {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.New(w, lv), nil
}

// Connect dials a VisualPrint server.
func Connect(addr string, opts ...DialOption) (*Client, error) {
	return server.Dial(addr, opts...)
}

// DialContext dials a VisualPrint server, honoring the context's deadline
// and cancellation during connection establishment.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	return server.DialContext(ctx, addr, opts...)
}

// Typed localization failures, re-exported so callers can errors.Is on a
// Query error — locally or through a networked Client, where the sentinel
// travels as a stable wire code — instead of matching message text.
var (
	ErrEmptyDatabase = server.ErrEmptyDatabase
	ErrTooFewMatches = server.ErrTooFewMatches
	ErrNoConsensus   = server.ErrNoConsensus
)

// Typed request-lifecycle failures. Like the localization sentinels they
// cross the wire as stable one-byte codes, so errors.Is(err, sentinel)
// holds identically whether the call was in-process or through a networked
// Client — the round trip is part of the API contract. The context
// sentinels additionally satisfy errors.Is against their standard-library
// counterparts: errors.Is(err, context.DeadlineExceeded) is true for a
// wire-decoded ErrDeadlineExceeded, and errors.Is(err, context.Canceled)
// for ErrCanceled.
var (
	// ErrOverloaded: the server's dispatch queue was full and the request
	// was shed before any work was done; always safe to retry after
	// backoff (WithRetryPolicy does so automatically).
	ErrOverloaded = server.ErrOverloaded
	// ErrShuttingDown: the server is draining; it finishes in-flight work
	// but accepts nothing new.
	ErrShuttingDown = server.ErrShuttingDown
	// ErrDeadlineExceeded: the request's deadline expired mid-pipeline and
	// the server abandoned the remaining work.
	ErrDeadlineExceeded = server.ErrDeadlineExceeded
	// ErrCanceled: the request was canceled — client-side cancel,
	// connection death, or server drain cutoff — mid-pipeline.
	ErrCanceled = server.ErrCanceled
)

// IsRemoteError reports whether err was diagnosed by the server (as opposed
// to a transport failure).
func IsRemoteError(err error) bool { return server.IsRemote(err) }

// MetricsReport is the server's observability report: uptime, counters,
// gauges, latency histograms with quantile summaries, and the slow-request
// log with per-stage breakdowns. Client.Metrics returns it over the wire;
// Server.Metrics and the debug HTTP endpoint produce the same report.
type MetricsReport = obs.Report

// Observability error sentinels, re-exported for errors.Is.
var (
	// ErrMetricsUnsupported: the dialed server predates the metrics RPC
	// or runs with observability disabled.
	ErrMetricsUnsupported = server.ErrMetricsUnsupported
	// ErrConnectionLost: the transport died with requests in flight.
	ErrConnectionLost = server.ErrConnectionLost
)

// SetLogLevel replaces the process-wide default logger (used by servers,
// databases and stores whose owner never installed one) with one writing
// level-tagged lines to stderr at the given minimum level: "debug",
// "info", "warn" or "error".
func SetLogLevel(level string) error {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return err
	}
	obs.SetDefault(obs.New(os.Stderr, lv))
	return nil
}

// QueryUploadBytes returns the wire size of a localization query carrying n
// keypoints — 200 keypoints cost ~29 KB, in line with the paper's "short
// description (~30KB)".
func QueryUploadBytes(n int) int64 { return server.QueryUploadBytes(n) }

// Pipeline is the single-process convenience API: world, wardriving, cloud
// database and client-side filtering in one object. It is what the examples
// and benchmarks use when network transport is not the subject under test.
type Pipeline struct {
	World  *World
	Server *Server
	Oracle *Oracle

	// SelectCount is how many most-unique keypoints a query uploads
	// (the paper evaluates 200 and 500).
	SelectCount int
	// Sift configures client-side extraction.
	Sift SiftConfig
	// BlurThreshold rejects frames whose BlurScore falls below it before
	// any extraction work (0 disables the check). The client app performs
	// this quick check to skip motion-blurred frames.
	BlurThreshold float64
}

// ErrFrameBlurred is returned by LocalizeFrame for frames rejected by the
// blur gate.
var ErrFrameBlurred = errFrameBlurred{}

type errFrameBlurred struct{}

func (errFrameBlurred) Error() string { return "visualprint: frame rejected as blurred" }

// NewPipeline builds a pipeline over a world with a fresh server.
func NewPipeline(w *World, cfg ServerConfig) (*Pipeline, error) {
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	sc := sift.DefaultConfig()
	sc.ContrastThreshold = 0.02
	return &Pipeline{
		World:       w,
		Server:      srv,
		SelectCount: 200,
		Sift:        sc,
	}, nil
}

// Wardrive walks the world, optionally corrects drift with ICP, ingests
// the mappings, and installs the (server-identical) oracle for client-side
// filtering. It returns the number of mappings ingested.
func (p *Pipeline) Wardrive(cfg WardriveConfig, correctDrift bool) (int, error) {
	snaps, err := Wardrive(p.World, cfg)
	if err != nil {
		return 0, err
	}
	if correctDrift {
		if _, _, err := CorrectDrift(snaps); err != nil {
			return 0, err
		}
	}
	ms := MappingsFrom(snaps)
	if err := p.Server.Ingest(ms); err != nil {
		return 0, err
	}
	// In-process deployments share the oracle object; a networked client
	// would FetchOracle instead.
	p.Oracle = p.Server.Database().Oracle()
	return len(ms), nil
}

// QueryStats reports what a localization query consumed.
type QueryStats struct {
	ExtractedKeypoints int
	UploadedKeypoints  int
	UploadBytes        int64
}

// Localize captures a frame from cam, extracts keypoints, filters them to
// the SelectCount most unique via the oracle, and runs the server's
// localization pipeline. It is the end-to-end client flow of the paper's
// Figure 7 without the network in between.
func (p *Pipeline) Localize(cam Camera) (LocateResult, QueryStats, error) {
	return p.LocalizeContext(context.Background(), cam)
}

// LocalizeContext is Localize under a context: cancellation or an expired
// deadline stops the localization pipeline at its next stage boundary
// (LSH retrieval, clustering, each pose-solver generation) and returns
// ErrCanceled or ErrDeadlineExceeded.
func (p *Pipeline) LocalizeContext(ctx context.Context, cam Camera) (LocateResult, QueryStats, error) {
	fr, err := Render(p.World, cam)
	if err != nil {
		return LocateResult{}, QueryStats{}, err
	}
	return p.LocalizeFrameContext(ctx, fr)
}

// LocalizeFrame runs the client flow on an already-rendered frame. Frames
// failing the blur gate return ErrFrameBlurred without any extraction work.
func (p *Pipeline) LocalizeFrame(fr *Frame) (LocateResult, QueryStats, error) {
	return p.LocalizeFrameContext(context.Background(), fr)
}

// LocalizeFrameContext is LocalizeFrame under a context (see
// LocalizeContext for the cancellation semantics).
func (p *Pipeline) LocalizeFrameContext(ctx context.Context, fr *Frame) (LocateResult, QueryStats, error) {
	if p.BlurThreshold > 0 && BlurScore(fr.Image) < p.BlurThreshold {
		return LocateResult{}, QueryStats{}, ErrFrameBlurred
	}
	kps := ExtractKeypoints(fr.Image, p.Sift)
	sel := kps
	if p.Oracle != nil && p.SelectCount > 0 && len(kps) > p.SelectCount {
		var err error
		sel, err = p.Oracle.SelectUnique(kps, p.SelectCount)
		if err != nil {
			return LocateResult{}, QueryStats{}, err
		}
	}
	stats := QueryStats{
		ExtractedKeypoints: len(kps),
		UploadedKeypoints:  len(sel),
		UploadBytes:        QueryUploadBytes(len(sel)),
	}
	res, err := p.Server.Database().Locate(ctx, sel, IntrinsicsOf(fr.Cam))
	if err != nil {
		return LocateResult{}, stats, err
	}
	return res, stats, nil
}
