package visualprint

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"visualprint/internal/cluster"
	"visualprint/internal/codec"
	"visualprint/internal/core"
	"visualprint/internal/lsh"
	"visualprint/internal/obs"
	"visualprint/internal/odelta"
	"visualprint/internal/pose"
	"visualprint/internal/repl"
	"visualprint/internal/server"
	"visualprint/internal/sift"
	"visualprint/internal/track"
)

// Configuration substrate types, re-exported so ServerConfig is expressible
// entirely in terms of this package's surface.
type (
	// LSHParams configures the locality-sensitive hash family indexing the
	// keypoint-to-3D lookup table.
	LSHParams = lsh.Params
	// ClusterParams tunes the density clustering that picks the consensus
	// 3D candidate cloud before pose solving.
	ClusterParams = cluster.Params
	// PoseOptions tunes the differential-evolution pose solver.
	PoseOptions = pose.Options
)

// ServerConfig configures the cloud service: index family, oracle sizing,
// candidate retrieval, clustering, pose solving and persistence thresholds.
// It is owned by this package — field-for-field convertible to the internal
// engine configuration, but no longer an alias leaking internal types.
// Start from DefaultServerConfig and override fields as needed; the zero
// value is not a working configuration.
type ServerConfig struct {
	// LSH selects the hash family of the keypoint lookup table.
	LSH LSHParams
	// Oracle sizes the uniqueness oracle (counting Bloom filters).
	Oracle OracleParams
	// NeighborsPerKeypoint is n in the paper's |K|*n candidate retrieval.
	NeighborsPerKeypoint int
	// MaxMatchDistSq rejects LSH candidates farther (squared Euclidean)
	// than this from the query descriptor; 0 accepts everything.
	MaxMatchDistSq int
	// Cluster tunes consensus clustering over the 3D candidates.
	Cluster ClusterParams
	// Pose tunes the pose solver.
	Pose PoseOptions
	// LocateParallelism bounds the per-query LSH retrieval worker pool
	// (0 = GOMAXPROCS, 1 = serial).
	LocateParallelism int
	// WALCompactBytes is the write-ahead-log size past which the
	// background snapshotter folds the log into a fresh snapshot (0 =
	// engine default). Only meaningful for a durable server (OpenData).
	WALCompactBytes int64
	// OracleSnapshotBudgetBytes caps memory spent on retained oracle
	// download versions used for diff refreshes (0 = engine default).
	OracleSnapshotBudgetBytes int64
	// OracleDeltaWindow bounds how many recent oracle epochs keep
	// compressed cell-delta records for versioned OracleSync requests:
	// clients within the window refresh by delta chain, older clients
	// full-sync. 0 is the engine default (64 epochs); negative disables
	// delta retention entirely.
	OracleDeltaWindow int
	// OracleDeltaBudgetBytes caps the bytes retained by the delta window
	// (0 = engine default, 64 MB).
	OracleDeltaBudgetBytes int64
}

// engine converts the public configuration to the internal engine's. The
// two structs are intentionally field-identical; the compiler enforces it.
func (c ServerConfig) engine() server.DatabaseConfig { return server.DatabaseConfig(c) }

// DefaultServerConfig returns a configuration scaled for simulated venues.
func DefaultServerConfig() ServerConfig {
	return ServerConfig(server.DefaultDatabaseConfig())
}

// VenueConfig fixes a named venue's shard topology: how many shard engines
// its mappings are partitioned across and the spatial cell size used as the
// partition key. Topology is immutable once the venue exists and is
// persisted alongside the venue's data.
type VenueConfig = server.VenueConfig

// Server is the VisualPrint cloud service: the LSH keypoint-to-3D lookup
// table, the uniqueness oracle, and the localization pipeline, served over
// a length-prefixed binary TCP protocol. A Server hosts any number of
// venues: the default venue (the empty name) preserves the original
// single-tenant behavior, and named venues — created on first ingest — each
// own an isolated set of spatial shard engines with their own indexes,
// oracles and durable directories.
type Server struct {
	db      *server.Database
	router  *server.Router
	srv     *server.Server
	debug   *http.Server
	netOpts []server.Option
	durable bool

	// Replication fleet state (nil unless WithReplication; see
	// internal/repl). rs is the role/offset control block shared with the
	// serving layer; node is the background tail/full-sync loop.
	rs   *server.ReplState
	node *repl.Node
}

// serverOptions collects what ServerOption closures configure before the
// Server exists.
type serverOptions struct {
	net    []server.Option
	venues map[string]VenueConfig
	repl   *ReplicationOptions
}

// ServerOption configures a Server at construction: the network front end's
// admission-control bounds and drain behavior, and venue shard topologies.
// It is a root-owned functional option (no longer an alias of an internal
// type); options are applied by NewServer, network options take effect at
// Listen.
type ServerOption func(*serverOptions)

// WithMaxInFlight bounds concurrently executing requests; n <= 0 removes
// the bound (and with it, admission control and load shedding).
func WithMaxInFlight(n int) ServerOption {
	return func(o *serverOptions) { o.net = append(o.net, server.WithMaxInFlight(n)) }
}

// WithQueueDepth bounds requests waiting for an execution slot; arrivals
// beyond the bound are shed immediately with ErrOverloaded. The default is
// a generous multiple of the in-flight bound.
func WithQueueDepth(n int) ServerOption {
	return func(o *serverOptions) { o.net = append(o.net, server.WithQueueDepth(n)) }
}

// WithDrainTimeout bounds how long Shutdown waits for in-flight requests
// when its context has no deadline of its own; past it, remaining work is
// canceled. 0 (the default) waits indefinitely.
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.net = append(o.net, server.WithDrainTimeout(d)) }
}

// WithVenueShards fixes the shard count a named venue is created with. The
// topology applies when the venue first comes to life (first ingest, or
// recovery via OpenData); it cannot change afterwards. Venues without a
// configured topology default to a single shard.
func WithVenueShards(venue string, shards int) ServerOption {
	return WithVenueTopology(venue, VenueConfig{Shards: shards})
}

// WithVenueTopology is WithVenueShards with full control (shard count and
// spatial cell size).
func WithVenueTopology(venue string, cfg VenueConfig) ServerOption {
	return func(o *serverOptions) {
		if o.venues == nil {
			o.venues = make(map[string]VenueConfig)
		}
		o.venues[venue] = cfg
	}
}

// ReplicationOptions makes a server a member of a read-scaled replication
// fleet: one primary accepts writes and streams its write-ahead log to any
// number of replicas, which serve reads from byte-identical state; a
// sentinel process (cmd/vpsentinel, or repl.Sentinel in-process) promotes
// the most-caught-up replica when the primary dies. Replication covers the
// server's default venue and requires a durable server (OpenData before
// Listen).
type ReplicationOptions struct {
	// Advertise is the address fleet peers and redirected clients reach
	// this node at (the bind address is often ":0" or a wildcard, so it
	// cannot be inferred). Required.
	Advertise string
	// Primary, when non-empty, starts the node as a replica of that
	// address. Empty starts it as the primary.
	Primary string
	// MinSyncReplicas, when > 0, makes the primary semi-synchronous: an
	// ingest is acknowledged only once that many replicas confirmed it
	// durable — the failover guarantee that a promoted replica holds every
	// acknowledged write as long as fewer than MinSyncReplicas replicas die
	// with the primary. 0 acknowledges on local durability alone.
	MinSyncReplicas int
	// SyncTimeout bounds the semi-sync wait (default 5s); expiry fails the
	// ingest with ErrReplSyncTimeout (the write is locally durable but
	// under-replicated).
	SyncTimeout time.Duration
	// MaxStaleness is how long a replica serves reads after losing contact
	// with its primary before redirecting clients to it (default 3s).
	MaxStaleness time.Duration
}

// WithReplication enrolls the server in a replication fleet.
func WithReplication(o ReplicationOptions) ServerOption {
	return func(so *serverOptions) { so.repl = &o }
}

// NewServer creates a cloud service with an empty default venue. Options
// configure venue topologies immediately and the network front end once
// Listen starts it.
func NewServer(cfg ServerConfig, opts ...ServerOption) (*Server, error) {
	var so serverOptions
	for _, o := range opts {
		if o != nil {
			o(&so)
		}
	}
	ecfg := cfg.engine()
	var db *server.Database
	var err error
	if so.repl != nil {
		if so.repl.Advertise == "" {
			return nil, errors.New("visualprint: ReplicationOptions requires Advertise")
		}
		// Replication streams seq-tagged WAL records; the default venue
		// must run the shard (seq-mode) engine so records re-apply
		// byte-identically on replicas.
		db, err = server.NewShardDatabase(ecfg)
	} else {
		db, err = server.NewDatabase(ecfg)
	}
	if err != nil {
		return nil, err
	}
	s := &Server{db: db, netOpts: so.net}
	if so.repl != nil {
		s.rs = server.NewReplState(db, server.ReplConfig{
			Self:            so.repl.Advertise,
			Primary:         so.repl.Primary,
			MinSyncReplicas: so.repl.MinSyncReplicas,
			SyncTimeout:     so.repl.SyncTimeout,
			MaxStaleness:    so.repl.MaxStaleness,
		})
	}
	s.router = server.NewRouter(db, ecfg)
	for name, vc := range so.venues {
		if err := s.router.ConfigureVenue(name, vc); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// OpenData makes the service durable, backed by the given directory: every
// acknowledged ingest is written to a write-ahead log before it is applied,
// and a background snapshotter periodically folds the log into a compact
// binary snapshot. If the directory already holds data — including data left
// by a crashed process — the prior state is recovered first, bit-identically.
// The default venue keeps the original layout at the directory root (so
// pre-venue data directories open unchanged); named venues live under
// dir/venues/<name>/shard-NNN. Must be called before any ingest; an empty
// dir string is a no-op (the server stays in-memory).
func (s *Server) OpenData(dir string) error {
	if dir == "" {
		return nil
	}
	if err := s.db.Open(dir); err != nil {
		return err
	}
	if err := s.router.OpenVenues(dir); err != nil {
		s.db.Close()
		return err
	}
	s.durable = true
	return nil
}

// Listen starts serving on addr ("host:port"; ":0" picks a free port) and
// returns the bound address. On a replicated server this also starts the
// replication loop: a replica begins tailing (or full-syncing from) its
// primary as soon as the listener is up.
func (s *Server) Listen(addr string) (net.Addr, error) {
	if s.rs != nil && !s.durable {
		return nil, errors.New("visualprint: a replicated server requires a data directory (OpenData before Listen)")
	}
	opts := append([]server.Option{server.WithRouter(s.router)}, s.netOpts...)
	if s.rs != nil {
		opts = append(opts, server.WithReplState(s.rs))
	}
	srv, err := server.ListenAndServe(addr, s.db, opts...)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	if s.rs != nil {
		node, err := repl.StartNode(repl.NodeConfig{DB: s.db, State: s.rs})
		if err != nil {
			srv.Close()
			s.srv = nil
			return nil, err
		}
		s.node = node
	}
	return srv.Addr(), nil
}

// ServeDebug starts an HTTP debug listener on addr serving the metrics
// report as JSON at /debug/metrics and the standard pprof handlers under
// /debug/pprof/. It returns the bound address; Close stops the listener.
// Enables observability on the database if nothing has yet.
func (s *Server) ServeDebug(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.debug = &http.Server{
		Handler: obs.DebugMux(s.db.EnableObs()),
		// A debug port must not let a stalled peer pin a connection
		// forever while it sends its request header.
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func(srv *http.Server) {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Default().Warnf("visualprint debug listener: %v", err)
		}
	}(s.debug)
	return ln.Addr(), nil
}

// Metrics returns the server's observability report directly (in-process).
// Enables observability on the database if nothing has yet.
func (s *Server) Metrics() MetricsReport {
	return s.db.EnableObs().Report()
}

// Close stops the network listener (if any), the debug listener (if any)
// and, for a durable server, flushes and closes every venue's data.
// In-flight requests are cut off; use Shutdown to drain them gracefully.
func (s *Server) Close() error {
	s.stopRepl()
	var err error
	if s.srv != nil {
		err = s.srv.Close()
	}
	if s.debug != nil {
		if dErr := s.debug.Close(); err == nil {
			err = dErr
		}
	}
	if rErr := s.router.Close(); err == nil {
		err = rErr
	}
	if dbErr := s.db.Close(); err == nil {
		err = dbErr
	}
	return err
}

// Shutdown stops the service gracefully: the listener closes, new requests
// are refused with ErrShuttingDown, and in-flight requests run to
// completion with their responses flushed. If ctx expires first (or the
// WithDrainTimeout bound does, when ctx has no deadline), remaining
// requests are canceled; their pipelines unwind promptly and answer
// ErrCanceled. Every venue's write-ahead log is flushed and its data
// directory closed either way, so an acknowledged ingest is durable across
// a forced drain too. Returns nil on a clean drain, ctx.Err() on a forced
// one.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopRepl()
	var err error
	if s.srv != nil {
		err = s.srv.Shutdown(ctx)
	}
	if s.debug != nil {
		if dErr := s.debug.Close(); err == nil {
			err = dErr
		}
	}
	if rErr := s.router.Close(); err == nil {
		err = rErr
	}
	if dbErr := s.db.Close(); err == nil {
		err = dbErr
	}
	return err
}

// stopRepl tears down the replication loop and control block, first so the
// node stops dialing peers before the listener and database go away. Safe
// to call twice and on a non-replicated server.
func (s *Server) stopRepl() {
	if s.node != nil {
		s.node.Close()
		s.node = nil
	}
	if s.rs != nil {
		s.rs.Close()
	}
}

// ReplStatus reports the server's replication state (role, epoch, applied
// offset, staleness, known primary); the zero value on a non-replicated
// server. It is the in-process equivalent of Client.ReplStatus.
func (s *Server) ReplStatus() ReplStatus {
	if s.rs == nil {
		return ReplStatus{}
	}
	return ReplStatus{
		Role:      s.rs.Role(),
		Epoch:     s.rs.Epoch(),
		Applied:   s.rs.Applied(),
		Staleness: s.rs.Staleness(),
		Primary:   s.rs.PrimaryAddr(),
	}
}

// Database gives direct access to the default venue's engine.
//
// It is a library-only escape hatch for benchmarks and tests that need the
// raw engine: calls through it bypass the service layer entirely — no
// admission control, no load shedding, no per-request metrics, and no venue
// routing. Deployed code (including this repo's cmd/ binaries) should use
// the public Server methods (Ingest, Locate, Stats, Compact), which go
// through the same instrumented paths the network front end uses.
func (s *Server) Database() *server.Database { return s.db }

// ConfigureVenue fixes the shard topology a venue will be created with
// (equivalent to the WithVenueShards option, for topologies decided after
// construction). It must run before the venue's first ingest; configuring a
// live venue returns an error, since resharding is not supported.
func (s *Server) ConfigureVenue(name string, cfg VenueConfig) error {
	return s.router.ConfigureVenue(name, cfg)
}

// Venues returns the sorted names of all live named venues (the default
// venue is not listed).
func (s *Server) Venues() []string { return s.router.Venues() }

// Ingest adds wardriven mappings to the default venue (in-process).
func (s *Server) Ingest(ms []Mapping) error {
	return s.db.Ingest(context.Background(), ms)
}

// IngestContext is Ingest under a context: cancellation is honored before
// the batch is logged; once the write-ahead log has accepted it, the batch
// runs to completion so an acknowledgment always means durable.
func (s *Server) IngestContext(ctx context.Context, ms []Mapping) error {
	return s.db.Ingest(ctx, ms)
}

// IngestVenue adds mappings to a named venue (in-process), creating the
// venue on first use. The batch is partitioned across the venue's shards by
// spatial cell and applied in parallel; it returns the venue's total
// mapping count after the batch. The empty venue name addresses the default
// venue.
func (s *Server) IngestVenue(ctx context.Context, venue string, ms []Mapping) (total int, err error) {
	return s.router.Ingest(ctx, venue, ms)
}

// Locate answers a localization query against a venue (in-process). The
// empty venue name addresses the default venue; a named venue fans the
// query across its shards and merges the candidates bit-identically to an
// unsharded database. Querying a venue that was never ingested returns
// ErrEmptyDatabase — venues never see each other's data.
func (s *Server) Locate(ctx context.Context, venue string, kps []Keypoint, intr Intrinsics) (LocateResult, error) {
	return s.router.Locate(ctx, venue, kps, intr)
}

// TrackConfig tunes the server-side continuous-localization session
// table: capacity and TTL of the session slots, the constant-velocity
// motion model's radius growth, and the residual gates deciding when a
// warm-started solve is accepted versus re-run cold.
type TrackConfig = track.Config

// DefaultTrackConfig returns the session-tracking configuration servers
// start with. Zero fields in a custom config fall back to these values.
func DefaultTrackConfig() TrackConfig { return track.DefaultConfig() }

// ConfigureTracking replaces the server's continuous-localization session
// configuration. Existing sessions are dropped (their next query solves
// cold and re-seeds); in-flight session queries finish against the old
// table. Safe to call on a live server.
func (s *Server) ConfigureTracking(cfg TrackConfig) { s.router.ConfigureTracking(cfg) }

// LocateSession is Locate within a continuous localization session: the
// non-zero sid keys server-side tracking state, letting repeat queries
// from the same moving device warm-start the pose solver from a motion
// prior. Results failing the residual acceptance gate are transparently
// re-solved cold, so a session query is never less accurate than Locate —
// and with sid 0 it is exactly Locate, bit for bit. Sessions are soft
// state (TTL- and capacity-evicted); callers just keep querying.
func (s *Server) LocateSession(ctx context.Context, venue string, sid uint64, kps []Keypoint, intr Intrinsics) (LocateResult, error) {
	return s.router.LocateSession(ctx, venue, sid, kps, intr)
}

// EndSession drops a session's tracking state eagerly (TTL eviction
// reclaims abandoned sessions anyway). No-op for sid 0 or unknown IDs.
func (s *Server) EndSession(venue string, sid uint64) { s.router.EndSession(venue, sid) }

// SessionHandle pins a client's queries to one continuous localization
// session; build one with Client.Session or VenueHandle.Session.
type SessionHandle = server.Session

// VenueOracle returns a venue's uniqueness oracle for in-process keypoint
// filtering. The default venue ("") shares the live oracle object (the
// in-process equivalent of FetchOracle); a named venue's oracle is
// assembled from its shards — a point-in-time copy, re-fetch after further
// ingests.
func (s *Server) VenueOracle(venue string) (*Oracle, error) {
	if venue == "" {
		return s.db.Oracle(), nil
	}
	blob, err := s.router.OracleBlob(venue)
	if err != nil {
		return nil, err
	}
	raw, err := codec.Gunzip(blob)
	if err != nil {
		return nil, err
	}
	return core.Read(bytes.NewReader(raw))
}

// Stats returns the default venue's state report: mapping and byte counts
// plus persistence status. For a named venue's aggregate, use VenueStats.
func (s *Server) Stats() DBStats { return s.db.Stats() }

// VenueStats aggregates a named venue's per-shard state reports. A venue
// that does not exist reports zeros; the empty name reports the default
// venue (same as Stats).
func (s *Server) VenueStats(venue string) DBStats { return s.router.Stats(venue) }

// Compact synchronously folds every durable venue's state into fresh
// snapshots and truncates the write-ahead logs. A no-op for an in-memory
// server.
func (s *Server) Compact() error {
	if !s.durable {
		return nil
	}
	if err := s.db.Compact(); err != nil {
		return err
	}
	return s.router.Compact()
}

// DBStats is the server's state report: mapping and byte counts plus
// persistence status (snapshot coverage, WAL size, last compaction). It is
// what Client.StatsFull returns over the wire.
type DBStats = server.DBStats

// Client is a connection to a VisualPrint cloud service.
type Client = server.Client

// VenueHandle pins a client's requests to one named venue; build one with
// Client.Venue. Handles are cheap values multiplexing over the client's
// single connection.
type VenueHandle = server.Venue

// OracleSync is the oracle-distribution handle — the one API for keeping a
// device's uniqueness oracle current. Sync pulls the cheapest sufficient
// transfer for the version the handle holds (an unchanged ack, a
// compressed cell-delta chain, or a full blob); Watch subscribes to the
// server's epoch-bump pushes and resyncs on each, replacing polling. Build
// one with Client.OracleSync or VenueHandle.OracleSync; it deprecates the
// FetchOracle/RefreshOracle pair. Pipeline.OracleSync mirrors the surface
// in-process.
type OracleSync = server.OracleSync

// OracleUpdate is one push-driven oracle refresh delivered by
// OracleSync.Watch. A non-nil Err is the watch's terminal failure; the
// channel closes after delivering it.
type OracleUpdate = server.OracleUpdate

// DialOption configures a client built by Connect.
type DialOption = server.DialOption

// RetryPolicy controls client-side retries: exponential backoff with
// jitter, applied only to errors that are provably safe to retry
// (ErrOverloaded always; a lost connection only for idempotent requests).
// Typed request outcomes — ErrNoConsensus, a deadline — are never retried.
type RetryPolicy = server.RetryPolicy

// DefaultRetryPolicy is a reasonable interactive-use policy: four attempts
// spanning roughly a quarter second of backoff.
func DefaultRetryPolicy() RetryPolicy { return server.DefaultRetryPolicy() }

// WithDialTimeout bounds each TCP dial — the initial connect and any
// automatic reconnect after a lost connection.
func WithDialTimeout(d time.Duration) DialOption { return server.WithDialTimeout(d) }

// WithRetryPolicy enables client-side retries; the default is none.
func WithRetryPolicy(p RetryPolicy) DialOption { return server.WithRetryPolicy(p) }

// WithVenue scopes every request the client makes to the named venue, as if
// each call went through Client.Venue(name). Against a server predating
// venue routing, requests fail with the typed ErrVenueUnsupported.
func WithVenue(name string) DialOption { return server.WithVenue(name) }

// WithClientLogger routes the client's connection-lifecycle messages
// (redials, envelope fallback) to l; nil silences them.
func WithClientLogger(l *Logger) DialOption { return server.WithLogger(l) }

// Logger is the level-tagged logger used across the library; build one
// with NewLogger or install a process-wide default with SetLogLevel.
type Logger = obs.Logger

// NewLogger builds a Logger writing level-tagged lines to w at the given
// minimum level: "debug", "info", "warn" or "error".
func NewLogger(w io.Writer, level string) (*Logger, error) {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.New(w, lv), nil
}

// Connect dials a VisualPrint server. It is the one client constructor: the
// full options set (dial timeout, retry policy, venue scoping, logging) is
// expressed as DialOptions, and the returned Client multiplexes requests
// over a single connection, reconnecting transparently when the transport
// drops between requests.
func Connect(addr string, opts ...DialOption) (*Client, error) {
	return server.Dial(addr, opts...)
}

// DialContext dials a VisualPrint server, honoring the context's deadline
// and cancellation during connection establishment.
//
// Deprecated: Connect is the canonical constructor; bound the dial with
// WithDialTimeout instead. DialContext remains for callers that must plumb
// an existing context's cancellation into connection establishment.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	return server.DialContext(ctx, addr, opts...)
}

// Typed localization failures, re-exported so callers can errors.Is on a
// Query error — locally or through a networked Client, where the sentinel
// travels as a stable wire code — instead of matching message text.
var (
	ErrEmptyDatabase = server.ErrEmptyDatabase
	ErrTooFewMatches = server.ErrTooFewMatches
	ErrNoConsensus   = server.ErrNoConsensus
)

// Typed request-lifecycle failures. Like the localization sentinels they
// cross the wire as stable one-byte codes, so errors.Is(err, sentinel)
// holds identically whether the call was in-process or through a networked
// Client — the round trip is part of the API contract. The context
// sentinels additionally satisfy errors.Is against their standard-library
// counterparts: errors.Is(err, context.DeadlineExceeded) is true for a
// wire-decoded ErrDeadlineExceeded, and errors.Is(err, context.Canceled)
// for ErrCanceled.
var (
	// ErrOverloaded: the server's dispatch queue was full and the request
	// was shed before any work was done; always safe to retry after
	// backoff (WithRetryPolicy does so automatically).
	ErrOverloaded = server.ErrOverloaded
	// ErrShuttingDown: the server is draining; it finishes in-flight work
	// but accepts nothing new.
	ErrShuttingDown = server.ErrShuttingDown
	// ErrDeadlineExceeded: the request's deadline expired mid-pipeline and
	// the server abandoned the remaining work.
	ErrDeadlineExceeded = server.ErrDeadlineExceeded
	// ErrCanceled: the request was canceled — client-side cancel,
	// connection death, or server drain cutoff — mid-pipeline.
	ErrCanceled = server.ErrCanceled
	// ErrVenueUnsupported: a venue-scoped request reached a server
	// predating venue routing; detected once per connection, then sticky.
	ErrVenueUnsupported = server.ErrVenueUnsupported
)

// IsRemoteError reports whether err was diagnosed by the server (as opposed
// to a transport failure).
func IsRemoteError(err error) bool { return server.IsRemote(err) }

// MetricsReport is the server's observability report: uptime, counters,
// gauges, latency histograms with quantile summaries, and the slow-request
// log with per-stage breakdowns. Client.Metrics returns it over the wire;
// Server.Metrics and the debug HTTP endpoint produce the same report.
type MetricsReport = obs.Report

// Observability error sentinels, re-exported for errors.Is.
var (
	// ErrMetricsUnsupported: the dialed server predates the metrics RPC
	// or runs with observability disabled.
	ErrMetricsUnsupported = server.ErrMetricsUnsupported
	// ErrConnectionLost: the transport died with requests in flight.
	ErrConnectionLost = server.ErrConnectionLost
	// ErrWatchUnsupported: OracleSync.Watch reached a server predating
	// oracle subscriptions, or a protocol-v1 connection; poll Sync instead.
	ErrWatchUnsupported = server.ErrWatchUnsupported
)

// Replication surface, re-exported for fleet-aware callers.

// Role is a fleet member's replication role.
type Role = server.Role

// Replication roles: the primary accepts writes; replicas serve reads from
// streamed state; a candidate is a replica mid-full-sync (reads redirect).
const (
	RolePrimary   = server.RolePrimary
	RoleReplica   = server.RoleReplica
	RoleCandidate = server.RoleCandidate
)

// ReplStatus is a fleet member's replication self-report; Client.ReplStatus
// fetches it over the wire, Server.ReplStatus in-process.
type ReplStatus = server.ReplStatus

var (
	// ErrNotPrimary: a write (or a read past the staleness bound) reached a
	// replica. The error carries the primary's address; a Client follows it
	// automatically, so callers normally never see this sentinel.
	ErrNotPrimary = server.ErrNotPrimary
	// ErrReplSyncTimeout: a semi-sync primary could not confirm the ingest
	// on MinSyncReplicas replicas in time. The write is durable locally but
	// under-replicated; retrying after the fleet heals is safe (re-ingest
	// of identical mappings is not deduplicated, though, so prefer checking
	// replica acks via metrics before retrying).
	ErrReplSyncTimeout = server.ErrReplSyncTimeout
)

// WithReadFromReplica routes the client's read RPCs (Query, FetchOracle,
// RefreshOracle, Stats) to a replica, falling back to the primary when the
// replica is unreachable or too stale. Writes always go to the primary.
func WithReadFromReplica(addr string) DialOption { return server.WithReadFromReplica(addr) }

// SetLogLevel replaces the process-wide default logger (used by servers,
// databases and stores whose owner never installed one) with one writing
// level-tagged lines to stderr at the given minimum level: "debug",
// "info", "warn" or "error".
func SetLogLevel(level string) error {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return err
	}
	obs.SetDefault(obs.New(os.Stderr, lv))
	return nil
}

// QueryUploadBytes returns the wire size of a localization query carrying n
// keypoints — 200 keypoints cost ~29 KB, in line with the paper's "short
// description (~30KB)".
func QueryUploadBytes(n int) int64 { return server.QueryUploadBytes(n) }

// Pipeline is the single-process convenience API: world, wardriving, cloud
// database and client-side filtering in one object. It is what the examples
// and benchmarks use when network transport is not the subject under test.
type Pipeline struct {
	World  *World
	Server *Server
	Oracle *Oracle

	// Venue scopes the pipeline's server interactions to one named venue;
	// empty (the default) uses the default venue. Set it before Wardrive.
	Venue string
	// SelectCount is how many most-unique keypoints a query uploads
	// (the paper evaluates 200 and 500).
	SelectCount int
	// Sift configures client-side extraction.
	Sift SiftConfig
	// BlurThreshold rejects frames whose BlurScore falls below it before
	// any extraction work (0 disables the check). The client app performs
	// this quick check to skip motion-blurred frames.
	BlurThreshold float64

	// sessionID, when non-zero, threads every Localize call through the
	// server's continuous-localization session keyed by it (StartSession /
	// EndSession manage it).
	sessionID uint64
}

// StartSession begins a continuous localization session: subsequent
// Localize calls carry a shared session ID, so the server warm-starts
// each pose solve from the device's tracked trajectory. Starting a new
// session while one is active ends the old one first.
func (p *Pipeline) StartSession() {
	if p.sessionID != 0 {
		p.EndSession()
	}
	for p.sessionID == 0 {
		p.sessionID = rand.Uint64()
	}
}

// EndSession ends the active session (if any): the server's tracking
// state is dropped and subsequent Localize calls solve cold.
func (p *Pipeline) EndSession() {
	if p.sessionID != 0 {
		p.Server.EndSession(p.Venue, p.sessionID)
		p.sessionID = 0
	}
}

// SessionID returns the active session's ID, or 0 when none is active.
func (p *Pipeline) SessionID() uint64 { return p.sessionID }

// ErrFrameBlurred is returned by LocalizeFrame for frames rejected by the
// blur gate.
var ErrFrameBlurred = errFrameBlurred{}

type errFrameBlurred struct{}

func (errFrameBlurred) Error() string { return "visualprint: frame rejected as blurred" }

// NewPipeline builds a pipeline over a world with a fresh server.
func NewPipeline(w *World, cfg ServerConfig, opts ...ServerOption) (*Pipeline, error) {
	srv, err := NewServer(cfg, opts...)
	if err != nil {
		return nil, err
	}
	sc := sift.DefaultConfig()
	sc.ContrastThreshold = 0.02
	return &Pipeline{
		World:       w,
		Server:      srv,
		SelectCount: 200,
		Sift:        sc,
	}, nil
}

// Wardrive walks the world, optionally corrects drift with ICP, ingests
// the mappings into the pipeline's venue, and installs the
// (server-identical) oracle for client-side filtering. It returns the
// number of mappings ingested.
func (p *Pipeline) Wardrive(cfg WardriveConfig, correctDrift bool) (int, error) {
	snaps, err := Wardrive(p.World, cfg)
	if err != nil {
		return 0, err
	}
	if correctDrift {
		if _, _, err := CorrectDrift(snaps); err != nil {
			return 0, err
		}
	}
	ms := MappingsFrom(snaps)
	if _, err := p.Server.IngestVenue(context.Background(), p.Venue, ms); err != nil {
		return 0, err
	}
	// In-process deployments get the oracle directly (shared for the
	// default venue, assembled from the shards for a named one); a
	// networked client would FetchOracle instead.
	o, err := p.Server.VenueOracle(p.Venue)
	if err != nil {
		return 0, err
	}
	p.Oracle = o
	return len(ms), nil
}

// PipelineOracleSync mirrors the networked OracleSync handle for
// single-process deployments: the same Sync / Watch / Version surface,
// served by the embedded engine through the identical version-and-delta
// logic a remote client exercises — TransferBytes reports what the syncs
// would have cost on the wire. Build one with Pipeline.OracleSync.
type PipelineOracleSync struct {
	p *Pipeline

	mu        sync.Mutex
	oracle    *Oracle
	epoch     uint64
	inserts   uint64
	versioned bool
	bytes     int64
}

// OracleSync returns the in-process oracle-distribution handle for the
// pipeline's venue. Syncing it also installs the result as the pipeline's
// filtering oracle (p.Oracle), so push-driven deployments can keep a
// wardriving pipeline's client-side filter current with Watch.
func (p *Pipeline) OracleSync() *PipelineOracleSync { return &PipelineOracleSync{p: p} }

// Version returns the held oracle's version identity; ok is false before
// the first successful Sync.
func (h *PipelineOracleSync) Version() (epoch, inserts uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch, h.inserts, h.versioned
}

// TransferBytes returns the cumulative bytes the handle's syncs would have
// transferred over the wire (delta chains and full blobs; unchanged acks
// cost the fixed version stamp).
func (h *PipelineOracleSync) TransferBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// Sync brings the handle (and p.Oracle) up to the engine's latest epoch,
// applying a delta chain when the held version is inside the server's
// retained window and a full rebuild otherwise.
func (h *PipelineOracleSync) Sync(ctx context.Context) (*Oracle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.syncLocked()
}

func (h *PipelineOracleSync) syncLocked() (*Oracle, error) {
	haveEpoch, haveInserts := ^uint64(0), ^uint64(0)
	if h.oracle != nil && h.versioned {
		haveEpoch, haveInserts = h.epoch, h.inserts
	}
	res, err := h.p.Server.router.OracleSyncSince(h.p.Venue, haveEpoch, haveInserts)
	if err != nil {
		return nil, err
	}
	switch {
	case res.Unchanged:
		h.bytes += 16
		return h.oracle, nil
	case res.Delta != nil:
		h.bytes += int64(len(res.Delta))
		recs, err := odelta.DecodeChain(res.Delta)
		if err != nil {
			return nil, err
		}
		o, err := odelta.ApplyChain(h.oracle, recs)
		if err != nil {
			return nil, err
		}
		h.install(o, res.Epoch, res.Inserts)
		return o, nil
	default:
		h.bytes += int64(len(res.Blob))
		raw, err := codec.Gunzip(res.Blob)
		if err != nil {
			return nil, err
		}
		o, err := core.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		h.install(o, res.Epoch, res.Inserts)
		return o, nil
	}
}

func (h *PipelineOracleSync) install(o *Oracle, epoch, inserts uint64) {
	h.oracle, h.epoch, h.inserts, h.versioned = o, epoch, inserts, true
	h.p.Oracle = o
}

// Watch mirrors OracleSync.Watch in-process: it delivers a synced oracle
// whenever the engine's epoch advances past the held version, coalescing
// bursts to the latest state. The channel closes when ctx is canceled, or
// after delivering a terminal failure in OracleUpdate.Err.
func (h *PipelineOracleSync) Watch(ctx context.Context) (<-chan OracleUpdate, error) {
	// Fail venue problems synchronously, like the networked handle does.
	if _, _, _, err := h.p.Server.router.VenueEpochSignal(h.p.Venue, ctx.Done()); err != nil {
		return nil, err
	}
	out := make(chan OracleUpdate, 1)
	go func() {
		defer close(out)
		for {
			epoch, inserts, ch, err := h.p.Server.router.VenueEpochSignal(h.p.Venue, ctx.Done())
			if err == nil {
				he, hi, ok := h.Version()
				if !ok || he != epoch || hi != inserts {
					var o *Oracle
					if o, err = h.Sync(ctx); err == nil {
						// Snapshot: the next delta sync patches the held
						// oracle in place (see the networked handle).
						o, err = o.Clone()
					}
					if err == nil {
						e2, i2, _ := h.Version()
						select {
						case out <- OracleUpdate{Oracle: o, Epoch: e2, Inserts: i2}:
						case <-ctx.Done():
							return
						}
					}
				}
			}
			if err != nil {
				if ctx.Err() == nil {
					select {
					case out <- OracleUpdate{Err: err}:
					case <-ctx.Done():
					}
				}
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
	return out, nil
}

// QueryStats reports what a localization query consumed.
type QueryStats struct {
	ExtractedKeypoints int
	UploadedKeypoints  int
	UploadBytes        int64
}

// Localize captures a frame from cam, extracts keypoints, filters them to
// the SelectCount most unique via the oracle, and runs the server's
// localization pipeline. It is the end-to-end client flow of the paper's
// Figure 7 without the network in between.
func (p *Pipeline) Localize(cam Camera) (LocateResult, QueryStats, error) {
	return p.LocalizeContext(context.Background(), cam)
}

// LocalizeContext is Localize under a context: cancellation or an expired
// deadline stops the localization pipeline at its next stage boundary
// (LSH retrieval, clustering, each pose-solver generation) and returns
// ErrCanceled or ErrDeadlineExceeded.
func (p *Pipeline) LocalizeContext(ctx context.Context, cam Camera) (LocateResult, QueryStats, error) {
	fr, err := Render(p.World, cam)
	if err != nil {
		return LocateResult{}, QueryStats{}, err
	}
	return p.LocalizeFrameContext(ctx, fr)
}

// LocalizeFrame runs the client flow on an already-rendered frame. Frames
// failing the blur gate return ErrFrameBlurred without any extraction work.
func (p *Pipeline) LocalizeFrame(fr *Frame) (LocateResult, QueryStats, error) {
	return p.LocalizeFrameContext(context.Background(), fr)
}

// LocalizeFrameContext is LocalizeFrame under a context (see
// LocalizeContext for the cancellation semantics).
func (p *Pipeline) LocalizeFrameContext(ctx context.Context, fr *Frame) (LocateResult, QueryStats, error) {
	if p.BlurThreshold > 0 && BlurScore(fr.Image) < p.BlurThreshold {
		return LocateResult{}, QueryStats{}, ErrFrameBlurred
	}
	kps := ExtractKeypoints(fr.Image, p.Sift)
	sel := kps
	if p.Oracle != nil && p.SelectCount > 0 && len(kps) > p.SelectCount {
		var err error
		sel, err = p.Oracle.SelectUnique(kps, p.SelectCount)
		if err != nil {
			return LocateResult{}, QueryStats{}, err
		}
	}
	stats := QueryStats{
		ExtractedKeypoints: len(kps),
		UploadedKeypoints:  len(sel),
		UploadBytes:        QueryUploadBytes(len(sel)),
	}
	res, err := p.Server.LocateSession(ctx, p.Venue, p.sessionID, sel, IntrinsicsOf(fr.Cam))
	if err != nil {
		return LocateResult{}, stats, err
	}
	return res, stats, nil
}
