# VisualPrint build/verify targets.

.PHONY: build test verify chaos bench bench-short bench-check bench-cores \
	bench-track bench-track-short bench-oracle clean

build:
	go build ./...

# Tier-1: the never-regress line tracked by ROADMAP.md.
test:
	go build ./... && go test ./...

# Full gate: vet + build + the whole suite under the race detector,
# including the chaos/fault-injection lifecycle tests.
verify:
	sh scripts/verify.sh

# The request-lifecycle and replication chaos suites alone, full-length,
# under -race: fault-injection proxy (latency, partitions — symmetric and
# one-way — blackhole, refused dials) against live clients with deadlines,
# retries and reconnects, plus the replication fleet tests (failover with
# acked-ingest preservation, full-sync feed loss mid-snapshot) and the
# session-table churn/expiry hammer. `go test -short` runs an abbreviated
# round as part of the normal suite.
chaos:
	go test -race -count=1 -v -run \
		'TestChaos|TestShutdown|TestShedUnderBurst|TestCancelFreesServerSlot|TestDeadlineEnforcedServerSide|TestProxy' \
		./internal/server/ ./internal/netsim/ ./internal/repl/ ./internal/track/

# Full measurement run: Go benchmarks once through, then the standard
# Locate workload with the machine-readable result in BENCH_locate.json
# (ns/op, allocs/op, queries/s at 1/2/4 clients, QPS-vs-cores curve at
# GOMAXPROCS 1/2/4, speedup vs the recorded pre-optimization baseline).
bench:
	go test -run NONE -bench . -benchtime 1x .
	go run ./cmd/vpbench -exp locate -scale full -cores 1,2,4 \
		-locate-json BENCH_locate.json
	go run ./cmd/vpbench -exp oracle -scale full -oracle-json BENCH_oracle.json

# CI-sized locate benchmark: same schema and code paths at ~10x less
# compute, keeping BENCH_locate.json generation exercised on every push.
bench-short:
	go run ./cmd/vpbench -exp locate -scale quick -cores 1,2 \
		-locate-json BENCH_locate_short.json

# CI regression gate: run the short locate workload into bench_current.json
# (left as a build artifact, never committed) and fail if ns/op regressed
# more than 2x against the checked-in BENCH_locate_short.json baseline,
# or if 2-core QPS falls below 1.5x 1-core (the gate auto-skips on hosts
# with a single CPU, where scaling is unmeasurable).
bench-check:
	go run ./cmd/vpbench -exp locate -scale quick \
		-locate-json bench_current.json \
		-baseline BENCH_locate_short.json -max-regress 2.0 \
		-cores 1,2 -cores-gate 1.5
	go run ./cmd/vpbench -exp oracle -scale quick \
		-oracle-json bench_oracle_current.json -oracle-gate 5

# Continuous-localization walk benchmark: the standard 24-frame walk
# solved cold (session-less) and warm (one tracked session), comparing DE
# generations and pose accuracy. Machine-readable result in
# BENCH_track.json; the acceptance line is gen_ratio <= 0.5 at
# median_err_m no worse than cold (pinned by TestTrackBenchmarkWarmSaves).
bench-track:
	go run ./cmd/vpbench -exp track -scale full -track-json BENCH_track.json

# CI-sized walk (smaller corpus, 10 frames), same schema and code paths.
bench-track-short:
	go run ./cmd/vpbench -exp track -scale quick -track-json BENCH_track_short.json

# Oracle distribution downlink benchmark alone: bytes-per-client-per-update
# for versioned delta sync vs pre-epoch full refetch across wardrive update
# sizes, written to BENCH_oracle.json. The acceptance line is >= 5x
# reduction at the smallest update size (gated by bench-check).
bench-oracle:
	go run ./cmd/vpbench -exp oracle -scale full -oracle-json BENCH_oracle.json

# QPS-vs-cores sweep alone, at full workload scale: GOMAXPROCS pinned to
# 1, 2 and 4 per point (plus 8 when the host has that many CPUs — edit the
# list below), curve written into BENCH_locate.json.
bench-cores:
	go run ./cmd/vpbench -exp locate -scale full -cores 1,2,4 \
		-locate-json BENCH_locate.json

# Remove built binaries and any data directories left by manual testing.
# Test-created data dirs live under the test tempdir and clean themselves up.
clean:
	go clean ./...
	rm -rf bin/ *.vpdata data/
