# VisualPrint build/verify targets.

.PHONY: build test verify bench clean

build:
	go build ./...

# Tier-1: the never-regress line tracked by ROADMAP.md.
test:
	go build ./... && go test ./...

# Full gate: vet + build + the whole suite under the race detector.
verify:
	sh scripts/verify.sh

bench:
	go test -run NONE -bench . -benchtime 1x .

# Remove built binaries and any data directories left by manual testing.
# Test-created data dirs live under the test tempdir and clean themselves up.
clean:
	go clean ./...
	rm -rf bin/ *.vpdata data/
