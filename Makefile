# VisualPrint build/verify targets.

.PHONY: build test verify bench bench-short clean

build:
	go build ./...

# Tier-1: the never-regress line tracked by ROADMAP.md.
test:
	go build ./... && go test ./...

# Full gate: vet + build + the whole suite under the race detector.
verify:
	sh scripts/verify.sh

# Full measurement run: Go benchmarks once through, then the standard
# Locate workload with the machine-readable result in BENCH_locate.json
# (ns/op, allocs/op, queries/s at 1/2/4 clients, speedup vs the recorded
# pre-optimization baseline).
bench:
	go test -run NONE -bench . -benchtime 1x .
	go run ./cmd/vpbench -exp locate -scale full -locate-json BENCH_locate.json

# CI-sized locate benchmark: same schema and code paths at ~10x less
# compute, keeping BENCH_locate.json generation exercised on every push.
bench-short:
	go run ./cmd/vpbench -exp locate -scale quick -locate-json BENCH_locate_short.json

# Remove built binaries and any data directories left by manual testing.
# Test-created data dirs live under the test tempdir and clean themselves up.
clean:
	go clean ./...
	rm -rf bin/ *.vpdata data/
