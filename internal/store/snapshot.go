package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot file layout. A snapshot is named snap-<seq:016x>.snap, where seq
// is the sequence number of the first WAL record NOT covered by the
// snapshot (i.e. the number of records folded in). The layout is:
//
//	[8-byte magic][uint64 seq][payload...][uint32 CRC32-IEEE]
//
// The trailing checksum covers the seq and the payload. The payload length
// is implicit: file size minus the fixed framing. Snapshots are written to
// a .tmp sibling and renamed into place, so a crash mid-snapshot never
// leaves a torn file under the final name — only a .tmp orphan, which Open
// deletes.
const (
	snapMagic       = "VPSNAP1\x00"
	snapFramingSize = 8 + 8 + 4 // magic + seq + trailing CRC
)

func snapshotName(seq uint64) string {
	return fmt.Sprintf("snap-%016x.snap", seq)
}

func parseSnapshotName(name string) (seq uint64, ok bool) {
	if n, err := fmt.Sscanf(name, "snap-%016x.snap", &seq); n != 1 || err != nil {
		return 0, false
	}
	if name != snapshotName(seq) {
		return 0, false
	}
	return seq, true
}

// writeSnapshot streams write's output into a temp file with the snapshot
// framing, fsyncs, and atomically renames it into place.
func writeSnapshot(dir string, seq uint64, write func(w io.Writer) error, noSync bool) (path string, err error) {
	final := filepath.Join(dir, snapshotName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err = bw.WriteString(snapMagic); err != nil {
		return "", err
	}
	crc := crc32.NewIEEE()
	cw := io.MultiWriter(bw, crc)
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	if _, err = cw.Write(seqBuf[:]); err != nil {
		return "", err
	}
	if err = write(cw); err != nil {
		return "", err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err = bw.Write(sum[:]); err != nil {
		return "", err
	}
	if err = bw.Flush(); err != nil {
		return "", err
	}
	if !noSync {
		if err = f.Sync(); err != nil {
			return "", err
		}
	}
	if err = f.Close(); err != nil {
		return "", err
	}
	if err = os.Rename(tmp, final); err != nil {
		return "", err
	}
	if !noSync {
		if err = syncDir(dir); err != nil {
			return "", err
		}
	}
	return final, nil
}

// validateSnapshot streams the whole file once, verifying the magic, the
// header/filename agreement and the trailing checksum.
func validateSnapshot(path string, wantSeq uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if info.Size() < snapFramingSize {
		return fmt.Errorf("store: snapshot %s too short (%d bytes)", filepath.Base(path), info.Size())
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, 8)
	if _, err := io.ReadFull(br, magic); err != nil {
		return err
	}
	if string(magic) != snapMagic {
		return fmt.Errorf("store: snapshot %s: bad magic", filepath.Base(path))
	}
	var seqBuf [8]byte
	if _, err := io.ReadFull(br, seqBuf[:]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint64(seqBuf[:]); got != wantSeq {
		return fmt.Errorf("store: snapshot %s: header seq %d disagrees with filename", filepath.Base(path), got)
	}
	crc := crc32.NewIEEE()
	crc.Write(seqBuf[:])
	if _, err := io.CopyN(crc, br, info.Size()-snapFramingSize); err != nil {
		return err
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return err
	}
	if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		return fmt.Errorf("store: snapshot %s: checksum mismatch", filepath.Base(path))
	}
	return nil
}

// loadSnapshot opens a previously validated snapshot and hands the payload
// reader to load.
func loadSnapshot(path string, load func(r io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	if _, err := br.Discard(8 + 8); err != nil { // magic + seq
		return err
	}
	return load(io.LimitReader(br, info.Size()-snapFramingSize))
}

// syncDir fsyncs a directory so a rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
