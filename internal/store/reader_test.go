package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// openEmpty opens and recovers a fresh store in a temp dir.
func openEmpty(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(nil, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	return s
}

// appendN appends n records ("rec-<seq>") and waits for durability.
func appendN(t *testing.T, s *Store, start, n int) {
	t.Helper()
	var last *Commit
	for i := 0; i < n; i++ {
		last = s.Append([]byte(fmt.Sprintf("rec-%04d", start+i)))
	}
	if last != nil {
		if err := last.Wait(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
}

// drain reads records until io.EOF, asserting contiguous seqs from want.
func drain(t *testing.T, r *WALReader, want uint64) uint64 {
	t.Helper()
	for {
		payload, seq, err := r.Next()
		if err == io.EOF {
			return want
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
		if got := string(payload); got != fmt.Sprintf("rec-%04d", want) {
			t.Fatalf("payload = %q at seq %d", got, seq)
		}
		want++
	}
}

func TestReaderRoundTrip(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()
	appendN(t, s, 0, 25)

	r, err := s.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drain(t, r, 0); got != 25 {
		t.Fatalf("drained to %d, want 25", got)
	}
	if r.Pos() != 25 {
		t.Fatalf("Pos = %d, want 25", r.Pos())
	}

	// New appends become visible to an already-EOF'd reader.
	appendN(t, s, 25, 5)
	if got := drain(t, r, 25); got != 30 {
		t.Fatalf("drained to %d, want 30", got)
	}
}

func TestReaderMidStreamStart(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()
	appendN(t, s, 0, 40)

	r, err := s.OpenReader(17)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Pos() != 17 {
		t.Fatalf("Pos = %d, want 17 before first read", r.Pos())
	}
	if got := drain(t, r, 17); got != 40 {
		t.Fatalf("drained to %d, want 40", got)
	}
}

func TestReaderResumeFromPos(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()
	appendN(t, s, 0, 30)

	r, err := s.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := r.Next(); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
	}
	pos := r.Pos()
	r.Close()
	if pos != 12 {
		t.Fatalf("Pos = %d, want 12", pos)
	}

	r2, err := s.OpenReader(pos)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := drain(t, r2, pos); got != 30 {
		t.Fatalf("drained to %d, want 30", got)
	}
}

func TestReaderAtHeadEOF(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()
	appendN(t, s, 0, 3)

	// Opening exactly at the head is valid — it means "tail from here".
	r, err := s.OpenReader(3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next at head = %v, want io.EOF", err)
	}
	appendN(t, s, 3, 2)
	if got := drain(t, r, 3); got != 5 {
		t.Fatalf("drained to %d, want 5", got)
	}
}

func TestReaderPastHeadCompacted(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()
	appendN(t, s, 0, 3)
	if _, err := s.OpenReader(4); !errors.Is(err, ErrCompacted) {
		t.Fatalf("OpenReader past head = %v, want ErrCompacted", err)
	}
}

func TestReaderAcrossRotation(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()
	appendN(t, s, 0, 10)

	r, err := s.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drain(t, r, 0); got != 10 {
		t.Fatalf("drained to %d, want 10", got)
	}

	// Snapshot rotates the WAL into a fresh segment; the live reader is
	// past the compaction point so it keeps tailing into the new segment.
	if err := s.Snapshot(func(w io.Writer) error { _, err := w.Write([]byte("state")); return err }); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 10, 7)
	if got := drain(t, r, 10); got != 17 {
		t.Fatalf("drained to %d, want 17", got)
	}

	// A fresh reader can also start inside the post-rotation segment.
	r2, err := s.OpenReader(12)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := drain(t, r2, 12); got != 17 {
		t.Fatalf("drained to %d, want 17", got)
	}
}

func TestReaderCompactedPosition(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()
	appendN(t, s, 0, 10)
	if err := s.Snapshot(func(w io.Writer) error { _, err := w.Write([]byte("state")); return err }); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 10, 5)

	// Records [0,10) were folded into the snapshot and their segment
	// deleted; asking for them must demand a full resync.
	if _, err := s.OpenReader(0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("OpenReader(0) after compaction = %v, want ErrCompacted", err)
	}
	// The retained region is still readable.
	r, err := s.OpenReader(10)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drain(t, r, 10); got != 15 {
		t.Fatalf("drained to %d, want 15", got)
	}
}

func TestReaderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(nil, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 20)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Position tokens are meaningful across process restarts.
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Recover(nil, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	r, err := s2.OpenReader(8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drain(t, r, 8); got != 20 {
		t.Fatalf("drained to %d, want 20", got)
	}
}

func TestReaderConcurrentWithAppends(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()

	const total = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			s.Append([]byte(fmt.Sprintf("rec-%04d", i)))
		}
	}()

	r, err := s.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var next uint64
	for next < total {
		payload, seq, err := r.Next()
		if err == io.EOF {
			continue // appender still working; poll
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if seq != next {
			t.Fatalf("seq = %d, want %d", seq, next)
		}
		if want := fmt.Sprintf("rec-%04d", next); string(payload) != want {
			t.Fatalf("payload = %q, want %q", payload, want)
		}
		next++
	}
	<-done
}

func TestInstallSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("snapshot-state-at-42")
	if err := s.InstallSnapshot(42, blob); err != nil {
		t.Fatal(err)
	}
	var loaded []byte
	load := func(r io.Reader) error {
		var err error
		loaded, err = io.ReadAll(r)
		return err
	}
	replayed := 0
	if err := s.Recover(load, func([]byte) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded, blob) {
		t.Fatalf("loaded %q, want %q", loaded, blob)
	}
	if replayed != 0 {
		t.Fatalf("replayed %d records, want 0", replayed)
	}
	if got := s.Seq(); got != 42 {
		t.Fatalf("Seq = %d, want 42", got)
	}
	// The WAL continues at the snapshot seq, so fleet-wide numbering holds.
	c := s.Append([]byte("rec-0042"))
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	r, err := s.OpenReader(42)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	payload, seq, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || string(payload) != "rec-0042" {
		t.Fatalf("got (%d, %q), want (42, rec-0042)", seq, payload)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallSnapshotRejectsNonEmpty(t *testing.T) {
	s := openEmpty(t)
	defer s.Close()
	if err := s.InstallSnapshot(1, []byte("x")); err == nil {
		t.Fatal("InstallSnapshot after Recover succeeded, want error")
	}
}
