package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Streaming WAL reader: the replication primary's record source. A
// WALReader walks the on-disk segment chain record by record, concurrently
// with live appends, and its position — the sequence number of the next
// record it will return — is a plain uint64 token: close the reader, ship
// the token anywhere, and OpenReader(token) resumes exactly where it left
// off, even across a process restart. The reader never blocks appends and
// appends never invalidate it; the only thing that can pull records out
// from under a reader is compaction (a snapshot deleting segments it has
// not read yet), which surfaces as the typed ErrCompacted — the signal that
// the follower must restart from a snapshot transfer instead.

// ErrCompacted reports that the records at the requested position are no
// longer individually available: either they were folded into a snapshot
// and their segments deleted, or the position does not exist in this log at
// all (a follower of a different history). Both remedies are the same —
// full resync from a snapshot — so both wear this sentinel. Match with
// errors.Is.
var ErrCompacted = errors.New("store: requested wal records already compacted")

// WALReader iterates committed WAL records in sequence order. It owns its
// file handles and reads with ReadAt, so it never perturbs the appender;
// it is NOT safe for concurrent use by multiple goroutines.
type WALReader struct {
	s *Store
	// next is the sequence number of the record the upcoming Next returns —
	// the resumable position token.
	next uint64
	// skip suppresses records below the originally requested position while
	// the reader fast-forwards through a segment (records are variable
	// length, so positioning within a segment is a scan).
	skip uint64

	f        *os.File
	segFirst uint64
	off      int64 // byte offset of the next record header in f

	warnedAt uint64 // position of the last tail-anomaly warning, to log once
	closed   bool
}

// OpenReader positions a streaming reader at record from. The position must
// be covered by the on-disk log: older than the earliest retained segment
// (or newer than the head) returns ErrCompacted, the follower's cue to full
// resync. The caller must Close the reader.
func (s *Store) OpenReader(from uint64) (*WALReader, error) {
	if !s.started {
		return nil, errors.New("store: OpenReader before Recover")
	}
	if head := s.wal.seq(); from > head {
		return nil, fmt.Errorf("%w: position %d past head %d", ErrCompacted, from, head)
	}
	segs, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("%w: no wal segments on disk", ErrCompacted)
	}
	// The segment holding `from` is the last one starting at or before it.
	i := sort.Search(len(segs), func(i int) bool { return segs[i] > from }) - 1
	if i < 0 {
		return nil, fmt.Errorf("%w: position %d predates earliest segment %d", ErrCompacted, from, segs[0])
	}
	r := &WALReader{s: s, next: segs[i], skip: from}
	if err := r.openSegment(segs[i]); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// listSegments returns the firstSeqs of every on-disk segment, ascending.
func (s *Store) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// openSegment opens the segment starting at firstSeq and validates its
// header. The reader's byte offset rewinds to the first record.
func (r *WALReader) openSegment(firstSeq uint64) error {
	path := filepath.Join(r.s.dir, segmentName(firstSeq))
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: segment %s deleted", ErrCompacted, segmentName(firstSeq))
		}
		return err
	}
	var hdr [walHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return fmt.Errorf("store: reading %s header: %w", filepath.Base(path), err)
	}
	if string(hdr[:8]) != walMagic {
		f.Close()
		return fmt.Errorf("store: %s: bad wal magic", filepath.Base(path))
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != firstSeq {
		f.Close()
		return fmt.Errorf("store: %s: header seq %d disagrees with filename", filepath.Base(path), got)
	}
	if r.f != nil {
		r.f.Close()
	}
	r.f, r.segFirst, r.off = f, firstSeq, walHeaderSize
	return nil
}

// Pos returns the resumable position token: the sequence number of the
// record the next call to Next returns. OpenReader(Pos()) — on this store
// or a restarted one — resumes the stream without loss or duplication.
func (r *WALReader) Pos() uint64 {
	if r.next < r.skip {
		return r.skip
	}
	return r.next
}

// Next returns the next committed record and its sequence number. io.EOF
// means the reader is caught up with the durable head — poll again after
// the appender makes progress; ErrCompacted means the stream can no longer
// be served from this position (full resync required). The returned payload
// is freshly allocated and owned by the caller.
func (r *WALReader) Next() (payload []byte, seq uint64, err error) {
	if r.closed {
		return nil, 0, errors.New("store: reader closed")
	}
	for {
		p, s, err := r.nextRecord()
		if err != nil {
			return nil, 0, err
		}
		if s < r.skip {
			continue // fast-forwarding within the first segment
		}
		return p, s, nil
	}
}

// nextRecord reads the record at the current offset, handling the live
// tail (clean EOF, torn bytes mid-append → io.EOF so the caller polls) and
// sealed-segment boundaries (advance to the successor segment).
func (r *WALReader) nextRecord() (payload []byte, seq uint64, err error) {
	var rh [recHeaderSize]byte
	n, err := r.f.ReadAt(rh[:], r.off)
	if n < recHeaderSize {
		if err != nil && err != io.EOF {
			return nil, 0, err
		}
		// Clean or torn end of this segment. If a successor segment exists
		// the segment is sealed (rotation happens at exact record
		// boundaries, so torn bytes here cannot occur); move on. Otherwise
		// this is the live tail: report EOF and let the caller poll.
		if r.advance() {
			return r.nextRecord()
		}
		return nil, 0, io.EOF
	}
	ln := binary.LittleEndian.Uint32(rh[:4])
	if int64(ln) > maxRecordSize {
		return nil, 0, fmt.Errorf("store: reader: implausible record length %d at %s+%d", ln, segmentName(r.segFirst), r.off)
	}
	payload = make([]byte, ln)
	if n, err := r.f.ReadAt(payload, r.off+recHeaderSize); n < int(ln) {
		if err != nil && err != io.EOF {
			return nil, 0, err
		}
		// Short payload: the appender's batch write is mid-flight. Poll.
		return nil, 0, io.EOF
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rh[4:]) {
		// A torn read racing the committer's Write looks exactly like this;
		// report EOF without advancing so the next poll re-reads the
		// completed bytes. (Persistent mismatch on a sealed record would be
		// corruption recovery itself will refuse; warn once per position.)
		if r.warnedAt != r.next {
			r.warnedAt = r.next
			r.s.log.Warnf("store: reader: checksum mismatch at record %d (%s+%d); retrying as torn tail", r.next, segmentName(r.segFirst), r.off)
		}
		return nil, 0, io.EOF
	}
	seq = r.next
	r.next++
	r.off += int64(recHeaderSize) + int64(ln)
	return payload, seq, nil
}

// advance moves the reader to the segment whose first record is r.next. It
// reports false when no such segment exists — i.e. the current segment is
// the active one and the reader is at the durable head.
func (r *WALReader) advance() bool {
	if r.segFirst == r.next {
		// An empty successor segment (rotation with no appends since) is
		// itself the active segment; stay put.
		return false
	}
	if _, err := os.Stat(filepath.Join(r.s.dir, segmentName(r.next))); err != nil {
		return false
	}
	return r.openSegment(r.next) == nil
}

// Close releases the reader's file handle. Safe to call twice.
func (r *WALReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Wipe removes every store-owned file (WAL segments, snapshots, temp
// files) from dir, leaving other files alone. The directory must not have
// an open Store over it. Used by replication full-sync to clear a
// replica's stale history before installing the primary's snapshot.
func Wipe(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		_, isSeg := parseSegmentName(name)
		_, isSnap := parseSnapshotName(name)
		if !isSeg && !isSnap && filepath.Ext(name) != ".tmp" {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return syncDir(dir)
}

// InstallSnapshot seeds a freshly opened, not-yet-recovered store with a
// snapshot payload covering the first seq records — the replication
// full-sync path: a follower wipes its directory, Opens a store, installs
// the snapshot the primary shipped, and Recovers; its state then equals the
// primary's at seq and its WAL continues from seq, so record sequence
// numbers line up across the fleet. The directory must hold no prior
// snapshots or segments.
func (s *Store) InstallSnapshot(seq uint64, payload []byte) error {
	if s.recovered {
		return errors.New("store: InstallSnapshot after Recover")
	}
	if len(s.recoverSnaps) > 0 || len(s.recoverSegs) > 0 {
		return errors.New("store: InstallSnapshot requires an empty store directory")
	}
	if _, err := writeSnapshot(s.dir, seq, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}, s.noSync); err != nil {
		return err
	}
	s.recoverSnaps = []uint64{seq}
	return nil
}
