package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"visualprint/internal/obs"
)

// WAL file layout. A segment file is named wal-<firstSeq:016x>.log and
// starts with a 16-byte header: the magic followed by the sequence number
// of its first record (the filename carries the same number and is the
// source of truth when the header is torn). Records follow back to back:
//
//	[uint32 payload length][uint32 CRC32-IEEE of payload][payload]
//
// Records are implicitly sequenced: header firstSeq + position in file.
const (
	walMagic      = "VPWAL1\x00\x00"
	walHeaderSize = 16
	recHeaderSize = 8
)

// maxRecordSize bounds one WAL record; a longer length prefix is treated as
// corruption rather than attempted as an allocation.
const maxRecordSize = 1 << 30

var errWALClosed = errors.New("store: wal closed")

// Commit is the durability handle returned by Append. Wait blocks until the
// record (batched with its group-commit peers) has reached stable storage.
type Commit struct{ b *commitBatch }

// Wait blocks until the record's batch is fsynced and returns the batch's
// write error, if any.
func (c *Commit) Wait() error {
	<-c.b.done
	return c.b.err
}

// commitBatch is the unit of group commit: every record reserved while the
// committer was busy shares one fsync and one done signal.
type commitBatch struct {
	done chan struct{}
	err  error
}

func failedCommit(err error) *Commit {
	b := &commitBatch{done: make(chan struct{}), err: err}
	close(b.done)
	return &Commit{b: b}
}

// wal is the append side of the log. Reservation (ordering) is decoupled
// from durability: Append assigns the record its position under the mutex
// and returns immediately; a single committer goroutine drains the pending
// queue, writes each batch with one Write and one fsync, and releases every
// waiter in the batch — concurrent producers therefore share fsyncs.
type wal struct {
	dir    string
	noSync bool
	log    *obs.Logger

	// Instruments, set via setMetrics under mu and snapshotted by the
	// committer at the top of each batch; nil instruments are no-ops.
	fsyncNs      *obs.Histogram
	batchRecords *obs.Histogram
	walBytes     *obs.Gauge

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on batch completion and close
	f        *os.File
	path     string
	firstSeq uint64 // first record sequence of the active segment
	nextSeq  uint64 // sequence the next Append will get
	size     int64  // active segment bytes, including reserved-not-yet-written
	pending  [][]byte
	cur      *commitBatch
	busy     bool // committer is writing a batch
	err      error
	closed   bool
	done     chan struct{}

	syncs int64 // fsync count, for tests and throughput diagnostics
	// testSyncDelay stretches the commit window so tests can observe
	// batching deterministically.
	testSyncDelay time.Duration
}

func newWAL(dir string, noSync bool, lg *obs.Logger) *wal {
	w := &wal{dir: dir, noSync: noSync, log: lg, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// setMetrics installs (or clears) the wal's instruments.
func (w *wal) setMetrics(fsyncNs, batchRecords *obs.Histogram, walBytes *obs.Gauge) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fsyncNs, w.batchRecords, w.walBytes = fsyncNs, batchRecords, walBytes
	w.walBytes.Set(w.size)
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstSeq)
}

func parseSegmentName(name string) (firstSeq uint64, ok bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.log", &seq); n != 1 || err != nil {
		return 0, false
	}
	if name != segmentName(seq) {
		return 0, false
	}
	return seq, true
}

// createSegment writes a fresh segment file with its header synced, and
// fsyncs the directory so the new entry survives power loss — without it,
// record fsyncs land in a file whose directory entry may not be durable,
// silently voiding the durability contract for everything appended after a
// rotation.
func createSegment(dir string, firstSeq uint64, noSync bool) (*os.File, string, error) {
	path := filepath.Join(dir, segmentName(firstSeq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, "", err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint64(hdr[8:], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, "", err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, "", err
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, "", err
		}
	}
	return f, path, nil
}

// start attaches the wal to an open active segment and launches the
// committer. f must be positioned at end-of-file (O_APPEND semantics are
// emulated by only ever writing from the committer).
func (w *wal) start(f *os.File, path string, firstSeq, nextSeq uint64, size int64) {
	w.f, w.path = f, path
	w.firstSeq, w.nextSeq, w.size = firstSeq, nextSeq, size
	go w.run()
}

func encodeRecord(payload []byte) []byte {
	buf := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderSize:], payload)
	return buf
}

// append reserves the next sequence number for payload and queues it for
// the committer. The caller's externally-serialized append order is the
// replay order.
func (w *wal) append(payload []byte) *Commit {
	if len(payload) > maxRecordSize {
		return failedCommit(errors.New("store: record too large"))
	}
	rec := encodeRecord(payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return failedCommit(w.err)
	}
	if w.closed {
		return failedCommit(errWALClosed)
	}
	if w.cur == nil {
		w.cur = &commitBatch{done: make(chan struct{})}
	}
	w.pending = append(w.pending, rec)
	w.nextSeq++
	w.size += int64(len(rec))
	w.walBytes.Set(w.size)
	w.cond.Broadcast() // wake the committer
	return &Commit{b: w.cur}
}

// run is the committer loop.
func (w *wal) run() {
	w.mu.Lock()
	for {
		for !w.closed && len(w.pending) == 0 && w.err == nil {
			w.cond.Wait()
		}
		if len(w.pending) == 0 {
			// Closed (or broken with nothing queued): finished.
			w.mu.Unlock()
			close(w.done)
			return
		}
		recs := w.pending
		batch := w.cur
		f := w.f
		w.pending, w.cur = nil, nil
		w.busy = true
		delay := w.testSyncDelay
		stickyErr := w.err
		fsyncH, batchH := w.fsyncNs, w.batchRecords
		w.mu.Unlock()

		err := stickyErr
		if err == nil {
			var buf []byte
			if len(recs) == 1 {
				buf = recs[0]
			} else {
				n := 0
				for _, r := range recs {
					n += len(r)
				}
				buf = make([]byte, 0, n)
				for _, r := range recs {
					buf = append(buf, r...)
				}
			}
			commitStart := time.Now()
			_, err = f.Write(buf)
			if err == nil && !w.noSync {
				err = f.Sync()
			}
			fsyncH.ObserveSince(commitStart)
			batchH.Observe(int64(len(recs)))
			if delay > 0 {
				time.Sleep(delay)
			}
		}

		w.mu.Lock()
		w.busy = false
		w.syncs++
		if err != nil && w.err == nil {
			w.err = err
		}
		batch.err = err
		close(batch.done)
		w.cond.Broadcast() // wake waitIdle / close
	}
}

// waitIdle blocks until every reserved record has been written and synced.
// Callers must guarantee no concurrent append, or this may never return.
func (w *wal) waitIdle() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for (len(w.pending) > 0 || w.busy) && w.err == nil {
		w.cond.Wait()
	}
	return w.err
}

// rotate drains the pending queue, closes the active segment and starts a
// fresh one whose first record will have sequence firstSeq (which must be
// w.nextSeq: rotation happens only at a snapshot boundary). Callers must
// exclude concurrent appends.
func (w *wal) rotate() error {
	if err := w.waitIdle(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errWALClosed
	}
	if w.firstSeq == w.nextSeq {
		return nil // active segment holds no records; it IS the boundary
	}
	f, path, err := createSegment(w.dir, w.nextSeq, w.noSync)
	if err != nil {
		return err
	}
	w.f.Close()
	w.f, w.path = f, path
	w.firstSeq = w.nextSeq
	w.size = walHeaderSize
	w.walBytes.Set(w.size)
	return nil
}

// close flushes pending records, stops the committer and closes the file.
func (w *wal) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (w *wal) bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

func (w *wal) seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

func (w *wal) syncCount() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// replaySegment reads one segment, invoking replay for every record with
// sequence >= base. A torn or corrupt record is tolerated only in the final
// segment of the log: the file is truncated at the last intact record and a
// warning is logged; anywhere else it is a hard error (truncating there
// would silently drop records that later segments build on).
//
// It returns the sequence after the last intact record.
func replaySegment(path string, firstSeq uint64, isLast bool, base uint64, noSync bool, replay func(payload []byte) error, lg *obs.Logger) (nextSeq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	fileSize := info.Size()

	// syncFile makes a recovery-time repair (truncation, header rewrite)
	// itself durable: a crash shortly after recovery must not resurrect the
	// torn bytes that subsequent appends assume are gone.
	syncFile := func() error {
		if noSync {
			return nil
		}
		sf, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		defer sf.Close()
		return sf.Sync()
	}

	truncate := func(offset int64, reason string) error {
		if !isLast {
			return fmt.Errorf("store: wal segment %s corrupt at offset %d (%s) with later segments present", filepath.Base(path), offset, reason)
		}
		lg.Warnf("store: truncating wal %s at offset %d (%s): dropping %d trailing bytes",
			filepath.Base(path), offset, reason, fileSize-offset)
		f.Close()
		if err := os.Truncate(path, offset); err != nil {
			return fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
		if err := syncFile(); err != nil {
			return fmt.Errorf("store: syncing truncated wal tail: %w", err)
		}
		return nil
	}

	// A header shorter than walHeaderSize means the process died while the
	// segment was being created; the filename still identifies it.
	if fileSize < walHeaderSize {
		if terr := truncate(0, "torn segment header"); terr != nil {
			return 0, terr
		}
		// Recreate the header so the segment is appendable again.
		nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return 0, err
		}
		defer nf.Close()
		var hdr [walHeaderSize]byte
		copy(hdr[:], walMagic)
		binary.LittleEndian.PutUint64(hdr[8:], firstSeq)
		if _, err := nf.Write(hdr[:]); err != nil {
			return 0, err
		}
		if !noSync {
			if err := nf.Sync(); err != nil {
				return 0, err
			}
		}
		return firstSeq, nil
	}
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, err
	}
	if string(hdr[:8]) != walMagic {
		return 0, fmt.Errorf("store: %s: bad wal magic", filepath.Base(path))
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != firstSeq {
		return 0, fmt.Errorf("store: %s: header seq %d disagrees with filename", filepath.Base(path), got)
	}

	r := newCountingReader(bufio.NewReaderSize(f, 1<<16), walHeaderSize)
	seq := firstSeq
	for {
		recStart := r.offset
		var rh [recHeaderSize]byte
		if _, err := io.ReadFull(r, rh[:]); err != nil {
			if err == io.EOF {
				return seq, nil // clean end at a record boundary
			}
			return seq, truncate(recStart, "torn record header")
		}
		n := binary.LittleEndian.Uint32(rh[:4])
		if int64(n) > maxRecordSize {
			return seq, truncate(recStart, "implausible record length")
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return seq, truncate(recStart, "torn record payload")
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rh[4:]) {
			return seq, truncate(recStart, "record checksum mismatch")
		}
		if seq >= base {
			if err := replay(payload); err != nil {
				return 0, fmt.Errorf("store: replaying record %d: %w", seq, err)
			}
		}
		seq++
	}
}

// countingReader tracks the file offset of a buffered sequential read so
// corruption can be reported (and truncated) at an exact byte position.
type countingReader struct {
	r      io.Reader
	offset int64
}

func newCountingReader(r io.Reader, start int64) *countingReader {
	return &countingReader{r: r, offset: start}
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.offset += int64(n)
	return n, err
}
