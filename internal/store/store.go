// Package store is a durable state engine: an append-only, checksummed,
// group-committed write-ahead log paired with versioned point-in-time
// snapshots, plus the crash-recovery procedure that stitches them back into
// the owner's in-memory state.
//
// The store is deliberately generic — it moves opaque []byte records and
// snapshot payloads, and knows nothing about keypoints or Bloom filters.
// The VisualPrint server layers its Database on top: every ingest batch
// becomes one WAL record, and a background snapshotter periodically folds
// the log into a snapshot of the full database (see internal/server).
//
// # Durability contract
//
// Append decouples ordering from durability: it assigns the record the next
// sequence number immediately (the caller's append order is the replay
// order) and returns a Commit handle; Commit.Wait blocks until the record
// is on stable storage. A single committer goroutine drains everything
// reserved while the previous fsync was in flight and commits it with one
// write and one fsync — concurrent producers share fsyncs (group commit).
// A crash can therefore lose only records whose Wait had not yet returned;
// anything acknowledged is recoverable.
//
// # Recovery
//
// Recover loads the newest snapshot that passes full-file checksum
// validation, then replays every WAL record with sequence >= the snapshot's
// coverage, in sequence order. A torn or checksum-corrupt record at the
// tail of the final segment — the signature of a mid-append crash — is
// truncated away with a logged warning; corruption anywhere else is a hard
// error, because truncating it would silently drop acknowledged records
// that later segments build on. Leftover .tmp files from a crash
// mid-snapshot are deleted at Open.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"visualprint/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Log receives recovery warnings (torn-tail truncation, discarded
	// temp files, invalid snapshots). Defaults to the process logger
	// (obs.Default); pass obs.Discard to silence.
	Log *obs.Logger
	// NoSync skips every fsync. Only for benchmarks and tests that model a
	// lossy disk; a NoSync store offers no durability past the OS cache.
	NoSync bool
	// Metrics wires the store's instruments (WAL fsync latency,
	// group-commit batch size, snapshot duration and size). The zero
	// value records nothing; individual instruments may be nil.
	Metrics Metrics
}

// Metrics is the store's instrument set. Every field is optional: nil
// instruments are no-ops (see internal/obs), so the store can be run
// fully, partially or not at all instrumented.
type Metrics struct {
	// FsyncNs observes the latency of each group-commit write+fsync.
	FsyncNs *obs.Histogram
	// BatchRecords observes how many records shared each group commit —
	// the batching win over one-fsync-per-record.
	BatchRecords *obs.Histogram
	// SnapshotNs observes the duration of each snapshot write (payload
	// serialization through WAL rotation).
	SnapshotNs *obs.Histogram
	// SnapshotBytes holds the size of the newest snapshot file.
	SnapshotBytes *obs.Gauge
	// Snapshots counts snapshots written.
	Snapshots *obs.Counter
	// WALBytes tracks the active WAL segment size.
	WALBytes *obs.Gauge
}

// Store is a WAL + snapshot persistence engine rooted at one directory.
// Append and the read-only accessors are safe for concurrent use once
// Recover has run; Snapshot and Close require the caller to exclude
// concurrent Appends (the server holds its database lock for both).
type Store struct {
	dir    string
	log    *obs.Logger
	noSync bool

	wal     *wal
	started bool

	// snapMu serializes Snapshot calls: the server's compaction entry
	// points (explicit Compact, background snapshotter) only exclude
	// Appends, not each other, and two interleaved writers would produce a
	// corrupt snapshot file and then delete the WAL segments it covers.
	snapMu sync.Mutex

	mu             sync.Mutex
	met            Metrics
	snapSeq        uint64 // records covered by the newest snapshot
	haveSnap       bool
	lastCompaction time.Time

	// recovery scan results, consumed by Recover
	recoverSnaps []uint64 // candidate snapshot seqs, newest first
	recoverSegs  []uint64 // segment firstSeqs, ascending
	recovered    bool
}

// Open prepares a store rooted at dir, creating the directory if needed and
// discarding leftovers of a crashed snapshot. Recover must be called before
// Append.
func Open(dir string, opt Options) (*Store, error) {
	lg := opt.Log
	if lg == nil {
		lg = obs.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, log: lg, noSync: opt.NoSync}
	for _, e := range entries {
		name := e.Name()
		switch {
		case filepath.Ext(name) == ".tmp":
			// A snapshot that was being written when the process died.
			lg.Warnf("store: removing incomplete temp file %s", name)
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
		default:
			if seq, ok := parseSnapshotName(name); ok {
				s.recoverSnaps = append(s.recoverSnaps, seq)
			} else if seq, ok := parseSegmentName(name); ok {
				s.recoverSegs = append(s.recoverSegs, seq)
			}
		}
	}
	sort.Slice(s.recoverSnaps, func(i, j int) bool { return s.recoverSnaps[i] > s.recoverSnaps[j] })
	sort.Slice(s.recoverSegs, func(i, j int) bool { return s.recoverSegs[i] < s.recoverSegs[j] })
	s.wal = newWAL(dir, opt.NoSync, lg)
	s.SetMetrics(opt.Metrics)
	return s, nil
}

// SetMetrics swaps the store's instrument set. It may be called at any
// time — the owner typically opens the store first and enables
// observability later — and is safe against concurrent Appends.
func (s *Store) SetMetrics(m Metrics) {
	s.mu.Lock()
	s.met = m
	s.mu.Unlock()
	s.wal.setMetrics(m.FsyncNs, m.BatchRecords, m.WALBytes)
}

// metrics returns the current instrument set.
func (s *Store) metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.met
}

// Recover rebuilds the owner's state: load receives the payload of the
// newest valid snapshot (and is not called when none exists); replay
// receives every logged record past the snapshot, in append order. It must
// be called exactly once, before any Append or Snapshot.
func (s *Store) Recover(load func(r io.Reader) error, replay func(payload []byte) error) error {
	if s.recovered {
		return errors.New("store: Recover called twice")
	}
	s.recovered = true

	// Newest snapshot that validates end to end wins; invalid ones are
	// reported and skipped.
	base := uint64(0)
	for _, seq := range s.recoverSnaps {
		path := filepath.Join(s.dir, snapshotName(seq))
		if err := validateSnapshot(path, seq); err != nil {
			s.log.Warnf("store: ignoring invalid snapshot %s: %v", snapshotName(seq), err)
			continue
		}
		if err := loadSnapshot(path, load); err != nil {
			return fmt.Errorf("store: loading snapshot %s: %w", snapshotName(seq), err)
		}
		base = seq
		s.haveSnap = true
		s.snapSeq = seq
		if info, err := os.Stat(path); err == nil {
			s.lastCompaction = info.ModTime()
		}
		break
	}

	// The log must cover [base, head]: its first segment may not start
	// past the snapshot, or acknowledged records are unrecoverable.
	if len(s.recoverSegs) > 0 && s.recoverSegs[0] > base {
		return fmt.Errorf("store: wal starts at record %d but newest valid snapshot covers only %d — unrecoverable gap", s.recoverSegs[0], base)
	}

	nextSeq := base
	for i, firstSeq := range s.recoverSegs {
		isLast := i == len(s.recoverSegs)-1
		path := filepath.Join(s.dir, segmentName(firstSeq))
		if i > 0 && firstSeq != nextSeq {
			return fmt.Errorf("store: wal segment gap: %s follows record %d", segmentName(firstSeq), nextSeq)
		}
		segNext, err := replaySegment(path, firstSeq, isLast, base, s.noSync, replay, s.log)
		if err != nil {
			return err
		}
		nextSeq = segNext
	}

	// Attach the appender to the final segment (creating one if the log is
	// empty) and start the committer.
	var (
		f        *os.File
		path     string
		firstSeq uint64
	)
	if len(s.recoverSegs) > 0 {
		firstSeq = s.recoverSegs[len(s.recoverSegs)-1]
		path = filepath.Join(s.dir, segmentName(firstSeq))
		var err error
		f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
	} else {
		var err error
		f, path, err = createSegment(s.dir, base, s.noSync)
		if err != nil {
			return err
		}
		firstSeq = base
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	s.wal.start(f, path, firstSeq, nextSeq, info.Size())
	s.started = true
	return nil
}

// Append logs one record. The returned Commit's Wait reports durability;
// the record's position in the replay order is fixed at the moment Append
// returns, so callers that apply records to in-memory state under a lock
// get an identical order on recovery by appending under the same lock.
func (s *Store) Append(payload []byte) *Commit {
	if !s.started {
		return failedCommit(errors.New("store: Append before Recover"))
	}
	return s.wal.append(payload)
}

// Snapshot folds the current state into a new snapshot file: write streams
// the owner's full serialized state; the WAL is then rotated at the
// snapshot boundary and obsolete snapshots and segments are deleted. The
// caller must exclude concurrent Appends for the duration (the state being
// written must be exactly the state at the log head); concurrent Snapshot
// calls are serialized internally, the loser seeing an up-to-date snapshot
// and returning without writing.
func (s *Store) Snapshot(write func(w io.Writer) error) error {
	if !s.started {
		return errors.New("store: Snapshot before Recover")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := s.wal.waitIdle(); err != nil {
		return err
	}
	seq := s.wal.seq()
	s.mu.Lock()
	already := s.haveSnap && s.snapSeq == seq
	s.mu.Unlock()
	if already {
		return nil // nothing logged since the last snapshot
	}
	met := s.metrics()
	start := time.Now()
	path, err := writeSnapshot(s.dir, seq, write, s.noSync)
	if err != nil {
		return err
	}
	if err := s.wal.rotate(); err != nil {
		return err
	}
	met.SnapshotNs.ObserveSince(start)
	met.Snapshots.Inc()
	if info, err := os.Stat(path); err == nil {
		met.SnapshotBytes.Set(info.Size())
	}
	s.mu.Lock()
	s.snapSeq = seq
	s.haveSnap = true
	s.lastCompaction = time.Now()
	s.mu.Unlock()
	s.removeObsolete(seq)
	return nil
}

// removeObsolete deletes snapshots older than seq and WAL segments fully
// covered by it. Failures are logged, not fatal: stale files cost disk, not
// correctness, and the next compaction retries.
func (s *Store) removeObsolete(seq uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		s.log.Warnf("store: compaction cleanup: %v", err)
		return
	}
	for _, e := range entries {
		name := e.Name()
		var stale bool
		if sseq, ok := parseSnapshotName(name); ok {
			stale = sseq < seq
		} else if fseq, ok := parseSegmentName(name); ok {
			// Segments are rotated exactly at snapshot boundaries, so any
			// segment starting before seq ends at or before it.
			stale = fseq < seq
		}
		if stale {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				s.log.Warnf("store: compaction cleanup %s: %v", name, err)
			}
		}
	}
}

// Close flushes pending commits and releases the directory. Callers must
// exclude concurrent Appends.
func (s *Store) Close() error {
	if !s.started {
		return nil
	}
	return s.wal.close()
}

// WALBytes returns the size of the active WAL segment (header included) —
// the quantity the owner compares against its compaction threshold.
func (s *Store) WALBytes() int64 {
	if !s.started {
		return 0
	}
	return s.wal.bytes()
}

// Seq returns the sequence number the next appended record will get, i.e.
// the total number of records ever logged.
func (s *Store) Seq() uint64 {
	if !s.started {
		return 0
	}
	return s.wal.seq()
}

// SnapshotSeq returns the record coverage of the newest snapshot (0 when no
// snapshot exists; use HasSnapshot to disambiguate an empty store).
func (s *Store) SnapshotSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// HasSnapshot reports whether a valid snapshot exists on disk.
func (s *Store) HasSnapshot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.haveSnap
}

// LastCompaction returns when the newest snapshot was written (zero when
// none exists). After recovery it reflects the snapshot file's mtime.
func (s *Store) LastCompaction() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCompaction
}

// Syncs returns the number of commit batches written — always <= the
// number of appended records; the gap is group commit at work.
func (s *Store) Syncs() int64 {
	if !s.started {
		return 0
	}
	return s.wal.syncCount()
}
