package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"visualprint/internal/obs"
)

// logCapture collects warnings so tests can assert on recovery behavior.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (l *logCapture) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logCapture) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.lines {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// openAndRecover opens dir and replays it into a slice of record payloads,
// also returning any snapshot payload seen.
func openAndRecover(t *testing.T, dir string, logf func(string, ...any)) (*Store, []byte, [][]byte) {
	t.Helper()
	s, err := Open(dir, Options{Log: obs.FuncLogger(logf)})
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	var recs [][]byte
	err = s.Recover(
		func(r io.Reader) error {
			var err error
			snap, err = io.ReadAll(r)
			return err
		},
		func(p []byte) error {
			recs = append(recs, append([]byte(nil), p...))
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s, snap, recs
}

func appendAll(t *testing.T, s *Store, payloads ...string) {
	t.Helper()
	var commits []*Commit
	for _, p := range payloads {
		commits = append(commits, s.Append([]byte(p)))
	}
	for i, c := range commits {
		if err := c.Wait(); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func recordStrings(recs [][]byte) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

func TestEmptyDirStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, snap, recs := openAndRecover(t, dir, lc.logf)
	if snap != nil || len(recs) != 0 {
		t.Fatalf("fresh dir recovered snap=%v recs=%v", snap, recs)
	}
	if s.Seq() != 0 || s.HasSnapshot() {
		t.Fatalf("fresh dir: seq=%d hasSnap=%v", s.Seq(), s.HasSnapshot())
	}
	appendAll(t, s, "a", "b", "c")
	if s.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", s.Seq())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, snap, recs := openAndRecover(t, dir, lc.logf)
	defer s2.Close()
	if snap != nil {
		t.Fatalf("unexpected snapshot")
	}
	if got := recordStrings(recs); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("replayed %v", got)
	}
	if s2.Seq() != 3 {
		t.Fatalf("seq after reopen = %d", s2.Seq())
	}
}

func TestSnapshotWithNoWALTail(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	appendAll(t, s, "a", "b")
	if err := s.Snapshot(func(w io.Writer) error {
		_, err := w.Write([]byte("STATE-AB"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if s.SnapshotSeq() != 2 || !s.HasSnapshot() {
		t.Fatalf("snapSeq=%d hasSnap=%v", s.SnapshotSeq(), s.HasSnapshot())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, snap, recs := openAndRecover(t, dir, lc.logf)
	defer s2.Close()
	if string(snap) != "STATE-AB" {
		t.Fatalf("snapshot payload %q", snap)
	}
	if len(recs) != 0 {
		t.Fatalf("expected no tail records, got %v", recordStrings(recs))
	}
	if s2.Seq() != 2 || s2.SnapshotSeq() != 2 {
		t.Fatalf("seq=%d snapSeq=%d", s2.Seq(), s2.SnapshotSeq())
	}
	if s2.LastCompaction().IsZero() {
		t.Fatal("LastCompaction zero after recovering a snapshot")
	}
}

func TestSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	appendAll(t, s, "a", "b")
	if err := s.Snapshot(func(w io.Writer) error {
		_, err := w.Write([]byte("STATE-AB"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "c", "d", "e")
	s.Close()

	s2, snap, recs := openAndRecover(t, dir, lc.logf)
	defer s2.Close()
	if string(snap) != "STATE-AB" {
		t.Fatalf("snapshot payload %q", snap)
	}
	if got := recordStrings(recs); len(got) != 3 || got[0] != "c" || got[2] != "e" {
		t.Fatalf("tail %v", got)
	}
	if s2.Seq() != 5 {
		t.Fatalf("seq = %d", s2.Seq())
	}
}

// activeSegment returns the path of the newest WAL segment in dir.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestSeq uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok && (best == "" || seq >= bestSeq) {
			best, bestSeq = filepath.Join(dir, e.Name()), seq
		}
	}
	if best == "" {
		t.Fatal("no wal segment found")
	}
	return best
}

func TestTornTailRecordIsTruncated(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	appendAll(t, s, "aaaa", "bbbb", "cccc")
	s.Close()

	// Tear the final record: drop its last byte.
	seg := activeSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-1); err != nil {
		t.Fatal(err)
	}

	s2, _, recs := openAndRecover(t, dir, lc.logf)
	if got := recordStrings(recs); len(got) != 2 || got[0] != "aaaa" || got[1] != "bbbb" {
		t.Fatalf("recovered %v, want [aaaa bbbb]", got)
	}
	if !lc.contains("truncating wal") {
		t.Fatalf("no truncation warning logged: %v", lc.lines)
	}
	if s2.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", s2.Seq())
	}
	// The log must stay appendable after truncation, and the repaired tail
	// must survive another cycle.
	appendAll(t, s2, "dddd")
	s2.Close()
	s3, _, recs := openAndRecover(t, dir, lc.logf)
	defer s3.Close()
	if got := recordStrings(recs); len(got) != 3 || got[2] != "dddd" {
		t.Fatalf("after repair: %v", got)
	}
}

func TestCorruptTailChecksumIsTruncated(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	appendAll(t, s, "aaaa", "bbbb", "cccc")
	s.Close()

	// Flip a byte inside the final record's payload.
	seg := activeSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _, recs := openAndRecover(t, dir, lc.logf)
	defer s2.Close()
	if got := recordStrings(recs); len(got) != 2 || got[1] != "bbbb" {
		t.Fatalf("recovered %v, want [aaaa bbbb]", got)
	}
	if !lc.contains("checksum mismatch") {
		t.Fatalf("no checksum warning logged: %v", lc.lines)
	}
}

func TestCrashMidSnapshotLeavesTempIgnored(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	appendAll(t, s, "a", "b")
	s.Close()

	// A crash mid-snapshot leaves a partial .tmp under the temp name.
	tmp := filepath.Join(dir, snapshotName(2)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, snap, recs := openAndRecover(t, dir, lc.logf)
	defer s2.Close()
	if snap != nil {
		t.Fatalf("loaded a snapshot from garbage: %q", snap)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %v", recordStrings(recs))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file not removed: %v", err)
	}
	if !lc.contains("incomplete temp file") {
		t.Fatalf("no temp-file warning: %v", lc.lines)
	}
}

func TestCorruptSnapshotWithRotatedWALIsUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	appendAll(t, s, "a", "b")
	if err := s.Snapshot(func(w io.Writer) error {
		_, err := w.Write(bytes.Repeat([]byte("x"), 256))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the snapshot payload. The pre-snapshot WAL segment was
	// deleted at compaction, so recovery must refuse to serve a partial
	// database rather than silently dropping records [0,2).
	snapPath := filepath.Join(dir, snapshotName(2))
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Log: obs.FuncLogger(lc.logf)})
	if err != nil {
		t.Fatal(err)
	}
	err = s2.Recover(func(io.Reader) error { return nil }, func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unrecoverable gap") {
		t.Fatalf("Recover = %v, want unrecoverable-gap error", err)
	}
	if !lc.contains("ignoring invalid snapshot") {
		t.Fatalf("no invalid-snapshot warning: %v", lc.lines)
	}
}

func TestCompactionDeletesObsoleteFiles(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	appendAll(t, s, "a", "b", "c")
	snapFn := func(w io.Writer) error { _, err := w.Write([]byte("S")); return err }
	if err := s.Snapshot(snapFn); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "d")
	if err := s.Snapshot(snapFn); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, segs int
	for _, e := range entries {
		if _, ok := parseSnapshotName(e.Name()); ok {
			snaps++
		}
		if _, ok := parseSegmentName(e.Name()); ok {
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after two compactions: %d snapshots, %d segments (want 1, 1)", snaps, segs)
	}
}

func TestSnapshotNoNewRecordsIsNoop(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	defer s.Close()
	appendAll(t, s, "a")
	calls := 0
	fn := func(w io.Writer) error { calls++; _, err := w.Write([]byte("S")); return err }
	if err := s.Snapshot(fn); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(fn); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("snapshot writer called %d times, want 1", calls)
	}
}

// TestSnapshotOnFreshStore snapshots a store that has never logged a
// record: the empty state must be written and the active (empty) segment
// must survive — rotating it onto itself was once an error.
func TestSnapshotOnFreshStore(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	fn := func(w io.Writer) error { _, err := w.Write([]byte("EMPTY")); return err }
	if err := s.Snapshot(fn); err != nil {
		t.Fatal(err)
	}
	// The store must remain fully usable: append and recover.
	appendAll(t, s, "x")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, loaded, replayed := openAndRecover(t, dir, lc.logf)
	defer s2.Close()
	if string(loaded) != "EMPTY" {
		t.Fatalf("loaded %q", loaded)
	}
	if got := recordStrings(replayed); len(got) != 1 || got[0] != "x" {
		t.Fatalf("replayed %v, want [x]", got)
	}
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	defer s.Close()

	// Stretch each commit so that appends issued while one batch is being
	// written pile into the next batch.
	s.wal.mu.Lock()
	s.wal.testSyncDelay = 20 * time.Millisecond
	s.wal.mu.Unlock()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Append([]byte(fmt.Sprintf("rec-%03d", i))).Wait()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if syncs := s.Syncs(); syncs >= n/2 {
		t.Fatalf("group commit ineffective: %d fsyncs for %d concurrent appends", syncs, n)
	}
}

func TestAppendBeforeRecoverFails(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Log: obs.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("x")).Wait(); err == nil {
		t.Fatal("Append before Recover succeeded")
	}
}

func TestAppendOrderIsReplayOrder(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("r%02d", i)
			// The lock models the owner's database lock: reservation and
			// the in-memory apply happen under it, so WAL order == apply
			// order even with concurrent producers.
			mu.Lock()
			c := s.Append([]byte(p))
			order = append(order, p)
			mu.Unlock()
			if err := c.Wait(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	s2, _, recs := openAndRecover(t, dir, lc.logf)
	defer s2.Close()
	got := recordStrings(recs)
	if len(got) != len(order) {
		t.Fatalf("replayed %d records, appended %d", len(got), len(order))
	}
	for i := range got {
		if got[i] != order[i] {
			t.Fatalf("replay order diverges at %d: %q vs %q", i, got[i], order[i])
		}
	}
}

// TestConcurrentSnapshots races many Snapshot calls — the server's explicit
// Compact against its background snapshotter — with appends excluded, as the
// Store contract requires. The store must serialize the writers internally:
// interleaved writers would corrupt the snapshot file and then delete the
// WAL segments it covers, losing the database. Exactly one coherent snapshot
// must land and recovery must reproduce the state without warnings.
func TestConcurrentSnapshots(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	s, _, _ := openAndRecover(t, dir, lc.logf)
	appendAll(t, s, "a", "b", "c")

	state := []byte("state-after-abc")
	errs := make([]error, 8)
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Snapshot(func(w io.Writer) error {
				// Stretch the write window byte by byte so unserialized
				// writers would actually interleave.
				for _, b := range state {
					if _, err := w.Write([]byte{b}); err != nil {
						return err
					}
					time.Sleep(100 * time.Microsecond)
				}
				return nil
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, snap, recs := openAndRecover(t, dir, lc.logf)
	defer s2.Close()
	if !bytes.Equal(snap, state) {
		t.Fatalf("recovered snapshot %q, want %q", snap, state)
	}
	if len(recs) != 0 {
		t.Fatalf("unexpected replayed records %v", recordStrings(recs))
	}
	if lc.contains("invalid snapshot") {
		t.Fatalf("recovery skipped a corrupt snapshot: %v", lc.lines)
	}
}
