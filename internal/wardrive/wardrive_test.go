package wardrive

import (
	"math"
	"testing"

	"visualprint/internal/mathx"
	"visualprint/internal/scene"
)

func testWorld() *scene.World {
	spec := scene.VenueSpec{
		Name: "testroom", Width: 14, Depth: 10, Height: 3,
		Aisles: 0, PanelWidth: 2,
		UniqueFrac: 0.6, RepeatedFrac: 0.2,
		Seed: 5, TileSize: 0.5,
	}
	return scene.Build(spec)
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ImageW, cfg.ImageH = 160, 120
	cfg.MaxKeypointsPerFrame = 150
	cfg.SweepPOIs = false // lawnmower only: keeps unit tests fast
	return cfg
}

func TestSweepPOIsAddsCoverage(t *testing.T) {
	w := testWorld()
	base, err := Walk(w, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.SweepPOIs = true
	swept, err := Walk(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(base) + 2*len(w.POIs) // two sweep captures per POI
	if len(swept) != want {
		t.Errorf("swept snapshots = %d, want %d", len(swept), want)
	}
}

func TestWalkProducesSnapshots(t *testing.T) {
	snaps, err := Walk(testWorld(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 4 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	totalObs := 0
	for _, s := range snaps {
		totalObs += len(s.Obs)
		if len(s.Cloud) == 0 || len(s.Cloud) != len(s.TrueCloud) {
			t.Fatalf("cloud missing or mismatched: %d vs %d", len(s.Cloud), len(s.TrueCloud))
		}
	}
	if totalObs < 100 {
		t.Errorf("only %d keypoint observations across the walk", totalObs)
	}
}

func TestWalkValidation(t *testing.T) {
	cfg := testConfig()
	cfg.ImageW = 0
	if _, err := Walk(testWorld(), cfg); err == nil {
		t.Error("zero image width accepted")
	}
	cfg = testConfig()
	cfg.StepMeters = 0
	if _, err := Walk(testWorld(), cfg); err == nil {
		t.Error("zero step accepted")
	}
}

func TestBackprojectionHitsSurfaces(t *testing.T) {
	// With zero drift, estimated and true positions agree, and every
	// observation lies on a world surface (within the venue bounds).
	w := testWorld()
	cfg := testConfig()
	cfg.Drift = DriftModel{}
	snaps, err := Walk(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snaps {
		for _, o := range s.Obs {
			if o.Est.Dist(o.True) > 1e-9 {
				t.Fatalf("zero drift but Est %v != True %v", o.Est, o.True)
			}
			eps := 0.3
			if o.True.X < w.Min.X-eps || o.True.X > w.Max.X+eps ||
				o.True.Y < w.Min.Y-eps || o.True.Y > w.Max.Y+eps ||
				o.True.Z < w.Min.Z-eps || o.True.Z > w.Max.Z+eps {
				t.Fatalf("observation %v outside the world", o.True)
			}
		}
	}
}

func TestDriftAccumulates(t *testing.T) {
	cfg := testConfig()
	cfg.Drift = DriftModel{PosStddevPerMeter: 0.05, YStddevPerMeter: 0.01, YawStddevPerMeter: 0.002, Seed: 3}
	snaps, err := Walk(testWorld(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean, max := PoseError(snaps)
	if mean <= 0 || max <= 0 {
		t.Fatalf("drift produced no pose error (mean %v, max %v)", mean, max)
	}
	// Later snapshots should on average drift more than earlier ones.
	half := len(snaps) / 2
	early, _ := PoseError(snaps[:half])
	late, _ := PoseError(snaps[half:])
	if late <= early*0.5 {
		t.Errorf("drift not accumulating: early %v, late %v", early, late)
	}
}

func TestWalkDeterministic(t *testing.T) {
	a, err := Walk(testWorld(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Walk(testWorld(), testConfig())
	if len(a) != len(b) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Obs) != len(b[i].Obs) || a[i].EstCam.Pos != b[i].EstCam.Pos {
			t.Fatalf("snapshot %d differs between identical runs", i)
		}
	}
}

func TestCaptureAppliesBias(t *testing.T) {
	w := testWorld()
	cam := scene.DefaultCamera(160, 120)
	cam.Pos = mathx.Vec3{X: 7, Y: 1.6, Z: 5}
	bias := mathx.Vec3{X: 0.4, Z: -0.2}
	snap, err := Capture(w, cam, testConfig(), bias, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if snap.EstCam.Pos.Dist(cam.Pos.Add(bias)) > 1e-12 {
		t.Errorf("EstCam.Pos = %v", snap.EstCam.Pos)
	}
	if math.Abs(snap.EstCam.Yaw-cam.Yaw-0.01) > 1e-12 {
		t.Errorf("EstCam.Yaw = %v", snap.EstCam.Yaw)
	}
	// Estimated observations shift by roughly the bias magnitude.
	if len(snap.Obs) == 0 {
		t.Fatal("no observations")
	}
	for _, o := range snap.Obs[:1] {
		d := o.Est.Dist(o.True)
		if d < 0.1 || d > 2 {
			t.Errorf("bias-induced offset = %v, want around %v", d, bias.Norm())
		}
	}
}

func TestObservationsFlatten(t *testing.T) {
	snaps, err := Walk(testWorld(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := Observations(snaps)
	count := 0
	for _, s := range snaps {
		count += len(s.Obs)
	}
	if len(all) != count {
		t.Errorf("flattened %d, want %d", len(all), count)
	}
}

func TestPoseErrorEmptyInput(t *testing.T) {
	mean, max := PoseError(nil)
	if mean != 0 || max != 0 {
		t.Errorf("empty pose error = %v, %v", mean, max)
	}
}
