// Package wardrive simulates the paper's Google-Tango wardriving phase: a
// user walks through a venue while the device captures RGB frames, depth
// maps and a 6-DoF pose estimate, from which every image keypoint is
// backprojected to a 3D position. Two realities of the hardware are
// modeled: the depth sensor (taken from the renderer's true depth, as an IR
// sensor measures device-relative range) and the VSLAM dead-reckoning
// *drift* that accumulates as the user walks — the paper's "positioning
// error and uniqueness" challenge, which internal/icp later corrects.
package wardrive

import (
	"errors"
	"math"
	"math/rand"

	"visualprint/internal/mathx"
	"visualprint/internal/scene"
	"visualprint/internal/sift"
)

// DriftModel parameterizes dead-reckoning error accumulation. Bias
// performs a random walk: after each meter walked, the position bias gains
// zero-mean Gaussian steps of the given standard deviations.
type DriftModel struct {
	PosStddevPerMeter float64 // horizontal position drift (m per sqrt-meter walked)
	YStddevPerMeter   float64 // vertical drift (usually much smaller)
	YawStddevPerMeter float64 // heading drift (radians per sqrt-meter walked)
	Seed              int64
}

// DefaultDrift returns a drift model producing roughly 0.5–1.5 m of
// accumulated error over a 100 m walk, consistent with the paper's
// observation that Tango drift is small but harmful to uniqueness tracking.
func DefaultDrift() DriftModel {
	return DriftModel{PosStddevPerMeter: 0.05, YStddevPerMeter: 0.01, YawStddevPerMeter: 0.002, Seed: 1}
}

// Observation is one wardriven keypoint: its descriptor plus the 3D
// position estimated via the (drifted) pose and the ground-truth position
// via the true pose.
type Observation struct {
	Keypoint sift.Keypoint
	Est      mathx.Vec3 // backprojected with the drifted pose estimate
	True     mathx.Vec3 // backprojected with the true pose
}

// Snapshot is one capture along the walk.
type Snapshot struct {
	TrueCam scene.Camera // actual pose
	EstCam  scene.Camera // pose as estimated by drifting dead reckoning
	Obs     []Observation
	// Cloud is a subsampled depth point cloud in estimated coordinates;
	// TrueCloud the same pixels in true coordinates. ICP uses these to
	// stitch snapshots into one coherent map.
	Cloud     []mathx.Vec3
	TrueCloud []mathx.Vec3
}

// Config controls a wardriving session.
type Config struct {
	ImageW, ImageH int
	Sift           sift.Config
	// StepMeters is the distance between captures along the walk.
	StepMeters float64
	// RowSpacing is the spacing between lawnmower rows (meters).
	RowSpacing float64
	// EyeHeight is the camera height above the floor.
	EyeHeight float64
	// MaxKeypointsPerFrame caps SIFT output per capture (0 = no cap).
	MaxKeypointsPerFrame int
	// CloudStride subsamples the depth map every n pixels for the ICP
	// cloud (0 disables cloud capture).
	CloudStride int
	// Drift models dead-reckoning error; zero model means perfect poses.
	Drift DriftModel
	// SweepPOIs adds, after the lawnmower pass, close-up captures of every
	// point of interest from several distances and angles — the natural
	// behaviour of a human wardriver pointing the device at the things
	// worth fingerprinting. It densifies scale/viewpoint coverage of the
	// map, which the localization accuracy depends on.
	SweepPOIs bool
	// SweepDistances and SweepYawOffsets parameterize the POI sweep
	// (defaults {2, 3.5} and {-0.25, 0.15} when empty).
	SweepDistances  []float64
	SweepYawOffsets []float64
}

// DefaultConfig returns a config suitable for the scaled evaluation worlds.
func DefaultConfig() Config {
	sc := sift.DefaultConfig()
	sc.ContrastThreshold = 0.02
	return Config{
		ImageW: 240, ImageH: 180,
		Sift:                 sc,
		StepMeters:           3,
		RowSpacing:           5,
		EyeHeight:            1.6,
		MaxKeypointsPerFrame: 400,
		CloudStride:          12,
		Drift:                DefaultDrift(),
		SweepPOIs:            true,
	}
}

// Walk performs a lawnmower wardrive of the world: rows along X spaced by
// RowSpacing along Z, capturing a left- and a right-facing view at every
// step. It returns the snapshots in capture order (drift accumulates along
// the sequence).
func Walk(w *scene.World, cfg Config) ([]Snapshot, error) {
	if cfg.ImageW <= 0 || cfg.ImageH <= 0 {
		return nil, errors.New("wardrive: image dimensions must be positive")
	}
	if cfg.StepMeters <= 0 || cfg.RowSpacing <= 0 {
		return nil, errors.New("wardrive: StepMeters and RowSpacing must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Drift.Seed*2654435761 + 97))
	var snaps []Snapshot

	var posBias mathx.Vec3
	var yawBias float64
	advanceDrift := func(meters float64) {
		s := math.Sqrt(meters)
		posBias.X += rng.NormFloat64() * cfg.Drift.PosStddevPerMeter * s
		posBias.Z += rng.NormFloat64() * cfg.Drift.PosStddevPerMeter * s
		posBias.Y += rng.NormFloat64() * cfg.Drift.YStddevPerMeter * s
		yawBias += rng.NormFloat64() * cfg.Drift.YawStddevPerMeter * s
	}

	marginX := 0.08 * (w.Max.X - w.Min.X)
	marginZ := 0.1 * (w.Max.Z - w.Min.Z)
	dir := 1.0
	for z := w.Min.Z + marginZ; z <= w.Max.Z-marginZ+1e-9; z += cfg.RowSpacing {
		startX, endX := w.Min.X+marginX, w.Max.X-marginX
		if dir < 0 {
			startX, endX = endX, startX
		}
		for x := startX; ; x += dir * cfg.StepMeters {
			if (dir > 0 && x > endX) || (dir < 0 && x < endX) {
				break
			}
			advanceDrift(cfg.StepMeters)
			pos := mathx.Vec3{X: x, Y: cfg.EyeHeight, Z: z}
			// Two views per step: facing +Z and -Z (left/right of the
			// walking direction), with a touch of pitch variation.
			for view, yaw := range []float64{0, math.Pi} {
				trueCam := scene.DefaultCamera(cfg.ImageW, cfg.ImageH)
				trueCam.Pos = pos
				trueCam.Yaw = yaw
				trueCam.Pitch = 0.05 * math.Sin(x+z+float64(view))
				snap, err := Capture(w, trueCam, cfg, posBias, yawBias)
				if err != nil {
					return nil, err
				}
				snaps = append(snaps, *snap)
			}
		}
		dir = -dir
	}
	if cfg.SweepPOIs {
		dists := cfg.SweepDistances
		if len(dists) == 0 {
			dists = []float64{2, 3.5}
		}
		yaws := cfg.SweepYawOffsets
		if len(yaws) == 0 {
			yaws = []float64{-0.25, 0.15}
		}
		for _, poi := range w.POIs {
			for i, d := range dists {
				advanceDrift(d) // walking between capture spots drifts too
				trueCam := scene.CameraFacing(w, poi, d, yaws[i%len(yaws)], 0, cfg.ImageW, cfg.ImageH)
				snap, err := Capture(w, trueCam, cfg, posBias, yawBias)
				if err != nil {
					return nil, err
				}
				snaps = append(snaps, *snap)
			}
		}
	}
	if len(snaps) == 0 {
		return nil, errors.New("wardrive: world too small for the configured walk")
	}
	return snaps, nil
}

// Capture renders one snapshot from trueCam, applying the given accumulated
// pose bias to form the estimated camera, and backprojects keypoints and
// the depth cloud with both poses.
func Capture(w *scene.World, trueCam scene.Camera, cfg Config, posBias mathx.Vec3, yawBias float64) (*Snapshot, error) {
	fr, err := scene.Render(w, trueCam)
	if err != nil {
		return nil, err
	}
	estCam := trueCam
	estCam.Pos = trueCam.Pos.Add(posBias)
	estCam.Yaw = trueCam.Yaw + yawBias

	sc := cfg.Sift
	if cfg.MaxKeypointsPerFrame > 0 {
		sc.MaxKeypoints = cfg.MaxKeypointsPerFrame
	}
	kps := sift.Detect(fr.Image, sc)

	snap := &Snapshot{TrueCam: trueCam, EstCam: estCam}
	for _, kp := range kps {
		d := fr.DepthAt(int(kp.X), int(kp.Y))
		if d <= 0 {
			continue
		}
		snap.Obs = append(snap.Obs, Observation{
			Keypoint: kp,
			Est:      estCam.PointAt(kp.X, kp.Y, d),
			True:     trueCam.PointAt(kp.X, kp.Y, d),
		})
	}
	if cfg.CloudStride > 0 {
		for y := cfg.CloudStride / 2; y < cfg.ImageH; y += cfg.CloudStride {
			for x := cfg.CloudStride / 2; x < cfg.ImageW; x += cfg.CloudStride {
				d := fr.DepthAt(x, y)
				if d <= 0 {
					continue
				}
				px, py := float64(x)+0.5, float64(y)+0.5
				snap.Cloud = append(snap.Cloud, estCam.PointAt(px, py, d))
				snap.TrueCloud = append(snap.TrueCloud, trueCam.PointAt(px, py, d))
			}
		}
	}
	return snap, nil
}

// Observations flattens the keypoint observations of all snapshots.
func Observations(snaps []Snapshot) []Observation {
	var out []Observation
	for i := range snaps {
		out = append(out, snaps[i].Obs...)
	}
	return out
}

// PoseError summarizes the drift of a wardriving session: the mean and max
// distance between estimated and true keypoint positions.
func PoseError(snaps []Snapshot) (mean, max float64) {
	n := 0
	for i := range snaps {
		for _, o := range snaps[i].Obs {
			d := o.Est.Dist(o.True)
			mean += d
			if d > max {
				max = d
			}
			n++
		}
	}
	if n > 0 {
		mean /= float64(n)
	}
	return mean, max
}
