// Package cluster provides density-based spatial clustering of 3D points.
// The VisualPrint server uses it to filter query keypoint matches: from the
// |K|*n candidate 3D positions returned by the LSH lookup, "VisualPrint
// applies spatial clustering to filter down to only those 3D points in the
// largest cluster, discarding others" — false matches scatter across the
// venue while true matches concentrate around the scene the user is viewing.
//
// The algorithm is DBSCAN accelerated by a uniform hash grid with cell size
// eps, so neighborhood queries touch at most 27 cells.
package cluster

import (
	"errors"
	"math"

	"visualprint/internal/mathx"
)

// Params configures DBSCAN.
type Params struct {
	// Eps is the neighborhood radius (meters).
	Eps float64
	// MinPts is the minimum neighborhood size (including the point
	// itself) for a point to be a core point.
	MinPts int
}

// DefaultParams suits indoor scenes: matches within 2 m of each other
// belong to the same viewed scene.
func DefaultParams() Params {
	return Params{Eps: 2.0, MinPts: 3}
}

// Cluster is a set of input indices.
type Cluster struct {
	Indices []int
}

// Centroid returns the mean of the cluster's points.
func (c Cluster) Centroid(pts []mathx.Vec3) mathx.Vec3 {
	var s mathx.Vec3
	if len(c.Indices) == 0 {
		return s
	}
	for _, i := range c.Indices {
		s = s.Add(pts[i])
	}
	return s.Scale(1 / float64(len(c.Indices)))
}

// DBSCAN clusters pts and returns clusters sorted by descending size.
// Noise points (non-core, not reachable) belong to no cluster.
func DBSCAN(pts []mathx.Vec3, p Params) ([]Cluster, error) {
	if p.Eps <= 0 || p.MinPts <= 0 {
		return nil, errors.New("cluster: Eps and MinPts must be positive")
	}
	n := len(pts)
	if n == 0 {
		return nil, nil
	}
	// Hash grid with cell size eps.
	cells := make(map[[3]int32][]int, n)
	key := func(v mathx.Vec3) [3]int32 {
		return [3]int32{
			int32(math.Floor(v.X / p.Eps)),
			int32(math.Floor(v.Y / p.Eps)),
			int32(math.Floor(v.Z / p.Eps)),
		}
	}
	for i, pt := range pts {
		k := key(pt)
		cells[k] = append(cells[k], i)
	}
	eps2 := p.Eps * p.Eps
	neighbors := func(i int) []int {
		var out []int
		k := key(pts[i])
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for dz := int32(-1); dz <= 1; dz++ {
					for _, j := range cells[[3]int32{k[0] + dx, k[1] + dy, k[2] + dz}] {
						d := pts[i].Sub(pts[j])
						if d.Dot(d) <= eps2 {
							out = append(out, j)
						}
					}
				}
			}
		}
		return out
	}

	const (
		unvisited = 0
		noise     = -1
	)
	labels := make([]int, n) // 0 unvisited, -1 noise, >0 cluster id
	clusterID := 0
	var clusters []Cluster
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb) < p.MinPts {
			labels[i] = noise
			continue
		}
		clusterID++
		var members []int
		labels[i] = clusterID
		members = append(members, i)
		// Expand the cluster with a worklist.
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == noise {
				labels[j] = clusterID // border point
				members = append(members, j)
				continue
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = clusterID
			members = append(members, j)
			jn := neighbors(j)
			if len(jn) >= p.MinPts {
				queue = append(queue, jn...)
			}
		}
		clusters = append(clusters, Cluster{Indices: members})
	}
	// Sort by descending size (insertion-stable for ties).
	for i := 1; i < len(clusters); i++ {
		for j := i; j > 0 && len(clusters[j].Indices) > len(clusters[j-1].Indices); j-- {
			clusters[j], clusters[j-1] = clusters[j-1], clusters[j]
		}
	}
	return clusters, nil
}

// Largest returns the largest cluster of pts, or ok=false if no cluster
// forms (all noise).
func Largest(pts []mathx.Vec3, p Params) (Cluster, bool, error) {
	cs, err := DBSCAN(pts, p)
	if err != nil {
		return Cluster{}, false, err
	}
	if len(cs) == 0 {
		return Cluster{}, false, nil
	}
	return cs[0], true, nil
}
