package cluster

import (
	"math/rand"
	"testing"

	"visualprint/internal/mathx"
)

func blob(rng *rand.Rand, center mathx.Vec3, n int, spread float64) []mathx.Vec3 {
	pts := make([]mathx.Vec3, n)
	for i := range pts {
		pts[i] = center.Add(mathx.Vec3{
			X: rng.NormFloat64() * spread,
			Y: rng.NormFloat64() * spread,
			Z: rng.NormFloat64() * spread,
		})
	}
	return pts
}

func TestDBSCANValidation(t *testing.T) {
	if _, err := DBSCAN(nil, Params{Eps: 0, MinPts: 3}); err == nil {
		t.Error("zero eps accepted")
	}
	if _, err := DBSCAN(nil, Params{Eps: 1, MinPts: 0}); err == nil {
		t.Error("zero MinPts accepted")
	}
}

func TestDBSCANEmpty(t *testing.T) {
	cs, err := DBSCAN(nil, DefaultParams())
	if err != nil || cs != nil {
		t.Errorf("empty input: %v, %v", cs, err)
	}
}

func TestDBSCANTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := blob(rng, mathx.Vec3{}, 40, 0.3)
	b := blob(rng, mathx.Vec3{X: 20}, 25, 0.3)
	pts := append(append([]mathx.Vec3{}, a...), b...)
	cs, err := DBSCAN(pts, Params{Eps: 1.5, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("found %d clusters, want 2", len(cs))
	}
	if len(cs[0].Indices) < len(cs[1].Indices) {
		t.Error("clusters not sorted by size")
	}
	if len(cs[0].Indices) != 40 || len(cs[1].Indices) != 25 {
		t.Errorf("cluster sizes %d, %d", len(cs[0].Indices), len(cs[1].Indices))
	}
	// The largest cluster's members must all come from blob a (indices < 40).
	for _, i := range cs[0].Indices {
		if i >= 40 {
			t.Fatalf("blob b point %d in cluster a", i)
		}
	}
}

func TestDBSCANNoiseExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := blob(rng, mathx.Vec3{}, 30, 0.3)
	// Scattered singletons far apart: noise.
	for i := 0; i < 10; i++ {
		pts = append(pts, mathx.Vec3{X: 100 + float64(i)*50})
	}
	cs, err := DBSCAN(pts, Params{Eps: 1.5, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range cs {
		total += len(c.Indices)
	}
	if total != 30 {
		t.Errorf("%d points clustered, want 30 (noise excluded)", total)
	}
}

func TestDBSCANChainConnectivity(t *testing.T) {
	// A dense line of points should form ONE cluster via density
	// reachability even though the ends are far apart.
	var pts []mathx.Vec3
	for i := 0; i < 100; i++ {
		pts = append(pts, mathx.Vec3{X: float64(i) * 0.5})
	}
	cs, err := DBSCAN(pts, Params{Eps: 1.0, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || len(cs[0].Indices) != 100 {
		t.Errorf("chain split into %d clusters", len(cs))
	}
}

func TestDBSCANAllPointsLabeledOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := append(blob(rng, mathx.Vec3{}, 50, 0.5), blob(rng, mathx.Vec3{X: 30}, 50, 0.5)...)
	cs, err := DBSCAN(pts, Params{Eps: 2, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range cs {
		for _, i := range c.Indices {
			if seen[i] {
				t.Fatalf("point %d in two clusters", i)
			}
			seen[i] = true
		}
	}
}

func TestLargest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	big := blob(rng, mathx.Vec3{}, 60, 0.3)
	small := blob(rng, mathx.Vec3{X: 25}, 10, 0.3)
	pts := append(append([]mathx.Vec3{}, small...), big...)
	c, ok, err := Largest(pts, Params{Eps: 1.5, MinPts: 3})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(c.Indices) != 60 {
		t.Errorf("largest cluster size %d, want 60", len(c.Indices))
	}
	// All-noise input.
	if _, ok, _ := Largest([]mathx.Vec3{{X: 0}, {X: 100}}, Params{Eps: 1, MinPts: 3}); ok {
		t.Error("noise-only input reported a cluster")
	}
}

func TestCentroid(t *testing.T) {
	pts := []mathx.Vec3{{X: 0}, {X: 2}, {X: 4}}
	c := Cluster{Indices: []int{0, 1, 2}}
	if got := c.Centroid(pts); got.Dist(mathx.Vec3{X: 2}) > 1e-12 {
		t.Errorf("centroid = %v", got)
	}
	if got := (Cluster{}).Centroid(pts); got != (mathx.Vec3{}) {
		t.Errorf("empty centroid = %v", got)
	}
}

func TestDBSCANScenarioQueryFiltering(t *testing.T) {
	// The server-side use case: true matches cluster at the viewed scene;
	// false LSH matches scatter. Largest-cluster filtering keeps the truth.
	rng := rand.New(rand.NewSource(5))
	sceneMatches := blob(rng, mathx.Vec3{X: 12, Y: 1.5, Z: 3}, 35, 0.8)
	var falseMatches []mathx.Vec3
	for i := 0; i < 30; i++ {
		falseMatches = append(falseMatches, mathx.Vec3{
			X: rng.Float64() * 80, Y: rng.Float64() * 3, Z: rng.Float64() * 50,
		})
	}
	pts := append(append([]mathx.Vec3{}, sceneMatches...), falseMatches...)
	c, ok, err := Largest(pts, DefaultParams())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	inScene := 0
	for _, i := range c.Indices {
		if i < 35 {
			inScene++
		}
	}
	if inScene < 30 {
		t.Errorf("largest cluster holds only %d/35 true matches", inScene)
	}
	if len(c.Indices)-inScene > 5 {
		t.Errorf("largest cluster polluted by %d false matches", len(c.Indices)-inScene)
	}
}

func BenchmarkDBSCAN1000(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pts := append(blob(rng, mathx.Vec3{}, 500, 1), blob(rng, mathx.Vec3{X: 50}, 500, 1)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DBSCAN(pts, DefaultParams())
	}
}
