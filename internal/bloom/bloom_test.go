package bloom

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCountingValidation(t *testing.T) {
	bad := []struct {
		n    uint64
		bits uint
		k    int
	}{
		{0, 10, 8}, {100, 0, 8}, {100, 17, 8}, {100, 10, 0},
	}
	for i, c := range bad {
		if _, err := NewCounting(c.n, c.bits, c.k, 0); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCountingAddCount(t *testing.T) {
	c, err := NewCounting(1<<14, 10, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	item := []byte("door knob")
	if got := c.Count(item); got != 0 {
		t.Errorf("fresh filter count = %d", got)
	}
	for i := 1; i <= 5; i++ {
		c.Add(item)
		if got := c.Count(item); got != uint32(i) {
			t.Errorf("after %d adds count = %d", i, got)
		}
	}
	if c.Inserts() != 5 {
		t.Errorf("Inserts = %d", c.Inserts())
	}
}

func TestCountingSaturation(t *testing.T) {
	c, _ := NewCounting(1<<12, 4, 4, 2) // saturates at 15
	item := []byte("x")
	for i := 0; i < 100; i++ {
		c.Add(item)
	}
	if got := c.Count(item); got != 15 {
		t.Errorf("saturated count = %d, want 15", got)
	}
	if c.Saturation() != 15 {
		t.Errorf("Saturation = %d", c.Saturation())
	}
}

func TestCountingTenBitSaturation(t *testing.T) {
	// The paper's configuration: 10-bit counters saturating at 1024
	// (max representable 1023).
	c, _ := NewCounting(1<<12, 10, 4, 3)
	if c.Saturation() != 1023 {
		t.Errorf("10-bit saturation = %d, want 1023", c.Saturation())
	}
}

func TestCountingNeverUndercounts(t *testing.T) {
	// Count-min property: for any item inserted m times (m < saturation),
	// Count(item) >= m.
	c, _ := NewCounting(1<<12, 10, 6, 4)
	rng := rand.New(rand.NewSource(5))
	counts := map[string]int{}
	for i := 0; i < 500; i++ {
		item := fmt.Sprintf("item-%d", rng.Intn(100))
		c.Add([]byte(item))
		counts[item]++
	}
	for item, m := range counts {
		if got := c.Count([]byte(item)); int(got) < m {
			t.Errorf("Count(%q) = %d < true %d", item, got, m)
		}
	}
}

func TestCountingPackedCounterIsolation(t *testing.T) {
	// Direct packed-storage check: setting one counter must not disturb
	// neighbors, including counters straddling 64-bit word boundaries.
	c, _ := NewCounting(200, 10, 1, 0)
	for i := uint64(0); i < 200; i++ {
		c.setCounterAt(i, uint32(i)%1024)
	}
	for i := uint64(0); i < 200; i++ {
		if got := c.counterAt(i); got != uint32(i)%1024 {
			t.Fatalf("counter %d = %d, want %d", i, got, i%1024)
		}
	}
}

func TestCountingFalsePositiveRate(t *testing.T) {
	// Sized at ~12 counters/item with k=8: FP rate should be well under 1%,
	// matching the paper's "up to 2.5M unique feature vectors with less
	// than 1% false positives" target (scaled down).
	n := uint64(120000)
	c, _ := NewCounting(n, 10, 8, 6)
	for i := 0; i < 10000; i++ {
		c.Add([]byte(fmt.Sprintf("present-%d", i)))
	}
	fp := 0
	trials := 20000
	for i := 0; i < trials; i++ {
		if c.Count([]byte(fmt.Sprintf("absent-%d", i))) > 0 {
			fp++
		}
	}
	if rate := float64(fp) / float64(trials); rate > 0.01 {
		t.Errorf("false positive rate %.4f > 1%%", rate)
	}
}

func TestCountAtPartial(t *testing.T) {
	c, _ := NewCounting(1<<12, 10, 4, 7)
	pos := []uint64{1, 2, 3, 4}
	c.setCounterAt(1, 5)
	c.setCounterAt(2, 6)
	c.setCounterAt(3, 7)
	// counter 4 stays 0: full min = 0, partial (drop one zero) = 5.
	if got := c.CountAt(pos); got != 0 {
		t.Errorf("CountAt = %d", got)
	}
	if got := c.CountAtPartial(pos); got != 5 {
		t.Errorf("CountAtPartial = %d, want 5", got)
	}
	// Two zeros: partial must also be 0.
	c.setCounterAt(1, 0)
	if got := c.CountAtPartial(pos); got != 0 {
		t.Errorf("CountAtPartial with two zeros = %d", got)
	}
}

func TestCountingFillRatio(t *testing.T) {
	c, _ := NewCounting(1024, 10, 4, 8)
	if c.FillRatio() != 0 {
		t.Errorf("fresh fill = %v", c.FillRatio())
	}
	c.Add([]byte("a"))
	if r := c.FillRatio(); r <= 0 || r > float64(c.K())/1024*2 {
		t.Errorf("fill after one add = %v", r)
	}
}

func TestCountingRoundTrip(t *testing.T) {
	c, _ := NewCounting(5000, 10, 8, 9)
	for i := 0; i < 300; i++ {
		c.Add([]byte(fmt.Sprintf("k%d", i%40)))
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadCounting(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Inserts() != c.Inserts() || c2.NumCounters() != c.NumCounters() {
		t.Fatal("header fields lost")
	}
	for i := 0; i < 40; i++ {
		item := []byte(fmt.Sprintf("k%d", i))
		if c.Count(item) != c2.Count(item) {
			t.Fatalf("count mismatch after round trip for %q", item)
		}
	}
}

func TestReadCountingRejectsGarbage(t *testing.T) {
	if _, err := ReadCounting(bytes.NewReader([]byte("not a filter at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadCounting(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestFilterBasic(t *testing.T) {
	f, err := NewFilter(1<<16, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	f.Add([]byte("hello"))
	if !f.Test([]byte("hello")) {
		t.Error("no false negatives allowed")
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f, _ := NewFilter(1<<18, 6, 11)
	var items [][]byte
	for i := 0; i < 5000; i++ {
		items = append(items, []byte(fmt.Sprintf("item-%d", i)))
		f.Add(items[i])
	}
	for _, it := range items {
		if !f.Test(it) {
			t.Fatalf("false negative for %q", it)
		}
	}
}

func TestFilterFalsePositiveRate(t *testing.T) {
	f, _ := NewFilter(1<<17, 7, 12) // ~13 bits/item for 10k items
	for i := 0; i < 10000; i++ {
		f.Add([]byte(fmt.Sprintf("in-%d", i)))
	}
	fp := 0
	trials := 20000
	for i := 0; i < trials; i++ {
		if f.Test([]byte(fmt.Sprintf("out-%d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / float64(trials); rate > 0.01 {
		t.Errorf("binary filter FP rate %.4f", rate)
	}
}

func TestFilterRoundTrip(t *testing.T) {
	f, _ := NewFilter(4096, 5, 13)
	f.Add([]byte("alpha"))
	f.Add([]byte("beta"))
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadFilter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Test([]byte("alpha")) || !f2.Test([]byte("beta")) {
		t.Error("membership lost in round trip")
	}
}

func TestGzipBytesCompressesSparseFilter(t *testing.T) {
	c, _ := NewCounting(1<<18, 10, 8, 14) // sparse: nothing inserted
	z, err := GzipBytes(c)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(z)) >= c.MemoryBytes()/10 {
		t.Errorf("sparse filter compressed to %d of %d bytes", len(z), c.MemoryBytes())
	}
	// And it must decompress back to a working filter.
	zr, err := gzip.NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCounting(zr); err != nil {
		t.Fatal(err)
	}
}

func TestGzipCompressibilityDropsWithSaturation(t *testing.T) {
	// The paper notes compressibility reduces as the filter saturates.
	sparse, _ := NewCounting(1<<16, 10, 8, 15)
	dense, _ := NewCounting(1<<16, 10, 8, 15)
	for i := 0; i < 40000; i++ {
		dense.Add([]byte(fmt.Sprintf("i%d", i)))
	}
	zs, _ := GzipBytes(sparse)
	zd, _ := GzipBytes(dense)
	if len(zd) <= len(zs) {
		t.Errorf("dense filter (%d B) should compress worse than sparse (%d B)", len(zd), len(zs))
	}
}

func TestPositionsDeterministic(t *testing.T) {
	c, _ := NewCounting(1<<12, 10, 8, 16)
	f := func(item []byte) bool {
		a := c.Positions(item)
		b := c.Positions(item)
		for i := range a {
			if a[i] != b[i] || a[i] >= c.NumCounters() {
				return false
			}
		}
		return len(a) == c.K()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPositionsKeyDistinct(t *testing.T) {
	a := PositionsKey([]uint64{1, 2, 3})
	b := PositionsKey([]uint64{1, 2, 4})
	if bytes.Equal(a, b) {
		t.Error("distinct position sets produce equal keys")
	}
	if len(a) != 24 {
		t.Errorf("key length = %d", len(a))
	}
}

func BenchmarkCountingAdd(b *testing.B) {
	c, _ := NewCounting(1<<22, 10, 8, 1)
	item := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		item[0] = byte(i)
		c.Add(item)
	}
}

func BenchmarkCountingCount(b *testing.B) {
	c, _ := NewCounting(1<<22, 10, 8, 1)
	item := make([]byte, 128)
	pos := make([]uint64, c.K())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		item[0] = byte(i)
		c.PositionsInto(item, pos)
		c.CountAt(pos)
	}
}

func TestCountingWriteToByteCount(t *testing.T) {
	c, _ := NewCounting(1000, 10, 4, 17)
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
}

func TestFilterWriteToByteCount(t *testing.T) {
	f, _ := NewFilter(4096, 4, 18)
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
}

func TestDiffWordsIncompatible(t *testing.T) {
	a, _ := NewCounting(1000, 10, 4, 1)
	b, _ := NewCounting(2000, 10, 4, 1)
	if _, err := a.DiffWords(b); err == nil {
		t.Error("diff across sizes accepted")
	}
	fa, _ := NewFilter(1000, 4, 1)
	fb, _ := NewFilter(1000, 5, 1)
	if _, err := fa.DiffWords(fb); err == nil {
		t.Error("filter diff across k accepted")
	}
	if err := a.ApplyDiffWords(make([]uint64, 3), 0); err == nil {
		t.Error("wrong-length counting diff accepted")
	}
	if err := fa.ApplyDiffWords(make([]uint64, 3)); err == nil {
		t.Error("wrong-length filter diff accepted")
	}
}

func TestDiffRoundTripAdvancesFilter(t *testing.T) {
	old, _ := NewCounting(4096, 10, 4, 9)
	cur, _ := NewCounting(4096, 10, 4, 9)
	for i := 0; i < 50; i++ {
		item := []byte(fmt.Sprintf("v1-%d", i))
		old.Add(item)
		cur.Add(item)
	}
	for i := 0; i < 20; i++ {
		cur.Add([]byte(fmt.Sprintf("v2-%d", i)))
	}
	diff, err := cur.DiffWords(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.ApplyDiffWords(diff, cur.Inserts()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		item := []byte(fmt.Sprintf("v2-%d", i))
		if old.Count(item) != cur.Count(item) {
			t.Fatalf("patched filter disagrees on %q", item)
		}
	}
	if old.Inserts() != cur.Inserts() {
		t.Error("insert count not advanced")
	}
}
