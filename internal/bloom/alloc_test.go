package bloom

// Coverage for the allocation-free helper forms (AddAt,
// AppendPositionsKey): they must be byte-for-byte equivalent to the
// allocating originals they shadow.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestAddAtMatchesAdd: inserting via PositionsInto+AddAt must leave the
// filter in exactly the state Add produces — counters, insert count and
// all subsequent count queries.
func TestAddAtMatchesAdd(t *testing.T) {
	a, err := NewCounting(1<<12, 10, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewCounting(1<<12, 10, 8, 99)
	rng := rand.New(rand.NewSource(81))
	items := make([][]byte, 300)
	for i := range items {
		items[i] = make([]byte, 28)
		rng.Read(items[i])
	}
	pos := make([]uint64, a.K())
	for _, item := range items {
		reps := 1 + int(item[0])%3
		for r := 0; r < reps; r++ {
			wantPos := a.Add(item)
			b.PositionsInto(item, pos)
			for i := range pos {
				if pos[i] != wantPos[i] {
					t.Fatalf("PositionsInto[%d] = %d, Add returned %d", i, pos[i], wantPos[i])
				}
			}
			b.AddAt(pos)
		}
	}
	if a.Inserts() != b.Inserts() {
		t.Fatalf("insert counts diverged: %d vs %d", a.Inserts(), b.Inserts())
	}
	for i, item := range items {
		if ca, cb := a.Count(item), b.Count(item); ca != cb {
			t.Fatalf("item %d: Add-built count %d, AddAt-built count %d", i, ca, cb)
		}
	}
	for i := uint64(0); i < a.NumCounters(); i++ {
		if a.counterAt(i) != b.counterAt(i) {
			t.Fatalf("counter %d diverged: %d vs %d", i, a.counterAt(i), b.counterAt(i))
		}
	}
}

// TestAppendPositionsKeyMatchesPositionsKey: same bytes, reused capacity,
// truncate-on-entry semantics.
func TestAppendPositionsKeyMatchesPositionsKey(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	var buf []byte
	for trial := 0; trial < 50; trial++ {
		pos := make([]uint64, 1+rng.Intn(12))
		for i := range pos {
			pos[i] = rng.Uint64()
		}
		want := PositionsKey(pos)
		buf = AppendPositionsKey(buf, pos)
		if !bytes.Equal(buf, want) {
			t.Fatalf("trial %d: AppendPositionsKey %x != PositionsKey %x", trial, buf, want)
		}
	}
	// Truncation: a longer previous key must not leak into a shorter one.
	long := AppendPositionsKey(nil, []uint64{1, 2, 3, 4})
	short := AppendPositionsKey(long, []uint64{9})
	if !bytes.Equal(short, PositionsKey([]uint64{9})) {
		t.Fatalf("reused buffer leaked stale bytes: %x", short)
	}
}

// TestAddAtZeroAllocs: the hot insert form must not allocate.
func TestAddAtZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; see race_off_test.go")
	}
	c, err := NewCounting(1<<12, 10, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	item := []byte("steady-state item")
	pos := make([]uint64, c.K())
	var key []byte
	key = AppendPositionsKey(key, pos)
	allocs := testing.AllocsPerRun(100, func() {
		c.PositionsInto(item, pos)
		c.AddAt(pos)
		key = AppendPositionsKey(key, pos)
	})
	if allocs != 0 {
		t.Fatalf("hot insert path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAddAtSaturates: AddAt must respect the saturation ceiling like Add.
func TestAddAtSaturates(t *testing.T) {
	c, err := NewCounting(64, 4, 2, 3) // saturates at 15
	if err != nil {
		t.Fatal(err)
	}
	item := []byte("hot")
	pos := make([]uint64, c.K())
	c.PositionsInto(item, pos)
	for i := 0; i < 40; i++ {
		c.AddAt(pos)
	}
	if got := c.CountAt(pos); got != c.Saturation() {
		t.Fatalf("count after 40 AddAt = %d, want saturation %d", got, c.Saturation())
	}
	if c.Inserts() != 40 {
		t.Fatalf("inserts = %d, want 40", c.Inserts())
	}
}

func ExampleAppendPositionsKey() {
	key := AppendPositionsKey(nil, []uint64{0x0102030405060708})
	fmt.Printf("% x\n", key)
	// Output: 08 07 06 05 04 03 02 01
}
