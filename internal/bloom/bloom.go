// Package bloom implements the probabilistic set structures behind
// VisualPrint's uniqueness oracle: a counting Bloom filter with packed
// fixed-width counters and a low saturation point, and a plain (binary)
// Bloom filter used as the verification filter that suppresses false
// positives (paper section 3, Figure 8).
//
// Index derivation uses Kirsch–Mitzenmacher double hashing over the two
// words of a Murmur3 128-bit hash, so each filter needs exactly one hash
// evaluation per operation regardless of K.
package bloom

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	mathbits "math/bits"

	"visualprint/internal/hash"
)

// Counting is a counting Bloom filter with n counters of a fixed bit width
// (the paper uses 10 bits, saturating at 1024). Counters saturate rather
// than wrap: "beyond which additional insertions of the same value have no
// effect".
type Counting struct {
	bits    uint     // counter width in bits (1..16)
	n       uint64   // number of counters
	k       int      // probes per element
	seed    uint32   // hash seed
	max     uint32   // saturation value = 2^bits - 1
	data    []uint64 // packed counter storage
	inserts uint64   // elements inserted (for load accounting)
}

// NewCounting creates a counting filter with n counters of the given bit
// width and k probes per element.
func NewCounting(n uint64, bits uint, k int, seed uint32) (*Counting, error) {
	if n == 0 || bits == 0 || bits > 16 || k <= 0 {
		return nil, errors.New("bloom: need n > 0, 0 < bits <= 16, k > 0")
	}
	words := (n*uint64(bits) + 63) / 64
	return &Counting{
		bits: bits,
		n:    n,
		k:    k,
		seed: seed,
		max:  (1 << bits) - 1,
		data: make([]uint64, words),
	}, nil
}

// counterAt reads counter i from the packed array. A counter may straddle a
// word boundary.
func (c *Counting) counterAt(i uint64) uint32 {
	bitPos := i * uint64(c.bits)
	word := bitPos / 64
	off := bitPos % 64
	v := c.data[word] >> off
	if off+uint64(c.bits) > 64 {
		v |= c.data[word+1] << (64 - off)
	}
	return uint32(v) & c.max
}

// setCounterAt writes counter i.
func (c *Counting) setCounterAt(i uint64, val uint32) {
	val &= c.max
	bitPos := i * uint64(c.bits)
	word := bitPos / 64
	off := bitPos % 64
	mask := uint64(c.max) << off
	c.data[word] = (c.data[word] &^ mask) | (uint64(val) << off)
	if off+uint64(c.bits) > 64 {
		rem := off + uint64(c.bits) - 64
		hiMask := (uint64(1) << rem) - 1
		c.data[word+1] = (c.data[word+1] &^ hiMask) | (uint64(val) >> (64 - off))
	}
}

// Positions returns the k counter indices for item. The returned slice is
// freshly allocated; use PositionsInto on hot paths.
func (c *Counting) Positions(item []byte) []uint64 {
	out := make([]uint64, c.k)
	c.PositionsInto(item, out)
	return out
}

// PositionsInto computes the k counter indices for item into out, which must
// have length k.
func (c *Counting) PositionsInto(item []byte, out []uint64) {
	h1, h2 := hash.Sum128(item, c.seed)
	for i := 0; i < c.k; i++ {
		out[i] = (h1 + uint64(i)*h2) % c.n
	}
}

// Add increments the k counters for item (saturating) and returns the
// counter positions touched — the verification filter hashes these
// positions.
func (c *Counting) Add(item []byte) []uint64 {
	pos := c.Positions(item)
	c.AddAt(pos)
	return pos
}

// AddAt increments the counters at pre-computed positions (saturating),
// counting one inserted element. Combined with PositionsInto it is the
// allocation-free form of Add used by the oracle's ingest path.
func (c *Counting) AddAt(pos []uint64) {
	for _, p := range pos {
		v := c.counterAt(p)
		if v < c.max {
			c.setCounterAt(p, v+1)
		}
	}
	c.inserts++
}

// Count returns the estimated multiplicity of item: the minimum of its k
// counters (the count-min bound; never an underestimate absent saturation).
func (c *Counting) Count(item []byte) uint32 {
	pos := make([]uint64, c.k)
	c.PositionsInto(item, pos)
	return c.CountAt(pos)
}

// CountAt returns the minimum counter value over the given positions.
func (c *Counting) CountAt(pos []uint64) uint32 {
	min := c.max
	for _, p := range pos {
		if v := c.counterAt(p); v < min {
			min = v
		}
	}
	return min
}

// CountAtPartial returns the minimum counter over pos ignoring the single
// smallest counter — the "K-1 of K bits matching" relaxation used by the
// oracle's multiprobe false-negative recovery. It returns 0 if two or more
// counters are zero.
func (c *Counting) CountAtPartial(pos []uint64) uint32 {
	min1, min2 := c.max, c.max // two smallest
	for _, p := range pos {
		v := c.counterAt(p)
		if v < min1 {
			min1, min2 = v, min1
		} else if v < min2 {
			min2 = v
		}
	}
	return min2
}

// Saturation returns the maximum representable count.
func (c *Counting) Saturation() uint32 { return c.max }

// K returns the number of probes per element.
func (c *Counting) K() int { return c.k }

// NumCounters returns the number of counters.
func (c *Counting) NumCounters() uint64 { return c.n }

// Inserts returns how many elements have been added.
func (c *Counting) Inserts() uint64 { return c.inserts }

// MemoryBytes returns the in-memory size of the counter array.
func (c *Counting) MemoryBytes() int64 { return int64(len(c.data) * 8) }

// FillRatio returns the fraction of nonzero counters, a hotspot diagnostic.
func (c *Counting) FillRatio() float64 {
	nz := uint64(0)
	for i := uint64(0); i < c.n; i++ {
		if c.counterAt(i) != 0 {
			nz++
		}
	}
	return float64(nz) / float64(c.n)
}

const countingMagic = "VPCB1\x00"

// WriteTo serializes the filter in a flat binary format.
func (c *Counting) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		return binary.Write(bw, binary.LittleEndian, v)
	}
	if _, err := bw.WriteString(countingMagic); err != nil {
		return n, err
	}
	hdr := []any{uint32(c.bits), c.n, uint32(c.k), c.seed, c.inserts, uint64(len(c.data))}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return n, err
		}
	}
	if err := write(c.data); err != nil {
		return n, err
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	n = int64(len(countingMagic)) + 4 + 8 + 4 + 4 + 8 + 8 + int64(len(c.data)*8)
	return n, nil
}

// ReadCounting deserializes a filter written by WriteTo. It reads exactly
// the serialized bytes, so several filters can be read back-to-back from one
// stream.
func ReadCounting(r io.Reader) (*Counting, error) {
	magic := make([]byte, len(countingMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != countingMagic {
		return nil, fmt.Errorf("bloom: bad magic %q", magic)
	}
	var bits, k, seed uint32
	var n, inserts, words uint64
	for _, v := range []any{&bits, &n, &k, &seed, &inserts, &words} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	c, err := NewCounting(n, uint(bits), int(k), seed)
	if err != nil {
		return nil, err
	}
	if words != uint64(len(c.data)) {
		return nil, errors.New("bloom: corrupt counting filter header")
	}
	if err := binary.Read(r, binary.LittleEndian, c.data); err != nil {
		return nil, err
	}
	c.inserts = inserts
	return c, nil
}

// Filter is a plain binary Bloom filter; VisualPrint uses one as the
// verification filter that stores hashed *bit positions* of primary
// insertions.
type Filter struct {
	m    uint64 // bits
	k    int
	seed uint32
	data []uint64
}

// NewFilter creates a binary Bloom filter with m bits and k probes.
func NewFilter(m uint64, k int, seed uint32) (*Filter, error) {
	if m == 0 || k <= 0 {
		return nil, errors.New("bloom: need m > 0 and k > 0")
	}
	return &Filter{m: m, k: k, seed: seed, data: make([]uint64, (m+63)/64)}, nil
}

// Add inserts item.
func (f *Filter) Add(item []byte) {
	h1, h2 := hash.Sum128(item, f.seed)
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		f.data[p/64] |= 1 << (p % 64)
	}
}

// Test reports whether item may be in the set (definitely not when false).
func (f *Filter) Test(item []byte) bool {
	h1, h2 := hash.Sum128(item, f.seed)
	for i := 0; i < f.k; i++ {
		p := (h1 + uint64(i)*h2) % f.m
		if f.data[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// MemoryBytes returns the in-memory size of the bit array.
func (f *Filter) MemoryBytes() int64 { return int64(len(f.data) * 8) }

const filterMagic = "VPBF1\x00"

// WriteTo serializes the filter.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(filterMagic); err != nil {
		return 0, err
	}
	for _, v := range []any{f.m, uint32(f.k), f.seed, uint64(len(f.data))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, f.data); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(len(filterMagic)) + 8 + 4 + 4 + 8 + int64(len(f.data)*8), nil
}

// ReadFilter deserializes a filter written by WriteTo. Like ReadCounting it
// consumes exactly the serialized bytes.
func ReadFilter(r io.Reader) (*Filter, error) {
	magic := make([]byte, len(filterMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != filterMagic {
		return nil, fmt.Errorf("bloom: bad magic %q", magic)
	}
	var k uint32
	var m, words uint64
	var seed uint32
	for _, v := range []any{&m, &k, &seed, &words} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	f, err := NewFilter(m, int(k), seed)
	if err != nil {
		return nil, err
	}
	if words != uint64(len(f.data)) {
		return nil, errors.New("bloom: corrupt filter header")
	}
	if err := binary.Read(r, binary.LittleEndian, f.data); err != nil {
		return nil, err
	}
	return f, nil
}

// GzipBytes serializes any WriteTo-able value through gzip and returns the
// compressed bytes. The paper ships oracle filters GZIP-compressed, noting
// that "compressibility reduces as the Bloom filter becomes more saturated".
func GzipBytes(wt io.WriterTo) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := wt.WriteTo(zw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MergeFrom adds other's counters into c (same n, bits, k, seed), saturating
// per counter. Because counters only ever increment and saturate at max, a
// counter's value is min(max, #increments); min(max, a+b) therefore equals
// the value the counter would hold had every element of both filters been
// inserted into one — the merged filter is bitwise identical to sequential
// insertion, which is what lets a sharded oracle be reassembled exactly from
// per-shard oracles (see core.Merge).
func (c *Counting) MergeFrom(other *Counting) error {
	if other.n != c.n || other.bits != c.bits || other.k != c.k || other.seed != c.seed {
		return errors.New("bloom: merge between incompatible counting filters")
	}
	for i := uint64(0); i < c.n; i++ {
		ov := other.counterAt(i)
		if ov == 0 {
			continue
		}
		sum := c.counterAt(i) + ov
		if sum > c.max {
			sum = c.max
		}
		c.setCounterAt(i, sum)
	}
	c.inserts += other.inserts
	return nil
}

// MergeFrom ORs other's bits into f (same m, k, seed). Set-union of bit
// positions, so the result is identical to inserting both filters' elements
// into one.
func (f *Filter) MergeFrom(other *Filter) error {
	if other.m != f.m || other.k != f.k || other.seed != f.seed {
		return errors.New("bloom: merge between incompatible filters")
	}
	for i := range f.data {
		f.data[i] |= other.data[i]
	}
	return nil
}

// DiffWords returns the XOR of this filter's packed counters against an
// older snapshot of the same filter (same n, bits, k, seed). Counting
// filters only ever increment, so the XOR is sparse — mostly zero words —
// and compresses extremely well, enabling the incremental oracle updates
// the paper proposes ("a compressed bitmask representing the diff between
// versions").
func (c *Counting) DiffWords(old *Counting) ([]uint64, error) {
	if old.n != c.n || old.bits != c.bits || old.k != c.k || old.seed != c.seed {
		return nil, errors.New("bloom: diff between incompatible counting filters")
	}
	out := make([]uint64, len(c.data))
	for i := range out {
		out[i] = c.data[i] ^ old.data[i]
	}
	return out, nil
}

// ApplyDiffWords XORs a DiffWords mask into the filter, advancing an old
// snapshot to the newer version. inserts is the new total insert count.
func (c *Counting) ApplyDiffWords(diff []uint64, inserts uint64) error {
	if len(diff) != len(c.data) {
		return errors.New("bloom: diff length mismatch")
	}
	for i := range diff {
		c.data[i] ^= diff[i]
	}
	c.inserts = inserts
	return nil
}

// DiffWords returns the XOR of this binary filter's bits against an older
// snapshot (same m, k, seed).
func (f *Filter) DiffWords(old *Filter) ([]uint64, error) {
	if old.m != f.m || old.k != f.k || old.seed != f.seed {
		return nil, errors.New("bloom: diff between incompatible filters")
	}
	out := make([]uint64, len(f.data))
	for i := range out {
		out[i] = f.data[i] ^ old.data[i]
	}
	return out, nil
}

// ApplyDiffWords XORs a DiffWords mask into the filter.
func (f *Filter) ApplyDiffWords(diff []uint64) error {
	if len(diff) != len(f.data) {
		return errors.New("bloom: diff length mismatch")
	}
	for i := range diff {
		f.data[i] ^= diff[i]
	}
	return nil
}

// Counter returns the value of counter i — the cell-level read used by the
// odelta sparse encoder.
func (c *Counting) Counter(i uint64) uint32 { return c.counterAt(i) }

// SetCounter overwrites counter i — the cell-level write the odelta decoder
// uses to replay a sparse delta (records carry absolute new values, not
// increments, so replay is idempotent).
func (c *Counting) SetCounter(i uint64, v uint32) { c.setCounterAt(i, v) }

// SetInserts overwrites the insert count; odelta replay sets it to the
// delta's recorded post-state so a reconstructed filter serializes
// byte-identically to the original.
func (c *Counting) SetInserts(n uint64) { c.inserts = n }

// DiffCells calls fn(i, newValue) for every counter whose value differs
// between old (an earlier snapshot: same n, bits, k, seed) and c, in
// ascending index order. The scan is word-granular — counters only ever
// increment, so after a small ingest batch almost every packed word is
// unchanged and is skipped with one comparison.
func (c *Counting) DiffCells(old *Counting, fn func(i uint64, v uint32)) error {
	if old.n != c.n || old.bits != c.bits || old.k != c.k || old.seed != c.seed {
		return errors.New("bloom: diff between incompatible counting filters")
	}
	// lastDone tracks the highest counter index already emitted, so a
	// counter straddling two differing words is reported once.
	lastDone := int64(-1)
	for w := range c.data {
		if c.data[w] == old.data[w] {
			continue
		}
		// Counter indices overlapping word w.
		first := uint64(w) * 64 / uint64(c.bits)
		last := (uint64(w)*64 + 63) / uint64(c.bits)
		if last >= c.n {
			last = c.n - 1
		}
		for i := first; i <= last; i++ {
			if int64(i) <= lastDone {
				continue
			}
			nv := c.counterAt(i)
			if nv != old.counterAt(i) {
				fn(i, nv)
			}
			lastDone = int64(i)
		}
	}
	return nil
}

// SetBit sets bit i — the decoder-side write for odelta's verify-filter
// deltas (bits are only ever set, so deltas are lists of newly-set bits).
func (f *Filter) SetBit(i uint64) { f.data[i/64] |= 1 << (i % 64) }

// NumBits returns the filter's bit count m.
func (f *Filter) NumBits() uint64 { return f.m }

// DiffBits calls fn(i) for every bit set in f but not in old (same m, k,
// seed), in ascending order. Binary Bloom bits are monotone, so this is the
// complete delta between the two versions.
func (f *Filter) DiffBits(old *Filter, fn func(i uint64)) error {
	if old.m != f.m || old.k != f.k || old.seed != f.seed {
		return errors.New("bloom: diff between incompatible filters")
	}
	for w := range f.data {
		x := f.data[w] &^ old.data[w]
		for x != 0 {
			fn(uint64(w)*64 + uint64(mathbits.TrailingZeros64(x)))
			x &= x - 1
		}
	}
	return nil
}

// PositionsKey encodes a sorted-independent byte key from counter positions,
// used by the oracle to feed the verification filter:
// hash(concat(bitPositions)).
func PositionsKey(pos []uint64) []byte {
	return AppendPositionsKey(make([]byte, 0, 8*len(pos)), pos)
}

// AppendPositionsKey is PositionsKey appending into dst (truncated first),
// the allocation-free form for hot paths that reuse one key buffer.
func AppendPositionsKey(dst []byte, pos []uint64) []byte {
	dst = dst[:0]
	var tmp [8]byte
	for _, p := range pos {
		binary.LittleEndian.PutUint64(tmp[:], p)
		dst = append(dst, tmp[:]...)
	}
	return dst
}
