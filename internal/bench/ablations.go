package bench

import (
	"math/rand"

	"visualprint/internal/core"
	"visualprint/internal/lsh"
)

// ablationWorkload generates SIFT-like descriptors with a controlled
// repeated/unique mix for oracle-parameter ablations. (Synthetic
// descriptors keep the ablations fast; the design choices they exercise —
// verification, multiprobe, counter width, LSH family — are independent of
// the image pipeline.)
type ablationWorkload struct {
	unique   [][]byte
	repeated [][]byte
	rng      *rand.Rand
}

func newAblationWorkload(seed int64, nUnique, nRepeated int) *ablationWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := &ablationWorkload{rng: rng}
	for i := 0; i < nUnique; i++ {
		w.unique = append(w.unique, siftLikeDesc(rng))
	}
	for i := 0; i < nRepeated; i++ {
		w.repeated = append(w.repeated, siftLikeDesc(rng))
	}
	return w
}

func siftLikeDesc(rng *rand.Rand) []byte {
	f := make([]float64, 128)
	var norm float64
	for i := range f {
		if rng.Float64() < 0.4 {
			f[i] = rng.ExpFloat64()
			norm += f[i] * f[i]
		}
	}
	d := make([]byte, 128)
	if norm == 0 {
		d[0] = 255
		return d
	}
	scale := 512 / sqrtNewton(norm)
	for i := range d {
		v := f[i] * scale
		if v > 255 {
			v = 255
		}
		d[i] = byte(v)
	}
	return d
}

func sqrtNewton(x float64) float64 {
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func perturbDesc(rng *rand.Rand, d []byte, amp int) []byte {
	out := append([]byte(nil), d...)
	for i := range out {
		v := int(out[i]) + rng.Intn(2*amp+1) - amp
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		out[i] = byte(v)
	}
	return out
}

// oracleQuality trains an oracle on the workload (repeated descriptors
// inserted 50x, unique once) and measures three rates:
//   - separation: fraction of unique descriptors scoring strictly below
//     the median repeated score (the ranking signal the selector needs);
//   - nearRecall: fraction of perturbed unique descriptors still found
//     (multiprobe's job);
//   - fpRate: fraction of never-inserted descriptors scoring nonzero
//     (verification's job).
func oracleQuality(p core.Params, w *ablationWorkload) (separation, nearRecall, fpRate float64, err error) {
	o, err := core.New(p)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, d := range w.repeated {
		for i := 0; i < 50; i++ {
			if err := o.Insert(d); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	for _, d := range w.unique {
		if err := o.Insert(d); err != nil {
			return 0, 0, 0, err
		}
	}
	// Median repeated score.
	var repScores []float64
	for _, d := range w.repeated {
		u, err := o.Uniqueness(d)
		if err != nil {
			return 0, 0, 0, err
		}
		repScores = append(repScores, float64(u))
	}
	medRep := medianOf(repScores)
	below := 0
	for _, d := range w.unique {
		u, _ := o.Uniqueness(d)
		if float64(u) < medRep {
			below++
		}
	}
	separation = float64(below) / float64(len(w.unique))

	rng := rand.New(rand.NewSource(99))
	hits := 0
	for _, d := range w.unique {
		// Strong perturbation: the cross-view descriptor change that
		// pushes features across quantization boundaries.
		u, _ := o.Uniqueness(perturbDesc(rng, d, 5))
		if u > 0 {
			hits++
		}
	}
	nearRecall = float64(hits) / float64(len(w.unique))

	fp := 0
	const fpTrials = 400
	for i := 0; i < fpTrials; i++ {
		q := make([]byte, 128)
		for j := range q {
			q[j] = byte(rng.Intn(256))
		}
		u, _ := o.Uniqueness(q)
		if u > 0 {
			fp++
		}
	}
	fpRate = float64(fp) / fpTrials
	return separation, nearRecall, fpRate, nil
}

// AblationVerification compares oracle false positives with and without the
// verification Bloom filter, under a deliberately undersized primary filter
// (the hotspot regime the paper built verification for).
func AblationVerification() (*Experiment, error) {
	e := &Experiment{
		ID: "ablation-verification", Title: "Verification filter vs false positives",
		XLabel: "0=off 1=on", YLabel: "rate",
	}
	w := newAblationWorkload(1, 400, 40)
	for i, on := range []bool{false, true} {
		p := core.TestParams()
		p.CountersPerTable = 1 << 12 // force hotspots
		if !on {
			p.VerifyBits = 0
		}
		sep, rec, fp, err := oracleQuality(p, w)
		if err != nil {
			return nil, err
		}
		e.Points = append(e.Points,
			Point{Series: "false-positive rate", X: float64(i), Y: fp},
			Point{Series: "near-duplicate recall", X: float64(i), Y: rec},
			Point{Series: "unique/repeated separation", X: float64(i), Y: sep},
		)
		e.Notef("verification=%v: fp=%.3f recall=%.3f separation=%.3f", on, fp, rec, sep)
	}
	return e, nil
}

// AblationMultiprobe compares near-duplicate recall with and without
// multiprobe (adjacent-bucket probing and K-1-of-K partial matches).
func AblationMultiprobe() (*Experiment, error) {
	e := &Experiment{
		ID: "ablation-multiprobe", Title: "Multiprobe vs quantization false negatives",
		XLabel: "0=off 1=on", YLabel: "rate",
	}
	w := newAblationWorkload(2, 400, 40)
	for i, on := range []bool{false, true} {
		p := core.TestParams()
		p.MultiProbe = on
		sep, rec, fp, err := oracleQuality(p, w)
		if err != nil {
			return nil, err
		}
		e.Points = append(e.Points,
			Point{Series: "near-duplicate recall", X: float64(i), Y: rec},
			Point{Series: "false-positive rate", X: float64(i), Y: fp},
		)
		e.Notef("multiprobe=%v: recall=%.3f fp=%.3f separation=%.3f", on, rec, fp, sep)
	}
	return e, nil
}

// AblationSaturation sweeps the counting-filter counter width (the paper
// chose 10 bits / saturation 1024 specifically to absorb hotspots). The
// effect shows in the hotspot regime: an undersized filter inflates unique
// descriptors' counts through collisions; narrow counters then saturate at
// a level collided-unique and truly-repeated features share, flattening
// the ranking.
func AblationSaturation() (*Experiment, error) {
	e := &Experiment{
		ID: "ablation-saturation", Title: "Counter width vs ranking quality",
		XLabel: "counter bits", YLabel: "separation",
	}
	// The count saturating early does not hurt the unique-vs-common split
	// (count-min keeps unique features low), but it destroys the *partial
	// ordering* among common features that the paper relies on: "uniqueness
	// counts (up to the saturation point of 1024) yield a partial ordering,
	// ranking keypoints from highly unique to common". Measure ordering
	// accuracy across descriptors with known multiplicities.
	multiplicities := []int{1, 5, 20, 80, 300}
	const perGroup = 30
	rng := rand.New(rand.NewSource(123))
	groups := make([][][]byte, len(multiplicities))
	for g := range groups {
		for i := 0; i < perGroup; i++ {
			groups[g] = append(groups[g], siftLikeDesc(rng))
		}
	}
	for _, bits := range []uint{4, 6, 8, 10} {
		p := core.TestParams()
		p.CounterBits = bits
		o, err := core.New(p)
		if err != nil {
			return nil, err
		}
		for g, m := range multiplicities {
			for _, d := range groups[g] {
				for k := 0; k < m; k++ {
					if err := o.Insert(d); err != nil {
						return nil, err
					}
				}
			}
		}
		counts := make([][]uint32, len(groups))
		for g := range groups {
			for _, d := range groups[g] {
				u, err := o.Uniqueness(d)
				if err != nil {
					return nil, err
				}
				counts[g] = append(counts[g], u)
			}
		}
		// Pairwise ordering accuracy across distinct-multiplicity groups.
		correct, total := 0, 0
		for g1 := 0; g1 < len(groups); g1++ {
			for g2 := g1 + 1; g2 < len(groups); g2++ {
				for _, a := range counts[g1] {
					for _, b := range counts[g2] {
						total++
						if a < b {
							correct++
						}
					}
				}
			}
		}
		acc := float64(correct) / float64(total)
		e.Points = append(e.Points, Point{Series: "ordering accuracy", X: float64(bits), Y: acc})
		e.Notef("%d-bit counters: multiplicity ordering accuracy %.3f (saturation %d)",
			bits, acc, (1<<bits)-1)
	}
	return e, nil
}

// AblationLSHParams sweeps L, M and W around the paper's (10, 7, 500).
func AblationLSHParams() (*Experiment, error) {
	e := &Experiment{
		ID: "ablation-lsh", Title: "LSH parameter sweep",
		XLabel: "variant", YLabel: "rate",
	}
	w := newAblationWorkload(4, 300, 30)
	variants := []struct {
		name   string
		mutate func(*lsh.Params)
	}{
		{"paper(L10,M7,W500)", func(p *lsh.Params) {}},
		{"L4", func(p *lsh.Params) { p.L = 4 }},
		{"M3", func(p *lsh.Params) { p.M = 3 }},
		{"M12", func(p *lsh.Params) { p.M = 12 }},
		{"W100", func(p *lsh.Params) { p.W = 100 }},
		{"W2000", func(p *lsh.Params) { p.W = 2000 }},
	}
	for i, v := range variants {
		p := core.TestParams()
		v.mutate(&p.LSH)
		sep, rec, fp, err := oracleQuality(p, w)
		if err != nil {
			return nil, err
		}
		e.Points = append(e.Points,
			Point{Series: "separation", X: float64(i), Y: sep},
			Point{Series: "near-duplicate recall", X: float64(i), Y: rec},
			Point{Series: "false-positive rate", X: float64(i), Y: fp},
		)
		e.Notef("%s: separation=%.3f recall=%.3f fp=%.3f", v.name, sep, rec, fp)
	}
	return e, nil
}

// AblationICP measures wardriving map error with and without ICP
// correction, on the office venue with amplified drift.
func AblationICP(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "ablation-icp", Title: "ICP drift correction",
		XLabel: "0=off 1=on", YLabel: "mean map error (m)",
	}
	specs := venueSpecs(sc)
	world := specFromName(specs, "office")
	cfg := wardriveConfig(sc)
	cfg.Drift.PosStddevPerMeter = 0.08
	snapsOff, err := walkWorld(world, cfg)
	if err != nil {
		return nil, err
	}
	before := meanMapError(snapsOff)
	if err := correctSnaps(snapsOff); err != nil {
		return nil, err
	}
	after := meanMapError(snapsOff)
	e.Points = append(e.Points,
		Point{Series: "map error", X: 0, Y: before},
		Point{Series: "map error", X: 1, Y: after},
	)
	e.Notef("mean keypoint position error: %.2f m drifted, %.2f m after ICP", before, after)
	return e, nil
}
