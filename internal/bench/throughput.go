package bench

// Multi-client query throughput over the multiplexed v2 wire protocol —
// not a paper figure, but the scaling experiment behind the ROADMAP's
// production-service goal: with per-request dispatch on the server and
// request-ID demultiplexing in the client, localization throughput should
// scale with cores instead of serializing per connection.

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"visualprint/internal/pose"
	"visualprint/internal/scene"
	"visualprint/internal/server"
	"visualprint/internal/sift"
)

// throughputQuery is one prepared localization request.
type throughputQuery struct {
	kps  []sift.Keypoint
	intr pose.Intrinsics
}

// prepareQueries renders query viewpoints in the run's venue and performs
// the client-side oracle selection once, so the measured loop contains only
// wire round-trips and server work.
func prepareQueries(run *venueRun, sc Scale, n int) ([]throughputQuery, error) {
	pois := run.world.POIsOfKind(scene.POIUnique)
	if len(pois) == 0 {
		return nil, fmt.Errorf("bench: venue %s has no unique POIs", run.world.Name)
	}
	cfg := siftConfig()
	var qs []throughputQuery
	for i := 0; len(qs) < n && i < 4*n; i++ {
		poi := pois[(i*5)%len(pois)]
		cam := scene.CameraFacing(run.world, poi, 3.0, 0.2*float64(i%3-1), -0.05, sc.ImgW, sc.ImgH)
		fr, err := scene.Render(run.world, cam)
		if err != nil {
			return nil, err
		}
		kps := sift.Detect(fr.Image, cfg)
		if len(kps) < 15 {
			continue
		}
		sel, err := run.db.SelectUnique(kps, 200)
		if err != nil {
			return nil, err
		}
		qs = append(qs, throughputQuery{
			kps:  sel,
			intr: pose.Intrinsics{W: cam.W, H: cam.H, FovX: cam.FovX, FovY: cam.FovY()},
		})
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("bench: no usable query views in %s", run.world.Name)
	}
	return qs, nil
}

// QueryThroughput measures end-to-end localization queries per second
// against a live TCP server as the number of concurrent clients grows from
// 1 to maxClients (doubling). Each client issues queriesPerClient pipelined
// requests over its own connection; remote no-consensus errors count as
// served requests (the server did the work).
func QueryThroughput(sc Scale, maxClients, queriesPerClient int) (*Experiment, error) {
	if maxClients <= 0 {
		maxClients = runtime.GOMAXPROCS(0)
	}
	if queriesPerClient <= 0 {
		queriesPerClient = 8
	}
	e := &Experiment{
		ID: "throughput", Title: "Multi-client localization query throughput (wire protocol v2)",
		XLabel: "concurrent clients", YLabel: "queries/s",
	}
	runs, err := getVenueRuns(sc)
	if err != nil {
		return nil, err
	}
	run := runs[0]
	queries, err := prepareQueries(run, sc, 4)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.Serve(ln, run.db)
	srv.Log = nil
	defer srv.Close()

	for clients := 1; clients <= maxClients; clients *= 2 {
		qps, err := measureThroughput(srv.Addr().String(), queries, clients, queriesPerClient)
		if err != nil {
			return nil, err
		}
		e.Points = append(e.Points, Point{Series: "v2-multiplexed", X: float64(clients), Y: qps})
	}
	e.Notef("venue %s, %d mappings, GOMAXPROCS=%d, %d queries/client",
		run.world.Name, run.db.Len(), runtime.GOMAXPROCS(0), queriesPerClient)
	return e, nil
}

// measureThroughput runs one client-count configuration and returns
// queries per second of wall time.
func measureThroughput(addr string, queries []throughputQuery, clients, perClient int) (float64, error) {
	conns := make([]*server.Client, clients)
	for i := range conns {
		c, err := server.Dial(addr)
		if err != nil {
			return 0, err
		}
		conns[i] = c
		defer c.Close()
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	start := time.Now()
	for i, c := range conns {
		wg.Add(1)
		go func(c *server.Client, i int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				qu := queries[(i+q)%len(queries)]
				if _, err := c.Query(ctx, qu.kps, qu.intr); err != nil && !server.IsRemote(err) {
					errc <- err
					return
				}
			}
		}(c, i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		return 0, err
	}
	return float64(clients*perClient) / elapsed.Seconds(), nil
}
