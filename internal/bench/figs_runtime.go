package bench

import (
	"time"

	"visualprint/internal/bloom"
	"visualprint/internal/core"
	"visualprint/internal/power"
	"visualprint/internal/scene"
	"visualprint/internal/sift"
)

// oracleGzip serializes an oracle gzip-compressed.
func oracleGzip(o *core.Oracle) ([]byte, error) {
	return bloom.GzipBytes(o)
}

// Fig16Latency regenerates Figure 16: the CDF of client compute latency,
// SIFT extraction versus the oracle filtering step (Bloom lookups +
// sorting). The paper's point — filtering costs an order of magnitude less
// than extraction — should hold regardless of host CPU.
func Fig16Latency(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig16", Title: "Client compute latency CDF",
		XLabel: "latency (ms)", YLabel: "CDF",
	}
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, err
	}
	// Train an oracle on the corpus, as the client would have downloaded.
	oracle, err := core.New(core.TestParams())
	if err != nil {
		return nil, err
	}
	for _, d := range c.DB.Descs {
		if err := oracle.Insert(d); err != nil {
			return nil, err
		}
	}
	cfg := siftConfig()
	var siftMs, filterMs []float64
	frames := 0
	for id := 0; id < sc.Scenes && frames < 30; id++ {
		cam := c.SceneCams[id]
		w := worldOf(c, cam)
		fr, err := scene.Render(w, cam)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		kps := sift.Detect(fr.Image, cfg)
		siftMs = append(siftMs, float64(time.Since(t0).Microseconds())/1000)
		if len(kps) == 0 {
			continue
		}
		t1 := time.Now()
		if _, err := oracle.SelectUnique(kps, 200); err != nil {
			return nil, err
		}
		filterMs = append(filterMs, float64(time.Since(t1).Microseconds())/1000)
		frames++
	}
	e.AddCDF("SIFT", siftMs)
	e.AddCDF("VisualPrint Matching", filterMs)
	e.Notef("medians: SIFT %.1f ms, filtering %.2f ms (paper on Galaxy S6: 3300 / 217)",
		medianOf(siftMs), medianOf(filterMs))
	return e, nil
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// Fig18Energy regenerates Figure 18: average power over a 70-second session
// for the five client configurations, from the calibrated component model.
func Fig18Energy(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig18", Title: "Average power by configuration",
		XLabel: "time (s)", YLabel: "power (W)",
	}
	m := power.Default()
	traces := []struct {
		name string
		w    power.Workload
	}{
		{"Display", power.DisplayOnly()},
		{"Android Camera", power.CameraPreview()},
		{"VisualPrint (only computation)", power.VisualPrintComputeOnly()},
		{"VisualPrint (only upload)", power.VisualPrintUploadOnly()},
		{"VisualPrint (computation+upload)", power.VisualPrintFull()},
	}
	for _, tr := range traces {
		series, err := m.Series(tr.w, 70*time.Second, time.Second)
		if err != nil {
			return nil, err
		}
		for i, v := range series {
			e.Points = append(e.Points, Point{Series: tr.name, X: float64(i), Y: v})
		}
		avg, _ := m.Average(tr.w)
		e.Notef("%s: %.1f W average", tr.name, avg)
	}
	off, _ := m.Average(power.FrameOffload())
	full, _ := m.Average(power.VisualPrintFull())
	e.Notef("whole-frame offload: %.1f W (paper 4.9); VisualPrint full: %.1f W (paper 6.5)", off, full)
	return e, nil
}
