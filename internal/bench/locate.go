package bench

// Server-side Locate microbenchmark workload: a synthetic database and query
// set exercising the full query pipeline — per-keypoint LSH candidate
// retrieval, spatial clustering, and the differential-evolution pose solve —
// with no rendering or SIFT in the measured loop. Shared by the root
// bench_test.go benchmarks and `vpbench -exp locate`, which emits the
// machine-readable BENCH_locate.json tracked by the perf trajectory
// (see DESIGN.md "Performance").

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/server"
	"visualprint/internal/sift"
)

// LocateBaselineInfo is a reference measurement of the standard
// LocateWorkload against which new numbers are compared in
// BENCH_locate.json, so regressions and wins stay visible across PRs.
type LocateBaselineInfo struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Recorded    string  `json:"recorded"`
	Host        string  `json:"host"`
}

// LocateBaseline is the pre-optimization measurement: the code as of the
// previous PR (per-row descriptor conversion, allocating probe/key/dedup
// paths, full objective evaluation of every DE trial, no convergence stop)
// driving exactly this file's DefaultLocateWorkload. ns/op is the median
// of 10 runs interleaved with the optimized build on the same host to
// cancel machine drift; allocs and bytes are exact (deterministic
// workload).
func LocateBaseline() LocateBaselineInfo {
	return LocateBaselineInfo{
		NsPerOp:     122_650_000,
		AllocsPerOp: 64_999,
		BytesPerOp:  8_187_328,
		Recorded:    "2026-08-06",
		Host:        "1-core Intel Xeon @ 2.10 GHz, linux/amd64, GOMAXPROCS=1",
	}
}

// CoresPoint is one entry of the QPS-vs-cores curve: throughput measured
// with GOMAXPROCS pinned to Cores. NumCPU records the hardware parallelism
// actually available when the point was taken — on a host with fewer
// physical CPUs than Cores the point measures oversubscription, not
// scaling, and readers of the JSON must interpret it with that field.
type CoresPoint struct {
	Cores   int     `json:"cores"`
	NumCPU  int     `json:"num_cpu"`
	Clients int     `json:"clients"`
	QPS     float64 `json:"qps"`
	// ScaleVs1 is QPS divided by the 1-core point's QPS (0 when the sweep
	// has no 1-core entry).
	ScaleVs1 float64 `json:"scale_vs_1,omitempty"`
}

// LocateBenchResult is the machine-readable output of RunLocateBenchmark —
// the schema of BENCH_locate.json (written by `make bench`).
type LocateBenchResult struct {
	Workload    LocateWorkloadConfig `json:"workload"`
	Iters       int                  `json:"iters"`
	NsPerOp     float64              `json:"ns_per_op"`
	AllocsPerOp float64              `json:"allocs_per_op"`
	BytesPerOp  float64              `json:"bytes_per_op"`
	// QueriesPerSec maps client count -> end-to-end localization
	// queries/s over a live TCP loopback server, at the ambient
	// GOMAXPROCS recorded below.
	QueriesPerSec map[string]float64 `json:"queries_per_sec,omitempty"`
	// QPSVsCores is the multi-core scaling curve: the same live-server
	// throughput measurement repeated with GOMAXPROCS pinned per entry.
	QPSVsCores []CoresPoint `json:"qps_vs_cores,omitempty"`
	// GOMAXPROCS and NumCPU are the ambient runtime parallelism the
	// latency/QPS numbers above were measured at (the cores sweep pins its
	// own per entry).
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Baseline and SpeedupNs are present only for the standard workload,
	// where the recorded pre-optimization numbers are comparable.
	Baseline  *LocateBaselineInfo `json:"baseline,omitempty"`
	SpeedupNs float64             `json:"speedup_ns_per_op,omitempty"`
	Recorded  string              `json:"recorded"`
	Host      string              `json:"host"`
}

// RunLocateBenchmark measures Locate latency (direct calls) and
// throughput (live server, for each entry of clients) on one workload.
// A non-empty coresSweep additionally measures the QPS-vs-cores curve:
// the throughput measurement repeated once per entry with GOMAXPROCS
// pinned to that core count (restored afterwards).
func RunLocateBenchmark(cfg LocateWorkloadConfig, iters int, clients []int, perClient int, coresSweep []int) (*LocateBenchResult, error) {
	if iters <= 0 {
		iters = 5
	}
	w, err := NewLocateWorkload(cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Run(); err != nil { // warm pools and caches
		return nil, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := w.Run(); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	res := &LocateBenchResult{
		Workload:    cfg,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters),
		Recorded:    time.Now().UTC().Format("2006-01-02"),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Host: fmt.Sprintf("%s/%s, GOMAXPROCS=%d, NumCPU=%d",
			runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), runtime.NumCPU()),
	}
	if len(clients) > 0 {
		res.QueriesPerSec = make(map[string]float64, len(clients))
		for _, c := range clients {
			qps, err := w.QPS(c, perClient)
			if err != nil {
				return nil, err
			}
			res.QueriesPerSec[strconv.Itoa(c)] = qps
		}
	}
	if len(coresSweep) > 0 {
		pts, err := w.CoresSweep(coresSweep, perClient)
		if err != nil {
			return nil, err
		}
		res.QPSVsCores = pts
	}
	if cfg == DefaultLocateWorkload() {
		b := LocateBaseline()
		res.Baseline = &b
		res.SpeedupNs = b.NsPerOp / res.NsPerOp
	}
	return res, nil
}

// LocateWorkloadConfig sizes the synthetic Locate workload.
type LocateWorkloadConfig struct {
	// ClusterMappings is the number of spatially-clustered mappings the
	// query should match (they survive cluster filtering into the solve).
	ClusterMappings int
	// ScatterMappings is the number of decoy mappings spread across the
	// venue (they size the LSH tables realistically).
	ScatterMappings int
	// QueryKeypoints is the fingerprint size, the paper's 200-keypoint
	// upload by default.
	QueryKeypoints int
	// MaxIterations bounds DE generations; the solve runs with Deadline=0
	// so the benchmark is compute-bound and deterministic.
	MaxIterations int
	// Seed fixes the synthetic corpus and the solver.
	Seed int64
	// EnableObs turns on the database's observability instrumentation
	// (counters, stage tracer) for the measured loop, so the tracer's
	// overhead can be quantified against an uninstrumented run. A config
	// with EnableObs set is not comparable against the recorded baseline,
	// so no baseline is attached to its result.
	EnableObs bool `json:"enable_obs,omitempty"`
	// Shards > 1 ingests the corpus into a sharded venue behind a Router
	// and measures the scatter-gather Locate path instead of the direct
	// single-database one. Results are bit-identical to unsharded (the
	// merge reproduces the single-database candidate ranking), so the
	// delta against a Shards=0 run is pure routing overhead. Not
	// comparable against the recorded baseline.
	Shards int `json:"shards,omitempty"`
}

// DefaultLocateWorkload is the standard measurement configuration: a
// 200-keypoint query against ~4k mappings with the default solver budget.
// Most of the fingerprint (160 of 200 keypoints) comes from the queried
// scene, as in a real capture; the remaining 40 are decoys whose matches
// scatter across the venue and must lose the clustering vote.
func DefaultLocateWorkload() LocateWorkloadConfig {
	return LocateWorkloadConfig{
		ClusterMappings: 160,
		ScatterMappings: 4000,
		QueryKeypoints:  200,
		MaxIterations:   pose.DefaultOptions().MaxIterations,
		Seed:            7,
	}
}

// ShortLocateWorkload is a CI-sized configuration (same shape, ~10x less
// compute) used by `make bench-short` to keep the JSON schema exercised on
// every push without paying the full measurement cost.
func ShortLocateWorkload() LocateWorkloadConfig {
	c := DefaultLocateWorkload()
	c.ScatterMappings = 500
	c.MaxIterations = 15
	return c
}

// LocateWorkload is a prepared synthetic Locate benchmark: database plus a
// query whose answer passes clustering and reaches the pose solver.
type LocateWorkload struct {
	DB   *server.Database
	KPs  []sift.Keypoint
	Intr pose.Intrinsics
	Cfg  LocateWorkloadConfig
	// TrueCam is the camera position the cluster keypoints were projected
	// from; the solved position must land near it.
	TrueCam mathx.Vec3
	// Router and VenueName are set for a sharded workload (Cfg.Shards > 1):
	// Run and QPS then go through the scatter-gather path.
	Router    *server.Router
	VenueName string
}

// NewLocateWorkload builds the synthetic database and query. The cluster
// descriptors are ingested first, so the first ClusterMappings query
// keypoints are exact (distance-0) LSH hits onto a tight spatial cluster;
// the remaining keypoints match scattered decoys that clustering discards.
//
// The cluster keypoints' pixel coordinates are the true projections of
// their 3D positions from a fixed camera pose — a geometrically consistent
// query, like every real localization. Consistency matters for what the
// benchmark measures: it gives the pose objective a near-zero optimum, so
// the solver converges and the early-abort evaluation path carries its
// realistic share of the work (an inconsistent pixel assignment leaves
// every trial's cost pinned near the residual cap, a query no real client
// can produce).
func NewLocateWorkload(cfg LocateWorkloadConfig) (*LocateWorkload, error) {
	if cfg.QueryKeypoints > cfg.ClusterMappings+cfg.ScatterMappings {
		return nil, fmt.Errorf("bench: query wants %d keypoints but only %d mappings configured",
			cfg.QueryKeypoints, cfg.ClusterMappings+cfg.ScatterMappings)
	}
	dbCfg := server.DefaultDatabaseConfig()
	dbCfg.Pose.Deadline = 0 // compute-bound and deterministic
	dbCfg.Pose.MaxIterations = cfg.MaxIterations
	db, err := server.NewDatabase(dbCfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The scene is a wall-like slab mid-venue: wide in X (real angular
	// baseline for the pairwise-angle objective), shallow in Z, and deep
	// enough into the venue that its mirror image — the reflection of the
	// camera through the slab plane, which the objective cannot distinguish
	// for a planar scene — falls outside the search box.
	center := mathx.Vec3{X: 4, Y: 1.5, Z: 7.5}
	ms := make([]server.Mapping, 0, cfg.ClusterMappings+cfg.ScatterMappings)
	for i := 0; i < cfg.ClusterMappings; i++ {
		var m server.Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: center.X + rng.Float64()*5.6 - 2.8,
			Y: center.Y + rng.Float64()*1.4 - 0.7,
			Z: center.Z + rng.Float64()*0.8 - 0.4,
		}
		ms = append(ms, m)
	}
	for i := 0; i < cfg.ScatterMappings; i++ {
		var m server.Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: rng.Float64() * 12,
			Y: rng.Float64() * 3,
			Z: rng.Float64() * 9,
		}
		ms = append(ms, m)
	}
	if cfg.EnableObs {
		db.EnableObs()
	}
	var router *server.Router
	venueName := ""
	if cfg.Shards > 1 {
		router = server.NewRouter(db, dbCfg)
		venueName = "bench"
		if err := router.ConfigureVenue(venueName, server.VenueConfig{Shards: cfg.Shards}); err != nil {
			return nil, err
		}
		if _, err := router.Ingest(context.Background(), venueName, ms); err != nil {
			return nil, err
		}
	} else if err := db.Ingest(context.Background(), ms); err != nil {
		return nil, err
	}
	intr := pose.Intrinsics{W: 200, H: 150, FovX: 1.1, FovY: 0.85}
	cam := mathx.Vec3{X: 4, Y: 1.4, Z: 2} // ~5.5 m back from the scene, facing +Z
	cx, cy := float64(intr.W)/2, float64(intr.H)/2
	focal := cx / math.Tan(intr.FovX/2)
	kps := make([]sift.Keypoint, cfg.QueryKeypoints)
	for i := range kps {
		kps[i].Desc = ms[i].Desc
		if i < cfg.ClusterMappings {
			// True pinhole projection from cam (upright, facing +Z) — the
			// same camera model pose.Localize inverts.
			d := ms[i].Pos.Sub(cam)
			kps[i].X = cx + focal*d.X/d.Z
			kps[i].Y = cy - focal*d.Y/d.Z
		} else {
			// Decoy keypoints (their matches are discarded by clustering):
			// pixel positions on an arbitrary grid.
			kps[i].X = float64(10 + (i%16)*11)
			kps[i].Y = float64(8 + (i/16)*10)
		}
	}
	w := &LocateWorkload{DB: db, KPs: kps, Intr: intr, Cfg: cfg, TrueCam: cam,
		Router: router, VenueName: venueName}
	// Fail construction, not measurement, if the query cannot localize —
	// and, at full solver budget, if it does not localize close to the
	// true camera (the workload must measure a converging solve).
	res, err := w.locate(context.Background())
	if err != nil {
		return nil, fmt.Errorf("bench: locate workload query does not localize: %w", err)
	}
	if cfg.MaxIterations >= 100 {
		e := res.Position.Sub(cam)
		if errm := math.Sqrt(e.Dot(e)); errm > 1.5 {
			return nil, fmt.Errorf("bench: locate workload solved %.2f m from the true camera", errm)
		}
	}
	return w, nil
}

// Run performs one Locate — the benchmark body.
func (w *LocateWorkload) Run() error {
	_, err := w.locate(context.Background())
	return err
}

// locate issues the workload query through whichever engine the config
// built: the direct database, or the router's scatter-gather path.
func (w *LocateWorkload) locate(ctx context.Context) (server.LocateResult, error) {
	if w.Router != nil {
		return w.Router.Locate(ctx, w.VenueName, w.KPs, w.Intr)
	}
	return w.DB.Locate(ctx, w.KPs, w.Intr)
}

// QPS measures end-to-end localization queries/s against a live TCP server
// backed by this workload's database, with the given number of concurrent
// clients each issuing perClient pipelined requests.
func (w *LocateWorkload) QPS(clients, perClient int) (float64, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	var opts []server.Option
	if w.Router != nil {
		opts = append(opts, server.WithRouter(w.Router))
	}
	srv := server.Serve(ln, w.DB, opts...)
	srv.Log = nil
	defer srv.Close()
	return measureLocateQPS(srv.Addr().String(), w, clients, perClient)
}

// CoresSweep measures the QPS-vs-cores curve: for each requested core
// count it pins GOMAXPROCS to that value, runs the live-server throughput
// measurement with 2x that many concurrent clients (enough offered load to
// saturate the pinned cores without drowning the admission queue), and
// restores the previous GOMAXPROCS before returning. ScaleVs1 on each
// point is relative to the sweep's 1-core entry when one exists.
//
// Pinning GOMAXPROCS above runtime.NumCPU() is permitted — the point is
// still recorded, with NumCPU exposing that it measured oversubscription
// rather than hardware scaling.
func (w *LocateWorkload) CoresSweep(cores []int, perClient int) ([]CoresPoint, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	pts := make([]CoresPoint, 0, len(cores))
	for _, n := range cores {
		if n < 1 {
			return nil, fmt.Errorf("bench: cores sweep entry %d < 1", n)
		}
		runtime.GOMAXPROCS(n)
		clients := 2 * n
		qps, err := w.QPS(clients, perClient)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			return nil, err
		}
		pts = append(pts, CoresPoint{
			Cores:   n,
			NumCPU:  runtime.NumCPU(),
			Clients: clients,
			QPS:     qps,
		})
	}
	runtime.GOMAXPROCS(prev)
	var base float64
	for _, p := range pts {
		if p.Cores == 1 {
			base = p.QPS
			break
		}
	}
	if base > 0 {
		for i := range pts {
			pts[i].ScaleVs1 = pts[i].QPS / base
		}
	}
	return pts, nil
}

func measureLocateQPS(addr string, w *LocateWorkload, clients, perClient int) (float64, error) {
	conns := make([]*server.Client, clients)
	for i := range conns {
		c, err := server.Dial(addr, server.WithVenue(w.VenueName))
		if err != nil {
			return 0, err
		}
		conns[i] = c
		defer c.Close()
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	start := time.Now()
	for _, c := range conns {
		wg.Add(1)
		go func(c *server.Client) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				if _, err := c.Query(ctx, w.KPs, w.Intr); err != nil && !server.IsRemote(err) {
					errc <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		return 0, err
	}
	return float64(clients*perClient) / elapsed.Seconds(), nil
}
