package bench

import (
	"context"
	"fmt"
	"math"
	"sync"

	"visualprint/internal/icp"
	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/scene"
	"visualprint/internal/server"
	"visualprint/internal/sift"
	"visualprint/internal/wardrive"
)

// venueRun is a wardriven venue with its server database, cached per scale.
type venueRun struct {
	world *scene.World
	db    *server.Database
	snaps []wardrive.Snapshot
}

var (
	venueMu    sync.Mutex
	venueCache = map[string][]*venueRun{}
)

// wardriveConfig returns the session config used by the localization
// experiments.
func wardriveConfig(sc Scale) wardrive.Config {
	cfg := wardrive.DefaultConfig()
	cfg.ImageW, cfg.ImageH = sc.ImgW, sc.ImgH
	cfg.StepMeters = 3
	cfg.RowSpacing = 5
	cfg.MaxKeypointsPerFrame = 300
	cfg.SweepPOIs = true
	return cfg
}

// getVenueRuns wardrives the three venues (with drift), corrects drift via
// ICP, and ingests into fresh databases.
func getVenueRuns(sc Scale) ([]*venueRun, error) {
	venueMu.Lock()
	defer venueMu.Unlock()
	if runs, ok := venueCache[sc.Name]; ok {
		return runs, nil
	}
	var runs []*venueRun
	for _, spec := range venueSpecs(sc) {
		w := scene.Build(spec)
		snaps, err := wardrive.Walk(w, wardriveConfig(sc))
		if err != nil {
			return nil, fmt.Errorf("bench: wardrive %s: %w", spec.Name, err)
		}
		// ICP drift correction, as the paper's post-processing.
		if err := correctSnaps(snaps); err != nil {
			return nil, err
		}
		db, err := server.NewDatabase(server.DefaultDatabaseConfig())
		if err != nil {
			return nil, err
		}
		var ms []server.Mapping
		for _, o := range wardrive.Observations(snaps) {
			m := server.Mapping{Pos: o.Est}
			copy(m.Desc[:], o.Keypoint.Desc[:])
			ms = append(ms, m)
		}
		if err := db.Ingest(context.Background(), ms); err != nil {
			return nil, err
		}
		runs = append(runs, &venueRun{world: w, db: db, snaps: snaps})
	}
	venueCache[sc.Name] = runs
	return runs, nil
}

// correctSnaps applies ICP sequence correction to the snapshots in place.
func correctSnaps(snaps []wardrive.Snapshot) error {
	clouds := make([][]mathx.Vec3, len(snaps))
	for i := range snaps {
		clouds[i] = snaps[i].Cloud
	}
	tfs, err := icp.CorrectSequence(clouds, icp.DefaultOptions())
	if err != nil {
		return err
	}
	for i := range snaps {
		tf := tfs[i]
		for j := range snaps[i].Obs {
			snaps[i].Obs[j].Est = tf.Apply(snaps[i].Obs[j].Est)
		}
		snaps[i].Cloud = tf.ApplyAll(snaps[i].Cloud)
	}
	return nil
}

// localizationErrors runs query views in a venue and returns per-query 3D
// errors and per-axis absolute errors.
func localizationErrors(run *venueRun, sc Scale) (errs []float64, axis [3][]float64, err error) {
	pois := run.world.POIsOfKind(scene.POIUnique)
	cfg := siftConfig()
	tried := 0
	for i := 0; i < len(pois) && tried < sc.LocalizationQueries; i++ {
		poi := pois[(i*7)%len(pois)]
		cam := scene.CameraFacing(run.world, poi, 3.0, 0.2*float64(i%3-1), -0.05, sc.ImgW, sc.ImgH)
		fr, rerr := scene.Render(run.world, cam)
		if rerr != nil {
			return nil, axis, rerr
		}
		kps := sift.Detect(fr.Image, cfg)
		if len(kps) < 15 {
			continue
		}
		// Client-side oracle selection, as deployed.
		sel, serr := run.db.SelectUnique(kps, 200)
		if serr != nil {
			return nil, axis, serr
		}
		intr := pose.Intrinsics{W: cam.W, H: cam.H, FovX: cam.FovX, FovY: cam.FovY()}
		res, qerr := run.db.Locate(context.Background(), sel, intr)
		if qerr != nil {
			continue // no consensus: the paper's failure cases
		}
		tried++
		errs = append(errs, res.Position.Dist(cam.Pos))
		axis[0] = append(axis[0], math.Abs(res.Position.X-cam.Pos.X))
		axis[1] = append(axis[1], math.Abs(res.Position.Y-cam.Pos.Y))
		axis[2] = append(axis[2], math.Abs(res.Position.Z-cam.Pos.Z))
	}
	return errs, axis, nil
}

// Fig19Localization regenerates Figure 19: the CDF of 3D localization error
// per venue.
func Fig19Localization(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig19", Title: "3D localization error CDF by venue",
		XLabel: "error (m)", YLabel: "CDF",
	}
	runs, err := getVenueRuns(sc)
	if err != nil {
		return nil, err
	}
	for _, run := range runs {
		errs, _, err := localizationErrors(run, sc)
		if err != nil {
			return nil, err
		}
		if len(errs) == 0 {
			e.Notef("%s: no successful queries", run.world.Name)
			continue
		}
		e.AddCDF(seriesName(run.world.Name), errs)
		e.Notef("%s: median %.2f m over %d queries (paper overall median 2.5 m)",
			run.world.Name, medianOf(errs), len(errs))
	}
	return e, nil
}

// Fig20AxisError regenerates Figure 20: localization error split by axis
// and venue (boxplot quartiles; the paper finds vertical error worst since
// wardriving motion is horizontal).
func Fig20AxisError(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig20", Title: "Localization error by dimension",
		XLabel: "axis (0=X, 1=Y, 2=Z)", YLabel: "error (m)",
	}
	runs, err := getVenueRuns(sc)
	if err != nil {
		return nil, err
	}
	for _, run := range runs {
		_, axis, err := localizationErrors(run, sc)
		if err != nil {
			return nil, err
		}
		name := seriesName(run.world.Name)
		for a := 0; a < 3; a++ {
			if len(axis[a]) == 0 {
				continue
			}
			e.Points = append(e.Points, Point{Series: name, X: float64(a), Y: medianOf(axis[a])})
		}
		if len(axis[0]) > 0 {
			e.Notef("%s medians: X %.2f, Y %.2f, Z %.2f m",
				name, medianOf(axis[0]), medianOf(axis[1]), medianOf(axis[2]))
		}
	}
	e.Notes = append(e.Notes,
		"note: the paper's Y axis (vertical) is this world's Y; wardriving motion is in X/Z")
	return e, nil
}

func seriesName(venue string) string {
	switch venue {
	case "office":
		return "Office Space"
	case "cafeteria":
		return "Cafeteria"
	case "grocery":
		return "Grocery Store"
	}
	return venue
}

// specFromName builds the named venue from a spec list.
func specFromName(specs []scene.VenueSpec, name string) *scene.World {
	for _, s := range specs {
		if s.Name == name {
			return scene.Build(s)
		}
	}
	return scene.Build(specs[0])
}

// walkWorld wardrives a world with the given config.
func walkWorld(w *scene.World, cfg wardrive.Config) ([]wardrive.Snapshot, error) {
	return wardrive.Walk(w, cfg)
}

// meanMapError is the mean distance between estimated and true keypoint
// positions across all snapshots.
func meanMapError(snaps []wardrive.Snapshot) float64 {
	mean, _ := wardrive.PoseError(snaps)
	return mean
}
