package bench

import (
	"testing"
	"time"
)

// TestTrackWorkloadShape pins the walk construction: frames step by StepM
// along X and every frame localizes (the constructor solves frame 0).
func TestTrackWorkloadShape(t *testing.T) {
	cfg := ShortTrackWorkload()
	w, err := NewTrackWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Frames) != cfg.Frames {
		t.Fatalf("frames = %d, want %d", len(w.Frames), cfg.Frames)
	}
	for f := 1; f < len(w.Frames); f++ {
		d := w.Frames[f].TrueCam.Sub(w.Frames[f-1].TrueCam)
		if d.Y != 0 || d.Z != 0 || d.X < cfg.StepM-1e-9 || d.X > cfg.StepM+1e-9 {
			t.Fatalf("frame %d step = %+v, want {%g 0 0}", f, d, cfg.StepM)
		}
	}
	if _, err := w.RunWarm(0); err == nil {
		t.Fatal("RunWarm(0) accepted the reserved no-session id")
	}
}

// TestTrackBenchmarkWarmSaves is the acceptance regression for the
// tracking subsystem: on the walk workload the warm pass must consume at
// most half the cold pass's DE generations with median pose error no
// worse, the first frame (no prior yet) must be the only cold solve, and
// no prior may be rejected.
func TestTrackBenchmarkWarmSaves(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second solver workload")
	}
	cfg := ShortTrackWorkload()
	cfg.FrameDt = 50 * time.Millisecond
	res, err := RunTrackBenchmark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GenRatio > 0.5 {
		t.Errorf("warm/cold generation ratio = %.3f (warm %.1f, cold %.1f), want <= 0.5",
			res.GenRatio, res.Warm.MeanGenerations, res.Cold.MeanGenerations)
	}
	if res.Warm.MedianErrM > res.Cold.MedianErrM {
		t.Errorf("warm median error %.4f m worse than cold %.4f m",
			res.Warm.MedianErrM, res.Cold.MedianErrM)
	}
	if want := uint64(cfg.Frames - 1); res.WarmHits != want || res.WarmMisses != 1 {
		t.Errorf("warm pass hits/misses = %d/%d, want %d/1", res.WarmHits, res.WarmMisses, want)
	}
}
