package bench

import (
	"fmt"

	"visualprint/internal/match"
	"visualprint/internal/mathx"
)

// Fig06DimDominance regenerates Figure 6a: for each descriptor, the squared
// per-dimension differences to its database nearest neighbor are sorted
// descending; the boxplots over many descriptors show that a few dimensions
// carry most of the Euclidean distance. The series emitted are the quartile
// curves (Q1/median/Q3) against dimension rank.
func Fig06DimDominance(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig06a", Title: "Sorted squared per-dimension NN differences",
		XLabel: "dimension rank", YLabel: "squared difference",
	}
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, err
	}
	db := match.DB{Descs: c.DB.Descs, Labels: c.DB.Labels}
	bf := match.NewBruteForce(&db)
	bf.MaxDistSq = 0

	// Sample query descriptors across frames.
	var perRank [][]float64 // perRank[r] = samples of rank-r squared diff
	samples := 0
	maxSamples := 400
	for _, q := range c.Queries {
		for i := 0; i < len(q.Kps) && samples < maxSamples; i += 7 {
			desc := q.Kps[i].Desc[:]
			idx, _ := bf.Nearest(desc)
			if idx < 0 {
				continue
			}
			diffs, err := match.DimDifferences(desc, db.Descs[idx])
			if err != nil {
				return nil, err
			}
			if perRank == nil {
				perRank = make([][]float64, len(diffs))
			}
			for r, d := range diffs {
				perRank[r] = append(perRank[r], d)
			}
			samples++
		}
		if samples >= maxSamples {
			break
		}
	}
	if samples == 0 {
		return nil, fmt.Errorf("bench: no NN samples collected")
	}
	for r := range perRank {
		b := mathx.NewBoxplot(perRank[r])
		x := float64(r + 1)
		e.Points = append(e.Points,
			Point{Series: "Q1", X: x, Y: b.Q1},
			Point{Series: "median", X: x, Y: b.Median},
			Point{Series: "Q3", X: x, Y: b.Q3},
		)
	}
	// Shape check: energy concentration in the top dimensions.
	var top8, total float64
	for r := range perRank {
		m := mathx.Mean(perRank[r])
		if r < 8 {
			top8 += m
		}
		total += m
	}
	if total > 0 {
		e.Notef("top-8 of 128 dimensions carry %.0f%% of mean NN distance", 100*top8/total)
	}
	e.Notef("%d descriptor-NN pairs sampled", samples)
	return e, nil
}

// Fig06PCA regenerates Figure 6b: the normalized eigenvalue spectrum of the
// descriptor covariance matrix. Only a few principal components should
// account for the majority of covariance.
func Fig06PCA(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig06b", Title: "Normalized eigenvalues of descriptor covariance",
		XLabel: "principal component", YLabel: "normalized eigenvalue",
	}
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, err
	}
	// Subsample the database for the covariance estimate.
	var samples [][]float64
	stride := len(c.DB.Descs)/3000 + 1
	for i := 0; i < len(c.DB.Descs); i += stride {
		d := c.DB.Descs[i]
		f := make([]float64, len(d))
		for j, v := range d {
			f[j] = float64(v)
		}
		samples = append(samples, f)
	}
	vals, err := mathx.PCA(samples, 128)
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		e.Points = append(e.Points, Point{Series: "eigenvalue", X: float64(i), Y: v})
	}
	// How many components reach 90% of total variance?
	var total, run float64
	for _, v := range vals {
		total += v
	}
	k90 := len(vals)
	for i, v := range vals {
		run += v
		if run >= 0.9*total {
			k90 = i + 1
			break
		}
	}
	e.Notef("%d of 128 components capture 90%% of variance (%d samples)", k90, len(samples))
	return e, nil
}
