package bench

import (
	"visualprint/internal/core"
	"visualprint/internal/lsh"
	"visualprint/internal/match"
)

// matchSchemes builds the five Figure 13 schemes over the corpus database.
// uploadSmall/uploadLarge are the two VisualPrint budgets (the paper's 200
// and 500, scaled to the corpus keypoint density).
func matchSchemes(c *Corpus) (map[string]match.Matcher, *core.Oracle, error) {
	db := &match.DB{Descs: c.DB.Descs, Labels: c.DB.Labels}
	params := lsh.DefaultParams()
	params.Seed = 17

	oracle, err := core.New(core.TestParams())
	if err != nil {
		return nil, nil, err
	}
	for _, d := range db.Descs {
		if err := oracle.Insert(d); err != nil {
			return nil, nil, err
		}
	}

	// Scale the upload budgets to the average query keypoint count so the
	// selection pressure matches the paper's 200/3500 and 500/3500.
	avgKps := 0
	for _, q := range c.Queries {
		avgKps += len(q.Kps)
	}
	if len(c.Queries) > 0 {
		avgKps /= len(c.Queries)
	}
	// Floors keep the majority vote statistically stable: below ~24
	// uploaded keypoints per frame, per-scene results are dominated by
	// vote noise rather than selection quality.
	small := avgKps * 200 / 3500
	if small < 24 {
		small = 24
	}
	large := avgKps * 500 / 3500
	if large < small*5/2 {
		large = small * 5 / 2
	}

	bf := match.NewBruteForce(db)
	lm, err := match.NewLSH(db, params)
	if err != nil {
		return nil, nil, err
	}
	rnd, err := match.NewRandom(db, params, large, 23)
	if err != nil {
		return nil, nil, err
	}
	vpSmall, err := match.NewVisualPrint(db, params, oracle, small)
	if err != nil {
		return nil, nil, err
	}
	vpLarge, err := match.NewVisualPrint(db, params, oracle, large)
	if err != nil {
		return nil, nil, err
	}
	return map[string]match.Matcher{
		"Random-500":      rnd,
		"VisualPrint-200": vpSmall,
		"VisualPrint-500": vpLarge,
		"LSH":             lm,
		"BruteForce":      bf,
	}, oracle, nil
}

// fig13Order is the legend order of Figure 13.
var fig13Order = []string{"Random-500", "VisualPrint-200", "VisualPrint-500", "LSH", "BruteForce"}

// Fig13PrecisionRecall regenerates Figure 13: per-scene precision and
// recall CDFs for the five schemes. Two experiments are returned (a:
// precision, b: recall).
func Fig13PrecisionRecall(sc Scale) (*Experiment, *Experiment, error) {
	ep := &Experiment{
		ID: "fig13-precision", Title: "Per-scene precision CDF by scheme",
		XLabel: "precision", YLabel: "CDF",
	}
	er := &Experiment{
		ID: "fig13-recall", Title: "Per-scene recall CDF by scheme",
		XLabel: "recall", YLabel: "CDF",
	}
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, nil, err
	}
	schemes, _, err := matchSchemes(c)
	if err != nil {
		return nil, nil, err
	}
	for _, name := range fig13Order {
		m := schemes[name]
		var preds []match.Prediction
		for _, q := range c.Queries {
			pred, _, err := m.MatchFrame(q.Descriptors())
			if err != nil {
				return nil, nil, err
			}
			preds = append(preds, match.Prediction{True: q.SceneID, Pred: pred})
		}
		prs := match.PrecisionRecall(preds)
		// Per-scene metrics over true scenes only (distractor labels get
		// folded into precision via false positives already).
		var precisions, recalls []float64
		for k, pr := range prs {
			if k >= sc.Scenes {
				continue
			}
			precisions = append(precisions, pr.Precision)
			recalls = append(recalls, pr.Recall)
		}
		ep.AddCDF(name, precisions)
		er.AddCDF(name, recalls)
	}
	ep.Notef("%d scenes, %d distractors, %d queries", sc.Scenes, sc.Distractors, len(c.Queries))
	return ep, er, nil
}

// Fig15Memory regenerates Figure 15: client disk and memory footprint per
// scheme. Disk is the gzip-compressed serialized structure; memory the
// resident structure. Footprints are measured on the corpus database and
// also projected to the paper's 2.5M-descriptor scale for comparison.
func Fig15Memory(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig15", Title: "Client disk/memory footprint by scheme",
		XLabel: "scheme (0=Random,1=VisualPrint,2=LSH,3=BruteForce)", YLabel: "bytes",
	}
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, err
	}
	schemes, oracle, err := matchSchemes(c)
	if err != nil {
		return nil, err
	}
	names := []string{"Random-500", "VisualPrint-500", "LSH", "BruteForce"}
	for i, name := range names {
		m := schemes[name]
		mem := m.MemoryBytes()
		e.Points = append(e.Points, Point{Series: "memory", X: float64(i), Y: float64(mem)})
		// Disk: approximate as gzip of the resident structure; for the
		// oracle we have the exact serialized blob.
		disk := mem / 3 // generic structures compress ~3x
		if name == "Random-500" {
			disk = 0
		}
		if name == "VisualPrint-500" {
			blob, err := oracleBlobSize(oracle)
			if err != nil {
				return nil, err
			}
			disk = blob
		}
		e.Points = append(e.Points, Point{Series: "disk", X: float64(i), Y: float64(disk)})
		e.Notef("%s: %.1f MB RAM, %.1f MB disk", name, float64(mem)/1e6, float64(disk)/1e6)
	}
	// Projection to the paper's 2.5M-descriptor database.
	n := float64(len(c.DB.Descs))
	paperN := 2.5e6
	lshMem := float64(schemes["LSH"].MemoryBytes()) * paperN / n
	bfMem := float64(schemes["BruteForce"].MemoryBytes()) * paperN / n
	// The oracle's DefaultParams are already sized for 2.5M.
	o, err := core.New(core.DefaultParams())
	if err != nil {
		return nil, err
	}
	e.Notef("projected to 2.5M descriptors: VisualPrint %.0f MB RAM (paper 162), LSH %.1f GB (paper 9.4), BruteForce %.0f MB (raw)",
		float64(o.MemoryBytes())/1e6, lshMem/1e9, bfMem/1e6)
	return e, nil
}

func oracleBlobSize(o *core.Oracle) (int64, error) {
	blob, err := oracleGzip(o)
	if err != nil {
		return 0, err
	}
	return int64(len(blob)), nil
}
