package bench

import (
	"testing"
)

// microScale keeps bench-package unit tests fast: one tiny venue pass.
func microScale() Scale {
	return Scale{
		Name: "micro", Scenes: 6, Distractors: 10, QueriesPerScene: 1,
		ImgW: 140, ImgH: 105, VenueShrink: 0.2, LocalizationQueries: 3,
	}
}

func TestExperimentSeriesHelpers(t *testing.T) {
	e := &Experiment{ID: "x", YLabel: "CDF"}
	e.AddSeries("a", []float64{1, 2}, []float64{0.5, 1})
	e.AddCDF("b", []float64{3, 1, 2})
	names := e.Series()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Series = %v", names)
	}
	pts := e.SeriesPoints("b")
	if len(pts) != 3 || pts[0].X != 1 || pts[2].X != 3 {
		t.Errorf("SeriesPoints(b) = %v", pts)
	}
	if m := e.MedianOf("b"); m != 2 {
		t.Errorf("MedianOf = %v", m)
	}
	e.Notef("n=%d", 3)
	if len(e.Notes) != 1 || e.Notes[0] != "n=3" {
		t.Errorf("Notes = %v", e.Notes)
	}
}

func TestMedianOfEmptySeries(t *testing.T) {
	e := &Experiment{}
	if e.MedianOf("missing") != 0 {
		t.Error("missing series should give 0")
	}
}

func TestVenueSpecsShrink(t *testing.T) {
	small := venueSpecs(Scale{VenueShrink: 0.2})
	full := venueSpecs(Scale{VenueShrink: 1})
	if len(small) != 3 || len(full) != 3 {
		t.Fatalf("want 3 venues")
	}
	for i := range small {
		if small[i].Width >= full[i].Width {
			t.Errorf("venue %d not shrunk: %v vs %v", i, small[i].Width, full[i].Width)
		}
		if small[i].Width < 12 || small[i].Depth < 8 {
			t.Errorf("venue %d below floor: %+v", i, small[i])
		}
	}
	// Full scale keeps the paper's dimensions.
	if full[0].Width != 50 || full[2].Width != 80 {
		t.Errorf("full venues resized: %v, %v", full[0].Width, full[2].Width)
	}
}

func TestGetCorpusCachesAndLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build is slow")
	}
	sc := microScale()
	c1, err := GetCorpus(sc)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := GetCorpus(sc)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("corpus not cached")
	}
	if len(c1.DB.Descs) != len(c1.DB.Labels) || len(c1.DB.Descs) == 0 {
		t.Fatalf("db malformed: %d descs, %d labels", len(c1.DB.Descs), len(c1.DB.Labels))
	}
	// Scene labels < Scenes; distractor labels >= Scenes.
	seenScene, seenDistractor := false, false
	for _, l := range c1.DB.Labels {
		if l < sc.Scenes {
			seenScene = true
		} else {
			seenDistractor = true
		}
	}
	if !seenScene || !seenDistractor {
		t.Error("db missing scene or distractor descriptors")
	}
	if len(c1.Queries) == 0 {
		t.Fatal("no queries")
	}
	for _, q := range c1.Queries {
		if q.SceneID < 0 || q.SceneID >= sc.Scenes {
			t.Fatalf("query scene id %d out of range", q.SceneID)
		}
	}
}

func TestFig02Shape(t *testing.T) {
	e, err := Fig02EncodingFPS(microScale())
	if err != nil {
		t.Fatal(err)
	}
	// At every uplink: H264 FPS > JPEG > PNG > RAW.
	get := func(series string, x float64) float64 {
		for _, p := range e.SeriesPoints(series) {
			if p.X == x {
				return p.Y
			}
		}
		t.Fatalf("missing point %s@%v", series, x)
		return 0
	}
	for _, x := range []float64{1, 8, 32} {
		if !(get("H264", x) > get("JPEG", x) && get("JPEG", x) > get("PNG", x) && get("PNG", x) > get("RAW", x)) {
			t.Errorf("encoding FPS ordering violated at %v Mbps", x)
		}
	}
	// H264 anchor: ~10 FPS at 2 Mbps.
	if fps := get("H264", 2); fps < 7 || fps > 13 {
		t.Errorf("H264 at 2 Mbps = %.1f FPS, want ~10", fps)
	}
}

func TestFig18Shape(t *testing.T) {
	e, err := Fig18Energy(microScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Series()) != 5 {
		t.Errorf("want 5 traces, got %v", e.Series())
	}
	// Full pipeline must be the most expensive trace.
	maxSeries, maxVal := "", 0.0
	for _, s := range e.Series() {
		pts := e.SeriesPoints(s)
		if len(pts) == 0 {
			continue
		}
		if pts[0].Y > maxVal {
			maxVal, maxSeries = pts[0].Y, s
		}
	}
	if maxSeries != "VisualPrint (computation+upload)" {
		t.Errorf("most expensive trace = %q", maxSeries)
	}
}

func TestAblationMultiprobeImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	e, err := AblationMultiprobe()
	if err != nil {
		t.Fatal(err)
	}
	pts := e.SeriesPoints("near-duplicate recall")
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	if pts[1].Y < pts[0].Y {
		t.Errorf("multiprobe reduced recall: %v -> %v", pts[0].Y, pts[1].Y)
	}
}

func TestAblationVerificationReducesFP(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	e, err := AblationVerification()
	if err != nil {
		t.Fatal(err)
	}
	pts := e.SeriesPoints("false-positive rate")
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	if pts[1].Y > pts[0].Y {
		t.Errorf("verification raised FP rate: %v -> %v", pts[0].Y, pts[1].Y)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := formatKB(51200); got != "50.0 KB" {
		t.Errorf("formatKB = %q", got)
	}
	if got := formatMB(10_500_000); got != "10.5 MB" {
		t.Errorf("formatMB = %q", got)
	}
	if got := formatM(2.456); got != "2.46 m" {
		t.Errorf("formatM = %q", got)
	}
}

func TestFig14UploadTraceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build is slow")
	}
	e, err := Fig14UploadTrace(microScale())
	if err != nil {
		t.Fatal(err)
	}
	vp := e.SeriesPoints("VisualPrint")
	fu := e.SeriesPoints("Frame Upload")
	if len(vp) == 0 || len(fu) == 0 {
		t.Fatal("missing series")
	}
	// Cumulative uploads are monotone, and frames outweigh fingerprints.
	for i := 1; i < len(vp); i++ {
		if vp[i].Y < vp[i-1].Y {
			t.Fatal("VisualPrint trace not monotone")
		}
	}
	if fu[len(fu)-1].Y < 5*vp[len(vp)-1].Y {
		t.Errorf("frame total %.2f MB not far above fingerprint total %.2f MB",
			fu[len(fu)-1].Y, vp[len(vp)-1].Y)
	}
}

func TestExtraLatencyTailShape(t *testing.T) {
	e, err := ExtraLatencyTail(microScale())
	if err != nil {
		t.Fatal(err)
	}
	fp := e.MedianOf("VisualPrint (200 kp)")
	fu := e.MedianOf("Frame Upload (PNG)")
	if fu < 3*fp {
		t.Errorf("frame median latency %.3f s not far above fingerprint %.3f s", fu, fp)
	}
}

func TestFig05FeatureRatioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build is slow")
	}
	e, err := Fig05FeatureRatio(microScale())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's premise: features comparable to (>= half of) the image.
	if m := e.MedianOf("Uncompressed"); m < 0.5 {
		t.Errorf("feature/image ratio median %.2f unexpectedly small", m)
	}
	// GZIP shrinks but does not erase the cost.
	if mz := e.MedianOf("Compressed (GZIP)"); mz >= e.MedianOf("Uncompressed") {
		t.Errorf("gzip did not reduce the ratio (%.2f)", mz)
	}
}
