package bench

// Continuous-localization (walk trajectory) benchmark: a camera walks a
// straight path in front of the synthetic venue, issuing one localization
// query per frame. The same frame sequence is solved twice — cold (every
// frame a fresh, session-less Locate) and warm (all frames share one
// session, so the server seeds each solve from the tracked trajectory) —
// and the result compares solver work (DE generations) and pose accuracy
// between the two. Shared by the bench tests and `vpbench -exp track`,
// which emits the machine-readable BENCH_track.json (see DESIGN.md
// "Continuous localization").

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/server"
	"visualprint/internal/sift"
)

// TrackWorkloadConfig sizes the walk-trajectory workload.
type TrackWorkloadConfig struct {
	// ClusterMappings / ScatterMappings / QueryKeypoints size the corpus
	// and fingerprint exactly as in LocateWorkloadConfig.
	ClusterMappings int
	ScatterMappings int
	QueryKeypoints  int
	// MaxIterations bounds DE generations per solve (Deadline=0: the
	// workload is compute-bound and deterministic given the prior).
	MaxIterations int
	// Frames is the walk length in queries.
	Frames int
	// StepM is the camera's per-frame displacement in meters. The default
	// 0.08 m is a 0.8 m/s walk at 10 fps.
	StepM float64
	// FrameDt is the wall-clock interval between frames. The tracker's
	// motion model lives in real time (fix timestamps are server-side
	// time.Now), so the walk must be paced like the capture it simulates:
	// issuing frames back-to-back would make a 0.08 m step look like an
	// 8 m/s sprint, trip the MaxSpeed clamp, and measure a workload no
	// real client produces. Default 100 ms (10 fps).
	FrameDt time.Duration
	// Seed fixes the synthetic corpus.
	Seed int64
}

// DefaultTrackWorkload is the standard walk: 48 frames at walking pace
// against the standard locate corpus, full solver budget. The walk is
// long enough that the session's unavoidable expensive start — a cold
// first frame, a wide-prior second frame (no velocity estimate yet) —
// amortizes the way it does in a real AR session.
func DefaultTrackWorkload() TrackWorkloadConfig {
	return TrackWorkloadConfig{
		ClusterMappings: 160,
		ScatterMappings: 4000,
		QueryKeypoints:  200,
		MaxIterations:   pose.DefaultOptions().MaxIterations,
		Frames:          48,
		StepM:           0.08,
		FrameDt:         100 * time.Millisecond,
		Seed:            7,
	}
}

// ShortTrackWorkload is the CI-sized walk (smaller corpus, shorter walk)
// used by `make bench-track-short` and the regression test. The solver
// budget stays at the default: capping MaxIterations would clip the cold
// baseline and flatter the warm/cold ratio.
func ShortTrackWorkload() TrackWorkloadConfig {
	c := DefaultTrackWorkload()
	c.ScatterMappings = 500
	c.Frames = 20
	return c
}

// TrackFrame is one step of the walk: the query fingerprint captured at
// TrueCam.
type TrackFrame struct {
	KPs     []sift.Keypoint
	TrueCam mathx.Vec3
}

// TrackWorkload is a prepared walk-trajectory benchmark: the synthetic
// venue behind a router (sessions are a router subsystem) plus the
// per-frame queries.
type TrackWorkload struct {
	Router *server.Router
	Intr   pose.Intrinsics
	Frames []TrackFrame
	Cfg    TrackWorkloadConfig
}

// NewTrackWorkload builds the venue and the walk. The corpus is the
// LocateWorkload scene — a wall-like slab mid-venue plus scattered
// decoys — and each frame's cluster keypoints are true pinhole
// projections from that frame's camera position, so every query is
// geometrically consistent and the whole walk stays in front of the
// scene with positive depth.
func NewTrackWorkload(cfg TrackWorkloadConfig) (*TrackWorkload, error) {
	if cfg.Frames < 2 {
		return nil, fmt.Errorf("bench: track workload needs >= 2 frames, got %d", cfg.Frames)
	}
	if cfg.QueryKeypoints > cfg.ClusterMappings+cfg.ScatterMappings {
		return nil, fmt.Errorf("bench: query wants %d keypoints but only %d mappings configured",
			cfg.QueryKeypoints, cfg.ClusterMappings+cfg.ScatterMappings)
	}
	dbCfg := server.DefaultDatabaseConfig()
	dbCfg.Pose.Deadline = 0
	dbCfg.Pose.MaxIterations = cfg.MaxIterations
	db, err := server.NewDatabase(dbCfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	center := mathx.Vec3{X: 4, Y: 1.5, Z: 7.5}
	ms := make([]server.Mapping, 0, cfg.ClusterMappings+cfg.ScatterMappings)
	for i := 0; i < cfg.ClusterMappings; i++ {
		var m server.Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: center.X + rng.Float64()*5.6 - 2.8,
			Y: center.Y + rng.Float64()*1.4 - 0.7,
			Z: center.Z + rng.Float64()*0.8 - 0.4,
		}
		ms = append(ms, m)
	}
	for i := 0; i < cfg.ScatterMappings; i++ {
		var m server.Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: rng.Float64() * 12,
			Y: rng.Float64() * 3,
			Z: rng.Float64() * 9,
		}
		ms = append(ms, m)
	}
	if err := db.Ingest(context.Background(), ms); err != nil {
		return nil, err
	}
	router := server.NewRouter(db, dbCfg)
	router.EnableTrackingObs()

	intr := pose.Intrinsics{W: 200, H: 150, FovX: 1.1, FovY: 0.85}
	cx, cy := float64(intr.W)/2, float64(intr.H)/2
	focal := cx / math.Tan(intr.FovX/2)
	// The walk: parallel to the scene slab, centered on it, ~5.5 m back.
	span := cfg.StepM * float64(cfg.Frames-1)
	start := mathx.Vec3{X: 4 - span/2, Y: 1.4, Z: 2}
	frames := make([]TrackFrame, cfg.Frames)
	for f := range frames {
		cam := mathx.Vec3{X: start.X + cfg.StepM*float64(f), Y: start.Y, Z: start.Z}
		kps := make([]sift.Keypoint, cfg.QueryKeypoints)
		for i := range kps {
			kps[i].Desc = ms[i].Desc
			if i < cfg.ClusterMappings {
				d := ms[i].Pos.Sub(cam)
				kps[i].X = cx + focal*d.X/d.Z
				kps[i].Y = cy - focal*d.Y/d.Z
			} else {
				kps[i].X = float64(10 + (i%16)*11)
				kps[i].Y = float64(8 + (i/16)*10)
			}
		}
		frames[f] = TrackFrame{KPs: kps, TrueCam: cam}
	}
	w := &TrackWorkload{Router: router, Intr: intr, Frames: frames, Cfg: cfg}
	// Fail construction, not measurement, if the walk cannot localize.
	if _, err := router.Locate(context.Background(), "", frames[0].KPs, intr); err != nil {
		return nil, fmt.Errorf("bench: track workload frame 0 does not localize: %w", err)
	}
	return w, nil
}

// FrameStats is the per-frame outcome of one pass over the walk.
type FrameStats struct {
	Generations int     `json:"generations"`
	ErrM        float64 `json:"err_m"`
	SolveNs     int64   `json:"solve_ns"`
}

// RunCold solves every frame session-less (sid 0 — bit-identical to the
// pre-session Locate path).
func (w *TrackWorkload) RunCold() ([]FrameStats, error) {
	return w.run(0)
}

// RunWarm solves every frame inside one session: the first frame seeds
// the tracker, later frames warm-start from the motion prior.
func (w *TrackWorkload) RunWarm(sid uint64) ([]FrameStats, error) {
	if sid == 0 {
		return nil, fmt.Errorf("bench: warm pass needs a non-zero session id")
	}
	defer w.Router.EndSession("", sid)
	return w.run(sid)
}

func (w *TrackWorkload) run(sid uint64) ([]FrameStats, error) {
	out := make([]FrameStats, len(w.Frames))
	ctx := context.Background()
	// Pace the walk only when a session is tracking it: the cold pass has
	// no motion model reading the clock, so sleeping through it would only
	// slow the benchmark down.
	pace := sid != 0 && w.Cfg.FrameDt > 0
	start := time.Now()
	for f, fr := range w.Frames {
		if pace && f > 0 {
			time.Sleep(time.Until(start.Add(time.Duration(f) * w.Cfg.FrameDt)))
		}
		t0 := time.Now()
		res, err := w.Router.LocateSession(ctx, "", sid, fr.KPs, w.Intr)
		if err != nil {
			return nil, fmt.Errorf("bench: frame %d: %w", f, err)
		}
		out[f] = FrameStats{
			Generations: res.Generations,
			ErrM:        res.Position.Dist(fr.TrueCam),
			SolveNs:     time.Since(t0).Nanoseconds(),
		}
	}
	return out, nil
}

// TrackBenchResult is the machine-readable output of RunTrackBenchmark —
// the schema of BENCH_track.json (written by `make bench-track`).
type TrackBenchResult struct {
	Workload TrackWorkloadConfig `json:"workload"`

	// Cold and Warm summarize one pass each over the same walk.
	Cold TrackPassSummary `json:"cold"`
	Warm TrackPassSummary `json:"warm"`

	// WarmHits / WarmMisses are the server's own accounting for the warm
	// pass: frames answered by an accepted warm solve vs. solved cold
	// (first frame, or prior rejected by the residual gate).
	WarmHits   uint64 `json:"warm_hits"`
	WarmMisses uint64 `json:"warm_misses"`
	// WarmHitRatio is WarmHits over the warm pass's frames.
	WarmHitRatio float64 `json:"warm_hit_ratio"`
	// GenRatio is Warm.MeanGenerations / Cold.MeanGenerations — the
	// headline solver-work saving (the acceptance bar is <= 0.5).
	GenRatio float64 `json:"gen_ratio"`

	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Recorded   string `json:"recorded"`
	Host       string `json:"host"`
}

// TrackPassSummary aggregates one pass over the walk. NsPerFrame is
// solve time only — the warm pass's pacing sleeps are off the clock.
type TrackPassSummary struct {
	Frames          int     `json:"frames"`
	NsPerFrame      float64 `json:"ns_per_frame"`
	MeanGenerations float64 `json:"mean_generations"`
	MedianErrM      float64 `json:"median_err_m"`
	MaxErrM         float64 `json:"max_err_m"`
}

func summarize(stats []FrameStats) TrackPassSummary {
	s := TrackPassSummary{Frames: len(stats)}
	if len(stats) == 0 {
		return s
	}
	errs := make([]float64, len(stats))
	gens := 0
	var solveNs int64
	for i, fs := range stats {
		errs[i] = fs.ErrM
		gens += fs.Generations
		solveNs += fs.SolveNs
		if fs.ErrM > s.MaxErrM {
			s.MaxErrM = fs.ErrM
		}
	}
	sort.Float64s(errs)
	s.MedianErrM = errs[len(errs)/2]
	s.MeanGenerations = float64(gens) / float64(len(stats))
	s.NsPerFrame = float64(solveNs) / float64(len(stats))
	return s
}

// RunTrackBenchmark runs the cold and warm passes over one walk workload
// and packages the comparison. The two passes share the venue and the
// frame sequence; only the session differs.
func RunTrackBenchmark(cfg TrackWorkloadConfig) (*TrackBenchResult, error) {
	w, err := NewTrackWorkload(cfg)
	if err != nil {
		return nil, err
	}
	// Warm the pools and caches off the clock (frame 0 ran in the
	// constructor already; run a full cold pass).
	if _, err := w.RunCold(); err != nil {
		return nil, err
	}

	cold, err := w.RunCold()
	if err != nil {
		return nil, err
	}

	before := w.Router.TrackingStats()
	warm, err := w.RunWarm(1)
	if err != nil {
		return nil, err
	}
	after := w.Router.TrackingStats()

	res := &TrackBenchResult{
		Workload:   cfg,
		Cold:       summarize(cold),
		Warm:       summarize(warm),
		WarmHits:   after.Warm - before.Warm,
		WarmMisses: after.Cold - before.Cold,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Recorded:   time.Now().UTC().Format("2006-01-02"),
		Host: fmt.Sprintf("%s/%s, GOMAXPROCS=%d, NumCPU=%d",
			runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), runtime.NumCPU()),
	}
	if res.Warm.Frames > 0 {
		res.WarmHitRatio = float64(res.WarmHits) / float64(res.Warm.Frames)
	}
	if res.Cold.MeanGenerations > 0 {
		res.GenRatio = res.Warm.MeanGenerations / res.Cold.MeanGenerations
	}
	return res, nil
}
