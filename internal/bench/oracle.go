package bench

// Oracle distribution benchmark: the downlink cost of keeping a device
// fleet's uniqueness oracle current. A live server ingests wardrive update
// batches while two clients track it over TCP — one through the versioned
// OracleSync handle (delta chains within the server's epoch window), one
// re-downloading the full blob after every update, which is what every
// client did before versioned epochs. The measurement is
// bytes-per-client-per-update for each update size, and the headline is
// the reduction factor for small batches (a handful of mappings from an
// incremental wardrive pass), where re-sending megabytes of counting-Bloom
// state to ship a few hundred changed cells is most wasteful. Shared by
// `vpbench -exp oracle`, which emits BENCH_oracle.json and enforces the
// small-batch reduction floor behind `make bench-check`.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/server"
)

// OracleWorkloadConfig sizes the oracle distribution benchmark.
type OracleWorkloadConfig struct {
	// BaseMappings is the corpus ingested before measurement starts — it
	// sizes the oracle's tables (and so the full-blob cost) realistically.
	BaseMappings int
	// BatchSizes are the wardrive update sizes (mappings per ingest batch)
	// to sweep, smallest first.
	BatchSizes []int
	// UpdatesPerSize is how many consecutive update batches of each size
	// are measured (each one is a served epoch).
	UpdatesPerSize int
	// Seed fixes the synthetic corpus.
	Seed int64
}

// DefaultOracleWorkload is the standard measurement: a ~4k-mapping venue
// taking updates from single-mapping touch-ups to 100-mapping re-drives.
func DefaultOracleWorkload() OracleWorkloadConfig {
	return OracleWorkloadConfig{
		BaseMappings:   4000,
		BatchSizes:     []int{1, 5, 20, 100},
		UpdatesPerSize: 8,
		Seed:           7,
	}
}

// ShortOracleWorkload is the CI-sized configuration behind
// `make bench-check`: same schema and code paths, smaller corpus.
func ShortOracleWorkload() OracleWorkloadConfig {
	return OracleWorkloadConfig{
		BaseMappings:   800,
		BatchSizes:     []int{1, 5, 20},
		UpdatesPerSize: 4,
		Seed:           7,
	}
}

// OracleUpdatePoint is the measured downlink cost at one update size.
type OracleUpdatePoint struct {
	// BatchMappings is the wardrive update size (mappings per batch).
	BatchMappings int `json:"batch_mappings"`
	// Updates is how many batches of this size were measured.
	Updates int `json:"updates"`
	// DeltaBytesPerUpdate is the versioned client's mean response payload
	// bytes per update (delta chains, or full blobs past the window).
	DeltaBytesPerUpdate float64 `json:"delta_bytes_per_update"`
	// FullBytesPerUpdate is the pre-epoch client's cost: one full blob
	// re-download per update.
	FullBytesPerUpdate float64 `json:"full_bytes_per_update"`
	// ReductionX is FullBytesPerUpdate / DeltaBytesPerUpdate — the
	// downlink saving factor of versioned sync at this update size.
	ReductionX float64 `json:"reduction_x"`
}

// OracleBenchResult is the machine-readable output of RunOracleBenchmark —
// the schema of BENCH_oracle.json (written by `make bench`).
type OracleBenchResult struct {
	Workload OracleWorkloadConfig `json:"workload"`
	// FullBlobBytes is the gzip full-oracle wire size after the base
	// corpus — what every pre-epoch client paid per update regardless of
	// update size.
	FullBlobBytes int64               `json:"full_blob_bytes"`
	Points        []OracleUpdatePoint `json:"points"`
	Recorded      string              `json:"recorded"`
	Host          string              `json:"host"`
}

// RunOracleBenchmark measures bytes-per-client-per-update across the
// configured update sizes over a live TCP loopback server.
func RunOracleBenchmark(cfg OracleWorkloadConfig) (*OracleBenchResult, error) {
	if cfg.UpdatesPerSize <= 0 || len(cfg.BatchSizes) == 0 {
		return nil, fmt.Errorf("bench: oracle workload needs batch sizes and updates per size")
	}
	dbCfg := server.DefaultDatabaseConfig()
	db, err := server.NewDatabase(dbCfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.Serve(ln, db)
	srv.Log = nil
	defer srv.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	batch := func(n int) []server.Mapping {
		ms := make([]server.Mapping, n)
		for i := range ms {
			for j := range ms[i].Desc {
				ms[i].Desc[j] = byte(rng.Intn(256))
			}
			ms[i].Pos = mathx.Vec3{
				X: rng.Float64() * 12,
				Y: rng.Float64() * 3,
				Z: rng.Float64() * 9,
			}
		}
		return ms
	}

	ctx := context.Background()
	writer, err := server.Dial(srv.Addr().String(), server.WithLogger(nil))
	if err != nil {
		return nil, err
	}
	defer writer.Close()
	versioned, err := server.Dial(srv.Addr().String(), server.WithLogger(nil))
	if err != nil {
		return nil, err
	}
	defer versioned.Close()
	legacy, err := server.Dial(srv.Addr().String(), server.WithLogger(nil))
	if err != nil {
		return nil, err
	}
	defer legacy.Close()

	if _, err := writer.Ingest(ctx, batch(cfg.BaseMappings)); err != nil {
		return nil, err
	}
	h := versioned.OracleSync()
	if _, err := h.Sync(ctx); err != nil {
		return nil, err
	}
	_, fullBlob, err := legacy.FetchOracle(ctx)
	if err != nil {
		return nil, err
	}

	res := &OracleBenchResult{
		Workload:      cfg,
		FullBlobBytes: fullBlob,
		Recorded:      time.Now().UTC().Format("2006-01-02"),
		Host: fmt.Sprintf("%s/%s, GOMAXPROCS=%d, NumCPU=%d",
			runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), runtime.NumCPU()),
	}
	for _, size := range cfg.BatchSizes {
		var deltaBytes, fullBytes int64
		for u := 0; u < cfg.UpdatesPerSize; u++ {
			if _, err := writer.Ingest(ctx, batch(size)); err != nil {
				return nil, err
			}
			before := h.TransferBytes()
			if _, err := h.Sync(ctx); err != nil {
				return nil, err
			}
			deltaBytes += h.TransferBytes() - before
			// The pre-epoch client has no change detection worth the name
			// (insert-count equality is unsound across histories), so after
			// every update it re-downloads the blob.
			_, n, err := legacy.FetchOracle(ctx)
			if err != nil {
				return nil, err
			}
			fullBytes += n
		}
		p := OracleUpdatePoint{
			BatchMappings:       size,
			Updates:             cfg.UpdatesPerSize,
			DeltaBytesPerUpdate: float64(deltaBytes) / float64(cfg.UpdatesPerSize),
			FullBytesPerUpdate:  float64(fullBytes) / float64(cfg.UpdatesPerSize),
		}
		if p.DeltaBytesPerUpdate > 0 {
			p.ReductionX = p.FullBytesPerUpdate / p.DeltaBytesPerUpdate
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
