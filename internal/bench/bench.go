// Package bench regenerates every figure of the paper's evaluation section
// from the simulated substrate. Each FigNN function returns an Experiment —
// named data series plus notes — that cmd/vpbench prints as aligned rows or
// CSV and that bench_test.go wraps in testing.B benchmarks.
//
// Two scales are provided: Quick (scaled-down venues and corpora, minutes
// of CPU) and Full (the paper's 100-scene / 400-distractor corpus and
// full-size venues; substantially slower). The *shape* of every result —
// which scheme wins, by what factor, where curves cross — is the
// reproduction target; absolute magnitudes differ from the paper's
// hardware, as recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"visualprint/internal/mathx"
	"visualprint/internal/scene"
	"visualprint/internal/sift"
)

// Scale selects experiment sizing.
type Scale struct {
	Name            string
	Scenes          int // database scene images
	Distractors     int // database distractor images
	QueriesPerScene int
	ImgW, ImgH      int
	// Venue shrink factor for the localization experiments (1 = paper
	// dimensions).
	VenueShrink float64
	// LocalizationQueries per venue (Figures 19/20).
	LocalizationQueries int
}

// Quick is the default scale: minutes of CPU on a laptop.
func Quick() Scale {
	return Scale{
		Name: "quick", Scenes: 20, Distractors: 60, QueriesPerScene: 3,
		ImgW: 200, ImgH: 150, VenueShrink: 0.35, LocalizationQueries: 10,
	}
}

// Full approximates the paper's corpus sizes (much slower).
func Full() Scale {
	return Scale{
		Name: "full", Scenes: 100, Distractors: 400, QueriesPerScene: 5,
		ImgW: 320, ImgH: 240, VenueShrink: 1, LocalizationQueries: 30,
	}
}

// Point is one (x, y) sample of a named series.
type Point struct {
	Series string
	X, Y   float64
}

// Experiment is a regenerated figure: its data series plus free-form notes
// (calibration constants, counts, caveats).
type Experiment struct {
	ID    string // e.g. "fig13-precision"
	Title string
	// XLabel/YLabel name the axes as in the paper.
	XLabel, YLabel string
	Points         []Point
	Notes          []string
}

// AddSeries appends an entire series from parallel x/y slices.
func (e *Experiment) AddSeries(name string, xs, ys []float64) {
	for i := range xs {
		e.Points = append(e.Points, Point{Series: name, X: xs[i], Y: ys[i]})
	}
}

// AddCDF appends a series containing the empirical CDF of values.
func (e *Experiment) AddCDF(name string, values []float64) {
	for _, p := range mathx.CDF(values) {
		e.Points = append(e.Points, Point{Series: name, X: p.Value, Y: p.Fraction})
	}
}

// Notef appends a formatted note.
func (e *Experiment) Notef(format string, args ...any) {
	e.Notes = append(e.Notes, fmt.Sprintf(format, args...))
}

// Series lists the distinct series names in insertion order.
func (e *Experiment) Series() []string {
	var names []string
	seen := map[string]bool{}
	for _, p := range e.Points {
		if !seen[p.Series] {
			seen[p.Series] = true
			names = append(names, p.Series)
		}
	}
	return names
}

// SeriesPoints returns the points of one series, x-sorted.
func (e *Experiment) SeriesPoints(name string) []Point {
	var pts []Point
	for _, p := range e.Points {
		if p.Series == name {
			pts = append(pts, p)
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

// MedianOf returns the x-value at which a CDF series crosses 0.5.
func (e *Experiment) MedianOf(series string) float64 {
	pts := e.SeriesPoints(series)
	for _, p := range pts {
		if p.Y >= 0.5 {
			return p.X
		}
	}
	if len(pts) > 0 {
		return pts[len(pts)-1].X
	}
	return 0
}

// venueSpecs returns the three evaluation venues, shrunk by the scale
// factor (Quick keeps render cost tractable; Full uses paper dimensions).
func venueSpecs(sc Scale) []scene.VenueSpec {
	shrink := sc.VenueShrink
	if shrink <= 0 {
		shrink = 1
	}
	specs := []scene.VenueSpec{
		scene.OfficeSpec(1),
		scene.CafeteriaSpec(2),
		scene.GrocerySpec(3),
	}
	for i := range specs {
		specs[i].Width *= shrink
		specs[i].Depth *= shrink
		if specs[i].Width < 12 {
			specs[i].Width = 12
		}
		if specs[i].Depth < 8 {
			specs[i].Depth = 8
		}
		if shrink < 0.6 {
			specs[i].Aisles = specs[i].Aisles / 2
		}
		// Clutter density should track floor area.
		specs[i].Clutter = int(float64(specs[i].Clutter)*shrink*shrink) + 2
	}
	return specs
}

// siftConfig is the extraction configuration shared by all experiments.
func siftConfig() sift.Config {
	cfg := sift.DefaultConfig()
	cfg.ContrastThreshold = 0.02
	return cfg
}

// QueryFrame is one query image's extracted keypoints with its true scene.
type QueryFrame struct {
	SceneID int
	Kps     []sift.Keypoint
	Cam     scene.Camera
}

// Corpus is the shared matching workload: a labeled descriptor database
// built from scene and distractor views across the three venues, plus
// multi-angle query frames for each scene.
type Corpus struct {
	Scale   Scale
	Worlds  []*scene.World
	DB      corpusDB
	Queries []QueryFrame
	// SceneCams records the database view of each scene (by label).
	SceneCams map[int]scene.Camera
}

// corpusDB mirrors match.DB without importing it (bench feeds several
// consumers); descriptors labeled by image id: scene images get their scene
// id, distractor images get ids >= Scale.Scenes.
type corpusDB struct {
	Descs  [][]byte
	Labels []int
}

func (db *corpusDB) add(desc []byte, label int) {
	db.Descs = append(db.Descs, desc)
	db.Labels = append(db.Labels, label)
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[string]*Corpus{}
)

// GetCorpus builds (or returns the cached) corpus for a scale. Building
// renders and SIFT-processes every database and query view, so it is the
// dominant setup cost; the cache amortizes it across experiments in one
// process.
func GetCorpus(sc Scale) (*Corpus, error) {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if c, ok := corpusCache[sc.Name]; ok {
		return c, nil
	}
	c, err := buildCorpus(sc)
	if err != nil {
		return nil, err
	}
	corpusCache[sc.Name] = c
	return c, nil
}

func buildCorpus(sc Scale) (*Corpus, error) {
	c := &Corpus{Scale: sc, SceneCams: map[int]scene.Camera{}}
	for _, spec := range venueSpecs(sc) {
		c.Worlds = append(c.Worlds, scene.Build(spec))
	}
	// Dense extraction: the paper's high-resolution photos average ~3,500
	// keypoints; at our render scale a lower contrast threshold keeps the
	// per-frame keypoint budget proportionally meaningful for the
	// 200-vs-500-vs-all comparisons.
	cfg := siftConfig()
	cfg.ContrastThreshold = 0.01
	cfg.MaxKeypoints = 800

	// Collect POIs across venues: unique ones become scenes, others
	// distractor views.
	type poiRef struct {
		w   *scene.World
		poi scene.POI
	}
	var uniques, others []poiRef
	for _, w := range c.Worlds {
		for _, p := range w.POIs {
			if p.Kind == scene.POIUnique {
				uniques = append(uniques, poiRef{w, p})
			} else {
				others = append(others, poiRef{w, p})
			}
		}
	}
	if len(uniques) < sc.Scenes {
		return nil, fmt.Errorf("bench: only %d unique POIs for %d scenes", len(uniques), sc.Scenes)
	}
	// Deterministic spread: stride through the POI lists.
	stridePick := func(refs []poiRef, n int) []poiRef {
		if n >= len(refs) {
			return refs
		}
		out := make([]poiRef, 0, n)
		stride := float64(len(refs)) / float64(n)
		for i := 0; i < n; i++ {
			out = append(out, refs[int(float64(i)*stride)])
		}
		return out
	}
	scenes := stridePick(uniques, sc.Scenes)
	distractors := stridePick(others, sc.Distractors)

	capture := func(w *scene.World, poi scene.POI, dist, yawOff, pitchOff float64, noise float64, seed int64) ([]sift.Keypoint, scene.Camera, error) {
		cam := scene.CameraFacing(w, poi, dist, yawOff, pitchOff, sc.ImgW, sc.ImgH)
		fr, err := scene.Render(w, cam)
		if err != nil {
			return nil, cam, err
		}
		img := fr.Image
		if noise > 0 {
			// Handheld-capture sensor noise: the paper's queries are
			// phone photos, not clean renders.
			rng := rand.New(rand.NewSource(seed))
			img = img.Clone()
			for i := range img.Pix {
				img.Pix[i] += float32(rng.NormFloat64() * noise)
			}
		}
		return sift.Detect(img, cfg), cam, nil
	}

	// Database views.
	for id, ref := range scenes {
		kps, cam, err := capture(ref.w, ref.poi, 2.5, 0, 0, 0, 0)
		if err != nil {
			return nil, err
		}
		c.SceneCams[id] = cam
		for i := range kps {
			d := make([]byte, sift.DescriptorSize)
			copy(d, kps[i].Desc[:])
			c.DB.add(d, id)
		}
	}
	for i, ref := range distractors {
		label := sc.Scenes + i
		kps, _, err := capture(ref.w, ref.poi, 2.0, 0.15, -0.1, 0, 0)
		if err != nil {
			return nil, err
		}
		for k := range kps {
			d := make([]byte, sift.DescriptorSize)
			copy(d, kps[k].Desc[:])
			c.DB.add(d, label)
		}
	}
	// Query views: substantially different angles, as in the paper
	// ("systematically captured from substantially different angles...
	// intended to challenge all matching schemes"), and farther back so
	// repeated floor/ceiling/fixture content fills much of each frame.
	offsets := [][2]float64{{0.7, -0.15}, {-0.85, 0.12}, {0.95, -0.08}, {-1.05, 0.1}, {0.9, 0.16}}
	for id, ref := range scenes {
		for q := 0; q < sc.QueriesPerScene && q < len(offsets); q++ {
			kps, cam, err := capture(ref.w, ref.poi, 4.2, offsets[q][0], offsets[q][1],
				0.03, int64(id*31+q))
			if err != nil {
				return nil, err
			}
			c.Queries = append(c.Queries, QueryFrame{SceneID: id, Kps: kps, Cam: cam})
		}
	}
	return c, nil
}

// Descriptors returns the raw descriptor slices of all query frames of one
// query (flattened helper for the matching experiments).
func (q *QueryFrame) Descriptors() [][]byte {
	out := make([][]byte, len(q.Kps))
	for i := range q.Kps {
		out[i] = q.Kps[i].Desc[:]
	}
	return out
}
