package bench

import (
	"fmt"
	"time"

	"visualprint/internal/codec"
	"visualprint/internal/netsim"
	"visualprint/internal/scene"
	"visualprint/internal/server"
	"visualprint/internal/sift"
)

// Fig02EncodingFPS regenerates Figure 2: sustainable frames per second
// against uplink bandwidth, per frame encoding (log-log in the paper).
// Frame sizes are measured on rendered venue frames using the real stdlib
// PNG/JPEG encoders; H.264 uses the calibrated rate model.
func Fig02EncodingFPS(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig02", Title: "Uplink bandwidth vs sustainable FPS by encoding",
		XLabel: "uplink (Mbps)", YLabel: "average FPS",
	}
	// Average encoded sizes over a handful of venue frames.
	specs := venueSpecs(sc)
	w := scene.Build(specs[0])
	pois := w.POIsOfKind(scene.POIUnique)
	if len(pois) < 3 {
		return nil, fmt.Errorf("bench: venue has %d unique POIs", len(pois))
	}
	sizes := map[codec.Encoding]int64{}
	encodings := []codec.Encoding{codec.EncodingH264, codec.EncodingJPEG, codec.EncodingPNG, codec.EncodingRAW}
	frames := 0
	for i := 0; i < 3; i++ {
		cam := scene.CameraFacing(w, pois[i], 3, 0.2, 0, sc.ImgW, sc.ImgH)
		fr, err := scene.Render(w, cam)
		if err != nil {
			return nil, err
		}
		frames++
		for _, enc := range encodings {
			data, err := codec.EncodeFrame(fr.Image, enc, 0)
			if err != nil {
				return nil, err
			}
			sizes[enc] += int64(len(data))
		}
	}
	// The paper streams high-resolution camera frames; scale measured
	// sizes from the render resolution to 1080p by pixel count (exact for
	// RAW and the H264 rate model; compression ratios are approximately
	// resolution-independent for PNG/JPEG).
	hiRes := float64(1920*1080) / float64(sc.ImgW*sc.ImgH)
	uplinks := []float64{1, 2, 4, 8, 16, 32}
	for _, enc := range encodings {
		avg := int64(float64(sizes[enc]/int64(frames)) * hiRes)
		e.Notef("%s: %.1f KB per 1080p-equivalent frame", enc, float64(avg)/1024)
		for _, mbps := range uplinks {
			l := netsim.Link{UplinkMbps: mbps}
			e.Points = append(e.Points, Point{Series: enc.String(), X: mbps, Y: l.SustainableFPS(avg)})
		}
	}
	e.Notef("calibration: H264 at 2 Mbps sustains ~10 FPS (the paper's Figure 2 anchor)")
	return e, nil
}

// Fig03KeypointCDF regenerates Figure 3: the CDF of usable SIFT keypoints
// per frame under PNG (lossless) versus JPEG at the Figure 2 compression
// regime. As documented in DESIGN.md, on synthetic textures the paper's
// raw-count degradation manifests as a loss of *match-stable* keypoints
// (keypoints surviving compression with a matching descriptor), which is
// the quantity plotted here.
func Fig03KeypointCDF(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig03", Title: "Keypoint count CDF, PNG vs JPEG",
		XLabel: "usable keypoint count", YLabel: "CDF",
	}
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, err
	}
	cfg := siftConfig()
	cfg.ContrastThreshold = 0.01
	var pngCounts, jpegCounts []float64
	n := sc.Scenes
	if n > 25 {
		n = 25 // cap the recompression workload
	}
	for id := 0; id < n; id++ {
		cam := c.SceneCams[id]
		w := worldOf(c, cam)
		fr, err := scene.Render(w, cam)
		if err != nil {
			return nil, err
		}
		base := sift.Detect(fr.Image, cfg)
		count := func(enc codec.Encoding, quality int) (int, error) {
			data, err := codec.EncodeFrame(fr.Image, enc, quality)
			if err != nil {
				return 0, err
			}
			dec, err := codec.DecodeFrame(data, enc)
			if err != nil {
				return 0, err
			}
			kps := sift.Detect(dec, cfg)
			return stableCount(base, kps), nil
		}
		pc, err := count(codec.EncodingPNG, 0)
		if err != nil {
			return nil, err
		}
		jc, err := count(codec.EncodingJPEG, 10)
		if err != nil {
			return nil, err
		}
		pngCounts = append(pngCounts, float64(pc))
		jpegCounts = append(jpegCounts, float64(jc))
	}
	e.AddCDF("PNG", pngCounts)
	e.AddCDF("JPEG", jpegCounts)
	e.Notef("metric: match-stable keypoints (see DESIGN.md substitution table)")
	return e, nil
}

// stableCount counts keypoints in kps with a geometric + descriptor match
// in base.
func stableCount(base, kps []sift.Keypoint) int {
	n := 0
	for i := range kps {
		for j := range base {
			dx, dy := kps[i].X-base[j].X, kps[i].Y-base[j].Y
			if dx*dx+dy*dy < 9 && kps[i].Desc.DistSq(&base[j].Desc) < 40000 {
				n++
				break
			}
		}
	}
	return n
}

// worldOf finds which corpus world a camera lies in (by bounds).
func worldOf(c *Corpus, cam scene.Camera) *scene.World {
	for _, w := range c.Worlds {
		if cam.Pos.X >= w.Min.X && cam.Pos.X <= w.Max.X &&
			cam.Pos.Z >= w.Min.Z && cam.Pos.Z <= w.Max.Z {
			return w
		}
	}
	return c.Worlds[0]
}

// Fig05FeatureRatio regenerates Figure 5: the CDF of the ratio of
// serialized SIFT feature size to compressed image size, raw and after
// GZIP. The paper's point — shipping all keypoints saves nothing over
// shipping the frame — should hold.
func Fig05FeatureRatio(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig05", Title: "Feature-size / image-size ratio CDF",
		XLabel: "features bytes / image bytes", YLabel: "CDF",
	}
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, err
	}
	var raw, zipped []float64
	n := sc.Scenes
	if n > 30 {
		n = 30
	}
	for id := 0; id < n; id++ {
		cam := c.SceneCams[id]
		w := worldOf(c, cam)
		fr, err := scene.Render(w, cam)
		if err != nil {
			return nil, err
		}
		cfg := siftConfig()
		cfg.ContrastThreshold = 0.01 // dense extraction, as high-res photos yield
		kps := sift.Detect(fr.Image, cfg)
		if len(kps) == 0 {
			continue
		}
		img, err := codec.EncodeFrame(fr.Image, codec.EncodingPNG, 0)
		if err != nil {
			return nil, err
		}
		feats := codec.MarshalKeypoints(kps)
		z, err := codec.Gzip(feats)
		if err != nil {
			return nil, err
		}
		raw = append(raw, float64(len(feats))/float64(len(img)))
		zipped = append(zipped, float64(len(z))/float64(len(img)))
	}
	e.AddCDF("Uncompressed", raw)
	e.AddCDF("Compressed (GZIP)", zipped)
	return e, nil
}

// Fig14UploadTrace regenerates Figure 14: cumulative data uploaded over a
// 70-second continuous session, VisualPrint fingerprints versus whole
// frames, over the same link.
func Fig14UploadTrace(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig14", Title: "Cumulative upload over time",
		XLabel: "time (s)", YLabel: "data sent (MB)",
	}
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, err
	}
	// Per-query payloads measured from the corpus: a 200-keypoint
	// fingerprint versus the PNG frame.
	cam := c.SceneCams[0]
	w := worldOf(c, cam)
	fr, err := scene.Render(w, cam)
	if err != nil {
		return nil, err
	}
	frame, err := codec.EncodeFrame(fr.Image, codec.EncodingPNG, 0)
	if err != nil {
		return nil, err
	}
	// Whole-frame offload ships camera-resolution frames; scale the
	// measured PNG size to a 1080p-equivalent (as in Figure 2). The
	// fingerprint, by contrast, is resolution-independent: 200 keypoints
	// regardless of sensor size.
	frameBytes := int64(float64(len(frame)) * float64(1920*1080) / float64(sc.ImgW*sc.ImgH))
	fpBytes := server.QueryUploadBytes(200)
	e.Notef("per query: VisualPrint %.1f KB, whole frame %.1f KB (paper: 51.2 vs 523)",
		float64(fpBytes)/1024, float64(frameBytes)/1024)

	link := netsim.Link{UplinkMbps: 6, RTT: 40 * time.Millisecond}
	duration := 70 * time.Second
	vp, err := netsim.Trace(link, duration, time.Second, func(int) int64 { return fpBytes })
	if err != nil {
		return nil, err
	}
	fu, err := netsim.Trace(link, duration, time.Second, func(int) int64 { return frameBytes })
	if err != nil {
		return nil, err
	}
	for _, ev := range vp {
		e.Points = append(e.Points, Point{Series: "VisualPrint", X: ev.At.Seconds(), Y: float64(ev.Cumulative) / 1e6})
	}
	for _, ev := range fu {
		e.Points = append(e.Points, Point{Series: "Frame Upload", X: ev.At.Seconds(), Y: float64(ev.Cumulative) / 1e6})
	}
	ratio := float64(fu[len(fu)-1].Cumulative) / float64(vp[len(vp)-1].Cumulative)
	e.Notef("session total ratio: %.1fx (paper: ~10x)", ratio)
	return e, nil
}

// ExtraLatencyTail is an extension experiment beyond the paper's figures:
// it quantifies the introduction's motivating claim that "wireless network
// latencies between the phone and cloud are unpredictable" hurts whole-
// frame offload far more than fingerprint offload. Both payloads ride the
// same Gilbert-Elliott variable channel; the CDFs of per-query upload
// completion time show the frame upload's heavy tail.
func ExtraLatencyTail(sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "extra-latency", Title: "Per-query upload latency CDF on a variable channel",
		XLabel: "latency (s)", YLabel: "CDF",
	}
	v := netsim.VariableLink{
		Good:            netsim.Link{UplinkMbps: 6, RTT: 40 * time.Millisecond},
		BadRateFraction: 0.08,
		BadRTT:          400 * time.Millisecond,
		MeanGood:        4 * time.Second,
		MeanBad:         time.Second,
		Seed:            11,
	}
	const dur = 180 * time.Second
	const samples = 600
	fp, err := v.TransferTimes(server.QueryUploadBytes(200), dur, samples)
	if err != nil {
		return nil, err
	}
	frame, err := v.TransferTimes(910_000, dur, samples) // 1080p PNG equivalent
	if err != nil {
		return nil, err
	}
	toSecs := func(ds []time.Duration) []float64 {
		out := make([]float64, len(ds))
		for i, d := range ds {
			out[i] = d.Seconds()
		}
		return out
	}
	e.AddCDF("VisualPrint (200 kp)", toSecs(fp))
	e.AddCDF("Frame Upload (PNG)", toSecs(frame))
	e.Notef("medians: fingerprint %.2f s, frame %.2f s; tails diverge much further",
		e.MedianOf("VisualPrint (200 kp)"), e.MedianOf("Frame Upload (PNG)"))
	_ = sc
	return e, nil
}
