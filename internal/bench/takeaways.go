package bench

import (
	"strconv"

	"visualprint/internal/codec"
	"visualprint/internal/core"
	"visualprint/internal/lsh"
	"visualprint/internal/power"
	"visualprint/internal/scene"
	"visualprint/internal/server"
)

// Takeaway is one paper-vs-measured row of the "Evaluation Takeaways" list
// (the paper's de facto results table).
type Takeaway struct {
	ID       string
	Claim    string
	Paper    string
	Measured string
}

// Takeaways reproduces each numbered finding of the paper's evaluation
// summary against the simulated substrate.
func Takeaways(sc Scale) ([]Takeaway, error) {
	var out []Takeaway
	c, err := GetCorpus(sc)
	if err != nil {
		return nil, err
	}

	// (2) Bandwidth: fingerprint vs whole-frame upload.
	cam := c.SceneCams[0]
	fr, err := scene.Render(worldOf(c, cam), cam)
	if err != nil {
		return nil, err
	}
	frame, err := codec.EncodeFrame(fr.Image, codec.EncodingPNG, 0)
	if err != nil {
		return nil, err
	}
	// Scale the frame to a 1080p-equivalent (the fingerprint is
	// resolution-independent), as in Figure 14.
	frameBytes := int64(float64(len(frame)) * float64(1920*1080) / float64(sc.ImgW*sc.ImgH))
	fp := server.QueryUploadBytes(200)
	out = append(out, Takeaway{
		ID:       "bandwidth",
		Claim:    "VisualPrint needs ~1/10th the upload of whole frames",
		Paper:    "51.2 KB vs 523 KB per query",
		Measured: formatKB(fp) + " vs " + formatKB(frameBytes) + " per query (ratio " + formatRatio(float64(frameBytes)/float64(fp)) + "x)",
	})

	// (3)/(4) Oracle disk and RAM at the paper's 2.5M-descriptor sizing.
	oracle, err := core.New(core.DefaultParams())
	if err != nil {
		return nil, err
	}
	blob, err := oracleGzip(oracle)
	if err != nil {
		return nil, err
	}
	out = append(out, Takeaway{
		ID:       "oracle-disk",
		Claim:    "oracle stored compressed on client disk",
		Paper:    "10.5 MB (vs 1.3 GB server LSH compressed)",
		Measured: formatMB(int64(len(blob))) + " gzip (empty filters; grows toward tens of MB as they saturate)",
	})
	out = append(out, Takeaway{
		ID:       "oracle-ram",
		Claim:    "oracle RAM is a small fraction of LSH indices",
		Paper:    "162 MB vs 9.4 GB",
		Measured: formatMB(oracle.MemoryBytes()) + " filters at 2.5M-descriptor sizing",
	})

	// LSH replication factor measured on the corpus.
	ix, err := lsh.NewIndex(lsh.DefaultParams())
	if err != nil {
		return nil, err
	}
	var rawBytes int64
	for _, d := range c.DB.Descs {
		ix.Insert(d)
		rawBytes += int64(len(d))
	}
	out = append(out, Takeaway{
		ID:       "lsh-replication",
		Claim:    "conventional LSH replicates the database L times",
		Paper:    "9.4 GB for 320 MB of descriptors (~29x)",
		Measured: formatRatio(float64(ix.MemoryBytes())/float64(rawBytes)) + "x the raw descriptor bytes",
	})

	// (5) Compute latency: covered by Fig16; summarize.
	lat, err := Fig16Latency(sc)
	if err != nil {
		return nil, err
	}
	out = append(out, Takeaway{
		ID:       "latency",
		Claim:    "filtering is an order cheaper than SIFT extraction",
		Paper:    "3300 ms SIFT vs 217 ms lookups (Galaxy S6)",
		Measured: formatMs(lat.MedianOf("SIFT")) + " SIFT vs " + formatMs(lat.MedianOf("VisualPrint Matching")) + " filtering (this host)",
	})

	// (6) Energy.
	m := power.Default()
	full, _ := m.Average(power.VisualPrintFull())
	off, _ := m.Average(power.FrameOffload())
	out = append(out, Takeaway{
		ID:       "energy",
		Claim:    "full pipeline ~6.5 W; frame offload ~4.9 W",
		Paper:    "6.5 W / 4.9 W",
		Measured: formatW(full) + " / " + formatW(off) + " (calibrated model)",
	})

	// (7) Localization median.
	loc, err := Fig19Localization(sc)
	if err != nil {
		return nil, err
	}
	med := 0.0
	n := 0
	for _, s := range loc.Series() {
		med += loc.MedianOf(s)
		n++
	}
	if n > 0 {
		med /= float64(n)
	}
	out = append(out, Takeaway{
		ID:       "localization",
		Claim:    "median 3D localization error ~2.5 m",
		Paper:    "2.5 m",
		Measured: formatM(med) + " mean-of-venue-medians",
	})
	return out, nil
}

func formatKB(b int64) string      { return fmtF(float64(b)/1024, 1) + " KB" }
func formatMB(b int64) string      { return fmtF(float64(b)/1e6, 1) + " MB" }
func formatRatio(r float64) string { return fmtF(r, 1) }
func formatMs(ms float64) string   { return fmtF(ms, 1) + " ms" }
func formatW(w float64) string     { return fmtF(w, 1) + " W" }
func formatM(m float64) string     { return fmtF(m, 2) + " m" }

func fmtF(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}
