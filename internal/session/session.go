// Package session simulates the VisualPrint client app's continuous
// capture loop (paper section 3, "Client Android App"): the camera produces
// frames at a fixed rate; each frame passes a quick blur check; frames that
// arrive while the processor is still busy are dropped ("it also rejects
// frames when processing falls behind the realtime stream... the app only
// processes extremely recent frames"); surviving frames go through SIFT
// extraction, oracle filtering, and upload over a modeled link.
//
// The simulator is deterministic and time-virtualized: processing costs are
// supplied by a cost model rather than wall-clock measurement, so the same
// session replays identically and the Figure 14/18 accounting can be
// derived from it.
package session

import (
	"errors"
	"time"

	"visualprint/internal/netsim"
)

// FrameClass describes what the capture loop did with one camera frame.
type FrameClass int

// Frame outcomes.
const (
	FrameProcessed FrameClass = iota // extracted, filtered, uploaded
	FrameBlurred                     // rejected by the blur check
	FrameStale                       // dropped: processor busy when it arrived
)

// String returns the outcome name.
func (c FrameClass) String() string {
	switch c {
	case FrameProcessed:
		return "processed"
	case FrameBlurred:
		return "blurred"
	case FrameStale:
		return "stale"
	default:
		return "unknown"
	}
}

// Config describes the simulated capture session.
type Config struct {
	// FPS is the camera frame rate.
	FPS float64
	// Duration of the session.
	Duration time.Duration
	// ExtractTime is the per-frame SIFT cost; FilterTime the oracle
	// lookup+sort cost (the two Figure 16 latencies).
	ExtractTime, FilterTime time.Duration
	// UploadBytes per processed frame (the fingerprint size).
	UploadBytes int64
	// Link carries the uploads; uploads overlap with processing (the
	// radio and CPU pipeline independently) but serialize on the link.
	Link netsim.Link
	// BlurredFrame reports whether frame i is motion-blurred (the quick
	// client-side check rejects it before any processing). Nil means no
	// frames are blurred.
	BlurredFrame func(i int) bool
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if c.FPS <= 0 || c.Duration <= 0 {
		return errors.New("session: FPS and Duration must be positive")
	}
	if c.ExtractTime < 0 || c.FilterTime < 0 || c.UploadBytes < 0 {
		return errors.New("session: negative costs")
	}
	return c.Link.Validate()
}

// FrameEvent records one camera frame's fate.
type FrameEvent struct {
	Index    int
	At       time.Duration // capture timestamp
	Class    FrameClass
	DoneAt   time.Duration // processing completion (processed frames only)
	Uploaded time.Duration // upload completion (processed frames only)
}

// Result summarizes a session.
type Result struct {
	Frames    []FrameEvent
	Processed int
	Blurred   int
	Stale     int
	BytesSent int64
	// EffectiveQPS is the achieved processed-query rate.
	EffectiveQPS float64
	// MeanFreshness is the mean age of a frame at upload completion —
	// the "perceivable latency on the screen" the paper's design keeps
	// low by always processing the newest frame.
	MeanFreshness time.Duration
}

// Run simulates the capture loop.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	period := time.Duration(float64(time.Second) / cfg.FPS)
	res := &Result{}
	var cpuFree, linkFree time.Duration
	var freshnessSum time.Duration
	perFrame := cfg.ExtractTime + cfg.FilterTime
	for i := 0; ; i++ {
		at := time.Duration(i) * period
		if at >= cfg.Duration {
			break
		}
		ev := FrameEvent{Index: i, At: at}
		switch {
		case cfg.BlurredFrame != nil && cfg.BlurredFrame(i):
			ev.Class = FrameBlurred
			res.Blurred++
		case at < cpuFree || linkFree > at+perFrame:
			// The processor is mid-frame, or the radio is still draining
			// a previous upload: this frame would be stale before its
			// result could leave the phone, so the loop drops it and will
			// pick the newest frame available when the pipeline frees up.
			ev.Class = FrameStale
			res.Stale++
		default:
			ev.Class = FrameProcessed
			ev.DoneAt = at + perFrame
			cpuFree = ev.DoneAt
			start := ev.DoneAt
			if linkFree > start {
				start = linkFree
			}
			ev.Uploaded = start + cfg.Link.TransferTime(cfg.UploadBytes)
			linkFree = ev.Uploaded
			res.Processed++
			res.BytesSent += cfg.UploadBytes
			freshnessSum += ev.Uploaded - at
		}
		res.Frames = append(res.Frames, ev)
	}
	if res.Processed > 0 {
		res.EffectiveQPS = float64(res.Processed) / cfg.Duration.Seconds()
		res.MeanFreshness = freshnessSum / time.Duration(res.Processed)
	}
	return res, nil
}
