package session

import (
	"testing"
	"time"

	"visualprint/internal/netsim"
)

func baseConfig() Config {
	return Config{
		FPS:         30,
		Duration:    10 * time.Second,
		ExtractTime: 80 * time.Millisecond,
		FilterTime:  5 * time.Millisecond,
		UploadBytes: 29_000,
		Link:        netsim.Link{UplinkMbps: 6, RTT: 30 * time.Millisecond},
	}
}

func TestRunValidation(t *testing.T) {
	bad := baseConfig()
	bad.FPS = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero FPS accepted")
	}
	bad = baseConfig()
	bad.Link.UplinkMbps = 0
	if _, err := Run(bad); err == nil {
		t.Error("invalid link accepted")
	}
	bad = baseConfig()
	bad.ExtractTime = -time.Second
	if _, err := Run(bad); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestRunDropsStaleFrames(t *testing.T) {
	// 30 FPS camera, 85 ms processing: the CPU can sustain ~11.7 QPS, so
	// roughly 2 of every 3 frames must be dropped as stale.
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale == 0 {
		t.Fatal("no stale frames despite an oversubscribed CPU")
	}
	if res.Processed == 0 {
		t.Fatal("nothing processed")
	}
	if qps := res.EffectiveQPS; qps < 10 || qps > 12.5 {
		t.Errorf("effective QPS = %.1f, want ~11.7", qps)
	}
	// Every frame is accounted exactly once.
	if res.Processed+res.Blurred+res.Stale != len(res.Frames) {
		t.Error("frame accounting leaks")
	}
}

func TestRunKeepsUpWhenCheap(t *testing.T) {
	cfg := baseConfig()
	cfg.FPS = 5
	cfg.ExtractTime = 50 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale != 0 {
		t.Errorf("%d stale frames on an underloaded CPU", res.Stale)
	}
	if res.Processed != 50 {
		t.Errorf("processed %d of 50 frames", res.Processed)
	}
}

func TestRunBlurGate(t *testing.T) {
	cfg := baseConfig()
	cfg.FPS = 5
	cfg.ExtractTime = 10 * time.Millisecond
	// Every third frame blurred (handheld motion bursts).
	cfg.BlurredFrame = func(i int) bool { return i%3 == 0 }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blurred == 0 {
		t.Fatal("blur gate never fired")
	}
	// Blurred frames cost nothing: no upload bytes attributed to them.
	if res.BytesSent != int64(res.Processed)*cfg.UploadBytes {
		t.Error("blurred frames counted toward upload")
	}
	for _, ev := range res.Frames {
		if ev.Class == FrameBlurred && (ev.DoneAt != 0 || ev.Uploaded != 0) {
			t.Fatal("blurred frame has processing timestamps")
		}
	}
}

func TestRunFreshnessBounded(t *testing.T) {
	// The always-newest-frame policy keeps mean freshness near the
	// per-frame cost plus transfer, not growing with the backlog.
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	perFrame := 85*time.Millisecond + // processing
		baseConfig().Link.TransferTime(29_000)
	if res.MeanFreshness > 2*perFrame {
		t.Errorf("mean freshness %v far above per-frame cost %v", res.MeanFreshness, perFrame)
	}
}

func TestRunUploadSerializesOnLink(t *testing.T) {
	cfg := baseConfig()
	cfg.FPS = 10
	cfg.ExtractTime = time.Millisecond // CPU never the bottleneck
	cfg.UploadBytes = 2_000_000        // whole-frame offload: link-bound
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for _, ev := range res.Frames {
		if ev.Class != FrameProcessed {
			continue
		}
		if ev.Uploaded < prev {
			t.Fatal("uploads overlap on the serial link")
		}
		prev = ev.Uploaded
	}
	// Link capacity bound: 6 Mbps for 10 s = 7.5 MB.
	if res.BytesSent > 8_000_000 {
		t.Errorf("sent %d bytes over a 6 Mbps link in 10 s", res.BytesSent)
	}
}

func TestFrameClassString(t *testing.T) {
	if FrameProcessed.String() != "processed" ||
		FrameBlurred.String() != "blurred" ||
		FrameStale.String() != "stale" ||
		FrameClass(99).String() != "unknown" {
		t.Error("FrameClass.String broken")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(baseConfig())
	if a.Processed != b.Processed || a.BytesSent != b.BytesSent || a.MeanFreshness != b.MeanFreshness {
		t.Error("session not deterministic")
	}
}
