// Package icp implements iterative closest point alignment of 3D point
// clouds. VisualPrint post-processes the Tango depth output with "ICP
// heuristics to merge Tango 3D depth maps (from separate snapshots) into a
// single coherent point cloud for the entire indoor space", correcting
// dead-reckoning drift so that truly-unique keypoints are not mistaken for
// repeated ones (paper section 3).
//
// The rigid alignment step uses Horn's closed-form quaternion method: the
// optimal rotation is the dominant eigenvector of a 4x4 symmetric matrix
// built from the cross-covariance of the matched points, computed with the
// Jacobi eigensolver from internal/mathx.
package icp

import (
	"errors"
	"math"

	"visualprint/internal/mathx"
)

// RigidTransform is a rotation followed by a translation: p' = R*p + T.
type RigidTransform struct {
	R mathx.Mat3
	T mathx.Vec3
}

// Identity returns the identity transform.
func Identity() RigidTransform {
	return RigidTransform{R: mathx.Identity3()}
}

// Apply transforms a single point.
func (t RigidTransform) Apply(p mathx.Vec3) mathx.Vec3 {
	return t.R.MulVec(p).Add(t.T)
}

// ApplyAll returns a new slice with every point transformed.
func (t RigidTransform) ApplyAll(pts []mathx.Vec3) []mathx.Vec3 {
	out := make([]mathx.Vec3, len(pts))
	for i, p := range pts {
		out[i] = t.Apply(p)
	}
	return out
}

// Compose returns the transform equivalent to applying t first, then u.
func (t RigidTransform) Compose(u RigidTransform) RigidTransform {
	return RigidTransform{
		R: u.R.Mul(t.R),
		T: u.R.MulVec(t.T).Add(u.T),
	}
}

// AlignHorn computes the rigid transform minimizing sum ||R*src[i]+T -
// dst[i]||^2 over given correspondences, using Horn's quaternion method. It
// requires at least three non-degenerate correspondences.
func AlignHorn(src, dst []mathx.Vec3) (RigidTransform, error) {
	if len(src) != len(dst) {
		return Identity(), errors.New("icp: correspondence length mismatch")
	}
	if len(src) < 3 {
		return Identity(), errors.New("icp: need at least 3 correspondences")
	}
	var cs, cd mathx.Vec3
	for i := range src {
		cs = cs.Add(src[i])
		cd = cd.Add(dst[i])
	}
	inv := 1 / float64(len(src))
	cs, cd = cs.Scale(inv), cd.Scale(inv)

	// Cross-covariance M = sum (src-cs)(dst-cd)^T.
	var m [9]float64
	for i := range src {
		a := src[i].Sub(cs)
		b := dst[i].Sub(cd)
		m[0] += a.X * b.X
		m[1] += a.X * b.Y
		m[2] += a.X * b.Z
		m[3] += a.Y * b.X
		m[4] += a.Y * b.Y
		m[5] += a.Y * b.Z
		m[6] += a.Z * b.X
		m[7] += a.Z * b.Y
		m[8] += a.Z * b.Z
	}
	sxx, sxy, sxz := m[0], m[1], m[2]
	syx, syy, syz := m[3], m[4], m[5]
	szx, szy, szz := m[6], m[7], m[8]
	// Horn's symmetric 4x4 matrix.
	n := []float64{
		sxx + syy + szz, syz - szy, szx - sxz, sxy - syx,
		syz - szy, sxx - syy - szz, sxy + syx, szx + sxz,
		szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy,
		sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz,
	}
	vals, vecs, err := mathx.SymEigen(n, 4)
	if err != nil {
		return Identity(), err
	}
	_ = vals
	q := vecs[0:4] // dominant eigenvector = optimal unit quaternion
	r := quatToMat(q[0], q[1], q[2], q[3])
	t := cd.Sub(r.MulVec(cs))
	return RigidTransform{R: r, T: t}, nil
}

// quatToMat converts a unit quaternion (w, x, y, z) to a rotation matrix.
func quatToMat(w, x, y, z float64) mathx.Mat3 {
	n := math.Sqrt(w*w + x*x + y*y + z*z)
	if n == 0 {
		return mathx.Identity3()
	}
	w, x, y, z = w/n, x/n, y/n, z/n
	return mathx.Mat3{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}

// Options tunes the ICP iteration.
type Options struct {
	// MaxIterations bounds the outer loop.
	MaxIterations int
	// MaxPairDist rejects correspondences farther apart than this
	// (meters); also the neighbor-grid cell size.
	MaxPairDist float64
	// Tolerance stops iterating when the mean residual improves by less
	// than this fraction.
	Tolerance float64
	// MinPairs aborts when fewer correspondences than this survive
	// gating.
	MinPairs int
}

// DefaultOptions returns ICP settings suited to indoor-scale clouds with
// sub-meter drift.
func DefaultOptions() Options {
	return Options{MaxIterations: 30, MaxPairDist: 1.0, Tolerance: 1e-4, MinPairs: 10}
}

// grid is a uniform hash grid for nearest-neighbor queries.
type grid struct {
	cell  float64
	cells map[[3]int32][]int
	pts   []mathx.Vec3
}

func newGrid(pts []mathx.Vec3, cell float64) *grid {
	g := &grid{cell: cell, cells: make(map[[3]int32][]int, len(pts)), pts: pts}
	for i, p := range pts {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *grid) key(p mathx.Vec3) [3]int32 {
	return [3]int32{
		int32(math.Floor(p.X / g.cell)),
		int32(math.Floor(p.Y / g.cell)),
		int32(math.Floor(p.Z / g.cell)),
	}
}

// nearest returns the index of the nearest stored point within maxDist, or
// -1.
func (g *grid) nearest(p mathx.Vec3, maxDist float64) int {
	k := g.key(p)
	best := -1
	bestD := maxDist * maxDist
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dz := int32(-1); dz <= 1; dz++ {
				for _, i := range g.cells[[3]int32{k[0] + dx, k[1] + dy, k[2] + dz}] {
					d := g.pts[i].Sub(p)
					d2 := d.Dot(d)
					if d2 < bestD {
						bestD = d2
						best = i
					}
				}
			}
		}
	}
	return best
}

// Result reports an ICP run.
type Result struct {
	Transform    RigidTransform
	Iterations   int
	MeanResidual float64 // mean matched-pair distance after alignment
	Pairs        int     // correspondences in the final iteration
}

// Run aligns src onto dst: it returns the transform that, applied to src,
// best overlays it on dst.
func Run(src, dst []mathx.Vec3, opt Options) (Result, error) {
	if opt.MaxIterations <= 0 || opt.MaxPairDist <= 0 {
		return Result{}, errors.New("icp: MaxIterations and MaxPairDist must be positive")
	}
	if len(src) == 0 || len(dst) == 0 {
		return Result{}, errors.New("icp: empty cloud")
	}
	g := newGrid(dst, opt.MaxPairDist)
	total := Identity()
	cur := append([]mathx.Vec3(nil), src...)
	prevResidual := math.Inf(1)
	res := Result{Transform: total}
	for iter := 0; iter < opt.MaxIterations; iter++ {
		var a, b []mathx.Vec3
		var residual float64
		for _, p := range cur {
			j := g.nearest(p, opt.MaxPairDist)
			if j < 0 {
				continue
			}
			a = append(a, p)
			b = append(b, dst[j])
			residual += p.Dist(dst[j])
		}
		if len(a) < opt.MinPairs || len(a) < 3 {
			return res, errors.New("icp: too few correspondences within MaxPairDist")
		}
		residual /= float64(len(a))
		step, err := AlignHorn(a, b)
		if err != nil {
			return res, err
		}
		total = total.Compose(step)
		for i := range cur {
			cur[i] = step.Apply(cur[i])
		}
		res = Result{Transform: total, Iterations: iter + 1, MeanResidual: residual, Pairs: len(a)}
		if prevResidual-residual < opt.Tolerance*math.Max(prevResidual, 1e-12) {
			break
		}
		prevResidual = residual
	}
	return res, nil
}

// SequenceOptions tunes CorrectSequence's acceptance gating on top of the
// per-alignment Options.
type SequenceOptions struct {
	ICP Options
	// MinPairFraction is the fraction of a cloud that must find gated
	// correspondences for its alignment to be trusted.
	MinPairFraction float64
	// MaxResidual rejects alignments whose mean matched-pair distance
	// stays above this (meters).
	MaxResidual float64
}

// DefaultSequenceOptions returns gating suited to indoor wardriving clouds.
// The gate is deliberately strict: on plane-dominated indoor clouds,
// wrong-basin alignments reach residuals as low as correct ones, so weakly
// supported alignments do more harm than good (see EXPERIMENTS.md, "ICP —
// honest negative result").
func DefaultSequenceOptions() SequenceOptions {
	return SequenceOptions{
		ICP:             DefaultOptions(),
		MinPairFraction: 0.7,
		MaxResidual:     0.2,
	}
}

// CorrectSequence incrementally stitches a sequence of drifted clouds into
// one coherent map — the paper's merge of per-snapshot Tango depth maps.
// Cloud 0 anchors the global frame; each subsequent cloud is ICP-aligned
// against the accumulated map and its correcting transform recorded.
//
// Alignments are accepted only when well-supported (enough gated
// correspondences, low residual): plane-dominated indoor clouds are prone
// to wrong-basin convergence under large drift, and a single mis-aligned
// cloud appended to the map poisons every later alignment. Rejected clouds
// keep the identity correction and are NOT merged into the map.
// The returned slice has one transform per input cloud.
func CorrectSequence(clouds [][]mathx.Vec3, opt Options) ([]RigidTransform, error) {
	so := DefaultSequenceOptions()
	so.ICP = opt
	return CorrectSequenceOpts(clouds, so)
}

// CorrectSequenceOpts is CorrectSequence with explicit gating options.
func CorrectSequenceOpts(clouds [][]mathx.Vec3, so SequenceOptions) ([]RigidTransform, error) {
	if len(clouds) == 0 {
		return nil, errors.New("icp: no clouds")
	}
	tfs := make([]RigidTransform, len(clouds))
	tfs[0] = Identity()
	var world []mathx.Vec3
	world = append(world, clouds[0]...)
	for i := 1; i < len(clouds); i++ {
		tfs[i] = Identity()
		if len(clouds[i]) == 0 {
			continue
		}
		r, err := Run(clouds[i], world, so.ICP)
		accept := err == nil &&
			float64(r.Pairs) >= so.MinPairFraction*float64(len(clouds[i])) &&
			r.MeanResidual <= so.MaxResidual
		if accept {
			tfs[i] = r.Transform
			world = append(world, tfs[i].ApplyAll(clouds[i])...)
		}
	}
	return tfs, nil
}
