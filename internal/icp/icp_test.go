package icp

import (
	"math"
	"math/rand"
	"testing"

	"visualprint/internal/mathx"
)

func randomCloud(rng *rand.Rand, n int, scale float64) []mathx.Vec3 {
	pts := make([]mathx.Vec3, n)
	for i := range pts {
		pts[i] = mathx.Vec3{
			X: rng.Float64() * scale,
			Y: rng.Float64() * scale * 0.3,
			Z: rng.Float64() * scale,
		}
	}
	return pts
}

func makeTransform(yaw float64, t mathx.Vec3) RigidTransform {
	return RigidTransform{R: mathx.RotationYPR(yaw, 0, 0), T: t}
}

func TestTransformApplyCompose(t *testing.T) {
	a := makeTransform(0.3, mathx.Vec3{X: 1})
	b := makeTransform(-0.1, mathx.Vec3{Z: 2})
	p := mathx.Vec3{X: 2, Y: 1, Z: -1}
	want := b.Apply(a.Apply(p))
	if got := a.Compose(b).Apply(p); got.Dist(want) > 1e-12 {
		t.Errorf("Compose: %v, want %v", got, want)
	}
	if got := Identity().Apply(p); got != p {
		t.Errorf("Identity.Apply = %v", got)
	}
}

func TestAlignHornExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := randomCloud(rng, 50, 10)
	truth := makeTransform(0.4, mathx.Vec3{X: 1.5, Y: -0.2, Z: 0.7})
	dst := truth.ApplyAll(src)
	got, err := AlignHorn(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range src {
		if got.Apply(p).Dist(dst[i]) > 1e-9 {
			t.Fatalf("point %d misaligned by %v", i, got.Apply(p).Dist(dst[i]))
		}
	}
	// Rotation must be proper (det +1).
	if math.Abs(got.R.Det()-1) > 1e-9 {
		t.Errorf("det(R) = %v", got.R.Det())
	}
}

func TestAlignHornNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randomCloud(rng, 200, 10)
	truth := makeTransform(-0.25, mathx.Vec3{X: 0.5, Z: -1})
	dst := truth.ApplyAll(src)
	for i := range dst {
		dst[i] = dst[i].Add(mathx.Vec3{
			X: rng.NormFloat64() * 0.01,
			Y: rng.NormFloat64() * 0.01,
			Z: rng.NormFloat64() * 0.01,
		})
	}
	got, err := AlignHorn(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for i, p := range src {
		mean += got.Apply(p).Dist(dst[i])
	}
	mean /= float64(len(src))
	if mean > 0.05 {
		t.Errorf("mean residual %v too large under small noise", mean)
	}
}

func TestAlignHornErrors(t *testing.T) {
	if _, err := AlignHorn(make([]mathx.Vec3, 3), make([]mathx.Vec3, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AlignHorn(make([]mathx.Vec3, 2), make([]mathx.Vec3, 2)); err == nil {
		t.Error("too few correspondences accepted")
	}
}

func TestRunRecoversSmallDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dst := randomCloud(rng, 400, 12)
	// Drifted copy: rotated and shifted by a drift-scale error.
	drift := makeTransform(0.03, mathx.Vec3{X: 0.3, Z: -0.25})
	src := drift.ApplyAll(dst)
	res, err := Run(src, dst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The recovered transform must invert the drift: src back onto dst.
	var mean float64
	for i := range src {
		mean += res.Transform.Apply(src[i]).Dist(dst[i])
	}
	mean /= float64(len(src))
	if mean > 0.03 {
		t.Errorf("post-ICP residual %v", mean)
	}
	if res.Iterations == 0 || res.Pairs == 0 {
		t.Errorf("result not populated: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	pts := randomCloud(rand.New(rand.NewSource(4)), 10, 5)
	if _, err := Run(nil, pts, DefaultOptions()); err == nil {
		t.Error("empty src accepted")
	}
	if _, err := Run(pts, nil, DefaultOptions()); err == nil {
		t.Error("empty dst accepted")
	}
	bad := DefaultOptions()
	bad.MaxIterations = 0
	if _, err := Run(pts, pts, bad); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestRunTooFarApart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCloud(rng, 50, 5)
	b := makeTransform(0, mathx.Vec3{X: 100}).ApplyAll(a)
	if _, err := Run(a, b, DefaultOptions()); err == nil {
		t.Error("clouds with no overlap should fail")
	}
}

func TestGridNearest(t *testing.T) {
	pts := []mathx.Vec3{{X: 0}, {X: 1}, {X: 2.5}}
	g := newGrid(pts, 1.0)
	if got := g.nearest(mathx.Vec3{X: 1.1}, 1.0); got != 1 {
		t.Errorf("nearest = %d", got)
	}
	if got := g.nearest(mathx.Vec3{X: 50}, 1.0); got != -1 {
		t.Errorf("far query = %d, want -1", got)
	}
}

func TestCorrectSequenceReducesDrift(t *testing.T) {
	// Build a "hallway" of overlapping window clouds, then drift each
	// window progressively. CorrectSequence should pull windows back.
	rng := rand.New(rand.NewSource(6))
	base := randomCloud(rng, 2000, 40)
	var clouds, truth [][]mathx.Vec3
	for k := 0; k < 6; k++ {
		lo, hi := float64(k)*5, float64(k)*5+12
		var window []mathx.Vec3
		for _, p := range base {
			if p.X >= lo && p.X < hi {
				window = append(window, p)
			}
		}
		drift := makeTransform(0.01*float64(k), mathx.Vec3{X: 0.08 * float64(k), Z: -0.06 * float64(k)})
		clouds = append(clouds, drift.ApplyAll(window))
		truth = append(truth, window)
	}
	// These synthetic clouds are well-conditioned (full 3D structure) but
	// have only ~60% window overlap, so relax the acceptance gate that
	// protects real plane-dominated wardriving clouds.
	so := DefaultSequenceOptions()
	so.MinPairFraction = 0.4
	so.MaxResidual = 0.5
	tfs, err := CorrectSequenceOpts(clouds, so)
	if err != nil {
		t.Fatal(err)
	}
	if len(tfs) != len(clouds) {
		t.Fatalf("%d transforms for %d clouds", len(tfs), len(clouds))
	}
	var before, after float64
	n := 0
	for k := range clouds {
		for i := range clouds[k] {
			before += clouds[k][i].Dist(truth[k][i])
			after += tfs[k].Apply(clouds[k][i]).Dist(truth[k][i])
			n++
		}
	}
	before /= float64(n)
	after /= float64(n)
	if after >= before {
		t.Errorf("correction did not help: before %.3f, after %.3f", before, after)
	}
}

func TestCorrectSequenceEmpty(t *testing.T) {
	if _, err := CorrectSequence(nil, DefaultOptions()); err == nil {
		t.Error("no clouds accepted")
	}
	// Empty middle clouds keep identity and do not break the chain.
	rng := rand.New(rand.NewSource(7))
	c := randomCloud(rng, 100, 10)
	tfs, err := CorrectSequence([][]mathx.Vec3{c, nil, c}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tfs[1] != Identity() {
		t.Error("empty cloud should get identity")
	}
}

func TestQuatToMatIdentity(t *testing.T) {
	m := quatToMat(1, 0, 0, 0)
	if m != mathx.Identity3() {
		t.Errorf("unit quaternion != identity: %v", m)
	}
	if quatToMat(0, 0, 0, 0) != mathx.Identity3() {
		t.Error("zero quaternion should fall back to identity")
	}
}
