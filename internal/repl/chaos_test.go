package repl

// Replication chaos tests: a real fleet (primary + replicas, each with its
// own durable directory and TCP listener) driven through the netsim
// fault-injection proxy. The contract under test is the issue's acceptance
// scenario — partition the primary mid-ingest, kill it, let the sentinel
// promote the most-caught-up replica, and prove that every
// client-acknowledged ingest is present and Locate is bit-identical on the
// new primary — plus the full-sync path losing its feed mid-snapshot.
// All of it must stay -race clean; these are the tests the Makefile's
// chaos target runs.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/netsim"
	"visualprint/internal/obs"
	"visualprint/internal/pose"
	"visualprint/internal/server"
	"visualprint/internal/sift"
	"visualprint/internal/testutil"
)

// testConfig returns a deterministic engine configuration: no pose
// wall-clock budget, serial retrieval — so two databases holding the same
// mappings in the same order answer Locate bit-identically.
func testConfig() server.DatabaseConfig {
	cfg := server.DefaultDatabaseConfig()
	cfg.Pose.Deadline = 0
	cfg.LocateParallelism = 1
	return cfg
}

// syntheticMappings mirrors the server package's test fixture: a tight
// spatial cluster (queries against it reach the pose solver) plus scatter.
func syntheticMappings(seed int64, nCluster, nScatter int) []server.Mapping {
	rng := rand.New(rand.NewSource(seed))
	ms := make([]server.Mapping, 0, nCluster+nScatter)
	center := mathx.Vec3{X: 4, Y: 1.5, Z: 3}
	for i := 0; i < nCluster; i++ {
		var m server.Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: center.X + rng.Float64()*0.8 - 0.4,
			Y: center.Y + rng.Float64()*0.8 - 0.4,
			Z: center.Z + rng.Float64()*0.8 - 0.4,
		}
		ms = append(ms, m)
	}
	for i := 0; i < nScatter; i++ {
		var m server.Mapping
		for j := range m.Desc {
			m.Desc[j] = byte(rng.Intn(256))
		}
		m.Pos = mathx.Vec3{
			X: rng.Float64() * 12,
			Y: rng.Float64() * 3,
			Z: rng.Float64() * 9,
		}
		ms = append(ms, m)
	}
	return ms
}

// queryFrom builds a query whose keypoints carry ms[from:from+n]'s exact
// descriptors on a deterministic pixel grid.
func queryFrom(ms []server.Mapping, from, n int) []sift.Keypoint {
	kps := make([]sift.Keypoint, n)
	for i := range kps {
		kps[i].Desc = ms[from+i].Desc
		kps[i].X = float64(20 + (i%8)*22)
		kps[i].Y = float64(15 + (i/8)*18)
	}
	return kps
}

func testIntrinsics() pose.Intrinsics {
	return pose.Intrinsics{W: 200, H: 150, FovX: 1.1, FovY: 0.85}
}

// member is one fleet process: durable shard database, replication state,
// TCP front end, and the background replication node.
type member struct {
	db   *server.Database
	rs   *server.ReplState
	srv  *server.Server
	node *Node
	addr string // advertised address
}

// startMember brings up a fleet member on ln. advertise is the address
// peers reach it at (the proxy's, when fronted); primary empty starts it as
// the fleet primary. The member is NOT auto-closed: chaos tests kill
// members mid-test, so each test owns the teardown via m.kill.
func startMember(t *testing.T, advertise, primary string, minSync int, ln net.Listener) *member {
	t.Helper()
	db, err := server.NewShardDatabase(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Open(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	rs := server.NewReplState(db, server.ReplConfig{
		Self:            advertise,
		Primary:         primary,
		MinSyncReplicas: minSync,
		SyncTimeout:     10 * time.Second,
		MaxStaleness:    time.Minute, // replicas answer in-test reads even while partitioned
	})
	db.SetLogger(obs.Discard)
	srv := server.Serve(ln, db, server.WithReplState(rs))
	srv.Log = nil
	rs.SetLogger(obs.Discard) // after Serve, which wires the server's logger
	node, err := StartNode(NodeConfig{
		DB: db, State: rs, Log: obs.Discard,
		FetchWait: 200 * time.Millisecond,
		Backoff:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &member{db: db, rs: rs, srv: srv, node: node, addr: advertise}
}

// kill tears the member down abruptly: listener and connections cut, the
// replication loop stopped. Safe to call once per member.
func (m *member) kill() {
	m.node.Close()
	m.srv.Close()
	m.rs.Close()
	m.db.Close()
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestChaosFailoverPreservesAckedIngests is the issue's acceptance
// scenario. A semi-sync primary (MinSyncReplicas=1) fronted by a fault
// proxy streams to two replicas. Clients ingest acknowledged batches; then
// the network partitions mid-ingest (an in-flight batch dies unacked), the
// primary is killed, and the sentinel must promote the most-caught-up
// replica. Every acknowledged batch must be present on the new primary,
// with Locate bit-identical to a golden database holding exactly the
// acknowledged history — and a client writing to the demoted fleet member
// must be redirected to the new primary transparently.
func TestChaosFailoverPreservesAckedIngests(t *testing.T) {
	testutil.CheckGoroutines(t)
	batches, perBatch := 8, 11
	if testing.Short() {
		batches = 4
	}
	// Enough mappings for the acked batches plus the lost and redirected
	// ones: (batches+2) * perBatch.
	ms := syntheticMappings(21, 48, 72)

	// Primary behind the fault proxy: every byte anyone exchanges with it —
	// client writes, replica fetches, sentinel probes — crosses the proxy,
	// so one switch partitions it from the whole world.
	lnP := listen(t)
	proxy, err := netsim.NewProxy(lnP.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	primary := startMember(t, proxy.Addr(), "", 1, lnP)
	primaryDead := false
	t.Cleanup(func() {
		if !primaryDead {
			primary.kill()
		}
	})

	lnA, lnB := listen(t), listen(t)
	ra := startMember(t, lnA.Addr().String(), proxy.Addr(), 1, lnA)
	rb := startMember(t, lnB.Addr().String(), proxy.Addr(), 1, lnB)
	t.Cleanup(ra.kill)
	t.Cleanup(rb.kill)

	sentinel, err := StartSentinel(SentinelConfig{
		Fleet:       []string{proxy.Addr(), ra.addr, rb.addr},
		Interval:    100 * time.Millisecond,
		DownAfter:   3,
		DialTimeout: 500 * time.Millisecond,
		Log:         obs.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sentinel.Close)

	// Phase 1: acknowledged ingests through the proxy. Semi-sync means each
	// ack proves the batch is durable on at least one replica.
	cli, err := server.Dial(proxy.Addr(), server.WithDialTimeout(2*time.Second), server.WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	var acked [][]server.Mapping
	for i := 0; i < batches; i++ {
		batch := ms[i*perBatch : (i+1)*perBatch]
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		_, err := cli.Ingest(ctx, batch)
		cancel()
		if err != nil {
			t.Fatalf("acked ingest %d failed: %v", i, err)
		}
		acked = append(acked, batch)
	}

	// Phase 2: partition the primary, then fire an ingest into the void —
	// it must fail, and being unacknowledged it is allowed to vanish.
	proxy.SetBlackhole(true)
	lost := ms[batches*perBatch : batches*perBatch+perBatch]
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if _, err := cli.Ingest(ctx, lost); err == nil {
		t.Fatal("ingest through a blackholed network succeeded")
	}
	cancel()

	// Kill the primary for real. The proxy dies with it, so redials fail
	// fast instead of hanging in the blackhole.
	primary.kill()
	primaryDead = true
	proxy.Close()

	// The sentinel must notice and promote whichever replica is most
	// caught up — with every acked batch semi-sync-replicated and no
	// further primary writes, that replica holds the full acked history.
	var newP, other *member
	waitFor(t, 15*time.Second, "sentinel promotion", func() bool {
		for _, m := range []*member{ra, rb} {
			if m.rs.Role() == server.RolePrimary {
				newP = m
				return true
			}
		}
		return false
	})
	if newP == ra {
		other = rb
	} else {
		other = ra
	}
	// The fleet began at epoch 0; the promotion must have advanced past it.
	if got := newP.rs.Epoch(); got < 1 {
		t.Fatalf("promoted replica at epoch %d, want >= 1", got)
	}
	waitFor(t, 10*time.Second, "demoted member to follow the new primary", func() bool {
		return other.rs.PrimaryAddr() == newP.addr && other.rs.Role() == server.RoleReplica
	})

	// A client writing to the wrong member must be redirected to the new
	// primary and succeed there (semi-sync: the other replica acks it).
	extra := ms[(batches+1)*perBatch : (batches+2)*perBatch]
	cli2, err := server.Dial(other.addr, server.WithDialTimeout(2*time.Second), server.WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli2.Close() })
	rctx, rcancel := context.WithTimeout(context.Background(), 15*time.Second)
	total, err := cli2.Ingest(rctx, extra)
	rcancel()
	if err != nil {
		t.Fatalf("redirected ingest failed: %v", err)
	}
	wantTotal := batches*perBatch + len(extra)
	if total != wantTotal {
		t.Fatalf("new primary holds %d mappings, want %d (acked history + redirected batch, nothing else)", total, wantTotal)
	}

	// Golden comparison: a fresh database fed exactly the acknowledged
	// history (plus the redirected batch) must answer Locate bit-identically
	// to the promoted primary — same position, same matches, same
	// everything. The unacknowledged batch must have left no trace.
	golden, err := server.NewShardDatabase(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range append(append([][]server.Mapping{}, acked...), extra) {
		if err := golden.Ingest(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []struct{ from, n int }{{0, 24}, {8, 16}} {
		kps := queryFrom(ms, q.from, q.n)
		want, errW := golden.Locate(context.Background(), kps, testIntrinsics())
		got, errG := newP.db.Locate(context.Background(), kps, testIntrinsics())
		if !errors.Is(errG, errW) && fmt.Sprint(errW) != fmt.Sprint(errG) {
			t.Fatalf("query [%d,%d): golden err %v, new primary err %v", q.from, q.from+q.n, errW, errG)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query [%d,%d): Locate diverged after failover:\ngolden %+v\nnew primary %+v", q.from, q.from+q.n, want, got)
		}
	}

	// Read scaling: once the surviving replica catches up with the
	// redirected batch, its Locate must match too.
	waitFor(t, 10*time.Second, "surviving replica to catch up", func() bool {
		return other.db.StoreSeq() == newP.db.StoreSeq()
	})
	kps := queryFrom(ms, 0, 24)
	want, _ := newP.db.Locate(context.Background(), kps, testIntrinsics())
	got, _ := other.db.Locate(context.Background(), kps, testIntrinsics())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replica Locate diverged from promoted primary:\nprimary %+v\nreplica %+v", want, got)
	}
}

// TestChaosFullSyncSurvivesFeedLossMidTransfer exercises the snapshot
// transfer path: a fresh replica joins a fleet whose primary has already
// compacted its WAL (so tailing from record 0 is impossible and a full
// snapshot transfer is the only way in), and the network feed dies in the
// middle of that transfer. The replica must restart the full-sync cleanly
// once the network heals and end byte-identical — same applied offset, same
// Locate answers — then keep tailing live ingests.
func TestChaosFullSyncSurvivesFeedLossMidTransfer(t *testing.T) {
	testutil.CheckGoroutines(t)
	ms := syntheticMappings(21, 48, 40)

	lnP := listen(t)
	proxy, err := netsim.NewProxy(lnP.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	primary := startMember(t, proxy.Addr(), "", 0, lnP)
	t.Cleanup(primary.kill)

	// Seed the primary and compact: the history now exists only as a
	// snapshot, so the replica below cannot tail from zero.
	for i := 0; i < 8; i++ {
		if err := primary.db.Ingest(context.Background(), ms[i*11:(i+1)*11]); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.db.Compact(); err != nil {
		t.Fatal(err)
	}

	// Slow the wire so the multi-megabyte snapshot blob crawls through the
	// proxy chunk by chunk — wide window to cut the feed mid-transfer.
	proxy.SetLatency(15 * time.Millisecond)

	lnR := listen(t)
	replica := startMember(t, lnR.Addr().String(), proxy.Addr(), 0, lnR)
	t.Cleanup(replica.kill)

	// The replica flips to candidate when the transfer starts; cut the
	// feed shortly after, while the blob is still trickling.
	waitFor(t, 10*time.Second, "replica to begin full-sync", func() bool {
		return replica.rs.Role() == server.RoleCandidate
	})
	time.Sleep(150 * time.Millisecond)
	proxy.Sever()
	proxy.SetRefuse(true) // the primary is unreachable, not just severed
	time.Sleep(300 * time.Millisecond)

	// Heal. The replica must restart the transfer from scratch on its own
	// (no half-installed state) and converge.
	proxy.SetRefuse(false)
	proxy.SetLatency(0)
	waitFor(t, 30*time.Second, "full-sync to complete after feed loss", func() bool {
		return replica.rs.Role() == server.RoleReplica &&
			replica.db.StoreSeq() == primary.db.StoreSeq()
	})

	compare := func(stage string) {
		t.Helper()
		for _, q := range []struct{ from, n int }{{0, 24}, {16, 24}} {
			kps := queryFrom(ms, q.from, q.n)
			want, errW := primary.db.Locate(context.Background(), kps, testIntrinsics())
			got, errG := replica.db.Locate(context.Background(), kps, testIntrinsics())
			if fmt.Sprint(errW) != fmt.Sprint(errG) {
				t.Fatalf("%s: query [%d,%d): primary err %v, replica err %v", stage, q.from, q.from+q.n, errW, errG)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: Locate diverged:\nprimary %+v\nreplica %+v", stage, want, got)
			}
		}
	}
	compare("after full-sync")

	// The synced replica must now tail live writes like any other.
	if err := primary.db.Ingest(context.Background(), ms[0:11]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica to tail the post-sync ingest", func() bool {
		return replica.db.StoreSeq() == primary.db.StoreSeq()
	})
	compare("after post-sync tail")
}
