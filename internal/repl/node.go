// Package repl runs the replication fleet: each server process embeds a
// Node that, whenever its role is replica, tails the primary's WAL and
// applies it locally, and an external Sentinel watches the fleet and
// promotes the most-caught-up replica when the primary dies.
//
// The data path is pull-based. A replica long-polls ReplFetch(from, ...)
// where from is its own durable record count — the request position doubles
// as the acknowledgement, so the primary's per-replica ack table needs no
// separate message. Fetched records are raw primary WAL payloads re-applied
// through the seq-tagged ingest path, whose deterministic re-encoding makes
// the replica's WAL — and therefore its Locate results — byte-identical to
// the primary's.
//
// A replica whose position the primary can no longer serve (records folded
// into a snapshot and compacted away), or whose own log may diverge from
// the fleet's history (it used to be the primary), restarts via full-sync:
// snapshot transfer, wipe, install, then tail from the snapshot's offset.
package repl

import (
	"context"
	"errors"
	"fmt"
	"time"

	"visualprint/internal/obs"
	"visualprint/internal/server"
)

// NodeConfig configures a fleet node's replication loop.
type NodeConfig struct {
	// DB is the node's database (must be a shard / seq-mode database).
	DB *server.Database
	// State is the node's replication control block, shared with the
	// serving layer (which gates writes and reads on its role).
	State *server.ReplState
	// Log receives role transitions and sync progress. Defaults to the
	// process logger.
	Log *obs.Logger

	// FetchMax bounds records per fetch batch. Default 512.
	FetchMax int
	// FetchWait is the long-poll window when caught up. Default 500ms.
	FetchWait time.Duration
	// DialTimeout bounds connecting to the primary. Default 2s.
	DialTimeout time.Duration
	// Backoff is the pause after a failed dial or broken stream before
	// retrying. Default 200ms.
	Backoff time.Duration
}

// Node is the per-process replication runner. While the node's role is
// replica it tails the primary; while primary (or unconfigured) it idles
// waiting for a role change. Promotion and demotion arrive through the
// shared ReplState (driven by the sentinel's RPCs), so the loop reacts to
// them between batches.
type Node struct {
	cfg    NodeConfig
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// StartNode launches the replication loop. Close stops it.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.DB == nil || cfg.State == nil {
		return nil, errors.New("repl: NodeConfig requires DB and State")
	}
	if cfg.Log == nil {
		cfg.Log = obs.Default()
	}
	if cfg.FetchMax <= 0 {
		cfg.FetchMax = 512
	}
	if cfg.FetchWait <= 0 {
		cfg.FetchWait = 500 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 200 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{cfg: cfg, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	go n.run()
	return n, nil
}

// Close stops the loop and waits for it to exit.
func (n *Node) Close() {
	n.cancel()
	<-n.done
}

// run alternates between idling (primary role) and following (replica
// role), re-evaluating on every role/primary change.
func (n *Node) run() {
	defer close(n.done)
	for n.ctx.Err() == nil {
		st := n.cfg.State
		ch := st.Changed()
		role, primary, self := st.Role(), st.PrimaryAddr(), st.Self()
		if role == server.RolePrimary || primary == "" || primary == self {
			select {
			case <-n.ctx.Done():
				return
			case <-ch:
			}
			continue
		}
		n.follow(primary)
	}
}

// follow tails one primary until the stream breaks, the role changes, or
// the node is told to follow someone else.
func (n *Node) follow(primary string) {
	st, db, lg := n.cfg.State, n.cfg.DB, n.cfg.Log
	ch := st.Changed()
	dialCtx, cancel := context.WithTimeout(n.ctx, n.cfg.DialTimeout)
	cli, err := server.DialContext(dialCtx, primary,
		server.WithDialTimeout(n.cfg.DialTimeout), server.WithLogger(obs.Discard))
	cancel()
	if err != nil {
		lg.Warnf("repl: node %s: dialing primary %s: %v", st.Self(), primary, err)
		n.pause()
		return
	}
	defer cli.Close()

	for {
		select {
		case <-n.ctx.Done():
			return
		case <-ch:
			return // role or primary changed; re-evaluate in run
		default:
		}
		if st.Role() != server.RoleReplica && st.Role() != server.RoleCandidate {
			return
		}
		if st.FullSyncPending() {
			// This node's log may hold records from a dead history (it was
			// demoted from primary); tailing from the local offset would
			// interleave histories. Restart from a snapshot.
			if err := n.fullSync(cli); err != nil {
				lg.Warnf("repl: node %s: full-sync from %s: %v", st.Self(), primary, err)
				n.pause()
				return
			}
			continue
		}

		from := db.StoreSeq()
		fetchCtx, cancel := context.WithTimeout(n.ctx, n.cfg.FetchWait+5*time.Second)
		batch, err := cli.ReplFetch(fetchCtx, from, n.cfg.FetchMax, n.cfg.FetchWait, st.Self())
		cancel()
		if err != nil {
			var npe *server.NotPrimaryError
			switch {
			case errors.As(err, &npe):
				// The fleet moved on; chase the redirect (or wait for the
				// sentinel if the ex-primary doesn't know the successor).
				if npe.Primary != "" && npe.Primary != primary {
					st.FollowHint(npe.Primary)
				}
				return
			case server.IsReplCompacted(err):
				// Our position predates the primary's earliest retained
				// record. Full-sync and continue on the same connection.
				if err := n.fullSync(cli); err != nil {
					lg.Warnf("repl: node %s: full-sync from %s: %v", st.Self(), primary, err)
					n.pause()
					return
				}
				continue
			case n.ctx.Err() != nil:
				return
			default:
				lg.Warnf("repl: node %s: fetch from %s at %d: %v", st.Self(), primary, from, err)
				n.pause()
				return
			}
		}
		st.Touch()
		if batch.FirstSeq != from {
			// Defensive: the primary answered a different position than
			// asked. Treat like divergence and resync.
			lg.Warnf("repl: node %s: primary %s answered position %d for request %d; resyncing", st.Self(), primary, batch.FirstSeq, from)
			if err := n.fullSync(cli); err != nil {
				n.pause()
				return
			}
			continue
		}
		if len(batch.Records) > 0 {
			if err := db.ApplyReplRecords(n.ctx, batch.Records); err != nil {
				lg.Errorf("repl: node %s: applying batch at %d: %v", st.Self(), from, err)
				// An apply failure means local state disagrees with the
				// stream (e.g. seq collision after divergence); rebuilding
				// from a snapshot is the only safe recovery.
				if err := n.fullSync(cli); err != nil {
					n.pause()
					return
				}
			}
		}
	}
}

// fullSync rebuilds the local database from the primary's snapshot: the
// node flips to candidate (reads redirect for the duration), transfers the
// blob, wipes its directory, installs, and recovers. On any failure the
// node stays marked for full-sync, so a killed primary mid-transfer just
// means a clean restart of the transfer against its successor.
func (n *Node) fullSync(cli *server.Client) error {
	st, db, lg := n.cfg.State, n.cfg.DB, n.cfg.Log
	st.BeginSync()
	t0 := time.Now()
	snapCtx, cancel := context.WithTimeout(n.ctx, 10*time.Minute)
	seq, blob, err := cli.ReplSnapshot(snapCtx)
	cancel()
	if err != nil {
		return fmt.Errorf("snapshot transfer: %w", err)
	}
	if err := db.ReplaceFromSnapshot(seq, blob); err != nil {
		return fmt.Errorf("installing snapshot at %d: %w", seq, err)
	}
	st.EndSync()
	st.Touch()
	lg.Infof("repl: node %s: full-sync complete at offset %d (%d bytes in %v)",
		st.Self(), seq, len(blob), time.Since(t0).Round(time.Millisecond))
	return nil
}

// pause sleeps the backoff, returning early on shutdown.
func (n *Node) pause() {
	t := time.NewTimer(n.cfg.Backoff)
	defer t.Stop()
	select {
	case <-n.ctx.Done():
	case <-t.C:
	}
}
