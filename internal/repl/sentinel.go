package repl

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"visualprint/internal/obs"
	"visualprint/internal/server"
)

// Sentinel watches a replication fleet and repairs it: when the primary
// stays unreachable for DownAfter consecutive probe rounds it promotes the
// most-caught-up reachable replica at a fresh epoch and points the rest of
// the fleet at it; when a stale ex-primary reappears it is demoted into the
// current epoch. One sentinel per fleet is assumed — epochs make concurrent
// sentinels safe (servers reject stale epochs) but not coordinated.
//
// Promotion picks the reachable replica with the highest applied offset.
// Because replication streams a single linear log, the highest offset is a
// superset of every lower one, and a semi-sync primary only acknowledged an
// ingest once it was durable on MinSyncReplicas replicas — so as long as
// fewer than MinSyncReplicas replicas are lost together with the primary,
// every client-acknowledged ingest is inside the winner's prefix.
type SentinelConfig struct {
	// Fleet is every member's advertised address, primary included.
	Fleet []string
	// Interval is the probe period. Default 500ms.
	Interval time.Duration
	// DownAfter is how many consecutive rounds without a reachable primary
	// trigger failover. Default 3.
	DownAfter int
	// DialTimeout bounds each probe's dial+RPC. Default 1s.
	DialTimeout time.Duration
	// Log receives probe failures and failover decisions. Defaults to the
	// process logger.
	Log *obs.Logger
}

// Sentinel is the fleet watcher. Start with StartSentinel, stop with Close.
type Sentinel struct {
	cfg    SentinelConfig
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	misses    int
	failovers int
	lastSeen  string // last known-good primary address, for logs
}

// StartSentinel launches the watch loop over the configured fleet.
func StartSentinel(cfg SentinelConfig) (*Sentinel, error) {
	if len(cfg.Fleet) == 0 {
		return nil, errors.New("repl: SentinelConfig requires a fleet")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.Log == nil {
		cfg.Log = obs.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Sentinel{cfg: cfg, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	go s.run()
	return s, nil
}

// Close stops the watch loop and waits for it to exit.
func (s *Sentinel) Close() {
	s.cancel()
	<-s.done
}

// Failovers reports how many promotions this sentinel has performed.
func (s *Sentinel) Failovers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failovers
}

func (s *Sentinel) run() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		s.round()
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probe is one fleet member's answer (or lack of one) in a round.
type probe struct {
	addr string
	st   server.ReplStatus
	ok   bool
}

// round probes every member once and acts on the aggregate picture.
func (s *Sentinel) round() {
	probes := s.probeAll()
	var maxEpoch uint64
	var primaries, replicas []probe
	for _, p := range probes {
		if !p.ok {
			continue
		}
		if p.st.Epoch > maxEpoch {
			maxEpoch = p.st.Epoch
		}
		switch p.st.Role {
		case server.RolePrimary:
			primaries = append(primaries, p)
		case server.RoleReplica:
			replicas = append(replicas, p)
		}
	}

	if len(primaries) > 0 {
		// The authoritative primary is the one at the highest epoch; any
		// other self-styled primary is a stale survivor of an old epoch.
		sort.Slice(primaries, func(i, j int) bool {
			if primaries[i].st.Epoch != primaries[j].st.Epoch {
				return primaries[i].st.Epoch > primaries[j].st.Epoch
			}
			return primaries[i].addr < primaries[j].addr
		})
		lead := primaries[0]
		s.mu.Lock()
		s.misses = 0
		s.lastSeen = lead.addr
		s.mu.Unlock()
		for _, p := range primaries[1:] {
			s.cfg.Log.Warnf("repl: sentinel: demoting stale primary %s (epoch %d) under %s (epoch %d)",
				p.addr, p.st.Epoch, lead.addr, lead.st.Epoch)
			s.follow(p.addr, lead.st.Epoch, lead.addr)
		}
		// Heal replicas pointed at the wrong primary (e.g. restarted with a
		// stale -primary flag, or still following the demoted node).
		for _, p := range replicas {
			if p.st.Primary != lead.addr && p.st.Epoch <= lead.st.Epoch {
				s.follow(p.addr, lead.st.Epoch, lead.addr)
			}
		}
		return
	}

	// No reachable primary this round.
	s.mu.Lock()
	s.misses++
	misses, last := s.misses, s.lastSeen
	s.mu.Unlock()
	if misses < s.cfg.DownAfter || len(replicas) == 0 {
		if len(replicas) == 0 && misses >= s.cfg.DownAfter {
			s.cfg.Log.Warnf("repl: sentinel: primary %s down %d rounds but no reachable replica to promote", last, misses)
		}
		return
	}

	// Failover: promote the most-caught-up replica at a fresh epoch.
	// (Candidates — replicas mid-full-sync — are excluded: their applied
	// offset describes a half-replaced database.)
	sort.Slice(replicas, func(i, j int) bool {
		if replicas[i].st.Applied != replicas[j].st.Applied {
			return replicas[i].st.Applied > replicas[j].st.Applied
		}
		return replicas[i].addr < replicas[j].addr
	})
	winner := replicas[0]
	newEpoch := maxEpoch + 1
	s.cfg.Log.Warnf("repl: sentinel: primary %s unreachable for %d rounds; promoting %s (applied %d) at epoch %d",
		last, misses, winner.addr, winner.st.Applied, newEpoch)
	if err := s.promote(winner.addr, newEpoch); err != nil {
		s.cfg.Log.Errorf("repl: sentinel: promoting %s: %v", winner.addr, err)
		return // keep counting misses; retry next round
	}
	s.mu.Lock()
	s.misses = 0
	s.failovers++
	s.lastSeen = winner.addr
	s.mu.Unlock()
	for _, p := range replicas[1:] {
		s.follow(p.addr, newEpoch, winner.addr)
	}
}

// probeAll asks every fleet member for its replication state, in parallel.
func (s *Sentinel) probeAll() []probe {
	out := make([]probe, len(s.cfg.Fleet))
	var wg sync.WaitGroup
	for i, addr := range s.cfg.Fleet {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i] = probe{addr: addr}
			st, err := withClient(s, addr, func(ctx context.Context, c *server.Client) (server.ReplStatus, error) {
				return c.ReplStatus(ctx)
			})
			if err != nil {
				return
			}
			out[i].st, out[i].ok = st, true
		}(i, addr)
	}
	wg.Wait()
	return out
}

// promote tells addr to become the primary at epoch.
func (s *Sentinel) promote(addr string, epoch uint64) error {
	_, err := withClient(s, addr, func(ctx context.Context, c *server.Client) (struct{}, error) {
		return struct{}{}, c.ReplPromote(ctx, epoch)
	})
	return err
}

// follow tells addr that primary leads the fleet as of epoch. Failures are
// logged, not fatal: an unreachable member learns the new primary from its
// own redirect handling or a later sentinel round.
func (s *Sentinel) follow(addr string, epoch uint64, primary string) {
	_, err := withClient(s, addr, func(ctx context.Context, c *server.Client) (struct{}, error) {
		return struct{}{}, c.ReplFollow(ctx, epoch, primary)
	})
	if err != nil {
		s.cfg.Log.Warnf("repl: sentinel: pointing %s at %s: %v", addr, primary, err)
	}
}

// withClient dials addr, runs fn under the probe timeout, and closes the
// connection. Every sentinel RPC is a fresh short-lived connection so a
// wedged member can't wedge the watch loop.
func withClient[T any](s *Sentinel, addr string, fn func(context.Context, *server.Client) (T, error)) (T, error) {
	var zero T
	ctx, cancel := context.WithTimeout(s.ctx, s.cfg.DialTimeout)
	defer cancel()
	c, err := server.DialContext(ctx, addr,
		server.WithDialTimeout(s.cfg.DialTimeout), server.WithLogger(obs.Discard))
	if err != nil {
		return zero, err
	}
	defer c.Close()
	return fn(ctx, c)
}
