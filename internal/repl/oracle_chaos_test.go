package repl

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"visualprint/internal/core"
	"visualprint/internal/netsim"
	"visualprint/internal/obs"
	"visualprint/internal/server"
	"visualprint/internal/testutil"
)

func oracleBytes(t testing.TB, o *core.Oracle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosOracleWatchSurvivesPrimaryKill is the oracle-distribution
// failover scenario: a client watches a replica's oracle stream while the
// primary feeds the fleet, then — mid-delta-stream — the client's own link
// is severed AND the primary is killed. The sentinel promotes, writes
// resume on the new primary, and the watch must resubscribe on its own and
// converge to an oracle byte-equal to the new primary's, with the version
// history intact across the failover (replicas replay the identical WAL,
// so epochs agree fleet-wide).
func TestChaosOracleWatchSurvivesPrimaryKill(t *testing.T) {
	testutil.CheckGoroutines(t)
	ms := syntheticMappings(33, 48, 96)
	perBatch := 9

	// Primary behind its fault proxy (so killing it severs the fleet feed
	// abruptly), replicas direct.
	lnP := listen(t)
	proxyP, err := netsim.NewProxy(lnP.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxyP.Close() })
	primary := startMember(t, proxyP.Addr(), "", 1, lnP)
	primaryDead := false
	t.Cleanup(func() {
		if !primaryDead {
			primary.kill()
		}
	})
	lnA, lnB := listen(t), listen(t)
	ra := startMember(t, lnA.Addr().String(), proxyP.Addr(), 1, lnA)
	rb := startMember(t, lnB.Addr().String(), proxyP.Addr(), 1, lnB)
	t.Cleanup(ra.kill)
	t.Cleanup(rb.kill)
	sentinel, err := StartSentinel(SentinelConfig{
		Fleet:       []string{proxyP.Addr(), ra.addr, rb.addr},
		Interval:    100 * time.Millisecond,
		DownAfter:   3,
		DialTimeout: 500 * time.Millisecond,
		Log:         obs.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sentinel.Close)

	// The watching client reads from replica A through its own proxy, so
	// its subscription stream can be cut independently of the fleet feed.
	proxyC, err := netsim.NewProxy(ra.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxyC.Close() })
	cli, err := server.Dial(proxyC.Addr(), server.WithDialTimeout(2*time.Second), server.WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := cli.OracleSync()
	updates, err := h.Watch(ctx)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	// Drain updates into a latest-state cell; the watch coalesces, the
	// test only cares about convergence.
	var (
		mu     sync.Mutex
		latest server.OracleUpdate
		done   = make(chan struct{})
	)
	go func() {
		defer close(done)
		for u := range updates {
			mu.Lock()
			latest = u
			mu.Unlock()
		}
	}()
	snap := func() server.OracleUpdate {
		mu.Lock()
		defer mu.Unlock()
		return latest
	}

	// Phase 1: acked ingests through the primary; the watch must track the
	// replica's replayed epochs — this is the live delta stream.
	wcli, err := server.Dial(proxyP.Addr(), server.WithDialTimeout(2*time.Second), server.WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wcli.Close() })
	for i := 0; i < 4; i++ {
		ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
		_, err := wcli.Ingest(ictx, ms[i*perBatch:(i+1)*perBatch])
		icancel()
		if err != nil {
			t.Fatalf("acked ingest %d: %v", i, err)
		}
	}
	waitFor(t, 15*time.Second, "watch to reach the pre-kill state", func() bool {
		u := snap()
		if u.Err != nil || u.Oracle == nil {
			return false
		}
		wantEpoch, _ := ra.db.OracleEpoch()
		return u.Epoch == wantEpoch && ra.db.StoreSeq() == primary.db.StoreSeq()
	})

	// Phase 2: cut the client's stream and kill the primary at once — the
	// subscription dies mid-delta-stream exactly as the fleet loses its
	// writer.
	proxyC.Sever()
	proxyP.SetBlackhole(true)
	primary.kill()
	primaryDead = true
	proxyP.Close()

	var newP *member
	waitFor(t, 15*time.Second, "sentinel promotion", func() bool {
		for _, m := range []*member{ra, rb} {
			if m.rs.Role() == server.RolePrimary {
				newP = m
				return true
			}
		}
		return false
	})

	// Phase 3: writes resume on the promoted primary; the resubscribed
	// watch must converge byte-equal to the new primary's oracle.
	extra := ms[4*perBatch : 6*perBatch]
	wcli2, err := server.Dial(newP.addr, server.WithDialTimeout(2*time.Second), server.WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wcli2.Close() })
	ictx, icancel := context.WithTimeout(context.Background(), 15*time.Second)
	_, err = wcli2.Ingest(ictx, extra)
	icancel()
	if err != nil {
		t.Fatalf("post-failover ingest: %v", err)
	}
	want := oracleBytes(t, newP.db.Oracle())
	waitFor(t, 30*time.Second, "watch to converge on the post-failover oracle", func() bool {
		u := snap()
		if u.Err != nil {
			t.Fatalf("watch failed instead of resubscribing: %v", u.Err)
		}
		return u.Oracle != nil && bytes.Equal(oracleBytes(t, u.Oracle), want)
	})
	wantEpoch, wantInserts := newP.db.OracleEpoch()
	u := snap()
	if u.Epoch != wantEpoch || u.Inserts != wantInserts {
		t.Fatalf("converged update at version (%d, %d), fleet at (%d, %d): epoch history broke across failover",
			u.Epoch, u.Inserts, wantEpoch, wantInserts)
	}

	// Clean teardown: cancel closes the update channel.
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("update channel not closed after cancel")
	}
}
