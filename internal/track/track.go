// Package track is the server-side continuous-localization session store:
// a bounded, TTL-evicted table of recent pose fixes per client session,
// plus a constant-velocity motion model that turns those fixes into a
// predicted pose + uncertainty radius — the prior that warm-starts the
// next differential-evolution solve (pose.Options.PriorPos/PriorRadius).
//
// MobileARLoc (PAPERS.md) is the production shape being reproduced:
// absolute localization fused with an on-device pose prior. Here the prior
// lives server-side, keyed by an opaque client-chosen session ID carried
// in the wire envelope (see internal/server msgSessionEx), so the client
// protocol stays a plain fingerprint upload.
//
// The table is lock-sharded: Locate's RCU read path holds no database
// lock, and the session lookup riding on it must not reintroduce one
// global serialization point. Each shard owns a map plus an intrusive LRU
// list; eviction (capacity and TTL) is amortized inline on the accessing
// shard — no background goroutine, so the package is trivially
// leak-checker clean.
package track

import (
	"sync"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/obs"
)

// Config sizes the session table and tunes the motion-model prior and the
// warm solve built from it. The zero value is usable: New applies the
// documented defaults to every zero field.
type Config struct {
	// Capacity bounds the total tracked sessions; the least-recently-used
	// session of the arriving session's shard is evicted past it.
	// Default 4096.
	Capacity int
	// TTL evicts sessions idle longer than this (a user who stopped
	// localizing). Default 2 minutes.
	TTL time.Duration
	// Shards is the lock-shard count (rounded up to a power of two).
	// Default 16.
	Shards int
	// History is the number of pose fixes retained per session.
	// Default 8.
	History int
	// BaseRadius is the prior half-width (meters) for a stationary,
	// just-observed session; prediction uncertainty (fix age, speed,
	// missing velocity estimate) scales it up from there. Default 0.08 —
	// at continuous-tracking frame rates the constant-velocity prediction
	// is millimeter-accurate, and a wrong prior is caught by the
	// acceptance gate and re-solved cold.
	BaseRadius float64
	// MaxRadius caps the prior half-width as uncertainty grows with
	// speed and fix age. Default 2.5.
	MaxRadius float64
	// MaxSpeed clamps the motion-model velocity estimate (meters/second)
	// against corrupt timestamps or teleporting fixes. Default 3.
	MaxSpeed float64
	// MaxPredictAge disables prediction when the last fix is older than
	// this — the extrapolation would be guesswork. Default 2 seconds.
	MaxPredictAge time.Duration
	// AcceptResidual is the floor of the warm-solve acceptance gate: a
	// warm result whose mean per-pair residual (radians) exceeds
	// max(AcceptResidual, minResidual*AcceptFactor) — minResidual being
	// the best residual across the session's retained fixes — is
	// discarded and the request falls back to the cold solve. The floor
	// covers near-perfect corpora where the session's residuals are ~0.
	// Default 0.02.
	AcceptResidual float64
	// AcceptFactor scales the session's best retained residual into the
	// acceptance gate — the achievable residual is a property of the
	// corpus (descriptor mismatch noise), not of the solver, so "as good
	// as the session's recent fixes, within slack" is the meaningful test
	// of a correct prior. Anchoring on the window minimum rather than the
	// last fix keeps the gate from ratcheting looser frame over frame.
	// Default 1.5.
	AcceptFactor float64
	// WarmMinResidual is the floor of the warm solve's absolute
	// early-convergence stop (pose.Options.MinResidual). Default 3e-4.
	WarmMinResidual float64
	// WarmStopFactor scales the session's best retained residual into the
	// early stop: the warm solve halts once it is clearly better than
	// every recent fix (below the window minimum by this factor) — a
	// conservative shortcut that cannot compound error along a
	// trajectory the way "within slack of the last fix" would. On
	// corpora where the residual floor is noise-dominated the stop
	// simply never fires and the solve converges via WarmTol. Default 0.5.
	WarmStopFactor float64
	// WarmTol overrides the pose solver's population-convergence tolerance
	// (pose.Options.Tol) for warm solves. Default 0.0007 — tighter than
	// the cold default 0.001: inside the shrunk prior box the extra polish
	// costs a handful of generations and roughly halves the median pose
	// error on the walk benchmark, so warm answers beat cold ones instead
	// of merely matching them. Loosening it trades accuracy back for
	// generations.
	WarmTol float64
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		Capacity:        4096,
		TTL:             2 * time.Minute,
		Shards:          16,
		History:         8,
		BaseRadius:      0.08,
		MaxRadius:       2.5,
		MaxSpeed:        3,
		MaxPredictAge:   2 * time.Second,
		AcceptResidual:  0.02,
		AcceptFactor:    1.5,
		WarmMinResidual: 3e-4,
		WarmStopFactor:  0.5,
		WarmTol:         0.0007,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Capacity <= 0 {
		c.Capacity = d.Capacity
	}
	if c.TTL <= 0 {
		c.TTL = d.TTL
	}
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	for c.Shards&(c.Shards-1) != 0 {
		c.Shards++
	}
	if c.History <= 0 {
		c.History = d.History
	}
	if c.BaseRadius <= 0 {
		c.BaseRadius = d.BaseRadius
	}
	if c.MaxRadius < c.BaseRadius {
		c.MaxRadius = d.MaxRadius
	}
	if c.MaxSpeed <= 0 {
		c.MaxSpeed = d.MaxSpeed
	}
	if c.MaxPredictAge <= 0 {
		c.MaxPredictAge = d.MaxPredictAge
	}
	if c.AcceptResidual <= 0 {
		c.AcceptResidual = d.AcceptResidual
	}
	if c.AcceptFactor <= 0 {
		c.AcceptFactor = d.AcceptFactor
	}
	if c.WarmMinResidual <= 0 {
		c.WarmMinResidual = d.WarmMinResidual
	}
	if c.WarmStopFactor <= 0 {
		c.WarmStopFactor = d.WarmStopFactor
	}
	if c.WarmTol <= 0 {
		c.WarmTol = d.WarmTol
	}
	return c
}

// Prior is a predicted camera pose with an uncertainty half-width — the
// warm start handed to the pose solver. Residual is the session's best
// retained solve quality (minimum mean radians per pair across the fix
// history), the baseline the warm solve's acceptance gate and early stop
// are scaled from.
type Prior struct {
	Pos      mathx.Vec3
	Yaw      float64
	Radius   float64
	Residual float64
}

// fix is one accepted localization result.
type fix struct {
	pos      mathx.Vec3
	yaw      float64
	residual float64
	at       time.Time
}

// session is one tracked client; owned by exactly one shard, manipulated
// only under that shard's lock.
type session struct {
	id   uint64
	ring []fix // capacity Config.History
	n    int   // fixes stored (<= cap)
	head int   // next write slot
	last time.Time
	// intrusive LRU list (most-recent at the shard's front)
	prev, next *session
}

// latest returns the i-th most recent fix (0 = newest). Caller guarantees
// i < n.
func (s *session) latest(i int) fix {
	idx := (s.head - 1 - i + 2*len(s.ring)) % len(s.ring)
	return s.ring[idx]
}

type shard struct {
	mu    sync.Mutex
	m     map[uint64]*session
	front *session // most recently used
	back  *session // least recently used
	_     [32]byte // keep neighboring shards off one cache line
}

// Table is the lock-sharded session store. All methods are safe for
// concurrent use.
type Table struct {
	cfg      Config
	perShard int
	shards   []shard

	// Metrics are nil-safe no-ops until Instrument is called.
	sessions  *obs.Gauge
	created   *obs.Counter
	evictions *obs.Counter
	expired   *obs.Counter
}

// New builds a table with cfg (zero fields defaulted).
func New(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{cfg: cfg, shards: make([]shard, cfg.Shards)}
	t.perShard = (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	if t.perShard < 1 {
		t.perShard = 1
	}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*session)
	}
	return t
}

// Config returns the effective (defaulted) configuration.
func (t *Table) Config() Config { return t.cfg }

// Instrument registers the table's metrics on reg:
//
//	track_sessions        gauge    currently tracked sessions
//	track_created         counter  sessions ever created
//	track_evicted         counter  capacity evictions (LRU)
//	track_expired         counter  TTL expiries
func (t *Table) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.sessions = reg.Gauge("track_sessions")
	t.created = reg.Counter("track_created")
	t.evictions = reg.Counter("track_evicted")
	t.expired = reg.Counter("track_expired")
}

func (t *Table) shardFor(id uint64) *shard {
	// Fibonacci hash: session IDs are client-chosen and may be sequential.
	// The shard count is a power of two, so the upper mixed bits mask down.
	h := id * 0x9e3779b97f4a7c15
	return &t.shards[(h>>32)&uint64(len(t.shards)-1)]
}

// Observe records an accepted localization fix for id, creating the
// session on first contact (evicting the shard's LRU session past
// capacity) and opportunistically expiring idle sessions on the same
// shard.
func (t *Table) Observe(id uint64, pos mathx.Vec3, yaw, residual float64, now time.Time) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	t.sweepLocked(sh, now)
	s := sh.m[id]
	if s == nil {
		if len(sh.m) >= t.perShard {
			t.evictLocked(sh, sh.back)
			t.evictions.Inc()
		}
		s = &session{id: id, ring: make([]fix, t.cfg.History)}
		sh.m[id] = s
		t.created.Inc()
		t.sessions.Add(1)
	}
	s.ring[s.head] = fix{pos: pos, yaw: yaw, residual: residual, at: now}
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.last = now
	t.touchLocked(sh, s)
	sh.mu.Unlock()
}

// Predict extrapolates id's next pose at time now with the
// constant-velocity model over the two most recent fixes (position hold
// with a single fix). It returns false when the session is unknown,
// TTL-expired, or its last fix is older than MaxPredictAge. The returned
// radius grows with estimated speed and fix age from BaseRadius up to
// MaxRadius.
func (t *Table) Predict(id uint64, now time.Time) (Prior, bool) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.m[id]
	if s == nil || s.n == 0 {
		return Prior{}, false
	}
	if now.Sub(s.last) > t.cfg.TTL {
		t.evictLocked(sh, s)
		t.expired.Inc()
		return Prior{}, false
	}
	newest := s.latest(0)
	age := now.Sub(newest.at)
	if age < 0 {
		age = 0
	}
	if age > t.cfg.MaxPredictAge {
		return Prior{}, false
	}
	t.touchLocked(sh, s)
	ageS := age.Seconds()
	// The residual anchor is the best (minimum) residual across the
	// retained fixes, not the newest: an anchor that can only improve
	// within the window keeps the residual-relative gates from ratcheting
	// looser fix over fix along a trajectory, while eviction of old fixes
	// still lets it adapt when the device walks into a noisier area.
	minRes := newest.residual
	for i := 1; i < s.n; i++ {
		if r := s.latest(i).residual; r < minRes {
			minRes = r
		}
	}
	p := Prior{Pos: newest.pos, Yaw: newest.yaw, Radius: t.cfg.BaseRadius, Residual: minRes}
	speed, haveVel := 0.0, false
	if s.n >= 2 {
		prevFix := s.latest(1)
		dt := newest.at.Sub(prevFix.at).Seconds()
		if dt > 0 {
			haveVel = true
			v := newest.pos.Sub(prevFix.pos).Scale(1 / dt)
			speed = v.Norm()
			if speed > t.cfg.MaxSpeed {
				v = v.Scale(t.cfg.MaxSpeed / speed)
				speed = t.cfg.MaxSpeed
			}
			p.Pos = p.Pos.Add(v.Scale(ageS))
		}
	}
	// Uncertainty: half a base width per traveled meter of extrapolation,
	// plus a stationary floor that grows as the fix ages.
	p.Radius = t.cfg.BaseRadius * (1 + ageS + speed*ageS)
	if !haveVel {
		// Single fix: the velocity is unknown, so a position-hold prior's
		// true uncertainty is however far the device can have walked —
		// without this the second frame of a brisk walk lands outside the
		// base box and the clipped solve carries centimeters of error.
		p.Radius += t.cfg.MaxSpeed * ageS
	}
	if p.Radius > t.cfg.MaxRadius {
		p.Radius = t.cfg.MaxRadius
	}
	return p, true
}

// Forget drops id's session, if present.
func (t *Table) Forget(id uint64) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	if s := sh.m[id]; s != nil {
		t.evictLocked(sh, s)
	}
	sh.mu.Unlock()
}

// Len returns the number of tracked sessions.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// ExpireIdle sweeps every shard, evicting sessions idle past the TTL, and
// returns how many it removed. Eviction is otherwise amortized inline on
// shard access; this full sweep exists for tests and operators.
func (t *Table) ExpireIdle(now time.Time) int {
	total := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for sh.back != nil && now.Sub(sh.back.last) > t.cfg.TTL {
			t.evictLocked(sh, sh.back)
			t.expired.Inc()
			total++
		}
		sh.mu.Unlock()
	}
	return total
}

// sweepLocked expires up to two idle sessions from the shard's LRU tail —
// O(1) amortized TTL enforcement riding on normal traffic.
func (t *Table) sweepLocked(sh *shard, now time.Time) {
	for i := 0; i < 2; i++ {
		s := sh.back
		if s == nil || now.Sub(s.last) <= t.cfg.TTL {
			return
		}
		t.evictLocked(sh, s)
		t.expired.Inc()
	}
}

// touchLocked moves s to the shard's LRU front.
func (t *Table) touchLocked(sh *shard, s *session) {
	if sh.front == s {
		return
	}
	// unlink
	if s.prev != nil {
		s.prev.next = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	}
	if sh.back == s {
		sh.back = s.prev
	}
	// push front
	s.prev = nil
	s.next = sh.front
	if sh.front != nil {
		sh.front.prev = s
	}
	sh.front = s
	if sh.back == nil {
		sh.back = s
	}
}

// evictLocked removes s from the shard's map and LRU list.
func (t *Table) evictLocked(sh *shard, s *session) {
	if s == nil {
		return
	}
	delete(sh.m, s.id)
	if s.prev != nil {
		s.prev.next = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	}
	if sh.front == s {
		sh.front = s.next
	}
	if sh.back == s {
		sh.back = s.prev
	}
	s.prev, s.next = nil, nil
	t.sessions.Add(-1)
}
