package track

import (
	"math"
	"os"
	"testing"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/obs"
	"visualprint/internal/testutil"
)

// TestMain sweeps for leaked goroutines after the whole package (the table
// must run no background loops — eviction is amortized inline).
func TestMain(m *testing.M) {
	code := m.Run()
	if err := testutil.VerifyNone(); err != nil {
		os.Stderr.WriteString(err.Error() + "\n")
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

var t0 = time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)

func TestPredictUnknownSession(t *testing.T) {
	tb := New(Config{})
	if _, ok := tb.Predict(42, t0); ok {
		t.Fatal("prediction for a never-observed session")
	}
}

func TestSingleFixHoldsPosition(t *testing.T) {
	tb := New(Config{})
	pos := mathx.Vec3{X: 3, Y: 1.5, Z: 4}
	tb.Observe(7, pos, 0.25, 0.01, t0)
	p, ok := tb.Predict(7, t0.Add(100*time.Millisecond))
	if !ok {
		t.Fatal("no prediction after one fix")
	}
	if p.Pos != pos {
		t.Fatalf("single-fix prediction moved: %+v != %+v", p.Pos, pos)
	}
	if p.Yaw != 0.25 {
		t.Fatalf("yaw %v != 0.25", p.Yaw)
	}
	if p.Radius < tb.Config().BaseRadius {
		t.Fatalf("radius %v below base %v", p.Radius, tb.Config().BaseRadius)
	}
}

func TestConstantVelocityExtrapolation(t *testing.T) {
	tb := New(Config{})
	// 1 m/s along +X: fixes at t0 and t0+1s, predict at t0+1.5s.
	tb.Observe(9, mathx.Vec3{X: 1, Y: 1.5, Z: 2}, 0, 0.01, t0)
	tb.Observe(9, mathx.Vec3{X: 2, Y: 1.5, Z: 2}, 0, 0.01, t0.Add(time.Second))
	p, ok := tb.Predict(9, t0.Add(1500*time.Millisecond))
	if !ok {
		t.Fatal("no prediction")
	}
	want := mathx.Vec3{X: 2.5, Y: 1.5, Z: 2}
	if p.Pos.Dist(want) > 1e-9 {
		t.Fatalf("predicted %+v, want %+v", p.Pos, want)
	}
	// A faster walk at the same age must widen the radius.
	tb.Observe(11, mathx.Vec3{X: 1, Y: 1.5, Z: 2}, 0, 0.01, t0)
	tb.Observe(11, mathx.Vec3{X: 3.5, Y: 1.5, Z: 2}, 0, 0.01, t0.Add(time.Second))
	q, ok := tb.Predict(11, t0.Add(1500*time.Millisecond))
	if !ok {
		t.Fatal("no prediction for fast walker")
	}
	if q.Radius <= p.Radius {
		t.Fatalf("faster motion did not widen radius: %v <= %v", q.Radius, p.Radius)
	}
}

func TestSpeedClampAndRadiusCap(t *testing.T) {
	cfg := DefaultConfig()
	tb := New(Config{})
	// A 100 m jump in 100 ms — corrupt or teleporting. Speed clamps to
	// MaxSpeed, so extrapolation stays bounded.
	tb.Observe(5, mathx.Vec3{}, 0, 0.01, t0)
	tb.Observe(5, mathx.Vec3{X: 100}, 0, 0.01, t0.Add(100*time.Millisecond))
	p, ok := tb.Predict(5, t0.Add(1100*time.Millisecond))
	if !ok {
		t.Fatal("no prediction")
	}
	maxDrift := cfg.MaxSpeed*1.0 + 1e-9
	if d := p.Pos.Dist(mathx.Vec3{X: 100}); d > maxDrift {
		t.Fatalf("clamped extrapolation drifted %v m (> %v)", d, maxDrift)
	}
	if p.Radius > cfg.MaxRadius {
		t.Fatalf("radius %v above cap %v", p.Radius, cfg.MaxRadius)
	}
}

func TestPredictionAgeCutoff(t *testing.T) {
	tb := New(Config{})
	tb.Observe(3, mathx.Vec3{X: 1}, 0, 0.01, t0)
	if _, ok := tb.Predict(3, t0.Add(tb.Config().MaxPredictAge+time.Millisecond)); ok {
		t.Fatal("prediction from a stale fix")
	}
}

func TestTTLExpiry(t *testing.T) {
	reg := obs.NewRegistry()
	tb := New(Config{TTL: time.Second})
	tb.Instrument(reg)
	tb.Observe(1, mathx.Vec3{}, 0, 0.01, t0)
	tb.Observe(2, mathx.Vec3{}, 0, 0.01, t0)
	if n := tb.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	// Access after TTL: the expired session is dropped, not predicted.
	if _, ok := tb.Predict(1, t0.Add(2*time.Second)); ok {
		t.Fatal("prediction from an expired session")
	}
	if n := tb.ExpireIdle(t0.Add(2 * time.Second)); n != 1 {
		t.Fatalf("ExpireIdle removed %d, want 1", n)
	}
	if n := tb.Len(); n != 0 {
		t.Fatalf("Len = %d after expiry, want 0", n)
	}
	if v := reg.Gauge("track_sessions").Value(); v != 0 {
		t.Fatalf("track_sessions gauge %d, want 0", v)
	}
	if v := reg.Counter("track_expired").Value(); v != 2 {
		t.Fatalf("track_expired %d, want 2", v)
	}
}

func TestCapacityEvictsLRU(t *testing.T) {
	reg := obs.NewRegistry()
	// Single shard, capacity 4: the 5th session evicts the least recent.
	tb := New(Config{Capacity: 4, Shards: 1})
	tb.Instrument(reg)
	for id := uint64(1); id <= 4; id++ {
		tb.Observe(id, mathx.Vec3{}, 0, 0.01, t0.Add(time.Duration(id)*time.Millisecond))
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := tb.Predict(1, t0.Add(10*time.Millisecond)); !ok {
		t.Fatal("session 1 missing")
	}
	tb.Observe(5, mathx.Vec3{}, 0, 0.01, t0.Add(20*time.Millisecond))
	if n := tb.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
	if _, ok := tb.Predict(2, t0.Add(21*time.Millisecond)); ok {
		t.Fatal("LRU session 2 survived eviction")
	}
	if _, ok := tb.Predict(1, t0.Add(21*time.Millisecond)); !ok {
		t.Fatal("recently-touched session 1 was evicted")
	}
	if v := reg.Counter("track_evicted").Value(); v != 1 {
		t.Fatalf("track_evicted %d, want 1", v)
	}
}

func TestHistoryRingWraps(t *testing.T) {
	tb := New(Config{History: 4})
	// Walk +X at 1 m/s for 10 fixes; the ring keeps the last 4, so the
	// velocity estimate uses fixes 9 and 10.
	for i := 0; i < 10; i++ {
		tb.Observe(8, mathx.Vec3{X: float64(i)}, 0, 0.01, t0.Add(time.Duration(i)*time.Second))
	}
	p, ok := tb.Predict(8, t0.Add(9500*time.Millisecond))
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(p.Pos.X-9.5) > 1e-9 {
		t.Fatalf("predicted X %v, want 9.5", p.Pos.X)
	}
}

func TestForget(t *testing.T) {
	tb := New(Config{})
	tb.Observe(6, mathx.Vec3{}, 0, 0.01, t0)
	tb.Forget(6)
	if _, ok := tb.Predict(6, t0); ok {
		t.Fatal("forgotten session still predicts")
	}
	tb.Forget(6) // idempotent
	if n := tb.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}
