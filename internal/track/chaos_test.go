package track

// Session-table churn under the race detector: concurrent create, locate
// (predict), observe, forget and TTL expiry over a deliberately tiny table
// so capacity eviction and expiry race with reads on the same shards.
// `make chaos` runs this full-length; the normal suite (and scripts/
// verify.sh) runs the -short round.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"visualprint/internal/mathx"
	"visualprint/internal/obs"
	"visualprint/internal/testutil"
)

// TestChaosTrackChurn hammers one small table from many goroutines. The
// assertions are structural — the table must stay within capacity, the
// sessions gauge must agree with Len, and nothing may deadlock or race.
func TestChaosTrackChurn(t *testing.T) {
	testutil.CheckGoroutines(t)
	reg := obs.NewRegistry()
	const capacity = 64
	tb := New(Config{
		Capacity: capacity,
		Shards:   4,
		TTL:      2 * time.Millisecond,
		History:  3,
	})
	tb.Instrument(reg)

	workers, opsPer := 8, 4000
	if testing.Short() {
		workers, opsPer = 4, 800
	}
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	var virtual atomic.Int64 // virtual nanos so expiry is deterministic-ish but racy
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				// 96 IDs over a 64-capacity table: constant create/evict churn.
				id := uint64(w*13+i) % 96
				now := base.Add(time.Duration(virtual.Add(50_000))) // 50 µs per op
				switch i % 7 {
				case 0, 1, 2:
					tb.Observe(id, mathx.Vec3{X: float64(i % 10), Y: 1.5, Z: float64(w)}, 0, 0.01, now)
				case 3, 4:
					if p, ok := tb.Predict(id, now); ok && p.Radius <= 0 {
						t.Errorf("prediction with non-positive radius %v", p.Radius)
						return
					}
				case 5:
					tb.Forget(id)
				case 6:
					tb.ExpireIdle(now)
				}
				if n := tb.Len(); n > capacity {
					t.Errorf("table grew to %d sessions (capacity %d)", n, capacity)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if n := tb.Len(); n > capacity {
		t.Fatalf("final Len %d exceeds capacity %d", n, capacity)
	}
	if g, n := reg.Gauge("track_sessions").Value(), tb.Len(); g != int64(n) {
		t.Fatalf("track_sessions gauge %d disagrees with Len %d", g, n)
	}
	// Everything idles out: a full sweep far in the future must empty the
	// table and zero the gauge.
	tb.ExpireIdle(base.Add(time.Hour))
	if n := tb.Len(); n != 0 {
		t.Fatalf("%d sessions survived a full expiry sweep", n)
	}
	if g := reg.Gauge("track_sessions").Value(); g != 0 {
		t.Fatalf("track_sessions gauge %d after full expiry, want 0", g)
	}
}
