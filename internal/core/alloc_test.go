package core

// Equivalence and allocation coverage for the scratch-buffer oracle paths
// (see DESIGN.md "Performance"): the pooled Insert/Uniqueness must behave
// exactly like the original allocating implementations, and their steady
// state must stay off the heap — the client-side filtering cost that
// Figure 16 benchmarks.

import (
	"math/rand"
	"testing"

	"visualprint/internal/bloom"
)

// referenceUniqueness is the pre-optimization lookup, kept verbatim: fresh
// coordinate/key/position allocations per table and per probe, with the
// allocating Probes and PositionsKey helpers.
func referenceUniqueness(o *Oracle, desc []byte) uint32 {
	refEstimate := func(t int, key []byte) uint32 {
		cf := o.primary[t]
		pos := cf.Positions(key)
		count := cf.CountAt(pos)
		if count == 0 && o.p.MultiProbe {
			count = cf.CountAtPartial(pos)
		}
		if count == 0 {
			return 0
		}
		if o.verify != nil {
			vk := bloom.PositionsKey(pos)
			vk = append(vk, byte(t))
			if !o.verify.Test(vk) {
				return 0
			}
		}
		return count
	}
	ests := make([]uint32, 0, o.p.LSH.L)
	coords := make([]int32, o.p.LSH.M)
	var key []byte
	for t := 0; t < o.p.LSH.L; t++ {
		o.hasher.BucketInto(desc, t, coords)
		key = bucketBytes(key, coords)
		est := refEstimate(t, key)
		if est == 0 && o.p.MultiProbe {
			for _, probe := range o.hasher.Probes(coords)[1:] {
				key = bucketBytes(key, probe)
				if e := refEstimate(t, key); e > 0 {
					est = e
					break
				}
			}
		}
		ests = append(ests, est)
	}
	// Insertion sort stands in for the original sort.Slice; both produce a
	// sorted slice, and only the median is read.
	for i := 1; i < len(ests); i++ {
		for j := i; j > 0 && ests[j] < ests[j-1]; j-- {
			ests[j], ests[j-1] = ests[j-1], ests[j]
		}
	}
	return ests[len(ests)/2]
}

// TestUniquenessMatchesReference: scratch-based Uniqueness must agree with
// the original implementation for seen, perturbed and unseen descriptors —
// including the multiprobe fallback path, which the perturbed descriptors
// exercise.
func TestUniquenessMatchesReference(t *testing.T) {
	o, err := New(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	inserted := make([][]byte, 400)
	for i := range inserted {
		inserted[i] = siftLikeDesc(rng)
		reps := 1 + i%4
		for r := 0; r < reps; r++ {
			if err := o.Insert(inserted[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	queries := make([][]byte, 0, 300)
	for i := 0; i < 100; i++ {
		queries = append(queries, inserted[rng.Intn(len(inserted))])
		p := append([]byte(nil), inserted[rng.Intn(len(inserted))]...)
		for j := 0; j < 4; j++ { // small Euclidean nudge -> adjacent buckets
			k := rng.Intn(len(p))
			p[k] = byte(min(255, int(p[k])+3))
		}
		queries = append(queries, p)
		queries = append(queries, siftLikeDesc(rng))
	}
	for qi, q := range queries {
		got, err := o.Uniqueness(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := referenceUniqueness(o, q); got != want {
			t.Fatalf("query %d: Uniqueness = %d, reference = %d", qi, got, want)
		}
	}
}

// TestOracleScoringSteadyStateZeroAllocs pins the client-side scoring path
// (Uniqueness, including multiprobe misses) at zero steady-state heap
// allocations.
func TestOracleScoringSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; see race_off_test.go")
	}
	o, err := New(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 500; i++ {
		if err := o.Insert(siftLikeDesc(rng)); err != nil {
			t.Fatal(err)
		}
	}
	seen := siftLikeDesc(rng)
	if err := o.Insert(seen); err != nil {
		t.Fatal(err)
	}
	unseen := siftLikeDesc(rng) // exercises the full 2M-probe fallback
	for _, tc := range []struct {
		name string
		desc []byte
	}{{"seen", seen}, {"unseen", unseen}} {
		desc := tc.desc
		if _, err := o.Uniqueness(desc); err != nil { // warm the pool
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := o.Uniqueness(desc); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: steady-state Uniqueness allocates %.1f objects/op, want 0", tc.name, allocs)
		}
	}
}

// TestOracleInsertSteadyStateZeroAllocs: server-side ingest of one
// descriptor must also stay off the heap (filters are preallocated; only
// counters change).
func TestOracleInsertSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; see race_off_test.go")
	}
	o, err := New(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	d := siftLikeDesc(rng)
	if err := o.Insert(d); err != nil { // warm the pool
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		d[0] = byte(i)
		i++
		if err := o.Insert(d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Insert allocates %.1f objects/op, want 0", allocs)
	}
}
