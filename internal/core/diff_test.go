package core

import (
	"bytes"
	"math/rand"
	"testing"

	"visualprint/internal/bloom"
)

func snapshot(t *testing.T, o *Oracle) *Oracle {
	t.Helper()
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDiffApplyMatchesFull(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(20))
	var v1Descs, v2Descs [][]byte
	for i := 0; i < 200; i++ {
		d := siftLikeDesc(rng)
		v1Descs = append(v1Descs, d)
		o.Insert(d)
	}
	clientCopy := snapshot(t, o) // the client's downloaded v1
	serverOld := snapshot(t, o)  // the server's retained v1 snapshot

	// Server keeps ingesting.
	for i := 0; i < 150; i++ {
		d := siftLikeDesc(rng)
		v2Descs = append(v2Descs, d)
		o.Insert(d)
	}

	diff, err := Diff(serverOld, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyDiff(clientCopy, diff); err != nil {
		t.Fatal(err)
	}
	if clientCopy.Inserts() != o.Inserts() {
		t.Fatalf("inserts %d != %d", clientCopy.Inserts(), o.Inserts())
	}
	// The patched client must agree with the server on every descriptor,
	// old and new.
	for _, d := range append(append([][]byte{}, v1Descs...), v2Descs...) {
		want, _ := o.Uniqueness(d)
		got, err := clientCopy.Uniqueness(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("patched oracle disagrees: %d vs %d", got, want)
		}
	}
}

func TestDiffSmallerThanFullBlob(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		o.Insert(siftLikeDesc(rng))
	}
	old := snapshot(t, o)
	// A small incremental batch.
	for i := 0; i < 50; i++ {
		o.Insert(siftLikeDesc(rng))
	}
	diff, err := Diff(old, o)
	if err != nil {
		t.Fatal(err)
	}
	full, err := bloom.GzipBytes(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) >= len(full)/2 {
		t.Errorf("diff %d B not clearly below full blob %d B", len(diff), len(full))
	}
}

func TestApplyDiffRejectsWrongBase(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 100; i++ {
		o.Insert(siftLikeDesc(rng))
	}
	old := snapshot(t, o)
	o.Insert(siftLikeDesc(rng))
	diff, err := Diff(old, o)
	if err != nil {
		t.Fatal(err)
	}
	// A client at a different version must be refused.
	stale := newTestOracle(t)
	stale.Insert(siftLikeDesc(rng))
	if err := ApplyDiff(stale, diff); err == nil {
		t.Error("diff applied to wrong base version")
	}
}

func TestDiffParameterMismatch(t *testing.T) {
	a, _ := New(TestParams())
	p := TestParams()
	p.K = 4
	b, _ := New(p)
	if _, err := Diff(a, b); err == nil {
		t.Error("diff across parameter sets accepted")
	}
}

func TestDiffInsertOrderSanity(t *testing.T) {
	a := newTestOracle(t)
	b := newTestOracle(t)
	rng := rand.New(rand.NewSource(23))
	b.Insert(siftLikeDesc(rng))
	if _, err := Diff(b, a); err == nil {
		t.Error("old-with-more-inserts accepted")
	}
}

func TestApplyDiffRejectsGarbage(t *testing.T) {
	o := newTestOracle(t)
	if err := ApplyDiff(o, []byte("definitely not gzip")); err == nil {
		t.Error("garbage diff accepted")
	}
}
