package core

import (
	"bytes"
	"math/rand"
	"testing"

	"visualprint/internal/sift"
)

func randDesc(rng *rand.Rand) []byte {
	d := make([]byte, 128)
	for i := range d {
		d[i] = byte(rng.Intn(256))
	}
	return d
}

// siftLikeDesc produces a descriptor with SIFT-like statistics: sparse,
// non-negative, L2 norm near 512.
func siftLikeDesc(rng *rand.Rand) []byte {
	f := make([]float64, 128)
	var norm float64
	for i := range f {
		if rng.Float64() < 0.4 {
			f[i] = rng.ExpFloat64()
		}
		norm += f[i] * f[i]
	}
	d := make([]byte, 128)
	if norm == 0 {
		d[rng.Intn(128)] = 255
		return d
	}
	scale := 512 / sqrt(norm)
	for i := range d {
		v := f[i] * scale
		if v > 255 {
			v = 255
		}
		d[i] = byte(v)
	}
	return d
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func perturb(rng *rand.Rand, d []byte, amp int) []byte {
	out := append([]byte(nil), d...)
	for i := range out {
		v := int(out[i]) + rng.Intn(2*amp+1) - amp
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		out[i] = byte(v)
	}
	return out
}

func newTestOracle(t *testing.T) *Oracle {
	t.Helper()
	o, err := New(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params: %v", err)
	}
	if err := TestParams().Validate(); err != nil {
		t.Errorf("test params: %v", err)
	}
	p := TestParams()
	p.K = 0
	if err := p.Validate(); err == nil {
		t.Error("K=0 accepted")
	}
	p = TestParams()
	p.VerifyBits = 100
	p.VerifyK = 0
	if err := p.Validate(); err == nil {
		t.Error("VerifyK=0 with verification accepted")
	}
}

func TestUniquenessUnseenIsZero(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(1))
	zero := 0
	for i := 0; i < 50; i++ {
		u, err := o.Uniqueness(siftLikeDesc(rng))
		if err != nil {
			t.Fatal(err)
		}
		if u == 0 {
			zero++
		}
	}
	if zero < 48 {
		t.Errorf("only %d/50 unseen descriptors report zero on an empty oracle", zero)
	}
}

func TestUniquenessCountsRepeats(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(2))
	d := siftLikeDesc(rng)
	for i := 0; i < 20; i++ {
		if err := o.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	u, err := o.Uniqueness(d)
	if err != nil {
		t.Fatal(err)
	}
	if u < 20 {
		t.Errorf("Uniqueness = %d after 20 identical inserts (count-min must not undercount)", u)
	}
	if o.Inserts() != 20 {
		t.Errorf("Inserts = %d", o.Inserts())
	}
}

func TestUniquenessSeparatesCommonFromUnique(t *testing.T) {
	// The core claim: globally repeated features score much higher than
	// one-off features.
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(3))
	common := siftLikeDesc(rng)
	for i := 0; i < 200; i++ {
		o.Insert(common) // a "ceiling tile" seen everywhere
	}
	var uniques [][]byte
	for i := 0; i < 200; i++ {
		d := siftLikeDesc(rng) // "paintings", each seen once
		uniques = append(uniques, d)
		o.Insert(d)
	}
	uc, _ := o.Uniqueness(common)
	worse := 0
	for _, d := range uniques {
		uu, _ := o.Uniqueness(d)
		if uu >= uc {
			worse++
		}
	}
	if worse > 10 {
		t.Errorf("%d/200 unique features scored >= the 200x repeated feature (count %d)", worse, uc)
	}
}

func TestUniquenessNearDuplicateCollides(t *testing.T) {
	// A slightly perturbed view of an indexed feature should land in the
	// same LSH buckets (multiprobe helps) and report nonzero count.
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(4))
	hits := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		d := siftLikeDesc(rng)
		for j := 0; j < 3; j++ {
			o.Insert(d)
		}
		u, _ := o.Uniqueness(perturb(rng, d, 2))
		if u > 0 {
			hits++
		}
	}
	if hits < trials*6/10 {
		t.Errorf("near-duplicate recall %d/%d", hits, trials)
	}
}

func TestMultiprobeImprovesRecall(t *testing.T) {
	// Ablation: with multiprobe disabled, near-duplicate recall drops.
	pOn := TestParams()
	pOff := TestParams()
	pOff.MultiProbe = false
	on, _ := New(pOn)
	off, _ := New(pOff)
	rng := rand.New(rand.NewSource(5))
	recall := func(o *Oracle) int {
		r := rand.New(rand.NewSource(6))
		hits := 0
		for i := 0; i < 150; i++ {
			d := siftLikeDesc(r)
			o.Insert(d)
			o.Insert(d)
			u, _ := o.Uniqueness(perturb(r, d, 3))
			if u > 0 {
				hits++
			}
		}
		return hits
	}
	_ = rng
	rOn, rOff := recall(on), recall(off)
	if rOn < rOff {
		t.Errorf("multiprobe recall %d < non-multiprobe %d", rOn, rOff)
	}
}

func TestSelectUniquePrefersRareFeatures(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(7))
	// Index a "building": one repeated fixture descriptor, many unique ones.
	fixture := siftLikeDesc(rng)
	for i := 0; i < 300; i++ {
		o.Insert(fixture)
	}
	unique := make([][]byte, 50)
	for i := range unique {
		unique[i] = siftLikeDesc(rng)
		o.Insert(unique[i])
	}
	// Client frame: 10 fixture sightings + 10 unique sightings.
	var kps []sift.Keypoint
	for i := 0; i < 10; i++ {
		var kp sift.Keypoint
		copy(kp.Desc[:], fixture)
		kp.X = float64(i)
		kps = append(kps, kp)
	}
	for i := 0; i < 10; i++ {
		var kp sift.Keypoint
		copy(kp.Desc[:], unique[i])
		kp.X = 100 + float64(i)
		kps = append(kps, kp)
	}
	sel, err := o.SelectUnique(kps, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 10 {
		t.Fatalf("selected %d", len(sel))
	}
	fixtureChosen := 0
	for _, kp := range sel {
		if kp.X < 50 {
			fixtureChosen++
		}
	}
	if fixtureChosen > 2 {
		t.Errorf("%d/10 selected keypoints are the repeated fixture", fixtureChosen)
	}
}

func TestSelectUniqueCapsAtLen(t *testing.T) {
	o := newTestOracle(t)
	kps := make([]sift.Keypoint, 3)
	sel, err := o.SelectUnique(kps, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Errorf("len = %d, want 3", len(sel))
	}
}

func TestRankOrdering(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(8))
	a := siftLikeDesc(rng) // inserted 50x
	b := siftLikeDesc(rng) // inserted once
	for i := 0; i < 50; i++ {
		o.Insert(a)
	}
	o.Insert(b)
	ranked, err := o.Rank([][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Index != 1 {
		t.Errorf("rarer descriptor should rank first: %+v", ranked)
	}
	if ranked[0].Uniqueness > ranked[1].Uniqueness {
		t.Error("rank output not ascending")
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	o := newTestOracle(t)
	if err := o.Insert(make([]byte, 64)); err == nil {
		t.Error("Insert accepted wrong dimension")
	}
	if _, err := o.Uniqueness(make([]byte, 64)); err == nil {
		t.Error("Uniqueness accepted wrong dimension")
	}
}

func TestOracleRoundTrip(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(9))
	var descs [][]byte
	for i := 0; i < 100; i++ {
		d := siftLikeDesc(rng)
		descs = append(descs, d)
		for j := 0; j <= i%5; j++ {
			o.Insert(d)
		}
	}
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	o2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Inserts() != o.Inserts() {
		t.Errorf("inserts %d != %d", o2.Inserts(), o.Inserts())
	}
	// The downloaded oracle must agree with the server copy on every query.
	for _, d := range descs {
		u1, _ := o.Uniqueness(d)
		u2, _ := o2.Uniqueness(d)
		if u1 != u2 {
			t.Fatalf("round-tripped oracle disagrees: %d vs %d", u1, u2)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage everywhere"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMemoryBytesMatchesParams(t *testing.T) {
	p := TestParams()
	o, _ := New(p)
	want := int64(p.LSH.L)*int64((p.CountersPerTable*uint64(p.CounterBits)+63)/64*8) +
		int64((p.VerifyBits+63)/64*8)
	if got := o.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestVerificationReducesFalsePositives(t *testing.T) {
	// Ablation: with a heavily loaded primary filter, verification should
	// cut the rate of never-inserted descriptors reporting nonzero counts.
	mk := func(verify bool) float64 {
		p := TestParams()
		p.CountersPerTable = 1 << 12 // deliberately undersized -> hotspots
		if !verify {
			p.VerifyBits = 0
		}
		o, err := New(p)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(10))
		for i := 0; i < 3000; i++ {
			o.Insert(siftLikeDesc(rng))
		}
		fp := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			u, _ := o.Uniqueness(randDesc(rng))
			if u > 0 {
				fp++
			}
		}
		return float64(fp) / trials
	}
	with := mk(true)
	without := mk(false)
	if with > without {
		t.Errorf("verification increased FP rate: %.3f vs %.3f", with, without)
	}
}

func BenchmarkOracleInsert(b *testing.B) {
	o, _ := New(TestParams())
	rng := rand.New(rand.NewSource(1))
	d := siftLikeDesc(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d[0] = byte(i)
		o.Insert(d)
	}
}

func BenchmarkOracleUniqueness(b *testing.B) {
	o, _ := New(TestParams())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		o.Insert(siftLikeDesc(rng))
	}
	d := siftLikeDesc(rng)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Uniqueness(d)
	}
}

func TestConcurrentUniquenessQueries(t *testing.T) {
	o := newTestOracle(t)
	rng := rand.New(rand.NewSource(30))
	descs := make([][]byte, 50)
	for i := range descs {
		descs[i] = siftLikeDesc(rng)
		o.Insert(descs[i])
	}
	// Readers race each other (run with -race to verify the safety claim).
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				if _, err := o.Uniqueness(descs[(w*7+i)%len(descs)]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
