package core

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Diff serializes the delta between two versions of the same oracle (old
// must be an earlier snapshot of cur: same parameters, fewer-or-equal
// inserts) as a gzip-compressed XOR bitmask over every filter. Because
// counting Bloom filters only gain set bits as insertions accumulate, the
// XOR is overwhelmingly zeros and compresses far below a full blob — the
// incremental refresh the paper sketches: "We could reduce data transfer by
// sending only a compressed bitmask representing the diff between versions
// (not yet implemented)."
func Diff(old, cur *Oracle) ([]byte, error) {
	if old.p != cur.p {
		return nil, errors.New("core: diff between oracles with different parameters")
	}
	if old.inserts > cur.inserts {
		return nil, errors.New("core: old oracle has more inserts than current")
	}
	var payload bytes.Buffer
	bw := bufio.NewWriter(&payload)
	if _, err := bw.WriteString(diffMagic); err != nil {
		return nil, err
	}
	for _, v := range []any{old.inserts, cur.inserts} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	for t := range cur.primary {
		words, err := cur.primary[t].DiffWords(old.primary[t])
		if err != nil {
			return nil, err
		}
		if err := writeWords(bw, words); err != nil {
			return nil, err
		}
	}
	if cur.verify != nil {
		words, err := cur.verify.DiffWords(old.verify)
		if err != nil {
			return nil, err
		}
		if err := writeWords(bw, words); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	if _, err := zw.Write(payload.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Clone returns a deep copy of the oracle (serialize/deserialize round
// trip). The server clones the oracle at download time so it can later
// compute diffs against the exact version a client holds.
func (o *Oracle) Clone() (*Oracle, error) {
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		return nil, err
	}
	return Read(&buf)
}

// Merge folds src's filters into dst (same parameters). Counting filters add
// counter-wise with saturation and the verification filter ORs bit-wise, so
// the merged oracle is bitwise identical to one that saw every insert of both
// — the property the multi-venue router relies on to assemble a venue-wide
// oracle from per-shard oracles (see bloom.Counting.MergeFrom for the
// saturation argument). dst is mutated; src is read-only.
func Merge(dst, src *Oracle) error {
	if dst.p != src.p {
		return errors.New("core: merge between oracles with different parameters")
	}
	for t := range dst.primary {
		if err := dst.primary[t].MergeFrom(src.primary[t]); err != nil {
			return err
		}
	}
	if dst.verify != nil {
		if err := dst.verify.MergeFrom(src.verify); err != nil {
			return err
		}
	}
	dst.inserts += src.inserts
	return nil
}

// ApplyDiff advances o (a client's downloaded snapshot) to the newer
// version encoded by diff. o must be the exact version the diff was
// computed against; a mismatch is detected via the recorded insert counts.
func ApplyDiff(o *Oracle, diff []byte) error {
	zr, err := gzip.NewReader(bytes.NewReader(diff))
	if err != nil {
		return err
	}
	defer zr.Close()
	magic := make([]byte, len(diffMagic))
	if _, err := io.ReadFull(zr, magic); err != nil {
		return err
	}
	if string(magic) != diffMagic {
		return fmt.Errorf("core: bad diff magic %q", magic)
	}
	var oldInserts, newInserts uint64
	for _, v := range []any{&oldInserts, &newInserts} {
		if err := binary.Read(zr, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if oldInserts != o.inserts {
		return fmt.Errorf("core: diff base has %d inserts, oracle has %d", oldInserts, o.inserts)
	}
	for t := range o.primary {
		words, err := readWords(zr)
		if err != nil {
			return err
		}
		if err := o.primary[t].ApplyDiffWords(words, newInserts); err != nil {
			return err
		}
	}
	if o.verify != nil {
		words, err := readWords(zr)
		if err != nil {
			return err
		}
		if err := o.verify.ApplyDiffWords(words); err != nil {
			return err
		}
	}
	o.inserts = newInserts
	return nil
}

const diffMagic = "VPDF1\x00"

func writeWords(w io.Writer, words []uint64) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(words))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, words)
}

func readWords(r io.Reader) ([]uint64, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, errors.New("core: diff word count too large")
	}
	words := make([]uint64, n)
	if err := binary.Read(r, binary.LittleEndian, words); err != nil {
		return nil, err
	}
	return words, nil
}
