// Package core implements VisualPrint's primary contribution: the
// locality-sensitive Bloom filter uniqueness "oracle" (paper section 3,
// Figure 8). The oracle is a compact, probabilistic summary of every
// keypoint the cloud has ever seen. A client downloads it once (tens of MB
// summarizing GBs of visual data), then tests each captured keypoint in
// constant time to estimate how often that feature occurs globally. Only the
// most unique keypoints — those that stand a chance of a unique match — are
// uploaded, cutting offload bandwidth by an order of magnitude.
//
// Construction (top of Figure 8): a 128-d SIFT descriptor is E2LSH-hashed
// into L buckets of M quantized Gaussian projections each; each bucket
// coordinate is Murmur3-hashed into K indices of a per-table counting Bloom
// filter (10-bit counters saturating at 1024); the touched counter positions
// are additionally hashed into a verification Bloom filter.
//
// Lookup (bottom of Figure 8): the exact bucket is probed first; multi-probe
// recovers off-by-one quantization false negatives (adjacent buckets and
// K-1-of-K partial counter matches); the verification filter suppresses the
// false positives that multi-probing would otherwise add.
package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"

	"visualprint/internal/bloom"
	"visualprint/internal/lsh"
	"visualprint/internal/sift"
)

// Params configures an Oracle.
type Params struct {
	// LSH is the E2LSH family (paper: L=10, M=7, W=500).
	LSH lsh.Params
	// K is the number of counting-Bloom probes per LSH bucket (paper: 8).
	K int
	// CountersPerTable sizes each of the L counting filters.
	CountersPerTable uint64
	// CounterBits is the counter width (paper: 10, saturation 1024).
	CounterBits uint
	// VerifyBits sizes the verification Bloom filter; 0 disables
	// verification (used by the ablation benchmarks).
	VerifyBits uint64
	// VerifyK is the verification filter probe count.
	VerifyK int
	// MultiProbe enables adjacent-quantization-bucket probes and K-1-of-K
	// partial matches during lookup.
	MultiProbe bool
}

// DefaultParams returns the paper's configuration, sized for the paper's
// 2.5M-descriptor database: each of the L=10 tables gets 12.5M 10-bit
// counters (~15.6 MB, 156 MB total in RAM), plus a 256 Mbit verification
// filter (32 MB). Uncompressed this is close to the paper's reported 162 MB
// client RAM footprint; GZIP-compressed on disk it lands in the ~10 MB
// range while the filters remain sparse.
func DefaultParams() Params {
	return Params{
		LSH:              lsh.DefaultParams(),
		K:                8,
		CountersPerTable: 12_500_000,
		CounterBits:      10,
		VerifyBits:       1 << 28,
		VerifyK:          4,
		MultiProbe:       true,
	}
}

// TestParams returns a small configuration for unit tests and scaled
// experiments (capacity on the order of tens of thousands of descriptors).
func TestParams() Params {
	return Params{
		LSH:              lsh.DefaultParams(),
		K:                8,
		CountersPerTable: 1 << 17,
		CounterBits:      10,
		VerifyBits:       1 << 21,
		VerifyK:          4,
		MultiProbe:       true,
	}
}

// Validate reports whether p is usable.
func (p Params) Validate() error {
	if err := p.LSH.Validate(); err != nil {
		return err
	}
	if p.K <= 0 || p.CountersPerTable == 0 || p.CounterBits == 0 || p.CounterBits > 16 {
		return errors.New("core: K, CountersPerTable and CounterBits must be positive (bits <= 16)")
	}
	if p.VerifyBits != 0 && p.VerifyK <= 0 {
		return errors.New("core: VerifyK must be positive when verification is enabled")
	}
	return nil
}

// Oracle is the uniqueness oracle. Insert is called on the server as
// wardriven keypoints arrive ("new keypoint-to-location mappings can be
// incorporated continuously, in constant time and memory"); Uniqueness and
// SelectUnique run on the client against a downloaded copy.
//
// Oracle is not safe for concurrent mutation; concurrent read-only queries
// are safe.
type Oracle struct {
	p       Params
	hasher  *lsh.Hasher
	primary []*bloom.Counting
	verify  *bloom.Filter // nil when verification is disabled
	inserts uint64

	// scratch recycles per-call buffers (widened descriptor, bucket
	// coordinates, serialized keys, Bloom positions, per-table estimates)
	// so Insert and Uniqueness are allocation-free in steady state — the
	// client-side filtering cost Figure 16 benchmarks. Never serialized;
	// the zero value is ready to use.
	scratch sync.Pool
}

// oracleScratch is one call's worth of reusable buffers.
type oracleScratch struct {
	vec    []float32 // widened descriptor (converted once per call)
	coords []int32   // one table's bucket coordinate (mutated for probes)
	key    []byte    // serialized bucket coordinate
	pos    []uint64  // counting-filter positions (K entries)
	vkey   []byte    // verification filter key: positions + table tag
	ests   []uint32  // per-table estimates for the median
}

// getScratch returns a scratch sized for this oracle's parameters.
func (o *Oracle) getScratch() *oracleScratch {
	s, _ := o.scratch.Get().(*oracleScratch)
	if s == nil {
		s = &oracleScratch{
			vec:    make([]float32, 0, o.p.LSH.Dim),
			coords: make([]int32, o.p.LSH.M),
			key:    make([]byte, 0, 4*o.p.LSH.M),
			pos:    make([]uint64, o.p.K),
			vkey:   make([]byte, 0, 8*o.p.K+1),
			ests:   make([]uint32, 0, o.p.LSH.L),
		}
	}
	return s
}

// New creates an empty oracle.
func New(p Params) (*Oracle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h, err := lsh.NewHasher(p.LSH)
	if err != nil {
		return nil, err
	}
	o := &Oracle{p: p, hasher: h}
	for t := 0; t < p.LSH.L; t++ {
		cf, err := bloom.NewCounting(p.CountersPerTable, p.CounterBits, p.K, uint32(t)+0x5bd1)
		if err != nil {
			return nil, err
		}
		o.primary = append(o.primary, cf)
	}
	if p.VerifyBits > 0 {
		v, err := bloom.NewFilter(p.VerifyBits, p.VerifyK, 0xbeef)
		if err != nil {
			return nil, err
		}
		o.verify = v
	}
	return o, nil
}

// Params returns the oracle's configuration.
func (o *Oracle) Params() Params { return o.p }

// Inserts returns the number of descriptors inserted.
func (o *Oracle) Inserts() uint64 { return o.inserts }

// NumTables returns the number of primary counting filters (LSH.L).
func (o *Oracle) NumTables() int { return len(o.primary) }

// Table returns primary counting filter t. Mutating it through the
// bloom-level cell writers is how odelta replays a sparse delta; all other
// callers must treat it as read-only.
func (o *Oracle) Table(t int) *bloom.Counting { return o.primary[t] }

// Verify returns the verification filter, nil when VerifyBits is 0.
func (o *Oracle) Verify() *bloom.Filter { return o.verify }

// SetInserts overwrites the oracle-level insert count; odelta replay sets
// it to the delta's recorded post-state so a reconstructed oracle
// serializes byte-identically to the original.
func (o *Oracle) SetInserts(n uint64) { o.inserts = n }

// bucketBytes serializes a bucket coordinate for Bloom hashing.
func bucketBytes(buf []byte, coords []int32) []byte {
	buf = buf[:0]
	var tmp [4]byte
	for _, c := range coords {
		binary.LittleEndian.PutUint32(tmp[:], uint32(c))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// Insert records one descriptor sighting in all L tables and the
// verification filter. Constant time and memory per call (allocation-free
// in steady state: the descriptor is widened once and all keys and filter
// positions go through pooled scratch buffers).
func (o *Oracle) Insert(desc []byte) error {
	if len(desc) != o.p.LSH.Dim {
		return errors.New("core: descriptor dimension mismatch")
	}
	s := o.getScratch()
	defer o.scratch.Put(s)
	s.vec = lsh.DescriptorVec(desc, s.vec)
	for t := 0; t < o.p.LSH.L; t++ {
		o.hasher.BucketVecInto(s.vec, t, s.coords)
		s.key = bucketBytes(s.key, s.coords)
		cf := o.primary[t]
		cf.PositionsInto(s.key, s.pos)
		cf.AddAt(s.pos)
		if o.verify != nil {
			// Verification entry: hash of the concatenated counter
			// positions, tagged with the table index.
			s.vkey = bloom.AppendPositionsKey(s.vkey, s.pos)
			s.vkey = append(s.vkey, byte(t))
			o.verify.Add(s.vkey)
		}
	}
	o.inserts++
	return nil
}

// tableEstimate queries one table for the count of the bucket coordinate
// serialized in s.key. Returns 0 when the bucket fails the primary or
// verification checks.
func (o *Oracle) tableEstimate(t int, s *oracleScratch) uint32 {
	cf := o.primary[t]
	cf.PositionsInto(s.key, s.pos)
	count := cf.CountAt(s.pos)
	if count == 0 && o.p.MultiProbe {
		// K-1-of-K partial match: treat a single missing counter as a
		// potential false negative.
		count = cf.CountAtPartial(s.pos)
	}
	if count == 0 {
		return 0
	}
	if o.verify != nil {
		s.vkey = bloom.AppendPositionsKey(s.vkey, s.pos)
		s.vkey = append(s.vkey, byte(t))
		if !o.verify.Test(s.vkey) {
			// "A positive result is returned if and only if a positive
			// match is found in both the primary and verification Bloom
			// filters." Partial matches especially need this gate.
			return 0
		}
	}
	return count
}

// Uniqueness estimates how many times a descriptor (or a near-identical
// one) has been inserted, 0 meaning never seen. The per-table count-min
// estimates are combined with a median across the L tables, which is robust
// both to quantization misses (tables that report 0) and to hotspot
// overcounts.
func (o *Oracle) Uniqueness(desc []byte) (uint32, error) {
	if len(desc) != o.p.LSH.Dim {
		return 0, errors.New("core: descriptor dimension mismatch")
	}
	s := o.getScratch()
	defer o.scratch.Put(s)
	s.vec = lsh.DescriptorVec(desc, s.vec)
	s.ests = s.ests[:0]
	for t := 0; t < o.p.LSH.L; t++ {
		o.hasher.BucketVecInto(s.vec, t, s.coords)
		s.key = bucketBytes(s.key, s.coords)
		est := o.tableEstimate(t, s)
		if est == 0 && o.p.MultiProbe {
			// Adjacent-quantization-bucket probes (multi-probe LSH): check
			// the 2M off-by-one buckets, accept the first verified
			// positive. The perturbations are enumerated by mutating one
			// coordinate at a time — same order as lsh.Probes, without the
			// per-probe allocations.
		probeLoop:
			for m := range s.coords {
				orig := s.coords[m]
				for _, d := range [2]int32{-1, 1} {
					s.coords[m] = orig + d
					s.key = bucketBytes(s.key, s.coords)
					if e := o.tableEstimate(t, s); e > 0 {
						est = e
						s.coords[m] = orig
						break probeLoop
					}
				}
				s.coords[m] = orig
			}
		}
		s.ests = append(s.ests, est)
	}
	slices.Sort(s.ests)
	return s.ests[len(s.ests)/2], nil
}

// Ranked pairs a keypoint index with its uniqueness estimate.
type Ranked struct {
	Index      int
	Uniqueness uint32
}

// selectionKey orders keypoints for upload by expected matching value:
// globally-rare-but-present features first (ascending count), then features
// the oracle has never seen (count 0 — a keypoint unknown to the map cannot
// yield a match, so spending upload budget on it is wasted), and saturated
// features (certainly common) last. The paper ranks purely by count; the
// zero-count demotion is a refinement that matters under strong viewpoint
// change, where many client keypoints are view-specific artifacts absent
// from the wardriven map.
func (o *Oracle) selectionKey(count uint32) uint32 {
	sat := uint32(1)<<o.p.CounterBits - 1
	switch {
	case count == 0:
		return sat // after every present feature, before saturated ones
	case count >= sat:
		return sat + 1
	default:
		return count
	}
}

// Rank scores every descriptor and returns indices ordered most-unique
// first (ascending estimated global count).
func (o *Oracle) Rank(descs [][]byte) ([]Ranked, error) {
	out := make([]Ranked, len(descs))
	for i, d := range descs {
		u, err := o.Uniqueness(d)
		if err != nil {
			return nil, err
		}
		out[i] = Ranked{Index: i, Uniqueness: u}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return o.selectionKey(out[i].Uniqueness) < o.selectionKey(out[j].Uniqueness)
	})
	return out, nil
}

// SelectUnique returns the n most-unique keypoints (lowest estimated global
// count, response as tie-break), the client-side filtering step that turns
// ~3,500 extracted keypoints into a 200-keypoint fingerprint.
func (o *Oracle) SelectUnique(kps []sift.Keypoint, n int) ([]sift.Keypoint, error) {
	type scored struct {
		kp *sift.Keypoint
		u  uint32
	}
	ss := make([]scored, len(kps))
	for i := range kps {
		u, err := o.Uniqueness(kps[i].Desc[:])
		if err != nil {
			return nil, err
		}
		ss[i] = scored{kp: &kps[i], u: u}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		ki, kj := o.selectionKey(ss[i].u), o.selectionKey(ss[j].u)
		if ki != kj {
			return ki < kj
		}
		return ss[i].kp.Response > ss[j].kp.Response
	})
	if n > len(ss) {
		n = len(ss)
	}
	out := make([]sift.Keypoint, n)
	for i := 0; i < n; i++ {
		out[i] = *ss[i].kp
	}
	return out, nil
}

// MemoryBytes returns the uncompressed in-memory footprint of all filters —
// the client RAM number in Figure 15.
func (o *Oracle) MemoryBytes() int64 {
	var total int64
	for _, cf := range o.primary {
		total += cf.MemoryBytes()
	}
	if o.verify != nil {
		total += o.verify.MemoryBytes()
	}
	return total
}

const oracleMagic = "VPOR1\x00"

// WriteTo serializes the oracle (filters plus parameters). Compress with
// bloom.GzipBytes for the on-disk / download representation.
func (o *Oracle) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(oracleMagic); err != nil {
		return 0, err
	}
	hdr := []any{
		uint32(o.p.LSH.L), uint32(o.p.LSH.M), o.p.LSH.W, uint32(o.p.LSH.Dim), o.p.LSH.Seed,
		uint32(o.p.K), o.p.CountersPerTable, uint32(o.p.CounterBits),
		o.p.VerifyBits, uint32(o.p.VerifyK), boolByte(o.p.MultiProbe), o.inserts,
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	for _, cf := range o.primary {
		if _, err := cf.WriteTo(bw); err != nil {
			return 0, err
		}
	}
	if o.verify != nil {
		if _, err := o.verify.WriteTo(bw); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return 0, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Read deserializes an oracle written by WriteTo. The projection family is
// rebuilt deterministically from the serialized LSH seed, so a downloaded
// oracle hashes identically to the server's copy.
func Read(r io.Reader) (*Oracle, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(oracleMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != oracleMagic {
		return nil, fmt.Errorf("core: bad oracle magic %q", magic)
	}
	var p Params
	var l, m, dim, k, cbits, vk uint32
	var mp byte
	var inserts uint64
	fields := []any{
		&l, &m, &p.LSH.W, &dim, &p.LSH.Seed,
		&k, &p.CountersPerTable, &cbits,
		&p.VerifyBits, &vk, &mp, &inserts,
	}
	for _, v := range fields {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	p.LSH.L, p.LSH.M, p.LSH.Dim = int(l), int(m), int(dim)
	p.K, p.CounterBits, p.VerifyK = int(k), uint(cbits), int(vk)
	p.MultiProbe = mp == 1
	o, err := New(p)
	if err != nil {
		return nil, err
	}
	for t := 0; t < p.LSH.L; t++ {
		cf, err := bloom.ReadCounting(br)
		if err != nil {
			return nil, err
		}
		o.primary[t] = cf
	}
	if p.VerifyBits > 0 {
		v, err := bloom.ReadFilter(br)
		if err != nil {
			return nil, err
		}
		o.verify = v
	}
	o.inserts = inserts
	return o, nil
}
