// Package scene provides the synthetic indoor environments that substitute
// for the paper's real-world photo datasets and Google Tango hardware. A
// World is a set of textured rectangular surfaces (walls, floors, ceilings,
// paintings, fixtures); a pinhole Camera renders grayscale frames and
// per-pixel depth maps from any 6-DoF pose — the same two modalities the
// Tango wardriving rig captured (RGB sensor + IR depth sensor).
//
// The texture mix is chosen to reproduce the keypoint statistics the paper
// relies on: unique-seeded noise "paintings" (high-entropy, globally unique
// features), repeated tile floors/ceilings and fixture stamps (locally
// sharp, globally common features), and flat wall segments (no features).
package scene

import (
	"errors"
	"math"
	"sync"

	"visualprint/internal/imaging"
	"visualprint/internal/mathx"
)

// POIKind classifies a point of interest by the global uniqueness of the
// features around it.
type POIKind int

// POI kinds.
const (
	POIUnique   POIKind = iota // one-of-a-kind painting
	POIRepeated                // fixture repeated in every room
	POIPlain                   // featureless or tiled area
)

// POI is a point of interest on a surface: where a scene-defining object
// (painting, fixture, tile patch) is located, with its outward normal.
// World builders record POIs so the evaluation can aim cameras at scenes
// (unique content) and distractors (repeated/plain content).
type POI struct {
	Center mathx.Vec3
	Normal mathx.Vec3
	Kind   POIKind
	Label  string
}

// Surface is a textured rectangle: Origin plus the span vectors U and V
// (which must be orthogonal). Texture coordinates are measured in meters
// along U and V.
type Surface struct {
	Origin mathx.Vec3
	U, V   mathx.Vec3
	Tex    imaging.Texture
	Label  string

	// cached by prepare()
	normal   mathx.Vec3
	uLen2    float64
	vLen2    float64
	prepared bool
}

func (s *Surface) prepare() {
	s.normal = s.U.Cross(s.V).Normalize()
	s.uLen2 = s.U.Dot(s.U)
	s.vLen2 = s.V.Dot(s.V)
	s.prepared = true
}

// Normal returns the surface normal (U x V, unit length).
func (s *Surface) Normal() mathx.Vec3 {
	if !s.prepared {
		s.prepare()
	}
	return s.normal
}

// intersect returns the ray parameter t and texture coordinates of the hit,
// or ok=false if the ray misses the rectangle.
func (s *Surface) intersect(o, d mathx.Vec3) (t, u, v float64, ok bool) {
	denom := d.Dot(s.normal)
	if math.Abs(denom) < 1e-12 {
		return 0, 0, 0, false
	}
	t = s.Origin.Sub(o).Dot(s.normal) / denom
	if t <= 1e-9 {
		return 0, 0, 0, false
	}
	p := o.Add(d.Scale(t)).Sub(s.Origin)
	a := p.Dot(s.U) / s.uLen2
	if a < 0 || a > 1 {
		return 0, 0, 0, false
	}
	b := p.Dot(s.V) / s.vLen2
	if b < 0 || b > 1 {
		return 0, 0, 0, false
	}
	return t, a * math.Sqrt(s.uLen2), b * math.Sqrt(s.vLen2), true
}

// World is a closed indoor environment.
type World struct {
	Name     string
	Surfaces []*Surface
	POIs     []POI
	// Min and Max bound the walkable space (used by the localization
	// optimizer's search box and the wardriving trajectory).
	Min, Max mathx.Vec3

	// accel is the lazily built ray-intersection BVH; AddSurface
	// invalidates it. accelMu guards the lazy build so concurrent
	// renderers of one world are safe.
	accelMu sync.Mutex
	accel   *bvh
}

// ensureAccel builds the BVH once (thread-safe).
func (w *World) ensureAccel() *bvh {
	w.accelMu.Lock()
	defer w.accelMu.Unlock()
	if w.accel == nil {
		w.accel = buildBVH(w.Surfaces)
	}
	return w.accel
}

// AddSurface appends a surface (preparing its cached geometry) and returns
// it.
func (w *World) AddSurface(s Surface) *Surface {
	sp := &s
	sp.prepare()
	w.Surfaces = append(w.Surfaces, sp)
	w.accelMu.Lock()
	w.accel = nil
	w.accelMu.Unlock()
	return sp
}

// Intersect returns the nearest surface hit along a ray, its distance, and
// the texture coordinates at the hit; ok is false when the ray escapes the
// world. Rays are accelerated by a BVH built on first use.
func (w *World) Intersect(o, d mathx.Vec3) (s *Surface, t, u, v float64, ok bool) {
	s, t, u, v = w.ensureAccel().intersect(o, d)
	return s, t, u, v, s != nil
}

// Camera is a pinhole camera with a 6-DoF pose. Yaw rotates about the
// vertical (+Y) axis; at zero yaw the camera looks along +Z.
type Camera struct {
	Pos              mathx.Vec3
	Yaw, Pitch, Roll float64
	FovX             float64 // horizontal field of view, radians
	W, H             int     // image size in pixels
}

// DefaultCamera returns a camera with the field of view of a typical
// smartphone (about 66 degrees horizontal).
func DefaultCamera(w, h int) Camera {
	return Camera{FovX: 66 * math.Pi / 180, W: w, H: h}
}

// FovY returns the vertical field of view implied by FovX and the aspect
// ratio.
func (c Camera) FovY() float64 {
	f := c.focal()
	return 2 * math.Atan(float64(c.H)/2/f)
}

// focal returns the focal length in pixels.
func (c Camera) focal() float64 {
	return float64(c.W) / 2 / math.Tan(c.FovX/2)
}

// Rotation returns the camera-to-world rotation matrix.
func (c Camera) Rotation() mathx.Mat3 {
	return mathx.RotationYPR(c.Yaw, c.Pitch, c.Roll)
}

// Ray returns the world-space origin and unit direction of the ray through
// pixel (px, py) (pixel centers at integer+0.5).
func (c Camera) Ray(px, py float64) (origin, dir mathx.Vec3) {
	f := c.focal()
	d := mathx.Vec3{
		X: (px - float64(c.W)/2) / f,
		Y: -(py - float64(c.H)/2) / f, // +Y is up in world, down in image
		Z: 1,
	}
	return c.Pos, c.Rotation().MulVec(d).Normalize()
}

// PointAt reconstructs the world point seen at pixel (px, py) given its
// depth (Euclidean distance from the camera center) — the backprojection
// the wardriving app performs with the Tango depth map.
func (c Camera) PointAt(px, py, depth float64) mathx.Vec3 {
	o, d := c.Ray(px, py)
	return o.Add(d.Scale(depth))
}

// Forward returns the camera's viewing direction.
func (c Camera) Forward() mathx.Vec3 {
	return c.Rotation().MulVec(mathx.Vec3{Z: 1})
}

// Project maps a world point to pixel coordinates. ok is false when the
// point is behind the camera or outside the image. This is the exact
// inverse of Ray/PointAt.
func (c Camera) Project(p mathx.Vec3) (px, py float64, ok bool) {
	d := c.Rotation().Transpose().MulVec(p.Sub(c.Pos))
	if d.Z <= 1e-9 {
		return 0, 0, false
	}
	f := c.focal()
	px = float64(c.W)/2 + d.X/d.Z*f
	py = float64(c.H)/2 - d.Y/d.Z*f
	if px < 0 || py < 0 || px > float64(c.W) || py > float64(c.H) {
		return px, py, false
	}
	return px, py, true
}

// LookAt orients the camera (yaw and pitch, zero roll) so that target is at
// the image center.
func (c Camera) LookAt(target mathx.Vec3) Camera {
	dir := target.Sub(c.Pos).Normalize()
	c.Yaw = math.Atan2(dir.X, dir.Z)
	c.Pitch = -math.Asin(mathx.Clamp(dir.Y, -1, 1))
	c.Roll = 0
	return c
}

// Frame is a rendered view: the grayscale image and the per-pixel depth map
// (Euclidean distance, 0 where no surface was hit).
type Frame struct {
	Image *imaging.Gray
	Depth []float32
	Cam   Camera
}

// DepthAt returns the depth at pixel (x, y), 0 out of bounds.
func (f *Frame) DepthAt(x, y int) float64 {
	if x < 0 || y < 0 || x >= f.Cam.W || y >= f.Cam.H {
		return 0
	}
	return float64(f.Depth[y*f.Cam.W+x])
}

// Render draws the world from cam, returning image and depth.
func Render(w *World, cam Camera) (*Frame, error) {
	if cam.W <= 0 || cam.H <= 0 || cam.FovX <= 0 {
		return nil, errors.New("scene: camera needs positive W, H and FovX")
	}
	img := imaging.NewGray(cam.W, cam.H)
	depth := make([]float32, cam.W*cam.H)
	rot := cam.Rotation()
	f := cam.focal()
	accel := w.ensureAccel()
	for y := 0; y < cam.H; y++ {
		for x := 0; x < cam.W; x++ {
			d := mathx.Vec3{
				X: (float64(x) + 0.5 - float64(cam.W)/2) / f,
				Y: -(float64(y) + 0.5 - float64(cam.H)/2) / f,
				Z: 1,
			}
			dir := rot.MulVec(d).Normalize()
			bestS, bestT, bu, bv := accel.intersect(cam.Pos, dir)
			if bestS == nil {
				continue
			}
			// Mild distance attenuation gives depth cues without
			// destroying texture contrast.
			atten := 1 / (1 + 0.015*bestT)
			img.Pix[y*cam.W+x] = float32(mathx.Clamp(bestS.Tex.Sample(bu, bv)*atten, 0, 1))
			depth[y*cam.W+x] = float32(bestT)
		}
	}
	return &Frame{Image: img, Depth: depth, Cam: cam}, nil
}
