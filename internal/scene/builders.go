package scene

import (
	"fmt"
	"math"
	"math/rand"

	"visualprint/internal/imaging"
	"visualprint/internal/mathx"
)

// VenueSpec parameterizes a procedural indoor venue. The three evaluation
// venues of the paper (office 50x20 m, cafeteria 50x15 m, grocery 80x50 m)
// are provided as presets; Build accepts arbitrary specs.
type VenueSpec struct {
	Name          string
	Width, Depth  float64 // floor plan in meters (X by Z)
	Height        float64 // ceiling height in meters
	Aisles        int     // interior double-sided walls (shelving, cubicles)
	PanelWidth    float64 // wall panel width in meters
	UniqueFrac    float64 // fraction of wall panels carrying unique art
	RepeatedFrac  float64 // fraction carrying the repeated fixture stamp
	Seed          uint32
	TileSize      float64 // floor/ceiling tile edge
	AisleSpacing  float64 // gap between interior aisles
	AisleUnique   float64 // unique-panel fraction on aisle faces
	AisleRepeated float64 // repeated-panel fraction on aisle faces
	// Clutter places this many furniture boxes (tables, displays,
	// pedestals) on the floor. Besides realism, clutter provides the 3D
	// corner structure that makes ICP drift correction well-posed — flat
	// walls and floors alone leave in-plane drift unobservable.
	Clutter int
}

// OfficeSpec returns the paper's office venue: cubicles, kitchen, lounge —
// moderate uniqueness, many repeated fixtures.
func OfficeSpec(seed uint32) VenueSpec {
	return VenueSpec{
		Name: "office", Width: 50, Depth: 20, Height: 3,
		Aisles: 2, PanelWidth: 2.5,
		UniqueFrac: 0.40, RepeatedFrac: 0.30,
		Seed: seed, TileSize: 0.6, AisleSpacing: 6,
		AisleUnique: 0.35, AisleRepeated: 0.40,
		Clutter: 14,
	}
}

// CafeteriaSpec returns the cafeteria venue: identical chairs and tables
// (repeated), menu boards (unique).
func CafeteriaSpec(seed uint32) VenueSpec {
	return VenueSpec{
		Name: "cafeteria", Width: 50, Depth: 15, Height: 3,
		Aisles: 1, PanelWidth: 2.5,
		UniqueFrac: 0.35, RepeatedFrac: 0.40,
		Seed: seed + 101, TileSize: 0.45, AisleSpacing: 7,
		AisleUnique: 0.25, AisleRepeated: 0.55,
		Clutter: 18,
	}
}

// GrocerySpec returns the grocery venue: aisle-based layout, shelving with
// repeated product patterns plus unique signage.
func GrocerySpec(seed uint32) VenueSpec {
	return VenueSpec{
		Name: "grocery", Width: 80, Depth: 50, Height: 4,
		Aisles: 6, PanelWidth: 3,
		UniqueFrac: 0.30, RepeatedFrac: 0.45,
		Seed: seed + 202, TileSize: 0.5, AisleSpacing: 7,
		AisleUnique: 0.20, AisleRepeated: 0.60,
		Clutter: 20,
	}
}

// GallerySpec returns an art-gallery venue: almost every wall panel is a
// unique painting over a checkerboard floor — the paper's introductory
// example.
func GallerySpec(seed uint32) VenueSpec {
	return VenueSpec{
		Name: "gallery", Width: 30, Depth: 20, Height: 4,
		Aisles: 1, PanelWidth: 2,
		UniqueFrac: 0.80, RepeatedFrac: 0.05,
		Seed: seed + 303, TileSize: 0.8, AisleSpacing: 8,
		AisleUnique: 0.7, AisleRepeated: 0.1,
		Clutter: 8,
	}
}

// BuildOffice, BuildCafeteria, BuildGrocery and BuildGallery construct the
// preset venues.
func BuildOffice(seed uint32) *World    { return Build(OfficeSpec(seed)) }
func BuildCafeteria(seed uint32) *World { return Build(CafeteriaSpec(seed)) }
func BuildGrocery(seed uint32) *World   { return Build(GrocerySpec(seed)) }
func BuildGallery(seed uint32) *World   { return Build(GallerySpec(seed)) }

// Build constructs a closed venue from spec: tiled floor and ceiling,
// panelled outer walls, and interior aisle walls. Panel content is assigned
// pseudo-randomly (unique art / repeated fixture / flat) from spec.Seed, so
// the same spec always yields the same world.
func Build(spec VenueSpec) *World {
	if spec.Height <= 0 {
		spec.Height = 3
	}
	if spec.PanelWidth <= 0 {
		spec.PanelWidth = 2.5
	}
	w := &World{
		Name: spec.Name,
		Min:  mathx.Vec3{X: 0, Y: 0, Z: 0},
		Max:  mathx.Vec3{X: spec.Width, Y: spec.Height, Z: spec.Depth},
	}
	rng := rand.New(rand.NewSource(int64(spec.Seed)*7919 + 17))

	// Floor (+Y normal) and ceiling (-Y normal): identical repeating tiles.
	floorTex := imaging.TileTexture{Seed: spec.Seed ^ 0xf100f, TileSize: spec.TileSize, Line: 0.02, Contrast: 0.9}
	ceilTex := imaging.TileTexture{Seed: spec.Seed ^ 0xce11, TileSize: spec.TileSize * 1.2, Line: 0.03, Contrast: 0.5}
	w.AddSurface(Surface{
		Origin: mathx.Vec3{}, U: mathx.Vec3{Z: spec.Depth}, V: mathx.Vec3{X: spec.Width},
		Tex: floorTex, Label: "floor",
	})
	w.AddSurface(Surface{
		Origin: mathx.Vec3{Y: spec.Height}, U: mathx.Vec3{X: spec.Width}, V: mathx.Vec3{Z: spec.Depth},
		Tex: ceilTex, Label: "ceiling",
	})
	// Floor/ceiling POIs (plain/repeated content) for distractor views.
	for i := 0; i < 8; i++ {
		w.POIs = append(w.POIs, POI{
			Center: mathx.Vec3{X: (0.15 + 0.7*rng.Float64()) * spec.Width, Y: 0, Z: (0.15 + 0.7*rng.Float64()) * spec.Depth},
			Normal: mathx.Vec3{Y: 1},
			Kind:   POIPlain,
			Label:  fmt.Sprintf("%s/floor-%d", spec.Name, i),
		})
		w.POIs = append(w.POIs, POI{
			Center: mathx.Vec3{X: (0.15 + 0.7*rng.Float64()) * spec.Width, Y: spec.Height, Z: (0.15 + 0.7*rng.Float64()) * spec.Depth},
			Normal: mathx.Vec3{Y: -1},
			Kind:   POIPlain,
			Label:  fmt.Sprintf("%s/ceiling-%d", spec.Name, i),
		})
	}

	b := &panelBuilder{world: w, spec: spec, rng: rng}
	// Outer walls (normals point into the room).
	b.wall(mathx.Vec3{}, mathx.Vec3{X: 1}, mathx.Vec3{Y: 1}, spec.Width, "south", spec.UniqueFrac, spec.RepeatedFrac)
	b.wall(mathx.Vec3{X: spec.Width, Z: spec.Depth}, mathx.Vec3{X: -1}, mathx.Vec3{Y: 1}, spec.Width, "north", spec.UniqueFrac, spec.RepeatedFrac)
	b.wall(mathx.Vec3{Z: spec.Depth}, mathx.Vec3{Z: -1}, mathx.Vec3{Y: 1}, spec.Depth, "west", spec.UniqueFrac, spec.RepeatedFrac)
	b.wall(mathx.Vec3{X: spec.Width}, mathx.Vec3{Z: 1}, mathx.Vec3{Y: 1}, spec.Depth, "east", spec.UniqueFrac, spec.RepeatedFrac)

	// Interior aisles: double-sided walls running along X, shortened at
	// both ends to leave walking corridors.
	spacing := spec.AisleSpacing
	if spacing <= 0 {
		spacing = spec.Depth / float64(spec.Aisles+1)
	}
	for a := 1; a <= spec.Aisles; a++ {
		z := float64(a) * spec.Depth / float64(spec.Aisles+1)
		margin := spec.Width * 0.12
		length := spec.Width - 2*margin
		height := spec.Height * 0.65
		// Face toward -Z.
		b.wallAt(mathx.Vec3{X: margin, Z: z}, mathx.Vec3{X: 1}, mathx.Vec3{Y: 1},
			length, height, fmt.Sprintf("aisle%d-a", a), spec.AisleUnique, spec.AisleRepeated)
		// Face toward +Z.
		b.wallAt(mathx.Vec3{X: margin + length, Z: z}, mathx.Vec3{X: -1}, mathx.Vec3{Y: 1},
			length, height, fmt.Sprintf("aisle%d-b", a), spec.AisleUnique, spec.AisleRepeated)
	}

	// Furniture clutter: low boxes (below eye height) scattered over the
	// floor. Their corners anchor ICP; their faces carry a mix of unique
	// and repeated detail, like real tables and displays.
	for cIdx := 0; cIdx < spec.Clutter; cIdx++ {
		cx := (0.15 + 0.7*rng.Float64()) * spec.Width
		cz := (0.15 + 0.7*rng.Float64()) * spec.Depth
		sx := 0.7 + rng.Float64()*0.9
		sz := 0.7 + rng.Float64()*0.9
		sy := 0.5 + rng.Float64()*0.6
		var tex imaging.Texture
		kind := POIRepeated
		if rng.Float64() < 0.5 {
			b.artSeq++
			tex = imaging.NoiseTexture{
				Seed: spec.Seed*131071 + b.artSeq*2654435761 + 7,
				Freq: 6, Octaves: 3, Gain: 1,
			}
			kind = POIUnique
		} else {
			// Standard-issue furniture finish, identical everywhere.
			tex = imaging.TileTexture{Seed: 0xfab1e, TileSize: 0.3, Line: 0.015, Contrast: 0.8}
		}
		addBox(w, mathx.Vec3{X: cx, Y: 0, Z: cz}, sx, sy, sz, tex,
			fmt.Sprintf("%s/clutter%d", spec.Name, cIdx))
		w.POIs = append(w.POIs, POI{
			Center: mathx.Vec3{X: cx, Y: sy / 2, Z: cz + sz/2},
			Normal: mathx.Vec3{Z: 1},
			Kind:   kind,
			Label:  fmt.Sprintf("%s/clutter%d", spec.Name, cIdx),
		})
	}
	return w
}

// addBox adds the top and four side faces of an axis-aligned box resting on
// the floor, centered at (center.X, center.Z) with footprint sx x sz and
// height sy.
func addBox(w *World, center mathx.Vec3, sx, sy, sz float64, tex imaging.Texture, label string) {
	x0, x1 := center.X-sx/2, center.X+sx/2
	z0, z1 := center.Z-sz/2, center.Z+sz/2
	// Top (+Y normal).
	w.AddSurface(Surface{
		Origin: mathx.Vec3{X: x0, Y: sy, Z: z0},
		U:      mathx.Vec3{Z: sz}, V: mathx.Vec3{X: sx},
		Tex: tex, Label: label + "/top",
	})
	// Sides, normals outward.
	w.AddSurface(Surface{ // -Z face
		Origin: mathx.Vec3{X: x1, Y: 0, Z: z0},
		U:      mathx.Vec3{X: -sx}, V: mathx.Vec3{Y: sy},
		Tex: tex, Label: label + "/south",
	})
	w.AddSurface(Surface{ // +Z face
		Origin: mathx.Vec3{X: x0, Y: 0, Z: z1},
		U:      mathx.Vec3{X: sx}, V: mathx.Vec3{Y: sy},
		Tex: tex, Label: label + "/north",
	})
	w.AddSurface(Surface{ // -X face
		Origin: mathx.Vec3{X: x0, Y: 0, Z: z0},
		U:      mathx.Vec3{Z: sz}, V: mathx.Vec3{Y: sy},
		Tex: tex, Label: label + "/west",
	})
	w.AddSurface(Surface{ // +X face
		Origin: mathx.Vec3{X: x1, Y: 0, Z: z1},
		U:      mathx.Vec3{Z: -sz}, V: mathx.Vec3{Y: sy},
		Tex: tex, Label: label + "/east",
	})
}

// panelBuilder slices a wall into panels with seeded content assignment.
type panelBuilder struct {
	world    *World
	spec     VenueSpec
	rng      *rand.Rand
	artSeq   uint32 // unique-painting counter (each gets a fresh seed)
	stampSeq int
}

func (b *panelBuilder) wall(origin, along, up mathx.Vec3, length float64, label string, uniqueFrac, repeatedFrac float64) {
	b.wallAt(origin, along, up, length, b.spec.Height, label, uniqueFrac, repeatedFrac)
}

func (b *panelBuilder) wallAt(origin, along, up mathx.Vec3, length, height float64, label string, uniqueFrac, repeatedFrac float64) {
	n := int(math.Max(1, math.Round(length/b.spec.PanelWidth)))
	pw := length / float64(n)
	for i := 0; i < n; i++ {
		po := origin.Add(along.Scale(float64(i) * pw))
		s := Surface{
			Origin: po,
			U:      along.Scale(pw),
			V:      up.Scale(height),
			Label:  fmt.Sprintf("%s/%s-panel%d", b.spec.Name, label, i),
		}
		r := b.rng.Float64()
		center := po.Add(along.Scale(pw / 2)).Add(up.Scale(height / 2))
		normal := along.Cross(up).Normalize()
		switch {
		case r < uniqueFrac:
			// One-of-a-kind painting: unique seed.
			b.artSeq++
			s.Tex = imaging.NoiseTexture{
				Seed: b.spec.Seed*131071 + b.artSeq*2654435761,
				Freq: 3.5, Octaves: 4, Gain: 1,
			}
			b.world.POIs = append(b.world.POIs, POI{
				Center: center, Normal: normal, Kind: POIUnique, Label: s.Label,
			})
		case r < uniqueFrac+repeatedFrac:
			// Fixture repeated identically across the whole venue
			// family: the SAME seed everywhere, sampled in panel-local
			// coordinates by construction of StampTexture.
			b.stampSeq++
			s.Tex = imaging.StampTexture{
				Seed:       0xd00d, // shared across all venues: a standard-issue fixture
				Background: 0.82,
				CenterU:    pw / 2,
				CenterV:    height * 0.45,
				Radius:     0.35,
			}
			b.world.POIs = append(b.world.POIs, POI{
				Center: center, Normal: normal, Kind: POIRepeated, Label: s.Label,
			})
		default:
			s.Tex = imaging.FlatTexture{Intensity: 0.85}
			b.world.POIs = append(b.world.POIs, POI{
				Center: center, Normal: normal, Kind: POIPlain, Label: s.Label,
			})
		}
		b.world.AddSurface(s)
	}
}

// POIsOfKind returns the world's points of interest of one kind.
func (w *World) POIsOfKind(kind POIKind) []POI {
	var out []POI
	for _, p := range w.POIs {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}

// CameraFacing places a camera dist meters in front of poi (along its
// normal), looking at the POI center, then applies yaw/pitch offsets about
// the POI — the "substantially different angles" of the paper's query set.
// The camera height is clamped into the world's vertical bounds.
func CameraFacing(w *World, poi POI, dist, yawOff, pitchOff float64, imgW, imgH int) Camera {
	// Rotate the offset position around the POI center.
	rot := mathx.RotationYPR(yawOff, pitchOff, 0)
	offset := rot.MulVec(poi.Normal.Scale(dist))
	pos := poi.Center.Add(offset)
	pos.Y = mathx.Clamp(pos.Y, w.Min.Y+0.5, w.Max.Y-0.5)
	pos.X = mathx.Clamp(pos.X, w.Min.X+0.3, w.Max.X-0.3)
	pos.Z = mathx.Clamp(pos.Z, w.Min.Z+0.3, w.Max.Z-0.3)
	cam := DefaultCamera(imgW, imgH)
	cam.Pos = pos
	return cam.LookAt(poi.Center)
}
