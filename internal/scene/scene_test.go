package scene

import (
	"math"
	"strings"
	"testing"

	"visualprint/internal/imaging"
	"visualprint/internal/mathx"
)

func boxWorld() *World {
	// A simple 10x3x10 room with distinct wall intensities.
	w := &World{Name: "box", Max: mathx.Vec3{X: 10, Y: 3, Z: 10}}
	w.AddSurface(Surface{ // floor, +Y normal
		Origin: mathx.Vec3{}, U: mathx.Vec3{Z: 10}, V: mathx.Vec3{X: 10},
		Tex: imaging.FlatTexture{Intensity: 0.2}, Label: "floor",
	})
	w.AddSurface(Surface{ // ceiling
		Origin: mathx.Vec3{Y: 3}, U: mathx.Vec3{X: 10}, V: mathx.Vec3{Z: 10},
		Tex: imaging.FlatTexture{Intensity: 0.9}, Label: "ceiling",
	})
	w.AddSurface(Surface{ // wall at z=10 (faces -Z)
		Origin: mathx.Vec3{Z: 10}, U: mathx.Vec3{X: 10}, V: mathx.Vec3{Y: 3},
		Tex: imaging.FlatTexture{Intensity: 0.5}, Label: "front",
	})
	return w
}

func TestSurfaceIntersect(t *testing.T) {
	s := Surface{
		Origin: mathx.Vec3{Z: 5},
		U:      mathx.Vec3{X: 2},
		V:      mathx.Vec3{Y: 2},
	}
	s.prepare()
	// Ray straight down +Z through the middle of the rectangle.
	tt, u, v, ok := s.intersect(mathx.Vec3{X: 1, Y: 1}, mathx.Vec3{Z: 1})
	if !ok {
		t.Fatal("ray should hit")
	}
	if math.Abs(tt-5) > 1e-9 || math.Abs(u-1) > 1e-9 || math.Abs(v-1) > 1e-9 {
		t.Errorf("t=%v u=%v v=%v", tt, u, v)
	}
	// Miss: outside the rectangle.
	if _, _, _, ok := s.intersect(mathx.Vec3{X: 5, Y: 1}, mathx.Vec3{Z: 1}); ok {
		t.Error("ray outside rectangle reported hit")
	}
	// Miss: behind the ray.
	if _, _, _, ok := s.intersect(mathx.Vec3{X: 1, Y: 1, Z: 9}, mathx.Vec3{Z: 1}); ok {
		t.Error("surface behind origin reported hit")
	}
	// Parallel ray.
	if _, _, _, ok := s.intersect(mathx.Vec3{X: 1, Y: 1}, mathx.Vec3{X: 1}); ok {
		t.Error("parallel ray reported hit")
	}
}

func TestCameraRayCenter(t *testing.T) {
	cam := DefaultCamera(100, 80)
	cam.Pos = mathx.Vec3{X: 1, Y: 2, Z: 3}
	o, d := cam.Ray(50, 40)
	if o != cam.Pos {
		t.Errorf("origin = %v", o)
	}
	// Center ray looks along +Z at zero yaw/pitch.
	if math.Abs(d.X) > 1e-9 || math.Abs(d.Y) > 1e-9 || d.Z < 0.999 {
		t.Errorf("center dir = %v", d)
	}
}

func TestCameraRayEdgeMatchesFov(t *testing.T) {
	cam := DefaultCamera(200, 100)
	_, d := cam.Ray(200, 50) // right edge, vertical center
	angle := math.Atan2(d.X, d.Z)
	if math.Abs(angle-cam.FovX/2) > 0.01 {
		t.Errorf("edge ray angle %v, want %v", angle, cam.FovX/2)
	}
}

func TestCameraLookAt(t *testing.T) {
	cam := DefaultCamera(64, 48)
	cam.Pos = mathx.Vec3{X: 5, Y: 1.5, Z: 5}
	target := mathx.Vec3{X: 5, Y: 1.5, Z: 9}
	cam = cam.LookAt(target)
	fwd := cam.Forward()
	want := target.Sub(cam.Pos).Normalize()
	if fwd.Dist(want) > 1e-9 {
		t.Errorf("forward = %v, want %v", fwd, want)
	}
	// And an elevated target pitches the camera up.
	cam = cam.LookAt(mathx.Vec3{X: 5, Y: 3, Z: 9})
	if cam.Pitch >= 0 {
		t.Errorf("pitch = %v, want negative (looking up)", cam.Pitch)
	}
}

func TestCameraPointAtInvertsRay(t *testing.T) {
	cam := DefaultCamera(120, 90)
	cam.Pos = mathx.Vec3{X: 2, Y: 1, Z: 2}
	cam.Yaw, cam.Pitch = 0.4, -0.1
	o, d := cam.Ray(30, 60)
	p := o.Add(d.Scale(4.2))
	back := cam.PointAt(30, 60, 4.2)
	if p.Dist(back) > 1e-9 {
		t.Errorf("PointAt = %v, want %v", back, p)
	}
}

func TestProjectInvertsPointAt(t *testing.T) {
	cam := DefaultCamera(160, 120)
	cam.Pos = mathx.Vec3{X: 3, Y: 1.2, Z: 1}
	cam.Yaw, cam.Pitch, cam.Roll = 0.7, -0.15, 0.02
	for _, px := range []float64{10.5, 80.5, 150.5} {
		for _, py := range []float64{5.5, 60.5, 115.5} {
			p := cam.PointAt(px, py, 6.5)
			gx, gy, ok := cam.Project(p)
			if !ok {
				t.Fatalf("point from pixel (%v,%v) projects outside", px, py)
			}
			if math.Abs(gx-px) > 1e-6 || math.Abs(gy-py) > 1e-6 {
				t.Fatalf("Project(PointAt(%v,%v)) = (%v,%v)", px, py, gx, gy)
			}
		}
	}
}

func TestProjectBehindCamera(t *testing.T) {
	cam := DefaultCamera(100, 100)
	if _, _, ok := cam.Project(mathx.Vec3{Z: -5}); ok {
		t.Error("point behind camera projected")
	}
}

func TestRenderBoxRoom(t *testing.T) {
	w := boxWorld()
	cam := DefaultCamera(64, 48)
	cam.Pos = mathx.Vec3{X: 5, Y: 1.5, Z: 2}
	cam = cam.LookAt(mathx.Vec3{X: 5, Y: 1.5, Z: 10})
	fr, err := Render(w, cam)
	if err != nil {
		t.Fatal(err)
	}
	// Center pixel sees the front wall (intensity 0.5 with attenuation) at
	// depth 8.
	cd := fr.DepthAt(32, 24)
	if math.Abs(cd-8) > 0.1 {
		t.Errorf("center depth = %v, want 8", cd)
	}
	cv := float64(fr.Image.At(32, 24))
	if cv < 0.3 || cv > 0.55 {
		t.Errorf("center intensity = %v", cv)
	}
	// Bottom rows see the darker floor closer than the wall.
	bd := fr.DepthAt(32, 47)
	if bd >= cd {
		t.Errorf("floor depth %v should be < wall depth %v", bd, cd)
	}
	bv := float64(fr.Image.At(32, 47))
	if bv > cv {
		t.Errorf("floor %v should be darker than wall %v", bv, cv)
	}
}

func TestRenderDepthConsistentWithPointAt(t *testing.T) {
	// Backprojecting a pixel with its rendered depth must land on a world
	// surface (here: a known wall plane).
	w := boxWorld()
	cam := DefaultCamera(64, 48)
	cam.Pos = mathx.Vec3{X: 5, Y: 1.5, Z: 3}
	cam = cam.LookAt(mathx.Vec3{X: 5, Y: 1.5, Z: 10})
	fr, _ := Render(w, cam)
	p := cam.PointAt(32.5, 24.5, fr.DepthAt(32, 24))
	if math.Abs(p.Z-10) > 0.05 {
		t.Errorf("backprojected wall point %v, want z=10", p)
	}
}

func TestRenderValidation(t *testing.T) {
	w := boxWorld()
	if _, err := Render(w, Camera{}); err == nil {
		t.Error("zero camera accepted")
	}
}

func TestBuildVenuesClosed(t *testing.T) {
	// Every preset venue must be closed: all rays from inside hit something.
	venues := []*World{BuildOffice(1), BuildCafeteria(1), BuildGrocery(1), BuildGallery(1)}
	for _, w := range venues {
		cam := DefaultCamera(32, 24)
		cam.Pos = mathx.Vec3{
			X: (w.Min.X + w.Max.X) / 2,
			Y: 1.6,
			Z: (w.Min.Z + w.Max.Z) / 2,
		}
		for _, yaw := range []float64{0, 1.5, 3.1, 4.6} {
			cam.Yaw = yaw
			fr, err := Render(w, cam)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range fr.Depth {
				if d == 0 {
					t.Fatalf("%s: pixel %d escaped the venue at yaw %v", w.Name, i, yaw)
				}
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := BuildOffice(7)
	b := BuildOffice(7)
	if len(a.Surfaces) != len(b.Surfaces) || len(a.POIs) != len(b.POIs) {
		t.Fatal("same seed produced different worlds")
	}
	for i := range a.POIs {
		if a.POIs[i].Center != b.POIs[i].Center || a.POIs[i].Kind != b.POIs[i].Kind {
			t.Fatalf("POI %d differs", i)
		}
	}
	c := BuildOffice(8)
	if len(c.POIs) == len(a.POIs) {
		same := true
		for i := range c.POIs {
			if c.POIs[i].Kind != a.POIs[i].Kind {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical POI layouts")
		}
	}
}

func TestBuildHasAllPOIKinds(t *testing.T) {
	w := BuildOffice(3)
	if len(w.POIsOfKind(POIUnique)) < 10 {
		t.Errorf("only %d unique POIs", len(w.POIsOfKind(POIUnique)))
	}
	if len(w.POIsOfKind(POIRepeated)) < 5 {
		t.Errorf("only %d repeated POIs", len(w.POIsOfKind(POIRepeated)))
	}
	if len(w.POIsOfKind(POIPlain)) < 5 {
		t.Errorf("only %d plain POIs", len(w.POIsOfKind(POIPlain)))
	}
}

func TestCameraFacingSeesPOI(t *testing.T) {
	w := BuildGallery(2)
	pois := w.POIsOfKind(POIUnique)
	if len(pois) == 0 {
		t.Fatal("no unique POIs")
	}
	poi := pois[0]
	cam := CameraFacing(w, poi, 2.5, 0, 0, 64, 48)
	fr, err := Render(w, cam)
	if err != nil {
		t.Fatal(err)
	}
	// The POI should be at the image center: backproject and compare.
	d := fr.DepthAt(32, 24)
	if d == 0 {
		t.Fatal("center pixel hit nothing")
	}
	p := cam.PointAt(32.5, 24.5, d)
	if p.Dist(poi.Center) > 0.5 {
		t.Errorf("center backprojection %v is %.2fm from POI %v", p, p.Dist(poi.Center), poi.Center)
	}
}

func TestCameraFacingStaysInBounds(t *testing.T) {
	w := BuildOffice(4)
	for _, poi := range w.POIs {
		cam := CameraFacing(w, poi, 3, 0.5, -0.2, 32, 24)
		if cam.Pos.X < w.Min.X || cam.Pos.X > w.Max.X ||
			cam.Pos.Y < w.Min.Y || cam.Pos.Y > w.Max.Y ||
			cam.Pos.Z < w.Min.Z || cam.Pos.Z > w.Max.Z {
			t.Fatalf("camera %v escapes world bounds", cam.Pos)
		}
	}
}

func TestBuildIncludesClutter(t *testing.T) {
	spec := OfficeSpec(5)
	spec.Clutter = 6
	w := Build(spec)
	boxes := 0
	for _, s := range w.Surfaces {
		if strings.Contains(s.Label, "clutter") {
			boxes++
		}
	}
	if boxes != 6*5 {
		t.Errorf("clutter surfaces = %d, want %d (5 faces per box)", boxes, 6*5)
	}
	// Zero clutter venues stay clutter-free.
	spec.Clutter = 0
	w = Build(spec)
	for _, s := range w.Surfaces {
		if strings.Contains(s.Label, "clutter") {
			t.Fatal("clutter present despite Clutter=0")
		}
	}
}

func TestClutterOccludesFloor(t *testing.T) {
	// A ray cast straight down over a clutter box must hit the box top
	// (depth < eye height), not the floor.
	spec := VenueSpec{
		Name: "occlusion", Width: 12, Depth: 10, Height: 3,
		UniqueFrac: 0.2, RepeatedFrac: 0.2, Seed: 3, TileSize: 0.5,
		Clutter: 5, PanelWidth: 2,
	}
	w := Build(spec)
	var boxTop *Surface
	for _, s := range w.Surfaces {
		if strings.HasSuffix(s.Label, "clutter0/top") {
			boxTop = s
			break
		}
	}
	if boxTop == nil {
		t.Fatal("no clutter box found")
	}
	center := boxTop.Origin.Add(boxTop.U.Scale(0.5)).Add(boxTop.V.Scale(0.5))
	cam := DefaultCamera(8, 8)
	cam.Pos = mathx.Vec3{X: center.X, Y: 2.5, Z: center.Z}
	cam.Pitch = math.Pi / 2 // looking straight down
	fr, err := Render(w, cam)
	if err != nil {
		t.Fatal(err)
	}
	d := fr.DepthAt(4, 4)
	wantMax := 2.5 - center.Y + 0.15
	if d <= 0 || d > wantMax {
		t.Errorf("depth over box = %v, want <= %v (box occludes floor)", d, wantMax)
	}
}

func TestFovY(t *testing.T) {
	cam := DefaultCamera(200, 200)
	// Square image: FovY == FovX.
	if math.Abs(cam.FovY()-cam.FovX) > 1e-9 {
		t.Errorf("square FovY = %v, want %v", cam.FovY(), cam.FovX)
	}
	wide := DefaultCamera(400, 200)
	if wide.FovY() >= wide.FovX {
		t.Error("wide image should have FovY < FovX")
	}
}

func BenchmarkRenderOffice160x120(b *testing.B) {
	w := BuildOffice(1)
	cam := DefaultCamera(160, 120)
	cam.Pos = mathx.Vec3{X: 25, Y: 1.6, Z: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Render(w, cam); err != nil {
			b.Fatal(err)
		}
	}
}
