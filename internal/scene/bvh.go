package scene

import (
	"math"
	"sort"

	"visualprint/internal/mathx"
)

// bvh is a bounding-volume hierarchy over the world's surfaces. Venues have
// hundreds of surfaces (wall panels, clutter boxes) and every rendered
// pixel casts a ray, so brute-force intersection dominates the whole
// evaluation harness; the BVH cuts per-ray cost to O(log n) with the same
// results (verified by a differential test against the brute-force path).
type bvh struct {
	nodes []bvhNode
	surfs []*Surface // leaf ordering
}

type bvhNode struct {
	min, max mathx.Vec3
	// Internal nodes: left/right are child indices and count == 0.
	// Leaves: start/count index into surfs.
	left, right int32
	start       int32
	count       int32
}

// surfaceBounds returns the AABB of a rectangle surface.
func surfaceBounds(s *Surface) (lo, hi mathx.Vec3) {
	corners := [4]mathx.Vec3{
		s.Origin,
		s.Origin.Add(s.U),
		s.Origin.Add(s.V),
		s.Origin.Add(s.U).Add(s.V),
	}
	lo, hi = corners[0], corners[0]
	for _, c := range corners[1:] {
		lo.X = math.Min(lo.X, c.X)
		lo.Y = math.Min(lo.Y, c.Y)
		lo.Z = math.Min(lo.Z, c.Z)
		hi.X = math.Max(hi.X, c.X)
		hi.Y = math.Max(hi.Y, c.Y)
		hi.Z = math.Max(hi.Z, c.Z)
	}
	return lo, hi
}

// buildBVH constructs a median-split BVH.
func buildBVH(surfs []*Surface) *bvh {
	b := &bvh{surfs: append([]*Surface(nil), surfs...)}
	if len(surfs) == 0 {
		return b
	}
	type item struct {
		s        *Surface
		lo, hi   mathx.Vec3
		centroid mathx.Vec3
	}
	items := make([]item, len(surfs))
	for i, s := range b.surfs {
		lo, hi := surfaceBounds(s)
		items[i] = item{s: s, lo: lo, hi: hi, centroid: lo.Add(hi).Scale(0.5)}
	}
	var build func(lo, hi int) int32
	build = func(loIdx, hiIdx int) int32 {
		// Node bounds.
		bmin, bmax := items[loIdx].lo, items[loIdx].hi
		for i := loIdx + 1; i < hiIdx; i++ {
			bmin.X = math.Min(bmin.X, items[i].lo.X)
			bmin.Y = math.Min(bmin.Y, items[i].lo.Y)
			bmin.Z = math.Min(bmin.Z, items[i].lo.Z)
			bmax.X = math.Max(bmax.X, items[i].hi.X)
			bmax.Y = math.Max(bmax.Y, items[i].hi.Y)
			bmax.Z = math.Max(bmax.Z, items[i].hi.Z)
		}
		idx := int32(len(b.nodes))
		b.nodes = append(b.nodes, bvhNode{min: bmin, max: bmax})
		n := hiIdx - loIdx
		if n <= 4 {
			b.nodes[idx].start = int32(loIdx)
			b.nodes[idx].count = int32(n)
			return idx
		}
		// Split along the widest axis at the centroid median.
		ext := bmax.Sub(bmin)
		axis := 0
		if ext.Y > ext.X && ext.Y >= ext.Z {
			axis = 1
		} else if ext.Z > ext.X && ext.Z >= ext.Y {
			axis = 2
		}
		sub := items[loIdx:hiIdx]
		sort.Slice(sub, func(i, j int) bool {
			switch axis {
			case 1:
				return sub[i].centroid.Y < sub[j].centroid.Y
			case 2:
				return sub[i].centroid.Z < sub[j].centroid.Z
			default:
				return sub[i].centroid.X < sub[j].centroid.X
			}
		})
		mid := loIdx + n/2
		l := build(loIdx, mid)
		r := build(mid, hiIdx)
		b.nodes[idx].left = l
		b.nodes[idx].right = r
		return idx
	}
	build(0, len(items))
	// Rebuild the surfs slice in the final item order.
	for i := range items {
		b.surfs[i] = items[i].s
	}
	return b
}

// slab tests ray-vs-AABB, returning whether the box is hit before tMax.
func (n *bvhNode) slab(o mathx.Vec3, invD mathx.Vec3, tMax float64) bool {
	t0 := (n.min.X - o.X) * invD.X
	t1 := (n.max.X - o.X) * invD.X
	if t0 > t1 {
		t0, t1 = t1, t0
	}
	tmin, tmaxv := t0, t1

	t0 = (n.min.Y - o.Y) * invD.Y
	t1 = (n.max.Y - o.Y) * invD.Y
	if t0 > t1 {
		t0, t1 = t1, t0
	}
	if t0 > tmin {
		tmin = t0
	}
	if t1 < tmaxv {
		tmaxv = t1
	}

	t0 = (n.min.Z - o.Z) * invD.Z
	t1 = (n.max.Z - o.Z) * invD.Z
	if t0 > t1 {
		t0, t1 = t1, t0
	}
	if t0 > tmin {
		tmin = t0
	}
	if t1 < tmaxv {
		tmaxv = t1
	}
	return tmaxv >= tmin && tmin <= tMax && tmaxv >= 0
}

// intersect finds the nearest surface hit along the ray, or nil.
func (b *bvh) intersect(o, d mathx.Vec3) (best *Surface, bestT, bu, bv float64) {
	if len(b.nodes) == 0 {
		return nil, 0, 0, 0
	}
	inv := mathx.Vec3{X: safeInv(d.X), Y: safeInv(d.Y), Z: safeInv(d.Z)}
	bestT = math.Inf(1)
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		node := &b.nodes[stack[sp]]
		if !node.slab(o, inv, bestT) {
			continue
		}
		if node.count > 0 {
			for i := node.start; i < node.start+node.count; i++ {
				s := b.surfs[i]
				if t, u, v, ok := s.intersect(o, d); ok && t < bestT {
					best, bestT, bu, bv = s, t, u, v
				}
			}
			continue
		}
		stack[sp] = node.left
		sp++
		stack[sp] = node.right
		sp++
	}
	return best, bestT, bu, bv
}

func safeInv(x float64) float64 {
	if x == 0 {
		return math.Inf(1)
	}
	return 1 / x
}
