package scene

import (
	"math"
	"math/rand"
	"testing"

	"visualprint/internal/mathx"
)

// bruteIntersect is the reference implementation the BVH must match.
func bruteIntersect(surfs []*Surface, o, d mathx.Vec3) (*Surface, float64, float64, float64) {
	bestT := math.Inf(1)
	var best *Surface
	var bu, bv float64
	for _, s := range surfs {
		if t, u, v, ok := s.intersect(o, d); ok && t < bestT {
			best, bestT, bu, bv = s, t, u, v
		}
	}
	return best, bestT, bu, bv
}

func TestBVHMatchesBruteForce(t *testing.T) {
	// Differential test over a real venue with clutter: every random ray
	// must hit the same surface at the same distance via both paths.
	w := BuildOffice(13)
	b := buildBVH(w.Surfaces)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		o := mathx.Vec3{
			X: rng.Float64()*w.Max.X*1.2 - 0.1*w.Max.X,
			Y: rng.Float64() * w.Max.Y,
			Z: rng.Float64()*w.Max.Z*1.2 - 0.1*w.Max.Z,
		}
		d := mathx.Vec3{
			X: rng.NormFloat64(),
			Y: rng.NormFloat64(),
			Z: rng.NormFloat64(),
		}.Normalize()
		if d.Norm() == 0 {
			continue
		}
		bs, bt, _, _ := b.intersect(o, d)
		rs, rt, _, _ := bruteIntersect(w.Surfaces, o, d)
		if (bs == nil) != (rs == nil) {
			t.Fatalf("trial %d: hit disagreement (bvh=%v brute=%v)", trial, bs != nil, rs != nil)
		}
		if bs == nil {
			continue
		}
		if math.Abs(bt-rt) > 1e-9 {
			t.Fatalf("trial %d: distance %v vs %v", trial, bt, rt)
		}
	}
}

func TestBVHAxisAlignedRays(t *testing.T) {
	// Axis-aligned rays exercise the division-by-zero slab paths.
	w := BuildGallery(3)
	b := buildBVH(w.Surfaces)
	center := mathx.Vec3{X: w.Max.X / 2, Y: 1.5, Z: w.Max.Z / 2}
	for _, d := range []mathx.Vec3{
		{X: 1}, {X: -1}, {Y: 1}, {Y: -1}, {Z: 1}, {Z: -1},
	} {
		bs, bt, _, _ := b.intersect(center, d)
		rs, rt, _, _ := bruteIntersect(w.Surfaces, center, d)
		if bs == nil || rs == nil {
			t.Fatalf("axis ray %v escaped a closed venue", d)
		}
		if math.Abs(bt-rt) > 1e-9 {
			t.Fatalf("axis ray %v: %v vs %v", d, bt, rt)
		}
	}
}

func TestBVHEmptyWorld(t *testing.T) {
	b := buildBVH(nil)
	if s, _, _, _ := b.intersect(mathx.Vec3{}, mathx.Vec3{Z: 1}); s != nil {
		t.Error("empty BVH reported a hit")
	}
}

func TestWorldIntersectInvalidatedByAddSurface(t *testing.T) {
	w := boxWorld()
	// Build the BVH via a first query.
	if _, _, _, _, ok := w.Intersect(mathx.Vec3{X: 5, Y: 1.5, Z: 2}, mathx.Vec3{Z: 1}); !ok {
		t.Fatal("expected a hit")
	}
	// Add an occluder in front; the cached BVH must be rebuilt.
	w.AddSurface(Surface{
		Origin: mathx.Vec3{X: 4, Y: 0, Z: 5},
		U:      mathx.Vec3{X: 2}, V: mathx.Vec3{Y: 3},
		Tex: w.Surfaces[0].Tex, Label: "occluder",
	})
	_, tt, _, _, ok := w.Intersect(mathx.Vec3{X: 5, Y: 1.5, Z: 2}, mathx.Vec3{Z: 1})
	if !ok || math.Abs(tt-3) > 1e-9 {
		t.Errorf("occluder missed after AddSurface: t=%v ok=%v", tt, ok)
	}
}

func BenchmarkBVHIntersect(b *testing.B) {
	w := BuildGrocery(1)
	bv := buildBVH(w.Surfaces)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := mathx.Vec3{X: rng.Float64() * 80, Y: rng.Float64() * 4, Z: rng.Float64() * 50}
		d := mathx.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalize()
		bv.intersect(o, d)
	}
}

func BenchmarkBruteIntersect(b *testing.B) {
	w := BuildGrocery(1)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := mathx.Vec3{X: rng.Float64() * 80, Y: rng.Float64() * 4, Z: rng.Float64() * 50}
		d := mathx.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalize()
		bruteIntersect(w.Surfaces, o, d)
	}
}
