package power

import (
	"math"
	"testing"
	"time"
)

func avg(t *testing.T, w Workload) float64 {
	t.Helper()
	p, err := Default().Average(w)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCalibrationPoints(t *testing.T) {
	// The Figure 18 levels the model is calibrated to.
	cases := []struct {
		name   string
		w      Workload
		lo, hi float64
	}{
		{"display", DisplayOnly(), 1.0, 1.3},
		{"camera", CameraPreview(), 2.2, 2.6},
		{"vp-compute", VisualPrintComputeOnly(), 5.2, 6.0},
		{"vp-upload", VisualPrintUploadOnly(), 3.0, 3.6},
		{"vp-full", VisualPrintFull(), 6.2, 6.8},
		{"frame-offload", FrameOffload(), 4.6, 5.2},
	}
	for _, c := range cases {
		if p := avg(t, c.w); p < c.lo || p > c.hi {
			t.Errorf("%s = %.2f W, want in [%.1f, %.1f]", c.name, p, c.lo, c.hi)
		}
	}
}

func TestFigure18Ordering(t *testing.T) {
	// display < camera < upload-only < frame-offload < compute-only < full
	seq := []Workload{
		DisplayOnly(), CameraPreview(), VisualPrintUploadOnly(),
		FrameOffload(), VisualPrintComputeOnly(), VisualPrintFull(),
	}
	prev := -1.0
	for i, w := range seq {
		p := avg(t, w)
		if p <= prev {
			t.Fatalf("ordering violated at index %d: %.2f <= %.2f", i, p, prev)
		}
		prev = p
	}
}

func TestVisualPrintCostsMoreThanFrameOffload(t *testing.T) {
	// The paper is explicit that VisualPrint's energy (6.5 W) exceeds
	// whole-frame offload (4.9 W) because SIFT dominates — the honest
	// trade-off the limitations section discusses.
	if avg(t, VisualPrintFull()) <= avg(t, FrameOffload()) {
		t.Error("model lost the compute-dominates-energy property")
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []Workload{
		{ComputeDuty: -0.1},
		{ComputeDuty: 1.1},
		{UploadDuty: -0.1},
		{UploadDuty: 2},
	}
	for i, w := range bad {
		if _, err := Default().Average(w); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEnergy(t *testing.T) {
	e, err := Default().Energy(DisplayOnly(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-11) > 1e-9 { // 1.1 W * 10 s
		t.Errorf("energy = %v J, want 11", e)
	}
}

func TestSeriesMeanMatchesAverage(t *testing.T) {
	m := Default()
	w := VisualPrintFull()
	series, err := m.Series(w, 70*time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 700 {
		t.Fatalf("series length %d", len(series))
	}
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	want := avg(t, w)
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("series mean %.3f, want ~%.3f", mean, want)
	}
	// Ripple present for bursty workloads.
	varies := false
	for i := 1; i < len(series); i++ {
		if series[i] != series[0] {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("series is flat; ripple missing")
	}
}

func TestSeriesValidation(t *testing.T) {
	if _, err := Default().Series(DisplayOnly(), 0, time.Second); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Default().Series(DisplayOnly(), time.Second, 0); err == nil {
		t.Error("zero step accepted")
	}
}
