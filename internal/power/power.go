// Package power models the client's energy consumption for the paper's
// Figure 18. The paper measured a Galaxy S5 with a Monsoon power monitor;
// we substitute a component model — display, camera, CPU compute, radio —
// whose constants are calibrated to the figure's steady-state levels:
//
//	Display only                ≈ 1.1 W
//	Display + camera            ≈ 2.4 W
//	VisualPrint compute only    ≈ 5.6 W   (SIFT dominates)
//	VisualPrint upload only     ≈ 3.3 W
//	VisualPrint compute+upload  ≈ 6.5 W
//	Whole-frame offload         ≈ 4.9 W   (reported in the figure caption)
//
// Average power is additive over active components weighted by duty cycle,
// the standard first-order smartphone energy model.
package power

import (
	"errors"
	"math"
	"time"
)

// Model holds component power draws in watts.
type Model struct {
	Display float64 // screen at AR brightness
	Camera  float64 // imaging pipeline
	Compute float64 // CPU fully busy (SIFT extraction + Bloom lookups)
	Radio   float64 // radio actively transmitting
}

// Default returns the calibrated Galaxy-S5-class model.
func Default() Model {
	return Model{Display: 1.1, Camera: 1.3, Compute: 3.2, Radio: 1.6}
}

// Workload describes a client configuration's duty cycles.
type Workload struct {
	UseDisplay  bool
	UseCamera   bool
	ComputeDuty float64 // fraction of time the CPU is busy, [0, 1]
	UploadDuty  float64 // fraction of time the radio transmits, [0, 1]
}

// Validate reports whether the workload is well-formed.
func (w Workload) Validate() error {
	if w.ComputeDuty < 0 || w.ComputeDuty > 1 || w.UploadDuty < 0 || w.UploadDuty > 1 {
		return errors.New("power: duty cycles must lie in [0, 1]")
	}
	return nil
}

// Figure 18's five traces plus the whole-frame-offload comparison point.
func DisplayOnly() Workload   { return Workload{UseDisplay: true} }
func CameraPreview() Workload { return Workload{UseDisplay: true, UseCamera: true} }

// VisualPrintComputeOnly: SIFT + oracle lookups saturate a core; nothing
// uploaded.
func VisualPrintComputeOnly() Workload {
	return Workload{UseDisplay: true, UseCamera: true, ComputeDuty: 1}
}

// VisualPrintUploadOnly: fingerprints uploaded but no local extraction
// (precomputed features), radio duty from the ~51 KB/query stream.
func VisualPrintUploadOnly() Workload {
	return Workload{UseDisplay: true, UseCamera: true, UploadDuty: 0.56}
}

// VisualPrintFull is the complete pipeline: continuous extraction plus
// fingerprint upload.
func VisualPrintFull() Workload {
	return Workload{UseDisplay: true, UseCamera: true, ComputeDuty: 1, UploadDuty: 0.56}
}

// FrameOffload is conventional whole-frame cloud offload: light local
// compute (encode only) but a saturated radio (~523 KB/query).
func FrameOffload() Workload {
	return Workload{UseDisplay: true, UseCamera: true, ComputeDuty: 0.28, UploadDuty: 1}
}

// Average returns the steady-state average power in watts.
func (m Model) Average(w Workload) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	p := 0.0
	if w.UseDisplay {
		p += m.Display
	}
	if w.UseCamera {
		p += m.Camera
	}
	p += m.Compute * w.ComputeDuty
	p += m.Radio * w.UploadDuty
	return p, nil
}

// Energy returns the energy in joules consumed over the given duration.
func (m Model) Energy(w Workload, d time.Duration) (float64, error) {
	avg, err := m.Average(w)
	if err != nil {
		return 0, err
	}
	return avg * d.Seconds(), nil
}

// Series produces a power-versus-time trace sampled every step, with a
// small deterministic ripple (burst structure of per-frame compute and
// upload) so the series resembles a measured trace rather than a flat
// line. The mean of the series equals Average to within the ripple.
func (m Model) Series(w Workload, duration, step time.Duration) ([]float64, error) {
	avg, err := m.Average(w)
	if err != nil {
		return nil, err
	}
	if step <= 0 || duration <= 0 {
		return nil, errors.New("power: duration and step must be positive")
	}
	n := int(duration / step)
	out := make([]float64, n)
	for i := range out {
		t := float64(i) * step.Seconds()
		// Per-frame compute bursts (~3 Hz) and upload bursts (~1 Hz),
		// each amplitude-bounded to 5% of the mean.
		ripple := 0.05*avg*math.Sin(2*math.Pi*3*t)*w.ComputeDuty +
			0.05*avg*math.Sin(2*math.Pi*1*t+1)*w.UploadDuty
		out[i] = avg + ripple
	}
	return out, nil
}
