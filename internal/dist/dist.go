// Package dist provides the uint8 descriptor-distance kernel shared by
// every byte-vector hot loop in the system: the LSH candidate scoring path
// (the innermost loop of every Locate), the cluster-stage brute-force and
// LSH matchers, and the SIFT descriptor type.
//
// The kernel computes the squared Euclidean distance (sum of squared
// differences) over byte vectors — 128 bytes for SIFT descriptors — with an
// 8-way unrolled main loop and explicit bounds-check elimination. The sum
// is integer arithmetic, so any summation order produces the identical
// result: the unrolled kernel is exactly equal to the scalar reference on
// every input, pinned by exhaustive equivalence tests (TestSqMatchesScalar)
// and guarded against allocation and silent regression by the pinned
// benchmarks in dist_test.go.
package dist

// Sq returns the squared Euclidean distance between a and b over the first
// len(a) bytes. b must be at least as long as a (the hoisted reslice
// panics otherwise, matching the scalar loop's bounds behavior).
//
// The main loop walks 8 bytes per iteration over capacity-clamped
// subslices, which the compiler proves in-bounds once per iteration
// instead of once per byte; the tail loop handles the final len(a)%8
// bytes. For the 128-byte SIFT descriptors every byte is processed by the
// unrolled loop.
func Sq(a, b []byte) int {
	// Hoisted bounds check: after this reslice the compiler knows
	// len(b) == len(a) and drops the per-element checks on b; the i+8
	// loop bound then proves every unrolled index in range on a too.
	b = b[:len(a)]
	s := 0
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d0 := int(a[i]) - int(b[i])
		d1 := int(a[i+1]) - int(b[i+1])
		d2 := int(a[i+2]) - int(b[i+2])
		d3 := int(a[i+3]) - int(b[i+3])
		d4 := int(a[i+4]) - int(b[i+4])
		d5 := int(a[i+5]) - int(b[i+5])
		d6 := int(a[i+6]) - int(b[i+6])
		d7 := int(a[i+7]) - int(b[i+7])
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
		s += d4*d4 + d5*d5 + d6*d6 + d7*d7
	}
	for ; i < len(a); i++ {
		d := int(a[i]) - int(b[i])
		s += d * d
	}
	return s
}

// SqScalar is the one-byte-at-a-time reference implementation the unrolled
// kernel is verified against. It is exported so bit-identity tests in other
// packages can compare against the same reference the kernel's own
// equivalence suite uses; production paths call Sq.
func SqScalar(a, b []byte) int {
	s := 0
	for i := range a {
		d := int(a[i]) - int(b[i])
		s += d * d
	}
	return s
}
