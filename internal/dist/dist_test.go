package dist

import (
	"math/rand"
	"testing"
)

// TestSqMatchesScalar proves the unrolled kernel equal to the scalar
// reference across every length 0..256 (covering all tail residues), with
// adversarial byte patterns (extremes that maximize per-term magnitude) and
// a large randomized sweep.
func TestSqMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fill := func(n int, mode int) ([]byte, []byte) {
		a, b := make([]byte, n), make([]byte, n)
		for i := range a {
			switch mode {
			case 0: // extremes: maximum squared difference every byte
				a[i], b[i] = 0, 255
			case 1:
				a[i], b[i] = 255, 0
			case 2: // identical
				v := byte(rng.Intn(256))
				a[i], b[i] = v, v
			default:
				a[i], b[i] = byte(rng.Intn(256)), byte(rng.Intn(256))
			}
		}
		return a, b
	}
	for n := 0; n <= 256; n++ {
		for mode := 0; mode < 8; mode++ {
			a, b := fill(n, mode)
			if got, want := Sq(a, b), SqScalar(a, b); got != want {
				t.Fatalf("len %d mode %d: Sq=%d scalar=%d", n, mode, got, want)
			}
		}
	}
}

// TestSqLongerB pins that a longer b is measured over len(a) bytes only —
// the behavior callers with equal-length slices never see but the reslice
// must preserve.
func TestSqLongerB(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 6, 8, 250}
	want := 3*3 + 4*4 + 5*5
	if got := Sq(a, b); got != want {
		t.Fatalf("Sq over prefix = %d, want %d", got, want)
	}
}

// TestSqShorterBPanics pins the bounds contract: b shorter than a panics,
// same as the scalar loop indexing past b.
func TestSqShorterBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sq with short b did not panic")
		}
	}()
	Sq(make([]byte, 8), make([]byte, 7))
}

// TestSqZeroAlloc guards the kernel against silently growing an allocation
// (an escape, an implicit conversion): the hot path must stay on the stack.
func TestSqZeroAlloc(t *testing.T) {
	a, b := make([]byte, 128), make([]byte, 128)
	for i := range a {
		a[i], b[i] = byte(i), byte(255-i)
	}
	sink := 0
	allocs := testing.AllocsPerRun(100, func() {
		sink += Sq(a, b)
	})
	if allocs != 0 {
		t.Fatalf("Sq allocates %.1f objects per call, want 0", allocs)
	}
	_ = sink
}

var benchSink int

// BenchmarkSq128 pins the kernel's throughput on the SIFT descriptor size.
// Run with -benchmem: the 0 B/op, 0 allocs/op line is part of the contract
// (see TestSqZeroAlloc for the enforced version).
func BenchmarkSq128(b *testing.B) {
	x, y := make([]byte, 128), make([]byte, 128)
	for i := range x {
		x[i], y[i] = byte(i*7), byte(i*13)
	}
	b.SetBytes(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink += Sq(x, y)
	}
}

// BenchmarkSqScalar128 keeps the reference measurable next to the kernel so
// the unrolling win stays visible in `go test -bench Sq ./internal/dist`.
func BenchmarkSqScalar128(b *testing.B) {
	x, y := make([]byte, 128), make([]byte, 128)
	for i := range x {
		x[i], y[i] = byte(i*7), byte(i*13)
	}
	b.SetBytes(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink += SqScalar(x, y)
	}
}
