package codec

import (
	"bytes"
	"math"
	"testing"

	"visualprint/internal/imaging"
	"visualprint/internal/sift"
)

func testImage(seed uint32) *imaging.Gray {
	return imaging.RenderTexture(
		imaging.NoiseTexture{Seed: seed, Freq: 9, Octaves: 4, Gain: 1}, 160, 120, 2, 1.5)
}

func TestEncodingString(t *testing.T) {
	cases := map[Encoding]string{
		EncodingH264: "H264", EncodingJPEG: "JPEG",
		EncodingPNG: "PNG", EncodingRAW: "RAW", Encoding(9): "Encoding(9)",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q", int(e), e.String())
		}
	}
}

func TestRawRoundTrip(t *testing.T) {
	img := testImage(1)
	data, err := EncodeFrame(img, EncodingRAW, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8+img.W*img.H {
		t.Errorf("RAW size = %d", len(data))
	}
	back, err := DecodeFrame(data, EncodingRAW)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		if math.Abs(float64(back.Pix[i]-img.Pix[i])) > 1.0/255+1e-6 {
			t.Fatalf("pixel %d: %v vs %v", i, back.Pix[i], img.Pix[i])
		}
	}
}

func TestRawDecodeRejectsCorrupt(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2, 3}, EncodingRAW); err == nil {
		t.Error("short frame accepted")
	}
	img := testImage(2)
	data, _ := EncodeFrame(img, EncodingRAW, 0)
	if _, err := DecodeFrame(data[:len(data)-5], EncodingRAW); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestPNGLossless(t *testing.T) {
	img := testImage(3)
	data, err := EncodeFrame(img, EncodingPNG, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFrame(data, EncodingPNG)
	if err != nil {
		t.Fatal(err)
	}
	// PNG is lossless at 8-bit: round trip within quantization error only.
	for i := range img.Pix {
		if math.Abs(float64(back.Pix[i]-img.Pix[i])) > 1.0/255+1e-6 {
			t.Fatalf("PNG not lossless at pixel %d", i)
		}
	}
}

func TestJPEGSmallerThanPNG(t *testing.T) {
	img := testImage(4)
	pngData, _ := EncodeFrame(img, EncodingPNG, 0)
	jpegData, _ := EncodeFrame(img, EncodingJPEG, 0)
	if len(jpegData) >= len(pngData) {
		t.Errorf("JPEG (%d B) should be smaller than PNG (%d B)", len(jpegData), len(pngData))
	}
}

func TestEncodingSizeOrdering(t *testing.T) {
	// Figure 2's vertical ordering at a fixed uplink: H264 < JPEG < PNG < RAW.
	img := testImage(5)
	var sizes [4]int
	for _, e := range []Encoding{EncodingH264, EncodingJPEG, EncodingPNG, EncodingRAW} {
		data, err := EncodeFrame(img, e, 0)
		if err != nil {
			t.Fatal(err)
		}
		sizes[e] = len(data)
	}
	if !(sizes[EncodingH264] < sizes[EncodingJPEG] &&
		sizes[EncodingJPEG] < sizes[EncodingPNG] &&
		sizes[EncodingPNG] < sizes[EncodingRAW]) {
		t.Errorf("size ordering violated: %v", sizes)
	}
}

func TestJPEGDegradesUsableKeypoints(t *testing.T) {
	// Figure 3's effect: SIFT extraction efficacy drops under lossy
	// compression. On synthetic textures raw counts barely move (JPEG
	// blocking artifacts add as many spurious keypoints as the quantization
	// removes), so we measure what the paper's matching pipeline actually
	// depends on: keypoints that survive compression with a matching
	// descriptor at the same location. PNG, being lossless, keeps ~100%.
	cfg := sift.DefaultConfig()
	cfg.ContrastThreshold = 0.01
	img := imaging.RenderTexture(
		imaging.NoiseTexture{Seed: 6, Freq: 14, Octaves: 5, Gain: 1}, 256, 192, 3, 2.2)
	base := sift.Detect(img, cfg)
	if len(base) < 100 {
		t.Fatalf("only %d baseline keypoints", len(base))
	}
	stable := func(enc Encoding, quality int) int {
		data, err := EncodeFrame(img, enc, quality)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeFrame(data, enc)
		if err != nil {
			t.Fatal(err)
		}
		kps := sift.Detect(dec, cfg)
		n := 0
		for i := range kps {
			for j := range base {
				dx, dy := kps[i].X-base[j].X, kps[i].Y-base[j].Y
				if dx*dx+dy*dy < 9 && kps[i].Desc.DistSq(&base[j].Desc) < 40000 {
					n++
					break
				}
			}
		}
		return n
	}
	pngStable := stable(EncodingPNG, 0)
	jpegStable := stable(EncodingJPEG, 10)
	if pngStable < len(base)*95/100 {
		t.Errorf("PNG stable keypoints %d/%d — lossless path broken", pngStable, len(base))
	}
	if jpegStable >= pngStable*9/10 {
		t.Errorf("JPEG stable %d not clearly below PNG stable %d", jpegStable, pngStable)
	}
}

func TestH264FrameSizeModel(t *testing.T) {
	// Calibration point: 1080p at 10 FPS must be ~2 Mbps.
	size := H264FrameSize(1920, 1080)
	mbps := float64(size*8*10) / 1e6
	if mbps < 1.8 || mbps > 2.2 {
		t.Errorf("modeled H264 rate %.2f Mbps at 10 FPS, want ~2", mbps)
	}
	data, err := EncodeFrame(testImage(7), EncodingH264, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != H264FrameSize(160, 120) {
		t.Errorf("placeholder size %d != model %d", len(data), H264FrameSize(160, 120))
	}
	if _, err := DecodeFrame(data, EncodingH264); err == nil {
		t.Error("H264 placeholder should not decode")
	}
}

func TestMarshalKeypointsRoundTrip(t *testing.T) {
	kps := sift.Detect(testImage(8), sift.DefaultConfig())
	if len(kps) == 0 {
		t.Skip("no keypoints")
	}
	data := MarshalKeypoints(kps)
	if len(data) != 10+len(kps)*KeypointWireSize {
		t.Errorf("marshaled size = %d", len(data))
	}
	back, err := UnmarshalKeypoints(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(kps) {
		t.Fatalf("count %d != %d", len(back), len(kps))
	}
	for i := range kps {
		if back[i].Desc != kps[i].Desc {
			t.Fatalf("descriptor %d corrupted", i)
		}
		if math.Abs(back[i].X-kps[i].X) > 1e-3 || math.Abs(back[i].Y-kps[i].Y) > 1e-3 {
			t.Fatalf("coordinates %d corrupted", i)
		}
	}
}

func TestMarshalKeypointsEmpty(t *testing.T) {
	data := MarshalKeypoints(nil)
	back, err := UnmarshalKeypoints(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("got %d keypoints", len(back))
	}
}

func TestUnmarshalKeypointsRejectsCorrupt(t *testing.T) {
	if _, err := UnmarshalKeypoints([]byte("short")); err == nil {
		t.Error("short payload accepted")
	}
	kps := make([]sift.Keypoint, 3)
	data := MarshalKeypoints(kps)
	if _, err := UnmarshalKeypoints(data[:len(data)-10]); err == nil {
		t.Error("truncated payload accepted")
	}
	data[0] ^= 0xff
	if _, err := UnmarshalKeypoints(data); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	orig := bytes.Repeat([]byte("visualprint "), 1000)
	z, err := Gzip(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(orig) {
		t.Errorf("repetitive data did not compress: %d >= %d", len(z), len(orig))
	}
	back, err := Gunzip(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, orig) {
		t.Error("gzip round trip corrupted data")
	}
}

func TestGunzipRejectsGarbage(t *testing.T) {
	if _, err := Gunzip([]byte("not gzip")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFeatureToImageSizeRatio(t *testing.T) {
	// Figure 5's premise: all keypoints serialized take space comparable to
	// (typically more than) the compressed image itself.
	img := imaging.RenderTexture(
		imaging.NoiseTexture{Seed: 11, Freq: 12, Octaves: 4, Gain: 1}, 256, 192, 3, 2.2)
	kps := sift.Detect(img, sift.DefaultConfig())
	if len(kps) < 50 {
		t.Skipf("only %d keypoints", len(kps))
	}
	kpBytes := len(MarshalKeypoints(kps))
	pngData, _ := EncodeFrame(img, EncodingPNG, 0)
	ratio := float64(kpBytes) / float64(len(pngData))
	if ratio < 0.2 {
		t.Errorf("feature/image ratio %.2f unexpectedly small (kp=%d png=%d)", ratio, kpBytes, len(pngData))
	}
}
