// Package codec handles the client's frame and keypoint wire formats: the
// frame encodings compared in Figure 2 (RAW, lossless PNG, lossy JPEG, and
// an H.264 rate model), and the keypoint serialization whose size the paper
// compares to whole images in Figure 5 ("extracted keypoints typically
// require at least as much space as the image itself").
//
// PNG and JPEG use the Go standard library encoders, so their sizes — and
// the keypoint-count degradation under JPEG in Figure 3 — are measured on
// real compression, not modeled. H.264 is a hardware encoder on the phone;
// it is represented by a calibrated bits-per-pixel rate model (see
// H264FrameSize).
package codec

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"image/jpeg"
	"image/png"
	"io"
	"math"

	"visualprint/internal/imaging"
	"visualprint/internal/sift"
)

// Encoding identifies a frame encoding.
type Encoding int

// Frame encodings, in Figure 2's legend order.
const (
	EncodingH264 Encoding = iota
	EncodingJPEG
	EncodingPNG
	EncodingRAW
)

// String returns the figure-legend name of the encoding.
func (e Encoding) String() string {
	switch e {
	case EncodingH264:
		return "H264"
	case EncodingJPEG:
		return "JPEG"
	case EncodingPNG:
		return "PNG"
	case EncodingRAW:
		return "RAW"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// DefaultJPEGQuality matches the compression ratio regime of the paper's
// Figure 2/3 comparison (aggressive lossy compression).
const DefaultJPEGQuality = 40

// h264BitsPerPixel calibrates the H.264 rate model to the paper's Figure 2
// operating point: 10 FPS of high-resolution frames at 2 Mbps. For
// 1920x1080 that is (2e6/10)/(1920*1080) ≈ 0.0965 bits per pixel.
const h264BitsPerPixel = 0.0965

// H264FrameSize returns the modeled per-frame size in bytes of an H.264
// stream at the paper's quality operating point.
func H264FrameSize(w, h int) int64 {
	return int64(math.Ceil(float64(w) * float64(h) * h264BitsPerPixel / 8))
}

// EncodeFrame serializes img with the given encoding and returns the
// encoded bytes. For EncodingH264 the returned buffer is a placeholder of
// the modeled size (the content of a hardware-encoded stream is irrelevant
// to the bandwidth experiments; only its size matters).
func EncodeFrame(img *imaging.Gray, enc Encoding, jpegQuality int) ([]byte, error) {
	switch enc {
	case EncodingRAW:
		buf := make([]byte, 8+img.W*img.H)
		binary.LittleEndian.PutUint32(buf, uint32(img.W))
		binary.LittleEndian.PutUint32(buf[4:], uint32(img.H))
		std := img.ToImage()
		copy(buf[8:], std.Pix)
		return buf, nil
	case EncodingPNG:
		var buf bytes.Buffer
		if err := png.Encode(&buf, img.ToImage()); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case EncodingJPEG:
		if jpegQuality <= 0 {
			jpegQuality = DefaultJPEGQuality
		}
		var buf bytes.Buffer
		if err := jpeg.Encode(&buf, img.ToImage(), &jpeg.Options{Quality: jpegQuality}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case EncodingH264:
		return make([]byte, H264FrameSize(img.W, img.H)), nil
	default:
		return nil, fmt.Errorf("codec: unknown encoding %v", enc)
	}
}

// DecodeFrame decodes a frame produced by EncodeFrame with EncodingRAW,
// EncodingPNG or EncodingJPEG, returning the grayscale image. H.264
// placeholders cannot be decoded.
func DecodeFrame(data []byte, enc Encoding) (*imaging.Gray, error) {
	switch enc {
	case EncodingRAW:
		if len(data) < 8 {
			return nil, errors.New("codec: short RAW frame")
		}
		w := int(binary.LittleEndian.Uint32(data))
		h := int(binary.LittleEndian.Uint32(data[4:]))
		if w <= 0 || h <= 0 || len(data) != 8+w*h {
			return nil, errors.New("codec: corrupt RAW frame header")
		}
		g := imaging.NewGray(w, h)
		for i := 0; i < w*h; i++ {
			g.Pix[i] = float32(data[8+i]) / 255
		}
		return g, nil
	case EncodingPNG:
		img, err := png.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return imaging.FromImage(img), nil
	case EncodingJPEG:
		img, err := jpeg.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return imaging.FromImage(img), nil
	default:
		return nil, fmt.Errorf("codec: cannot decode encoding %v", enc)
	}
}

// KeypointWireSize is the serialized size of one keypoint: four float32
// fields (x, y, scale, orientation) plus the 128-byte descriptor.
const KeypointWireSize = 16 + sift.DescriptorSize

const keypointMagic = "VPKP1\x00"

// MarshalKeypoints serializes keypoints in the client upload wire format.
func MarshalKeypoints(kps []sift.Keypoint) []byte {
	buf := make([]byte, 0, len(keypointMagic)+4+len(kps)*KeypointWireSize)
	buf = append(buf, keypointMagic...)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(kps)))
	buf = append(buf, tmp[:]...)
	for i := range kps {
		kp := &kps[i]
		for _, f := range []float32{float32(kp.X), float32(kp.Y), float32(kp.Scale), float32(kp.Orientation)} {
			binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(f))
			buf = append(buf, tmp[:]...)
		}
		buf = append(buf, kp.Desc[:]...)
	}
	return buf
}

// UnmarshalKeypoints parses the wire format produced by MarshalKeypoints.
func UnmarshalKeypoints(data []byte) ([]sift.Keypoint, error) {
	if len(data) < len(keypointMagic)+4 {
		return nil, errors.New("codec: short keypoint payload")
	}
	if string(data[:len(keypointMagic)]) != keypointMagic {
		return nil, errors.New("codec: bad keypoint magic")
	}
	data = data[len(keypointMagic):]
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) != n*KeypointWireSize {
		return nil, fmt.Errorf("codec: keypoint payload %d bytes, want %d", len(data), n*KeypointWireSize)
	}
	kps := make([]sift.Keypoint, n)
	for i := 0; i < n; i++ {
		rec := data[i*KeypointWireSize:]
		kps[i].X = float64(math.Float32frombits(binary.LittleEndian.Uint32(rec)))
		kps[i].Y = float64(math.Float32frombits(binary.LittleEndian.Uint32(rec[4:])))
		kps[i].Scale = float64(math.Float32frombits(binary.LittleEndian.Uint32(rec[8:])))
		kps[i].Orientation = float64(math.Float32frombits(binary.LittleEndian.Uint32(rec[12:])))
		copy(kps[i].Desc[:], rec[16:KeypointWireSize])
	}
	return kps, nil
}

// Gzip compresses data with gzip at the default level — the "heavy GZIP
// compression" applied to keypoints in Figure 5 and to the downloaded
// oracle filters.
func Gzip(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Gunzip decompresses gzip data.
func Gunzip(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}
