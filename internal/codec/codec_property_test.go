package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"visualprint/internal/imaging"
	"visualprint/internal/sift"
)

// TestKeypointWireRoundTripProperty: arbitrary keypoint fields survive the
// wire format (within float32 precision).
func TestKeypointWireRoundTripProperty(t *testing.T) {
	f := func(x, y, scale, ori float32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kp := sift.Keypoint{
			X: float64(x), Y: float64(y),
			Scale: float64(scale), Orientation: float64(ori),
		}
		for i := range kp.Desc {
			kp.Desc[i] = byte(rng.Intn(256))
		}
		back, err := UnmarshalKeypoints(MarshalKeypoints([]sift.Keypoint{kp}))
		if err != nil || len(back) != 1 {
			return false
		}
		b := back[0]
		eq := func(a, bb float64) bool {
			if math.IsNaN(a) {
				return math.IsNaN(bb)
			}
			if math.IsInf(a, 0) {
				return a == bb
			}
			return float32(a) == float32(bb)
		}
		return eq(kp.X, b.X) && eq(kp.Y, b.Y) && eq(kp.Scale, b.Scale) &&
			eq(kp.Orientation, b.Orientation) && kp.Desc == b.Desc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGzipRoundTripProperty: any payload survives Gzip/Gunzip.
func TestGzipRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		z, err := Gzip(data)
		if err != nil {
			return false
		}
		back, err := Gunzip(z)
		if err != nil {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRawRoundTripProperty: arbitrary small images survive the RAW frame
// format within 8-bit quantization.
func TestRawRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(32), 1+rng.Intn(32)
		img := randImage(rng, w, h)
		data, err := EncodeFrame(img, EncodingRAW, 0)
		if err != nil {
			return false
		}
		back, err := DecodeFrame(data, EncodingRAW)
		if err != nil || back.W != w || back.H != h {
			return false
		}
		for i := range img.Pix {
			if d := float64(back.Pix[i] - img.Pix[i]); d > 1.0/255+1e-6 || d < -(1.0/255+1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randImage(rng *rand.Rand, w, h int) *imaging.Gray {
	img := imaging.NewGray(w, h)
	for i := range img.Pix {
		img.Pix[i] = rng.Float32()
	}
	return img
}
