package obs

import (
	"fmt"
	"io"
	"log"
	"sync/atomic"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// levelOff is above every real level; a logger with this minimum
	// drops everything (see Discard).
	levelOff
)

// Tag returns the level's log-line prefix.
func (l Level) Tag() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "?"
	}
}

// ParseLevel parses a level name (debug, info, warn, error) as written on
// a command line.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Logger is a leveled logger. It exists to give the server, the database
// and the store ONE logging seam: each held a private
// `func(format string, args ...any)` defaulting to log.Printf, so a
// process had to configure (or a test silence) three loggers separately.
// Now they all default to the process logger (Default/SetDefault), and
// vpserver configures logging exactly once.
//
// A nil *Logger drops everything, so plumbing code can log
// unconditionally through an optional logger field.
type Logger struct {
	min  Level
	sink func(lv Level, format string, args ...any)
}

// Discard drops every message — the explicit "silence this component"
// logger tests use.
var Discard = &Logger{min: levelOff}

// New returns a logger writing level-tagged, timestamped lines to w,
// dropping messages below min.
func New(w io.Writer, min Level) *Logger {
	lg := log.New(w, "", log.LstdFlags)
	return &Logger{min: min, sink: func(lv Level, format string, args ...any) {
		lg.Printf(lv.Tag()+" "+format, args...)
	}}
}

// FuncLogger adapts a Printf-shaped function into a Logger that forwards
// every level. It is the bridge for tests that capture log output
// (obs.FuncLogger(t.Logf)) and for pre-existing Printf-style plumbing.
func FuncLogger(f func(format string, args ...any)) *Logger {
	return &Logger{min: LevelDebug, sink: func(_ Level, format string, args ...any) {
		f(format, args...)
	}}
}

// logf is the single filtered emission path.
func (l *Logger) logf(lv Level, format string, args ...any) {
	if l == nil || l.sink == nil || lv < l.min {
		return
	}
	l.sink(lv, format, args...)
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// defaultLogger is the process-wide default, routed through the standard
// log package so it composes with log.SetOutput / log.SetFlags.
var defaultLogger atomic.Pointer[Logger]

func init() {
	defaultLogger.Store(&Logger{min: LevelInfo, sink: func(lv Level, format string, args ...any) {
		log.Printf(lv.Tag()+" "+format, args...)
	}})
}

// Default returns the process-wide logger that every component falls back
// to when its owner never configured one.
func Default() *Logger { return defaultLogger.Load() }

// SetDefault replaces the process-wide logger (nil restores silence-free
// behavior is NOT provided: pass Discard to silence). vpserver calls this
// once at startup with the level chosen on its command line.
func SetDefault(l *Logger) {
	if l == nil {
		l = Discard
	}
	defaultLogger.Store(l)
}
