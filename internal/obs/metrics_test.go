package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Error("Counter not idempotent")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments recorded something")
	}
	if got := r.Report(); got.Counters != nil {
		t.Error("nil registry Report not zero")
	}
	var tr *Tracer
	trace := tr.Begin("op")
	if trace != nil {
		t.Error("nil tracer Begin returned a trace")
	}
	trace.Stage(StageLSHQuery, time.Millisecond)
	trace.StageSince(StageCluster, time.Now())
	if tr.End(trace) != 0 || tr.Slow() != nil {
		t.Error("nil tracer End/Slow not zero")
	}
	tr.ObserveStage(StagePoseSolve, time.Second)
}

func TestHistogramBucketing(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want int
	}{{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, 41}, {math.MaxInt64, 63}} {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Bounds must tile the non-negative int64 range without gaps.
	for i := 1; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		ploLo, prevHi := bucketBounds(i - 1)
		_ = ploLo
		if lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, previous ends at %d", i, lo, prevHi)
		}
		if bucketOf(lo) != i || (hi != math.MaxInt64 && bucketOf(hi) != i) {
			t.Errorf("bucket %d bounds [%d,%d] do not map back", i, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1000 samples uniform on [1ms, 2ms): p50 ~ 1.5ms within one bucket's
	// interpolation error (the whole range is inside bucket 21).
	for i := 0; i < 1000; i++ {
		h.Observe(1_000_000 + int64(i)*1_000)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d", got)
	}
	p50 := h.Quantile(0.5)
	// All mass is in the [2^20, 2^21) bucket; interpolation assumes a
	// uniform spread over the bucket, so the estimate can be anywhere in
	// it — just require it lands in the observed bucket and ordering holds.
	if p50 < 1<<20 || p50 >= 1<<21 {
		t.Errorf("p50 = %d, outside the populated bucket", p50)
	}
	if h.Quantile(0.99) < p50 {
		t.Error("p99 < p50")
	}
	if got, want := h.Max(), int64(1_999_000); got != want {
		t.Errorf("max = %d, want %d", got, want)
	}
	if st := h.Stats(); st.Count != 1000 || st.Max != 1_999_000 || st.P99 < st.P50 {
		t.Errorf("stats inconsistent: %+v", st)
	}
	// Quantiles never exceed the observed max, even for the top bucket.
	h2 := &Histogram{}
	h2.Observe(5)
	if got := h2.Quantile(0.99); got > 5 {
		t.Errorf("p99 of a single 5 = %d", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestReportRoundTripsThroughJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_query").Add(12)
	r.Gauge("inflight").Set(3)
	r.Histogram("locate_ns").Observe(1_500_000)
	tr := NewTracer(r, 0) // slow threshold 0: everything is "slow"
	trace := tr.Begin("locate")
	trace.Stage(StageLSHQuery, 2*time.Millisecond)
	trace.Stage(StagePoseSolve, 5*time.Millisecond)
	tr.End(trace)

	rep := r.Report()
	if rep.Counters["requests_query"] != 12 || rep.Gauges["inflight"] != 3 {
		t.Errorf("report missing instruments: %+v", rep)
	}
	if rep.Histograms["locate_ns"].Count != 1 {
		t.Errorf("histogram missing: %+v", rep.Histograms)
	}
	if len(rep.Slow) != 1 || rep.Slow[0].Op != "locate" {
		t.Fatalf("slow log: %+v", rep.Slow)
	}
	if rep.Slow[0].StageNs["lsh_query"] < int64(2*time.Millisecond) {
		t.Errorf("stage breakdown lost: %+v", rep.Slow[0].StageNs)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["requests_query"] != 12 || len(back.Slow) != 1 ||
		back.Slow[0].StageNs["pose_solve"] != rep.Slow[0].StageNs["pose_solve"] {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

func TestTracerSlowRingEvictsOldest(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, 0)
	ops := []string{"a", "b"}
	for i := 0; i < slowRingSize+10; i++ {
		trace := tr.Begin(ops[i%2])
		tr.End(trace)
	}
	slow := tr.Slow()
	if len(slow) != slowRingSize {
		t.Fatalf("ring holds %d, want %d", len(slow), slowRingSize)
	}
	// Newest first: entry 0 is the last End.
	if slow[0].Op != ops[(slowRingSize+9)%2] {
		t.Errorf("newest entry is %q", slow[0].Op)
	}
}

func TestTracerThresholdFiltersFastRequests(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, time.Hour)
	trace := tr.Begin("fast")
	trace.Stage(StageCluster, time.Microsecond)
	if total := tr.End(trace); total <= 0 {
		t.Errorf("End returned %d", total)
	}
	if got := tr.Slow(); len(got) != 0 {
		t.Errorf("fast request retained: %+v", got)
	}
	// Stage histograms still fed.
	if r.Histogram("stage_cluster_ns").Count() != 1 {
		t.Error("stage histogram not fed for fast request")
	}
}

func TestLoggerLevelsAndCapture(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelWarn)
	l.Debugf("nope %d", 1)
	l.Infof("nope %d", 2)
	l.Warnf("yes %d", 3)
	l.Errorf("yes %d", 4)
	out := buf.String()
	if strings.Contains(out, "nope") {
		t.Errorf("below-threshold lines emitted: %q", out)
	}
	if !strings.Contains(out, "WARN yes 3") || !strings.Contains(out, "ERROR yes 4") {
		t.Errorf("missing lines: %q", out)
	}

	var got []string
	fl := FuncLogger(func(format string, args ...any) {
		got = append(got, format)
	})
	fl.Debugf("captured")
	if len(got) != 1 || got[0] != "captured" {
		t.Errorf("FuncLogger capture: %v", got)
	}

	Discard.Errorf("dropped")
	var nilLogger *Logger
	nilLogger.Warnf("dropped too")

	if _, err := ParseLevel("warn"); err != nil {
		t.Error(err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestDebugMuxServesMetricsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_query").Add(2)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Counters["requests_query"] != 2 {
		t.Errorf("debug endpoint report: %+v", rep)
	}
	// pprof index must be mounted too.
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Errorf("pprof index status %d", pp.StatusCode)
	}
}

// TestRecordPathZeroAllocs pins the whole record surface — counter add,
// gauge set, histogram observe, and a full tracer Begin/Stage/End cycle —
// at zero steady-state heap allocations, the contract that lets these
// instruments sit inside Locate without disturbing it.
func TestRecordPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; see race_off_test.go")
	}
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tr := NewTracer(r, time.Hour)
	// Warm the trace pool.
	tr.End(tr.Begin("warm"))

	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Observe(123456)
	}); allocs != 0 {
		t.Errorf("counter/gauge/histogram record path allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		trace := tr.Begin("locate")
		trace.Stage(StageLSHQuery, 5*time.Microsecond)
		trace.StageSince(StagePoseSolve, time.Now())
		h.Observe(tr.End(trace))
	}); allocs != 0 {
		t.Errorf("tracer cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSlowPathZeroAllocs: even a request that lands in the slow ring must
// not allocate — the ring is fixed storage, copied into, never grown.
func TestSlowPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; see race_off_test.go")
	}
	r := NewRegistry()
	tr := NewTracer(r, 0) // every request is slow
	tr.End(tr.Begin("warm"))
	if allocs := testing.AllocsPerRun(200, func() {
		trace := tr.Begin("slow")
		trace.Stage(StageWALAppend, time.Millisecond)
		tr.End(trace)
	}); allocs != 0 {
		t.Errorf("slow-ring record path allocates %.1f objects/op, want 0", allocs)
	}
}
