package obs

import (
	"sync"
	"time"
)

// Stage identifies one phase of a server request in the per-request
// tracer. The set covers the paper's per-stage latency accounting: LSH
// candidate retrieval, oracle scoring, spatial clustering and the pose
// solve on the query path, plus WAL append and snapshot serialization on
// the durability path.
type Stage int

const (
	StageLSHQuery Stage = iota
	StageOracleScore
	StageCluster
	StagePoseSolve
	StageWALAppend
	StageSnapshot
	numStages
)

// String returns the stage's metric-name fragment.
func (s Stage) String() string {
	switch s {
	case StageLSHQuery:
		return "lsh_query"
	case StageOracleScore:
		return "oracle_score"
	case StageCluster:
		return "cluster"
	case StagePoseSolve:
		return "pose_solve"
	case StageWALAppend:
		return "wal_append"
	case StageSnapshot:
		return "snapshot"
	default:
		return "unknown"
	}
}

// Trace accumulates the per-stage durations of one request. Traces are
// pooled by their Tracer: Begin hands one out, End returns it, and the
// steady-state cycle performs no heap allocation. A nil *Trace is a
// no-op, so stage recording can be unconditional in instrumented code.
type Trace struct {
	op     string
	start  time.Time
	stages [numStages]int64
}

// Stage adds d to the trace's accumulator for s.
func (tr *Trace) Stage(s Stage, d time.Duration) {
	if tr == nil {
		return
	}
	tr.stages[s] += d.Nanoseconds()
}

// StageSince adds the time elapsed since t0 to the accumulator for s.
func (tr *Trace) StageSince(s Stage, t0 time.Time) {
	if tr == nil {
		return
	}
	tr.stages[s] += time.Since(t0).Nanoseconds()
}

// slowRingSize bounds the retained slow-request log. 64 entries at a few
// hundred bytes each: enough recent history to diagnose a tail-latency
// episode, small enough to never matter.
const slowRingSize = 64

// SlowRequest is one retained slow request: when it started, what it was,
// how long it took, and where the time went.
type SlowRequest struct {
	Op       string `json:"op"`
	UnixNano int64  `json:"unix_nano"`
	TotalNs  int64  `json:"total_ns"`
	// StageNs breaks the total down by stage (stages that recorded no
	// time are omitted). Stage time can undershoot the total — glue code
	// and lock waits between stages belong to no stage.
	StageNs map[string]int64 `json:"stage_ns,omitempty"`
}

// slowEntry is the ring's allocation-free representation of a SlowRequest.
type slowEntry struct {
	op     string
	unix   int64
	total  int64
	stages [numStages]int64
}

// Tracer hands out pooled Traces and aggregates what they record: each
// stage feeds a per-stage histogram in the registry (stage_<name>_ns),
// and requests whose total latency crosses the slow threshold are copied
// into a fixed ring buffer with their stage breakdown. All methods are
// nil-receiver safe and the Begin/Stage/End cycle is allocation-free.
type Tracer struct {
	slowNs int64
	stage  [numStages]*Histogram
	pool   sync.Pool

	mu   sync.Mutex
	ring [slowRingSize]slowEntry
	next int
	n    int
}

// NewTracer creates a tracer whose stage histograms are registered in r
// as stage_<stage>_ns, and which retains requests slower than slow in its
// ring buffer. The tracer's slow log is included in r's Report.
func NewTracer(r *Registry, slow time.Duration) *Tracer {
	t := &Tracer{slowNs: slow.Nanoseconds()}
	t.pool.New = func() any { return new(Trace) }
	for s := Stage(0); s < numStages; s++ {
		t.stage[s] = r.Histogram("stage_" + s.String() + "_ns")
	}
	r.attachTracer(t)
	return t
}

// Begin starts a trace for one request. op labels the request in the slow
// log; use a constant string so the call stays allocation-free.
func (t *Tracer) Begin(op string) *Trace {
	if t == nil {
		return nil
	}
	tr := t.pool.Get().(*Trace)
	tr.op = op
	tr.start = time.Now()
	tr.stages = [numStages]int64{}
	return tr
}

// ObserveStage feeds one stage histogram directly, for request-scoped
// stages measured outside a full trace (e.g. oracle scoring in the
// in-process pipeline).
func (t *Tracer) ObserveStage(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.stage[s].Observe(d.Nanoseconds())
}

// End finishes the trace: stage durations feed the stage histograms, the
// request lands in the slow ring if its total crosses the threshold, and
// the trace returns to the pool. It returns the request's total duration
// in nanoseconds (0 for a nil tracer or trace), which the caller can feed
// its own per-operation histogram.
func (t *Tracer) End(tr *Trace) int64 {
	if t == nil || tr == nil {
		return 0
	}
	total := time.Since(tr.start).Nanoseconds()
	for s, ns := range tr.stages {
		if ns > 0 {
			t.stage[s].Observe(ns)
		}
	}
	if total >= t.slowNs {
		t.mu.Lock()
		e := &t.ring[t.next]
		e.op = tr.op
		e.unix = tr.start.UnixNano()
		e.total = total
		e.stages = tr.stages
		t.next = (t.next + 1) % slowRingSize
		if t.n < slowRingSize {
			t.n++
		}
		t.mu.Unlock()
	}
	t.pool.Put(tr)
	return total
}

// Slow returns the retained slow requests, newest first.
func (t *Tracer) Slow() []SlowRequest {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SlowRequest, 0, t.n)
	for i := 0; i < t.n; i++ {
		e := &t.ring[(t.next-1-i+2*slowRingSize)%slowRingSize]
		sr := SlowRequest{Op: e.op, UnixNano: e.unix, TotalNs: e.total}
		for s, ns := range e.stages {
			if ns > 0 {
				if sr.StageNs == nil {
					sr.StageNs = make(map[string]int64)
				}
				sr.StageNs[Stage(s).String()] = ns
			}
		}
		out = append(out, sr)
	}
	return out
}
