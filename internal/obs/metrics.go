// Package obs is the observability subsystem: lock-free counters and
// gauges, log-bucketed latency histograms with quantile estimation, a
// per-request stage tracer with a slow-request ring buffer, a leveled
// logger, and an HTTP debug handler. It is dependency-free (stdlib only)
// and shared by the server, the store and the CLIs.
//
// Two properties shape every type here:
//
//   - The record path is zero-allocation and lock-free (atomic ops only),
//     pinned by testing.AllocsPerRun tests, so instruments can sit on the
//     Locate and ingest hot paths without disturbing what they measure.
//   - Every method is nil-receiver safe: a nil *Counter, *Gauge,
//     *Histogram, *Tracer or *Registry is a no-op. Code can therefore be
//     instrumented unconditionally and pay nothing — not even a branch
//     past the nil check — when observability is disabled.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: bucket 0 holds values
// <= 0 and bucket i (1..63) holds [2^(i-1), 2^i). Power-of-two bucketing
// needs no configuration, covers the full int64 range (nanoseconds to
// ~292 years), and keeps the relative quantile-estimation error bounded by
// the bucket ratio (a factor of 2 worst case, typically far less after
// intra-bucket interpolation).
const histBuckets = 64

// Histogram is a log-bucketed distribution, designed for latencies in
// nanoseconds (any non-negative int64 works). Observe is lock-free and
// allocation-free; quantiles are estimated at read time by linear
// interpolation inside the power-of-two bucket holding the target rank.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a value to its bucket index: 0 for v <= 0, else
// floor(log2(v)) + 1.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i == histBuckets-1 {
		return lo, math.MaxInt64
	}
	return lo, lo*2 - 1
}

// Observe records one value. Negative values count as zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded values:
// the bucket holding the target rank is located by a cumulative scan, and
// the value is interpolated linearly inside it. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var buckets [histBuckets]uint64
	var count uint64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return quantileFrom(&buckets, count, q, h.max.Load())
}

// quantileFrom estimates a quantile from a loaded bucket array. max caps
// the estimate so a top-bucket interpolation never reports a value beyond
// anything actually observed.
func quantileFrom(buckets *[histBuckets]uint64, count uint64, q float64, max int64) int64 {
	if count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(count)))
	if target < 1 {
		target = 1
	}
	if target > count {
		target = count
	}
	var cum uint64
	for i, b := range buckets {
		if b == 0 {
			continue
		}
		if cum+b >= target {
			lo, hi := bucketBounds(i)
			frac := float64(target-cum) / float64(b)
			v := lo + int64(frac*float64(hi-lo))
			if max > 0 && v > max {
				v = max
			}
			return v
		}
		cum += b
	}
	return max
}

// HistogramStats is a read-time summary of a Histogram — the form
// histograms take in a Report (and therefore in the msgMetrics payload
// and the HTTP debug endpoint).
type HistogramStats struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// Stats summarizes the histogram. The three quantiles are estimated from
// one consistent bucket load.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	var buckets [histBuckets]uint64
	var count uint64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	max := h.max.Load()
	return HistogramStats{
		Count: count,
		Sum:   h.sum.Load(),
		Max:   max,
		P50:   quantileFrom(&buckets, count, 0.50, max),
		P90:   quantileFrom(&buckets, count, 0.90, max),
		P99:   quantileFrom(&buckets, count, 0.99, max),
	}
}

// Registry is a named collection of instruments. Registration (the
// Counter/Gauge/Histogram getters) is idempotent and mutex-guarded —
// it happens at setup, not on hot paths; reading an instrument held by
// the caller is lock-free.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracers  []*Tracer
}

// NewRegistry creates an empty registry; its uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// attachTracer adds t's slow-request log to the registry's reports.
func (r *Registry) attachTracer(t *Tracer) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracers = append(r.tracers, t)
}

// Report is a point-in-time summary of every instrument in a registry.
// It is the JSON schema of both the msgMetrics RPC payload and the HTTP
// /debug/metrics endpoint, so a Report marshals and unmarshals cleanly.
type Report struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Counters      map[string]uint64         `json:"counters"`
	Gauges        map[string]int64          `json:"gauges"`
	Histograms    map[string]HistogramStats `json:"histograms"`
	// Slow lists recent requests over the tracer's slow threshold,
	// newest first, with per-stage duration breakdowns.
	Slow []SlowRequest `json:"slow_requests,omitempty"`
}

// Report summarizes every registered instrument. A nil registry returns a
// zero Report.
func (r *Registry) Report() Report {
	if r == nil {
		return Report{}
	}
	r.mu.Lock()
	rep := Report{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Counters:      make(map[string]uint64, len(r.counters)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		Histograms:    make(map[string]HistogramStats, len(r.hists)),
	}
	for name, c := range r.counters {
		rep.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		rep.Gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	tracers := append([]*Tracer(nil), r.tracers...)
	r.mu.Unlock()
	// Histogram summaries outside the registry lock: Stats loads 64
	// atomics per histogram and must not stall registration-free readers.
	for name, h := range hists {
		rep.Histograms[name] = h.Stats()
	}
	for _, t := range tracers {
		rep.Slow = append(rep.Slow, t.Slow()...)
	}
	sort.Slice(rep.Slow, func(i, j int) bool { return rep.Slow[i].UnixNano > rep.Slow[j].UnixNano })
	return rep
}
