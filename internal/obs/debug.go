package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// ServeHTTP serves the registry's Report as indented JSON, making a
// *Registry mountable on any mux. This is what vpserver's -debug-addr
// listener exposes at /debug/metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Report()) //nolint:errcheck // a failed write is the client's problem
}

// DebugMux returns the standard debug surface over a registry: JSON
// metrics at /debug/metrics and the runtime profiles under /debug/pprof/
// (index, cmdline, profile, symbol, trace — the net/http/pprof set).
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", r)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
