//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in. Exact
// allocation-count assertions are skipped under -race: the detector's
// shadow-memory bookkeeping and sync.Pool instrumentation allocate on
// their own, which says nothing about the production code path (the Go
// standard library skips its own alloc-count tests the same way).
const raceEnabled = false
