package imaging

import (
	"math"
	"testing"
)

func sampleRange(t *testing.T, tex Texture, span float64) (lo, hi float64) {
	t.Helper()
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			v := tex.Sample(float64(i)/40*span, float64(j)/40*span)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

func TestNoiseTextureDeterministic(t *testing.T) {
	tex := NoiseTexture{Seed: 9, Freq: 5, Octaves: 3, Gain: 1}
	if tex.Sample(1.25, 2.5) != tex.Sample(1.25, 2.5) {
		t.Error("NoiseTexture not deterministic")
	}
}

func TestNoiseTextureSeedChangesPattern(t *testing.T) {
	a := NoiseTexture{Seed: 1, Freq: 5, Octaves: 2, Gain: 1}
	b := NoiseTexture{Seed: 2, Freq: 5, Octaves: 2, Gain: 1}
	diff := 0.0
	for i := 0; i < 100; i++ {
		u, v := float64(i)*0.13, float64(i)*0.07
		diff += math.Abs(a.Sample(u, v) - b.Sample(u, v))
	}
	if diff < 1 {
		t.Errorf("seeds 1 and 2 produce nearly identical noise (sum |diff| = %v)", diff)
	}
}

func TestNoiseTextureHasContrast(t *testing.T) {
	lo, hi := sampleRange(t, NoiseTexture{Seed: 4, Freq: 8, Octaves: 3, Gain: 1}, 2)
	if hi-lo < 0.2 {
		t.Errorf("noise range [%v, %v] too flat for a painting surrogate", lo, hi)
	}
}

func TestTileTextureRepeats(t *testing.T) {
	tex := TileTexture{Seed: 7, TileSize: 0.5, Line: 0.02, Contrast: 1}
	// The pattern one tile over must be identical: globally repeated features.
	for i := 0; i < 50; i++ {
		u := 0.05 + float64(i)*0.008
		v := 0.07 + float64(i)*0.006
		if a, b := tex.Sample(u, v), tex.Sample(u+0.5, v); math.Abs(a-b) > 1e-12 {
			t.Fatalf("tile not periodic at (%v,%v): %v vs %v", u, v, a, b)
		}
		if a, b := tex.Sample(u, v), tex.Sample(u, v+1.0); math.Abs(a-b) > 1e-12 {
			t.Fatalf("tile not periodic vertically at (%v,%v): %v vs %v", u, v, a, b)
		}
	}
}

func TestTileTextureGroutLines(t *testing.T) {
	tex := TileTexture{Seed: 7, TileSize: 0.5, Line: 0.02, Contrast: 1}
	if got := tex.Sample(0.005, 0.25); got != 0.15 {
		t.Errorf("grout sample = %v, want 0.15", got)
	}
}

func TestStampTextureRepeatsAcrossInstances(t *testing.T) {
	// Two stamps with the same seed at different wall positions must look
	// identical in stamp-local coordinates (the door-knob effect).
	a := StampTexture{Seed: 3, Background: 0.8, CenterU: 1, CenterV: 1, Radius: 0.1}
	b := StampTexture{Seed: 3, Background: 0.8, CenterU: 4, CenterV: 2, Radius: 0.1}
	for i := 0; i < 30; i++ {
		du := (float64(i%6) - 2.5) * 0.03
		dv := (float64(i/6) - 2.0) * 0.03
		va := a.Sample(1+du, 1+dv)
		vb := b.Sample(4+du, 2+dv)
		if math.Abs(va-vb) > 1e-12 {
			t.Fatalf("stamp instances differ at offset (%v,%v): %v vs %v", du, dv, va, vb)
		}
	}
}

func TestFlatTexture(t *testing.T) {
	tex := FlatTexture{Intensity: 0.9}
	lo, hi := sampleRange(t, tex, 3)
	if lo != 0.9 || hi != 0.9 {
		t.Errorf("flat texture not flat: [%v, %v]", lo, hi)
	}
}

func TestRenderTextureDims(t *testing.T) {
	g := RenderTexture(FlatTexture{Intensity: 0.5}, 12, 8, 1, 1)
	if g.W != 12 || g.H != 8 {
		t.Errorf("dims = %dx%d", g.W, g.H)
	}
	if g.At(3, 3) != 0.5 {
		t.Errorf("value = %v", g.At(3, 3))
	}
}

func TestTexturesInUnitRange(t *testing.T) {
	texs := []Texture{
		NoiseTexture{Seed: 1, Freq: 6, Octaves: 3, Gain: 1},
		TileTexture{Seed: 2, TileSize: 0.4, Line: 0.02, Contrast: 1},
		StampTexture{Seed: 3, Background: 0.8, CenterU: 0.5, CenterV: 0.5, Radius: 0.15},
		FlatTexture{Intensity: 0.7},
	}
	for i, tex := range texs {
		lo, hi := sampleRange(t, tex, 1.5)
		if lo < -0.01 || hi > 1.01 {
			t.Errorf("texture %d out of range: [%v, %v]", i, lo, hi)
		}
	}
}
