package imaging

import "testing"

func TestBlurScoreSharpVsBlurred(t *testing.T) {
	sharp := RenderTexture(NoiseTexture{Seed: 5, Freq: 12, Octaves: 4, Gain: 1}, 120, 90, 2, 1.5)
	blurred := MotionBlur(sharp, 9)
	ss := BlurScore(sharp)
	bs := BlurScore(blurred)
	if ss <= 0 {
		t.Fatalf("sharp score = %v", ss)
	}
	if bs >= ss/3 {
		t.Errorf("blurred score %v not well below sharp %v", bs, ss)
	}
}

func TestBlurScoreMonotoneInBlurLength(t *testing.T) {
	img := RenderTexture(NoiseTexture{Seed: 6, Freq: 10, Octaves: 3, Gain: 1}, 100, 80, 2, 1.6)
	prev := BlurScore(img)
	for _, l := range []int{3, 7, 13} {
		s := BlurScore(MotionBlur(img, l))
		if s >= prev {
			t.Errorf("score did not drop at blur length %d: %v >= %v", l, s, prev)
		}
		prev = s
	}
}

func TestBlurScoreFlatImage(t *testing.T) {
	g := NewGray(50, 50)
	if s := BlurScore(g); s != 0 {
		t.Errorf("flat image score = %v", s)
	}
	if s := BlurScore(NewGray(2, 2)); s != 0 {
		t.Errorf("tiny image score = %v", s)
	}
}

func TestMotionBlurPreservesMean(t *testing.T) {
	img := RenderTexture(NoiseTexture{Seed: 7, Freq: 8, Octaves: 2, Gain: 1}, 60, 40, 1, 1)
	blurred := MotionBlur(img, 5)
	var m0, m1 float64
	for i := range img.Pix {
		m0 += float64(img.Pix[i])
		m1 += float64(blurred.Pix[i])
	}
	if d := (m1 - m0) / m0; d > 0.02 || d < -0.02 {
		t.Errorf("mean drifted %.3f under motion blur", d)
	}
}

func TestMotionBlurIdentity(t *testing.T) {
	img := RenderTexture(NoiseTexture{Seed: 8, Freq: 8, Octaves: 2, Gain: 1}, 30, 20, 1, 1)
	b := MotionBlur(img, 1)
	for i := range img.Pix {
		if b.Pix[i] != img.Pix[i] {
			t.Fatal("length-1 blur should be identity")
		}
	}
}
