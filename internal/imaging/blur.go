package imaging

// BlurScore returns the variance of the Laplacian of g — the standard
// cheap sharpness measure. Motion-blurred frames have attenuated high
// frequencies and score low; sharp, textured frames score high.
//
// The VisualPrint client "performs a quick check on each frame to detect
// blur (often due to quick motion), discarding such frames": blurred
// frames lack ample visual features and would never match on the server,
// so processing them only adds latency.
func BlurScore(g *Gray) float64 {
	if g.W < 3 || g.H < 3 {
		return 0
	}
	// Laplacian via the 4-neighbor kernel; accumulate mean and variance in
	// one pass (Welford not needed at this scale; two accumulators are
	// fine in float64).
	var sum, sumSq float64
	n := 0
	for y := 1; y < g.H-1; y++ {
		row := g.Pix[y*g.W:]
		up := g.Pix[(y-1)*g.W:]
		down := g.Pix[(y+1)*g.W:]
		for x := 1; x < g.W-1; x++ {
			lap := float64(up[x] + down[x] + row[x-1] + row[x+1] - 4*row[x])
			sum += lap
			sumSq += lap * lap
			n++
		}
	}
	mean := sum / float64(n)
	return sumSq/float64(n) - mean*mean
}

// MotionBlur approximates linear motion blur: a box filter of the given
// pixel length along the x axis. It is used by tests and the evaluation to
// synthesize the blurred frames a moving handheld camera produces.
func MotionBlur(g *Gray, length int) *Gray {
	if length <= 1 {
		return g.Clone()
	}
	out := NewGray(g.W, g.H)
	half := length / 2
	inv := 1 / float32(length)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var acc float32
			for k := -half; k < length-half; k++ {
				acc += g.At(x+k, y)
			}
			out.Pix[y*g.W+x] = acc * inv
		}
	}
	return out
}
