// Package imaging provides the grayscale image substrate for VisualPrint:
// a float32 image type, separable Gaussian filtering, resampling, image
// gradients, and conversions to the standard library image types used by the
// PNG/JPEG codecs. SIFT (internal/sift) and the procedural scene renderer
// (internal/scene) are built on this package.
package imaging

import (
	"errors"
	"image"
	"image/color"
	"math"
)

// Gray is a single-channel float32 image with intensities nominally in
// [0, 1]. Pixels are stored row-major.
type Gray struct {
	W, H int
	Pix  []float32
}

// NewGray allocates a zeroed W x H image.
func NewGray(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y). Coordinates outside the image are clamped
// to the border (replicate padding), which is the boundary handling used by
// the Gaussian pyramid.
func (g *Gray) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v float32) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Bilinear samples the image at fractional coordinates with bilinear
// interpolation and border clamping.
func (g *Gray) Bilinear(x, y float64) float32 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	v00 := g.At(x0, y0)
	v10 := g.At(x0+1, y0)
	v01 := g.At(x0, y0+1)
	v11 := g.At(x0+1, y0+1)
	top := v00 + (v10-v00)*fx
	bot := v01 + (v11-v01)*fx
	return top + (bot-top)*fy
}

// ToImage converts g to an 8-bit standard-library grayscale image, clamping
// intensities to [0, 1].
func (g *Gray) ToImage() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := g.Pix[y*g.W+x]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			img.SetGray(x, y, color.Gray{Y: uint8(v*255 + 0.5)})
		}
	}
	return img
}

// FromImage converts any standard-library image to a Gray, using the
// luminance of each pixel.
func FromImage(src image.Image) *Gray {
	b := src.Bounds()
	g := NewGray(b.Dx(), b.Dy())
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			c := color.GrayModel.Convert(src.At(b.Min.X+x, b.Min.Y+y)).(color.Gray)
			g.Pix[y*g.W+x] = float32(c.Y) / 255
		}
	}
	return g
}

// gaussianKernel returns a normalized 1-D Gaussian kernel with the
// conventional radius ceil(3*sigma).
func gaussianKernel(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	radius := int(math.Ceil(3 * sigma))
	k := make([]float32, 2*radius+1)
	sum := float32(0)
	inv := -1 / (2 * sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := float32(math.Exp(float64(i*i) * inv))
		k[i+radius] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// GaussianBlur returns a new image: g convolved with a Gaussian of the given
// standard deviation, computed separably (horizontal then vertical pass)
// with replicate border handling. A sigma <= 0 returns a copy of g.
func GaussianBlur(g *Gray, sigma float64) *Gray {
	k := gaussianKernel(sigma)
	if len(k) == 1 {
		return g.Clone()
	}
	radius := len(k) / 2
	tmp := NewGray(g.W, g.H)
	out := NewGray(g.W, g.H)
	// Horizontal pass.
	for y := 0; y < g.H; y++ {
		row := g.Pix[y*g.W : (y+1)*g.W]
		dst := tmp.Pix[y*g.W : (y+1)*g.W]
		for x := 0; x < g.W; x++ {
			var acc float32
			if x >= radius && x < g.W-radius {
				// Fast interior path: no bounds checks on neighbors.
				base := row[x-radius:]
				for i, kv := range k {
					acc += base[i] * kv
				}
			} else {
				for i, kv := range k {
					acc += g.At(x+i-radius, y) * kv
				}
			}
			dst[x] = acc
		}
	}
	// Vertical pass.
	for y := 0; y < g.H; y++ {
		dst := out.Pix[y*g.W : (y+1)*g.W]
		if y >= radius && y < g.H-radius {
			for x := 0; x < g.W; x++ {
				var acc float32
				idx := (y-radius)*g.W + x
				for _, kv := range k {
					acc += tmp.Pix[idx] * kv
					idx += g.W
				}
				dst[x] = acc
			}
		} else {
			for x := 0; x < g.W; x++ {
				var acc float32
				for i, kv := range k {
					acc += tmp.At(x, y+i-radius) * kv
				}
				dst[x] = acc
			}
		}
	}
	return out
}

// Downsample returns g at half resolution by taking every other pixel. This
// matches the octave subsampling in the SIFT Gaussian pyramid (the input is
// assumed pre-blurred).
func Downsample(g *Gray) *Gray {
	w, h := g.W/2, g.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = g.At(2*x, 2*y)
		}
	}
	return out
}

// Resize returns g resampled to w x h with bilinear interpolation.
func Resize(g *Gray, w, h int) (*Gray, error) {
	if w <= 0 || h <= 0 {
		return nil, errors.New("imaging: Resize target must be positive")
	}
	out := NewGray(w, h)
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = g.Bilinear((float64(x)+0.5)*sx-0.5, (float64(y)+0.5)*sy-0.5)
		}
	}
	return out, nil
}

// Subtract returns a - b pixelwise. The images must have equal dimensions.
func Subtract(a, b *Gray) (*Gray, error) {
	if a.W != b.W || a.H != b.H {
		return nil, errors.New("imaging: Subtract dimension mismatch")
	}
	out := NewGray(a.W, a.H)
	for i := range out.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return out, nil
}

// Gradient computes central-difference image gradients, returning the
// magnitude and orientation (radians, in (-pi, pi]) at (x, y).
func Gradient(g *Gray, x, y int) (mag, theta float64) {
	dx := float64(g.At(x+1, y) - g.At(x-1, y))
	dy := float64(g.At(x, y+1) - g.At(x, y-1))
	return math.Sqrt(dx*dx + dy*dy), math.Atan2(dy, dx)
}
