package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAtClampsBorders(t *testing.T) {
	g := NewGray(3, 2)
	g.Set(0, 0, 0.5)
	g.Set(2, 1, 0.9)
	if g.At(-5, -5) != 0.5 {
		t.Errorf("At(-5,-5) = %v, want clamp to (0,0)", g.At(-5, -5))
	}
	if g.At(10, 10) != 0.9 {
		t.Errorf("At(10,10) = %v, want clamp to (2,1)", g.At(10, 10))
	}
}

func TestSetOutOfBoundsIgnored(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(-1, 0, 1)
	g.Set(0, -1, 1)
	g.Set(2, 0, 1)
	g.Set(0, 2, 1)
	for _, p := range g.Pix {
		if p != 0 {
			t.Fatal("out-of-bounds Set modified the image")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(1, 1, 0.7)
	c := g.Clone()
	c.Set(1, 1, 0.1)
	if g.At(1, 1) != 0.7 {
		t.Error("Clone shares pixel storage")
	}
}

func TestBilinearAtGridPoints(t *testing.T) {
	g := NewGray(3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			g.Set(x, y, float32(y*3+x))
		}
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if got := g.Bilinear(float64(x), float64(y)); got != float32(y*3+x) {
				t.Errorf("Bilinear(%d,%d) = %v", x, y, got)
			}
		}
	}
	// Halfway between 0 and 1 should be 0.5.
	if got := g.Bilinear(0.5, 0); got != 0.5 {
		t.Errorf("Bilinear(0.5,0) = %v, want 0.5", got)
	}
}

func TestGaussianBlurPreservesConstant(t *testing.T) {
	g := NewGray(16, 16)
	for i := range g.Pix {
		g.Pix[i] = 0.42
	}
	b := GaussianBlur(g, 2.0)
	for i, p := range b.Pix {
		if math.Abs(float64(p)-0.42) > 1e-5 {
			t.Fatalf("pixel %d = %v, want 0.42", i, p)
		}
	}
}

func TestGaussianBlurPreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGray(32, 32)
	var sum float64
	for i := range g.Pix {
		g.Pix[i] = rng.Float32()
		sum += float64(g.Pix[i])
	}
	b := GaussianBlur(g, 1.5)
	var bsum float64
	for _, p := range b.Pix {
		bsum += float64(p)
	}
	// Mean is preserved up to border effects; tolerate 2%.
	if math.Abs(bsum-sum)/sum > 0.02 {
		t.Errorf("mean drifted: %v -> %v", sum, bsum)
	}
}

func TestGaussianBlurReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewGray(64, 64)
	for i := range g.Pix {
		g.Pix[i] = rng.Float32()
	}
	variance := func(img *Gray) float64 {
		var m float64
		for _, p := range img.Pix {
			m += float64(p)
		}
		m /= float64(len(img.Pix))
		var s float64
		for _, p := range img.Pix {
			d := float64(p) - m
			s += d * d
		}
		return s / float64(len(img.Pix))
	}
	if variance(GaussianBlur(g, 2)) >= variance(g) {
		t.Error("blur did not reduce variance of white noise")
	}
}

func TestGaussianBlurZeroSigma(t *testing.T) {
	g := NewGray(4, 4)
	g.Set(2, 2, 1)
	b := GaussianBlur(g, 0)
	for i := range g.Pix {
		if b.Pix[i] != g.Pix[i] {
			t.Fatal("sigma=0 should be identity")
		}
	}
}

func TestDownsampleHalves(t *testing.T) {
	g := NewGray(8, 6)
	d := Downsample(g)
	if d.W != 4 || d.H != 3 {
		t.Errorf("Downsample dims = %dx%d", d.W, d.H)
	}
	// 1x1 floor.
	tiny := Downsample(NewGray(1, 1))
	if tiny.W != 1 || tiny.H != 1 {
		t.Errorf("tiny downsample dims = %dx%d", tiny.W, tiny.H)
	}
}

func TestResize(t *testing.T) {
	g := NewGray(10, 10)
	for i := range g.Pix {
		g.Pix[i] = 0.3
	}
	r, err := Resize(g, 7, 13)
	if err != nil {
		t.Fatal(err)
	}
	if r.W != 7 || r.H != 13 {
		t.Errorf("dims = %dx%d", r.W, r.H)
	}
	for _, p := range r.Pix {
		if math.Abs(float64(p)-0.3) > 1e-6 {
			t.Fatalf("constant image changed under resize: %v", p)
		}
	}
	if _, err := Resize(g, 0, 5); err == nil {
		t.Error("want error for zero target")
	}
}

func TestSubtract(t *testing.T) {
	a := NewGray(2, 2)
	b := NewGray(2, 2)
	a.Set(0, 0, 0.8)
	b.Set(0, 0, 0.3)
	d, err := Subtract(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(d.At(0, 0))-0.5) > 1e-6 {
		t.Errorf("Subtract = %v", d.At(0, 0))
	}
	if _, err := Subtract(a, NewGray(3, 2)); err == nil {
		t.Error("want dimension-mismatch error")
	}
}

func TestGradientOnRamp(t *testing.T) {
	// Horizontal ramp: gradient points in +x with magnitude ~ slope*2/2.
	g := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			g.Set(x, y, float32(x)*0.1)
		}
	}
	mag, theta := Gradient(g, 4, 4)
	if math.Abs(mag-0.2) > 1e-5 {
		t.Errorf("mag = %v, want 0.2", mag)
	}
	if math.Abs(theta) > 1e-6 {
		t.Errorf("theta = %v, want 0", theta)
	}
}

func TestImageRoundTrip(t *testing.T) {
	g := NewGray(5, 4)
	for i := range g.Pix {
		g.Pix[i] = float32(i) / float32(len(g.Pix))
	}
	back := FromImage(g.ToImage())
	if back.W != g.W || back.H != g.H {
		t.Fatalf("dims changed: %dx%d", back.W, back.H)
	}
	for i := range g.Pix {
		if math.Abs(float64(back.Pix[i]-g.Pix[i])) > 1.0/255+1e-6 {
			t.Fatalf("pixel %d: %v vs %v", i, back.Pix[i], g.Pix[i])
		}
	}
}

func TestToImageClamps(t *testing.T) {
	g := NewGray(2, 1)
	g.Set(0, 0, -3)
	g.Set(1, 0, 7)
	img := g.ToImage()
	if img.GrayAt(0, 0).Y != 0 || img.GrayAt(1, 0).Y != 255 {
		t.Errorf("clamping failed: %v %v", img.GrayAt(0, 0), img.GrayAt(1, 0))
	}
}

func TestBilinearWithinRange(t *testing.T) {
	g := NewGray(6, 6)
	rng := rand.New(rand.NewSource(2))
	for i := range g.Pix {
		g.Pix[i] = rng.Float32()
	}
	f := func(x, y float64) bool {
		v := g.Bilinear(math.Mod(math.Abs(x), 6), math.Mod(math.Abs(y), 6))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
