package imaging

import (
	"math"

	"visualprint/internal/hash"
)

// Texture is a procedural intensity field sampled in texture coordinates
// (u, v), both in meters of surface extent. Implementations must be pure
// functions of (u, v) so that re-rendering the same surface from a different
// camera pose observes the same physical pattern — the property that makes
// cross-view keypoint matching meaningful.
type Texture interface {
	// Sample returns the intensity in [0, 1] at surface point (u, v).
	Sample(u, v float64) float64
}

// valueNoise2 is deterministic 2-D value noise: a seeded hash at integer
// lattice points, smoothly interpolated between them.
type valueNoise2 struct {
	seed uint32
	freq float64
}

func (n valueNoise2) lattice(ix, iy int64) float64 {
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(ix >> (8 * i))
		buf[8+i] = byte(iy >> (8 * i))
	}
	return float64(hash.Sum32(buf[:], n.seed)) / float64(math.MaxUint32)
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

func (n valueNoise2) at(u, v float64) float64 {
	x, y := u*n.freq, v*n.freq
	x0, y0 := math.Floor(x), math.Floor(y)
	tx, ty := smoothstep(x-x0), smoothstep(y-y0)
	ix, iy := int64(x0), int64(y0)
	v00 := n.lattice(ix, iy)
	v10 := n.lattice(ix+1, iy)
	v01 := n.lattice(ix, iy+1)
	v11 := n.lattice(ix+1, iy+1)
	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

// NoiseTexture is multi-octave value noise. With a unique seed per surface
// it acts like the paper's "one-of-a-kind paintings": visually rich and
// globally unique, producing high-entropy keypoints.
type NoiseTexture struct {
	Seed    uint32
	Freq    float64 // base spatial frequency (features per meter)
	Octaves int     // number of noise octaves (>= 1)
	Gain    float64 // contrast in [0, 1]
}

// Sample implements Texture.
func (t NoiseTexture) Sample(u, v float64) float64 {
	oct := t.Octaves
	if oct < 1 {
		oct = 1
	}
	total, amp, norm := 0.0, 1.0, 0.0
	freq := t.Freq
	for o := 0; o < oct; o++ {
		n := valueNoise2{seed: t.Seed + uint32(o)*0x9e3779b9, freq: freq}
		total += n.at(u, v) * amp
		norm += amp
		amp *= 0.55
		freq *= 2.1
	}
	x := total / norm
	gain := t.Gain
	if gain <= 0 {
		gain = 1
	}
	return 0.5 + (x-0.5)*gain
}

// TileTexture is a repeating grid pattern with grout lines — the paper's
// "checkerboard floor or the regular pattern of ceiling tiles". Every tile
// repeats the same micro-noise (same seed), so its keypoints are locally
// sharp but globally non-unique.
type TileTexture struct {
	Seed     uint32
	TileSize float64 // edge length of one tile in meters
	Line     float64 // grout line half-width in meters
	Contrast float64
}

// Sample implements Texture.
func (t TileTexture) Sample(u, v float64) float64 {
	ts := t.TileSize
	if ts <= 0 {
		ts = 0.5
	}
	fu := u - ts*math.Floor(u/ts)
	fv := v - ts*math.Floor(v/ts)
	// Grout lines near tile boundaries.
	if fu < t.Line || fu > ts-t.Line || fv < t.Line || fv > ts-t.Line {
		return 0.15
	}
	// Identical micro-pattern inside every tile: sample noise in
	// *within-tile* coordinates so the pattern repeats exactly.
	n := NoiseTexture{Seed: t.Seed, Freq: 14 / ts, Octaves: 2, Gain: t.Contrast}
	return 0.35 + 0.5*n.Sample(fu, fv)
}

// StampTexture overlays a small, high-contrast "fixture" motif (door knob,
// light switch) on a plain background. With the same seed reused across
// rooms it reproduces the paper's "unique in a room, but repeated in every
// room" keypoints.
type StampTexture struct {
	Seed       uint32
	Background float64 // base wall intensity
	CenterU    float64 // stamp center in texture coordinates (meters)
	CenterV    float64
	Radius     float64 // stamp radius in meters
}

// Sample implements Texture.
func (t StampTexture) Sample(u, v float64) float64 {
	du, dv := u-t.CenterU, v-t.CenterV
	r := math.Sqrt(du*du + dv*dv)
	if r > t.Radius {
		// Faint large-scale shading so walls are not perfectly flat.
		n := NoiseTexture{Seed: t.Seed ^ 0xabcdef, Freq: 0.8, Octaves: 1, Gain: 0.1}
		return t.Background + (n.Sample(u, v)-0.5)*0.05
	}
	// Inside the stamp: concentric, seeded detail in stamp-local
	// coordinates so every instance looks identical.
	n := NoiseTexture{Seed: t.Seed, Freq: 30 / t.Radius / 10, Octaves: 2, Gain: 1}
	ring := 0.5 + 0.5*math.Cos(r/t.Radius*6*math.Pi)
	return 0.2 + 0.6*ring*n.Sample(du/t.Radius, dv/t.Radius)
}

// FlatTexture is a featureless surface ("blank, white walls") that yields
// almost no keypoints.
type FlatTexture struct {
	Intensity float64
}

// Sample implements Texture.
func (t FlatTexture) Sample(u, v float64) float64 { return t.Intensity }

// RenderTexture rasterizes tex over a w x h pixel image spanning
// uSpan x vSpan meters. Used by texture tests and the Figure 3/5 image
// corpus generator.
func RenderTexture(tex Texture, w, h int, uSpan, vSpan float64) *Gray {
	g := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := (float64(x) + 0.5) / float64(w) * uSpan
			v := (float64(y) + 0.5) / float64(h) * vSpan
			g.Pix[y*w+x] = float32(tex.Sample(u, v))
		}
	}
	return g
}
