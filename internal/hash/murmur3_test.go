package hash

import (
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x86 32-bit, from the canonical C++
// implementation (smhasher).
func TestSum32Vectors(t *testing.T) {
	cases := []struct {
		data string
		seed uint32
		want uint32
	}{
		{"", 0, 0},
		{"", 1, 0x514e28b7},
		{"", 0xffffffff, 0x81f16f39},
		{"test", 0, 0xba6bd213},
		{"test", 0x9747b28c, 0x704b81dc},
		{"Hello, world!", 0, 0xc0363e43},
		{"Hello, world!", 0x9747b28c, 0x24884cba},
		{"The quick brown fox jumps over the lazy dog", 0x9747b28c, 0x2fa826cd},
	}
	for _, c := range cases {
		if got := Sum32([]byte(c.data), c.seed); got != c.want {
			t.Errorf("Sum32(%q, %#x) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

// Reference vectors for MurmurHash3 x64 128-bit.
func TestSum128Vectors(t *testing.T) {
	cases := []struct {
		data           string
		seed           uint32
		wantH1, wantH2 uint64
	}{
		{"", 0, 0, 0},
		{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"19 Jan 2038 at 3:14:07 AM", 0, 0xb89e5988b737affc, 0x664fc2950231b2cb},
		{"The quick brown fox jumps over the lazy dog.", 0, 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
	}
	for _, c := range cases {
		h1, h2 := Sum128([]byte(c.data), c.seed)
		if h1 != c.wantH1 || h2 != c.wantH2 {
			t.Errorf("Sum128(%q) = (%#x, %#x), want (%#x, %#x)",
				c.data, h1, h2, c.wantH1, c.wantH2)
		}
	}
}

func TestSum32Deterministic(t *testing.T) {
	f := func(data []byte, seed uint32) bool {
		return Sum32(data, seed) == Sum32(data, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum128SeedSensitivity(t *testing.T) {
	data := []byte("visualprint")
	a1, a2 := Sum128(data, 1)
	b1, b2 := Sum128(data, 2)
	if a1 == b1 && a2 == b2 {
		t.Error("different seeds produced identical 128-bit hashes")
	}
}

func TestSum128TailLengths(t *testing.T) {
	// Exercise every tail-switch branch (lengths 0..16) and verify inputs
	// that differ in the last byte hash differently.
	base := []byte("0123456789abcdef")
	for n := 1; n <= 16; n++ {
		a := append([]byte(nil), base[:n]...)
		b := append([]byte(nil), base[:n]...)
		b[n-1] ^= 0xff
		a1, a2 := Sum128(a, 0)
		b1, b2 := Sum128(b, 0)
		if a1 == b1 && a2 == b2 {
			t.Errorf("len %d: flipped byte did not change hash", n)
		}
	}
}

func TestSum32Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits on
	// average; assert a loose bound (>= 8 of 32).
	data := []byte("avalanche-test-data")
	orig := Sum32(data, 0)
	totalFlips := 0
	trials := 0
	for i := range data {
		for b := 0; b < 8; b++ {
			data[i] ^= 1 << b
			h := Sum32(data, 0)
			data[i] ^= 1 << b
			diff := orig ^ h
			for d := diff; d != 0; d &= d - 1 {
				totalFlips++
			}
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 8 || avg > 24 {
		t.Errorf("average flipped output bits = %.2f, want near 16", avg)
	}
}

func TestSum64MatchesSum128(t *testing.T) {
	data := []byte("sum64")
	h1, _ := Sum128(data, 7)
	if got := Sum64(data, 7); got != h1 {
		t.Errorf("Sum64 = %#x, want %#x", got, h1)
	}
}

func BenchmarkSum32_128B(b *testing.B) {
	data := make([]byte, 128)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum32(data, uint32(i))
	}
}

func BenchmarkSum128_128B(b *testing.B) {
	data := make([]byte, 128)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum128(data, uint32(i))
	}
}
