// Package hash implements MurmurHash3, the non-cryptographic hash the paper
// selects for Bloom-filter indexing ("a hash is selected for execution speed
// over cryptographic guarantees, such as Murmur-3"). Both the 32-bit x86 and
// the 128-bit x64 variants are provided; the 128-bit variant supplies the
// independent hash pairs used for double hashing into Bloom filters.
package hash

import "encoding/binary"

const (
	c1_32 uint32 = 0xcc9e2d51
	c2_32 uint32 = 0x1b873593
)

// Sum32 computes the MurmurHash3 x86 32-bit hash of data with the given
// seed.
func Sum32(data []byte, seed uint32) uint32 {
	h := seed
	n := len(data)
	// Body: 4-byte blocks.
	for len(data) >= 4 {
		k := binary.LittleEndian.Uint32(data)
		data = data[4:]

		k *= c1_32
		k = (k << 15) | (k >> 17)
		k *= c2_32

		h ^= k
		h = (h << 13) | (h >> 19)
		h = h*5 + 0xe6546b64
	}
	// Tail.
	var k uint32
	switch len(data) {
	case 3:
		k ^= uint32(data[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(data[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(data[0])
		k *= c1_32
		k = (k << 15) | (k >> 17)
		k *= c2_32
		h ^= k
	}
	// Finalization.
	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

const (
	c1_64 uint64 = 0x87c37b91114253d5
	c2_64 uint64 = 0x4cf5ad432745937f
)

func rotl64(x uint64, r uint) uint64 { return (x << r) | (x >> (64 - r)) }

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Sum128 computes the MurmurHash3 x64 128-bit hash of data with the given
// seed, returned as two 64-bit words. The two words are effectively
// independent, which lets a Bloom filter derive k index functions as
// h1 + i*h2 (Kirsch–Mitzenmacher double hashing).
func Sum128(data []byte, seed uint32) (uint64, uint64) {
	h1 := uint64(seed)
	h2 := uint64(seed)
	n := len(data)

	for len(data) >= 16 {
		k1 := binary.LittleEndian.Uint64(data)
		k2 := binary.LittleEndian.Uint64(data[8:])
		data = data[16:]

		k1 *= c1_64
		k1 = rotl64(k1, 31)
		k1 *= c2_64
		h1 ^= k1

		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2_64
		k2 = rotl64(k2, 33)
		k2 *= c1_64
		h2 ^= k2

		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	var k1, k2 uint64
	switch len(data) {
	case 15:
		k2 ^= uint64(data[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(data[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(data[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(data[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(data[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(data[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(data[8])
		k2 *= c2_64
		k2 = rotl64(k2, 33)
		k2 *= c1_64
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(data[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(data[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(data[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(data[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(data[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(data[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(data[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(data[0])
		k1 *= c1_64
		k1 = rotl64(k1, 31)
		k1 *= c2_64
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// Sum64 returns the first 64-bit word of Sum128; convenient for map keys.
func Sum64(data []byte, seed uint32) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}
