// Package testutil holds helpers shared by the repo's test suites.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakPrefixes identify goroutines this repo owns: anything parked in the
// server, store or obs packages after a test finishes is a leak (client
// demux loops, v2 connection writers, accept loops, WAL committers,
// background snapshotters).
var leakPrefixes = []string{
	"visualprint/internal/server.",
	"visualprint/internal/store.",
	"visualprint/internal/obs.",
	"visualprint/internal/track.",
}

// CheckGoroutines registers a cleanup that fails the test if any
// repo-owned goroutine is still running once the test (including its
// other cleanups, e.g. Close calls registered earlier) has finished.
// Shutdown is asynchronous — Close unblocks before every goroutine has
// unwound — so the check polls briefly before declaring a leak.
//
// Call it FIRST in a test, before anything that registers Close cleanups:
// t.Cleanup runs last-in-first-out, so the leak check must be registered
// before the resources it polices are torn down.
func CheckGoroutines(tb testing.TB) {
	tb.Helper()
	tb.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var stuck []string
		for {
			stuck = leakedGoroutines()
			if len(stuck) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if len(stuck) > 0 {
			tb.Errorf("%d leaked goroutine(s) after test cleanup:\n%s",
				len(stuck), strings.Join(stuck, "\n\n"))
		}
	})
}

// VerifyNone reports leaked goroutines once, without polling — suitable
// for a TestMain-level final sweep. It returns an error instead of
// failing a test so TestMain can decide the exit code.
func VerifyNone() error {
	deadline := time.Now().Add(2 * time.Second)
	var stuck []string
	for {
		stuck = leakedGoroutines()
		if len(stuck) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("%d leaked goroutine(s) after all tests:\n%s",
		len(stuck), strings.Join(stuck, "\n\n"))
}

// leakedGoroutines returns the stacks of running goroutines owned by this
// repo's concurrent components.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaks []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if isLeak(g) {
			leaks = append(leaks, g)
		}
	}
	return leaks
}

// isLeak reports whether a goroutine stack belongs to a repo-owned
// background loop. The first line ("goroutine N [running]:") is skipped;
// test goroutines calling into these packages synchronously are not
// leaks, but they are parked in testing.* frames at check time anyway,
// because the check runs from the cleanup goroutine.
func isLeak(stack string) bool {
	if strings.Contains(stack, "testing.") || strings.Contains(stack, "testutil.") {
		return false
	}
	for _, p := range leakPrefixes {
		if strings.Contains(stack, p) {
			return true
		}
	}
	return false
}
