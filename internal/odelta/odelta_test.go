package odelta

import (
	"bytes"
	"math/rand"
	"testing"

	"visualprint/internal/core"
)

// oracleBytes serializes an oracle for byte-equality comparison.
func oracleBytes(t *testing.T, o *core.Oracle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func randDesc(rng *rand.Rand, dim int) []byte {
	d := make([]byte, dim)
	for i := range d {
		d[i] = byte(rng.Intn(256))
	}
	return d
}

// smallParams shrinks the test oracle so the property test's many
// serializations stay fast.
func smallParams() core.Params {
	p := core.TestParams()
	p.CountersPerTable = 1 << 12
	p.VerifyBits = 1 << 14
	return p
}

// TestDeltaChainByteEqual is the acceptance property: over randomized
// ingest sequences, applying the per-epoch delta chain reconstructs the
// oracle byte-equal to a full serialization at EVERY epoch.
func TestDeltaChainByteEqual(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		p := smallParams()
		if seed == 42 {
			p.VerifyBits = 0 // exercise the nil-verify layout too
		}
		server, err := core.New(p)
		if err != nil {
			t.Fatal(err)
		}
		client, err := core.New(p)
		if err != nil {
			t.Fatal(err)
		}
		dim := p.LSH.Dim
		epochs := 8
		for e := 1; e <= epochs; e++ {
			prev, err := server.Clone()
			if err != nil {
				t.Fatal(err)
			}
			batch := 1 + rng.Intn(20)
			for i := 0; i < batch; i++ {
				if err := server.Insert(randDesc(rng, dim)); err != nil {
					t.Fatal(err)
				}
			}
			rec, err := Diff(prev, server, uint64(e-1), uint64(e), DefaultFullRatio)
			if err != nil {
				t.Fatal(err)
			}
			if rec.FromInserts != prev.Inserts() || rec.ToInserts != server.Inserts() {
				t.Fatalf("seed %d epoch %d: record inserts %d->%d, want %d->%d",
					seed, e, rec.FromInserts, rec.ToInserts, prev.Inserts(), server.Inserts())
			}
			client, err = Apply(client, rec)
			if err != nil {
				t.Fatalf("seed %d epoch %d: apply: %v", seed, e, err)
			}
			got, want := oracleBytes(t, client), oracleBytes(t, server)
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: reconstructed oracle differs from server at epoch %d (%d vs %d bytes)",
					seed, e, len(got), len(want))
			}
		}
	}
}

// TestDeltaChainMultiStep applies a chain of several records in one
// ApplyChain call and checks byte-equality of the end state, plus the
// chain wire round trip.
func TestDeltaChainMultiStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := smallParams()
	server, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	client, err := server.Clone()
	if err != nil {
		t.Fatal(err)
	}
	var recs []*Record
	for e := 1; e <= 5; e++ {
		prev, err := server.Clone()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5+rng.Intn(10); i++ {
			if err := server.Insert(randDesc(rng, p.LSH.Dim)); err != nil {
				t.Fatal(err)
			}
		}
		rec, err := Diff(prev, server, uint64(e-1), uint64(e), DefaultFullRatio)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	decoded, err := DecodeChain(EncodeChain(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(recs) {
		t.Fatalf("chain round trip: %d records, want %d", len(decoded), len(recs))
	}
	for i := range recs {
		if decoded[i].FromEpoch != recs[i].FromEpoch || decoded[i].Full != recs[i].Full ||
			!bytes.Equal(decoded[i].Payload, recs[i].Payload) {
			t.Fatalf("chain round trip: record %d differs", i)
		}
	}
	client, err = ApplyChain(client, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleBytes(t, client), oracleBytes(t, server)) {
		t.Fatal("chained reconstruction differs from server oracle")
	}
}

// TestFullFallback forces the ratio cutoff: a huge batch on a tiny oracle
// must come back as a Full record, and applying it must still be
// byte-equal.
func TestFullFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := smallParams()
	p.CountersPerTable = 1 << 8 // tiny tables: a big batch touches most cells
	server, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := server.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := server.Insert(randDesc(rng, p.LSH.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := Diff(prev, server, 0, 1, DefaultFullRatio)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Full {
		t.Fatal("dense batch should fall back to a Full record")
	}
	got, err := Apply(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleBytes(t, got), oracleBytes(t, server)) {
		t.Fatal("full record did not reconstruct byte-equal oracle")
	}
}

// TestApplyRejectsWrongBase: a sparse delta against a mismatched base must
// be refused, not silently corrupt the client oracle.
func TestApplyRejectsWrongBase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := smallParams()
	server, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := server.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := server.Insert(randDesc(rng, p.LSH.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := Diff(prev, server, 0, 1, DefaultFullRatio)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := stale.Insert(randDesc(rng, p.LSH.Dim)); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(stale, rec); err == nil {
		t.Fatal("apply against wrong base should fail")
	}
}
