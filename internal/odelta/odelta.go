// Package odelta encodes the cell-wise delta between two versions of the
// same uniqueness oracle as a sparse, varint+gzip record — the oracle
// distribution format behind versioned epochs (DESIGN.md "Oracle
// distribution").
//
// A counting-Bloom oracle only ever gains counter increments and verify
// bits, so the set of cells that change across one wardrive ingest batch is
// tiny relative to the filter arrays. A delta record lists exactly those
// cells with their NEW absolute values (not increments or XOR masks), which
// makes records composable: applying epochs n→n+1 then n+1→n+2 yields the
// identical bytes as applying one record n→n+2, and replay is idempotent.
// Records gzip the sparse payload; when an ingest batch touches so many
// cells that the sparse form stops paying for itself, Diff falls back to a
// Full record carrying a gzip full oracle blob, which also resets the chain
// base for clients that were outside the delta window.
package odelta

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"visualprint/internal/bloom"
	"visualprint/internal/codec"
	"visualprint/internal/core"
)

// Record is one epoch step of the oracle's version history: the cell-wise
// delta (or full blob) carrying a client whose oracle matches
// (FromEpoch, FromInserts) to (ToEpoch, ToInserts).
type Record struct {
	// FromEpoch/ToEpoch are the engine-assigned oracle versions the record
	// spans. A Full record ignores FromEpoch on apply (its payload replaces
	// the client state outright).
	FromEpoch uint64
	ToEpoch   uint64
	// FromInserts/ToInserts are the oracle insert counts before and after,
	// used to reject application against a mismatched base.
	FromInserts uint64
	ToInserts   uint64
	// Full marks a payload that is a gzip full oracle blob instead of a
	// sparse cell delta.
	Full bool
	// Payload is gzip-compressed: either the sparse cell encoding or a
	// full core.Oracle serialization.
	Payload []byte
}

// WireBytes returns the record's transfer cost — what a subscriber pays to
// receive it.
func (r *Record) WireBytes() int { return len(r.Payload) }

// deltaMagic versions the sparse payload layout.
const deltaMagic = "VPOD1\x00"

// DefaultFullRatio is the sparse-vs-full cutoff: when the uncompressed
// sparse encoding exceeds this fraction of the oracle's in-memory size, the
// delta has lost its sparsity advantage (gzip of the dense arrays will beat
// gzip of the cell list) and Diff emits a Full record instead.
const DefaultFullRatio = 0.5

// Diff encodes the cell-wise delta carrying old (the published oracle
// before an ingest batch) to cur (after it). old and cur must share
// parameters and old must genuinely be an earlier version of cur. maxRatio
// is the sparse-vs-full cutoff (<=0 uses DefaultFullRatio); a batch dense
// enough to cross it comes back as a Full record.
func Diff(old, cur *core.Oracle, fromEpoch, toEpoch uint64, maxRatio float64) (*Record, error) {
	if old.Params() != cur.Params() {
		return nil, errors.New("odelta: diff between oracles with different parameters")
	}
	if old.Inserts() > cur.Inserts() {
		return nil, errors.New("odelta: old oracle has more inserts than current")
	}
	if maxRatio <= 0 {
		maxRatio = DefaultFullRatio
	}
	var buf bytes.Buffer
	buf.WriteString(deltaMagic)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	budget := int(float64(cur.MemoryBytes()) * maxRatio)
	for t := 0; t < cur.NumTables(); t++ {
		ot, ct := old.Table(t), cur.Table(t)
		// Two passes: count, then gap-encode. DiffCells is word-granular,
		// so the double scan stays cheap on the sparse batches this format
		// exists for; dense batches bail to a Full record below anyway.
		var count uint64
		if err := ct.DiffCells(ot, func(uint64, uint32) { count++ }); err != nil {
			return nil, err
		}
		putUvarint(count)
		prev := uint64(0)
		first := true
		err := ct.DiffCells(ot, func(i uint64, v uint32) {
			if first {
				putUvarint(i)
				first = false
			} else {
				putUvarint(i - prev)
			}
			prev = i
			putUvarint(uint64(v))
		})
		if err != nil {
			return nil, err
		}
		putUvarint(ct.Inserts())
		if buf.Len() > budget {
			return fullRecord(cur, fromEpoch, toEpoch, old.Inserts())
		}
	}
	if cv := cur.Verify(); cv != nil {
		var count uint64
		if err := cv.DiffBits(old.Verify(), func(uint64) { count++ }); err != nil {
			return nil, err
		}
		putUvarint(count)
		prev := uint64(0)
		first := true
		err := cv.DiffBits(old.Verify(), func(i uint64) {
			if first {
				putUvarint(i)
				first = false
			} else {
				putUvarint(i - prev)
			}
			prev = i
		})
		if err != nil {
			return nil, err
		}
	}
	if buf.Len() > budget {
		return fullRecord(cur, fromEpoch, toEpoch, old.Inserts())
	}
	payload, err := codec.Gzip(buf.Bytes())
	if err != nil {
		return nil, err
	}
	return &Record{
		FromEpoch:   fromEpoch,
		ToEpoch:     toEpoch,
		FromInserts: old.Inserts(),
		ToInserts:   cur.Inserts(),
		Payload:     payload,
	}, nil
}

// fullRecord wraps cur's full gzip blob as a chain-base record.
func fullRecord(cur *core.Oracle, fromEpoch, toEpoch, fromInserts uint64) (*Record, error) {
	blob, err := bloom.GzipBytes(cur)
	if err != nil {
		return nil, err
	}
	return &Record{
		FromEpoch:   fromEpoch,
		ToEpoch:     toEpoch,
		FromInserts: fromInserts,
		ToInserts:   cur.Inserts(),
		Full:        true,
		Payload:     blob,
	}, nil
}

// FullRecord encodes cur as a Full record at epoch — the explicit form the
// server uses to serve clients outside the delta window.
func FullRecord(cur *core.Oracle, epoch uint64) (*Record, error) {
	return fullRecord(cur, epoch, epoch, cur.Inserts())
}

// Apply advances o by one record and returns the resulting oracle: o
// itself, mutated, for a sparse delta; a freshly decoded oracle for a Full
// record (o is untouched and may be nil in that case). A sparse delta is
// refused unless o's insert count matches the record's recorded base.
func Apply(o *core.Oracle, rec *Record) (*core.Oracle, error) {
	if rec.Full {
		raw, err := codec.Gunzip(rec.Payload)
		if err != nil {
			return nil, err
		}
		return core.Read(bytes.NewReader(raw))
	}
	if o == nil {
		return nil, errors.New("odelta: sparse delta needs a base oracle")
	}
	if o.Inserts() != rec.FromInserts {
		return nil, fmt.Errorf("odelta: delta base has %d inserts, oracle has %d", rec.FromInserts, o.Inserts())
	}
	raw, err := codec.Gunzip(rec.Payload)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(deltaMagic) || string(raw[:len(deltaMagic)]) != deltaMagic {
		return nil, errors.New("odelta: bad delta magic")
	}
	r := bytes.NewReader(raw[len(deltaMagic):])
	for t := 0; t < o.NumTables(); t++ {
		tab := o.Table(t)
		count, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if count > tab.NumCounters() {
			return nil, errors.New("odelta: delta cell count exceeds table size")
		}
		idx := uint64(0)
		for j := uint64(0); j < count; j++ {
			gap, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if j == 0 {
				idx = gap
			} else {
				idx += gap
			}
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if idx >= tab.NumCounters() {
				return nil, errors.New("odelta: delta cell index out of range")
			}
			tab.SetCounter(idx, uint32(v))
		}
		ins, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		tab.SetInserts(ins)
	}
	if v := o.Verify(); v != nil {
		count, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if count > v.NumBits() {
			return nil, errors.New("odelta: delta bit count exceeds filter size")
		}
		idx := uint64(0)
		for j := uint64(0); j < count; j++ {
			gap, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if j == 0 {
				idx = gap
			} else {
				idx += gap
			}
			if idx >= v.NumBits() {
				return nil, errors.New("odelta: delta bit index out of range")
			}
			v.SetBit(idx)
		}
	}
	if r.Len() != 0 {
		return nil, errors.New("odelta: trailing bytes after delta")
	}
	o.SetInserts(rec.ToInserts)
	return o, nil
}

// ApplyChain applies consecutive records in order. The first record may be
// Full (replacing the base outright — o may then be nil); subsequent
// records must each continue exactly where the previous ended.
func ApplyChain(o *core.Oracle, recs []*Record) (*core.Oracle, error) {
	for i, rec := range recs {
		if i > 0 && !rec.Full && rec.FromEpoch != recs[i-1].ToEpoch {
			return nil, fmt.Errorf("odelta: chain gap between epochs %d and %d", recs[i-1].ToEpoch, rec.FromEpoch)
		}
		next, err := Apply(o, rec)
		if err != nil {
			return nil, err
		}
		o = next
	}
	return o, nil
}

// chainMagic versions the multi-record wire encoding.
const chainMagic = "VPOC1\x00"

// EncodeChain serializes records for the wire:
// [magic][uvarint n]{[5 uvarints: fromEpoch toEpoch fromInserts toInserts]
// [u8 full][uvarint len][payload bytes]}*n.
func EncodeChain(recs []*Record) []byte {
	var buf bytes.Buffer
	buf.WriteString(chainMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	put(uint64(len(recs)))
	for _, rec := range recs {
		put(rec.FromEpoch)
		put(rec.ToEpoch)
		put(rec.FromInserts)
		put(rec.ToInserts)
		if rec.Full {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		put(uint64(len(rec.Payload)))
		buf.Write(rec.Payload)
	}
	return buf.Bytes()
}

// DecodeChain parses an EncodeChain payload.
func DecodeChain(b []byte) ([]*Record, error) {
	if len(b) < len(chainMagic) || string(b[:len(chainMagic)]) != chainMagic {
		return nil, errors.New("odelta: bad chain magic")
	}
	r := bytes.NewReader(b[len(chainMagic):])
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, errors.New("odelta: chain record count too large")
	}
	recs := make([]*Record, 0, n)
	for i := uint64(0); i < n; i++ {
		rec := &Record{}
		for _, dst := range []*uint64{&rec.FromEpoch, &rec.ToEpoch, &rec.FromInserts, &rec.ToInserts} {
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			*dst = v
		}
		fb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		rec.Full = fb == 1
		plen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if plen > uint64(r.Len()) {
			return nil, errors.New("odelta: chain payload length exceeds buffer")
		}
		rec.Payload = make([]byte, plen)
		if _, err := r.Read(rec.Payload); err != nil && plen > 0 {
			return nil, err
		}
		recs = append(recs, rec)
	}
	if r.Len() != 0 {
		return nil, errors.New("odelta: trailing bytes after chain")
	}
	return recs, nil
}
