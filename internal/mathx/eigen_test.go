package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	}
	vals, _, err := SymEigen(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-10) {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := SymEigen([]float64{2, 1, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Errorf("vals = %v", vals)
	}
	// First eigenvector should be proportional to (1,1)/sqrt(2).
	if !almostEq(math.Abs(vecs[0]), math.Sqrt2/2, 1e-9) {
		t.Errorf("vecs = %v", vecs)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	// For random symmetric A: A*v_i = lambda_i*v_i and eigvecs orthonormal.
	rng := rand.New(rand.NewSource(11))
	n := 8
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := rng.NormFloat64()
			a[i*n+j] = x
			a[j*n+i] = x
		}
	}
	vals, vecs, err := SymEigen(a, n)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < n; e++ {
		v := vecs[e*n : (e+1)*n]
		// Residual ||A v - lambda v||.
		res := 0.0
		for i := 0; i < n; i++ {
			av := 0.0
			for j := 0; j < n; j++ {
				av += a[i*n+j] * v[j]
			}
			d := av - vals[e]*v[i]
			res += d * d
		}
		if math.Sqrt(res) > 1e-8 {
			t.Errorf("eigenpair %d residual %g", e, math.Sqrt(res))
		}
	}
	// Orthonormality.
	for e1 := 0; e1 < n; e1++ {
		for e2 := e1; e2 < n; e2++ {
			dot := 0.0
			for k := 0; k < n; k++ {
				dot += vecs[e1*n+k] * vecs[e2*n+k]
			}
			want := 0.0
			if e1 == e2 {
				want = 1
			}
			if !almostEq(dot, want, 1e-8) {
				t.Errorf("vec %d . vec %d = %v, want %v", e1, e2, dot, want)
			}
		}
	}
	// Eigenvalues descending.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1] {
			t.Errorf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestSymEigenBadInput(t *testing.T) {
	if _, _, err := SymEigen([]float64{1, 2}, 3); err == nil {
		t.Error("want error for dimension mismatch")
	}
	if _, _, err := SymEigen(nil, 0); err == nil {
		t.Error("want error for n=0")
	}
}

func TestCovarianceIdentityDirections(t *testing.T) {
	// Samples along the x-axis only: covariance should be nonzero only at (0,0).
	samples := [][]float64{{-1, 0}, {1, 0}, {-2, 0}, {2, 0}}
	cov, err := Covariance(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cov[0] <= 0 || cov[1] != 0 || cov[2] != 0 || cov[3] != 0 {
		t.Errorf("cov = %v", cov)
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance([][]float64{{1}}, 1); err == nil {
		t.Error("want error for single sample")
	}
	if _, err := Covariance([][]float64{{1}, {1, 2}}, 1); err == nil {
		t.Error("want error for dimension mismatch")
	}
}

func TestPCADominantDirection(t *testing.T) {
	// Data with variance 100 along one synthetic direction and ~1 elsewhere
	// should yield a sharply decaying normalized spectrum, the Figure 6b shape.
	rng := rand.New(rand.NewSource(3))
	dim := 10
	var samples [][]float64
	for i := 0; i < 400; i++ {
		s := make([]float64, dim)
		big := rng.NormFloat64() * 10
		for j := range s {
			s[j] = rng.NormFloat64() + big*float64(j%2) // direction (0,1,0,1,...)
		}
		samples = append(samples, s)
	}
	vals, err := PCA(samples, dim)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 1, 1e-12) {
		t.Errorf("normalized leading eigenvalue = %v, want 1", vals[0])
	}
	if vals[1] > 0.1 {
		t.Errorf("second eigenvalue %v not dominated; spectrum %v", vals[1], vals)
	}
	for _, v := range vals {
		if v < 0 {
			t.Errorf("negative normalized eigenvalue %v", v)
		}
	}
}
