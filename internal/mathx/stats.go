package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies xs; the input is not
// modified. An empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	p = Clamp(p, 0, 100)
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDFPoint is one (value, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF computes the empirical cumulative distribution of xs: the i-th point
// has Fraction (i+1)/n at the i-th smallest value. This is the form plotted
// in the paper's CDF figures (3, 5, 13, 16, 19).
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	n := float64(len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / n}
	}
	return out
}

// CDFAt evaluates an empirical CDF (as returned by CDF) at value x: the
// fraction of samples <= x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	frac := 0.0
	for _, p := range cdf {
		if p.Value <= x {
			frac = p.Fraction
		} else {
			break
		}
	}
	return frac
}

// Boxplot summarizes a sample in the five-number form used by the paper's
// Figure 6a (and Figure 20): quartiles plus 1.5*IQR whiskers clamped to the
// data range.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLow, WhiskerHigh  float64
	OutlierLow, OutlierHigh  int // counts beyond the whiskers
}

// NewBoxplot computes the boxplot summary of xs. An empty input returns the
// zero Boxplot.
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		return Boxplot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b := Boxplot{
		Min:    s[0],
		Q1:     percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		Q3:     percentileSorted(s, 75),
		Max:    s[len(s)-1],
	}
	iqr := b.Q3 - b.Q1
	lo, hi := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.WhiskerLow, b.WhiskerHigh = b.Max, b.Min
	for _, v := range s {
		switch {
		case v < lo:
			b.OutlierLow++
		case v > hi:
			b.OutlierHigh++
		default:
			if v < b.WhiskerLow {
				b.WhiskerLow = v
			}
			if v > b.WhiskerHigh {
				b.WhiskerHigh = v
			}
		}
	}
	return b
}

// Histogram counts xs into nbins equal-width bins over [min(xs), max(xs)].
// It returns the bin counts and the bin width. Degenerate inputs (empty, or
// all-equal values) place everything in bin 0.
func Histogram(xs []float64, nbins int) (counts []int, width float64) {
	counts = make([]int, nbins)
	if len(xs) == 0 || nbins <= 0 {
		return counts, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		counts[0] = len(xs)
		return counts, 0
	}
	width = (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, width
}
