package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVec3Basics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Dist(v); got != 0 {
		t.Errorf("Dist(self) = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{-2, 1, 5}
	c := v.Cross(w)
	if !almostEq(c.Dot(v), 0, 1e-12) || !almostEq(c.Dot(w), 0, 1e-12) {
		t.Errorf("cross product not orthogonal: %v", c)
	}
}

func TestVec3NormalizeUnitLength(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := Vec3{math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6)}
		n := v.Normalize()
		if v.Norm() == 0 {
			return n == v
		}
		return almostEq(n.Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3NormalizeZero(t *testing.T) {
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize(zero) = %v", got)
	}
}

func TestMat3Identity(t *testing.T) {
	id := Identity3()
	v := Vec3{3, -1, 2}
	if got := id.MulVec(v); got != v {
		t.Errorf("I*v = %v", got)
	}
	m := RotationYPR(0.3, -0.2, 0.1)
	if got := id.Mul(m); got != m {
		t.Errorf("I*m != m")
	}
}

func TestRotationIsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		m := RotationYPR(rng.Float64()*6-3, rng.Float64()*2-1, rng.Float64()*2-1)
		if !almostEq(m.Det(), 1, 1e-9) {
			t.Fatalf("det = %v, want 1", m.Det())
		}
		// m * m^T must be identity.
		p := m.Mul(m.Transpose())
		id := Identity3()
		for k := range p {
			if !almostEq(p[k], id[k], 1e-9) {
				t.Fatalf("m*m^T not identity: %v", p)
			}
		}
	}
}

func TestRotationPreservesLength(t *testing.T) {
	f := func(yaw, pitch, roll, x, y, z float64) bool {
		m := RotationYPR(math.Mod(yaw, 10), math.Mod(pitch, 10), math.Mod(roll, 10))
		v := Vec3{math.Mod(x, 100), math.Mod(y, 100), math.Mod(z, 100)}
		return almostEq(m.MulVec(v).Norm(), v.Norm(), 1e-8*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotationYawDirection(t *testing.T) {
	// Yaw of +90 degrees about +Y should rotate +Z toward +X.
	m := RotationYPR(math.Pi/2, 0, 0)
	got := m.MulVec(Vec3{0, 0, 1})
	if !vecAlmostEq(got, Vec3{1, 0, 0}, 1e-9) {
		t.Errorf("yaw(+90)*ez = %v, want +ex", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}
