package mathx

import (
	"errors"
	"math"
	"sort"
)

// SymEigen computes the eigenvalues and eigenvectors of a dense symmetric
// matrix a (given row-major, n*n entries) using the cyclic Jacobi method.
// Eigenvalues are returned in descending order; eigenvectors are returned as
// rows of vecs (vecs[i*n:(i+1)*n] corresponds to vals[i]) and are
// orthonormal.
//
// Jacobi is O(n^3) per sweep but unconditionally stable, which is enough for
// the two places VisualPrint needs eigensystems: the 128x128 descriptor
// covariance PCA of Figure 6b and the 4x4 quaternion matrix of Horn's
// rigid-alignment method inside ICP.
func SymEigen(a []float64, n int) (vals []float64, vecs []float64, err error) {
	if n <= 0 || len(a) != n*n {
		return nil, nil, errors.New("mathx: SymEigen requires an n*n matrix")
	}
	// Work on a copy; accumulate rotations in v.
	m := append([]float64(nil), a...)
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i*n+j] * m[i*n+j]
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m[p*n+p], m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/cols p and q.
				for k := 0; k < n; k++ {
					akp, akq := m[k*n+p], m[k*n+q]
					m[k*n+p] = c*akp - s*akq
					m[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := m[p*n+k], m[q*n+k]
					m[p*n+k] = c*apk - s*aqk
					m[q*n+k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	// Extract and sort descending.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{m[i*n+i], i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	vals = make([]float64, n)
	vecs = make([]float64, n*n)
	for i, p := range pairs {
		vals[i] = p.val
		for k := 0; k < n; k++ {
			vecs[i*n+k] = v[k*n+p.col]
		}
	}
	return vals, vecs, nil
}

// Covariance computes the sample covariance matrix (row-major, dim*dim) of
// the given samples, each of length dim. It returns an error if fewer than
// two samples are provided or a sample has the wrong length.
func Covariance(samples [][]float64, dim int) ([]float64, error) {
	if len(samples) < 2 {
		return nil, errors.New("mathx: Covariance requires at least two samples")
	}
	mean := make([]float64, dim)
	for _, s := range samples {
		if len(s) != dim {
			return nil, errors.New("mathx: sample dimension mismatch")
		}
		for i, x := range s {
			mean[i] += x
		}
	}
	inv := 1 / float64(len(samples))
	for i := range mean {
		mean[i] *= inv
	}
	cov := make([]float64, dim*dim)
	for _, s := range samples {
		for i := 0; i < dim; i++ {
			di := s[i] - mean[i]
			row := cov[i*dim : (i+1)*dim]
			for j := i; j < dim; j++ {
				row[j] += di * (s[j] - mean[j])
			}
		}
	}
	norm := 1 / float64(len(samples)-1)
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			c := cov[i*dim+j] * norm
			cov[i*dim+j] = c
			cov[j*dim+i] = c
		}
	}
	return cov, nil
}

// PCA computes the normalized eigenvalue spectrum of the covariance matrix
// of samples: eigenvalues of the covariance sorted descending and divided by
// the largest. This is exactly the quantity plotted in the paper's Figure 6b
// ("normalized eigenvalues of the covariance matrix").
func PCA(samples [][]float64, dim int) ([]float64, error) {
	cov, err := Covariance(samples, dim)
	if err != nil {
		return nil, err
	}
	vals, _, err := SymEigen(cov, dim)
	if err != nil {
		return nil, err
	}
	if vals[0] > 0 {
		inv := 1 / vals[0]
		for i := range vals {
			vals[i] *= inv
			if vals[i] < 0 { // numerical noise on tiny eigenvalues
				vals[i] = 0
			}
		}
	}
	return vals, nil
}
