package mathx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Stddev(xs); got != 2 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty-input statistics should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return CDF(raw) == nil
		}
		cdf := CDF(raw)
		if len(cdf) != len(raw) {
			return false
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
				return false
			}
		}
		return cdf[len(cdf)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{1, 2, 3, 4})
	if got := CDFAt(cdf, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v", got)
	}
	if got := CDFAt(cdf, 2); got != 0.5 {
		t.Errorf("CDFAt(2) = %v", got)
	}
	if got := CDFAt(cdf, 100); got != 1 {
		t.Errorf("CDFAt(100) = %v", got)
	}
}

func TestBoxplotQuartiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := NewBoxplot(xs)
	if b.Median != 5 || b.Q1 != 3 || b.Q3 != 7 || b.Min != 1 || b.Max != 9 {
		t.Errorf("boxplot = %+v", b)
	}
	if b.OutlierLow != 0 || b.OutlierHigh != 0 {
		t.Errorf("unexpected outliers: %+v", b)
	}
}

func TestBoxplotOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := NewBoxplot(xs)
	if b.OutlierHigh != 1 {
		t.Errorf("OutlierHigh = %d, want 1 (%+v)", b.OutlierHigh, b)
	}
	if b.WhiskerHigh == 100 {
		t.Error("whisker should exclude the outlier")
	}
}

func TestBoxplotOrderingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		b := NewBoxplot(xs)
		if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
			t.Fatalf("quartile ordering violated: %+v", b)
		}
		if !(b.WhiskerLow <= b.WhiskerHigh) {
			t.Fatalf("whisker ordering violated: %+v", b)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts, width := Histogram(xs, 5)
	if width != 1.8 {
		t.Errorf("width = %v", width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram loses samples: %v", counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, width := Histogram([]float64{5, 5, 5}, 4)
	if width != 0 || counts[0] != 3 {
		t.Errorf("degenerate histogram: counts=%v width=%v", counts, width)
	}
}

func TestMedianAgainstSort(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := append([]float64(nil), raw...)
		sort.Float64s(s)
		m := Median(raw)
		return m >= s[0] && m <= s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
