// Package mathx provides the small linear-algebra, statistics and
// eigen-decomposition substrate used throughout VisualPrint: 3-vectors and
// 3x3 matrices for camera geometry, descriptive statistics for the
// evaluation harness, and a Jacobi eigensolver backing both PCA (Figure 6b)
// and Horn's point-cloud alignment inside the ICP package.
package mathx

import "math"

// Vec3 is a 3-dimensional vector. It is used for world positions, camera
// translations, and ray directions.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Mat3 is a row-major 3x3 matrix.
type Mat3 [9]float64

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// Mul returns the matrix product m * n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[i*3+k] * n[k*3+j]
			}
			r[i*3+j] = s
		}
	}
	return r
}

// MulVec returns the product m * v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Transpose returns the transpose of m. For rotation matrices this is the
// inverse.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// RotationYPR builds a rotation matrix from yaw (about +Y, the vertical
// axis), pitch (about +X) and roll (about +Z), applied in that order. This
// matches the 6-DoF pose convention of the Tango wardriving output in the
// paper: three translation plus three rotation degrees of freedom.
func RotationYPR(yaw, pitch, roll float64) Mat3 {
	cy, sy := math.Cos(yaw), math.Sin(yaw)
	cp, sp := math.Cos(pitch), math.Sin(pitch)
	cr, sr := math.Cos(roll), math.Sin(roll)
	ry := Mat3{cy, 0, sy, 0, 1, 0, -sy, 0, cy}
	rx := Mat3{1, 0, 0, 0, cp, -sp, 0, sp, cp}
	rz := Mat3{cr, -sr, 0, sr, cr, 0, 0, 0, 1}
	return ry.Mul(rx).Mul(rz)
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
