package netsim

import (
	"net"
	"sync"
	"time"
)

// Proxy is a fault-injection TCP proxy for tests: it forwards byte streams
// to a real listener while letting the test inject the network pathologies
// a mobile AR client actually sees — added latency, a blackholed link
// (bytes vanish but the connection looks alive), refused connections, and
// abrupt severing of everything in flight. Where Link and VariableLink
// model transfer times analytically, Proxy degrades a real TCP stream, so
// it exercises the client and server's actual failure handling.
//
// The proxy operates purely at the transport layer; it understands nothing
// about the VisualPrint protocol, which keeps the injected chaos
// independent of the code under test. Create with NewProxy, point clients
// at Addr, and flip faults on and off at any time: settings apply to
// traffic already in flight, not just new connections.
type Proxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	latency   time.Duration
	blackhole bool
	// One-way partition: drop only client→server bytes (bhUp) or only
	// server→client bytes (bhDown), while the other direction still flows —
	// the asymmetric failure where a node can be heard but not hear (or
	// vice versa), which exercises different timeouts than a full blackhole.
	bhUp, bhDown bool
	refuse       bool
	conns        map[net.Conn]struct{}
	closed       bool

	wg sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port forwarding to target (a
// "host:port" the real server listens on).
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency adds a per-chunk delay in each direction (a request/response
// round trip pays roughly twice d).
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// SetBlackhole makes the proxy silently discard all traffic in both
// directions while keeping connections open — the network looks alive but
// nothing arrives, the failure mode request deadlines exist for.
func (p *Proxy) SetBlackhole(v bool) {
	p.mu.Lock()
	p.blackhole = v
	p.mu.Unlock()
}

// SetPartition configures a one-way partition: up drops client→server
// bytes, down drops server→client bytes. Both false restores the link;
// both true equals SetBlackhole. Like the blackhole, dropped bytes vanish
// silently — connections stay open and the surviving direction keeps
// flowing, so each side's picture of the network disagrees.
func (p *Proxy) SetPartition(up, down bool) {
	p.mu.Lock()
	p.bhUp, p.bhDown = up, down
	p.mu.Unlock()
}

// SetRefuse makes the proxy accept and immediately close new connections,
// as a crashed-but-port-bound server would. Existing connections are
// unaffected.
func (p *Proxy) SetRefuse(v bool) {
	p.mu.Lock()
	p.refuse = v
	p.mu.Unlock()
}

// Sever abruptly closes every active connection (both sides), leaving the
// proxy accepting new ones — a transient network partition.
func (p *Proxy) Sever() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// Close stops the proxy: the listener and every active connection close,
// and all pump goroutines are joined.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		refuse := p.refuse || p.closed
		p.mu.Unlock()
		if refuse {
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(conn, up, true)
		go p.pump(up, conn, false)
	}
}

// pump copies src to dst chunk by chunk, applying the latency, blackhole
// and one-way-partition settings in force as each chunk passes (upstream
// reports the client→server direction). Either side failing tears down
// both.
func (p *Proxy) pump(src, dst net.Conn, upstream bool) {
	defer p.wg.Done()
	defer p.drop(src)
	defer p.drop(dst)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			lat, bh := p.latency, p.blackhole
			if upstream {
				bh = bh || p.bhUp
			} else {
				bh = bh || p.bhDown
			}
			p.mu.Unlock()
			if lat > 0 {
				time.Sleep(lat)
			}
			if !bh {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// drop closes c and removes it from the active set.
func (p *Proxy) drop(c net.Conn) {
	c.Close()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}
