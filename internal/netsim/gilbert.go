package netsim

import (
	"errors"
	"math/rand"
	"time"
)

// VariableLink models the unpredictability the paper's introduction blames
// for offload latency ("wireless network latencies between the phone and
// cloud are unpredictable and can not guarantee a consistent user
// experience"): a two-state Gilbert-Elliott channel that alternates between
// a Good state (full rate, base RTT) and a Bad state (a fraction of the
// rate, inflated RTT), with exponentially distributed dwell times.
//
// Small payloads ride out a Bad period with modest delay; large payloads
// straddle state changes and see heavy latency tails — the mechanism that
// makes fingerprint-sized uploads so much more predictable than frames.
type VariableLink struct {
	Good Link
	// BadRateFraction scales the Good uplink while in the Bad state
	// (e.g. 0.1 = 10% of nominal).
	BadRateFraction float64
	// BadRTT replaces the base RTT while in the Bad state.
	BadRTT time.Duration
	// MeanGood and MeanBad are the expected dwell times in each state.
	MeanGood, MeanBad time.Duration
	// Seed drives the state process deterministically.
	Seed int64
}

// Validate reports whether the model is usable.
func (v VariableLink) Validate() error {
	if err := v.Good.Validate(); err != nil {
		return err
	}
	if v.BadRateFraction <= 0 || v.BadRateFraction > 1 {
		return errors.New("netsim: BadRateFraction must be in (0, 1]")
	}
	if v.MeanGood <= 0 || v.MeanBad <= 0 {
		return errors.New("netsim: dwell times must be positive")
	}
	return nil
}

// linkState is a point in the channel's state timeline.
type linkState struct {
	at   time.Duration
	good bool
}

// Timeline pre-generates the channel state process for a session of the
// given duration.
func (v VariableLink) Timeline(duration time.Duration) ([]linkState, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(v.Seed))
	var states []linkState
	t := time.Duration(0)
	good := true
	for t < duration {
		states = append(states, linkState{at: t, good: good})
		mean := v.MeanGood
		if !good {
			mean = v.MeanBad
		}
		dwell := time.Duration(rng.ExpFloat64() * float64(mean))
		if dwell < time.Millisecond {
			dwell = time.Millisecond
		}
		t += dwell
		good = !good
	}
	return states, nil
}

// TransferTimes simulates uploading one payload of the given size starting
// at each state-process sample point, returning the distribution of
// completion times. The transfer progresses at the state-dependent rate,
// crossing state boundaries as needed.
func (v VariableLink) TransferTimes(payloadBytes int64, duration time.Duration, samples int) ([]time.Duration, error) {
	states, err := v.Timeline(duration)
	if err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, errors.New("netsim: samples must be positive")
	}
	stateAt := func(t time.Duration) (good bool, until time.Duration) {
		good, until = true, duration
		for i, s := range states {
			if s.at > t {
				until = s.at
				break
			}
			good = s.good
			if i+1 < len(states) {
				until = states[i+1].at
			} else {
				until = duration * 2
			}
		}
		return good, until
	}
	out := make([]time.Duration, 0, samples)
	step := duration / time.Duration(samples)
	if step <= 0 {
		step = time.Millisecond
	}
	for i := 0; i < samples; i++ {
		start := time.Duration(i) * step
		bits := float64(payloadBytes * 8)
		t := start
		for bits > 1e-9 {
			good, until := stateAt(t)
			rate := v.Good.UplinkMbps * 1e6 // bits/s
			if !good {
				rate *= v.BadRateFraction
			}
			window := until - t
			if window <= 0 {
				window = time.Millisecond
			}
			capBits := rate * window.Seconds()
			if capBits >= bits {
				t += time.Duration(float64(window) * bits / capBits)
				bits = 0
			} else {
				bits -= capBits
				t = until
			}
		}
		rtt := v.Good.RTT
		if good, _ := stateAt(t); !good {
			rtt = v.BadRTT
		}
		out = append(out, t-start+rtt)
	}
	return out, nil
}
