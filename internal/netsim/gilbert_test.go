package netsim

import (
	"sort"
	"testing"
	"time"
)

func testVariableLink() VariableLink {
	return VariableLink{
		Good:            Link{UplinkMbps: 6, RTT: 40 * time.Millisecond},
		BadRateFraction: 0.08,
		BadRTT:          400 * time.Millisecond,
		MeanGood:        4 * time.Second,
		MeanBad:         1 * time.Second,
		Seed:            7,
	}
}

func TestVariableLinkValidate(t *testing.T) {
	if err := testVariableLink().Validate(); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	bad := testVariableLink()
	bad.BadRateFraction = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero BadRateFraction accepted")
	}
	bad = testVariableLink()
	bad.MeanGood = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero dwell accepted")
	}
	bad = testVariableLink()
	bad.Good.UplinkMbps = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid base link accepted")
	}
}

func TestTimelineAlternatesAndCovers(t *testing.T) {
	states, err := testVariableLink().Timeline(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 3 {
		t.Fatalf("only %d state changes in 30 s", len(states))
	}
	if !states[0].good || states[0].at != 0 {
		t.Error("timeline must start Good at t=0")
	}
	for i := 1; i < len(states); i++ {
		if states[i].at <= states[i-1].at {
			t.Fatal("timeline not monotone")
		}
		if states[i].good == states[i-1].good {
			t.Fatal("states must alternate")
		}
	}
}

func TestTimelineDeterministic(t *testing.T) {
	a, _ := testVariableLink().Timeline(10 * time.Second)
	b, _ := testVariableLink().Timeline(10 * time.Second)
	if len(a) != len(b) {
		t.Fatal("nondeterministic timeline")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic timeline entry")
		}
	}
}

func TestTransferTimesSmallVsLargeTail(t *testing.T) {
	// The paper's motivating asymmetry: fingerprint-sized uploads have a
	// far tighter latency tail than frame-sized uploads on the same
	// unpredictable channel.
	v := testVariableLink()
	const dur = 120 * time.Second
	small, err := v.TransferTimes(29_000, dur, 400) // ~fingerprint
	if err != nil {
		t.Fatal(err)
	}
	large, err := v.TransferTimes(900_000, dur, 400) // ~1080p PNG frame
	if err != nil {
		t.Fatal(err)
	}
	p95 := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)*95/100]
	}
	if p95(large) < 3*p95(small) {
		t.Errorf("frame-upload p95 %v not far above fingerprint p95 %v", p95(large), p95(small))
	}
	// Small uploads complete within a second even at p95.
	if p95(small) > 1500*time.Millisecond {
		t.Errorf("fingerprint p95 = %v, want sub-1.5s", p95(small))
	}
}

func TestTransferTimesAllPositive(t *testing.T) {
	ts, err := testVariableLink().TransferTimes(10_000, 20*time.Second, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 100 {
		t.Fatalf("got %d samples", len(ts))
	}
	for _, d := range ts {
		if d <= 0 {
			t.Fatal("non-positive transfer time")
		}
	}
}

func TestTransferTimesValidation(t *testing.T) {
	if _, err := testVariableLink().TransferTimes(1000, time.Second, 0); err == nil {
		t.Error("zero samples accepted")
	}
	bad := testVariableLink()
	bad.BadRateFraction = 2
	if _, err := bad.TransferTimes(1000, time.Second, 10); err == nil {
		t.Error("invalid link accepted")
	}
}
