package netsim

import (
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c) //nolint:errcheck // test echo
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestProxyForwards(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
}

func TestProxySever(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	p.Sever()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded after Sever; want connection error")
	}
	// The proxy must still accept fresh connections after a partition.
	c2 := dialProxy(t, p)
	if _, err := c2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatalf("proxy dead after Sever: %v", err)
	}
}

func TestProxyRefuse(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetRefuse(true)
	c, err := net.Dial("tcp", p.Addr())
	if err == nil {
		// The accept-then-close race may let the dial succeed; the first
		// read must then fail immediately.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, rerr := c.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("refused connection served traffic")
		}
		c.Close()
	}
	p.SetRefuse(false)
	c2 := dialProxy(t, p)
	if _, err := c2.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatalf("proxy dead after refuse lifted: %v", err)
	}
}

func TestProxyOneWayPartition(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	// Down-only partition: client bytes still reach the echo server, but
	// its replies vanish — the client can talk and not hear.
	p.SetPartition(false, true)
	if _, err := c.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("reply arrived through a down-partitioned proxy")
	}

	// Heal: the link works again end to end. (The echoed "a" swallowed
	// above is gone for good — drops are silent, not buffered.)
	p.SetPartition(false, false)
	if _, err := c.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("healed link dead: %v", err)
	}
	if buf[0] != 'b' {
		t.Fatalf("echoed %q, want 'b'", buf)
	}

	// Up-only partition: client bytes vanish before the server, so nothing
	// comes back either — but the connection itself stays open.
	p.SetPartition(true, false)
	if _, err := c.Write([]byte("c")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("echo arrived through an up-partitioned proxy")
	}
	p.SetPartition(false, false)
	if _, err := c.Write([]byte("d")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("healed link dead after up partition: %v", err)
	}
	if buf[0] != 'd' {
		t.Fatalf("echoed %q, want 'd'", buf)
	}
}

func TestProxyBlackhole(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	p.SetBlackhole(true)
	if _, err := c.Write([]byte("swallowed")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read returned data through a blackholed proxy")
	}
}
