package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestLinkValidate(t *testing.T) {
	if err := (Link{UplinkMbps: 8}).Validate(); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	bad := []Link{
		{UplinkMbps: 0},
		{UplinkMbps: -1},
		{UplinkMbps: 8, RTT: -time.Second},
		{UplinkMbps: 8, Jitter: -time.Second},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTransferTime(t *testing.T) {
	l := Link{UplinkMbps: 8, RTT: 50 * time.Millisecond}
	// 1 MB over 8 Mbps = 1 second, plus RTT.
	got := l.TransferTime(1_000_000)
	want := time.Second + 50*time.Millisecond
	if math.Abs(float64(got-want)) > float64(time.Millisecond) {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestTransferTimeJitterDeterministicWithoutRng(t *testing.T) {
	l := Link{UplinkMbps: 8, Jitter: time.Second}
	if l.TransferTime(1000) != l.TransferTime(1000) {
		t.Error("jitter applied without an Rng")
	}
	l.Rng = rand.New(rand.NewSource(1))
	base := Link{UplinkMbps: 8}.TransferTime(1000)
	seen := false
	for i := 0; i < 10; i++ {
		if l.TransferTime(1000) > base {
			seen = true
		}
	}
	if !seen {
		t.Error("jitter never materialized with an Rng")
	}
}

func TestSustainableFPS(t *testing.T) {
	l := Link{UplinkMbps: 2}
	// 25 KB frames over 2 Mbps: 2e6 / (25000*8) = 10 FPS — the paper's
	// H264 operating point.
	if fps := l.SustainableFPS(25_000); math.Abs(fps-10) > 1e-9 {
		t.Errorf("FPS = %v, want 10", fps)
	}
	if (Link{UplinkMbps: 2}).SustainableFPS(0) != 0 {
		t.Error("zero-size frame should give 0 FPS")
	}
}

func TestSustainableFPSScalesWithUplink(t *testing.T) {
	// Figure 2 is linear on log-log: doubling the uplink doubles FPS.
	frame := int64(500_000)
	f1 := Link{UplinkMbps: 1}.SustainableFPS(frame)
	f2 := Link{UplinkMbps: 2}.SustainableFPS(frame)
	if math.Abs(f2/f1-2) > 1e-9 {
		t.Errorf("FPS ratio = %v, want 2", f2/f1)
	}
}

func TestTraceBandwidthBound(t *testing.T) {
	// A saturating stream cannot exceed link capacity.
	l := Link{UplinkMbps: 4}
	dur := 10 * time.Second
	events, err := Trace(l, dur, 33*time.Millisecond, func(int) int64 { return 500_000 })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no uploads completed")
	}
	last := events[len(events)-1]
	maxBytes := int64(4e6 / 8 * 10) // 4 Mbps for 10 s
	if last.Cumulative > maxBytes {
		t.Errorf("uploaded %d bytes > link capacity %d", last.Cumulative, maxBytes)
	}
	// And it should be near capacity (within 20%) since the stream saturates.
	if float64(last.Cumulative) < 0.8*float64(maxBytes) {
		t.Errorf("uploaded %d bytes, expected near capacity %d", last.Cumulative, maxBytes)
	}
}

func TestTraceSmallPayloadsKeepUp(t *testing.T) {
	// Small fingerprints (~51 KB) at 1 Hz over 8 Mbps never queue: events
	// land at capture boundaries plus transfer time.
	l := Link{UplinkMbps: 8, RTT: 20 * time.Millisecond}
	events, err := Trace(l, 5*time.Second, time.Second, func(int) int64 { return 51_200 })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	per := l.TransferTime(51_200)
	for i, e := range events {
		want := time.Duration(i)*time.Second + per
		if d := e.At - want; d < -time.Millisecond || d > time.Millisecond {
			t.Errorf("event %d at %v, want %v", i, e.At, want)
		}
	}
}

func TestTraceCumulativeMonotone(t *testing.T) {
	l := Link{UplinkMbps: 2}
	events, _ := Trace(l, 8*time.Second, 100*time.Millisecond, func(i int) int64 { return int64(1000 * (i%7 + 1)) })
	var prev int64
	for _, e := range events {
		if e.Cumulative < prev || e.Cumulative != prev+e.Bytes {
			t.Fatalf("cumulative bookkeeping broken at %+v", e)
		}
		prev = e.Cumulative
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := Trace(Link{}, time.Second, time.Millisecond, func(int) int64 { return 1 }); err == nil {
		t.Error("invalid link accepted")
	}
	if _, err := Trace(Link{UplinkMbps: 1}, time.Second, 0, func(int) int64 { return 1 }); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestCumulativeAt(t *testing.T) {
	events := []UploadEvent{
		{At: time.Second, Bytes: 10, Cumulative: 10},
		{At: 2 * time.Second, Bytes: 20, Cumulative: 30},
	}
	if got := CumulativeAt(events, 500*time.Millisecond); got != 0 {
		t.Errorf("at 0.5s = %d", got)
	}
	if got := CumulativeAt(events, time.Second); got != 10 {
		t.Errorf("at 1s = %d", got)
	}
	if got := CumulativeAt(events, time.Minute); got != 30 {
		t.Errorf("at 1m = %d", got)
	}
}
