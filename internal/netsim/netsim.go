// Package netsim models the wireless uplink between the VisualPrint client
// and the cloud: bandwidth-limited transfer times, the sustainable
// frames-per-second computation of Figure 2, and the cumulative upload
// traces of Figure 14. The model is deliberately simple — a rate limit plus
// a base round-trip latency with optional jitter — because the paper's
// bandwidth results depend only on payload sizes against link capacity.
package netsim

import (
	"errors"
	"math/rand"
	"time"
)

// Link models an uplink with fixed capacity and base latency.
type Link struct {
	// UplinkMbps is the sustained uplink capacity in megabits per second.
	UplinkMbps float64
	// RTT is the base round-trip time.
	RTT time.Duration
	// Jitter, if positive, adds a uniform random [0, Jitter) to each
	// transfer ("unpredictable end-to-end network latency").
	Jitter time.Duration
	// Rng seeds jitter; nil means deterministic (no jitter even if Jitter
	// is set).
	Rng *rand.Rand
}

// Validate reports whether the link is usable.
func (l Link) Validate() error {
	if l.UplinkMbps <= 0 {
		return errors.New("netsim: UplinkMbps must be positive")
	}
	if l.RTT < 0 || l.Jitter < 0 {
		return errors.New("netsim: RTT and Jitter must be non-negative")
	}
	return nil
}

// TransferTime returns the time to upload the given payload and receive a
// (size-negligible) response: serialization delay plus RTT plus jitter.
func (l Link) TransferTime(payloadBytes int64) time.Duration {
	ser := time.Duration(float64(payloadBytes*8) / (l.UplinkMbps * 1e6) * float64(time.Second))
	d := ser + l.RTT
	if l.Jitter > 0 && l.Rng != nil {
		d += time.Duration(l.Rng.Int63n(int64(l.Jitter)))
	}
	return d
}

// SustainableFPS returns the maximum steady frame rate for frames of the
// given encoded size: capacity divided by per-frame bits. This is the
// quantity on Figure 2's vertical axis.
func (l Link) SustainableFPS(frameBytes int64) float64 {
	if frameBytes <= 0 {
		return 0
	}
	return l.UplinkMbps * 1e6 / float64(frameBytes*8)
}

// UploadEvent is one completed upload in a Trace.
type UploadEvent struct {
	At         time.Duration // completion time since trace start
	Bytes      int64         // payload size
	Cumulative int64         // total bytes uploaded including this one
}

// Trace simulates a client continuously uploading payloads over a link for
// a fixed duration, as in Figure 14's 70-second capture session. sizes is
// called per upload (frame index as argument) so callers can model varying
// payloads; interval is the capture period (e.g. 100ms for a 10 FPS
// pipeline) — uploads queue behind the link if they take longer.
func Trace(l Link, duration, interval time.Duration, sizes func(i int) int64) ([]UploadEvent, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		return nil, errors.New("netsim: interval must be positive")
	}
	var events []UploadEvent
	var cumulative int64
	linkFree := time.Duration(0)
	for i := 0; ; i++ {
		capture := time.Duration(i) * interval
		if capture >= duration {
			break
		}
		start := capture
		if linkFree > start {
			start = linkFree // frame waits for the link
		}
		size := sizes(i)
		done := start + l.TransferTime(size)
		linkFree = done
		if done > duration {
			break
		}
		cumulative += size
		events = append(events, UploadEvent{At: done, Bytes: size, Cumulative: cumulative})
	}
	return events, nil
}

// CumulativeAt returns the cumulative bytes uploaded at time t in a trace.
func CumulativeAt(events []UploadEvent, t time.Duration) int64 {
	var c int64
	for _, e := range events {
		if e.At <= t {
			c = e.Cumulative
		} else {
			break
		}
	}
	return c
}
