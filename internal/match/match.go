// Package match implements the scene-identification schemes compared in the
// paper's Figure 13 and the retrieval metrics used to score them:
//
//   - BruteForce: exact nearest-neighbor over every database descriptor
//     (the paper runs this on a GPU via SIMD; here it fans out across
//     goroutines), using ALL query keypoints.
//   - LSH: a conventional E2LSH index over the whole database, all query
//     keypoints — "the most realistic server-side comparison".
//   - Random-N: the strawman client that uploads N uniformly random query
//     keypoints, matched server-side with LSH.
//   - VisualPrint-N: the full system — the uniqueness oracle selects the N
//     most-unique query keypoints, matched server-side with LSH.
//
// A frame is identified by majority vote over the per-keypoint
// nearest-neighbor scene labels.
package match

import (
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"visualprint/internal/core"
	"visualprint/internal/dist"
	"visualprint/internal/lsh"
)

// DB is a labeled descriptor database: scene images and distractor images
// contribute descriptors labeled with their image's id.
type DB struct {
	Descs  [][]byte
	Labels []int
}

// Add appends a descriptor with its image label.
func (db *DB) Add(desc []byte, label int) {
	db.Descs = append(db.Descs, desc)
	db.Labels = append(db.Labels, label)
}

// Len returns the number of descriptors.
func (db *DB) Len() int { return len(db.Descs) }

// RawBytes returns the raw descriptor payload size.
func (db *DB) RawBytes() int64 {
	var n int64
	for _, d := range db.Descs {
		n += int64(len(d))
	}
	return n
}

// Matcher identifies the scene captured by a frame's descriptors.
type Matcher interface {
	// Name is the figure-legend name of the scheme.
	Name() string
	// MatchFrame predicts the database label for a query frame given all
	// its extracted descriptors. The returned votes map the per-keypoint
	// evidence. pred is -1 when no keypoint matched anything.
	MatchFrame(descs [][]byte) (pred int, votes map[int]int, err error)
	// UploadDescriptors returns how many descriptors of a frame with n
	// extracted keypoints this scheme uploads (the bandwidth driver).
	UploadDescriptors(n int) int
	// MemoryBytes estimates the scheme's resident footprint.
	MemoryBytes() int64
}

func voteWinner(votes map[int]int) int {
	pred, best := -1, 0
	for label, v := range votes {
		if v > best || (v == best && pred != -1 && label < pred) {
			pred, best = label, v
		}
	}
	return pred
}

// BruteForce is the exact-NN matcher over all database descriptors.
type BruteForce struct {
	db      *DB
	workers int
	// MaxDistSq rejects matches farther than this (0 = accept all).
	MaxDistSq int
}

// NewBruteForce creates a brute-force matcher over db.
func NewBruteForce(db *DB) *BruteForce {
	return &BruteForce{db: db, workers: runtime.GOMAXPROCS(0), MaxDistSq: 120000}
}

// Name implements Matcher.
func (b *BruteForce) Name() string { return "BruteForce" }

// UploadDescriptors implements Matcher: brute force uses all keypoints.
func (b *BruteForce) UploadDescriptors(n int) int { return n }

// MemoryBytes implements Matcher: the whole database resides in (GPU)
// memory.
func (b *BruteForce) MemoryBytes() int64 { return b.db.RawBytes() }

// Nearest returns the database index and squared distance of the exact
// nearest neighbor of q, parallelized across the database.
func (b *BruteForce) Nearest(q []byte) (int, int) {
	n := len(b.db.Descs)
	if n == 0 {
		return -1, 0
	}
	workers := b.workers
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	type best struct{ idx, dist int }
	results := make([]best, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			results[w] = best{-1, 1 << 62}
			continue
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			bi, bd := -1, 1<<62
			for i := lo; i < hi; i++ {
				d := distSq(q, b.db.Descs[i])
				if d < bd {
					bi, bd = i, d
				}
			}
			results[w] = best{bi, bd}
		}(w, lo, hi)
	}
	wg.Wait()
	bi, bd := -1, 1<<62
	for _, r := range results {
		if r.idx >= 0 && r.dist < bd {
			bi, bd = r.idx, r.dist
		}
	}
	return bi, bd
}

// MatchFrame implements Matcher.
func (b *BruteForce) MatchFrame(descs [][]byte) (int, map[int]int, error) {
	votes := make(map[int]int)
	for _, q := range descs {
		idx, dist := b.Nearest(q)
		if idx < 0 {
			continue
		}
		if b.MaxDistSq > 0 && dist > b.MaxDistSq {
			continue
		}
		votes[b.db.Labels[idx]]++
	}
	return voteWinner(votes), votes, nil
}

// distSq is the cluster-stage matching distance — the same unrolled kernel
// the LSH query path uses (internal/dist), bit-identical to the scalar sum.
func distSq(a, b []byte) int { return dist.Sq(a, b) }

// LSHMatcher matches via a conventional E2LSH index over the database.
type LSHMatcher struct {
	index *lsh.Index
	db    *DB
	// MaxDistSq rejects weak candidates (0 = accept all).
	MaxDistSq int
	// Subselect, if non-nil, picks which query descriptors are uploaded;
	// nil uploads all (the plain "LSH" scheme).
	Subselect func(descs [][]byte) ([][]byte, error)
	name      string
	uploadN   int
	// clientMem overrides MemoryBytes for schemes whose client-side
	// structure differs from the server index (VisualPrint's downloaded
	// oracle).
	clientMem int64
}

// NewLSH builds the conventional LSH scheme (all keypoints uploaded).
func NewLSH(db *DB, params lsh.Params) (*LSHMatcher, error) {
	ix, err := lsh.NewIndex(params)
	if err != nil {
		return nil, err
	}
	for _, d := range db.Descs {
		if _, err := ix.Insert(d); err != nil {
			return nil, err
		}
	}
	return &LSHMatcher{index: ix, db: db, MaxDistSq: 120000, name: "LSH"}, nil
}

// NewRandom builds the Random-N strawman: n uniformly random query
// keypoints uploaded, LSH matching server-side.
func NewRandom(db *DB, params lsh.Params, n int, seed int64) (*LSHMatcher, error) {
	m, err := NewLSH(db, params)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m.name = "Random"
	m.uploadN = n
	m.Subselect = func(descs [][]byte) ([][]byte, error) {
		if len(descs) <= n {
			return descs, nil
		}
		idx := rng.Perm(len(descs))[:n]
		out := make([][]byte, n)
		for i, j := range idx {
			out[i] = descs[j]
		}
		return out, nil
	}
	return m, nil
}

// NewVisualPrint builds the full system: the oracle selects the n
// most-unique query keypoints, LSH matching server-side.
func NewVisualPrint(db *DB, params lsh.Params, oracle *core.Oracle, n int) (*LSHMatcher, error) {
	m, err := NewLSH(db, params)
	if err != nil {
		return nil, err
	}
	m.name = "VisualPrint"
	m.uploadN = n
	m.Subselect = func(descs [][]byte) ([][]byte, error) {
		ranked, err := oracle.Rank(descs)
		if err != nil {
			return nil, err
		}
		k := n
		if k > len(ranked) {
			k = len(ranked)
		}
		out := make([][]byte, k)
		for i := 0; i < k; i++ {
			out[i] = descs[ranked[i].Index]
		}
		return out, nil
	}
	// The client's footprint is the oracle, not the index.
	m.clientMem = oracle.MemoryBytes()
	return m, nil
}

// Name implements Matcher.
func (m *LSHMatcher) Name() string { return m.name }

// UploadDescriptors implements Matcher.
func (m *LSHMatcher) UploadDescriptors(n int) int {
	if m.uploadN <= 0 || n < m.uploadN {
		return n
	}
	return m.uploadN
}

// MemoryBytes implements Matcher: the LSH scheme's client would hold the
// full replicated index; Random holds nothing; VisualPrint holds the
// downloaded oracle.
func (m *LSHMatcher) MemoryBytes() int64 {
	switch m.name {
	case "Random":
		return 0
	case "VisualPrint":
		return m.clientMem
	default:
		return m.index.MemoryBytes()
	}
}

// MatchFrame implements Matcher.
func (m *LSHMatcher) MatchFrame(descs [][]byte) (int, map[int]int, error) {
	if m.Subselect != nil {
		var err error
		descs, err = m.Subselect(descs)
		if err != nil {
			return -1, nil, err
		}
	}
	votes := make(map[int]int)
	for _, q := range descs {
		cands, err := m.index.Query(q, lsh.QueryOptions{MaxCandidates: 1, MultiProbe: true})
		if err != nil {
			return -1, nil, err
		}
		if len(cands) == 0 {
			continue
		}
		if m.MaxDistSq > 0 && cands[0].DistSq > m.MaxDistSq {
			continue
		}
		votes[m.db.Labels[cands[0].ID]]++
	}
	return voteWinner(votes), votes, nil
}

// Prediction is one scored query frame.
type Prediction struct {
	True int // ground-truth scene label of the frame
	Pred int // matcher output (-1 = no match)
}

// PR is a per-scene precision/recall pair.
type PR struct {
	Precision, Recall float64
	TP, FP, FN        int
}

// PrecisionRecall computes per-scene retrieval metrics over a prediction
// set, exactly as defined in the paper's evaluation: for scene k, precision
// = |V ∩ P| / |P| and recall = |V ∩ P| / |V|, where V is the set of frames
// truly capturing k and P the set identified as k. Scenes with no truth
// frames and no predictions are omitted.
func PrecisionRecall(preds []Prediction) map[int]PR {
	tp := map[int]int{}
	fp := map[int]int{}
	fn := map[int]int{}
	seen := map[int]bool{}
	for _, p := range preds {
		if p.True >= 0 {
			seen[p.True] = true
		}
		if p.Pred >= 0 {
			seen[p.Pred] = true
		}
		switch {
		case p.Pred == p.True && p.True >= 0:
			tp[p.True]++
		default:
			if p.True >= 0 {
				fn[p.True]++
			}
			if p.Pred >= 0 {
				fp[p.Pred]++
			}
		}
	}
	out := make(map[int]PR, len(seen))
	for k := range seen {
		r := PR{TP: tp[k], FP: fp[k], FN: fn[k]}
		if r.TP+r.FP > 0 {
			r.Precision = float64(r.TP) / float64(r.TP+r.FP)
		}
		if r.TP+r.FN > 0 {
			r.Recall = float64(r.TP) / float64(r.TP+r.FN)
		}
		out[k] = r
	}
	return out
}

// Values extracts a sorted slice of a metric over scenes, for CDF plotting.
func Values(prs map[int]PR, metric func(PR) float64) []float64 {
	out := make([]float64, 0, len(prs))
	for _, pr := range prs {
		out = append(out, metric(pr))
	}
	sort.Float64s(out)
	return out
}

// DimDifferences returns the squared per-dimension differences between two
// descriptors, sorted descending — the quantity whose boxplots form the
// paper's Figure 6a ("few dimensions provide most of the Euclidean
// distance").
func DimDifferences(a, b []byte) ([]float64, error) {
	if len(a) != len(b) {
		return nil, errors.New("match: descriptor length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		d := float64(int(a[i]) - int(b[i]))
		out[i] = d * d
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out, nil
}
