package match

import (
	"math/rand"
	"testing"

	"visualprint/internal/core"
	"visualprint/internal/lsh"
)

// corpus is a synthetic matching workload mirroring the paper's setup:
// scenes with mostly unique descriptors, distractor images built from a
// shared pool of repeated descriptors, and query frames that see a scene's
// descriptors (perturbed) mixed with repeated ones.
type corpus struct {
	db      DB
	queries []struct {
		scene int
		descs [][]byte
	}
	common [][]byte
}

func siftLike(rng *rand.Rand) []byte {
	f := make([]float64, 128)
	var norm float64
	for i := range f {
		if rng.Float64() < 0.4 {
			f[i] = rng.ExpFloat64()
			norm += f[i] * f[i]
		}
	}
	d := make([]byte, 128)
	if norm == 0 {
		d[rng.Intn(128)] = 255
		return d
	}
	scale := 512 / sqrtf(norm)
	for i := range d {
		v := f[i] * scale
		if v > 255 {
			v = 255
		}
		d[i] = byte(v)
	}
	return d
}

func sqrtf(x float64) float64 {
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func perturb(rng *rand.Rand, d []byte, amp int) []byte {
	out := append([]byte(nil), d...)
	for i := range out {
		v := int(out[i]) + rng.Intn(2*amp+1) - amp
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		out[i] = byte(v)
	}
	return out
}

// buildCorpus creates nScenes scenes + nDistract distractor images.
func buildCorpus(seed int64, nScenes, nDistract, descsPerImage, queriesPerScene int) *corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &corpus{}
	// Shared repeated descriptors (ceiling tiles, door knobs).
	for i := 0; i < 40; i++ {
		c.common = append(c.common, siftLike(rng))
	}
	sceneDescs := make([][][]byte, nScenes)
	for s := 0; s < nScenes; s++ {
		for d := 0; d < descsPerImage; d++ {
			var desc []byte
			if rng.Float64() < 0.3 {
				desc = perturb(rng, c.common[rng.Intn(len(c.common))], 2)
			} else {
				desc = siftLike(rng)
			}
			sceneDescs[s] = append(sceneDescs[s], desc)
			c.db.Add(desc, s)
		}
	}
	// Distractors: almost entirely repeated content.
	for i := 0; i < nDistract; i++ {
		label := nScenes + i
		for d := 0; d < descsPerImage; d++ {
			c.db.Add(perturb(rng, c.common[rng.Intn(len(c.common))], 2), label)
		}
	}
	// Queries: perturbed scene descriptors + extra repeated descriptors
	// (what a different viewing angle of the same scene yields).
	for s := 0; s < nScenes; s++ {
		for q := 0; q < queriesPerScene; q++ {
			var descs [][]byte
			for _, d := range sceneDescs[s] {
				if rng.Float64() < 0.7 { // some keypoints lost to the angle change
					descs = append(descs, perturb(rng, d, 3))
				}
			}
			for i := 0; i < descsPerImage/2; i++ {
				descs = append(descs, perturb(rng, c.common[rng.Intn(len(c.common))], 3))
			}
			c.queries = append(c.queries, struct {
				scene int
				descs [][]byte
			}{s, descs})
		}
	}
	return c
}

func lshParams() lsh.Params {
	p := lsh.DefaultParams()
	p.Seed = 42
	return p
}

func trainedOracle(t testing.TB, db *DB) *core.Oracle {
	t.Helper()
	o, err := core.New(core.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range db.Descs {
		if err := o.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func evaluate(t testing.TB, m Matcher, c *corpus) []Prediction {
	t.Helper()
	var preds []Prediction
	for _, q := range c.queries {
		pred, _, err := m.MatchFrame(q.descs)
		if err != nil {
			t.Fatal(err)
		}
		preds = append(preds, Prediction{True: q.scene, Pred: pred})
	}
	return preds
}

func meanMetric(prs map[int]PR, f func(PR) float64, onlyScenes int) float64 {
	var s float64
	n := 0
	for k, pr := range prs {
		if k >= onlyScenes {
			continue // skip distractor labels
		}
		s += f(pr)
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

func TestBruteForceSelfMatch(t *testing.T) {
	c := buildCorpus(1, 5, 5, 30, 0)
	bf := NewBruteForce(&c.db)
	// Query a frame made of scene 2's own descriptors.
	var descs [][]byte
	for i, d := range c.db.Descs {
		if c.db.Labels[i] == 2 {
			descs = append(descs, d)
		}
	}
	pred, votes, err := bf.MatchFrame(descs)
	if err != nil {
		t.Fatal(err)
	}
	if pred != 2 {
		t.Errorf("pred = %d, votes = %v", pred, votes)
	}
}

func TestBruteForceNearestExact(t *testing.T) {
	c := buildCorpus(2, 3, 0, 20, 0)
	bf := NewBruteForce(&c.db)
	for i := 0; i < 10; i++ {
		idx, dist := bf.Nearest(c.db.Descs[i])
		if dist != 0 || c.db.Descs[idx][0] != c.db.Descs[i][0] {
			t.Fatalf("self NN of %d: idx=%d dist=%d", i, idx, dist)
		}
	}
}

func TestBruteForceEmptyDB(t *testing.T) {
	bf := NewBruteForce(&DB{})
	if idx, _ := bf.Nearest(make([]byte, 128)); idx != -1 {
		t.Errorf("empty DB NN = %d", idx)
	}
	pred, _, err := bf.MatchFrame([][]byte{make([]byte, 128)})
	if err != nil || pred != -1 {
		t.Errorf("pred=%d err=%v", pred, err)
	}
}

func TestLSHMatcherAgreesWithBruteForceOnEasyQueries(t *testing.T) {
	c := buildCorpus(3, 8, 4, 25, 2)
	bf := NewBruteForce(&c.db)
	lm, err := NewLSH(&c.db, lshParams())
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, q := range c.queries {
		pb, _, _ := bf.MatchFrame(q.descs)
		pl, _, _ := lm.MatchFrame(q.descs)
		if pb == pl {
			agree++
		}
	}
	if agree < len(c.queries)*7/10 {
		t.Errorf("LSH agrees with BruteForce on only %d/%d queries", agree, len(c.queries))
	}
}

func TestSchemesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus evaluation is slow")
	}
	c := buildCorpus(4, 12, 10, 40, 3)
	oracle := trainedOracle(t, &c.db)

	bf := NewBruteForce(&c.db)
	lm, err := NewLSH(&c.db, lshParams())
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := NewRandom(&c.db, lshParams(), 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := NewVisualPrint(&c.db, lshParams(), oracle, 12)
	if err != nil {
		t.Fatal(err)
	}

	recall := map[string]float64{}
	precision := map[string]float64{}
	for _, m := range []Matcher{bf, lm, rnd, vp} {
		prs := PrecisionRecall(evaluate(t, m, c))
		recall[m.Name()] = meanMetric(prs, func(p PR) float64 { return p.Recall }, 12)
		precision[m.Name()] = meanMetric(prs, func(p PR) float64 { return p.Precision }, 12)
	}

	// The paper's headline orderings (Figure 13):
	// VisualPrint beats Random at the same upload budget.
	if recall["VisualPrint"] < recall["Random"] {
		t.Errorf("VisualPrint recall %.2f < Random %.2f", recall["VisualPrint"], recall["Random"])
	}
	if precision["VisualPrint"] < precision["Random"] {
		t.Errorf("VisualPrint precision %.2f < Random %.2f", precision["VisualPrint"], precision["Random"])
	}
	// Full-keypoint schemes achieve strong recall on this corpus.
	if recall["BruteForce"] < 0.8 {
		t.Errorf("BruteForce recall %.2f — corpus too hard or matcher broken", recall["BruteForce"])
	}
	// VisualPrint must stay in the same league as LSH despite uploading
	// a fraction of the keypoints.
	if recall["VisualPrint"] < recall["LSH"]-0.25 {
		t.Errorf("VisualPrint recall %.2f far below LSH %.2f", recall["VisualPrint"], recall["LSH"])
	}
}

func TestUploadDescriptors(t *testing.T) {
	c := buildCorpus(5, 3, 0, 10, 0)
	bf := NewBruteForce(&c.db)
	if bf.UploadDescriptors(3500) != 3500 {
		t.Error("BruteForce should upload all")
	}
	rnd, _ := NewRandom(&c.db, lshParams(), 500, 1)
	if rnd.UploadDescriptors(3500) != 500 {
		t.Error("Random-500 should upload 500")
	}
	if rnd.UploadDescriptors(200) != 200 {
		t.Error("Random-500 with 200 keypoints should upload 200")
	}
}

func TestMemoryOrdering(t *testing.T) {
	// Figure 15's ordering: Random ~ 0 < VisualPrint < LSH; BruteForce =
	// raw database.
	c := buildCorpus(6, 10, 5, 40, 0)
	oracle := trainedOracle(t, &c.db)
	bf := NewBruteForce(&c.db)
	lm, _ := NewLSH(&c.db, lshParams())
	rnd, _ := NewRandom(&c.db, lshParams(), 500, 1)
	vp, _ := NewVisualPrint(&c.db, lshParams(), oracle, 500)
	if rnd.MemoryBytes() != 0 {
		t.Errorf("Random memory = %d", rnd.MemoryBytes())
	}
	if vp.MemoryBytes() <= 0 {
		t.Error("VisualPrint memory should be positive (oracle)")
	}
	if lm.MemoryBytes() <= bf.MemoryBytes() {
		t.Errorf("LSH memory %d should exceed raw DB %d (replication)", lm.MemoryBytes(), bf.MemoryBytes())
	}
}

func TestPrecisionRecallDefinitions(t *testing.T) {
	preds := []Prediction{
		{True: 0, Pred: 0},  // TP for 0
		{True: 0, Pred: 1},  // FN for 0, FP for 1
		{True: 1, Pred: 1},  // TP for 1
		{True: 1, Pred: -1}, // FN for 1
	}
	prs := PrecisionRecall(preds)
	if pr := prs[0]; pr.TP != 1 || pr.FN != 1 || pr.FP != 0 {
		t.Errorf("scene 0: %+v", pr)
	}
	if pr := prs[0]; pr.Precision != 1 || pr.Recall != 0.5 {
		t.Errorf("scene 0 P/R: %+v", pr)
	}
	if pr := prs[1]; pr.TP != 1 || pr.FP != 1 || pr.FN != 1 {
		t.Errorf("scene 1: %+v", pr)
	}
}

func TestValues(t *testing.T) {
	prs := map[int]PR{
		0: {Precision: 0.9},
		1: {Precision: 0.3},
		2: {Precision: 0.6},
	}
	vs := Values(prs, func(p PR) float64 { return p.Precision })
	if len(vs) != 3 || vs[0] != 0.3 || vs[2] != 0.9 {
		t.Errorf("Values = %v", vs)
	}
}

func TestDimDifferences(t *testing.T) {
	a := make([]byte, 128)
	b := make([]byte, 128)
	a[5] = 100 // squared diff 10000
	a[9] = 10  // squared diff 100
	diffs, err := DimDifferences(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if diffs[0] != 10000 || diffs[1] != 100 || diffs[2] != 0 {
		t.Errorf("diffs head = %v", diffs[:3])
	}
	if _, err := DimDifferences(a, make([]byte, 64)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestVoteWinnerTieAndEmpty(t *testing.T) {
	if voteWinner(map[int]int{}) != -1 {
		t.Error("empty votes should return -1")
	}
	if w := voteWinner(map[int]int{3: 2, 1: 2}); w != 1 {
		t.Errorf("tie should go to the lower label, got %d", w)
	}
}
