package lsh

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestIndexSerializeRoundTrip(t *testing.T) {
	p := Params{L: 6, M: 4, W: 400, Dim: 32, Seed: 9}
	ix, err := NewIndex(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	descs := make([][]byte, 500)
	for i := range descs {
		d := make([]byte, p.Dim)
		for j := range d {
			d[j] = byte(rng.Intn(256))
		}
		descs[i] = d
		if _, err := ix.Insert(append([]byte(nil), d...)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if ix2.Len() != ix.Len() {
		t.Fatalf("len %d != %d", ix2.Len(), ix.Len())
	}
	if !reflect.DeepEqual(ix.h.p, ix2.h.p) {
		t.Fatalf("params diverge: %+v vs %+v", ix.h.p, ix2.h.p)
	}
	if !reflect.DeepEqual(ix.descs, ix2.descs) {
		t.Fatal("descriptors diverge after round trip")
	}
	if !reflect.DeepEqual(ix.tables, ix2.tables) {
		t.Fatal("bucket tables diverge after round trip")
	}

	// Queries must be bit-identical: same candidates, same order.
	opt := QueryOptions{MaxCandidates: 8, MultiProbe: true}
	for i := 0; i < 100; i++ {
		q := descs[rng.Intn(len(descs))]
		if rng.Intn(2) == 0 { // perturb to exercise near-miss paths
			q = append([]byte(nil), q...)
			q[rng.Intn(len(q))] ^= 0x0f
		}
		a, err := ix.Query(q, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix2.Query(q, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d diverges: %v vs %v", i, a, b)
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream: valid magic then EOF.
	if _, err := ReadIndex(bytes.NewReader([]byte(indexMagic))); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
