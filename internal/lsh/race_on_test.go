//go:build race

package lsh

const raceEnabled = true
