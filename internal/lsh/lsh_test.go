package lsh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randDesc(rng *rand.Rand) []byte {
	d := make([]byte, 128)
	for i := range d {
		d[i] = byte(rng.Intn(256))
	}
	return d
}

// perturb returns a copy of d with small bounded noise added, i.e. a nearby
// point in Euclidean space.
func perturb(rng *rand.Rand, d []byte, amp int) []byte {
	out := append([]byte(nil), d...)
	for i := range out {
		v := int(out[i]) + rng.Intn(2*amp+1) - amp
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		out[i] = byte(v)
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{L: 0, M: 7, W: 500, Dim: 128},
		{L: 10, M: 0, W: 500, Dim: 128},
		{L: 10, M: 7, W: 0, Dim: 128},
		{L: 10, M: 7, W: 500, Dim: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestHasherDeterministic(t *testing.T) {
	p := DefaultParams()
	h1, err := NewHasher(p)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := NewHasher(p)
	rng := rand.New(rand.NewSource(1))
	d := randDesc(rng)
	for tbl := 0; tbl < p.L; tbl++ {
		b1 := h1.Bucket(d, tbl)
		b2 := h2.Bucket(d, tbl)
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("table %d: hashers with same seed disagree", tbl)
			}
		}
	}
}

func TestHasherLocality(t *testing.T) {
	// Nearby descriptors must collide in at least one table far more often
	// than random pairs — the defining LSH property.
	h, err := NewHasher(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	trials := 200
	nearCollide, farCollide := 0, 0
	for i := 0; i < trials; i++ {
		d := randDesc(rng)
		near := perturb(rng, d, 4)
		far := randDesc(rng)
		if collideAnyTable(h, d, near) {
			nearCollide++
		}
		if collideAnyTable(h, d, far) {
			farCollide++
		}
	}
	if nearCollide < trials*7/10 {
		t.Errorf("near pairs collide only %d/%d", nearCollide, trials)
	}
	if farCollide > trials/10 {
		t.Errorf("far pairs collide %d/%d — not locality sensitive", farCollide, trials)
	}
}

func collideAnyTable(h *Hasher, a, b []byte) bool {
	p := h.Params()
	for t := 0; t < p.L; t++ {
		if h.Key(t, h.Bucket(a, t)) == h.Key(t, h.Bucket(b, t)) {
			return true
		}
	}
	return false
}

func TestProbesCount(t *testing.T) {
	h, _ := NewHasher(Params{L: 2, M: 5, W: 100, Dim: 16, Seed: 3})
	coords := []int32{1, 2, 3, 4, 5}
	probes := h.Probes(coords)
	if len(probes) != 11 { // 1 exact + 2*M
		t.Fatalf("probes = %d, want 11", len(probes))
	}
	// First probe is the exact bucket.
	for i, c := range probes[0] {
		if c != coords[i] {
			t.Fatal("first probe is not the exact bucket")
		}
	}
	// Every other probe differs by exactly one coordinate by exactly 1.
	for _, p := range probes[1:] {
		diff := 0
		for i := range p {
			d := p[i] - coords[i]
			if d != 0 {
				diff++
				if d != 1 && d != -1 {
					t.Fatalf("probe step %d not off-by-one", d)
				}
			}
		}
		if diff != 1 {
			t.Fatalf("probe differs in %d coordinates", diff)
		}
	}
}

func TestKeyTableSeparation(t *testing.T) {
	h, _ := NewHasher(Params{L: 2, M: 3, W: 100, Dim: 8, Seed: 4})
	coords := []int32{7, -2, 9}
	if h.Key(0, coords) == h.Key(1, coords) {
		t.Error("same coords in different tables should (almost surely) get different keys")
	}
}

func TestIndexInsertQueryExact(t *testing.T) {
	ix, err := NewIndex(Params{L: 6, M: 4, W: 400, Dim: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var descs [][]byte
	for i := 0; i < 200; i++ {
		d := randDesc(rng)
		descs = append(descs, d)
		id, err := ix.Insert(d)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	// Querying an inserted descriptor must return itself at distance 0.
	hits := 0
	for i, d := range descs {
		cands, err := ix.Query(d, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) > 0 && cands[0].ID == i && cands[0].DistSq == 0 {
			hits++
		}
	}
	if hits != len(descs) {
		t.Errorf("self-query hit %d/%d", hits, len(descs))
	}
}

func TestIndexQueryFindsNearNeighbor(t *testing.T) {
	ix, _ := NewIndex(Params{L: 10, M: 5, W: 500, Dim: 128, Seed: 7})
	rng := rand.New(rand.NewSource(8))
	var descs [][]byte
	for i := 0; i < 300; i++ {
		d := randDesc(rng)
		descs = append(descs, d)
		ix.Insert(d)
	}
	found := 0
	for i := 0; i < 100; i++ {
		q := perturb(rng, descs[i], 3)
		cands, _ := ix.Query(q, QueryOptions{MultiProbe: true})
		if len(cands) > 0 && cands[0].ID == i {
			found++
		}
	}
	if found < 80 {
		t.Errorf("near-neighbor recall %d/100", found)
	}
}

func TestIndexQuerySorted(t *testing.T) {
	ix, _ := NewIndex(Params{L: 4, M: 3, W: 2000, Dim: 32, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		d := make([]byte, 32)
		for j := range d {
			d[j] = byte(rng.Intn(256))
		}
		ix.Insert(d)
	}
	q := make([]byte, 32)
	cands, _ := ix.Query(q, QueryOptions{MultiProbe: true})
	for i := 1; i < len(cands); i++ {
		if cands[i].DistSq < cands[i-1].DistSq {
			t.Fatal("candidates not sorted by distance")
		}
	}
}

func TestIndexMaxCandidates(t *testing.T) {
	ix, _ := NewIndex(Params{L: 4, M: 2, W: 5000, Dim: 16, Seed: 11})
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		d := make([]byte, 16)
		for j := range d {
			d[j] = byte(rng.Intn(30)) // cluster everything together
		}
		ix.Insert(d)
	}
	q := make([]byte, 16)
	cands, _ := ix.Query(q, QueryOptions{MaxCandidates: 5, MultiProbe: true})
	if len(cands) > 5 {
		t.Errorf("MaxCandidates ignored: %d results", len(cands))
	}
}

func TestIndexDimensionMismatch(t *testing.T) {
	ix, _ := NewIndex(Params{L: 2, M: 2, W: 100, Dim: 8, Seed: 13})
	if _, err := ix.Insert(make([]byte, 9)); err == nil {
		t.Error("Insert accepted wrong dimension")
	}
	if _, err := ix.Query(make([]byte, 7), QueryOptions{}); err == nil {
		t.Error("Query accepted wrong dimension")
	}
}

func TestIndexMemoryGrows(t *testing.T) {
	ix, _ := NewIndex(Params{L: 4, M: 3, W: 500, Dim: 64, Seed: 14})
	empty := ix.MemoryBytes()
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 100; i++ {
		d := make([]byte, 64)
		for j := range d {
			d[j] = byte(rng.Intn(256))
		}
		ix.Insert(d)
	}
	if ix.MemoryBytes() <= empty {
		t.Error("MemoryBytes did not grow with inserts")
	}
	// LSH replication: footprint should exceed the raw descriptor bytes.
	if ix.MemoryBytes() < 100*64 {
		t.Error("MemoryBytes below raw data size — replication unaccounted")
	}
}

func TestBucketQuantizationMonotone(t *testing.T) {
	// Property: scaling a descriptor toward larger values shifts projections
	// continuously — bucket coordinates of d and d+1 (per byte) differ by a
	// bounded amount.
	h, _ := NewHasher(Params{L: 1, M: 4, W: 500, Dim: 16, Seed: 16})
	f := func(raw [16]byte) bool {
		d := raw[:]
		d2 := make([]byte, 16)
		for i := range d {
			v := int(d[i]) + 1
			if v > 255 {
				v = 255
			}
			d2[i] = byte(v)
		}
		b1 := h.Bucket(d, 0)
		b2 := h.Bucket(d2, 0)
		for i := range b1 {
			diff := b2[i] - b1[i]
			if diff < -2 || diff > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkBucketInto(b *testing.B) {
	h, _ := NewHasher(DefaultParams())
	rng := rand.New(rand.NewSource(1))
	d := randDesc(rng)
	out := make([]int32, h.Params().M)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.BucketInto(d, i%h.Params().L, out)
	}
}

func BenchmarkIndexQuery(b *testing.B) {
	ix, _ := NewIndex(DefaultParams())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		ix.Insert(randDesc(rng))
	}
	q := randDesc(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, QueryOptions{MultiProbe: true})
	}
}

func TestConcurrentQueries(t *testing.T) {
	ix, _ := NewIndex(Params{L: 6, M: 4, W: 500, Dim: 64, Seed: 44})
	rng := rand.New(rand.NewSource(45))
	var descs [][]byte
	for i := 0; i < 200; i++ {
		d := make([]byte, 64)
		for j := range d {
			d[j] = byte(rng.Intn(256))
		}
		descs = append(descs, d)
		ix.Insert(d)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 100; i++ {
				if _, err := ix.Query(descs[(w*13+i)%len(descs)], QueryOptions{MultiProbe: true}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
