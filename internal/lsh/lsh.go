// Package lsh implements E2LSH — Euclidean locality-sensitive hashing based
// on 2-stable (Gaussian) random projections (Datar et al., SoCG 2004; Andoni
// & Indyk 2004) — as used twice in VisualPrint: as the server-side
// approximate nearest-neighbor lookup table mapping keypoints to 3D
// positions, and as the locality-sensitive front end of the uniqueness
// oracle's Bloom filters.
//
// A descriptor is projected onto L x M random hyperplanes whose coefficients
// are drawn from a Gaussian (2-stable) distribution, so projected distances
// preserve the L2 norm in expectation. Each projection is quantized with
// width W; the M quantized values form the bucket coordinate of one of the L
// tables.
//
// The query path is allocation-free in steady state: the descriptor bytes
// are widened to float32 once per query (not once per projection row — at
// the paper's L=10, M=7 that would be a 70x redundant conversion), bucket
// coordinates, probe perturbations and table keys run through per-query
// scratch buffers recycled via a sync.Pool, and QueryInto appends into a
// caller-owned candidate slice. See DESIGN.md "Performance".
package lsh

import (
	"cmp"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"slices"
	"sync"

	"visualprint/internal/dist"
	"visualprint/internal/hash"
)

// Params configures an E2LSH family. The paper's empirically tuned values
// for the uniqueness oracle are L=10, M=7, W=500 (section 3).
type Params struct {
	L    int     // number of hash tables (independent bucket families)
	M    int     // projections (quantized dimensions) per table
	W    float64 // quantization width
	Dim  int     // input dimensionality (128 for SIFT)
	Seed int64   // RNG seed for the projection family
}

// DefaultParams returns the paper's oracle parameterization for 128-d SIFT
// descriptors.
func DefaultParams() Params {
	return Params{L: 10, M: 7, W: 500, Dim: 128, Seed: 1}
}

// Validate reports whether p is usable.
func (p Params) Validate() error {
	if p.L <= 0 || p.M <= 0 || p.W <= 0 || p.Dim <= 0 {
		return errors.New("lsh: L, M, W and Dim must be positive")
	}
	return nil
}

// Hasher maps byte-valued descriptors to quantized bucket coordinates. It is
// deterministic for a given Params (including Seed) and safe for concurrent
// use once constructed.
type Hasher struct {
	p    Params
	proj [][]float32 // L*M rows of Dim Gaussian coefficients
	offs []float64   // L*M uniform offsets in [0, W)
}

// NewHasher builds the random projection family for p.
func NewHasher(p Params) (*Hasher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.L * p.M
	h := &Hasher{p: p, proj: make([][]float32, n), offs: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := make([]float32, p.Dim)
		for d := range row {
			row[d] = float32(rng.NormFloat64())
		}
		h.proj[i] = row
		h.offs[i] = rng.Float64() * p.W
	}
	return h, nil
}

// Params returns the parameter set the hasher was built with.
func (h *Hasher) Params() Params { return h.p }

// DescriptorVec widens descriptor bytes to float32 into dst (reusing its
// capacity), the one-per-query conversion both hot paths share. The result
// multiplies bit-identically to converting each byte inside the projection
// loop, so bucket coordinates are unchanged.
func DescriptorVec(desc []byte, dst []float32) []float32 {
	dst = dst[:0]
	for _, v := range desc {
		dst = append(dst, float32(v))
	}
	return dst
}

// Bucket computes the M quantized projection coordinates of desc for the
// given table (0 <= table < L). The desc length must equal Dim.
func (h *Hasher) Bucket(desc []byte, table int) []int32 {
	out := make([]int32, h.p.M)
	h.BucketInto(desc, table, out)
	return out
}

// BucketInto is Bucket without allocation; out must have length M. It
// converts every descriptor byte once per projection row; hot paths that
// hash the same descriptor into several tables should convert once with
// DescriptorVec and use BucketVecInto instead.
func (h *Hasher) BucketInto(desc []byte, table int, out []int32) {
	base := table * h.p.M
	for m := 0; m < h.p.M; m++ {
		row := h.proj[base+m]
		var acc float32
		for d, v := range desc {
			acc += row[d] * float32(v)
		}
		out[m] = int32(math.Floor((float64(acc) + h.offs[base+m]) / h.p.W))
	}
}

// BucketVecInto is BucketInto over a pre-widened descriptor (DescriptorVec).
// Identical arithmetic, so the coordinates match BucketInto bit for bit.
func (h *Hasher) BucketVecInto(vec []float32, table int, out []int32) {
	base := table * h.p.M
	for m := 0; m < h.p.M; m++ {
		row := h.proj[base+m]
		var acc float32
		for d, v := range vec {
			acc += row[d] * v
		}
		out[m] = int32(math.Floor((float64(acc) + h.offs[base+m]) / h.p.W))
	}
}

// Key collapses a bucket coordinate into a 64-bit table key using Murmur3
// seeded by the table index — the "cryptographic hash g_i from the same
// family (Murmur-3)" step of Figure 8.
func (h *Hasher) Key(table int, coords []int32) uint64 {
	return h.KeyInto(table, coords, make([]byte, 4*len(coords)))
}

// KeyInto is Key using buf as the serialization scratch; buf must have
// length (not just capacity) of at least 4*len(coords).
func (h *Hasher) KeyInto(table int, coords []int32, buf []byte) uint64 {
	buf = buf[:4*len(coords)]
	for i, c := range coords {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(c))
	}
	return hash.Sum64(buf, uint32(table)*0x9e3779b9+1)
}

// Probes returns the multi-probe set for a bucket coordinate: the exact
// bucket first, followed by the 2M off-by-one perturbations (each coordinate
// +-1). This is the paper's borrowing from multi-probe LSH (Lv et al., VLDB
// 2007) to reduce quantization false negatives.
//
// Probes allocates its result; the in-place query paths enumerate the same
// perturbations by mutating one coordinate at a time instead (the probe
// order — exact, then per coordinate -1 before +1 — is part of the query
// contract, since it fixes candidate dedup order).
func (h *Hasher) Probes(coords []int32) [][]int32 {
	out := make([][]int32, 0, 2*len(coords)+1)
	out = append(out, append([]int32(nil), coords...))
	for i := range coords {
		for _, d := range []int32{-1, 1} {
			p := append([]int32(nil), coords...)
			p[i] += d
			out = append(out, p)
		}
	}
	return out
}

// Candidate is a query result from the Index.
type Candidate struct {
	ID     int // insertion order identifier
	DistSq int // squared Euclidean distance to the query
	// Probe is the ordinal of the bucket probe at which the candidate was
	// first collected: table-major over the probe sequence (exact bucket,
	// then per coordinate -1/+1), so 0 <= Probe < L*(2M+1). Together with
	// the candidate's insertion order it reconstructs the dedup order of a
	// query — the property the sharded scatter-gather merge relies on to
	// reproduce a single index's candidate ranking across disjoint
	// sub-indexes (see server.Router).
	Probe int32
}

// compareCandidates orders by ascending distance; QueryInto sorts stably, so
// equal distances keep candidate dedup order (table, then probe, then
// in-bucket insertion order) — the deterministic tie-break the serialized
// index round-trip and the parallel Locate fan-out both rely on.
func compareCandidates(a, b Candidate) int { return cmp.Compare(a.DistSq, b.DistSq) }

// queryScratch is the reusable per-query state: the widened descriptor, a
// bucket-coordinate buffer mutated in place for multi-probing, the key
// serialization buffer, and the dedup stamps. Pooled on the Index so a
// steady-state query allocates nothing.
//
// Dedup is an epoch-stamped slice indexed by candidate id rather than a
// map: a query bumps epoch and treats seen[id] == epoch as "already
// collected", so there is nothing to clear between queries and the hot
// membership check is a bounds-checked load instead of a map probe.
type queryScratch struct {
	vec    []float32
	coords []int32
	key    []byte
	seen   []uint32
	epoch  uint32
}

// Index is an LSH-backed approximate nearest-neighbor index over byte
// descriptors, the structure behind the server's keypoint-to-3D-position
// lookup table. IDs are assigned in insertion order; the caller keeps its
// own id -> payload mapping.
//
// Concurrency: the read path (Query, QueryInto, Len, MemoryBytes, Hasher)
// touches only immutable per-query state plus the tables/descs slices and
// maps, so any number of Query calls may run concurrently — the server's
// parallel Locate fan-out relies on this (scratch state is pooled, and
// sync.Pool is safe for concurrent use). Insert mutates the tables and must
// be externally serialized against both other Inserts and all readers (the
// server's Database guards the index with an RWMutex: Ingest takes the write
// lock, Locate the read lock). Query results are deterministic for a given
// index state, which is what keeps the parallel and serial Locate paths
// bit-identical.
type Index struct {
	h      *Hasher
	tables []map[uint64][]int32
	descs  [][]byte

	// scratch recycles *queryScratch values across queries (and inserts).
	// Never serialized; the zero value is ready to use.
	scratch sync.Pool
}

// NewIndex creates an empty index with the given parameters.
func NewIndex(p Params) (*Index, error) {
	h, err := NewHasher(p)
	if err != nil {
		return nil, err
	}
	tables := make([]map[uint64][]int32, p.L)
	for i := range tables {
		tables[i] = make(map[uint64][]int32)
	}
	return &Index{h: h, tables: tables}, nil
}

// Hasher exposes the underlying projection family (shared with the oracle).
func (ix *Index) Hasher() *Hasher { return ix.h }

// Len returns the number of indexed descriptors.
func (ix *Index) Len() int { return len(ix.descs) }

// getScratch returns a cleared scratch sized for this index's parameters.
func (ix *Index) getScratch() *queryScratch {
	s, _ := ix.scratch.Get().(*queryScratch)
	if s == nil {
		p := ix.h.p
		s = &queryScratch{
			vec:    make([]float32, 0, p.Dim),
			coords: make([]int32, p.M),
			key:    make([]byte, 4*p.M),
		}
	}
	s.epoch++
	if s.epoch == 0 {
		// Wrapped after 2^32 queries on this scratch: stale stamps could
		// alias the new epoch, so reset them once.
		clear(s.seen)
		s.epoch = 1
	}
	return s
}

// Insert adds a descriptor and returns its id. The slice is retained; the
// caller must not modify it afterwards.
func (ix *Index) Insert(desc []byte) (int, error) {
	if len(desc) != ix.h.p.Dim {
		return 0, errors.New("lsh: descriptor dimension mismatch")
	}
	id := len(ix.descs)
	ix.descs = append(ix.descs, desc)
	s := ix.getScratch()
	defer ix.scratch.Put(s)
	s.vec = DescriptorVec(desc, s.vec)
	for t := 0; t < ix.h.p.L; t++ {
		ix.h.BucketVecInto(s.vec, t, s.coords)
		k := ix.h.KeyInto(t, s.coords, s.key)
		ix.tables[t][k] = append(ix.tables[t][k], int32(id))
	}
	return id, nil
}

// QueryOptions tunes a nearest-neighbor query.
type QueryOptions struct {
	// MaxCandidates caps returned candidates (0 = no cap).
	MaxCandidates int
	// MultiProbe also checks the off-by-one buckets in every table.
	MultiProbe bool
}

// Query returns candidate neighbors of desc from all L tables, de-duplicated
// and sorted by ascending Euclidean distance (ties keep dedup order).
func (ix *Index) Query(desc []byte, opt QueryOptions) ([]Candidate, error) {
	return ix.QueryInto(desc, opt, nil)
}

// QueryInto is Query appending into dst (which is truncated first and may be
// nil). Reusing dst across queries makes the steady-state query path free of
// heap allocations — the property the server's per-keypoint Locate fan-out
// depends on, pinned by TestIndexQuerySteadyStateZeroAllocs.
//
// Candidate order is deterministic: dedup order is table order, then probe
// order (exact bucket, then per coordinate -1/+1), then in-bucket insertion
// order; the final sort is stable on ascending distance.
func (ix *Index) QueryInto(desc []byte, opt QueryOptions, dst []Candidate) ([]Candidate, error) {
	if len(desc) != ix.h.p.Dim {
		return nil, errors.New("lsh: descriptor dimension mismatch")
	}
	s := ix.getScratch()
	defer ix.scratch.Put(s)
	s.vec = DescriptorVec(desc, s.vec)
	dst = dst[:0]
	probesPerTable := int32(1)
	if opt.MultiProbe {
		probesPerTable += 2 * int32(ix.h.p.M)
	}
	for t := 0; t < ix.h.p.L; t++ {
		ix.h.BucketVecInto(s.vec, t, s.coords)
		ord := int32(t) * probesPerTable
		dst = ix.collect(t, ord, desc, s, dst)
		if opt.MultiProbe {
			// Off-by-one perturbations, enumerated by mutating one
			// coordinate at a time — same order as Probes, no allocation.
			for m := range s.coords {
				orig := s.coords[m]
				s.coords[m] = orig - 1
				dst = ix.collect(t, ord+1+2*int32(m), desc, s, dst)
				s.coords[m] = orig + 1
				dst = ix.collect(t, ord+2+2*int32(m), desc, s, dst)
				s.coords[m] = orig
			}
		}
	}
	slices.SortStableFunc(dst, compareCandidates)
	if opt.MaxCandidates > 0 && len(dst) > opt.MaxCandidates {
		dst = dst[:opt.MaxCandidates]
	}
	return dst, nil
}

// collect appends the not-yet-seen candidates of one bucket probe, stamping
// each with the probe ordinal it was first found at.
func (ix *Index) collect(table int, ord int32, desc []byte, s *queryScratch, dst []Candidate) []Candidate {
	k := ix.h.KeyInto(table, s.coords, s.key)
	for _, id := range ix.tables[table][k] {
		if int(id) >= len(s.seen) {
			// Ids are dense insertion indices, so size the stamps to the
			// index once; steady-state queries never regrow.
			grown := make([]uint32, len(ix.descs))
			copy(grown, s.seen)
			s.seen = grown
		} else if s.seen[id] == s.epoch {
			continue
		}
		s.seen[id] = s.epoch
		dst = append(dst, Candidate{ID: int(id), DistSq: distSq(desc, ix.descs[id]), Probe: ord})
	}
	return dst
}

// MemoryBytes estimates the in-memory footprint of the index: the L bucket
// tables (key + id entries, with map overhead) plus the retained descriptor
// bytes. This drives the Figure 15 client-footprint comparison, where
// conventional LSH is shown to cost a large multiple of the raw data due to
// the L-fold replication.
func (ix *Index) MemoryBytes() int64 {
	var total int64
	for _, t := range ix.tables {
		// Per bucket: 8-byte key + slice header (24) + map entry overhead
		// (~16); per entry: 4 bytes id.
		total += int64(len(t)) * (8 + 24 + 16)
		for _, ids := range t {
			total += int64(len(ids)) * 4
		}
	}
	for _, d := range ix.descs {
		total += int64(len(d)) + 24
	}
	return total
}

// distSq scores one candidate against the query descriptor — the innermost
// loop of every Locate. The 8-way unrolled kernel lives in internal/dist
// (shared with the cluster-stage matchers); its integer sum is exactly
// equal to the scalar loop on every input, so candidate ordering — and
// therefore every downstream pose — is unchanged.
func distSq(a, b []byte) int { return dist.Sq(a, b) }
