package lsh

// Allocation and equivalence coverage for the zero-allocation query path
// (see DESIGN.md "Performance"): QueryInto must return exactly what Query
// returns, and a steady-state QueryInto must not touch the heap at all —
// future PRs cannot silently reintroduce garbage on the Locate hot path.

import (
	"math/rand"
	"testing"
)

func buildQueryIndex(t testing.TB, n int) (*Index, *rand.Rand) {
	t.Helper()
	ix, err := NewIndex(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < n; i++ {
		if _, err := ix.Insert(randDesc(rng)); err != nil {
			t.Fatal(err)
		}
	}
	return ix, rng
}

// TestQueryIntoMatchesQuery: the in-place path must return candidate slices
// identical to the allocating Query for exact hits, near neighbors and
// misses, with and without multiprobe and candidate caps.
func TestQueryIntoMatchesQuery(t *testing.T) {
	ix, rng := buildQueryIndex(t, 1500)
	opts := []QueryOptions{
		{MultiProbe: true},
		{MultiProbe: false},
		{MultiProbe: true, MaxCandidates: 2},
	}
	var dst []Candidate
	for trial := 0; trial < 60; trial++ {
		var q []byte
		switch trial % 3 {
		case 0: // exact hit
			q = append([]byte(nil), ix.descs[rng.Intn(len(ix.descs))]...)
		case 1: // near neighbor
			q = perturb(rng, ix.descs[rng.Intn(len(ix.descs))], 3)
		default: // likely miss
			q = randDesc(rng)
		}
		for _, opt := range opts {
			want, err := ix.Query(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			dst, err = ix.QueryInto(q, opt, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(dst) != len(want) {
				t.Fatalf("trial %d opt %+v: QueryInto returned %d candidates, Query %d",
					trial, opt, len(dst), len(want))
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("trial %d opt %+v candidate %d: %+v != %+v",
						trial, opt, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestIndexQuerySteadyStateZeroAllocs pins the steady-state query at zero
// heap allocations: warmed scratch (pool) plus a warmed destination slice
// must serve repeated queries entirely from reused memory.
func TestIndexQuerySteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; see race_off_test.go")
	}
	ix, rng := buildQueryIndex(t, 1500)
	q := perturb(rng, ix.descs[17], 2)
	opt := QueryOptions{MultiProbe: true, MaxCandidates: 4}
	var dst []Candidate
	var err error
	// Warm the pool scratch, the dedup map and dst's capacity.
	for i := 0; i < 3; i++ {
		if dst, err = ix.QueryInto(q, opt, dst); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dst, err = ix.QueryInto(q, opt, dst)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state QueryInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestInsertSteadyStateLowAllocs: Insert necessarily allocates for the
// retained descriptor and growing buckets, but the hashing itself must run
// through scratch — keep it bounded rather than per-projection.
func TestInsertSteadyStateLowAllocs(t *testing.T) {
	ix, rng := buildQueryIndex(t, 200)
	descs := make([][]byte, 64)
	for i := range descs {
		descs[i] = randDesc(rng)
	}
	i := 0
	allocs := testing.AllocsPerRun(len(descs), func() {
		if _, err := ix.Insert(descs[i%len(descs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Bucket append growth and the descs slice dominate; the old path spent
	// hundreds of allocations per insert on coords/key buffers.
	if allocs > 40 {
		t.Fatalf("Insert allocates %.1f objects/op, want the scratch-based path (<= 40)", allocs)
	}
}

// BenchmarkIndexQueryInto is the zero-allocation counterpart of
// BenchmarkIndexQuery.
func BenchmarkIndexQueryInto(b *testing.B) {
	ix, rng := buildQueryIndex(b, 5000)
	q := randDesc(rng)
	var dst []Candidate
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = ix.QueryInto(q, QueryOptions{MultiProbe: true}, dst); err != nil {
			b.Fatal(err)
		}
	}
}
