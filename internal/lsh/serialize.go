package lsh

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Index serialization, used by the server's durable snapshots. The format
// stores the parameter set (from which the projection family is rebuilt
// deterministically — the Gaussian coefficients themselves are never
// written), the retained descriptors, and the L bucket tables verbatim.
// Per-bucket id slices keep their insertion order, which is what makes a
// deserialized index answer queries bit-identically to the original:
// candidate enumeration order, and therefore tie-breaking among equal
// distances, is preserved.
const indexMagic = "VPLSH1\x00\x00"

// indexMaxEntries bounds deserialized allocation sizes so a corrupt length
// field fails cleanly instead of attempting a huge allocation.
const indexMaxEntries = 1 << 31

// WriteTo serializes the index. The stream is framed by the caller (the
// server snapshot wraps it in a checksummed container).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return 0, err
	}
	p := ix.h.p
	hdr := []any{
		uint32(p.L), uint32(p.M), p.W, uint32(p.Dim), p.Seed,
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(ix.descs))); err != nil {
		return 0, err
	}
	for _, d := range ix.descs {
		if _, err := bw.Write(d); err != nil {
			return 0, err
		}
	}
	for _, tbl := range ix.tables {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(tbl))); err != nil {
			return 0, err
		}
		for key, ids := range tbl {
			if err := binary.Write(bw, binary.LittleEndian, key); err != nil {
				return 0, err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(ids))); err != nil {
				return 0, err
			}
			if err := binary.Write(bw, binary.LittleEndian, ids); err != nil {
				return 0, err
			}
		}
	}
	return 0, bw.Flush()
}

// ReadIndex deserializes an index written by WriteTo, rebuilding the
// projection family from the stored seed. It consumes exactly the bytes
// WriteTo produced — no internal read-ahead — so the index can be embedded
// mid-stream (the server's database snapshot does); hand it a buffered
// reader when performance matters.
func ReadIndex(r io.Reader) (*Index, error) {
	br := r
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("lsh: bad index magic %q", magic)
	}
	var p Params
	var l, m, dim uint32
	fields := []any{&l, &m, &p.W, &dim, &p.Seed}
	for _, v := range fields {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	p.L, p.M, p.Dim = int(l), int(m), int(dim)
	ix, err := NewIndex(p)
	if err != nil {
		return nil, err
	}
	var nDescs uint64
	if err := binary.Read(br, binary.LittleEndian, &nDescs); err != nil {
		return nil, err
	}
	if nDescs > indexMaxEntries {
		return nil, errors.New("lsh: implausible descriptor count")
	}
	ix.descs = make([][]byte, nDescs)
	for i := range ix.descs {
		d := make([]byte, p.Dim)
		if _, err := io.ReadFull(br, d); err != nil {
			return nil, err
		}
		ix.descs[i] = d
	}
	for t := 0; t < p.L; t++ {
		var nBuckets uint64
		if err := binary.Read(br, binary.LittleEndian, &nBuckets); err != nil {
			return nil, err
		}
		if nBuckets > indexMaxEntries {
			return nil, errors.New("lsh: implausible bucket count")
		}
		tbl := make(map[uint64][]int32, nBuckets)
		for b := uint64(0); b < nBuckets; b++ {
			var key uint64
			var n uint32
			if err := binary.Read(br, binary.LittleEndian, &key); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
				return nil, err
			}
			if uint64(n) > nDescs {
				return nil, errors.New("lsh: bucket larger than descriptor count")
			}
			ids := make([]int32, n)
			if err := binary.Read(br, binary.LittleEndian, ids); err != nil {
				return nil, err
			}
			tbl[key] = ids
		}
		ix.tables[t] = tbl
	}
	return ix, nil
}
