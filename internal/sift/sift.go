// Package sift implements the Scale-Invariant Feature Transform keypoint
// detector and descriptor (Lowe, ICCV 1999) used by VisualPrint as its
// visual feature. The implementation follows the classical pipeline:
//
//  1. Gaussian scale-space pyramid, difference-of-Gaussian (DoG) images.
//  2. Scale-space extrema detection with contrast and edge rejection.
//  3. Orientation assignment from a 36-bin gradient histogram.
//  4. A 4x4x8 = 128-bin gradient descriptor, normalized, clamped at 0.2,
//     renormalized, and quantized to one byte per dimension — the integer
//     descriptor format the paper's LSH/Bloom pipeline requires ("each
//     dimension being a one-byte integer value").
//
// The descriptor statistics (a few dimensions carrying most of the nearest-
// neighbor distance, Figure 6) emerge from this construction.
package sift

import (
	"math"
	"sort"

	"visualprint/internal/dist"
	"visualprint/internal/imaging"
)

// DescriptorSize is the dimensionality of a SIFT descriptor.
const DescriptorSize = 128

// Descriptor is a quantized 128-dimensional SIFT feature vector.
type Descriptor [DescriptorSize]byte

// Float returns the descriptor as a float64 slice, for distance and PCA
// computations.
func (d *Descriptor) Float() []float64 {
	out := make([]float64, DescriptorSize)
	for i, v := range d {
		out[i] = float64(v)
	}
	return out
}

// DistSq returns the squared Euclidean distance between two descriptors.
func (d *Descriptor) DistSq(e *Descriptor) int {
	return dist.Sq(d[:], e[:])
}

// Keypoint is a detected, described interest point. X and Y are pixel
// coordinates in the original image; Scale is the detection scale (the
// radius drawn in the paper's Figure 4); Orientation is the dominant
// gradient direction in radians.
type Keypoint struct {
	X, Y        float64
	Scale       float64
	Orientation float64
	Response    float64 // |DoG| value at the extremum; larger is stronger
	Desc        Descriptor
}

// Config holds detector parameters. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// ScalesPerOctave is the number of scales at which extrema are
	// detected per octave (s in Lowe's paper); s+3 Gaussian images are
	// built per octave.
	ScalesPerOctave int
	// Sigma is the base blur of the first pyramid level.
	Sigma float64
	// ContrastThreshold rejects low-contrast extrema (applied to |DoG|
	// with image intensities in [0, 1]).
	ContrastThreshold float64
	// EdgeThreshold is the principal-curvature ratio r; extrema with
	// trace^2/det > (r+1)^2/r are rejected as edge responses.
	EdgeThreshold float64
	// MaxKeypoints caps the output, keeping the strongest responses.
	// Zero means no cap.
	MaxKeypoints int
}

// DefaultConfig returns the standard SIFT parameterization.
func DefaultConfig() Config {
	return Config{
		ScalesPerOctave:   3,
		Sigma:             1.6,
		ContrastThreshold: 0.03,
		EdgeThreshold:     10,
		MaxKeypoints:      0,
	}
}

// Detect runs the full SIFT pipeline on img and returns described
// keypoints, strongest first.
func Detect(img *imaging.Gray, cfg Config) []Keypoint {
	if cfg.ScalesPerOctave <= 0 {
		cfg = DefaultConfig()
	}
	pyr := buildPyramid(img, cfg)
	kps := detectExtrema(pyr, cfg)
	out := make([]Keypoint, 0, len(kps))
	for _, c := range kps {
		for _, ori := range orientations(pyr, c) {
			kp := Keypoint{
				X:           c.x * c.octScale,
				Y:           c.y * c.octScale,
				Scale:       c.sigma * c.octScale,
				Orientation: ori,
				Response:    c.response,
			}
			describe(pyr, c, ori, &kp.Desc)
			out = append(out, kp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Response > out[j].Response })
	if cfg.MaxKeypoints > 0 && len(out) > cfg.MaxKeypoints {
		out = out[:cfg.MaxKeypoints]
	}
	return out
}

// pyramid holds per-octave Gaussian and DoG stacks.
type pyramid struct {
	octaves [][]*imaging.Gray // gaussians[octave][level], len s+3
	dogs    [][]*imaging.Gray // dogs[octave][level], len s+2
	cfg     Config
}

func buildPyramid(img *imaging.Gray, cfg Config) *pyramid {
	s := cfg.ScalesPerOctave
	k := math.Pow(2, 1/float64(s))
	nOct := 1
	for w, h := img.W, img.H; w >= 16 && h >= 16; w, h = w/2, h/2 {
		nOct++
	}
	nOct-- // last usable octave
	if nOct < 1 {
		nOct = 1
	}

	p := &pyramid{cfg: cfg}
	base := imaging.GaussianBlur(img, cfg.Sigma) // assume nominal input blur 0
	for o := 0; o < nOct; o++ {
		levels := make([]*imaging.Gray, s+3)
		levels[0] = base
		sigmaPrev := cfg.Sigma
		for l := 1; l < s+3; l++ {
			sigmaTotal := cfg.Sigma * math.Pow(k, float64(l))
			sigmaDelta := math.Sqrt(sigmaTotal*sigmaTotal - sigmaPrev*sigmaPrev)
			levels[l] = imaging.GaussianBlur(levels[l-1], sigmaDelta)
			sigmaPrev = sigmaTotal
		}
		dogs := make([]*imaging.Gray, s+2)
		for l := 0; l < s+2; l++ {
			d, _ := imaging.Subtract(levels[l+1], levels[l])
			dogs[l] = d
		}
		p.octaves = append(p.octaves, levels)
		p.dogs = append(p.dogs, dogs)
		// Next octave starts from the level with 2x the base sigma.
		base = imaging.Downsample(levels[s])
		if base.W < 8 || base.H < 8 {
			break
		}
	}
	return p
}

// candidate is an extremum located in pyramid coordinates.
type candidate struct {
	octave   int
	level    int     // DoG level of the extremum
	x, y     float64 // coordinates within the octave
	sigma    float64 // scale within the octave
	octScale float64 // 2^octave: multiplier back to image coordinates
	response float64
}

func detectExtrema(p *pyramid, cfg Config) []candidate {
	var out []candidate
	s := cfg.ScalesPerOctave
	k := math.Pow(2, 1/float64(s))
	edgeLimit := (cfg.EdgeThreshold + 1) * (cfg.EdgeThreshold + 1) / cfg.EdgeThreshold
	for o, dogs := range p.dogs {
		octScale := math.Pow(2, float64(o))
		for l := 1; l <= len(dogs)-2; l++ {
			d0, d1, d2 := dogs[l-1], dogs[l], dogs[l+1]
			for y := 1; y < d1.H-1; y++ {
				for x := 1; x < d1.W-1; x++ {
					v := d1.Pix[y*d1.W+x]
					av := math.Abs(float64(v))
					if av < cfg.ContrastThreshold {
						continue
					}
					if !isExtremum(d0, d1, d2, x, y, v) {
						continue
					}
					// Edge rejection: 2x2 Hessian of the DoG.
					dxx := float64(d1.At(x+1, y) + d1.At(x-1, y) - 2*v)
					dyy := float64(d1.At(x, y+1) + d1.At(x, y-1) - 2*v)
					dxy := float64(d1.At(x+1, y+1)-d1.At(x-1, y+1)-d1.At(x+1, y-1)+d1.At(x-1, y-1)) / 4
					tr := dxx + dyy
					det := dxx*dyy - dxy*dxy
					if det <= 0 || tr*tr/det > edgeLimit {
						continue
					}
					// Subpixel refinement in x and y via 1-D quadratic fits.
					ox := quadOffset(float64(d1.At(x-1, y)), float64(v), float64(d1.At(x+1, y)))
					oy := quadOffset(float64(d1.At(x, y-1)), float64(v), float64(d1.At(x, y+1)))
					out = append(out, candidate{
						octave:   o,
						level:    l,
						x:        float64(x) + ox,
						y:        float64(y) + oy,
						sigma:    cfg.Sigma * math.Pow(k, float64(l)),
						octScale: octScale,
						response: av,
					})
				}
			}
		}
	}
	return out
}

// quadOffset returns the sub-sample offset of the vertex of the parabola
// through (-1, a), (0, b), (1, c), clamped to [-0.5, 0.5].
func quadOffset(a, b, c float64) float64 {
	den := a - 2*b + c
	if den == 0 {
		return 0
	}
	off := 0.5 * (a - c) / den
	if off > 0.5 {
		off = 0.5
	} else if off < -0.5 {
		off = -0.5
	}
	return off
}

func isExtremum(d0, d1, d2 *imaging.Gray, x, y int, v float32) bool {
	if v > 0 {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if d0.At(x+dx, y+dy) >= v || d2.At(x+dx, y+dy) >= v {
					return false
				}
				if (dx != 0 || dy != 0) && d1.At(x+dx, y+dy) >= v {
					return false
				}
			}
		}
		return true
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if d0.At(x+dx, y+dy) <= v || d2.At(x+dx, y+dy) <= v {
				return false
			}
			if (dx != 0 || dy != 0) && d1.At(x+dx, y+dy) <= v {
				return false
			}
		}
	}
	return true
}

// gaussianImage returns the Gaussian level nearest the candidate's scale.
func (p *pyramid) gaussianImage(c candidate) *imaging.Gray {
	levels := p.octaves[c.octave]
	l := c.level + 1 // DoG level l sits between Gaussian levels l and l+1
	if l >= len(levels) {
		l = len(levels) - 1
	}
	return levels[l]
}

const oriBins = 36

// orientations computes the dominant gradient orientation(s) of a candidate
// from a Gaussian-weighted 36-bin histogram; peaks within 80% of the maximum
// each produce a keypoint, per Lowe.
func orientations(p *pyramid, c candidate) []float64 {
	img := p.gaussianImage(c)
	var hist [oriBins]float64
	sigmaW := 1.5 * c.sigma
	radius := int(math.Round(3 * sigmaW))
	cx, cy := int(math.Round(c.x)), int(math.Round(c.y))
	inv2s2 := -1 / (2 * sigmaW * sigmaW)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			x, y := cx+dx, cy+dy
			if x < 1 || y < 1 || x >= img.W-1 || y >= img.H-1 {
				continue
			}
			mag, theta := imaging.Gradient(img, x, y)
			w := math.Exp(float64(dx*dx+dy*dy) * inv2s2)
			bin := int(math.Floor((theta + math.Pi) / (2 * math.Pi) * oriBins))
			if bin >= oriBins {
				bin = oriBins - 1
			} else if bin < 0 {
				bin = 0
			}
			hist[bin] += w * mag
		}
	}
	// Smooth the histogram twice with a [1 1 1]/3 box filter.
	for pass := 0; pass < 2; pass++ {
		var sm [oriBins]float64
		for i := 0; i < oriBins; i++ {
			sm[i] = (hist[(i+oriBins-1)%oriBins] + hist[i] + hist[(i+1)%oriBins]) / 3
		}
		hist = sm
	}
	maxV := 0.0
	for _, h := range hist {
		if h > maxV {
			maxV = h
		}
	}
	if maxV == 0 {
		return []float64{0}
	}
	var out []float64
	for i := 0; i < oriBins; i++ {
		h := hist[i]
		prev := hist[(i+oriBins-1)%oriBins]
		next := hist[(i+1)%oriBins]
		if h < 0.8*maxV || h < prev || h < next {
			continue
		}
		// Parabolic peak interpolation.
		off := quadOffset(prev, h, next)
		theta := (float64(i)+0.5+off)/oriBins*2*math.Pi - math.Pi
		out = append(out, theta)
		if len(out) == 4 {
			break
		}
	}
	if len(out) == 0 {
		out = []float64{0}
	}
	return out
}

const (
	descGrid = 4 // 4x4 spatial bins
	descOri  = 8 // 8 orientation bins
)

// describe fills desc with the 128-dimensional gradient histogram of the
// region around c, rotated to the given orientation, then normalized,
// clamped at 0.2, renormalized, and quantized to bytes.
func describe(p *pyramid, c candidate, orientation float64, desc *Descriptor) {
	img := p.gaussianImage(c)
	var raw [descGrid * descGrid * descOri]float64

	histWidth := 3 * c.sigma // pixels per spatial bin
	radius := int(math.Round(histWidth * math.Sqrt2 * (descGrid + 1) / 2))
	if radius < 1 {
		radius = 1
	}
	cosT, sinT := math.Cos(orientation), math.Sin(orientation)
	cx, cy := c.x, c.y
	binCenter := float64(descGrid)/2 - 0.5

	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			x := int(math.Round(cx)) + dx
			y := int(math.Round(cy)) + dy
			if x < 1 || y < 1 || x >= img.W-1 || y >= img.H-1 {
				continue
			}
			// Rotate the offset into the keypoint frame.
			rx := (cosT*float64(dx) + sinT*float64(dy)) / histWidth
			ry := (-sinT*float64(dx) + cosT*float64(dy)) / histWidth
			bx := rx + binCenter
			by := ry + binCenter
			if bx <= -1 || bx >= descGrid || by <= -1 || by >= descGrid {
				continue
			}
			mag, theta := imaging.Gradient(img, x, y)
			rot := theta - orientation
			for rot < 0 {
				rot += 2 * math.Pi
			}
			for rot >= 2*math.Pi {
				rot -= 2 * math.Pi
			}
			bo := rot / (2 * math.Pi) * descOri
			w := math.Exp(-(rx*rx + ry*ry) / (0.5 * descGrid * descGrid))
			trilinearAdd(raw[:], bx, by, bo, w*mag)
		}
	}

	// Normalize, clamp, renormalize — Lowe's illumination invariance.
	norm := 0.0
	for _, v := range raw {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for i := range raw {
			raw[i] /= norm
			if raw[i] > 0.2 {
				raw[i] = 0.2
			}
		}
		norm = 0
		for _, v := range raw {
			norm += v * v
		}
		norm = math.Sqrt(norm)
	}
	for i := range raw {
		v := 0.0
		if norm > 0 {
			v = raw[i] / norm * 512
		}
		if v > 255 {
			v = 255
		}
		desc[i] = byte(v)
	}
}

// trilinearAdd distributes weight w into the 3-D histogram at fractional
// coordinates (bx, by, bo), with wraparound on the orientation axis.
func trilinearAdd(hist []float64, bx, by, bo, w float64) {
	x0 := int(math.Floor(bx))
	y0 := int(math.Floor(by))
	o0 := int(math.Floor(bo))
	fx := bx - float64(x0)
	fy := by - float64(y0)
	fo := bo - float64(o0)
	for dx := 0; dx <= 1; dx++ {
		xb := x0 + dx
		if xb < 0 || xb >= descGrid {
			continue
		}
		wx := w * ((1-fx)*(1-float64(dx)) + fx*float64(dx))
		for dy := 0; dy <= 1; dy++ {
			yb := y0 + dy
			if yb < 0 || yb >= descGrid {
				continue
			}
			wy := wx * ((1-fy)*(1-float64(dy)) + fy*float64(dy))
			for do := 0; do <= 1; do++ {
				ob := (o0 + do) % descOri
				if ob < 0 {
					ob += descOri
				}
				wo := wy * ((1-fo)*(1-float64(do)) + fo*float64(do))
				hist[(yb*descGrid+xb)*descOri+ob] += wo
			}
		}
	}
}
