package sift

import (
	"testing"

	"visualprint/internal/imaging"
	"visualprint/internal/lsh"
)

func TestBriefHamming(t *testing.T) {
	var a, b BriefDescriptor
	if a.Hamming(&b) != 0 {
		t.Error("identical descriptors should be 0 apart")
	}
	b[0] = 0xff
	b[31] = 0x01
	if got := a.Hamming(&b); got != 9 {
		t.Errorf("Hamming = %d, want 9", got)
	}
}

func TestBriefDeterministic(t *testing.T) {
	img := noiseImage(128, 96, 12)
	kps, d1 := DetectBRIEF(img, DefaultConfig())
	_, d2 := DetectBRIEF(img, DefaultConfig())
	if len(kps) == 0 {
		t.Fatal("no keypoints")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("BRIEF not deterministic")
		}
	}
	// SIFT descriptors are zeroed in the BRIEF pipeline.
	for i := range kps {
		if kps[i].Desc != (Descriptor{}) {
			t.Fatal("SIFT descriptor not cleared")
		}
	}
}

func TestBriefDiscriminative(t *testing.T) {
	// Same physical pattern shifted: corresponding keypoints should be
	// closer in Hamming distance than random pairs.
	tex := imaging.NoiseTexture{Seed: 77, Freq: 8, Octaves: 3, Gain: 1}
	w, h := 128, 128
	a := imaging.NewGray(w, h)
	b := imaging.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a.Set(x, y, float32(tex.Sample(float64(x)/40, float64(y)/40)))
			b.Set(x, y, float32(tex.Sample(float64(x+6)/40, float64(y)/40)))
		}
	}
	ka, da := DetectBRIEF(a, DefaultConfig())
	kb, db := DetectBRIEF(b, DefaultConfig())
	if len(ka) < 5 || len(kb) < 5 {
		t.Fatalf("too few keypoints: %d, %d", len(ka), len(kb))
	}
	matched, tight := 0, 0
	for i := range ka {
		best, bestD := -1, 3.0
		for j := range kb {
			dx, dy := kb[j].X-(ka[i].X-6), kb[j].Y-ka[i].Y
			if d := dx*dx + dy*dy; d < bestD {
				bestD, best = d, j
			}
		}
		if best < 0 {
			continue
		}
		matched++
		corr := da[i].Hamming(&db[best])
		other := da[i].Hamming(&db[(best+3)%len(db)])
		if corr < other {
			tight++
		}
	}
	if matched < 3 {
		t.Fatalf("only %d correspondences", matched)
	}
	if float64(tight) < 0.6*float64(matched) {
		t.Errorf("BRIEF not discriminative: %d/%d", tight, matched)
	}
}

func TestBriefFeedsLSHPipeline(t *testing.T) {
	// Section 5's claim: the byte-packed binary descriptor drops into the
	// E2LSH pipeline with Dim=32, unmodified.
	img := noiseImage(160, 120, 13)
	_, descs := DetectBRIEF(img, DefaultConfig())
	if len(descs) < 10 {
		t.Fatalf("only %d descriptors", len(descs))
	}
	params := lsh.Params{L: 8, M: 5, W: 60, Dim: BriefSize, Seed: 3}
	ix, err := lsh.NewIndex(params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range descs {
		if _, err := ix.Insert(append([]byte(nil), descs[i][:]...)); err != nil {
			t.Fatal(err)
		}
	}
	// Self-query: each indexed descriptor finds itself at distance 0.
	hits := 0
	for i := range descs {
		cands, err := ix.Query(descs[i][:], lsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) > 0 && cands[0].DistSq == 0 {
			hits++
		}
	}
	if hits < len(descs)*9/10 {
		t.Errorf("self-query hit only %d/%d via LSH over BRIEF bytes", hits, len(descs))
	}
}
