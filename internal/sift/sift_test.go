package sift

import (
	"math"
	"testing"

	"visualprint/internal/imaging"
)

// blobImage renders Gaussian blobs at the given centers — clean, isolated
// scale-space extrema.
func blobImage(w, h int, centers [][2]float64, sigma float64) *imaging.Gray {
	g := imaging.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.1
			for _, c := range centers {
				dx, dy := float64(x)-c[0], float64(y)-c[1]
				v += 0.8 * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
			}
			g.Set(x, y, float32(math.Min(v, 1)))
		}
	}
	return g
}

func noiseImage(w, h int, seed uint32) *imaging.Gray {
	return imaging.RenderTexture(imaging.NoiseTexture{Seed: seed, Freq: 10, Octaves: 4, Gain: 1}, w, h, 2, 2)
}

func TestDetectFlatImageNoKeypoints(t *testing.T) {
	g := imaging.NewGray(64, 64)
	for i := range g.Pix {
		g.Pix[i] = 0.5
	}
	if kps := Detect(g, DefaultConfig()); len(kps) != 0 {
		t.Errorf("flat image produced %d keypoints", len(kps))
	}
}

func TestDetectFindsBlobs(t *testing.T) {
	centers := [][2]float64{{20, 20}, {44, 44}}
	g := blobImage(64, 64, centers, 3)
	kps := Detect(g, DefaultConfig())
	if len(kps) == 0 {
		t.Fatal("no keypoints on blob image")
	}
	// Each blob center should have a keypoint within a few pixels.
	for _, c := range centers {
		best := math.Inf(1)
		for _, kp := range kps {
			d := math.Hypot(kp.X-c[0], kp.Y-c[1])
			if d < best {
				best = d
			}
		}
		if best > 4 {
			t.Errorf("nearest keypoint to blob (%v,%v) is %.1f px away", c[0], c[1], best)
		}
	}
}

func TestDetectScaleReflectsBlobSize(t *testing.T) {
	small := Detect(blobImage(96, 96, [][2]float64{{48, 48}}, 2.5), DefaultConfig())
	large := Detect(blobImage(96, 96, [][2]float64{{48, 48}}, 7), DefaultConfig())
	if len(small) == 0 || len(large) == 0 {
		t.Skip("blob not detected at one of the sizes")
	}
	if large[0].Scale <= small[0].Scale {
		t.Errorf("larger blob should be detected at larger scale: %v vs %v",
			large[0].Scale, small[0].Scale)
	}
}

func TestDetectSortedByResponse(t *testing.T) {
	kps := Detect(noiseImage(128, 96, 1), DefaultConfig())
	for i := 1; i < len(kps); i++ {
		if kps[i].Response > kps[i-1].Response {
			t.Fatal("keypoints not sorted by response")
		}
	}
}

func TestMaxKeypointsCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxKeypoints = 5
	kps := Detect(noiseImage(128, 96, 1), cfg)
	if len(kps) > 5 {
		t.Errorf("cap not applied: %d keypoints", len(kps))
	}
}

func TestNoiseImageYieldsManyKeypoints(t *testing.T) {
	kps := Detect(noiseImage(160, 120, 2), DefaultConfig())
	if len(kps) < 20 {
		t.Errorf("high-entropy texture yielded only %d keypoints", len(kps))
	}
}

func TestDescriptorTranslationInvariance(t *testing.T) {
	// The same physical pattern shifted by 8 pixels must produce nearly
	// identical descriptors for corresponding keypoints.
	tex := imaging.NoiseTexture{Seed: 31, Freq: 8, Octaves: 3, Gain: 1}
	w, h := 128, 128
	a := imaging.NewGray(w, h)
	b := imaging.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a.Set(x, y, float32(tex.Sample(float64(x)/40, float64(y)/40)))
			b.Set(x, y, float32(tex.Sample(float64(x+8)/40, float64(y)/40)))
		}
	}
	ka := Detect(a, DefaultConfig())
	kb := Detect(b, DefaultConfig())
	if len(ka) < 5 || len(kb) < 5 {
		t.Fatalf("too few keypoints: %d, %d", len(ka), len(kb))
	}
	matched, tight := 0, 0
	for _, p := range ka {
		if p.X-8 < 16 || p.X >= float64(w)-16 || p.Y < 16 || p.Y >= float64(h)-16 {
			continue
		}
		// Find the geometrically corresponding keypoint in b.
		var best *Keypoint
		bestD := 3.0
		for i := range kb {
			q := &kb[i]
			d := math.Hypot(q.X-(p.X-8), q.Y-p.Y)
			if d < bestD {
				bestD = d
				best = q
			}
		}
		if best == nil {
			continue
		}
		matched++
		// Compare descriptor distance to the distance against a random
		// other keypoint.
		dCorr := p.Desc.DistSq(&best.Desc)
		other := &kb[(matched*7)%len(kb)]
		if other == best {
			other = &kb[(matched*7+1)%len(kb)]
		}
		if dCorr < p.Desc.DistSq(&other.Desc) {
			tight++
		}
	}
	if matched < 3 {
		t.Fatalf("only %d geometric correspondences found", matched)
	}
	if float64(tight) < 0.7*float64(matched) {
		t.Errorf("descriptors not discriminative: %d/%d correspondences closer than random", tight, matched)
	}
}

func TestDescriptorNormBounded(t *testing.T) {
	kps := Detect(noiseImage(96, 96, 3), DefaultConfig())
	if len(kps) == 0 {
		t.Skip("no keypoints")
	}
	for _, kp := range kps {
		norm := 0.0
		for _, v := range kp.Desc {
			norm += float64(v) * float64(v)
		}
		norm = math.Sqrt(norm)
		// Quantization scales unit vectors by 512 and clamps at 255, so
		// the norm must be near 512 (within quantization slack).
		if norm < 300 || norm > 600 {
			t.Errorf("descriptor norm %v outside expected range", norm)
		}
	}
}

func TestDescriptorFloatAndDistSq(t *testing.T) {
	var a, b Descriptor
	a[0] = 3
	b[0] = 7
	b[127] = 2
	if got := a.DistSq(&b); got != 16+4 {
		t.Errorf("DistSq = %d, want 20", got)
	}
	f := a.Float()
	if len(f) != DescriptorSize || f[0] != 3 {
		t.Errorf("Float = len %d, f[0]=%v", len(f), f[0])
	}
}

func TestQuadOffsetClamped(t *testing.T) {
	if off := quadOffset(0, 0, 0); off != 0 {
		t.Errorf("flat parabola offset = %v", off)
	}
	if off := quadOffset(1, 0, 0); off < -0.5 || off > 0.5 {
		t.Errorf("offset %v not clamped", off)
	}
	// Symmetric parabola peaks in the middle.
	if off := quadOffset(1, 2, 1); off != 0 {
		t.Errorf("symmetric peak offset = %v", off)
	}
}

func TestDetectDeterministic(t *testing.T) {
	g := noiseImage(96, 72, 8)
	a := Detect(g, DefaultConfig())
	b := Detect(g, DefaultConfig())
	if len(a) != len(b) {
		t.Fatalf("nondeterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("keypoint %d differs between runs", i)
		}
	}
}

func BenchmarkDetect160x120(b *testing.B) {
	g := noiseImage(160, 120, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Detect(g, DefaultConfig())
	}
}
