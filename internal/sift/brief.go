package sift

import (
	"math"
	"math/rand"

	"visualprint/internal/imaging"
)

// The paper's section 5 notes that VisualPrint is not SIFT-specific:
// "Keypoint detection and description are two separate stages... One can
// use any keypoint detection algorithm with another integer keypoint
// description algorithm without modification in the system pipeline."
// BriefDescriptor demonstrates that: a BRIEF-style binary descriptor
// (Calonder et al., ECCV 2010) computed at SIFT-detected keypoints,
// packed into 32 bytes. Fed to the LSH/Bloom pipeline with Dim=32 it
// works unmodified — Euclidean distance over packed bytes correlates with
// Hamming distance on this encoding.

// BriefSize is the packed BRIEF descriptor size in bytes (256 bits).
const BriefSize = 32

// BriefDescriptor is a 256-bit binary descriptor packed as bytes.
type BriefDescriptor [BriefSize]byte

// Hamming returns the number of differing bits between two descriptors.
func (d *BriefDescriptor) Hamming(e *BriefDescriptor) int {
	n := 0
	for i := 0; i < BriefSize; i++ {
		x := d[i] ^ e[i]
		for x != 0 {
			x &= x - 1
			n++
		}
	}
	return n
}

// briefPattern is the fixed sampling pattern: 256 point pairs within a
// patch, drawn once from an isotropic Gaussian (the standard BRIEF
// construction) with a fixed seed so every descriptor uses the same
// pattern.
var briefPattern = func() [256][4]float64 {
	rng := rand.New(rand.NewSource(0x9e3779b9))
	var p [256][4]float64
	for i := range p {
		for j := 0; j < 4; j++ {
			v := rng.NormFloat64() * 0.2
			p[i][j] = math.Max(-0.5, math.Min(0.5, v))
		}
	}
	return p
}()

// DescribeBRIEF computes the oriented BRIEF descriptor of a keypoint
// directly from the image: intensity comparisons over a patch scaled by
// the keypoint's scale and rotated to its orientation (steered BRIEF, so
// the descriptor shares SIFT's rotation invariance).
func DescribeBRIEF(img *imaging.Gray, kp *Keypoint) BriefDescriptor {
	var out BriefDescriptor
	patch := 24 * kp.Scale / 1.6 // patch radius tracks detection scale
	cosT, sinT := math.Cos(kp.Orientation), math.Sin(kp.Orientation)
	sample := func(u, v float64) float32 {
		// Rotate the normalized offset into the keypoint frame.
		x := kp.X + patch*(cosT*u-sinT*v)
		y := kp.Y + patch*(sinT*u+cosT*v)
		return img.Bilinear(x, y)
	}
	for i, pr := range briefPattern {
		a := sample(pr[0], pr[1])
		b := sample(pr[2], pr[3])
		if a > b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// DetectBRIEF runs the SIFT detector but describes keypoints with BRIEF,
// returning parallel slices of keypoints and their binary descriptors. The
// SIFT Desc fields of the returned keypoints are zeroed: this is the
// "another integer keypoint description algorithm" swap of section 5.
func DetectBRIEF(img *imaging.Gray, cfg Config) ([]Keypoint, []BriefDescriptor) {
	kps := Detect(img, cfg)
	descs := make([]BriefDescriptor, len(kps))
	for i := range kps {
		descs[i] = DescribeBRIEF(img, &kps[i])
		kps[i].Desc = Descriptor{}
	}
	return kps, descs
}
