package server

import (
	"time"

	"visualprint/internal/obs"
	"visualprint/internal/store"
)

// Observability wiring. The database and server are instrumented
// unconditionally — every hot path records through internal/obs handles —
// but pay nothing until EnableObs installs real instruments: a nil
// *dbMetrics resolves to the shared zero instance below, whose nil
// instrument pointers make every record call a no-op. Serve enables
// observability automatically, so any networked server answers the
// metrics RPC; a Database used directly as a library (wardrive pipeline,
// micro-benchmarks) stays uninstrumented unless the owner opts in.

// slowRequestThreshold is the tracer's cutoff for the slow-request ring:
// a locate, ingest or compaction slower than this is captured with its
// per-stage breakdown. 100 ms is ~7x the simulated-scale Locate median —
// rare enough to keep the ring meaningful, common enough to catch real
// stalls (compaction pauses, lock convoys).
const slowRequestThreshold = 100 * time.Millisecond

// dbMetrics is the database's instrument set.
type dbMetrics struct {
	reg   *obs.Registry
	trace *obs.Tracer

	locateNs     *obs.Histogram
	ingestNs     *obs.Histogram
	locates      *obs.Counter
	locateErrors *obs.Counter
	ingests      *obs.Counter
	ingestErrors *obs.Counter
	mappings     *obs.Gauge
}

// noDBMetrics is the disabled instrument set: all-nil instruments, every
// record call a no-op. Shared, immutable.
var noDBMetrics = &dbMetrics{}

// metrics returns the active instrument set. Lock-free: the pointer is
// loaded atomically, so the RCU read paths (Locate, oracle scoring) record
// without touching db.mu. EnableObs installs it once and never swaps it.
func (db *Database) metrics() *dbMetrics {
	if m := db.met.Load(); m != nil {
		return m
	}
	return noDBMetrics
}

// EnableObs turns on metrics and tracing for this database, returning its
// registry. Idempotent: subsequent calls return the same registry. Serve
// calls it for every networked server; library users opt in explicitly.
func (db *Database) EnableObs() *obs.Registry {
	db.mu.Lock()
	defer db.mu.Unlock()
	if m := db.met.Load(); m != nil {
		return m.reg
	}
	r := obs.NewRegistry()
	m := &dbMetrics{
		reg:          r,
		trace:        obs.NewTracer(r, slowRequestThreshold),
		locateNs:     r.Histogram("locate_ns"),
		ingestNs:     r.Histogram("ingest_ns"),
		locates:      r.Counter("locates"),
		locateErrors: r.Counter("locate_errors"),
		ingests:      r.Counter("ingests"),
		ingestErrors: r.Counter("ingest_errors"),
		mappings:     r.Gauge("mappings"),
	}
	m.mappings.Set(int64(len(db.cur.Load().positions)))
	if db.recoverDur > 0 {
		r.Gauge("recovery_ns").Set(int64(db.recoverDur))
	}
	db.met.Store(m)
	if db.store != nil {
		db.store.SetMetrics(storeMetrics(r))
	}
	return r
}

// storeMetrics builds the store's instrument set on r. Split out so Open
// can wire a store attached after EnableObs and vice versa.
func storeMetrics(r *obs.Registry) store.Metrics {
	return store.Metrics{
		FsyncNs:       r.Histogram("wal_fsync_ns"),
		BatchRecords:  r.Histogram("wal_batch_records"),
		SnapshotNs:    r.Histogram("snapshot_write_ns"),
		SnapshotBytes: r.Gauge("snapshot_bytes"),
		Snapshots:     r.Counter("snapshots_written"),
		WALBytes:      r.Gauge("wal_bytes"),
	}
}

// srvMetrics is the wire-level instrument set: per-message-type request
// counts and latencies, payload bytes in each direction, the in-flight
// handler gauge, and error counts by wire code.
type srvMetrics struct {
	inflight *obs.Gauge
	bytesIn  *obs.Counter
	bytesOut *obs.Counter

	// Indexed by request message type (< len); unknown or out-of-range
	// types fall through to reqUnknown with no latency histogram.
	reqCount   [37]*obs.Counter
	reqNs      [37]*obs.Histogram
	reqUnknown *obs.Counter

	// Indexed by wire error code; codes past the known range count as
	// generic.
	errCodes [9]*obs.Counter

	// Request-lifecycle events: requests shed by admission control,
	// requests aborted by a client cancel frame, and the current depth of
	// the dispatch queue.
	shed       *obs.Counter
	canceled   *obs.Counter
	queueDepth *obs.Gauge

	// Oracle distribution: how each versioned sync was answered and the
	// payload bytes it cost, plus the live subscriber count and the epoch
	// events pushed to them. bytes-per-client-per-update is
	// oracle_sync_bytes / (oracle_syncs_delta + oracle_syncs_full).
	syncUnchanged *obs.Counter
	syncDelta     *obs.Counter
	syncFull      *obs.Counter
	syncBytes     *obs.Counter
	subscribers   *obs.Gauge
	epochPushes   *obs.Counter
}

// requestTypeNames maps request message types to metric name suffixes.
// Response types never reach dispatch, so they are absent.
var requestTypeNames = map[byte]string{
	msgGetOracle:  "get_oracle",
	msgIngest:     "ingest",
	msgQuery:      "query",
	msgStats:      "stats",
	msgGetDiff:    "get_diff",
	msgStatsFull:  "stats_full",
	msgGetMetrics: "metrics",

	msgReplState:    "repl_state",
	msgReplSnapshot: "repl_snapshot",
	msgReplFetch:    "repl_fetch",
	msgReplFollow:   "repl_follow",
	msgReplPromote:  "repl_promote",
	msgPing:         "ping",

	msgGetDiff2: "get_diff2",

	msgOracleSync:      "oracle_sync",
	msgSubscribeOracle: "subscribe_oracle",
}

// errCodeNames maps wire error codes to metric name suffixes.
var errCodeNames = [9]string{
	"generic", "empty_database", "too_few_matches", "no_consensus",
	"overloaded", "deadline_exceeded", "shutting_down", "canceled",
	"not_primary",
}

func newSrvMetrics(r *obs.Registry) *srvMetrics {
	m := &srvMetrics{
		inflight: r.Gauge("inflight"),
		bytesIn:  r.Counter("bytes_in"),
		bytesOut: r.Counter("bytes_out"),

		reqUnknown: r.Counter("requests_unknown"),

		shed:       r.Counter("requests_shed"),
		canceled:   r.Counter("requests_canceled"),
		queueDepth: r.Gauge("queue_depth"),

		syncUnchanged: r.Counter("oracle_syncs_unchanged"),
		syncDelta:     r.Counter("oracle_syncs_delta"),
		syncFull:      r.Counter("oracle_syncs_full"),
		syncBytes:     r.Counter("oracle_sync_bytes"),
		subscribers:   r.Gauge("oracle_subscribers"),
		epochPushes:   r.Counter("oracle_epoch_pushes"),
	}
	for typ, name := range requestTypeNames {
		m.reqCount[typ] = r.Counter("requests_" + name)
		m.reqNs[typ] = r.Histogram("request_" + name + "_ns")
	}
	for code, name := range errCodeNames {
		m.errCodes[code] = r.Counter("errors_" + name)
	}
	return m
}

// record books one completed request: counts, latency, response bytes and
// — for msgError responses — the wire error code (payload byte 0, the
// same byte decodeErrorPayload reads on the client).
func (m *srvMetrics) record(typ byte, start time.Time, rt byte, resp []byte) {
	if int(typ) < len(m.reqCount) && m.reqCount[typ] != nil {
		m.reqCount[typ].Inc()
		m.reqNs[typ].ObserveSince(start)
	} else {
		m.reqUnknown.Inc()
	}
	m.bytesOut.Add(uint64(len(resp)))
	if rt == msgError {
		code := byte(0)
		if len(resp) > 0 {
			code = resp[0]
		}
		if int(code) >= len(m.errCodes) {
			code = errCodeGeneric
		}
		m.errCodes[code].Inc()
	}
}
