package server

import (
	"visualprint/internal/bloom"
	"visualprint/internal/odelta"
)

// Server side of versioned oracle distribution (DESIGN.md "Oracle
// distribution"). Every ingest batch bumps the oracle epoch; the delta ring
// retains the per-epoch cell-wise odelta records so a client within the
// window is carried forward by a compressed delta chain while older clients
// (or clients of a freshly restarted server, whose ring starts empty) fall
// back to a full blob. Epoch bumps additionally wake the subscription
// streams (see server.go) through a closed-and-replaced signal channel.

// defaultOracleDeltaWindow bounds the per-epoch delta ring: with one epoch
// per wardrive upload, 64 epochs of history lets a client poll-free for a
// long session while each retained record is only the sparse cell set one
// batch touched.
const defaultOracleDeltaWindow = 64

// defaultOracleDeltaBudget caps the ring's byte total (64 MB); dense epochs
// near the cutoff ratio can be large, so the ring evicts on bytes as well
// as length.
const defaultOracleDeltaBudget = 64 << 20

// oracleDeltaCompareFloor: delta chains under this size are served without
// comparing against the full blob (which would cost a gzip of the whole
// oracle); above it — or above the last observed blob size once one is
// cached — the chain must win an exact size comparison to be sent.
const oracleDeltaCompareFloor = 64 << 10

// OracleSyncResult is the engine's answer to a versioned sync request:
// exactly one of Unchanged, Delta or Blob describes the transfer.
type OracleSyncResult struct {
	// Epoch and Inserts identify the oracle version the client holds after
	// applying this result.
	Epoch   uint64
	Inserts uint64
	// Unchanged: the client's (epoch, inserts) already matches the server.
	Unchanged bool
	// Delta, when non-nil, is an odelta.EncodeChain payload carrying the
	// client from its cited version to (Epoch, Inserts).
	Delta []byte
	// Blob, when non-nil, is the gzip full oracle serialization.
	Blob []byte
}

// recordDeltaLocked appends the epoch step cur→next to the delta ring.
// Callers hold db.mu with both views stable. Failure is not fatal to the
// ingest — the ring is cleared (continuity would be broken) and clients
// fall back to full syncs until deltas accumulate again.
func (db *Database) recordDeltaLocked(cur, next *dbView) {
	if db.cfg.OracleDeltaWindow < 0 {
		return
	}
	rec, err := odelta.Diff(cur.oracle, next.oracle, cur.epoch, next.epoch, 0)
	if err != nil {
		db.deltaRing, db.deltaBytes = nil, 0
		db.logf("server: oracle delta for epoch %d failed (%v); delta ring reset", next.epoch, err)
		return
	}
	if n := len(db.deltaRing); n > 0 && db.deltaRing[n-1].ToEpoch != rec.FromEpoch {
		// A reset/recovery left a gap; restart the ring at this epoch.
		db.deltaRing, db.deltaBytes = nil, 0
	}
	db.deltaRing = append(db.deltaRing, rec)
	db.deltaBytes += int64(len(rec.Payload))
	window := db.cfg.OracleDeltaWindow
	if window == 0 {
		window = defaultOracleDeltaWindow
	}
	budget := db.cfg.OracleDeltaBudgetBytes
	if budget <= 0 {
		budget = defaultOracleDeltaBudget
	}
	for len(db.deltaRing) > window || (db.deltaBytes > budget && len(db.deltaRing) > 1) {
		db.deltaBytes -= int64(len(db.deltaRing[0].Payload))
		db.deltaRing = db.deltaRing[1:]
	}
}

// bumpEpochLocked wakes every oracle subscriber by closing and replacing
// the epoch signal channel. Callers hold db.mu.
func (db *Database) bumpEpochLocked() {
	if db.epochCh != nil {
		close(db.epochCh)
		db.epochCh = make(chan struct{})
	}
}

// OracleEpoch returns the live oracle's version identity — the epoch the
// engine stamped on the last ingest batch and the matching insert count —
// from a pinned read snapshot.
func (db *Database) OracleEpoch() (epoch, inserts uint64) {
	v, t := db.pinView()
	defer db.unpin(v, t)
	return v.epoch, v.oracle.Inserts()
}

// EpochSignal returns the current version identity together with a channel
// that is closed by the next epoch bump after it. Reading the channel
// before comparing epochs gives a subscription loop that can never miss a
// wakeup: the channel returned alongside epoch e is exactly the one the
// bump to e+1 closes.
func (db *Database) EpochSignal() (epoch, inserts uint64, ch <-chan struct{}) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v := db.cur.Load()
	return v.epoch, v.oracle.Inserts(), db.epochCh
}

// OracleSyncSince answers a versioned sync request: given the version the
// client holds (zero values for "nothing"), return the cheapest transfer
// that makes it current — nothing, a delta chain, or a full blob.
func (db *Database) OracleSyncSince(haveEpoch, haveInserts uint64) (OracleSyncResult, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	// cur is stable under the read lock: publishing requires the write lock.
	v := db.cur.Load()
	res := OracleSyncResult{Epoch: v.epoch, Inserts: v.oracle.Inserts()}
	if haveEpoch == v.epoch && haveInserts == res.Inserts {
		// Both coordinates must match: insert counts alone collide across
		// compaction/rebuild histories (the unsoundness the epoch fixes).
		res.Unchanged = true
		return res, nil
	}
	if chain := db.deltaChainLocked(haveEpoch, haveInserts, v.epoch); chain != nil {
		enc := odelta.EncodeChain(chain)
		floor := db.lastBlobLen.Load()
		if floor <= 0 {
			floor = oracleDeltaCompareFloor
		}
		if int64(len(enc)) < floor {
			res.Delta = enc
			return res, nil
		}
		// The chain approaches (or exceeds) the blob it replaces: each
		// record is sparse, but a long run of dense epochs can sum past one
		// full snapshot. Pay the gzip and answer whichever is smaller.
		blob, err := bloom.GzipBytes(v.oracle)
		if err != nil {
			return OracleSyncResult{}, err
		}
		db.lastBlobLen.Store(int64(len(blob)))
		if len(blob) < len(enc) {
			res.Blob = blob
		} else {
			res.Delta = enc
		}
		return res, nil
	}
	blob, err := bloom.GzipBytes(v.oracle)
	if err != nil {
		return OracleSyncResult{}, err
	}
	db.lastBlobLen.Store(int64(len(blob)))
	res.Blob = blob
	return res, nil
}

// deltaChainLocked returns the ring suffix carrying (haveEpoch,
// haveInserts) to curEpoch, nil when the ring cannot serve it. A Full
// record inside the matched suffix resets the chain base, so the suffix is
// trimmed to start at the last one. Callers hold db.mu (either side).
func (db *Database) deltaChainLocked(haveEpoch, haveInserts, curEpoch uint64) []*odelta.Record {
	ring := db.deltaRing
	n := len(ring)
	if n == 0 || ring[n-1].ToEpoch != curEpoch {
		return nil
	}
	start := -1
	for i, rec := range ring {
		if rec.FromEpoch == haveEpoch {
			if rec.FromInserts != haveInserts && !rec.Full {
				// Same epoch number, different history (e.g. the client
				// synced against a different pre-failover timeline). A
				// sparse delta would corrupt its oracle; force a full sync.
				return nil
			}
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	chain := ring[start:]
	for i := len(chain) - 1; i > 0; i-- {
		if chain[i].Full {
			chain = chain[i:]
			break
		}
	}
	return chain
}
