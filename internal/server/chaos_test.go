package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"visualprint/internal/netsim"
	"visualprint/internal/testutil"
)

// TestChaosClientsSurviveFaultInjection drives a real server through the
// netsim fault-injection proxy while concurrent clients — armed with
// deadlines, retry policies and automatic redial — run a mixed workload.
// The network cycles through added latency, abrupt partitions, a
// blackholed link and refused reconnects. The contract under test:
//
//   - every error a client surfaces is one of the typed, documented
//     outcomes (a transport loss, a deadline, an overload shed, or a real
//     server answer) — never a hang, a misrouted response, or an untyped
//     failure;
//   - once the faults stop, every client recovers without intervention and
//     completes a clean request through the same handles;
//   - the server survives to drain gracefully, leaking no goroutines.
//
// The full cycle repeats for several seconds; -short runs one abbreviated
// round. Run it under -race: the chaos schedule is exactly the kind of
// concurrency that makes latent data races reachable.
func TestChaosClientsSurviveFaultInjection(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, ms := lifecycleDB(t, 60) // fast solves: chaos targets the transport
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	t.Cleanup(func() { s.Close() })

	proxy, err := netsim.NewProxy(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	rounds, clients := 6, 4
	if testing.Short() {
		rounds, clients = 2, 2
	}

	var (
		successes atomic.Int64
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	errc := make(chan error, 256)
	// report classifies one operation's outcome: nil and the typed
	// lifecycle errors are expected under chaos; anything else fails.
	report := func(op string, err error) {
		switch {
		case err == nil:
			successes.Add(1)
		case errors.Is(err, ErrConnectionLost),
			errors.Is(err, context.DeadlineExceeded), // local or wire ErrDeadlineExceeded
			errors.Is(err, context.Canceled),
			errors.Is(err, ErrOverloaded),
			errors.Is(err, ErrTooFewMatches),
			errors.Is(err, ErrNoConsensus):
			// Documented outcomes under network chaos.
		default:
			select {
			case errc <- fmt.Errorf("%s: unexpected error %v", op, err):
			default:
			}
		}
	}

	policy := RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
	cs := make([]*Client, clients)
	for i := range cs {
		c, err := Dial(proxy.Addr(),
			WithRetryPolicy(policy),
			WithDialTimeout(2*time.Second),
			WithLogger(nil))
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
		t.Cleanup(func() { c.Close() })
	}
	for i, c := range cs {
		wg.Add(1)
		go func(c *Client, seed int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				switch (seed + n) % 3 {
				case 0:
					_, err := c.Query(ctx, queryFromMappings(ms, 0, 48), testIntrinsics())
					report("query", err)
				case 1:
					_, err := c.Stats(ctx)
					report("stats", err)
				case 2:
					batch := []Mapping{{Pos: ms[0].Pos}}
					batch[0].Desc[0] = byte(seed)
					batch[0].Desc[1] = byte(n)
					_, err := c.Ingest(ctx, batch)
					report("ingest", err)
				}
				cancel()
			}
		}(c, i)
	}

	// The chaos schedule: each round degrades, partitions, blackholes and
	// refuses in turn, with healthy gaps so retries can land.
	for r := 0; r < rounds; r++ {
		proxy.SetLatency(20 * time.Millisecond)
		time.Sleep(150 * time.Millisecond)
		proxy.SetLatency(0)
		proxy.Sever()
		time.Sleep(100 * time.Millisecond)
		proxy.SetBlackhole(true)
		time.Sleep(150 * time.Millisecond)
		proxy.SetBlackhole(false)
		proxy.Sever() // blackholed conns carry poisoned state; cut them
		proxy.SetRefuse(true)
		time.Sleep(100 * time.Millisecond)
		proxy.SetRefuse(false)
		time.Sleep(150 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if successes.Load() == 0 {
		t.Error("no operation ever succeeded under chaos; the harness is not exercising the happy path")
	}

	// Faults cleared: every client must recover through its own handle.
	for i, c := range cs {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := c.Stats(ctx); err != nil {
			t.Errorf("client %d did not recover after chaos: %v", i, err)
		}
		cancel()
	}
	// And the server itself drains cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("post-chaos Shutdown: %v", err)
	}
}
