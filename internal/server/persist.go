package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"time"

	"visualprint/internal/core"
	"visualprint/internal/lsh"
	"visualprint/internal/mathx"
	"visualprint/internal/obs"
	"visualprint/internal/store"
)

// Durable database lifecycle. Open attaches a data directory to an empty
// Database: the newest valid snapshot is loaded, the WAL tail is replayed
// through the same dbView.apply path live ingest uses (so the recovered
// structures — LSH bucket slices, position ids, oracle counters — are
// bit-identical to the pre-crash state), and a background snapshotter
// starts folding the WAL into fresh snapshots whenever it outgrows
// DatabaseConfig.WALCompactBytes.
//
// Snapshot payload layout (inside the store's checksummed container):
//
//	[8-byte magic][lsh index][uint64 n][n Vec3 positions]
//	[bounds: uint8 has, lo Vec3, hi Vec3][oracle]
//
// The retained oracle download clones are deliberately not persisted: after
// a restart the diff window starts empty and clients refreshing against a
// pre-crash version transparently fall back to a full oracle download.

// dbSnapMagic versions the database snapshot payload. Shard engines (seq
// mode) write dbSnapMagicSeq, which appends the parallel sequence array
// after the positions; plain databases keep writing the v1 layout so their
// directories stay readable by older builds.
const (
	dbSnapMagic    = "VPDB1\x00\x00\x00"
	dbSnapMagicSeq = "VPDB2\x00\x00\x00"
)

// Open attaches dir as the database's durable backing store, recovering
// any previously persisted state into the (required to be empty) in-memory
// structures. After Open, every Ingest is write-ahead logged; Close
// releases the directory.
func (db *Database) Open(dir string) error { return db.open(dir, nil) }

// open is Open's body; install, when non-nil, runs between the store's
// Open and Recover — the hook ReplaceFromSnapshot uses to seed the fresh
// directory with a primary-shipped snapshot before recovery loads it.
func (db *Database) open(dir string, install func(*store.Store) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store != nil {
		return errors.New("server: database already has a data directory")
	}
	if len(db.cur.Load().positions) != 0 {
		return errors.New("server: Open requires an empty database")
	}
	st, err := store.Open(dir, store.Options{Log: obs.FuncLogger(db.logf)})
	if err != nil {
		return err
	}
	if install != nil {
		if err := install(st); err != nil {
			st.Close()
			return err
		}
	}
	// Recovery builds a detached view — the published (empty) view keeps
	// serving lock-free readers untouched until the recovered state is
	// complete — then publishes it once at the end. The WAL tail replays
	// through the same dbView.apply path live ingest uses, so the recovered
	// structures are bit-identical to the pre-crash state.
	rv, err := newEmptyView(db.cfg)
	if err != nil {
		st.Close()
		return err
	}
	recoverStart := time.Now()
	err = st.Recover(
		func(r io.Reader) error {
			v, err := db.loadState(r)
			if err != nil {
				return err
			}
			rv = v
			return nil
		},
		func(payload []byte) error {
			if db.seqMode {
				ms, seqs, err := decodeSeqMappings(payload)
				if err != nil {
					return err
				}
				return rv.apply(ms, seqs)
			}
			ms, err := decodeMappings(payload)
			if err != nil {
				return err
			}
			return rv.apply(ms, nil)
		},
	)
	if err != nil {
		st.Close()
		return err
	}
	// The epoch is anchored to the store's record sequence — one WAL record
	// per ingest batch — so the version history survives restarts and full
	// syncs, and replicas replaying the same records serve the same epochs.
	rv.epoch = st.Seq()
	db.publishLocked(rv)
	db.shadow = nil
	db.bumpEpochLocked()
	// The diff window and delta ring restart empty: refreshes against
	// pre-crash versions fall back to a full download.
	db.snapshots = map[uint64]*core.Oracle{}
	db.snapOrder = nil
	db.snapBytes = 0
	db.snapWarned = false
	db.deltaRing, db.deltaBytes = nil, 0
	db.recoverDur = time.Since(recoverStart)
	db.store = st
	db.dataDir = dir
	db.snapKick = make(chan struct{}, 1)
	db.quit = make(chan struct{})
	db.snapDone = make(chan struct{})
	if m := db.met.Load(); m != nil {
		// Observability was enabled before the directory was attached:
		// wire the store's instruments and publish the recovery cost now.
		st.SetMetrics(storeMetrics(m.reg))
		m.reg.Gauge("recovery_ns").Set(int64(db.recoverDur))
		m.mappings.Set(int64(len(rv.positions)))
	}
	go db.snapshotter()
	return nil
}

// Close detaches the data directory: pending WAL commits are flushed, the
// background snapshotter stops, and file handles are released. The
// database remains usable in-memory. Close on an in-memory database is a
// no-op.
func (db *Database) Close() error {
	db.mu.Lock()
	st := db.store
	db.store = nil
	db.mu.Unlock()
	if st == nil {
		return nil
	}
	close(db.quit)
	<-db.snapDone
	return st.Close()
}

// ReplaceFromSnapshot discards the database's entire durable and in-memory
// state and rebuilds both from a primary-shipped snapshot blob covering the
// first seq WAL records — the replica full-sync path. On return the
// database's state equals the primary's at offset seq and its WAL continues
// from seq, so subsequently streamed records land at identical positions.
// Concurrent reads during the swap see either the old or the new state;
// the fleet role gate (RoleCandidate) redirects clients for the duration.
func (db *Database) ReplaceFromSnapshot(seq uint64, blob []byte) error {
	db.mu.RLock()
	st, dir := db.store, db.dataDir
	db.mu.RUnlock()
	if dir == "" {
		return errors.New("server: replication full-sync requires a durable database")
	}
	// st may already be nil if a previous attempt failed after Close — the
	// wipe-and-reopen below is idempotent, so just retry from there.
	if st != nil {
		if err := db.Close(); err != nil {
			return err
		}
	}
	if err := store.Wipe(dir); err != nil {
		return err
	}
	db.mu.Lock()
	err := db.resetLocked()
	db.mu.Unlock()
	if err != nil {
		return err
	}
	return db.open(dir, func(st *store.Store) error {
		return st.InstallSnapshot(seq, blob)
	})
}

// resetLocked publishes a fresh empty view, returning the in-memory state
// to NewDatabase equivalence (a subsequent open's Recover then repopulates
// it from the installed snapshot). Callers hold db.mu.
func (db *Database) resetLocked() error {
	v, err := newEmptyView(db.cfg)
	if err != nil {
		return err
	}
	db.publishLocked(v)
	db.shadow = nil
	db.bumpEpochLocked()
	db.snapshots, db.snapOrder, db.snapBytes = map[uint64]*core.Oracle{}, nil, 0
	db.snapWarned = false
	db.deltaRing, db.deltaBytes = nil, 0
	db.metrics().mappings.Set(0)
	return nil
}

// Compact synchronously folds the current state into a fresh durable
// snapshot and truncates the WAL. It is what the background snapshotter
// runs on threshold, exposed for deliberate checkpoints (vpwardrive after
// a bulk upload; tests; benchmarks). Concurrent Compact and snapshotter
// runs are safe: the store serializes snapshot writers internally, and
// whichever runs second observes an already-current snapshot and no-ops.
//
// Ingest stalls for the duration: serialization and fsync happen under the
// read lock Ingest's WAL reservation needs for writing. At the default
// 64 MB threshold this is an ingest latency spike of up to a few seconds;
// lowering DatabaseConfig.WALCompactBytes trades more frequent, shorter
// stalls. Locates are unaffected either way — they read pinned RCU
// snapshots and never touch db.mu (before the snapshot refactor they queued
// behind the compaction-blocked writer; see rcu.go).
func (db *Database) Compact() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return errors.New("server: in-memory database has nothing to compact")
	}
	// Holding the read lock excludes Ingest (whose WAL reservation needs
	// the write lock) for the duration, so cur is stable and the serialized
	// state is exactly the state at the log head.
	return db.snapshotLockedR(db.store)
}

// snapshotLockedR folds the published view into a durable snapshot with
// tracing: a compaction slower than the tracer's threshold lands in the
// slow-request ring with its duration attributed to the snapshot stage.
// Callers hold db.mu (read side), which pins cur without a reader pin.
func (db *Database) snapshotLockedR(st *store.Store) error {
	m := db.metrics()
	tr := m.trace.Begin("compact")
	t0 := time.Now()
	v := db.cur.Load()
	err := st.Snapshot(func(w io.Writer) error { return db.writeState(v, w) })
	tr.StageSince(obs.StageSnapshot, t0)
	m.trace.End(tr)
	return err
}

// snapshotter runs WAL compactions in the background, one at a time, when
// Ingest observes the log over threshold.
func (db *Database) snapshotter() {
	defer close(db.snapDone)
	for {
		select {
		case <-db.quit:
			return
		case <-db.snapKick:
			db.mu.RLock()
			st := db.store
			var err error
			if st != nil {
				err = db.snapshotLockedR(st)
			}
			if err != nil {
				db.logf("server: background wal compaction: %v", err)
			}
			db.mu.RUnlock()
		}
	}
}

// writeState serializes one view's full state. v must be stable for the
// duration: either the published view read while holding db.mu (any side —
// publishing requires the write lock) or a pinned view.
func (db *Database) writeState(v *dbView, w io.Writer) error {
	magic := dbSnapMagic
	if db.seqMode {
		magic = dbSnapMagicSeq
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	if _, err := v.index.WriteTo(w); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(v.positions))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, v.positions); err != nil {
		return err
	}
	if db.seqMode {
		if err := binary.Write(w, binary.LittleEndian, v.seqs); err != nil {
			return err
		}
	}
	var has byte
	if v.hasBounds {
		has = 1
	}
	if err := binary.Write(w, binary.LittleEndian, has); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, []mathx.Vec3{v.lo, v.hi}); err != nil {
		return err
	}
	if _, err := v.oracle.WriteTo(w); err != nil {
		return err
	}
	return nil
}

// loadState deserializes a snapshot into a fresh detached view, refusing
// state whose parameters disagree with the database's configuration (a
// server restarted with a different LSH family or oracle sizing would
// otherwise silently mis-hash every query). The caller (open's recovery
// path) publishes the view once the WAL tail has been replayed into it.
func (db *Database) loadState(r io.Reader) (*dbView, error) {
	magic := make([]byte, len(dbSnapMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	wantMagic := dbSnapMagic
	if db.seqMode {
		wantMagic = dbSnapMagicSeq
	}
	if string(magic) != wantMagic {
		return nil, fmt.Errorf("server: bad database snapshot magic %q (want %q)", magic, wantMagic)
	}
	ix, err := lsh.ReadIndex(r)
	if err != nil {
		return nil, err
	}
	if ip := ix.Hasher().Params(); ip != db.cfg.LSH {
		return nil, fmt.Errorf("server: snapshot LSH params %+v differ from configured %+v", ip, db.cfg.LSH)
	}
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n != uint64(ix.Len()) {
		return nil, fmt.Errorf("server: snapshot has %d positions for %d descriptors", n, ix.Len())
	}
	positions := make([]mathx.Vec3, n)
	if err := binary.Read(r, binary.LittleEndian, positions); err != nil {
		return nil, err
	}
	var seqs []uint64
	var maxSeq uint64
	if db.seqMode {
		seqs = make([]uint64, n)
		if err := binary.Read(r, binary.LittleEndian, seqs); err != nil {
			return nil, err
		}
		for _, s := range seqs {
			if s > maxSeq {
				maxSeq = s
			}
		}
	}
	var has byte
	if err := binary.Read(r, binary.LittleEndian, &has); err != nil {
		return nil, err
	}
	bounds := make([]mathx.Vec3, 2)
	if err := binary.Read(r, binary.LittleEndian, bounds); err != nil {
		return nil, err
	}
	oracle, err := core.Read(r)
	if err != nil {
		return nil, err
	}
	if op := oracle.Params(); op != db.cfg.Oracle {
		return nil, fmt.Errorf("server: snapshot oracle params differ from configured")
	}
	return &dbView{
		index:     ix,
		positions: positions,
		seqs:      seqs,
		maxSeq:    maxSeq,
		hasBounds: has == 1,
		lo:        bounds[0],
		hi:        bounds[1],
		oracle:    oracle,
	}, nil
}
