package server

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// sessionServerStub speaks the pre-session wire behavior over the server
// end of a pipe: it rejects msgSessionEx and msgGetDiff2 as unknown types
// (exactly as the old dispatch switch does) and answers msgQuery with a
// canned result. It records the frame types it saw so tests can assert
// the fallback's wire traffic.
func sessionServerStub(t testing.TB, serverEnd net.Conn) func() []byte {
	t.Helper()
	var mu sync.Mutex
	var typesSeen []byte
	canned := encodeLocateResult(LocateResult{Matched: 42})
	go func() {
		hdr := make([]byte, preambleSize)
		if _, err := io.ReadFull(serverEnd, hdr); err != nil {
			return
		}
		for {
			id, typ, _, err := readFrameV2(serverEnd)
			if err != nil {
				return
			}
			mu.Lock()
			typesSeen = append(typesSeen, typ)
			mu.Unlock()
			switch typ {
			case msgRequestEx:
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(errors.New("unknown message type 14")))
			case msgSessionEx:
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(errors.New("unknown message type 28")))
			case msgGetDiff2:
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(errors.New("unknown message type 29")))
			case msgQuery:
				writeFrameV2(serverEnd, id, msgQueryResult, canned)
			case msgGetDiff:
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(ErrEmptyDatabase))
			default:
				writeFrameV2(serverEnd, id, msgStatsResult, make([]byte, 8))
			}
		}
	}()
	return func() []byte {
		mu.Lock()
		defer mu.Unlock()
		return append([]byte(nil), typesSeen...)
	}
}

// countType counts occurrences of typ in frames.
func countType(frames []byte, typ byte) int {
	n := 0
	for _, f := range frames {
		if f == typ {
			n++
		}
	}
	return n
}

// TestSessionQueryOverWire runs a continuous localization session through
// the full network stack: the first query solves cold and seeds the
// server-side session, the second arrives with a usable prior and is
// answered warm. Both answers must localize to (essentially) the same
// place, and the server's tracking metrics must show exactly one cold and
// one warm solve for the session.
func TestSessionQueryOverWire(t *testing.T) {
	s := startVenueServer(t)
	c, err := Dial(s.Addr().String(), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ms, kps, intr := syntheticCorpus(7, 160, 1200, 200)
	ctx := context.Background()
	if _, err := c.Ingest(ctx, ms); err != nil {
		t.Fatal(err)
	}

	sess := c.Session()
	if sess.ID() == 0 {
		t.Fatal("session ID is zero — reserved for no-session")
	}
	cold, err := sess.Query(ctx, kps, intr)
	if err != nil {
		t.Fatalf("first session query: %v", err)
	}
	warm, err := sess.Query(ctx, kps, intr)
	if err != nil {
		t.Fatalf("second session query: %v", err)
	}
	if d := cold.Position.Dist(warm.Position); d > 0.5 {
		t.Fatalf("warm answer drifted %.3fm from cold", d)
	}
	st := s.router.trackState()
	if got := st.tm.cold.Value(); got != 1 {
		t.Fatalf("track_cold = %d, want 1", got)
	}
	if got := st.tm.warm.Value(); got != 1 {
		t.Fatalf("track_warm = %d, want 1", got)
	}
	if n := st.tb.Len(); n != 1 {
		t.Fatalf("session table has %d sessions, want 1", n)
	}
}

// TestSessionVenueScopedOverWire: a session created from a venue handle
// carries both envelopes (venue wrapping session) and lands its warm
// state on that venue's keyed session, isolated from the default venue.
func TestSessionVenueScopedOverWire(t *testing.T) {
	s := startVenueServer(t)
	c, err := Dial(s.Addr().String(), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ms, kps, intr := syntheticCorpus(7, 160, 1200, 200)
	ctx := context.Background()

	va := c.Venue("venue-a")
	if _, err := va.Ingest(ctx, ms); err != nil {
		t.Fatal(err)
	}
	sess := va.Session()
	if sess.Venue() != "venue-a" {
		t.Fatalf("session venue = %q, want venue-a", sess.Venue())
	}
	for i := 0; i < 2; i++ {
		if _, err := sess.Query(ctx, kps, intr); err != nil {
			t.Fatalf("venue session query %d: %v", i, err)
		}
	}
	st := s.router.trackState()
	if got := st.tm.warm.Value(); got != 1 {
		t.Fatalf("track_warm = %d, want 1", got)
	}
}

// TestSessionOldServerFallback: against a server predating msgSessionEx
// the session query silently resends without the envelope — the answer is
// a correct cold solve, not an error — and the rejection is sticky: the
// next query goes straight to the plain form, paying the double round
// trip exactly once.
func TestSessionOldServerFallback(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	defer serverEnd.Close()
	seen := sessionServerStub(t, serverEnd)
	c := NewClient(clientEnd, WithLogger(nil))
	defer c.Close()
	_, kps, intr := syntheticCorpus(5, 8, 8, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sess := c.Session()
	res, err := sess.Query(ctx, kps, intr)
	if err != nil {
		t.Fatalf("session query against old server: %v, want silent cold fallback", err)
	}
	if res.Matched != 42 {
		t.Fatalf("fallback answer Matched = %d, want the stub's 42", res.Matched)
	}
	frames := seen()
	if countType(frames, msgSessionEx) != 1 || countType(frames, msgQuery) != 1 {
		t.Fatalf("first query frames = %v, want one msgSessionEx then one msgQuery", frames)
	}
	// Note: the deadline envelope is rejected too ("unknown message type
	// 28" is type-specific, so it cannot be confused with type 14), hence
	// a context without a deadline above would hide nothing; keep the
	// deadline off the sticky assertion by counting session frames only.
	if _, err := sess.Query(ctx, kps, intr); err != nil {
		t.Fatalf("second session query: %v", err)
	}
	if n := countType(seen(), msgSessionEx); n != 1 {
		t.Fatalf("msgSessionEx sent %d times across two queries: fallback not sticky", n)
	}
}

// TestRefreshOracleUnchangedOverWire: an up-to-date oracle refresh over
// msgGetDiff2 is answered by the 8-byte not-modified ack — no diff is
// built or shipped — while a stale one still gets the incremental diff.
func TestRefreshOracleUnchangedOverWire(t *testing.T) {
	s := startVenueServer(t)
	c, err := Dial(s.Addr().String(), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ms, _, _ := syntheticCorpus(7, 160, 1200, 200)
	ctx := context.Background()
	if _, err := c.Ingest(ctx, ms[:len(ms)/2]); err != nil {
		t.Fatal(err)
	}
	o, _, err := c.FetchOracle(ctx)
	if err != nil {
		t.Fatal(err)
	}

	upd, n, incr, err := c.RefreshOracle(ctx, o)
	if err != nil {
		t.Fatalf("unchanged refresh: %v", err)
	}
	if upd != o || !incr {
		t.Fatalf("unchanged refresh replaced the oracle (incremental=%v)", incr)
	}
	if n != 8 {
		t.Fatalf("unchanged refresh transferred %d bytes, want the 8-byte ack", n)
	}

	// Stale now: the second half of the corpus lands new inserts.
	if _, err := c.Ingest(ctx, ms[len(ms)/2:]); err != nil {
		t.Fatal(err)
	}
	before := o.Inserts()
	upd, n, incr, err = c.RefreshOracle(ctx, o)
	if err != nil {
		t.Fatalf("stale refresh: %v", err)
	}
	if !incr || n <= 8 {
		t.Fatalf("stale refresh: incremental=%v transfer=%d, want a real diff", incr, n)
	}
	if upd.Inserts() <= before {
		t.Fatalf("refreshed oracle inserts %d, want > %d", upd.Inserts(), before)
	}
}

// TestRefreshOracleOldServerFallback: a server predating msgGetDiff2
// rejects it; the client falls back to msgGetDiff (sticky) and surfaces
// that request's answer.
func TestRefreshOracleOldServerFallback(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	defer serverEnd.Close()
	seen := sessionServerStub(t, serverEnd)
	c := NewClient(clientEnd, WithLogger(nil))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ms, _, _ := syntheticCorpus(5, 8, 8, 8)
	db := newTestDB(t, routerTestConfig())
	if err := db.Ingest(ctx, ms); err != nil {
		t.Fatal(err)
	}
	o := db.Oracle()

	// The stub answers msgGetDiff with ErrEmptyDatabase — distinguishable
	// from the unknown-type rejection, proving the fallback resend ran.
	_, _, _, err := c.RefreshOracle(ctx, o)
	if !errors.Is(err, ErrEmptyDatabase) {
		t.Fatalf("refresh against old server: %v, want the msgGetDiff answer (ErrEmptyDatabase)", err)
	}
	frames := seen()
	if countType(frames, msgGetDiff2) != 1 || countType(frames, msgGetDiff) != 1 {
		t.Fatalf("refresh frames = %v, want one msgGetDiff2 then one msgGetDiff", frames)
	}
	if _, _, _, err := c.RefreshOracle(ctx, o); !errors.Is(err, ErrEmptyDatabase) {
		t.Fatalf("second refresh: %v", err)
	}
	if n := countType(seen(), msgGetDiff2); n != 1 {
		t.Fatalf("msgGetDiff2 sent %d times across two refreshes: fallback not sticky", n)
	}
}
