package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"visualprint/internal/codec"
	"visualprint/internal/core"
	"visualprint/internal/obs"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
)

// decodeKeypoints parses the shared keypoint wire format.
func decodeKeypoints(data []byte) ([]sift.Keypoint, error) {
	return codec.UnmarshalKeypoints(data)
}

// Client is a VisualPrint protocol client. It is safe for concurrent use:
// requests are multiplexed over the single connection with uint32 request
// IDs (wire protocol v2), so concurrent calls overlap on the wire and on
// the server instead of queueing behind a lock. A demux goroutine routes
// each response frame to the caller whose request it answers.
//
// Every method takes a context: its deadline is mapped onto the
// connection's write deadline, and cancellation abandons the response wait
// (a late response is discarded by the demux loop). The byte counters feed
// the Figure 14 bandwidth accounting.
type Client struct {
	conn net.Conn
	v1   bool // legacy ID-less framing; responses route in FIFO order

	// writeMu serializes frame writes; for v1 it also pins FIFO
	// registration to wire order.
	writeMu sync.Mutex
	lastID  uint32 // v2 request ID source, guarded by writeMu

	mu      sync.Mutex
	pending map[uint32]chan rpcResult // v2 in-flight requests by ID
	fifo    []chan rpcResult          // v1 in-flight requests in send order
	readErr error                     // terminal demux error, sticky

	sent, received atomic.Int64
}

// rpcResult is one demuxed response (or a terminal transport error).
type rpcResult struct {
	typ     byte
	payload []byte
	err     error
}

// NewClient wraps an established connection (TCP or net.Pipe), announcing
// protocol v2 and starting the response demux loop.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint32]chan rpcResult)}
	if err := writePreamble(conn); err != nil {
		// Surface the broken transport through the demux path so every
		// call fails with it rather than hanging.
		c.failAll(err)
		return c
	}
	c.sent.Add(preambleSize)
	go c.demux()
	return c
}

// NewClientV1 wraps a connection speaking the legacy v1 (ID-less) framing,
// as an old client binary would. The server handles a v1 connection
// sequentially, so responses arrive in request order and are routed FIFO;
// calls pipeline on the wire but cannot overlap server-side.
func NewClientV1(conn net.Conn) *Client {
	c := &Client{conn: conn, v1: true, pending: make(map[uint32]chan rpcResult)}
	go c.demux()
	return c
}

// Dial connects to a VisualPrint server over TCP.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a VisualPrint server over TCP, honoring the
// context's deadline and cancellation for the dial itself.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Close closes the connection; in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// BytesSent returns the total bytes uploaded (including framing and the
// version preamble).
func (c *Client) BytesSent() int64 { return c.sent.Load() }

// BytesReceived returns the total payload bytes downloaded.
func (c *Client) BytesReceived() int64 { return c.received.Load() }

func (c *Client) frameOverhead() int64 {
	if c.v1 {
		return frameOverheadV1
	}
	return frameOverheadV2
}

// demux reads response frames and routes each to its waiting caller — by
// request ID on v2, in FIFO order on v1. A read error is terminal: it fails
// every in-flight and future call.
func (c *Client) demux() {
	for {
		var (
			id      uint32
			typ     byte
			payload []byte
			err     error
		)
		if c.v1 {
			typ, payload, err = readFrame(c.conn)
		} else {
			id, typ, payload, err = readFrameV2(c.conn)
		}
		if err != nil {
			c.failAll(err)
			return
		}
		c.received.Add(int64(len(payload)) + c.frameOverhead())
		c.mu.Lock()
		var ch chan rpcResult
		if c.v1 {
			if len(c.fifo) > 0 {
				ch = c.fifo[0]
				c.fifo = c.fifo[1:]
			}
		} else {
			ch = c.pending[id]
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ch != nil {
			ch <- rpcResult{typ: typ, payload: payload} // buffered; never blocks
		}
	}
}

// ErrConnectionLost marks calls that failed because the transport died
// underneath them — the server closed (or crashed) with the request in
// flight, or the connection broke before the response arrived. It wraps
// the underlying read error; match with errors.Is.
var ErrConnectionLost = errors.New("visualprint client: connection lost")

// failAll marks the client broken and unblocks every waiter.
func (c *Client) failAll(err error) {
	// EOF and friends are transport deaths, not server answers; tag them
	// so callers can distinguish "server said no" from "server went away".
	if err != nil && !errors.Is(err, ErrConnectionLost) {
		err = fmt.Errorf("%w: %w", ErrConnectionLost, err)
	}
	c.mu.Lock()
	c.readErr = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- rpcResult{err: err}
	}
	for _, ch := range c.fifo {
		ch <- rpcResult{err: err}
	}
	c.fifo = nil
	c.mu.Unlock()
}

// call sends one request and waits for its routed response, returning the
// raw response type and payload (msgError is already converted to error).
func (c *Client) call(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	ch := make(chan rpcResult, 1)
	c.writeMu.Lock()
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		c.writeMu.Unlock()
		return 0, nil, err
	}
	var id uint32
	if c.v1 {
		c.fifo = append(c.fifo, ch)
	} else {
		c.lastID++
		id = c.lastID
		c.pending[id] = ch
	}
	c.mu.Unlock()
	// The context deadline bounds the blocking write; the read side is
	// enforced by the ctx.Done select below (the demux read itself is
	// shared across requests and cannot carry a per-request deadline).
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetWriteDeadline(d)
	} else {
		c.conn.SetWriteDeadline(time.Time{})
	}
	var err error
	if c.v1 {
		err = writeFrame(c.conn, typ, payload)
	} else {
		err = writeFrameV2(c.conn, id, typ, payload)
	}
	if err == nil {
		c.sent.Add(int64(len(payload)) + c.frameOverhead())
	}
	c.writeMu.Unlock()
	if err != nil {
		c.forget(id, ch)
		return 0, nil, err
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, nil, r.err
		}
		if r.typ == msgError {
			return 0, nil, decodeErrorPayload(r.payload)
		}
		return r.typ, r.payload, nil
	case <-ctx.Done():
		c.forget(id, ch)
		return 0, nil, ctx.Err()
	}
}

// forget abandons an in-flight request after cancellation or a write
// failure. A v2 entry is removed from the pending map (its late response,
// if any, is dropped by the demux loop). A v1 entry must stay in the FIFO —
// removing it would misroute every later response — so its response drains
// into the abandoned buffered channel instead.
func (c *Client) forget(id uint32, ch chan rpcResult) {
	if c.v1 {
		return
	}
	c.mu.Lock()
	if c.pending[id] == ch {
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// roundTrip is call plus a response-type check.
func (c *Client) roundTrip(ctx context.Context, typ byte, payload []byte, wantType byte) ([]byte, error) {
	rt, resp, err := c.call(ctx, typ, payload)
	if err != nil {
		return nil, err
	}
	if rt != wantType {
		return nil, errRemote{msg: "unexpected response type"}
	}
	return resp, nil
}

// FetchOracle downloads the current uniqueness oracle. blobSize is the
// compressed transfer size in bytes (the paper's ~10 MB download).
func (c *Client) FetchOracle(ctx context.Context) (o *core.Oracle, blobSize int64, err error) {
	resp, err := c.roundTrip(ctx, msgGetOracle, nil, msgOracleBlob)
	if err != nil {
		return nil, 0, err
	}
	raw, err := codec.Gunzip(resp)
	if err != nil {
		return nil, 0, err
	}
	o, err = core.Read(bytes.NewReader(raw))
	if err != nil {
		return nil, 0, err
	}
	return o, int64(len(resp)), nil
}

// RefreshOracle brings a previously downloaded oracle up to date. When the
// server still retains the client's version it ships a compressed diff
// (typically a small fraction of the full blob); otherwise the oracle is
// replaced wholesale. The returned oracle is o itself after an incremental
// patch, or a fresh instance after a full refresh.
func (c *Client) RefreshOracle(ctx context.Context, o *core.Oracle) (updated *core.Oracle, transferBytes int64, incremental bool, err error) {
	req := make([]byte, 8)
	binary.LittleEndian.PutUint64(req, o.Inserts())
	rt, resp, err := c.call(ctx, msgGetDiff, req)
	if err != nil {
		return nil, 0, false, err
	}
	switch rt {
	case msgDiffBlob:
		if err := core.ApplyDiff(o, resp); err != nil {
			return nil, 0, false, err
		}
		return o, int64(len(resp)), true, nil
	case msgOracleBlob:
		raw, err := codec.Gunzip(resp)
		if err != nil {
			return nil, 0, false, err
		}
		fresh, err := core.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, 0, false, err
		}
		return fresh, int64(len(resp)), false, nil
	default:
		return nil, 0, false, errRemote{msg: "unexpected response type"}
	}
}

// Ingest uploads wardriven keypoint-to-3D mappings; it returns the server's
// total mapping count after the batch.
func (c *Client) Ingest(ctx context.Context, ms []Mapping) (total int, err error) {
	resp, err := c.roundTrip(ctx, msgIngest, encodeMappings(ms), msgIngestAck)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errRemote{msg: "bad ingest ack"}
	}
	return int(binary.LittleEndian.Uint64(resp)), nil
}

// Query uploads selected keypoints (with their 2D pixel coordinates) and
// returns the server's 3D localization.
func (c *Client) Query(ctx context.Context, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	payload := encodeQuery(intr, codec.MarshalKeypoints(kps))
	resp, err := c.roundTrip(ctx, msgQuery, payload, msgQueryResult)
	if err != nil {
		return LocateResult{}, err
	}
	return decodeLocateResult(resp)
}

// Stats returns the server's mapping count. It uses the original
// count-only RPC, so it works against every server version.
func (c *Client) Stats(ctx context.Context) (mappings uint64, err error) {
	resp, err := c.roundTrip(ctx, msgStats, nil, msgStatsResult)
	if err != nil {
		return 0, err
	}
	// Every server answers msgStats with the legacy 8-byte count;
	// decodeDBStats additionally tolerates an extended payload.
	s, err := decodeDBStats(resp)
	if err != nil {
		return 0, errRemote{msg: err.Error()}
	}
	return s.Mappings, nil
}

// StatsFull returns the server's full state report: database size, oracle
// insert count and persistence state (snapshot coverage, WAL size, last
// compaction). Legacy servers without the extended RPC yield a DBStats
// with just Mappings set.
func (c *Client) StatsFull(ctx context.Context) (DBStats, error) {
	resp, err := c.roundTrip(ctx, msgStatsFull, nil, msgStatsResult)
	if err != nil {
		if !IsRemote(err) {
			return DBStats{}, err
		}
		// A server predating msgStatsFull rejects the unknown message
		// type; fall back to the count-only RPC it does speak.
		resp, err = c.roundTrip(ctx, msgStats, nil, msgStatsResult)
		if err != nil {
			return DBStats{}, err
		}
	}
	s, err := decodeDBStats(resp)
	if err != nil {
		return DBStats{}, errRemote{msg: err.Error()}
	}
	return s, nil
}

// ErrMetricsUnsupported marks a Metrics call against a server that cannot
// answer it — a binary predating the metrics RPC, or one running with
// observability disabled. It wraps the server's rejection; match with
// errors.Is.
var ErrMetricsUnsupported = errors.New("visualprint client: server does not support the metrics RPC")

// Metrics fetches the server's observability report: request counters,
// latency histograms with quantile summaries (locate and its pipeline
// stages, WAL fsync, snapshots), gauges, and the slow-request log. Calls
// against servers without the RPC return ErrMetricsUnsupported.
func (c *Client) Metrics(ctx context.Context) (obs.Report, error) {
	resp, err := c.roundTrip(ctx, msgGetMetrics, nil, msgMetricsResult)
	if err != nil {
		if IsRemote(err) {
			// An old server rejects the unknown message type (and a
			// metrics-disabled one rejects the request): either way the
			// RPC is unavailable, reported as the typed sentinel.
			return obs.Report{}, fmt.Errorf("%w: %w", ErrMetricsUnsupported, err)
		}
		return obs.Report{}, err
	}
	var rep obs.Report
	if err := json.Unmarshal(resp, &rep); err != nil {
		return obs.Report{}, errRemote{msg: "bad metrics payload: " + err.Error()}
	}
	return rep, nil
}

// QueryUploadBytes returns the v2 wire size of a query with the given
// number of keypoints — the per-query upload the paper reports as 51.2 KB
// for VisualPrint-ish fingerprints versus 523 KB whole frames.
func QueryUploadBytes(nKeypoints int) int64 {
	return frameOverheadV2 + queryHeaderSize + 10 + int64(nKeypoints)*codec.KeypointWireSize
}
