package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"visualprint/internal/codec"
	"visualprint/internal/core"
	"visualprint/internal/obs"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
)

// decodeKeypoints parses the shared keypoint wire format.
func decodeKeypoints(data []byte) ([]sift.Keypoint, error) {
	return codec.UnmarshalKeypoints(data)
}

// RetryPolicy controls client-side retries: exponential backoff with
// jitter, applied only to errors that are provably safe to retry.
// ErrOverloaded is always retryable — the server shed the request before
// doing any work. A lost connection is retried only for idempotent
// requests, and only when the client can redial (it was built by Dial).
// Request-level failures — ErrNoConsensus, ErrTooFewMatches, a deadline —
// are answers, not faults, and are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Each subsequent
	// retry multiplies it by Multiplier (default 2), capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter randomizes each delay within ±(Jitter/2) of its nominal
	// value, in [0, 1]; it decorrelates clients retrying a shared server.
	Jitter float64
}

// DefaultRetryPolicy is a reasonable interactive-use policy: four attempts
// spanning roughly a quarter second of backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// delay returns the jittered backoff before retry number n (1-based).
func (p RetryPolicy) delay(n int) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	for i := 1; i < n; i++ {
		d *= mult
	}
	if max := float64(p.MaxDelay); max > 0 && d > max {
		d = max
	}
	if j := p.Jitter; j > 0 {
		d *= 1 + j*(rand.Float64()-0.5)
	}
	return time.Duration(d)
}

// dialConfig collects the options shared by Dial, DialContext and
// NewClient.
type dialConfig struct {
	timeout time.Duration
	retry   RetryPolicy
	log     *obs.Logger
	venue   string
	replica string
}

// DialOption configures a client at construction.
type DialOption func(*dialConfig)

// WithDialTimeout bounds each TCP dial — the initial connect and any
// automatic reconnect. Zero means no bound beyond the caller's context.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithRetryPolicy enables client-side retries. The zero policy (the
// default) disables them: every error surfaces on the first attempt.
func WithRetryPolicy(p RetryPolicy) DialOption {
	return func(c *dialConfig) { c.retry = p }
}

// WithLogger routes the client's connection-lifecycle messages (redials,
// retry exhaustion) to l; the default is the process logger. Nil silences.
func WithLogger(l *obs.Logger) DialOption {
	return func(c *dialConfig) { c.log = l }
}

// WithVenue pins every request the client sends to the named venue, as if
// each call went through Client.Venue(name). The empty name (the default)
// addresses the server's default venue.
func WithVenue(name string) DialOption {
	return func(c *dialConfig) { c.venue = name }
}

// WithReadFromReplica routes read RPCs (query, oracle download/refresh,
// stats) to the replica at addr, falling back to the primary whenever the
// replica fails or redirects (dead, mid-full-sync, past its staleness
// bound). Writes always go to the primary. The replica connection's bytes
// are not included in the client's BytesSent/BytesReceived accounting.
// Only meaningful with Dial/DialContext.
func WithReadFromReplica(addr string) DialOption {
	return func(c *dialConfig) { c.replica = addr }
}

// Client is a VisualPrint protocol client. It is safe for concurrent use:
// requests are multiplexed over the single connection with uint32 request
// IDs (wire protocol v2), so concurrent calls overlap on the wire and on
// the server instead of queueing behind a lock. A demux goroutine routes
// each response frame to the caller whose request it answers.
//
// Every method takes a context, and the context is honored end to end: a
// deadline travels to the server inside a msgRequestEx envelope (the
// server abandons the pipeline when it expires), and cancellation both
// abandons the local wait and sends a msgCancel frame so the server stops
// working on the request. Against a server predating the envelope the
// client transparently falls back to plain requests and enforces the
// deadline locally. The byte counters feed the Figure 14 bandwidth
// accounting.
type Client struct {
	v1 bool // legacy ID-less framing; responses route in FIFO order

	// dialFn redials the server after a lost connection; nil (NewClient
	// over an existing conn) disables automatic reconnection.
	dialFn func(context.Context) (net.Conn, error)
	retry  RetryPolicy
	log    *obs.Logger

	// venue is the default venue for every call (WithVenue); Venue(name)
	// handles override it per request.
	venue string

	// target is the address the dialer currently points at (string; only
	// set by Dial/DialContext). Redirect-following on ErrNotPrimary stores
	// the new primary here and reconnects.
	target atomic.Value
	// noRedirect disables redirect-following — set on the replica
	// sub-client, which must stay pointed at its replica rather than
	// silently becoming a second primary connection.
	noRedirect bool
	// replica, when non-nil, is the secondary connection read RPCs prefer
	// (WithReadFromReplica); failures fall back to the primary.
	replica *Client

	// deadlineOK tracks whether the server accepts msgRequestEx deadline
	// envelopes; cleared on the first "unknown message type" rejection so
	// a session against an old server pays the round trip once.
	deadlineOK atomic.Bool
	// venueNo tracks a server rejecting msgVenueEx as an unknown type
	// (sticky, like deadlineOK but inverted so the zero value — venue
	// support assumed — works for NewClientV1's bare construction). Unlike
	// the deadline fallback there is no transparent resend: a plain request
	// would silently address the default venue, so venue-pinned calls fail
	// with the typed ErrVenueUnsupported instead.
	venueNo atomic.Bool
	// sessNo tracks a server rejecting msgSessionEx (sticky). Unlike the
	// venue envelope, the session envelope is a pure optimization — a
	// warm-start hint — so the fallback is a silent resend without it: the
	// answer from a session-less solve is equally correct, just costs the
	// server more generations.
	sessNo atomic.Bool
	// Capability probe record (see capability): per-connection-generation
	// outcome bits for optional oracle-distribution requests, replacing the
	// per-feature sticky booleans those requests used to carry. Guarded by
	// mu; capGen names the generation the bits were probed on, so a
	// reconnect (which may land on a different server binary) re-probes.
	capGen   int
	capKnown uint32
	capHave  uint32

	// writeMu serializes frame writes; for v1 it also pins FIFO
	// registration to wire order. Reconnection swaps the conn under
	// writeMu+mu, so a write under writeMu never races the swap.
	writeMu sync.Mutex
	lastID  uint32 // v2 request ID source, guarded by writeMu

	mu      sync.Mutex
	conn    net.Conn
	gen     int                       // bumped per reconnect; stale demux loops exit
	closed  bool                      // Close called; no further reconnects
	pending map[uint32]chan rpcResult // v2 in-flight requests by ID
	fifo    []chan rpcResult          // v1 in-flight requests in send order
	// subs routes server-initiated event frames (oracle subscriptions) by
	// request ID. Unlike pending entries, a sub survives across frames and
	// its channel is a latest-wins mailbox: epoch events are cumulative, so
	// the demux drops the stale one rather than block on a slow watcher.
	subs    map[uint32]chan rpcResult
	readErr error // terminal demux error, sticky until reconnect

	sent, received atomic.Int64
}

// rpcResult is one demuxed response (or a terminal transport error).
type rpcResult struct {
	typ     byte
	payload []byte
	err     error
}

// deliverLatest puts r into a capacity-1 subscription mailbox, displacing
// any undelivered older result: epoch events carry the full latest version,
// so the stale one is worthless the moment a newer one exists, and the
// demux loop must never block on a slow watcher.
func deliverLatest(ch chan rpcResult, r rpcResult) {
	for {
		select {
		case ch <- r:
			return
		default:
		}
		select {
		case <-ch:
		default:
		}
	}
}

// NewClient wraps an established connection (TCP or net.Pipe), announcing
// protocol v2 and starting the response demux loop. Options configure
// retries and logging; without a dialer (use Dial for that) a lost
// connection is not reconnectable.
func NewClient(conn net.Conn, opts ...DialOption) *Client {
	cfg := dialConfig{log: obs.Default()}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Client{
		conn: conn, pending: make(map[uint32]chan rpcResult),
		subs:  make(map[uint32]chan rpcResult),
		retry: cfg.retry, log: cfg.log, venue: cfg.venue,
	}
	c.deadlineOK.Store(true)
	if err := writePreamble(conn); err != nil {
		// Surface the broken transport through the demux path so every
		// call fails with it rather than hanging.
		c.failGen(err, 0)
		return c
	}
	c.sent.Add(preambleSize)
	go c.demux(conn, 0)
	return c
}

// NewClientV1 wraps a connection speaking the legacy v1 (ID-less) framing,
// as an old client binary would. The server handles a v1 connection
// sequentially, so responses arrive in request order and are routed FIFO;
// calls pipeline on the wire but cannot overlap server-side. v1 carries no
// deadline envelope and no cancel frames: contexts are enforced locally.
func NewClientV1(conn net.Conn) *Client {
	c := &Client{conn: conn, v1: true, pending: make(map[uint32]chan rpcResult), log: obs.Default()}
	go c.demux(conn, 0)
	return c
}

// Dial connects to a VisualPrint server over TCP. With a retry policy
// configured, a client built by Dial also redials automatically when the
// connection is lost mid-call (idempotent requests only).
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext is Dial honoring ctx for the initial connection.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{log: obs.Default()}
	for _, o := range opts {
		o(&cfg)
	}
	c, err := dialTarget(ctx, addr, cfg, opts)
	if err != nil {
		return nil, err
	}
	if cfg.replica != "" {
		rcfg := cfg
		rcfg.replica = ""
		r, err := dialTarget(ctx, cfg.replica, rcfg, opts)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("read replica %s: %w", cfg.replica, err)
		}
		r.noRedirect = true
		c.replica = r
	}
	return c, nil
}

// dialTarget builds one retargetable connection: the dialer reads the
// client's current target address, so a not-primary redirect can move the
// connection without rebuilding the client.
func dialTarget(ctx context.Context, addr string, cfg dialConfig, opts []DialOption) (*Client, error) {
	var c *Client
	dialFn := func(ctx context.Context) (net.Conn, error) {
		if cfg.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
			defer cancel()
		}
		target := addr
		if c != nil {
			if t, ok := c.target.Load().(string); ok && t != "" {
				target = t
			}
		}
		var d net.Dialer
		return d.DialContext(ctx, "tcp", target)
	}
	conn, err := dialFn(ctx)
	if err != nil {
		return nil, err
	}
	c = NewClient(conn, opts...)
	c.dialFn = dialFn
	c.target.Store(addr)
	return c, nil
}

// Close closes the connection (and the read-replica connection, if any);
// in-flight calls fail and no reconnection is attempted.
func (c *Client) Close() error {
	if r := c.replica; r != nil {
		r.Close()
	}
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}

// BytesSent returns the total bytes uploaded (including framing and the
// version preamble).
func (c *Client) BytesSent() int64 { return c.sent.Load() }

// BytesReceived returns the total payload bytes downloaded.
func (c *Client) BytesReceived() int64 { return c.received.Load() }

func (c *Client) frameOverhead() int64 {
	if c.v1 {
		return frameOverheadV1
	}
	return frameOverheadV2
}

func (c *Client) logf(format string, args ...any) {
	c.log.Warnf(format, args...)
}

// demux reads response frames from conn and routes each to its waiting
// caller — by request ID on v2, in FIFO order on v1. A read error is
// terminal for this connection generation: it fails every in-flight call
// and, absent a reconnect, every future one.
func (c *Client) demux(conn net.Conn, gen int) {
	for {
		var (
			id      uint32
			typ     byte
			payload []byte
			err     error
		)
		if c.v1 {
			typ, payload, err = readFrame(conn)
		} else {
			id, typ, payload, err = readFrameV2(conn)
		}
		if err != nil {
			c.failGen(err, gen)
			return
		}
		c.received.Add(int64(len(payload)) + c.frameOverhead())
		c.mu.Lock()
		if c.gen != gen {
			// The connection was replaced while this read was in flight;
			// the response belongs to a dead generation.
			c.mu.Unlock()
			return
		}
		var ch chan rpcResult
		sub := false
		if c.v1 {
			if len(c.fifo) > 0 {
				ch = c.fifo[0]
				c.fifo = c.fifo[1:]
			}
		} else {
			ch = c.pending[id]
			if ch != nil {
				delete(c.pending, id)
			} else if sch, ok := c.subs[id]; ok {
				ch, sub = sch, true
			}
		}
		c.mu.Unlock()
		switch {
		case ch == nil:
		case sub:
			deliverLatest(ch, rpcResult{typ: typ, payload: payload})
		default:
			ch <- rpcResult{typ: typ, payload: payload} // buffered; never blocks
		}
	}
}

// ErrConnectionLost marks calls that failed because the transport died
// underneath them — the server closed (or crashed) with the request in
// flight, or the connection broke before the response arrived. It wraps
// the underlying read error; match with errors.Is.
var ErrConnectionLost = errors.New("visualprint client: connection lost")

// failGen marks connection generation gen broken and unblocks every
// waiter. A stale generation (already replaced by a reconnect) is a no-op.
func (c *Client) failGen(err error, gen int) {
	// EOF and friends are transport deaths, not server answers; tag them
	// so callers can distinguish "server said no" from "server went away".
	if err != nil && !errors.Is(err, ErrConnectionLost) {
		err = fmt.Errorf("%w: %w", ErrConnectionLost, err)
	}
	c.mu.Lock()
	if gen != c.gen {
		c.mu.Unlock()
		return
	}
	c.readErr = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- rpcResult{err: err}
	}
	for _, ch := range c.fifo {
		ch <- rpcResult{err: err}
	}
	c.fifo = nil
	for id, ch := range c.subs {
		delete(c.subs, id)
		deliverLatest(ch, rpcResult{err: err})
	}
	c.mu.Unlock()
}

// reconnect replaces a dead connection with a freshly dialed one, bumping
// the generation so late frames from the old connection are discarded. It
// is a no-op when the connection is healthy (another caller already
// reconnected) and an error when the client was closed or has no dialer.
func (c *Client) reconnect(ctx context.Context) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("%w: client closed", ErrConnectionLost)
	}
	if c.readErr == nil {
		c.mu.Unlock()
		return nil
	}
	if c.dialFn == nil {
		err := c.readErr
		c.mu.Unlock()
		return err
	}
	old := c.conn
	c.mu.Unlock()

	conn, err := c.dialFn(ctx)
	if err != nil {
		return fmt.Errorf("%w: redial: %w", ErrConnectionLost, err)
	}
	if err := writePreamble(conn); err != nil {
		conn.Close()
		return fmt.Errorf("%w: redial: %w", ErrConnectionLost, err)
	}
	c.sent.Add(preambleSize)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return fmt.Errorf("%w: client closed", ErrConnectionLost)
	}
	old.Close()
	c.conn = conn
	c.gen++
	gen := c.gen
	c.readErr = nil
	c.mu.Unlock()
	c.logf("visualprint client: reconnected")
	go c.demux(conn, gen)
	return nil
}

// retryable reports whether err is safe to retry. Shed requests always are
// (the server did no work); a lost connection only for idempotent requests
// on a client that can redial. Typed request outcomes — no consensus, a
// deadline, a draining server — are answers, not transient faults.
func (c *Client) retryable(err error, idempotent bool) bool {
	switch {
	case errors.Is(err, ErrOverloaded):
		return true
	case errors.Is(err, ErrConnectionLost):
		return idempotent && c.dialFn != nil
	}
	return false
}

// invoke is call plus the retry loop: jittered exponential backoff on
// retryable errors, reconnecting first when the transport died.
func (c *Client) invoke(ctx context.Context, venue string, typ byte, payload []byte, idempotent bool) (byte, []byte, error) {
	rt, resp, err := c.callRedirect(ctx, venue, typ, payload)
	for attempt := 1; err != nil && attempt < c.retry.MaxAttempts && c.retryable(err, idempotent); attempt++ {
		select {
		case <-time.After(c.retry.delay(attempt)):
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
		if errors.Is(err, ErrConnectionLost) {
			if rerr := c.reconnect(ctx); rerr != nil {
				return 0, nil, rerr
			}
		}
		rt, resp, err = c.callRedirect(ctx, venue, typ, payload)
	}
	return rt, resp, err
}

// maxRedirectHops bounds not-primary redirect chasing within one call, so
// a fleet mid-failover (everyone pointing at everyone) cannot loop the
// client forever.
const maxRedirectHops = 4

// callRedirect is call plus redirect-following: a not-primary rejection
// naming a primary moves the connection there and resends. Safe for
// non-idempotent requests — the rejecting server did no work. Redirects
// don't consume retry-policy attempts.
func (c *Client) callRedirect(ctx context.Context, venue string, typ byte, payload []byte) (byte, []byte, error) {
	rt, resp, err := c.call(ctx, venue, typ, payload)
	for hops := 0; hops < maxRedirectHops; hops++ {
		var npe *NotPrimaryError
		if err == nil || !errors.As(err, &npe) || npe.Primary == "" || !c.retarget(ctx, npe.Primary) {
			return rt, resp, err
		}
		c.logf("visualprint client: redirected to primary %s", npe.Primary)
		rt, resp, err = c.call(ctx, venue, typ, payload)
	}
	return rt, resp, err
}

// retarget points the dialer at addr and swaps in a fresh connection,
// reporting whether it did. In-flight requests on the old connection fail
// with ErrConnectionLost (retryable where idempotent). No-op — returns
// false — when the client has no dialer, follows no redirects, or already
// targets addr.
func (c *Client) retarget(ctx context.Context, addr string) bool {
	if c.dialFn == nil || c.noRedirect {
		return false
	}
	cur, ok := c.target.Load().(string)
	if !ok || cur == addr {
		return false
	}
	c.target.Store(addr)

	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	conn, err := c.dialFn(ctx)
	if err != nil {
		// Leave the old connection in place; the caller's error stands and
		// a later attempt redials at the stored target.
		return false
	}
	if err := writePreamble(conn); err != nil {
		conn.Close()
		return false
	}
	c.sent.Add(preambleSize)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return false
	}
	old := c.conn
	// Drain requests still in flight on the old connection — its demux
	// loop's eventual read error targets a stale generation and would
	// otherwise leave them hanging.
	redirErr := fmt.Errorf("%w: redirected to %s", ErrConnectionLost, addr)
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- rpcResult{err: redirErr}
	}
	for _, ch := range c.fifo {
		ch <- rpcResult{err: redirErr}
	}
	c.fifo = nil
	for id, ch := range c.subs {
		delete(c.subs, id)
		deliverLatest(ch, rpcResult{err: redirErr})
	}
	c.conn = conn
	c.gen++
	gen := c.gen
	c.readErr = nil
	c.mu.Unlock()
	old.Close()
	go c.demux(conn, gen)
	return true
}

// deadlineMillis converts a context deadline to the wire's relative-millis
// encoding: at least 1 (an already-tight deadline should expire on the
// server, typed), clamped to the field width.
func deadlineMillis(d time.Time) uint32 {
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > int64(deadlineWireMax) {
		ms = int64(deadlineWireMax)
	}
	return uint32(ms)
}

// isUnknownTypeErr detects an old server rejecting specifically message
// type typ — the generic-code "unknown message type N" error its dispatcher
// returns. The check is type-specific on purpose: a nested envelope can
// produce the same rejection for a different type (an old server rejecting
// the venue envelope must not be mistaken for one rejecting the deadline
// envelope, and vice versa). Used to fall back from the msgRequestEx and
// msgVenueEx envelopes.
func isUnknownTypeErr(err error, typ byte) bool {
	var r errRemote
	return errors.As(err, &r) && r.code == errCodeGeneric &&
		strings.HasSuffix(r.msg, fmt.Sprintf("unknown message type %d", typ))
}

// ErrVenueUnsupported marks a venue-pinned call against a server predating
// the venue envelope. There is no transparent fallback — a plain resend
// would silently address the default venue — so the caller must decide.
// Match with errors.Is.
var ErrVenueUnsupported = errors.New("visualprint client: server does not support venue routing")

// Capability bits probed against the connected server, one probe per bit
// per connection generation. These fold the oracle-distribution fallback
// ladder (msgGetOracle → msgGetDiff → msgGetDiff2 → msgOracleSync) into
// one record: the first request of each kind doubles as the probe, its
// unknown-type rejection (or success) is recorded, and later requests on
// the same connection skip the dead round trip. A reconnect re-probes —
// the redial may reach a different server binary mid-upgrade.
const (
	// capDiff2 — the msgGetDiff2 not-modified refresh fast path.
	capDiff2 uint32 = 1 << iota
	// capOracleSync — versioned oracle syncs and epoch subscriptions.
	capOracleSync
)

// capability reports the probe outcome for one capability bit on the
// current connection generation; known is false until the bit has been
// probed on this generation (callers then try the optimistic request).
func (c *Client) capability(bit uint32) (supported, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capGen != c.gen {
		return false, false
	}
	return c.capHave&bit != 0, c.capKnown&bit != 0
}

// recordCapability stores a probe outcome for the current connection
// generation, invalidating outcomes probed on earlier generations.
func (c *Client) recordCapability(bit uint32, supported bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capGen != c.gen {
		c.capGen, c.capKnown, c.capHave = c.gen, 0, 0
	}
	c.capKnown |= bit
	if supported {
		c.capHave |= bit
	} else {
		c.capHave &^= bit
	}
}

// call sends one request and waits for its routed response. A non-empty
// venue wraps the request in the msgVenueEx envelope; a context deadline
// (v2 only) additionally wraps it in msgRequestEx, always outermost —
// mirroring the server, which unwraps the deadline before dispatch and the
// venue at dispatch. If the server predates the deadline envelope (it
// rejects the unknown type), the client falls back to a plain resend and
// remembers, enforcing deadlines locally from then on; if it predates the
// venue envelope, the call fails with ErrVenueUnsupported (sticky).
func (c *Client) call(ctx context.Context, venue string, typ byte, payload []byte) (byte, []byte, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if venue != "" {
		if c.venueNo.Load() {
			return 0, nil, ErrVenueUnsupported
		}
		if !validVenueName(venue) {
			return 0, nil, fmt.Errorf("visualprint client: invalid venue name %q", venue)
		}
		typ, payload = msgVenueEx, wrapVenue(venue, typ, payload)
	}
	rt, resp, err := c.exchangeDeadline(ctx, typ, payload)
	if err != nil && typ == msgVenueEx && isUnknownTypeErr(err, msgVenueEx) {
		c.venueNo.Store(true)
		c.logf("visualprint client: server predates venue routing")
		return 0, nil, fmt.Errorf("%w: %w", ErrVenueUnsupported, err)
	}
	return rt, resp, err
}

// exchangeDeadline is exchange plus the deadline-envelope layer (see call).
func (c *Client) exchangeDeadline(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	if !c.v1 && c.deadlineOK.Load() {
		if d, ok := ctx.Deadline(); ok {
			rt, resp, err := c.exchange(ctx, msgRequestEx, wrapRequestEx(deadlineMillis(d), typ, payload))
			if err != nil && isUnknownTypeErr(err, msgRequestEx) {
				c.deadlineOK.Store(false)
				c.logf("visualprint client: server predates deadline envelopes; enforcing deadlines locally")
				return c.exchange(ctx, typ, payload)
			}
			return rt, resp, err
		}
	}
	return c.exchange(ctx, typ, payload)
}

// exchange performs one wire round trip: register, write, await the demuxed
// response (msgError is already converted to error).
func (c *Client) exchange(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	ch := make(chan rpcResult, 1)
	c.writeMu.Lock()
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		c.writeMu.Unlock()
		return 0, nil, err
	}
	conn := c.conn
	var id uint32
	if c.v1 {
		c.fifo = append(c.fifo, ch)
	} else {
		c.lastID++
		id = c.lastID
		c.pending[id] = ch
	}
	c.mu.Unlock()
	// The context deadline bounds the blocking write; the read side is
	// enforced by the ctx.Done select below (the demux read itself is
	// shared across requests and cannot carry a per-request deadline).
	if d, ok := ctx.Deadline(); ok {
		conn.SetWriteDeadline(d)
	} else {
		conn.SetWriteDeadline(time.Time{})
	}
	var err error
	if c.v1 {
		err = writeFrame(conn, typ, payload)
	} else {
		err = writeFrameV2(conn, id, typ, payload)
	}
	if err == nil {
		c.sent.Add(int64(len(payload)) + c.frameOverhead())
	}
	c.writeMu.Unlock()
	if err != nil {
		c.forget(id, ch)
		// A failed write is a dead transport — unless the context expired
		// mid-write (the write deadline mirrors it), which is an answer.
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, cerr
		}
		return 0, nil, fmt.Errorf("%w: %w", ErrConnectionLost, err)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, nil, r.err
		}
		if r.typ == msgError {
			return 0, nil, decodeErrorPayload(r.payload)
		}
		return r.typ, r.payload, nil
	case <-ctx.Done():
		c.forget(id, ch)
		c.sendCancel(id)
		return 0, nil, ctx.Err()
	}
}

// forget abandons an in-flight request after cancellation or a write
// failure. A v2 entry is removed from the pending map (its late response,
// if any, is dropped by the demux loop). A v1 entry must stay in the FIFO —
// removing it would misroute every later response — so its response drains
// into the abandoned buffered channel instead.
func (c *Client) forget(id uint32, ch chan rpcResult) {
	if c.v1 {
		return
	}
	c.mu.Lock()
	if c.pending[id] == ch {
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// sendCancel tells the server to stop working on request id. Best-effort
// and fire-and-forget: the server never answers a cancel, and an old
// server's unknown-type error response is discarded by the demux loop
// because the ID is already forgotten.
func (c *Client) sendCancel(id uint32) {
	if c.v1 {
		return
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.mu.Lock()
	conn := c.conn
	dead := c.readErr != nil
	c.mu.Unlock()
	if dead {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	if writeFrameV2(conn, id, msgCancel, nil) == nil {
		c.sent.Add(frameOverheadV2)
	}
}

// roundTrip is invoke plus a response-type check, for idempotent requests.
func (c *Client) roundTrip(ctx context.Context, venue string, typ byte, payload []byte, wantType byte) ([]byte, error) {
	return c.roundTripIdem(ctx, venue, typ, payload, wantType, true)
}

func (c *Client) roundTripIdem(ctx context.Context, venue string, typ byte, payload []byte, wantType byte, idempotent bool) ([]byte, error) {
	rt, resp, err := c.invoke(ctx, venue, typ, payload, idempotent)
	if err != nil {
		return nil, err
	}
	if rt != wantType {
		return nil, errRemote{msg: "unexpected response type"}
	}
	return resp, nil
}

// readInvoke routes an idempotent read RPC through the configured read
// replica first, falling back to the primary on any replica failure — a
// dead replica, one mid-full-sync, or one past its staleness bound (the
// redirect it answers is the fallback trigger, not followed).
func (c *Client) readInvoke(ctx context.Context, venue string, typ byte, payload []byte) (byte, []byte, error) {
	if r := c.replica; r != nil {
		rt, resp, err := r.invoke(ctx, venue, typ, payload, true)
		if err == nil {
			return rt, resp, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, cerr
		}
		c.logf("visualprint client: read replica failed (%v); falling back to primary", err)
	}
	return c.invoke(ctx, venue, typ, payload, true)
}

// readRoundTrip is readInvoke plus the response-type check.
func (c *Client) readRoundTrip(ctx context.Context, venue string, typ byte, payload []byte, wantType byte) ([]byte, error) {
	rt, resp, err := c.readInvoke(ctx, venue, typ, payload)
	if err != nil {
		return nil, err
	}
	if rt != wantType {
		return nil, errRemote{msg: "unexpected response type"}
	}
	return resp, nil
}

// Venue is a lightweight handle pinning requests to one named venue on a
// shared client. Handles are cheap values — create one per venue as needed;
// all handles multiplex over the client's single connection and share its
// retry policy and byte counters. The zero name addresses the default venue
// (identical to calling the client directly).
type Venue struct {
	c    *Client
	name string
}

// Venue returns a handle whose requests address the named venue. Against a
// server predating venue routing, the handle's calls fail with the typed
// ErrVenueUnsupported (detected once, then sticky for the client).
func (c *Client) Venue(name string) Venue { return Venue{c: c, name: name} }

// Name returns the venue name the handle addresses.
func (v Venue) Name() string { return v.name }

// FetchOracle downloads the venue's uniqueness oracle (see
// Client.FetchOracle).
//
// Deprecated: use OracleSync (see Client.FetchOracle).
func (v Venue) FetchOracle(ctx context.Context) (*core.Oracle, int64, error) {
	return v.c.fetchOracle(ctx, v.name)
}

// RefreshOracle updates a previously downloaded venue oracle (see
// Client.RefreshOracle).
//
// Deprecated: use OracleSync (see Client.RefreshOracle).
func (v Venue) RefreshOracle(ctx context.Context, o *core.Oracle) (*core.Oracle, int64, bool, error) {
	return v.c.refreshOracle(ctx, v.name, o)
}

// OracleSync returns the venue's oracle-distribution handle (see
// Client.OracleSync).
func (v Venue) OracleSync() *OracleSync {
	return &OracleSync{c: v.c, venue: v.name}
}

// Ingest uploads mappings into the venue, creating it on first upload (see
// Client.Ingest).
func (v Venue) Ingest(ctx context.Context, ms []Mapping) (int, error) {
	return v.c.ingest(ctx, v.name, ms)
}

// Query localizes against the venue's shards (see Client.Query). A venue
// that has never been ingested answers ErrEmptyDatabase.
func (v Venue) Query(ctx context.Context, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	return v.c.query(ctx, v.name, kps, intr)
}

// Stats returns the venue's mapping count (see Client.Stats).
func (v Venue) Stats(ctx context.Context) (uint64, error) {
	return v.c.stats(ctx, v.name)
}

// StatsFull returns the venue's aggregated state report (see
// Client.StatsFull).
func (v Venue) StatsFull(ctx context.Context) (DBStats, error) {
	return v.c.statsFull(ctx, v.name)
}

// Session returns a handle for a continuous localization session against
// the venue: repeated queries carry the same session ID, letting the
// server warm-start each pose solve from the device's tracked trajectory
// (see Client.Session).
func (v Venue) Session() Session { return Session{c: v.c, venue: v.name, id: newSessionID()} }

// Session is a continuous localization session: a stream of queries from
// one moving device, identified to the server by a random non-zero 64-bit
// ID so it can warm-start each pose solve from the previous fixes. The
// handle is a cheap value sharing the client's connection; sessions are
// independent, so one client may run many concurrently.
//
// Sessions are soft state. The server evicts them by TTL and capacity, a
// failover or restart loses them silently, and an old server rejects the
// envelope entirely — in every case the query is answered by the ordinary
// cold solve, bit-identical to a session-less request, and the stream
// continues. There is no teardown RPC: stop querying and the server's TTL
// sweep reclaims the slot.
type Session struct {
	c     *Client
	venue string
	id    uint64
}

// Session returns a session handle bound to the client's default venue
// (or its WithVenue pin).
func (c *Client) Session() Session {
	return Session{c: c, venue: c.venue, id: newSessionID()}
}

// ID returns the session's wire identifier. Never zero: zero is the wire
// encoding for "no session".
func (s Session) ID() uint64 { return s.id }

// Venue returns the venue name the session addresses.
func (s Session) Venue() string { return s.venue }

// Query localizes one frame within the session. Identical to
// Client.Query except the request carries the session ID, so the server
// may answer from a warm-started solve seeded by the session's motion
// model. Results that fail the server's residual acceptance gate are
// transparently re-solved cold server-side, so a session query is never
// less accurate than a cold one.
func (s Session) Query(ctx context.Context, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	return s.c.querySession(ctx, s.venue, s.id, kps, intr)
}

// newSessionID draws a random non-zero session identifier. Collisions
// across 64 bits are negligible at any realistic concurrent-session
// count, and a collision only merges two motion histories — the residual
// gate rejects the resulting nonsense prior and the solves fall back cold.
func newSessionID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// FetchOracle downloads the current uniqueness oracle. blobSize is the
// compressed transfer size in bytes (the paper's ~10 MB download).
//
// Deprecated: use OracleSync, whose Sync both fetches and refreshes —
// versioned, delta-compressed, and push-invalidated where the server
// supports it. FetchOracle remains for callers that need the original
// one-shot download; its wire behavior is unchanged against every server.
func (c *Client) FetchOracle(ctx context.Context) (o *core.Oracle, blobSize int64, err error) {
	return c.fetchOracle(ctx, c.venue)
}

func (c *Client) fetchOracle(ctx context.Context, venue string) (o *core.Oracle, blobSize int64, err error) {
	resp, err := c.readRoundTrip(ctx, venue, msgGetOracle, nil, msgOracleBlob)
	if err != nil {
		return nil, 0, err
	}
	raw, err := codec.Gunzip(resp)
	if err != nil {
		return nil, 0, err
	}
	o, err = core.Read(bytes.NewReader(raw))
	if err != nil {
		return nil, 0, err
	}
	return o, int64(len(resp)), nil
}

// RefreshOracle brings a previously downloaded oracle up to date. When the
// server still retains the client's version it ships a compressed diff
// (typically a small fraction of the full blob); otherwise the oracle is
// replaced wholesale. The returned oracle is o itself after an incremental
// patch, or a fresh instance after a full refresh.
//
// Deprecated: use OracleSync. RefreshOracle identifies the held version by
// insert count alone, which collides across compaction or re-ingest
// histories — a server holding a different oracle with an equal count
// answers "unchanged" and strands the client on stale state. OracleSync
// compares (epoch, inserts) version identities instead, which cannot
// collide. RefreshOracle remains for old callers; its wire behavior is
// unchanged against every server.
func (c *Client) RefreshOracle(ctx context.Context, o *core.Oracle) (updated *core.Oracle, transferBytes int64, incremental bool, err error) {
	return c.refreshOracle(ctx, c.venue, o)
}

func (c *Client) refreshOracle(ctx context.Context, venue string, o *core.Oracle) (updated *core.Oracle, transferBytes int64, incremental bool, err error) {
	req := make([]byte, 8)
	binary.LittleEndian.PutUint64(req, o.Inserts())
	// Prefer msgGetDiff2, whose not-modified fast path answers an
	// up-to-date oracle with an 8-byte ack instead of building (and
	// shipping) an empty diff. An old server rejects the type; fall back
	// to msgGetDiff and record the probe outcome for this connection —
	// same bytes either way, no fast path on the fallback.
	typ := byte(msgGetDiff2)
	if ok, known := c.capability(capDiff2); known && !ok {
		typ = msgGetDiff
	}
	rt, resp, err := c.readInvoke(ctx, venue, typ, req)
	if typ == msgGetDiff2 {
		switch {
		case err != nil && isUnknownTypeErr(err, msgGetDiff2):
			c.recordCapability(capDiff2, false)
			c.logf("visualprint client: server predates the not-modified oracle refresh")
			rt, resp, err = c.readInvoke(ctx, venue, msgGetDiff, req)
		case err == nil:
			c.recordCapability(capDiff2, true)
		}
	}
	if err != nil {
		return nil, 0, false, err
	}
	switch rt {
	case msgDiffUnchanged:
		// The server's insert count equals ours: the oracle cannot have
		// changed (inserts are monotonic), so o is already current.
		if len(resp) != 8 || binary.LittleEndian.Uint64(resp) != o.Inserts() {
			return nil, 0, false, errRemote{msg: "bad unchanged ack"}
		}
		return o, int64(len(resp)), true, nil
	case msgDiffBlob:
		if err := core.ApplyDiff(o, resp); err != nil {
			return nil, 0, false, err
		}
		return o, int64(len(resp)), true, nil
	case msgOracleBlob:
		raw, err := codec.Gunzip(resp)
		if err != nil {
			return nil, 0, false, err
		}
		fresh, err := core.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, 0, false, err
		}
		return fresh, int64(len(resp)), false, nil
	default:
		return nil, 0, false, errRemote{msg: "unexpected response type"}
	}
}

// Ingest uploads wardriven keypoint-to-3D mappings; it returns the server's
// total mapping count after the batch. Ingest is not idempotent (a batch
// applied twice doubles its mappings), so the retry policy applies only to
// shed requests — never to a connection lost with the batch in flight.
func (c *Client) Ingest(ctx context.Context, ms []Mapping) (total int, err error) {
	return c.ingest(ctx, c.venue, ms)
}

func (c *Client) ingest(ctx context.Context, venue string, ms []Mapping) (total int, err error) {
	resp, err := c.roundTripIdem(ctx, venue, msgIngest, encodeMappings(ms), msgIngestAck, false)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errRemote{msg: "bad ingest ack"}
	}
	return int(binary.LittleEndian.Uint64(resp)), nil
}

// Query uploads selected keypoints (with their 2D pixel coordinates) and
// returns the server's 3D localization.
func (c *Client) Query(ctx context.Context, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	return c.query(ctx, c.venue, kps, intr)
}

func (c *Client) query(ctx context.Context, venue string, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	return c.querySession(ctx, venue, 0, kps, intr)
}

// querySession is query plus the optional msgSessionEx envelope. The
// envelope nests inside the venue envelope (the server unwraps venue,
// then session, then dispatches the plain query). Against a server
// predating sessions the call silently resends without the envelope and
// remembers (sticky): the session is an optimization, and a cold answer
// is still the right answer — unlike the venue envelope, where a silent
// downgrade would address the wrong data.
func (c *Client) querySession(ctx context.Context, venue string, sid uint64, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	payload := encodeQuery(intr, codec.MarshalKeypoints(kps))
	typ, pl := byte(msgQuery), payload
	if sid != 0 && !c.v1 && !c.sessNo.Load() {
		typ, pl = msgSessionEx, wrapSession(sid, msgQuery, payload)
	}
	resp, err := c.readRoundTrip(ctx, venue, typ, pl, msgQueryResult)
	if err != nil && typ == msgSessionEx && isUnknownTypeErr(err, msgSessionEx) {
		c.sessNo.Store(true)
		c.logf("visualprint client: server predates localization sessions; continuing with cold queries")
		resp, err = c.readRoundTrip(ctx, venue, msgQuery, payload, msgQueryResult)
	}
	if err != nil {
		return LocateResult{}, err
	}
	return decodeLocateResult(resp)
}

// Stats returns the server's mapping count. It uses the original
// count-only RPC, so it works against every server version.
func (c *Client) Stats(ctx context.Context) (mappings uint64, err error) {
	return c.stats(ctx, c.venue)
}

func (c *Client) stats(ctx context.Context, venue string) (mappings uint64, err error) {
	resp, err := c.readRoundTrip(ctx, venue, msgStats, nil, msgStatsResult)
	if err != nil {
		return 0, err
	}
	// Every server answers msgStats with the legacy 8-byte count;
	// decodeDBStats additionally tolerates an extended payload.
	s, err := decodeDBStats(resp)
	if err != nil {
		return 0, errRemote{msg: err.Error()}
	}
	return s.Mappings, nil
}

// StatsFull returns the server's full state report: database size, oracle
// insert count and persistence state (snapshot coverage, WAL size, last
// compaction). Legacy servers without the extended RPC yield a DBStats
// with just Mappings set.
func (c *Client) StatsFull(ctx context.Context) (DBStats, error) {
	return c.statsFull(ctx, c.venue)
}

func (c *Client) statsFull(ctx context.Context, venue string) (DBStats, error) {
	resp, err := c.roundTrip(ctx, venue, msgStatsFull, nil, msgStatsResult)
	if err != nil {
		if !IsRemote(err) || errors.Is(err, ErrVenueUnsupported) {
			return DBStats{}, err
		}
		// A server predating msgStatsFull rejects the unknown message
		// type; fall back to the count-only RPC it does speak.
		resp, err = c.roundTrip(ctx, venue, msgStats, nil, msgStatsResult)
		if err != nil {
			return DBStats{}, err
		}
	}
	s, err := decodeDBStats(resp)
	if err != nil {
		return DBStats{}, errRemote{msg: err.Error()}
	}
	return s, nil
}

// ErrMetricsUnsupported marks a Metrics call against a server that cannot
// answer it — a binary predating the metrics RPC, or one running with
// observability disabled. It wraps the server's rejection; match with
// errors.Is.
var ErrMetricsUnsupported = errors.New("visualprint client: server does not support the metrics RPC")

// Metrics fetches the server's observability report: request counters,
// latency histograms with quantile summaries (locate and its pipeline
// stages, WAL fsync, snapshots), gauges, and the slow-request log. Calls
// against servers without the RPC return ErrMetricsUnsupported.
func (c *Client) Metrics(ctx context.Context) (obs.Report, error) {
	// Metrics are server-wide, never venue-scoped: always send bare.
	resp, err := c.roundTrip(ctx, "", msgGetMetrics, nil, msgMetricsResult)
	if err != nil {
		if IsRemote(err) {
			// An old server rejects the unknown message type (and a
			// metrics-disabled one rejects the request): either way the
			// RPC is unavailable, reported as the typed sentinel.
			return obs.Report{}, fmt.Errorf("%w: %w", ErrMetricsUnsupported, err)
		}
		return obs.Report{}, err
	}
	var rep obs.Report
	if err := json.Unmarshal(resp, &rep); err != nil {
		return obs.Report{}, errRemote{msg: "bad metrics payload: " + err.Error()}
	}
	return rep, nil
}

// QueryUploadBytes returns the v2 wire size of a query with the given
// number of keypoints — the per-query upload the paper reports as 51.2 KB
// for VisualPrint-ish fingerprints versus 523 KB whole frames.
func QueryUploadBytes(nKeypoints int) int64 {
	return frameOverheadV2 + queryHeaderSize + 10 + int64(nKeypoints)*codec.KeypointWireSize
}
