package server

import (
	"bytes"
	"net"
	"sync"

	"visualprint/internal/codec"
	"visualprint/internal/core"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
)

// decodeKeypoints parses the shared keypoint wire format.
func decodeKeypoints(data []byte) ([]sift.Keypoint, error) {
	return codec.UnmarshalKeypoints(data)
}

// Client is a VisualPrint protocol client. It is safe for concurrent use;
// requests are serialized over the single connection. The byte counters
// feed the Figure 14 bandwidth accounting.
type Client struct {
	mu   sync.Mutex
	conn net.Conn

	sent, received int64
}

// NewClient wraps an established connection (TCP or net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// Dial connects to a VisualPrint server over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// BytesSent returns the total payload bytes uploaded (including framing).
func (c *Client) BytesSent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// BytesReceived returns the total payload bytes downloaded.
func (c *Client) BytesReceived() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.received
}

// roundTrip sends one request frame and reads one response frame.
func (c *Client) roundTrip(typ byte, payload []byte, wantType byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, typ, payload); err != nil {
		return nil, err
	}
	c.sent += int64(len(payload)) + 5
	rt, resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	c.received += int64(len(resp)) + 5
	if rt == msgError {
		return nil, errRemote{msg: string(resp)}
	}
	if rt != wantType {
		return nil, errRemote{msg: "unexpected response type"}
	}
	return resp, nil
}

// FetchOracle downloads the current uniqueness oracle. blobSize is the
// compressed transfer size in bytes (the paper's ~10 MB download).
func (c *Client) FetchOracle() (o *core.Oracle, blobSize int64, err error) {
	resp, err := c.roundTrip(msgGetOracle, nil, msgOracleBlob)
	if err != nil {
		return nil, 0, err
	}
	raw, err := codec.Gunzip(resp)
	if err != nil {
		return nil, 0, err
	}
	o, err = core.Read(bytes.NewReader(raw))
	if err != nil {
		return nil, 0, err
	}
	return o, int64(len(resp)), nil
}

// RefreshOracle brings a previously downloaded oracle up to date. When the
// server still retains the client's version it ships a compressed diff
// (typically a small fraction of the full blob); otherwise the oracle is
// replaced wholesale. The returned oracle is o itself after an incremental
// patch, or a fresh instance after a full refresh.
func (c *Client) RefreshOracle(o *core.Oracle) (updated *core.Oracle, transferBytes int64, incremental bool, err error) {
	var req [8]byte
	v := o.Inserts()
	for i := 0; i < 8; i++ {
		req[i] = byte(v >> (8 * i))
	}
	c.mu.Lock()
	if err := writeFrame(c.conn, msgGetDiff, req[:]); err != nil {
		c.mu.Unlock()
		return nil, 0, false, err
	}
	c.sent += int64(len(req)) + 5
	rt, resp, err := readFrame(c.conn)
	if err != nil {
		c.mu.Unlock()
		return nil, 0, false, err
	}
	c.received += int64(len(resp)) + 5
	c.mu.Unlock()
	switch rt {
	case msgDiffBlob:
		if err := core.ApplyDiff(o, resp); err != nil {
			return nil, 0, false, err
		}
		return o, int64(len(resp)), true, nil
	case msgOracleBlob:
		raw, err := codec.Gunzip(resp)
		if err != nil {
			return nil, 0, false, err
		}
		fresh, err := core.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, 0, false, err
		}
		return fresh, int64(len(resp)), false, nil
	case msgError:
		return nil, 0, false, errRemote{msg: string(resp)}
	default:
		return nil, 0, false, errRemote{msg: "unexpected response type"}
	}
}

// Ingest uploads wardriven keypoint-to-3D mappings; it returns the server's
// total mapping count after the batch.
func (c *Client) Ingest(ms []Mapping) (total int, err error) {
	resp, err := c.roundTrip(msgIngest, encodeMappings(ms), msgIngestAck)
	if err != nil {
		return 0, err
	}
	if len(resp) != 4 {
		return 0, errRemote{msg: "bad ingest ack"}
	}
	return int(resp[0]) | int(resp[1])<<8 | int(resp[2])<<16 | int(resp[3])<<24, nil
}

// Query uploads selected keypoints (with their 2D pixel coordinates) and
// returns the server's 3D localization.
func (c *Client) Query(kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	payload := encodeQuery(intr, codec.MarshalKeypoints(kps))
	resp, err := c.roundTrip(msgQuery, payload, msgQueryResult)
	if err != nil {
		return LocateResult{}, err
	}
	return decodeLocateResult(resp)
}

// Stats returns the server's mapping count.
func (c *Client) Stats() (mappings uint64, err error) {
	resp, err := c.roundTrip(msgStats, nil, msgStatsResult)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errRemote{msg: "bad stats response"}
	}
	for i := 0; i < 8; i++ {
		mappings |= uint64(resp[i]) << (8 * i)
	}
	return mappings, nil
}

// QueryUploadBytes returns the wire size of a query with the given number
// of keypoints — the per-query upload the paper reports as 51.2 KB for
// VisualPrint-ish fingerprints versus 523 KB whole frames.
func QueryUploadBytes(nKeypoints int) int64 {
	return 5 + queryHeaderSize + 10 + int64(nKeypoints)*codec.KeypointWireSize
}
