package server

import (
	"context"
	"encoding/binary"
	"errors"
	"strings"
	"time"
)

// Replication RPCs. These are fleet-internal calls used by repl.Node and
// repl.Sentinel (and exposed for tooling); they are never venue-scoped —
// replication covers the server's default venue — so every request is sent
// venue-bare regardless of the client's pinned venue.

// ReplStatus is one fleet member's self-report (msgReplState).
type ReplStatus struct {
	Role    Role
	Epoch   uint64
	Applied uint64
	// Staleness is how long ago a replica last heard from its primary
	// (zero on the primary).
	Staleness time.Duration
	// Primary is the primary's address as the member knows it.
	Primary string
}

// ReplStatus asks the server for its replication state.
func (c *Client) ReplStatus(ctx context.Context) (ReplStatus, error) {
	resp, err := c.roundTrip(ctx, "", msgReplState, nil, msgReplStateResult)
	if err != nil {
		return ReplStatus{}, err
	}
	if len(resp) < 25 {
		return ReplStatus{}, errRemote{msg: "short repl state response"}
	}
	return ReplStatus{
		Role:      Role(resp[0]),
		Epoch:     binary.LittleEndian.Uint64(resp[1:]),
		Applied:   binary.LittleEndian.Uint64(resp[9:]),
		Staleness: time.Duration(binary.LittleEndian.Uint64(resp[17:])) * time.Millisecond,
		Primary:   string(resp[25:]),
	}, nil
}

// ReplSnapshot requests the full-sync transfer: the primary's serialized
// database state and the WAL offset it covers.
func (c *Client) ReplSnapshot(ctx context.Context) (seq uint64, blob []byte, err error) {
	resp, err := c.roundTrip(ctx, "", msgReplSnapshot, nil, msgReplSnapshotResult)
	if err != nil {
		return 0, nil, err
	}
	if len(resp) < 8 {
		return 0, nil, errRemote{msg: "short repl snapshot response"}
	}
	return binary.LittleEndian.Uint64(resp), resp[8:], nil
}

// ReplBatch is one fetched slice of the primary's WAL.
type ReplBatch struct {
	// FirstSeq is the sequence number of Records[0] (== the requested
	// position; meaningful even when Records is empty).
	FirstSeq uint64
	// Head is the primary's durable record count at response time — the
	// replica's lag is Head - (FirstSeq + len(Records)).
	Head uint64
	// Records are raw WAL record payloads, appended verbatim on the
	// replica so both logs stay byte-identical.
	Records [][]byte
}

// ReplFetch pulls up to max WAL records starting at from, long-polling up
// to wait when the replica is at the head. The from position doubles as
// the replica's acknowledgement: requesting record k acknowledges [0,k).
// id names the requesting replica for the primary's ack bookkeeping.
func (c *Client) ReplFetch(ctx context.Context, from uint64, max int, wait time.Duration, id string) (ReplBatch, error) {
	if max < 0 {
		max = 0
	}
	waitMs := wait.Milliseconds()
	if waitMs < 0 {
		waitMs = 0
	}
	req := make([]byte, 16+len(id))
	binary.LittleEndian.PutUint64(req, from)
	binary.LittleEndian.PutUint32(req[8:], uint32(max))
	binary.LittleEndian.PutUint32(req[12:], uint32(waitMs))
	copy(req[16:], id)
	resp, err := c.roundTrip(ctx, "", msgReplFetch, req, msgReplBatch)
	if err != nil {
		return ReplBatch{}, err
	}
	firstSeq, head, records, err := decodeReplBatch(resp)
	if err != nil {
		return ReplBatch{}, errRemote{msg: err.Error()}
	}
	return ReplBatch{FirstSeq: firstSeq, Head: head, Records: records}, nil
}

// ReplFollow tells the server that, as of epoch, the primary is addr
// (demoting it if it believed otherwise). Rejected with an error when the
// server's epoch is newer.
func (c *Client) ReplFollow(ctx context.Context, epoch uint64, addr string) error {
	req := make([]byte, 8+len(addr))
	binary.LittleEndian.PutUint64(req, epoch)
	copy(req[8:], addr)
	_, err := c.roundTrip(ctx, "", msgReplFollow, req, msgReplAck)
	return err
}

// ReplPromote tells the server to become the primary at epoch. Rejected
// with an error when the server's epoch is newer.
func (c *Client) ReplPromote(ctx context.Context, epoch uint64) error {
	req := make([]byte, 8)
	binary.LittleEndian.PutUint64(req, epoch)
	_, err := c.roundTrip(ctx, "", msgReplPromote, req, msgReplAck)
	return err
}

// Ping performs a liveness round trip. Any server build with the RPC
// answers, replication configured or not.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.roundTrip(ctx, "", msgPing, nil, msgPong)
	if err != nil {
		return err
	}
	if len(resp) != 0 {
		return errRemote{msg: "unexpected pong payload"}
	}
	return nil
}

// IsReplCompacted reports whether a fetch failed because the requested WAL
// position is no longer individually retained on the primary — the signal
// to restart from a full snapshot transfer. The store's typed sentinel
// does not cross the wire (it maps to the generic code), so this matches
// on the preserved message.
func IsReplCompacted(err error) bool {
	var r errRemote
	if !errors.As(err, &r) || r.code != errCodeGeneric {
		return false
	}
	return strings.Contains(r.msg, "already compacted")
}
