package server

import (
	"context"
	"errors"
	"io"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"visualprint/internal/codec"
	"visualprint/internal/testutil"
)

// lifecycleDB builds a database whose pose solves run for a controlled
// number of DE generations (~0.5 ms each, no convergence cutoff, no
// wall-clock budget), so tests can make a Locate effectively endless or
// merely slow. The mappings follow the syntheticDB layout: a tight cluster
// (queries against it reach the pose solver) plus scatter.
func lifecycleDB(t testing.TB, iterations int) (*Database, []Mapping) {
	t.Helper()
	cfg := DefaultDatabaseConfig()
	cfg.Pose.Deadline = 0
	cfg.Pose.Tol = 0
	cfg.Pose.MaxIterations = iterations
	db, err := NewDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ms := syntheticDB(t, 21, 0, 48, 40)
	if err := db.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	return db, ms
}

// endlessIters makes a solve run minutes — every test using it must cancel
// the request (or force-drain the server); assertions then prove the
// cancellation actually cut the work short.
const endlessIters = 500_000

// TestLocateCanceledContext: a pre-canceled context stops Locate before
// any work, typed and matching both the sentinel and the stdlib identity.
func TestLocateCanceledContext(t *testing.T) {
	db, ms := lifecycleDB(t, endlessIters)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := db.Locate(ctx, queryFromMappings(ms, 0, 48), testIntrinsics())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ErrCanceled matching context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("canceled Locate took %v", d)
	}
}

// TestLocateDeadlineMidSolve: a deadline expiring inside the DE loop stops
// the solve within a generation instead of running out the iteration
// budget (which would take minutes at endlessIters).
func TestLocateDeadlineMidSolve(t *testing.T) {
	db, ms := lifecycleDB(t, endlessIters)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := db.Locate(ctx, queryFromMappings(ms, 0, 48), testIntrinsics())
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded matching context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline-bound Locate took %v", d)
	}
}

// TestCancelFreesServerSlot is the acceptance test for request
// cancellation: with a single execution slot occupied by an effectively
// endless solve, canceling the client context must send a cancel frame
// that frees the slot — a second request then completes promptly, minutes
// before the first solve could have finished on its own.
func TestCancelFreesServerSlot(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, ms := lifecycleDB(t, endlessIters)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db, WithMaxInFlight(1))
	s.Log = nil
	t.Cleanup(func() { s.Close() })
	c := dialClient(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, queryFromMappings(ms, 0, 48), testIntrinsics())
		errc <- err
	}()
	// Wait until the endless query actually holds the execution slot.
	for i := 0; len(s.sem) == 0; i++ {
		if i > 500 {
			t.Fatal("query never took the execution slot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query returned %v, want context.Canceled", err)
	}
	// The slot must come free long before the abandoned solve's iteration
	// budget (minutes) could elapse: a 2-keypoint query fails the match
	// gate quickly once admitted.
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), queryFromMappings(ms, 0, 2), testIntrinsics())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTooFewMatches) {
			t.Fatalf("follow-up query returned %v, want ErrTooFewMatches", err)
		}
		t.Logf("slot freed and follow-up served in %v", time.Since(start))
	case <-time.After(30 * time.Second):
		t.Fatal("slot never freed after cancel; follow-up query still queued")
	}
}

// TestDeadlineEnforcedServerSide drives the wire protocol directly: a
// msgRequestEx envelope with a 50 ms deadline around a query whose solve
// would take minutes. The server must answer — typed — shortly after the
// deadline, proving enforcement happens server-side (the test's own
// context never expires).
func TestDeadlineEnforcedServerSide(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, ms := lifecycleDB(t, endlessIters)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	t.Cleanup(func() { s.Close() })

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writePreamble(conn); err != nil {
		t.Fatal(err)
	}
	payload := encodeQuery(testIntrinsics(), codec.MarshalKeypoints(queryFromMappings(ms, 0, 48)))
	if err := writeFrameV2(conn, 7, msgRequestEx, wrapRequestEx(50, msgQuery, payload)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	id, typ, resp, err := readFrameV2(conn)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || typ != msgError {
		t.Fatalf("got frame id=%d type=%d, want id=7 msgError", id, typ)
	}
	werr := decodeErrorPayload(resp)
	if !errors.Is(werr, ErrDeadlineExceeded) || !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("wire error %v, want ErrDeadlineExceeded matching context.DeadlineExceeded", werr)
	}
}

// TestShedUnderBurst is the overload acceptance test: with every execution
// slot busy and a zero-depth queue, requests must be refused with the
// typed ErrOverloaded, and fast — the shed path does no pipeline work, so
// its median wire round trip stays under 10 ms. The slot is occupied
// directly (it is a plain semaphore) rather than by a CPU-burning solve,
// so the measurement isolates the shed path from single-core scheduler
// starvation.
func TestShedUnderBurst(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, ms := lifecycleDB(t, 400)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db, WithMaxInFlight(1), WithQueueDepth(0))
	s.Log = nil
	t.Cleanup(func() { s.Close() })
	c := dialClient(t, s)

	s.sem <- struct{}{} // saturate: every slot taken
	const n = 21
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		_, err := c.Query(context.Background(), queryFromMappings(ms, 0, 2), testIntrinsics())
		lat = append(lat, time.Since(start))
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("burst query %d: got %v, want ErrOverloaded", i, err)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if med := lat[n/2]; med > 10*time.Millisecond {
		t.Errorf("median shed latency %v, want < 10ms (all: %v)", med, lat)
	}
	<-s.sem // release: the server must serve normally again
	if _, err := c.Query(context.Background(), queryFromMappings(ms, 0, 2), testIntrinsics()); !errors.Is(err, ErrTooFewMatches) {
		t.Fatalf("post-overload query returned %v, want ErrTooFewMatches", err)
	}
}

// TestRetryRecoversFromOverload: a client with a retry policy sees through
// a transient overload — its shed request is retried with backoff and
// ultimately gets the server's real answer, while a non-retryable answer
// (ErrTooFewMatches) is never retried.
func TestRetryRecoversFromOverload(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, ms := lifecycleDB(t, endlessIters)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db, WithMaxInFlight(1), WithQueueDepth(0))
	s.Log = nil
	t.Cleanup(func() { s.Close() })

	c, err := Dial(s.Addr().String(), WithRetryPolicy(RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}), WithLogger(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	occupied := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, queryFromMappings(ms, 0, 48), testIntrinsics())
		occupied <- err
	}()
	for i := 0; len(s.sem) == 0; i++ {
		if i > 500 {
			t.Fatal("query never took the execution slot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Free the slot while the retrying query is mid-backoff.
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	_, qerr := c.Query(context.Background(), queryFromMappings(ms, 0, 2), testIntrinsics())
	if !errors.Is(qerr, ErrTooFewMatches) {
		t.Fatalf("retried query returned %v, want ErrTooFewMatches after overload cleared", qerr)
	}
	if err := <-occupied; !errors.Is(err, context.Canceled) {
		t.Fatalf("occupying query returned %v, want context.Canceled", err)
	}
}

// TestShutdownDrains: in-flight work finishes with its response delivered,
// new requests are refused with the typed ErrShuttingDown, and Shutdown
// returns nil on the clean drain.
func TestShutdownDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, ms := lifecycleDB(t, 400) // ~a few hundred ms per solve
	want, wantErr := db.Locate(context.Background(), queryFromMappings(ms, 0, 48), testIntrinsics())
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	want.Generations = 0 // in-process only, not carried on the wire
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	t.Cleanup(func() { s.Close() })
	c := dialClient(t, s)

	type result struct {
		res LocateResult
		err error
	}
	resc := make(chan result, 1)
	go func() {
		res, err := c.Query(context.Background(), queryFromMappings(ms, 0, 48), testIntrinsics())
		resc <- result{res, err}
	}()
	// Wait for the query to be admitted, then drain underneath it.
	for i := 0; ; i++ {
		s.mu.Lock()
		n := s.nreq
		s.mu.Unlock()
		if n > 0 {
			break
		}
		if i > 500 {
			t.Fatal("query never admitted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()
	// Once draining, a fresh request on the still-open connection must be
	// refused with the typed sentinel.
	for i := 0; ; i++ {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			break
		}
		if i > 500 {
			t.Fatal("server never started draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Query(context.Background(), queryFromMappings(ms, 0, 2), testIntrinsics()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("query during drain returned %v, want ErrShuttingDown", err)
	}
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", r.err)
	}
	if r.res != want {
		t.Fatalf("drained query result %+v, want %+v", r.res, want)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("clean Shutdown returned %v", err)
	}
}

// TestShutdownForcedCancelsInFlight: when the drain deadline expires, the
// remaining in-flight request is canceled — its typed ErrCanceled response
// still reaches the client before the connection closes — and Shutdown
// reports the forced drain via ctx.Err().
func TestShutdownForcedCancelsInFlight(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, ms := lifecycleDB(t, endlessIters)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db)
	s.Log = nil
	t.Cleanup(func() { s.Close() })
	c := dialClient(t, s)

	errc := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), queryFromMappings(ms, 0, 48), testIntrinsics())
		errc <- err
	}()
	for i := 0; ; i++ {
		s.mu.Lock()
		n := s.nreq
		s.mu.Unlock()
		if n > 0 {
			break
		}
		if i > 500 {
			t.Fatal("query never admitted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown returned %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("forced Shutdown took %v; in-flight work did not unwind", d)
	}
	if err := <-errc; !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("in-flight query returned %v, want wire ErrCanceled matching context.Canceled", err)
	}
}

// TestDrainTimeoutOption: WithDrainTimeout bounds a deadline-less Shutdown
// the same way an expiring context does.
func TestDrainTimeoutOption(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, ms := lifecycleDB(t, endlessIters)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, db, WithDrainTimeout(200*time.Millisecond))
	s.Log = nil
	t.Cleanup(func() { s.Close() })
	c := dialClient(t, s)

	errc := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), queryFromMappings(ms, 0, 48), testIntrinsics())
		errc <- err
	}()
	for i := 0; ; i++ {
		s.mu.Lock()
		n := s.nreq
		s.mu.Unlock()
		if n > 0 {
			break
		}
		if i > 500 {
			t.Fatal("query never admitted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Shutdown(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain-timeout Shutdown returned %v, want context.DeadlineExceeded", err)
	}
	if err := <-errc; !errors.Is(err, ErrCanceled) {
		t.Fatalf("in-flight query returned %v, want ErrCanceled", err)
	}
}

// TestDeadlineEnvelopeFallback: against a server predating msgRequestEx
// (simulated by a stub speaking the old wire behavior), a deadline-bearing
// client call transparently falls back to a plain request — once — and
// subsequent calls skip the envelope entirely.
func TestDeadlineEnvelopeFallback(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	defer serverEnd.Close()

	var mu sync.Mutex
	typesSeen := []byte{}
	go func() {
		hdr := make([]byte, preambleSize)
		if _, err := io.ReadFull(serverEnd, hdr); err != nil {
			return
		}
		for {
			id, typ, _, err := readFrameV2(serverEnd)
			if err != nil {
				return
			}
			mu.Lock()
			typesSeen = append(typesSeen, typ)
			mu.Unlock()
			if typ == msgRequestEx {
				// Old dispatcher: unknown message type, generic code.
				writeFrameV2(serverEnd, id, msgError, encodeErrorPayload(errors.New("unknown message type 14")))
				continue
			}
			ack := make([]byte, 8)
			writeFrameV2(serverEnd, id, msgStatsResult, ack)
		}
	}()

	c := NewClient(clientEnd, WithLogger(nil))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("Stats against old server: %v", err)
	}
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("second Stats: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []byte{msgRequestEx, msgStats, msgStats}
	if len(typesSeen) != len(want) {
		t.Fatalf("server saw frames %v, want %v", typesSeen, want)
	}
	for i := range want {
		if typesSeen[i] != want[i] {
			t.Fatalf("server saw frames %v, want %v (fallback not sticky?)", typesSeen, want)
		}
	}
}
