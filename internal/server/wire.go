package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"visualprint/internal/mathx"
	"visualprint/internal/pose"
	"visualprint/internal/sift"
)

// Message types of the VisualPrint wire protocol. A v1 frame is
// [uint32 length][uint8 type][payload]; a v2 frame is
// [uint32 length][uint32 requestID][uint8 type][payload]. The length always
// covers everything after itself. Request IDs let a single v2 connection
// carry many in-flight requests; responses carry the ID of the request they
// answer.
const (
	msgGetOracle     byte = 1 // -> gzip oracle blob
	msgIngest        byte = 2 // mappings -> uint32 total count
	msgQuery         byte = 3 // intrinsics + keypoints -> locate result
	msgStats         byte = 4 // -> uint64 mapping count
	msgOracleBlob    byte = 5
	msgIngestAck     byte = 6
	msgQueryResult   byte = 7
	msgStatsResult   byte = 8
	msgGetDiff       byte = 9  // client's oracle version -> diff or full blob
	msgDiffBlob      byte = 10 // incremental oracle update
	msgStatsFull     byte = 11 // -> extended DBStats payload
	msgGetMetrics    byte = 12 // -> JSON obs.Report (metrics, quantiles, slow log)
	msgMetricsResult byte = 13
	msgRequestEx     byte = 14 // [uint32 deadline ms][inner type][inner payload]
	msgCancel        byte = 15 // frame ID names the request to cancel; no payload, no response
	msgVenueEx       byte = 16 // [uint8 name len][venue name][inner type][inner payload]

	// Replication & fleet control (protocol v2, additive). All payloads are
	// little-endian fixed-width fields; addresses are length-unframed UTF-8
	// tails. See DESIGN.md "Replication & failover".
	msgReplState          byte = 17 // -> role/epoch/applied offset/primary addr
	msgReplStateResult    byte = 18 // [u8 role][u64 epoch][u64 applied][u64 staleness ms][addr]
	msgReplSnapshot       byte = 19 // -> full-sync snapshot for a fresh replica
	msgReplSnapshotResult byte = 20 // [u64 seq][db-state blob]
	msgReplFetch          byte = 21 // [u64 fromSeq][u32 max][u32 waitMs][replica id] -> batch
	msgReplBatch          byte = 22 // [u64 firstSeq][u64 head][u32 n][n x (u32 len + record)]
	msgReplFollow         byte = 23 // [u64 epoch][primary addr] — demote/reconfigure
	msgReplPromote        byte = 24 // [u64 epoch] — become primary
	msgReplAck            byte = 25 // empty acknowledgement for follow/promote
	msgPing               byte = 26 // liveness probe, no payload
	msgPong               byte = 27

	// Continuous localization & incremental refresh (protocol v2, additive).
	msgSessionEx     byte = 28 // [u64 session id][inner type][inner payload]
	msgGetDiff2      byte = 29 // like msgGetDiff, but the server may answer msgDiffUnchanged
	msgDiffUnchanged byte = 30 // [u64 inserts] — client's oracle is already current

	// Versioned oracle distribution (protocol v2, additive). See DESIGN.md
	// "Oracle distribution".
	msgOracleSync      byte = 31 // [u64 haveEpoch][u64 haveInserts] -> one of the three below
	msgOracleSyncFull  byte = 32 // [u64 epoch][gzip oracle blob]
	msgOracleSyncDelta byte = 33 // odelta.EncodeChain payload (self-describing epochs)
	msgOracleSyncNone  byte = 34 // [u64 epoch][u64 inserts] — client already current
	msgSubscribeOracle byte = 35 // [u64 haveEpoch] — long-lived epoch subscription
	msgOracleEpoch     byte = 36 // event [u64 epoch][u64 inserts]; first one acks the subscription

	msgError byte = 0x7f
)

// Request lifecycle extensions (protocol v2, additive).
//
// Deadline: a client with a context deadline wraps its request in
// msgRequestEx — a four-byte relative deadline in milliseconds followed by
// the inner request. The server unwraps before dispatch and answers with
// the inner request's normal response type, so the response path is
// unchanged. A server predating the extension rejects msgRequestEx as an
// unknown message type; the client detects that one generic error, marks
// the connection deadline-incapable, and transparently resends the plain
// request (see Client.call). The deadline is relative, not absolute, so
// client/server clock skew never expires a request in flight.
//
// Cancel: msgCancel reuses the v2 frame's request-ID field to name the
// request being canceled and carries no payload. It is fire-and-forget:
// the server cancels the named request's context if it is still in flight
// and never responds. (An old server answers with msgError for the unknown
// type; the client has already forgotten the ID, so the demux loop drops
// that response on the floor.)

// deadlineWireMax caps the encodable relative deadline (~49.7 days); longer
// deadlines are clamped, which is indistinguishable from no deadline at
// request timescales.
const deadlineWireMax = ^uint32(0)

// wrapRequestEx builds a msgRequestEx payload around an inner request.
func wrapRequestEx(deadlineMillis uint32, typ byte, payload []byte) []byte {
	buf := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(buf, deadlineMillis)
	buf[4] = typ
	copy(buf[5:], payload)
	return buf
}

// unwrapRequestEx parses a msgRequestEx payload.
func unwrapRequestEx(payload []byte) (deadlineMillis uint32, typ byte, inner []byte, err error) {
	if len(payload) < 5 {
		return 0, 0, nil, errors.New("server: short requestEx payload")
	}
	return binary.LittleEndian.Uint32(payload), payload[4], payload[5:], nil
}

// Venue envelope (protocol v2, additive).
//
// A client pinned to a venue wraps each request in msgVenueEx — a one-byte
// name length, the venue name, then the inner request — and the server
// dispatches the inner request against that venue's shard set. Nesting order
// is fixed: the deadline envelope (msgRequestEx) is always OUTER and the
// venue envelope INNER, because the server unwraps the deadline before
// dispatch and the venue at dispatch. A server predating the extension
// rejects msgVenueEx as an unknown message type; the client detects that,
// marks the connection venue-incapable (sticky, like the deadline fallback)
// and fails the request with the typed ErrVenueUnsupported — it deliberately
// does NOT resend the plain request, which would silently land on the
// default venue. Requests without the envelope always address the default
// venue, which is how pre-venue clients keep working against a venue-aware
// server.

// maxVenueName caps the wire-encodable venue name (the envelope's length
// field is one byte).
const maxVenueName = 255

// validVenueName reports whether name can ride the wire envelope and double
// as a directory name: non-empty, at most maxVenueName bytes, lowercase
// letters, digits, '-', '_' and '.' only, not starting with '.'. The empty
// string names the default venue and never appears inside an envelope.
func validVenueName(name string) bool {
	if name == "" || len(name) > maxVenueName || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// wrapVenue builds a msgVenueEx payload around an inner request.
func wrapVenue(venue string, typ byte, payload []byte) []byte {
	buf := make([]byte, 2+len(venue)+len(payload))
	buf[0] = byte(len(venue))
	copy(buf[1:], venue)
	buf[1+len(venue)] = typ
	copy(buf[2+len(venue):], payload)
	return buf
}

// unwrapVenue parses a msgVenueEx payload.
func unwrapVenue(payload []byte) (venue string, typ byte, inner []byte, err error) {
	if len(payload) < 2 {
		return "", 0, nil, errors.New("server: short venue envelope")
	}
	n := int(payload[0])
	if len(payload) < 2+n {
		return "", 0, nil, errors.New("server: truncated venue envelope")
	}
	venue = string(payload[1 : 1+n])
	if !validVenueName(venue) {
		return "", 0, nil, fmt.Errorf("server: invalid venue name %q", venue)
	}
	return venue, payload[1+n], payload[2+n:], nil
}

// Session envelope (protocol v2, additive).
//
// A client localizing continuously wraps its queries in msgSessionEx — an
// eight-byte session ID followed by the inner request — and the server
// threads the ID to the tracking subsystem (internal/track) so repeat
// solves warm-start from the session's motion-model prior. Nesting order
// extends the existing chain: deadline (msgRequestEx, outermost) → venue
// (msgVenueEx) → session (msgSessionEx) → plain request. The envelope is a
// pure optimization: a server predating it rejects the unknown type, the
// client marks the connection session-incapable (sticky) and silently
// resends without the envelope — unlike the venue envelope, dropping it
// never changes which data answers the query, only how fast. Session ID 0
// is reserved as "no session" and never encoded.
//
// Oracle refresh fast path: msgGetDiff2 carries the same payload as
// msgGetDiff (the client's oracle insert count), but a server that sees
// the count already matches its live oracle answers with a tiny
// msgDiffUnchanged ack instead of a diff blob — insert counts are
// monotonic, so equal counts mean an unchanged oracle. Against an old
// server the client falls back (sticky) to plain msgGetDiff.

// wrapSession builds a msgSessionEx payload around an inner request.
func wrapSession(sid uint64, typ byte, payload []byte) []byte {
	buf := make([]byte, 9+len(payload))
	binary.LittleEndian.PutUint64(buf, sid)
	buf[8] = typ
	copy(buf[9:], payload)
	return buf
}

// unwrapSession parses a msgSessionEx payload.
func unwrapSession(payload []byte) (sid uint64, typ byte, inner []byte, err error) {
	if len(payload) < 9 {
		return 0, 0, nil, errors.New("server: short session envelope")
	}
	sid = binary.LittleEndian.Uint64(payload)
	if sid == 0 {
		return 0, 0, nil, errors.New("server: session id 0 is reserved")
	}
	return sid, payload[8], payload[9:], nil
}

// Versioned oracle sync (protocol v2, additive).
//
// msgOracleSync carries the version the client holds — the epoch stamped by
// the engine on every ingest batch plus the oracle insert count, both zero
// for "nothing yet" — and the server answers with the cheapest transfer
// that makes the client current: msgOracleSyncNone (already current, both
// coordinates matched), msgOracleSyncDelta (an odelta chain from the
// retained per-epoch ring), or msgOracleSyncFull (full blob, for clients
// outside the delta window). msgSubscribeOracle opens a long-lived
// subscription on the multiplexed v2 connection: the server pushes a
// msgOracleEpoch event under the subscription's request ID on every epoch
// bump (coalescing intermediate epochs — events are cumulative version
// announcements, not increments), starting with an immediate event that
// doubles as the subscription ack. The subscription ends with a terminal
// msgError when the connection drains or the client cancels it
// (msgCancel on the subscription ID). Old servers reject all four request
// types as unknown; the client's capability probe records that per
// connection generation and falls back to the legacy fetch/refresh ladder.

// encodeOracleVersion packs a (epoch, inserts) version identity — the
// msgOracleSync request and msgOracleSyncNone / msgOracleEpoch payloads.
func encodeOracleVersion(epoch, inserts uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, epoch)
	binary.LittleEndian.PutUint64(buf[8:], inserts)
	return buf
}

// decodeOracleVersion parses an encodeOracleVersion payload.
func decodeOracleVersion(data []byte) (epoch, inserts uint64, err error) {
	if len(data) != 16 {
		return 0, 0, fmt.Errorf("server: bad oracle version payload size %d", len(data))
	}
	return binary.LittleEndian.Uint64(data), binary.LittleEndian.Uint64(data[8:]), nil
}

// encodeOracleSyncFull prefixes a gzip oracle blob with the epoch it
// represents.
func encodeOracleSyncFull(epoch uint64, blob []byte) []byte {
	buf := make([]byte, 8+len(blob))
	binary.LittleEndian.PutUint64(buf, epoch)
	copy(buf[8:], blob)
	return buf
}

// decodeOracleSyncFull parses an encodeOracleSyncFull payload.
func decodeOracleSyncFull(data []byte) (epoch uint64, blob []byte, err error) {
	if len(data) < 8 {
		return 0, nil, errors.New("server: short oracle sync payload")
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

// maxFrameSize bounds a single protocol frame (oracle blobs dominate).
const maxFrameSize = 1 << 30

// Protocol version negotiation. A v2 client opens its connection with a
// five-byte preamble: protoMagic (little-endian) followed by a version
// byte. The magic is deliberately larger than maxFrameSize, so the first
// four bytes of a connection are unambiguous: they either decode to the
// magic (a versioned client) or to a valid v1 frame length (a legacy
// client, which the server keeps serving with ID-less framing).
const (
	protoMagic    uint32 = 0xfe325056 // "VP2\xfe" when read little-endian
	protoVersion2 byte   = 2
)

// preambleSize is the on-wire size of the v2 connection preamble.
const preambleSize = 5

// writePreamble announces protocol v2 on a fresh connection.
func writePreamble(w io.Writer) error {
	var buf [preambleSize]byte
	binary.LittleEndian.PutUint32(buf[:4], protoMagic)
	buf[4] = protoVersion2
	_, err := w.Write(buf[:])
	return err
}

// Per-frame byte overhead of each framing version (length prefix + header),
// used by the client byte counters and the upload-size model.
const (
	frameOverheadV1 = 5
	frameOverheadV2 = 9
)

// writeFrame writes one protocol frame as a single Write call: header and
// payload combined. A single write avoids interleaving hazards and,
// critically, never issues a zero-length Write — net.Pipe (used by the
// in-process transport) treats a 0-byte write as a rendezvous that blocks
// until a reader arrives, which would deadlock empty-payload requests.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrameSize {
		return errors.New("server: frame too large")
	}
	buf := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)+1))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one v1 protocol frame.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	return readFrameBody(r, binary.LittleEndian.Uint32(hdr[:]))
}

// readFrameBody finishes reading a v1 frame whose length prefix has already
// been consumed (the server's version sniffer reads it while deciding which
// framing a connection speaks).
func readFrameBody(r io.Reader, n uint32) (typ byte, payload []byte, err error) {
	if n == 0 || n > maxFrameSize {
		return 0, nil, fmt.Errorf("server: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// writeFrameV2 writes one v2 frame — [uint32 length][uint32 id][uint8
// type][payload] — as a single Write, for the same interleaving and
// zero-length-write reasons as writeFrame.
func writeFrameV2(w io.Writer, id uint32, typ byte, payload []byte) error {
	if len(payload)+5 > maxFrameSize {
		return errors.New("server: frame too large")
	}
	buf := make([]byte, frameOverheadV2+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)+5))
	binary.LittleEndian.PutUint32(buf[4:8], id)
	buf[8] = typ
	copy(buf[9:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrameV2 reads one v2 protocol frame.
func readFrameV2(r io.Reader) (id uint32, typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 5 || n > maxFrameSize {
		return 0, 0, nil, fmt.Errorf("server: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, err
	}
	return binary.LittleEndian.Uint32(buf[:4]), buf[4], buf[5:], nil
}

const mappingWireSize = sift.DescriptorSize + 3*8

// encodeMappings serializes an ingest payload.
func encodeMappings(ms []Mapping) []byte {
	buf := make([]byte, 4+len(ms)*mappingWireSize)
	binary.LittleEndian.PutUint32(buf, uint32(len(ms)))
	off := 4
	for i := range ms {
		copy(buf[off:], ms[i].Desc[:])
		off += sift.DescriptorSize
		for _, f := range []float64{ms[i].Pos.X, ms[i].Pos.Y, ms[i].Pos.Z} {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(f))
			off += 8
		}
	}
	return buf
}

// decodeMappings parses an ingest payload.
func decodeMappings(data []byte) ([]Mapping, error) {
	if len(data) < 4 {
		return nil, errors.New("server: short ingest payload")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) != n*mappingWireSize {
		return nil, fmt.Errorf("server: ingest payload %d bytes, want %d", len(data), n*mappingWireSize)
	}
	ms := make([]Mapping, n)
	off := 0
	for i := 0; i < n; i++ {
		copy(ms[i].Desc[:], data[off:off+sift.DescriptorSize])
		off += sift.DescriptorSize
		ms[i].Pos.X = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		ms[i].Pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		ms[i].Pos.Z = math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:]))
		off += 24
	}
	return ms, nil
}

// seqMappingWireSize is one shard-engine WAL record entry: the venue-global
// sequence number followed by the mapping.
const seqMappingWireSize = 8 + mappingWireSize

// encodeSeqMappings serializes a shard-engine ingest batch (WAL only — seq
// tags never ride the client wire; the Router assigns them server-side).
func encodeSeqMappings(ms []Mapping, seqs []uint64) []byte {
	buf := make([]byte, 4+len(ms)*seqMappingWireSize)
	binary.LittleEndian.PutUint32(buf, uint32(len(ms)))
	off := 4
	for i := range ms {
		binary.LittleEndian.PutUint64(buf[off:], seqs[i])
		off += 8
		copy(buf[off:], ms[i].Desc[:])
		off += sift.DescriptorSize
		for _, f := range []float64{ms[i].Pos.X, ms[i].Pos.Y, ms[i].Pos.Z} {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(f))
			off += 8
		}
	}
	return buf
}

// decodeSeqMappings parses a shard-engine WAL record.
func decodeSeqMappings(data []byte) ([]Mapping, []uint64, error) {
	if len(data) < 4 {
		return nil, nil, errors.New("server: short seq ingest payload")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) != n*seqMappingWireSize {
		return nil, nil, fmt.Errorf("server: seq ingest payload %d bytes, want %d", len(data), n*seqMappingWireSize)
	}
	ms := make([]Mapping, n)
	seqs := make([]uint64, n)
	off := 0
	for i := 0; i < n; i++ {
		seqs[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
		copy(ms[i].Desc[:], data[off:off+sift.DescriptorSize])
		off += sift.DescriptorSize
		ms[i].Pos.X = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		ms[i].Pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		ms[i].Pos.Z = math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:]))
		off += 24
	}
	return ms, seqs, nil
}

const queryHeaderSize = 4 + 4 + 8 + 8

// encodeQuery serializes a localization query: intrinsics header followed
// by the keypoint wire format shared with internal/codec (which includes
// the 2D pixel coordinate of each keypoint — the "keypoint-plus-2D
// coordinate pairs" of the paper).
func encodeQuery(intr pose.Intrinsics, kpPayload []byte) []byte {
	buf := make([]byte, queryHeaderSize, queryHeaderSize+len(kpPayload))
	binary.LittleEndian.PutUint32(buf, uint32(intr.W))
	binary.LittleEndian.PutUint32(buf[4:], uint32(intr.H))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(intr.FovX))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(intr.FovY))
	return append(buf, kpPayload...)
}

// decodeQueryHeader parses the intrinsics header, returning the keypoint
// payload remainder.
func decodeQueryHeader(data []byte) (pose.Intrinsics, []byte, error) {
	if len(data) < queryHeaderSize {
		return pose.Intrinsics{}, nil, errors.New("server: short query payload")
	}
	intr := pose.Intrinsics{
		W:    int(binary.LittleEndian.Uint32(data)),
		H:    int(binary.LittleEndian.Uint32(data[4:])),
		FovX: math.Float64frombits(binary.LittleEndian.Uint64(data[8:])),
		FovY: math.Float64frombits(binary.LittleEndian.Uint64(data[16:])),
	}
	return intr, data[queryHeaderSize:], nil
}

// dbStatsWireSize is the extended stats payload served for msgStatsFull:
// seven uint64/int64 fields plus the persistence flag. msgStats keeps its
// original 8-byte count-only response — deployed clients require exactly
// that length — and decodeDBStats accepts both forms.
const dbStatsWireSize = 7*8 + 1

// encodeDBStats serializes a stats response.
func encodeDBStats(s DBStats) []byte {
	buf := make([]byte, dbStatsWireSize)
	binary.LittleEndian.PutUint64(buf[0:], s.Mappings)
	binary.LittleEndian.PutUint64(buf[8:], s.DatabaseBytes)
	binary.LittleEndian.PutUint64(buf[16:], s.OracleInserts)
	binary.LittleEndian.PutUint64(buf[24:], s.OracleSnapshotBytes)
	binary.LittleEndian.PutUint64(buf[32:], s.SnapshotSeq)
	binary.LittleEndian.PutUint64(buf[40:], s.WALBytes)
	binary.LittleEndian.PutUint64(buf[48:], uint64(s.LastCompactionUnix))
	if s.Persistent {
		buf[56] = 1
	}
	return buf
}

// decodeDBStats parses a stats response, tolerating the legacy 8-byte
// count-only payload.
func decodeDBStats(data []byte) (DBStats, error) {
	switch len(data) {
	case 8:
		return DBStats{Mappings: binary.LittleEndian.Uint64(data)}, nil
	case dbStatsWireSize:
		return DBStats{
			Mappings:            binary.LittleEndian.Uint64(data[0:]),
			DatabaseBytes:       binary.LittleEndian.Uint64(data[8:]),
			OracleInserts:       binary.LittleEndian.Uint64(data[16:]),
			OracleSnapshotBytes: binary.LittleEndian.Uint64(data[24:]),
			SnapshotSeq:         binary.LittleEndian.Uint64(data[32:]),
			WALBytes:            binary.LittleEndian.Uint64(data[40:]),
			LastCompactionUnix:  int64(binary.LittleEndian.Uint64(data[48:])),
			Persistent:          data[56] == 1,
		}, nil
	default:
		return DBStats{}, fmt.Errorf("server: bad stats payload size %d", len(data))
	}
}

// encodeLocateResult serializes a query response.
func encodeLocateResult(r LocateResult) []byte {
	buf := make([]byte, 5*8+4)
	off := 0
	for _, f := range []float64{r.Position.X, r.Position.Y, r.Position.Z, r.Yaw, r.Residual} {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(f))
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(r.Matched))
	return buf
}

// decodeLocateResult parses a query response.
func decodeLocateResult(data []byte) (LocateResult, error) {
	if len(data) != 5*8+4 {
		return LocateResult{}, errors.New("server: bad locate result size")
	}
	var r LocateResult
	fs := make([]float64, 5)
	for i := range fs {
		fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	r.Position = mathx.Vec3{X: fs[0], Y: fs[1], Z: fs[2]}
	r.Yaw, r.Residual = fs[3], fs[4]
	r.Matched = int(binary.LittleEndian.Uint32(data[40:]))
	return r, nil
}
