// Package server implements the VisualPrint cloud service and its client
// library. The service holds the two server-side structures of the paper's
// section 3: the LSH-indexed keypoint-to-3D-position lookup table and the
// locality-sensitive Bloom filter uniqueness oracle (which clients download
// and query locally). The wire protocol is a minimal length-prefixed binary
// framing over TCP; an in-process transport (net.Pipe) serves tests.
package server

import (
	"cmp"
	"context"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"visualprint/internal/bloom"
	"visualprint/internal/cluster"
	"visualprint/internal/core"
	"visualprint/internal/lsh"
	"visualprint/internal/mathx"
	"visualprint/internal/obs"
	"visualprint/internal/odelta"
	"visualprint/internal/pose"
	"visualprint/internal/scene"
	"visualprint/internal/sift"
	"visualprint/internal/store"
)

// DatabaseConfig configures the server-side structures.
type DatabaseConfig struct {
	LSH    lsh.Params
	Oracle core.Params
	// NeighborsPerKeypoint is n in the paper's |K|*n candidate retrieval.
	NeighborsPerKeypoint int
	// MaxMatchDistSq rejects LSH candidates farther (squared Euclidean)
	// than this from the query descriptor; 0 accepts everything. Gating
	// matters: ungated far matches scatter 3D candidates across the venue
	// and poison the clustering step.
	MaxMatchDistSq int
	Cluster        cluster.Params
	Pose           pose.Options
	// LocateParallelism bounds the worker pool that fans per-keypoint LSH
	// candidate retrieval out during Locate. 0 means GOMAXPROCS; 1 forces
	// the serial path. Queries below parallelLocateThreshold keypoints are
	// always processed serially — goroutine fan-out costs more than it
	// saves on small queries.
	LocateParallelism int
	// WALCompactBytes is the write-ahead-log size past which the
	// background snapshotter folds the log into a fresh snapshot (only
	// meaningful after Open; 0 means defaultWALCompactBytes). Compaction
	// serializes the full database under a lock that stalls Ingest, so this
	// knob also tunes the size of periodic ingest latency spikes: smaller
	// means more frequent but shorter stalls. Locates are unaffected —
	// they read pinned RCU snapshots and take no lock (see rcu.go).
	WALCompactBytes int64
	// OracleSnapshotBudgetBytes caps the memory the database is expected
	// to spend on retained oracle download versions (the diff-serving
	// clones). Exceeding it is not fatal — old versions still age out of
	// the window — but it is logged, since each clone is a full filter
	// copy (~190 MB at the paper's 2.5M-descriptor sizing). 0 means
	// defaultOracleSnapshotBudget.
	OracleSnapshotBudgetBytes int64
	// OracleDeltaWindow bounds the per-epoch delta ring serving versioned
	// OracleSync requests: how many recent ingest batches stay answerable
	// as compressed cell deltas before a client must full-sync. 0 means
	// defaultOracleDeltaWindow; negative disables delta retention.
	OracleDeltaWindow int
	// OracleDeltaBudgetBytes caps the delta ring's total payload bytes
	// (0 means defaultOracleDeltaBudget). The ring evicts oldest-first
	// past either bound.
	OracleDeltaBudgetBytes int64
}

// defaultWALCompactBytes triggers compaction once the WAL outgrows 64 MB —
// a few hundred thousand mapping records, well past the point where
// replaying the log dominates cold-start time.
const defaultWALCompactBytes = 64 << 20

// defaultOracleSnapshotBudget bounds retained oracle clones at 1 GB, which
// accommodates the full maxOracleSnapshots window at paper scale with
// headroom; simulated-scale databases never approach it.
const defaultOracleSnapshotBudget = 1 << 30

// DefaultDatabaseConfig returns a configuration scaled for the simulated
// venues (TestParams-sized oracle; swap in core.DefaultParams for the
// paper's 2.5M-descriptor scale).
func DefaultDatabaseConfig() DatabaseConfig {
	return DatabaseConfig{
		LSH:                  lsh.DefaultParams(),
		Oracle:               core.TestParams(),
		NeighborsPerKeypoint: 2,
		MaxMatchDistSq:       60000,
		Cluster:              cluster.DefaultParams(),
		Pose:                 pose.DefaultOptions(),
	}
}

// Database is the cloud service state. All methods are safe for concurrent
// use. A Database is purely in-memory until Open attaches a data directory;
// from then on every Ingest is write-ahead logged and the map survives a
// crash (see persist.go).
type Database struct {
	cfg DatabaseConfig

	// cur is the published immutable read snapshot (see rcu.go): the LSH
	// index, positions, oracle, bounds and sequence tags every reader uses,
	// swapped wholesale by the write path. Readers pin it lock-free via
	// pinView; mu is never needed to query.
	cur atomic.Pointer[dbView]
	// shadow is the off-line generation the next ingest batch mutates
	// before publishing; nil after a wholesale replace (open, reset,
	// full-sync), lazily re-cloned from cur by the next batch. Guarded by
	// mu.
	shadow *dbView

	// mu guards the write path (ingest ordering, recovery, the oracle
	// snapshot window) and the store fields. The query-side state moved
	// into cur; no read RPC takes this lock anymore.
	mu sync.RWMutex
	// log receives persistence and resource warnings (WAL truncation,
	// oracle-snapshot budget overruns); set via SetLogger, defaulting to
	// the process logger (obs.Default). Serve wires it to the server's
	// logger when still unset. Every logf call site already holds mu, so
	// SetLogger taking the write lock keeps late wiring race-free.
	log    *obs.Logger
	logSet bool
	// seqMode marks a shard engine (NewShardDatabase): every mapping
	// carries a venue-global sequence number assigned by the Router, kept
	// in the view's seqs parallel to positions. The sequence is the
	// venue-wide insertion order — the tie-break that lets a scatter-gather
	// query reproduce a single database's candidate ranking exactly (see
	// CandidateSets). Immutable after construction.
	seqMode bool
	// snapshots retains clones of the oracle at versions clients have
	// downloaded (keyed by insert count), so later refreshes can be served
	// as compressed diffs instead of full blobs. Bounded to the most
	// recent few versions and accounted against
	// OracleSnapshotBudgetBytes.
	snapshots  map[uint64]*core.Oracle
	snapOrder  []uint64
	snapBytes  int64
	snapWarned bool
	// deltaRing retains the per-epoch odelta records (consecutive epochs,
	// oldest first) serving versioned OracleSync requests; deltaBytes
	// accounts their payload total against OracleDeltaBudgetBytes. Guarded
	// by mu; cleared on recovery and reset (continuity would be broken).
	deltaRing  []*odelta.Record
	deltaBytes int64
	// epochCh is closed and replaced on every epoch bump — the wakeup
	// primitive behind oracle subscriptions (see EpochSignal). Guarded by
	// mu.
	epochCh chan struct{}
	// lastBlobLen caches the most recent gzip full-blob size, seeding the
	// delta-vs-full cost comparison in OracleSyncSince so small-delta
	// answers never pay a gzip just to prove they are cheap.
	lastBlobLen atomic.Int64

	// Persistence (nil/zero when running in-memory; see Open).
	store    *store.Store
	dataDir  string // last directory Open attached; survives Close so a failed full-sync can retry
	snapKick chan struct{}
	quit     chan struct{}
	snapDone chan struct{}

	// repl, when non-nil, is the fleet control block (see repl.go): the
	// ingest path advances its durable offset and, on a semi-sync primary,
	// withholds the ack until enough replicas confirm. Installed once by
	// NewReplState before the database serves traffic; read without mu.
	repl *ReplState

	// Observability (nil until EnableObs; see obs.go). Installed once,
	// never swapped, loaded atomically so lock-free readers can record.
	met        atomic.Pointer[dbMetrics]
	recoverDur time.Duration
}

// SetLogger routes the database's persistence and resource warnings
// through l (nil silences them). Defaults to the process logger
// (obs.Default) when never called.
func (db *Database) SetLogger(l *obs.Logger) {
	if l == nil {
		l = obs.Discard
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.log = l
	db.logSet = true
}

// setLoggerDefault wires l only when SetLogger has never been called.
func (db *Database) setLoggerDefault(l *obs.Logger) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.logSet {
		db.log = l
		db.logSet = true
	}
}

// logf logs one warning. Callers must hold db.mu (either side).
func (db *Database) logf(format string, args ...any) {
	if db.log != nil {
		db.log.Warnf(format, args...)
		return
	}
	if !db.logSet {
		obs.Default().Warnf(format, args...)
	}
}

// maxOracleSnapshots bounds retained download versions. Each snapshot is a
// full filter clone (megabytes at simulated scale, ~190 MB at the paper's
// 2.5M-descriptor sizing), so the window stays small; clients older than
// the window transparently fall back to a full download.
const maxOracleSnapshots = 4

// NewDatabase creates an empty database.
func NewDatabase(cfg DatabaseConfig) (*Database, error) {
	if cfg.NeighborsPerKeypoint <= 0 {
		cfg.NeighborsPerKeypoint = 2
	}
	if cfg.WALCompactBytes <= 0 {
		cfg.WALCompactBytes = defaultWALCompactBytes
	}
	if cfg.OracleSnapshotBudgetBytes <= 0 {
		cfg.OracleSnapshotBudgetBytes = defaultOracleSnapshotBudget
	}
	v, err := newEmptyView(cfg)
	if err != nil {
		return nil, err
	}
	db := &Database{
		cfg:       cfg,
		snapshots: map[uint64]*core.Oracle{},
		epochCh:   make(chan struct{}),
	}
	db.cur.Store(v)
	return db, nil
}

// NewShardDatabase creates an empty shard engine: a Database whose mappings
// are tagged with router-assigned venue-global sequence numbers (IngestSeq
// replaces Ingest). Everything else — WAL, snapshots, oracle, Locate —
// behaves identically; the Router composes several of these into one venue.
func NewShardDatabase(cfg DatabaseConfig) (*Database, error) {
	db, err := NewDatabase(cfg)
	if err != nil {
		return nil, err
	}
	db.seqMode = true
	return db, nil
}

// Mapping is one wardriven keypoint-to-3D-position record.
type Mapping struct {
	Desc [sift.DescriptorSize]byte
	Pos  mathx.Vec3
}

// Ingest incorporates wardriven mappings: each descriptor is added to the
// lookup table and the uniqueness oracle — "in constant time and memory"
// per record.
//
// On a durable database (Open), the batch is write-ahead logged before it
// is applied, and Ingest returns only once the record has reached stable
// storage — so an acknowledged batch is always recovered, and a crash can
// only lose batches whose Ingest had not yet returned. The WAL reservation
// and the in-memory apply share the database lock, which pins replay order
// to apply order and makes recovery bit-identical; the fsync wait happens
// after the lock is released, so concurrent ingests batch into shared
// group commits instead of serializing on the disk.
//
// The context gates admission only: a batch whose context is already dead
// is rejected up front (typed ErrCanceled/ErrDeadlineExceeded), but once
// the batch has been logged and applied the ingest runs to completion —
// aborting between the WAL append and the ack would leave the caller
// unable to tell whether the batch survives a crash.
func (db *Database) Ingest(ctx context.Context, ms []Mapping) error {
	if err := ctx.Err(); err != nil {
		return ctxError(err)
	}
	start := time.Now()
	m, err := db.ingest(ms, nil)
	m.ingests.Inc()
	m.ingestNs.ObserveSince(start)
	if err != nil {
		m.ingestErrors.Inc()
	}
	return err
}

// IngestSeq is Ingest for a shard engine (NewShardDatabase): each mapping
// carries its router-assigned venue-global sequence number. seqs must be
// parallel to ms and strictly increasing, and every seq must exceed the
// shard's current MaxSeq — the Router assigns monotonically, so replayed or
// reordered batches are caller bugs, rejected before the WAL reservation.
func (db *Database) IngestSeq(ctx context.Context, ms []Mapping, seqs []uint64) error {
	if err := ctx.Err(); err != nil {
		return ctxError(err)
	}
	start := time.Now()
	m, err := db.ingest(ms, seqs)
	m.ingests.Inc()
	m.ingestNs.ObserveSince(start)
	if err != nil {
		m.ingestErrors.Inc()
	}
	return err
}

// ingest is the body of Ingest/IngestSeq (seqs nil for the former). It
// returns the instrument set it resolved under the lock so the wrapper can
// book the outcome after unlocking.
func (db *Database) ingest(ms []Mapping, seqs []uint64) (*dbMetrics, error) {
	db.mu.Lock()
	m := db.metrics()
	// Reject malformed batches before the WAL reservation: applyLocked
	// must not be able to fail after the record is logged, or replay would
	// diverge from the live state.
	if db.cfg.LSH.Dim != sift.DescriptorSize || db.cfg.Oracle.LSH.Dim != sift.DescriptorSize {
		db.mu.Unlock()
		return m, errRemote{msg: "database descriptor dimension mismatch"}
	}
	// cur is stable while mu is held: only mu.Lock holders publish.
	cv := db.cur.Load()
	if db.seqMode && seqs == nil {
		// A plain Ingest on a shard engine self-assigns the next sequence
		// run. Single-shard deployments (a replicated fleet's default venue)
		// take this path; in a router-fanned venue the Router assigns
		// venue-global sequences through IngestSeq instead, and its
		// monotonic allocation never interleaves with direct Ingest calls.
		seqs = make([]uint64, len(ms))
		for i := range seqs {
			seqs[i] = cv.maxSeq + uint64(i) + 1
		}
	}
	if !db.seqMode && seqs != nil {
		db.mu.Unlock()
		return m, errRemote{msg: "IngestSeq requires a shard engine (NewShardDatabase)"}
	}
	if seqs != nil {
		if len(seqs) != len(ms) {
			db.mu.Unlock()
			return m, errRemote{msg: "seq batch length mismatch"}
		}
		last := cv.maxSeq
		for _, s := range seqs {
			if s <= last {
				db.mu.Unlock()
				return m, errRemote{msg: "non-monotonic shard sequence"}
			}
			last = s
		}
	}
	var commit *store.Commit
	var st *store.Store
	var kick chan struct{}
	var replTarget uint64
	if db.store != nil {
		st, kick = db.store, db.snapKick
		if db.seqMode {
			commit = st.Append(encodeSeqMappings(ms, seqs))
		} else {
			commit = st.Append(encodeMappings(ms))
		}
		// The store seq after the reservation is this batch's replication
		// offset target: a replica acknowledging it has the batch.
		replTarget = st.Seq()
	}
	err := db.applyPublishLocked(ms, seqs)
	if err == nil {
		m.mappings.Set(int64(len(db.cur.Load().positions)))
	}
	db.mu.Unlock()
	if err != nil {
		return m, err
	}
	if commit == nil {
		return m, nil
	}
	tWait := time.Now()
	err = commit.Wait()
	m.trace.ObserveStage(obs.StageWALAppend, time.Since(tWait))
	if err != nil {
		return m, err
	}
	if rs := db.repl; rs != nil {
		// Durable locally: wake replica long-polls, then (on a semi-sync
		// primary) hold the ack until enough of them have the batch.
		rs.noteDurable()
		if err := rs.waitSynced(replTarget); err != nil {
			return m, err
		}
	}
	if st.WALBytes() >= db.cfg.WALCompactBytes {
		select {
		case kick <- struct{}{}:
		default: // a compaction is already queued
		}
	}
	return m, nil
}

// Len returns the number of ingested mappings.
func (db *Database) Len() int {
	v, t := db.pinView()
	defer db.unpin(v, t)
	return len(v.positions)
}

// Bounds returns the axis-aligned bounding box of ingested positions.
func (db *Database) Bounds() (lo, hi mathx.Vec3, ok bool) {
	v, t := db.pinView()
	defer db.unpin(v, t)
	return v.lo, v.hi, v.hasBounds
}

// MaxSeq returns the highest venue-global sequence number applied to a shard
// engine (0 when empty or not in shard mode). The Router seeds its sequence
// counter from max over shards after recovery.
func (db *Database) MaxSeq() uint64 {
	v, t := db.pinView()
	defer db.unpin(v, t)
	return v.maxSeq
}

// OracleClone returns a deep copy of the live oracle taken from a pinned
// read snapshot, safe against concurrent Ingest — the building block the
// Router uses to assemble a venue-wide oracle from per-shard oracles via
// core.Merge.
func (db *Database) OracleClone() (*core.Oracle, error) {
	v, t := db.pinView()
	defer db.unpin(v, t)
	return v.oracle.Clone()
}

// OracleBlob serializes the current uniqueness oracle, gzip-compressed —
// the payload a client downloads on first start ("approximately 10MB" in
// the paper's testing). The served version is snapshotted so subsequent
// refreshes from this client can be answered with OracleDiff.
func (db *Database) OracleBlob() ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.snapshotLocked(); err != nil {
		return nil, err
	}
	// mu.Lock holders see a stable cur (only mu.Lock holders publish), and
	// the published oracle is immutable, so serializing it here races with
	// nothing — concurrent lock-free readers only read it too.
	return bloom.GzipBytes(db.cur.Load().oracle)
}

// snapshotLocked records a clone of the oracle at its current version,
// keeping the retained-clone byte total accounted against the configured
// budget: crossing it logs a warning (each clone is a full filter copy, so
// silent growth here is how a server quietly doubles its RAM).
func (db *Database) snapshotLocked() error {
	oracle := db.cur.Load().oracle
	v := oracle.Inserts()
	if _, ok := db.snapshots[v]; ok {
		return nil
	}
	clone, err := oracle.Clone()
	if err != nil {
		return err
	}
	db.snapshots[v] = clone
	db.snapOrder = append(db.snapOrder, v)
	db.snapBytes += clone.MemoryBytes()
	for len(db.snapOrder) > maxOracleSnapshots {
		evict := db.snapOrder[0]
		db.snapBytes -= db.snapshots[evict].MemoryBytes()
		delete(db.snapshots, evict)
		db.snapOrder = db.snapOrder[1:]
	}
	if budget := db.cfg.OracleSnapshotBudgetBytes; db.snapBytes > budget {
		if !db.snapWarned {
			db.snapWarned = true
			db.logf("server: %d retained oracle snapshots hold %.1f MB, over the %.1f MB budget — consider lowering the snapshot window or raising OracleSnapshotBudgetBytes",
				len(db.snapOrder), float64(db.snapBytes)/1e6, float64(budget)/1e6)
		}
	} else {
		db.snapWarned = false
	}
	return nil
}

// OracleDiff returns a compressed delta from the client's version
// (identified by its insert count) to the current oracle — the incremental
// refresh the paper proposes instead of re-downloading the filters. ok is
// false when the server no longer retains that version; the caller should
// fall back to OracleBlob.
func (db *Database) OracleDiff(sinceInserts uint64) (diff []byte, ok bool, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	old, found := db.snapshots[sinceInserts]
	if !found {
		return nil, false, nil
	}
	d, err := core.Diff(old, db.cur.Load().oracle)
	if err != nil {
		return nil, false, err
	}
	if err := db.snapshotLocked(); err != nil { // the patched version is now live
		return nil, false, err
	}
	return d, true, nil
}

// OracleInserts returns the live oracle's insert counter from a pinned
// read snapshot — the version a client cites in refresh requests, and the
// equality test behind the msgGetDiff2 not-modified fast path.
func (db *Database) OracleInserts() uint64 {
	v, t := db.pinView()
	defer db.unpin(v, t)
	return v.oracle.Inserts()
}

// Oracle exposes the live oracle for in-process use (the public API's
// single-process mode).
//
// Contract: the pointer is read from the currently published snapshot, and
// that snapshot stays valid only until the next Ingest retires it — after
// which the write path mutates the very filter words the oracle's query
// path reads, which is a data race. Only hold the pointer where no Ingest
// can run concurrently (e.g. the single-threaded wardrive pipeline), or use
// the gated wrappers below — SelectUnique and Uniqueness — which run the
// oracle read entirely inside a pinned snapshot and are what the in-process
// benchmarks use.
func (db *Database) Oracle() *core.Oracle {
	v, t := db.pinView()
	defer db.unpin(v, t)
	return v.oracle
}

// SelectUnique runs the oracle's keypoint filtering (the client-side
// fingerprint selection) against a pinned read snapshot, so it is safe
// against concurrent Ingest — unlike calling Oracle().SelectUnique
// directly — and takes no lock.
func (db *Database) SelectUnique(kps []sift.Keypoint, n int) ([]sift.Keypoint, error) {
	v, t := db.pinView()
	defer db.unpin(v, t)
	start := time.Now()
	sel, err := v.oracle.SelectUnique(kps, n)
	db.metrics().trace.ObserveStage(obs.StageOracleScore, time.Since(start))
	return sel, err
}

// Uniqueness queries a pinned snapshot's oracle for one descriptor's
// estimated global count (see SelectUnique).
func (db *Database) Uniqueness(desc []byte) (uint32, error) {
	v, t := db.pinView()
	defer db.unpin(v, t)
	start := time.Now()
	u, err := v.oracle.Uniqueness(desc)
	db.metrics().trace.ObserveStage(obs.StageOracleScore, time.Since(start))
	return u, err
}

// DBStats is the server-state report behind the Stats RPC.
type DBStats struct {
	// Mappings is the ingested record count.
	Mappings uint64
	// DatabaseBytes estimates the in-memory footprint of the lookup
	// table, the positions and the live oracle (retained download clones
	// excluded — see OracleSnapshotBytes).
	DatabaseBytes uint64
	// OracleInserts is the live oracle's insert counter — the version
	// clients cite when requesting incremental refreshes.
	OracleInserts uint64
	// OracleSnapshotBytes is the memory held by retained oracle download
	// versions (the diff-serving clones).
	OracleSnapshotBytes uint64
	// Persistent reports whether a data directory is attached.
	Persistent bool
	// SnapshotSeq is the ingest-batch coverage of the newest durable
	// snapshot (0 when none has been written yet).
	SnapshotSeq uint64
	// WALBytes is the current size of the write-ahead log.
	WALBytes uint64
	// LastCompactionUnix is when the newest durable snapshot was written
	// (Unix seconds; 0 when never).
	LastCompactionUnix int64
}

// Stats reports the database's size, oracle state and persistence state.
// The engine half comes from a pinned read snapshot; the store half is read
// under the mutex afterwards — never while pinned (a pinned reader queued
// on mu would deadlock against a publishing ingest; see rcu.go).
func (db *Database) Stats() DBStats {
	v, t := db.pinView()
	s := DBStats{
		Mappings:      uint64(len(v.positions)),
		DatabaseBytes: uint64(v.index.MemoryBytes() + v.oracle.MemoryBytes() + int64(len(v.positions))*24),
		OracleInserts: v.oracle.Inserts(),
	}
	db.unpin(v, t)
	db.mu.RLock()
	defer db.mu.RUnlock()
	s.OracleSnapshotBytes = uint64(db.snapBytes)
	if db.store != nil {
		s.Persistent = true
		s.SnapshotSeq = db.store.SnapshotSeq()
		s.WALBytes = uint64(db.store.WALBytes())
		if t := db.store.LastCompaction(); !t.IsZero() {
			s.LastCompactionUnix = t.Unix()
		}
	}
	return s
}

// LocateResult is the server's answer to a localization query.
type LocateResult struct {
	Position mathx.Vec3
	Yaw      float64
	Residual float64
	// Matched counts the keypoints whose matches survived clustering.
	Matched int
	// Generations is the DE generation count the pose solve consumed
	// (initialization included) — the quantity the warm-start tracking
	// path halves. In-process only: it is not carried on the wire, so
	// results decoded from a remote server report 0.
	Generations int
}

// locateCand pairs a query pixel with one retrieved 3D candidate.
type locateCand struct {
	px, py float64
	p      mathx.Vec3
}

// parallelLocateThreshold is the keypoint count below which Locate skips
// the worker pool; small queries are faster serially.
const parallelLocateThreshold = 32

// candidatesFor retrieves the distance-gated LSH candidates of one query
// keypoint, appending them to dst. scratch is a reusable candidate buffer
// (returned with whatever capacity it grew to) — with a warm scratch the
// whole retrieval is allocation-free, which is what keeps the steady-state
// Locate fan-out off the heap. Callers must hold a pin on v; the LSH index
// read path is safe for concurrent queries.
func (db *Database) candidatesFor(v *dbView, kp sift.Keypoint, scratch []lsh.Candidate, dst []locateCand) ([]lsh.Candidate, []locateCand, error) {
	scratch, err := v.index.QueryInto(kp.Desc[:], lsh.QueryOptions{
		MaxCandidates: db.cfg.NeighborsPerKeypoint,
		MultiProbe:    true,
	}, scratch)
	if err != nil {
		return scratch, dst, err
	}
	for _, c := range scratch {
		if db.cfg.MaxMatchDistSq > 0 && c.DistSq > db.cfg.MaxMatchDistSq {
			continue
		}
		dst = append(dst, locateCand{px: kp.X, py: kp.Y, p: v.positions[c.ID]})
	}
	return scratch, dst, nil
}

// ctxCheckStride is how many keypoints the LSH gather processes between
// context checks: often enough that cancellation lands within a fraction of
// a millisecond, rarely enough that the (mutex-guarded) ctx.Err stays off
// the per-candidate hot path.
const ctxCheckStride = 16

// gatherCandidates produces the |K| * n candidate list, fanning the
// per-keypoint LSH lookups across a bounded worker pool for large queries.
// Each worker fills a disjoint per-keypoint slot, so flattening in keypoint
// order yields exactly the serial path's candidate sequence — clustering
// and pose results are bit-identical either way. The context is checked
// every ctxCheckStride keypoints (per worker on the parallel path);
// cancellation returns the raw context error for the caller to classify.
func (db *Database) gatherCandidates(ctx context.Context, v *dbView, kps []sift.Keypoint) ([]locateCand, error) {
	workers := db.cfg.LocateParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(kps) {
		workers = len(kps)
	}
	if len(kps) < parallelLocateThreshold || workers <= 1 {
		var cands []locateCand
		var scratch []lsh.Candidate
		var err error
		for i := range kps {
			if i%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			scratch, cands, err = db.candidatesFor(v, kps[i], scratch, cands)
			if err != nil {
				return nil, err
			}
		}
		return cands, nil
	}
	perKP := make([][]locateCand, len(kps))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var scratch []lsh.Candidate // reused across this worker's keypoints
			for n := 0; ; n++ {
				i := int(next.Add(1)) - 1
				if i >= len(kps) {
					return
				}
				if n%ctxCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
				var cs []locateCand
				var err error
				scratch, cs, err = db.candidatesFor(v, kps[i], scratch, nil)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				perKP[i] = cs
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	var cands []locateCand
	for _, cs := range perKP {
		cands = append(cands, cs...)
	}
	return cands, nil
}

// Locate runs the paper's server-side query pipeline: LSH candidate
// retrieval for each uploaded keypoint (parallelized across a bounded
// worker pool on large queries), spatial clustering of the candidate 3D
// points, largest-cluster filtering, and the Figure 12 optimization over
// the surviving correspondences. Failures return the typed sentinels
// ErrEmptyDatabase, ErrTooFewMatches and ErrNoConsensus.
//
// The context is checked at every stage boundary and once per DE
// generation inside the pose solve, so a canceled or expired request stops
// burning CPU mid-pipeline; those failures return ErrCanceled or
// ErrDeadlineExceeded (which also match context.Canceled and
// context.DeadlineExceeded under errors.Is).
func (db *Database) Locate(ctx context.Context, kps []sift.Keypoint, intr pose.Intrinsics) (LocateResult, error) {
	v, t := db.pinView()
	defer db.unpin(v, t)
	m := db.metrics()
	tr := m.trace.Begin("locate")
	res, err := db.locateView(ctx, v, kps, intr, tr)
	m.locateNs.Observe(m.trace.End(tr))
	m.locates.Inc()
	if err != nil {
		m.locateErrors.Inc()
	}
	return res, err
}

// locateView is the pipeline body; tr (nil when observability is off)
// receives the per-stage breakdown. Callers hold a pin on v.
func (db *Database) locateView(ctx context.Context, v *dbView, kps []sift.Keypoint, intr pose.Intrinsics, tr *obs.Trace) (LocateResult, error) {
	if len(v.positions) == 0 {
		return LocateResult{}, ErrEmptyDatabase
	}
	if err := ctx.Err(); err != nil {
		return LocateResult{}, ctxError(err)
	}
	t0 := time.Now()
	cands, err := db.gatherCandidates(ctx, v, kps)
	tr.StageSince(obs.StageLSHQuery, t0)
	if err != nil {
		return LocateResult{}, ctxError(err)
	}
	return solveCandidates(ctx, db.cfg, cands, v.lo, v.hi, intr, tr)
}

// solveCandidates runs the back half of the Locate pipeline — clustering,
// largest-cluster filtering and the pose optimization — over an
// already-gathered candidate list. Shared verbatim between the single-
// database path (locateLocked) and the Router's scatter-gather path, which
// is what makes the two bit-identical once their candidate lists match: the
// merged venue bounds feed the same search box arithmetic (per-axis min/max
// commute across shards), and clustering order is fixed by the list order.
func solveCandidates(ctx context.Context, cfg DatabaseConfig, cands []locateCand, lo, hi mathx.Vec3, intr pose.Intrinsics, tr *obs.Trace) (LocateResult, error) {
	return solveCandidatesOpt(ctx, cfg, cands, lo, hi, intr, tr, cfg.Pose)
}

// solveCandidatesOpt is solveCandidates with the pose options made explicit:
// the tracking path substitutes warm-start options (prior pose, shrunk
// bounds, early convergence stop — see track.go) while every cold caller
// passes cfg.Pose verbatim, keeping that path bit-identical.
func solveCandidatesOpt(ctx context.Context, cfg DatabaseConfig, cands []locateCand, lo, hi mathx.Vec3, intr pose.Intrinsics, tr *obs.Trace, popt pose.Options) (LocateResult, error) {
	if len(cands) < 3 {
		return LocateResult{}, ErrTooFewMatches
	}
	if err := ctx.Err(); err != nil {
		return LocateResult{}, ctxError(err)
	}
	// Largest spatial cluster filters out scattered false matches.
	pts := make([]mathx.Vec3, len(cands))
	for i, c := range cands {
		pts[i] = c.p
	}
	t0 := time.Now()
	largest, ok, err := cluster.Largest(pts, cfg.Cluster)
	tr.StageSince(obs.StageCluster, t0)
	if err != nil {
		return LocateResult{}, err
	}
	if !ok || len(largest.Indices) < 3 {
		return LocateResult{}, ErrNoConsensus
	}
	if err := ctx.Err(); err != nil {
		return LocateResult{}, ctxError(err)
	}
	corr := make([]pose.Correspondence, 0, len(largest.Indices))
	for _, i := range largest.Indices {
		corr = append(corr, pose.Correspondence{Px: cands[i].px, Py: cands[i].py, P: cands[i].p})
	}
	// Search box: the ingested bounds with a small pad. Keeping the box
	// tight matters: keypoints concentrated on one wall admit a mirrored
	// camera position through the wall plane, which a box clipped to the
	// venue interior excludes.
	pad := mathx.Vec3{X: 0.3, Y: 0.3, Z: 0.3}
	t0 = time.Now()
	res, err := pose.LocalizeContext(ctx, corr, intr, lo.Sub(pad), hi.Add(pad), popt)
	tr.StageSince(obs.StagePoseSolve, t0)
	if err != nil {
		return LocateResult{}, ctxError(err)
	}
	// Evals = effective-PopSize × (init + generations); the solver clamps
	// PopSize to a floor of 8, so mirror that clamp here.
	ps := popt.PopSize
	if ps < 8 {
		ps = 8
	}
	return LocateResult{
		Position:    res.Position,
		Yaw:         res.Yaw,
		Residual:    res.Residual,
		Matched:     len(largest.Indices),
		Generations: res.Evals / ps,
	}, nil
}

// MergeCand is one shard-local LSH candidate annotated with everything the
// Router needs to merge shard result sets into the exact candidate ranking a
// single database would have produced: the squared descriptor distance, the
// multi-probe ordinal the candidate was first collected at, and the
// venue-global sequence number standing in for single-database insertion
// order. Sorting the union by (DistSq, Probe, Seq) reproduces a single
// index's stable-sorted dedup order — in one index, equal-distance ties keep
// collection order, which is lexicographic (probe ordinal, in-bucket
// insertion order), and in-bucket insertion order is ingest order, i.e. Seq.
type MergeCand struct {
	DistSq int
	Probe  int32
	Seq    uint64
	Pos    mathx.Vec3
}

// compareMergeCands is the venue-wide total candidate order (see MergeCand).
func compareMergeCands(a, b MergeCand) int {
	if a.DistSq != b.DistSq {
		return cmp.Compare(a.DistSq, b.DistSq)
	}
	if a.Probe != b.Probe {
		return cmp.Compare(a.Probe, b.Probe)
	}
	return cmp.Compare(a.Seq, b.Seq)
}

// CandidateSets retrieves, for each query keypoint, this shard's top
// NeighborsPerKeypoint candidates under the venue-wide total order —
// uncapped LSH query, explicit (DistSq, Probe, Seq) sort, then per-shard
// truncation. The per-shard top-n is a superset of the shard's contribution
// to the global top-n, so the Router can merge shard sets and re-truncate
// without losing any candidate a single database would have kept. Distance
// gating (MaxMatchDistSq) is deliberately NOT applied here: the single-
// database path gates after truncation, so the Router gates after the merged
// truncation to match. Only meaningful on shard engines (seq mode).
func (db *Database) CandidateSets(ctx context.Context, kps []sift.Keypoint) ([][]MergeCand, error) {
	v, t := db.pinView()
	defer db.unpin(v, t)
	if !db.seqMode {
		return nil, errRemote{msg: "CandidateSets requires a shard engine"}
	}
	n := db.cfg.NeighborsPerKeypoint
	out := make([][]MergeCand, len(kps))
	var scratch []lsh.Candidate
	for i := range kps {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, ctxError(err)
			}
		}
		var err error
		scratch, err = v.index.QueryInto(kps[i].Desc[:], lsh.QueryOptions{MultiProbe: true}, scratch)
		if err != nil {
			return nil, err
		}
		mcs := make([]MergeCand, len(scratch))
		for j, c := range scratch {
			mcs[j] = MergeCand{
				DistSq: c.DistSq,
				Probe:  c.Probe,
				Seq:    v.seqs[c.ID],
				Pos:    v.positions[c.ID],
			}
		}
		slices.SortFunc(mcs, compareMergeCands)
		if n > 0 && len(mcs) > n {
			mcs = mcs[:n]
		}
		out[i] = mcs
	}
	return out, nil
}

// IntrinsicsForTest builds pose intrinsics from a scene camera (diagnostic
// helper).
func IntrinsicsForTest(cam scene.Camera) pose.Intrinsics {
	return pose.Intrinsics{W: cam.W, H: cam.H, FovX: cam.FovX, FovY: cam.FovY()}
}
