package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"visualprint/internal/obs"
)

// Server accepts VisualPrint protocol connections and serves a Database.
//
// Connections negotiate a protocol version at open (see wire.go). On a v2
// connection every request carries a uint32 ID and is dispatched on its own
// goroutine while a single writer goroutine serializes the responses, so
// one slow localization query does not stall the pipelined requests behind
// it. Legacy v1 connections keep the original sequential
// read-dispatch-write loop, which preserves their implicit response
// ordering.
//
// Every request is a first-class cancellable object: it runs under a
// context derived from its connection (severed connection → context
// canceled → the pipeline stops mid-solve), bounded by the wire deadline
// if the client sent one, and cancellable early by a msgCancel frame.
// Admission control bounds the work the server accepts: at most
// maxInFlight requests execute at once, at most maxQueue more wait, and
// anything beyond that is shed immediately with the typed ErrOverloaded —
// a saturated server answers in microseconds instead of queueing
// unboundedly. Shutdown drains gracefully: new work is refused with
// ErrShuttingDown while in-flight requests finish (or, past the drain
// deadline, are canceled).
type Server struct {
	db *Database
	// router fans venue-scoped requests (msgVenueEx) across named venues;
	// Serve always installs one (WithRouter overrides it with a
	// preconfigured instance). Nil only on a bare Server built without
	// Serve, where venue requests answer a typed routing error.
	router *Router
	ln     net.Listener

	// sem bounds concurrently executing request handlers across all
	// connections; nil means unbounded (direct ServeConn use, or
	// WithMaxInFlight(0)).
	sem         chan struct{}
	maxInFlight int
	// maxQueue bounds requests waiting for an execution slot; beyond it
	// admit sheds with ErrOverloaded. queued is the current waiter count.
	maxQueue int
	queued   atomic.Int64

	// baseCtx parents every request context; baseCancel fires on Close and
	// on a drain-deadline overrun, aborting in-flight pipelines. Nil on a
	// bare Server (direct ServeConn construction) — base() substitutes
	// context.Background().
	baseCtx    context.Context
	baseCancel context.CancelFunc

	drainTimeout time.Duration

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	// nreq counts admitted in-flight requests; idle, when non-nil, is
	// closed by the request that brings nreq to zero (Shutdown's drain
	// barrier).
	nreq int
	idle chan struct{}
	wg   sync.WaitGroup
	// Log receives connection-level errors; Serve defaults it to the
	// process logger (obs.Default); nil silences.
	Log *obs.Logger

	// Observability, wired by Serve (nil on a bare Server, e.g. direct
	// ServeConn construction in tests — instrumentation then no-ops and
	// the metrics RPC reports it disabled).
	reg *obs.Registry
	met *srvMetrics

	// rs, when non-nil, makes this server a fleet member: replication
	// RPCs are answered, ingests are gated to the primary role, and
	// replica-served reads honor the staleness bound (see repl.go).
	rs *ReplState
}

// Option configures a Server at construction (Serve / ListenAndServe).
type Option func(*Server)

// WithMaxInFlight bounds concurrently executing requests across all
// connections. n <= 0 removes the bound (and with it, admission control).
// Defaults to DefaultMaxInFlight.
func WithMaxInFlight(n int) Option {
	return func(s *Server) { s.maxInFlight = n }
}

// WithQueueDepth bounds requests waiting for an execution slot; arrivals
// past the bound are shed immediately with ErrOverloaded. 0 sheds as soon
// as every slot is busy. Defaults to DefaultQueueDepth of the in-flight
// bound. Only meaningful with a positive in-flight bound.
func WithQueueDepth(n int) Option {
	return func(s *Server) { s.maxQueue = n }
}

// WithRouter installs a preconfigured multi-venue router (venue topologies,
// durable venues directory). Without it, Serve builds a default in-memory
// router over the database, so every networked server answers venue-scoped
// requests.
func WithRouter(r *Router) Option {
	return func(s *Server) { s.router = r }
}

// WithReplState attaches a fleet control block: the server answers the
// replication RPCs, rejects ingests with a redirect unless it is the
// primary, and bounds replica-served reads by the configured staleness.
func WithReplState(rs *ReplState) Option {
	return func(s *Server) { s.rs = rs }
}

// WithDrainTimeout bounds how long Shutdown waits for in-flight requests
// when its context carries no deadline of its own; past it, in-flight work
// is canceled. 0 (the default) waits indefinitely.
func WithDrainTimeout(d time.Duration) Option {
	return func(s *Server) { s.drainTimeout = d }
}

// perCoreLocateQPS is the measured per-core Locate capacity on the full
// benchmark workload (cmd/vpbench, BENCH_locate.json: ~27 q/s at ~37 ms/op
// per core on the committed baseline host). The admission-control defaults
// below are derived from it instead of guessed multipliers, so re-measure
// and update it when the Locate pipeline's cost changes materially.
const perCoreLocateQPS = 27

// defaultQueueWaitSeconds is the worst queueing delay the default queue
// depth is sized to admit: a request at the back of a full default queue
// waits at most about this long at the measured drain rate before
// execution (or sheds immediately past it).
const defaultQueueWaitSeconds = 10

// DefaultMaxInFlight returns the default bound on concurrently executing
// requests. Locate is CPU-bound and lock-free (see rcu.go), so one
// executing request per core saturates the machine; the 2x factor plus
// constant covers the remaining off-CPU gaps (WAL fsyncs on ingest,
// response write-backs) without letting a deep execution pool inflate
// per-request latency.
func DefaultMaxInFlight() int { return 2*runtime.GOMAXPROCS(0) + 2 }

// DefaultQueueDepth returns the default dispatch-queue bound for a given
// in-flight bound, sized from measured capacity: the queue admits what the
// machine can drain within defaultQueueWaitSeconds at perCoreLocateQPS per
// core, with a floor that keeps clients pipelining bursts over a single
// connection — never shed before admission control existed — unshed for
// any plausible burst. Latency-sensitive deployments should configure
// WithQueueDepth far lower.
func DefaultQueueDepth(maxInFlight int) int {
	const floor = 256
	capacity := runtime.GOMAXPROCS(0) * perCoreLocateQPS * defaultQueueWaitSeconds
	if capacity > floor {
		return capacity
	}
	return floor
}

// Serve starts accepting connections on ln. It returns immediately; Close
// stops the accept loop and all connections, Shutdown drains them
// gracefully first.
func Serve(ln net.Listener, db *Database, opts ...Option) *Server {
	s := &Server{
		db: db, ln: ln, conns: make(map[net.Conn]struct{}), Log: obs.Default(),
		maxInFlight: DefaultMaxInFlight(),
		maxQueue:    -1,
	}
	for _, o := range opts {
		o(s)
	}
	if s.maxInFlight > 0 {
		s.sem = make(chan struct{}, s.maxInFlight)
	}
	if s.maxQueue < 0 {
		s.maxQueue = DefaultQueueDepth(s.maxInFlight)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// Route the database's own warnings (persistence, resource budgets)
	// through the server's logger so one knob silences or redirects both —
	// unless the owner already chose a logger. The indirection through
	// s.logf keeps a later `s.Log = nil` effective for both.
	db.setLoggerDefault(obs.FuncLogger(s.logf))
	if s.router == nil {
		s.router = NewRouter(db, db.cfg)
	}
	s.router.SetLogger(s.Log)
	// A networked server is always observable: requests are counted and
	// traced, and the metrics RPC answers from this registry.
	s.reg = db.EnableObs()
	s.met = newSrvMetrics(s.reg)
	s.router.instrument(s.reg)
	if s.rs != nil {
		s.rs.enableObs(s.reg)
		s.rs.SetLogger(s.Log)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Registry returns the server's metrics registry (nil when the server was
// not built by Serve). The debug HTTP listener mounts it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ListenAndServe listens on addr (TCP) and serves db.
func ListenAndServe(addr string, db *Database, opts ...Option) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, db, opts...), nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// base returns the context parenting request contexts; a bare Server
// (direct ServeConn construction) has none and falls back to Background.
func (s *Server) base() context.Context {
	if s.baseCtx != nil {
		return s.baseCtx
	}
	return context.Background()
}

// Close stops the server immediately: the listener and every open
// connection are closed and in-flight request contexts are canceled, so
// abandoned pipelines stop burning CPU. For a graceful stop that lets
// in-flight work finish, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	if s.baseCancel != nil {
		s.baseCancel()
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: the listener closes, new requests
// are refused with the typed ErrShuttingDown, and in-flight requests run
// to completion — their responses are flushed before the connections
// close. If ctx expires first (or, when ctx has no deadline, the
// configured drain timeout does), the remaining in-flight requests are
// canceled; their context-aware pipelines unwind within one DE generation
// and answer ErrCanceled. Shutdown returns nil on a clean drain and
// ctx.Err() on a forced one; either way the server is fully stopped on
// return. Shutdown after Close (or a second Shutdown) is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.drainTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.drainTimeout)
			defer cancel()
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	var lnErr error
	if s.ln != nil {
		lnErr = s.ln.Close()
	}
	var idle chan struct{}
	if s.nreq > 0 {
		idle = make(chan struct{})
		s.idle = idle
	}
	s.mu.Unlock()

	var forced error
	if idle != nil {
		select {
		case <-idle:
		case <-ctx.Done():
			// Drain deadline: cancel what's left. Context-checked stages
			// unwind promptly and endRequest closes idle.
			forced = ctx.Err()
			if s.baseCancel != nil {
				s.baseCancel()
			}
			<-idle
		}
	}
	// Every admitted request has completed and queued its response. Fail
	// the blocked read loops with a past read deadline — not Close — so
	// each connection's writer flushes pending responses before the
	// connection tears down on its own.
	s.mu.Lock()
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now) //nolint:errcheck // best-effort unblock
	}
	s.mu.Unlock()
	if s.baseCancel != nil {
		s.baseCancel()
	}
	s.wg.Wait()
	if forced != nil {
		return forced
	}
	return lnErr
}

// beginRequest registers one admitted request against the drain barrier;
// it returns false once the server is draining (the caller answers
// ErrShuttingDown without dispatching).
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.nreq++
	return true
}

// endRequest retires an admitted request, releasing Shutdown's drain
// barrier when the last one finishes.
func (s *Server) endRequest() {
	s.mu.Lock()
	s.nreq--
	if s.nreq == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) logf(format string, args ...any) {
	s.Log.Warnf(format, args...)
}

// admit applies admission control: it takes an execution slot, waits in
// the bounded dispatch queue when none is free, and sheds with the typed
// ErrOverloaded the moment the queue is full — a saturated server answers
// in microseconds instead of queueing unboundedly. Waiting is
// context-aware: a request whose deadline expires or whose connection dies
// while queued leaves without ever executing.
func (s *Server) admit(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return ctxError(err)
	}
	if s.sem == nil {
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	n := s.queued.Add(1)
	if m := s.met; m != nil {
		m.queueDepth.Set(n)
	}
	if n > int64(s.maxQueue) {
		s.unqueue()
		return ErrOverloaded
	}
	defer s.unqueue()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctxError(ctx.Err())
	}
}

func (s *Server) unqueue() {
	n := s.queued.Add(-1)
	if m := s.met; m != nil {
		m.queueDepth.Set(n)
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// ServeConn handles one protocol connection until EOF or error. It is
// exported so tests and single-process deployments can drive the protocol
// over net.Pipe. The first four bytes of the connection select the framing:
// the v2 magic, or a v1 frame length from a legacy client.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[:]) != protoMagic {
		s.serveV1(conn, binary.LittleEndian.Uint32(hdr[:]))
		return
	}
	var ver [1]byte
	if _, err := io.ReadFull(conn, ver[:]); err != nil {
		return
	}
	if ver[0] != protoVersion2 {
		writeFrame(conn, msgError, encodeErrorPayload(
			fmt.Errorf("unsupported protocol version %d", ver[0])))
		return
	}
	s.serveV2(conn)
}

// serveV1 is the legacy sequential loop: one request, one response, in
// order. firstLen is the already-consumed length prefix of the first frame.
// Requests run under the connection's context (v1 carries no per-request
// deadline or cancel) and pass through the same admission control as v2.
func (s *Server) serveV1(conn net.Conn, firstLen uint32) {
	ctx, cancel := context.WithCancel(s.base())
	defer cancel()
	n := firstLen
	for {
		typ, payload, err := readFrameBody(conn, n)
		if err != nil {
			return // EOF or broken connection
		}
		rt, resp := s.serveRequest(ctx, typ, payload, nil)
		if err := writeFrame(conn, rt, resp); err != nil {
			s.logf("visualprint server: %v", err)
			return
		}
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n = binary.LittleEndian.Uint32(hdr[:])
	}
}

// v2Response is one response queued for the connection's writer goroutine.
type v2Response struct {
	id      uint32
	typ     byte
	payload []byte
}

// reqCancels tracks one connection's in-flight requests by ID so a
// msgCancel frame can abort exactly the request it names.
type reqCancels struct {
	mu sync.Mutex
	m  map[uint32]context.CancelFunc
}

func (r *reqCancels) add(id uint32, c context.CancelFunc) {
	r.mu.Lock()
	r.m[id] = c
	r.mu.Unlock()
}

// cancel aborts the named request if it is still in flight.
func (r *reqCancels) cancel(id uint32) bool {
	r.mu.Lock()
	c := r.m[id]
	delete(r.m, id)
	r.mu.Unlock()
	if c != nil {
		c()
		return true
	}
	return false
}

// remove retires a finished request, releasing its context's timer.
func (r *reqCancels) remove(id uint32) {
	r.mu.Lock()
	c := r.m[id]
	delete(r.m, id)
	r.mu.Unlock()
	if c != nil {
		c()
	}
}

// serveV2 is the multiplexed loop: requests are dispatched concurrently
// and responses are serialized through a single writer goroutine, tagged
// with the ID of the request they answer. Response order is therefore
// completion order, not request order.
//
// The read loop never blocks on admission — every request gets a goroutine
// immediately and admission control decides inside it — so cancel frames
// and new requests are seen promptly even when the server is saturated.
// Each request's context descends from the connection's: a dead connection
// cancels everything it had in flight.
func (s *Server) serveV2(conn net.Conn) {
	connCtx, cancelConn := context.WithCancel(s.base())
	defer cancelConn()
	out := make(chan v2Response, 32)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		failed := false
		for r := range out {
			if failed {
				continue // drain so handlers never block on a dead writer
			}
			if err := writeFrameV2(conn, r.id, r.typ, r.payload); err != nil {
				s.logf("visualprint server: %v", err)
				failed = true
				conn.Close() // unblocks the read loop below
			}
		}
	}()
	inflight := &reqCancels{m: make(map[uint32]context.CancelFunc)}
	var handlers sync.WaitGroup
	for {
		id, typ, payload, err := readFrameV2(conn)
		if err != nil {
			break // EOF or broken connection
		}
		if typ == msgCancel {
			if inflight.cancel(id) {
				if m := s.met; m != nil {
					m.canceled.Inc()
				}
			}
			continue // fire-and-forget: no response
		}
		// Unwrap the deadline envelope before dispatch so the request
		// context — and the instrumentation — see the inner request.
		var deadline time.Duration
		if typ == msgRequestEx {
			dl, ityp, ipayload, uerr := unwrapRequestEx(payload)
			if uerr != nil {
				out <- v2Response{id: id, typ: msgError, payload: encodeErrorPayload(uerr)}
				continue
			}
			deadline = time.Duration(dl) * time.Millisecond
			typ, payload = ityp, ipayload
		}
		reqCtx, cancel := context.WithCancel(connCtx)
		if deadline > 0 {
			cancel()
			reqCtx, cancel = context.WithTimeout(connCtx, deadline)
		}
		inflight.add(id, cancel)
		handlers.Add(1)
		go func(ctx context.Context, id uint32, typ byte, payload []byte) {
			defer handlers.Done()
			defer inflight.remove(id)
			// push delivers a server-initiated event frame tagged with this
			// request's ID (oracle subscriptions). Blocking on the bounded out
			// channel is the per-subscriber queue: a slow connection stalls
			// its own stream while newer epochs coalesce behind it. A dead
			// connection never wedges a handler — the writer drains out after
			// a write error and ctx is canceled when the read loop exits.
			push := func(t byte, p []byte) bool {
				select {
				case out <- v2Response{id: id, typ: t, payload: p}:
					return true
				case <-ctx.Done():
					return false
				}
			}
			rt, resp := s.serveRequest(ctx, typ, payload, push)
			out <- v2Response{id: id, typ: rt, payload: resp}
		}(reqCtx, id, typ, payload)
	}
	cancelConn() // the connection is gone: abort work queued on its behalf
	handlers.Wait()
	close(out)
	<-writerDone
}

// serveRequest runs one request end to end: venue/session unwrap, drain
// gate, instrumentation, admission, dispatch. Framing and request IDs
// belong to the caller; serveRequest never fails — request errors become
// msgError responses. The envelopes are unwrapped before instrumentation
// so the per-type metrics count the inner request, not the envelope.
// Nesting order on the wire is deadline (outermost, unwrapped in serveV2)
// → venue → session → plain request. push, non-nil only on v2, delivers
// server-initiated event frames for the streaming requests (oracle
// subscriptions); the returned pair is still the terminal response.
func (s *Server) serveRequest(ctx context.Context, typ byte, payload []byte, push func(byte, []byte) bool) (byte, []byte) {
	venue := ""
	if typ == msgVenueEx {
		v, ityp, ipayload, err := unwrapVenue(payload)
		if err != nil {
			return errorResponse(err)
		}
		venue, typ, payload = v, ityp, ipayload
	}
	if typ == msgSubscribeOracle {
		// Long-lived stream: it skips admission (it holds no execution slot
		// while parked on the epoch signal) and the drain barrier (Shutdown
		// would otherwise wait forever on it; instead it ends when the
		// connection contexts cancel).
		return s.serveSubscription(ctx, venue, payload, push)
	}
	sid := uint64(0)
	if typ == msgSessionEx {
		id, ityp, ipayload, err := unwrapSession(payload)
		if err != nil {
			return errorResponse(err)
		}
		sid, typ, payload = id, ityp, ipayload
	}
	if !s.beginRequest() {
		rt, resp := errorResponse(ErrShuttingDown)
		if m := s.met; m != nil {
			m.record(typ, time.Now(), rt, resp)
		}
		return rt, resp
	}
	defer s.endRequest()
	return s.handle(ctx, venue, sid, typ, payload)
}

// serveSubscription runs one oracle subscription stream until the request
// context cancels (msgCancel, connection loss, server close/shutdown). It
// pushes the current version as msgOracleEpoch immediately — the
// subscription ack a client can wait on — then one event per epoch bump,
// re-reading the latest version after each wakeup so bursts coalesce into
// a single event carrying the newest epoch. The return value is the
// stream's terminal response.
func (s *Server) serveSubscription(ctx context.Context, venue string, payload []byte, push func(byte, []byte) bool) (byte, []byte) {
	if push == nil {
		return errorResponse(errors.New("oracle subscriptions require protocol v2"))
	}
	if len(payload) != 8 {
		return errorResponse(errors.New("bad subscribe request"))
	}
	if venue != "" && s.router == nil {
		return errorResponse(errors.New("venue routing not enabled on this server"))
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return errorResponse(ErrShuttingDown)
	}
	if m := s.met; m != nil {
		m.subscribers.Add(1)
		defer m.subscribers.Add(-1)
	}
	signal := func() (uint64, uint64, <-chan struct{}, error) {
		if venue == "" {
			e, i, ch := s.db.EpochSignal()
			return e, i, ch, nil
		}
		return s.router.VenueEpochSignal(venue, ctx.Done())
	}
	last := uint64(0)
	first := true
	for {
		epoch, inserts, ch, err := signal()
		if err != nil {
			return errorResponse(err)
		}
		// The channel was read alongside the version, so a bump past `epoch`
		// closes exactly `ch` — sleeping below can never miss it.
		if first || epoch != last {
			if !push(msgOracleEpoch, encodeOracleVersion(epoch, inserts)) {
				return errorResponse(ctxError(ctx.Err()))
			}
			if m := s.met; m != nil {
				m.epochPushes.Inc()
			}
			last, first = epoch, false
		}
		select {
		case <-ctx.Done():
			return errorResponse(ctxError(ctx.Err()))
		case <-ch:
		}
	}
}

// handle wraps dispatch with the wire-level instrumentation: request
// counts and latency per message type, payload bytes in each direction,
// the in-flight gauge and error-code counters.
func (s *Server) handle(ctx context.Context, venue string, sid uint64, typ byte, payload []byte) (byte, []byte) {
	m := s.met
	if m == nil {
		return s.admitAndDispatch(ctx, venue, sid, typ, payload)
	}
	m.inflight.Add(1)
	m.bytesIn.Add(uint64(len(payload)))
	start := time.Now()
	rt, resp := s.admitAndDispatch(ctx, venue, sid, typ, payload)
	m.record(typ, start, rt, resp)
	m.inflight.Add(-1)
	return rt, resp
}

// admitAndDispatch applies admission control, then routes the request.
func (s *Server) admitAndDispatch(ctx context.Context, venue string, sid uint64, typ byte, payload []byte) (byte, []byte) {
	if err := s.admit(ctx); err != nil {
		if m := s.met; m != nil && errors.Is(err, ErrOverloaded) {
			m.shed.Inc()
		}
		return errorResponse(err)
	}
	defer s.release()
	return s.dispatch(ctx, venue, sid, typ, payload)
}

// dispatch routes one request to its venue's engine(s). The empty venue is
// the default database, served directly (the pre-venue fast path every
// legacy client takes); named venues go through the router.
func (s *Server) dispatch(ctx context.Context, venue string, sid uint64, typ byte, payload []byte) (byte, []byte) {
	if venue != "" && s.router == nil {
		return errorResponse(errors.New("venue routing not enabled on this server"))
	}
	switch typ {
	case msgPing:
		// Liveness answers unconditionally, replication configured or not.
		return msgPong, nil
	case msgReplState, msgReplSnapshot, msgReplFetch, msgReplFollow, msgReplPromote:
		if s.rs == nil {
			return errorResponse(errors.New("replication not enabled on this server"))
		}
		switch typ {
		case msgReplState:
			return s.rs.handleState()
		case msgReplSnapshot:
			return s.rs.handleSnapshot()
		case msgReplFetch:
			return s.rs.handleFetch(ctx, payload)
		case msgReplFollow:
			return s.rs.handleFollow(payload)
		default:
			return s.rs.handlePromote(payload)
		}
	case msgIngest:
		// A fleet member only accepts writes as the primary — any venue.
		if err := s.rs.gateWrite(); err != nil {
			return errorResponse(err)
		}
	case msgQuery:
		// Replica-served reads carry a staleness bound; past it (or mid
		// full-sync) the client is redirected to the primary.
		if err := s.rs.gateRead(); err != nil {
			return errorResponse(err)
		}
	}
	switch typ {
	case msgGetOracle:
		var blob []byte
		var err error
		if venue == "" {
			blob, err = s.db.OracleBlob()
		} else {
			blob, err = s.router.OracleBlob(venue)
		}
		if err != nil {
			return errorResponse(err)
		}
		return msgOracleBlob, blob
	case msgIngest:
		ms, err := decodeMappings(payload)
		if err != nil {
			return errorResponse(err)
		}
		var total int
		if venue == "" {
			if err := s.db.Ingest(ctx, ms); err != nil {
				return errorResponse(err)
			}
			total = s.db.Len()
		} else {
			total, err = s.router.Ingest(ctx, venue, ms)
			if err != nil {
				return errorResponse(err)
			}
		}
		ack := make([]byte, 8)
		binary.LittleEndian.PutUint64(ack, uint64(total))
		return msgIngestAck, ack
	case msgQuery:
		intr, kpData, err := decodeQueryHeader(payload)
		if err != nil {
			return errorResponse(err)
		}
		kps, err := decodeKeypoints(kpData)
		if err != nil {
			return errorResponse(err)
		}
		var res LocateResult
		switch {
		case sid != 0 && s.router != nil:
			// The session path covers the default venue too (venue == "");
			// a bare Server without a router serves the query cold below —
			// the envelope is an optimization, never a correctness gate.
			res, err = s.router.LocateSession(ctx, venue, sid, kps, intr)
		case venue == "":
			res, err = s.db.Locate(ctx, kps, intr)
		default:
			res, err = s.router.Locate(ctx, venue, kps, intr)
		}
		if err != nil {
			return errorResponse(err)
		}
		return msgQueryResult, encodeLocateResult(res)
	case msgGetDiff, msgGetDiff2:
		if len(payload) != 8 {
			return errorResponse(errors.New("bad diff request"))
		}
		since := binary.LittleEndian.Uint64(payload)
		if typ == msgGetDiff2 {
			// Not-modified fast path: oracle insert counts are monotonic,
			// so a client whose count equals the live oracle's holds an
			// identical oracle — ack with 8 bytes instead of a diff blob.
			// Only msgGetDiff2 may answer this way; old clients asking via
			// msgGetDiff get the original diff-or-blob behavior unchanged.
			var cur uint64
			if venue == "" {
				cur = s.db.OracleInserts()
			} else {
				cur = s.router.OracleInserts(venue)
			}
			if since == cur {
				ack := make([]byte, 8)
				binary.LittleEndian.PutUint64(ack, cur)
				return msgDiffUnchanged, ack
			}
		}
		var diff []byte
		var ok bool
		var err error
		if venue == "" {
			diff, ok, err = s.db.OracleDiff(since)
		} else {
			diff, ok, err = s.router.OracleDiff(venue, since)
		}
		if err != nil {
			return errorResponse(err)
		}
		if ok {
			return msgDiffBlob, diff
		}
		// Version no longer retained (or a multi-shard venue, whose
		// assembled oracle has no diff window): fall back to the full blob.
		var blob []byte
		if venue == "" {
			blob, err = s.db.OracleBlob()
		} else {
			blob, err = s.router.OracleBlob(venue)
		}
		if err != nil {
			return errorResponse(err)
		}
		return msgOracleBlob, blob
	case msgOracleSync:
		haveEpoch, haveInserts, err := decodeOracleVersion(payload)
		if err != nil {
			return errorResponse(err)
		}
		var res OracleSyncResult
		if venue == "" {
			res, err = s.db.OracleSyncSince(haveEpoch, haveInserts)
		} else {
			res, err = s.router.OracleSyncSince(venue, haveEpoch, haveInserts)
		}
		if err != nil {
			return errorResponse(err)
		}
		m := s.met
		switch {
		case res.Unchanged:
			if m != nil {
				m.syncUnchanged.Inc()
			}
			return msgOracleSyncNone, encodeOracleVersion(res.Epoch, res.Inserts)
		case res.Delta != nil:
			if m != nil {
				m.syncDelta.Inc()
				m.syncBytes.Add(uint64(len(res.Delta)))
			}
			return msgOracleSyncDelta, res.Delta
		default:
			if m != nil {
				m.syncFull.Inc()
				m.syncBytes.Add(uint64(len(res.Blob)))
			}
			return msgOracleSyncFull, encodeOracleSyncFull(res.Epoch, res.Blob)
		}
	case msgStats:
		// Legacy count-only response: deployed clients require exactly 8
		// bytes here. The extended report lives under msgStatsFull.
		total := 0
		if venue == "" {
			total = s.db.Len()
		} else {
			total = s.router.Len(venue)
		}
		ack := make([]byte, 8)
		binary.LittleEndian.PutUint64(ack, uint64(total))
		return msgStatsResult, ack
	case msgStatsFull:
		if venue == "" {
			return msgStatsResult, encodeDBStats(s.db.Stats())
		}
		return msgStatsResult, encodeDBStats(s.router.Stats(venue))
	case msgGetMetrics:
		if s.reg == nil {
			return errorResponse(errors.New("metrics not enabled on this server"))
		}
		blob, err := json.Marshal(s.reg.Report())
		if err != nil {
			return errorResponse(err)
		}
		return msgMetricsResult, blob
	default:
		return errorResponse(fmt.Errorf("unknown message type %d", typ))
	}
}

func errorResponse(err error) (byte, []byte) {
	return msgError, encodeErrorPayload(err)
}
