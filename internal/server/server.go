package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"visualprint/internal/obs"
)

// Server accepts VisualPrint protocol connections and serves a Database.
//
// Connections negotiate a protocol version at open (see wire.go). On a v2
// connection every request carries a uint32 ID and is dispatched on its own
// goroutine — bounded by a server-wide semaphore — while a single writer
// goroutine serializes the responses, so one slow localization query does
// not stall the pipelined requests behind it. Legacy v1 connections keep
// the original sequential read-dispatch-write loop, which preserves their
// implicit response ordering.
type Server struct {
	db *Database
	ln net.Listener

	// sem bounds concurrently executing request handlers across all
	// connections; nil means unbounded (direct ServeConn use).
	sem chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	// Log receives connection-level errors; Serve defaults it to the
	// process logger (obs.Default); nil silences.
	Log *obs.Logger

	// Observability, wired by Serve (nil on a bare Server, e.g. direct
	// ServeConn construction in tests — instrumentation then no-ops and
	// the metrics RPC reports it disabled).
	reg *obs.Registry
	met *srvMetrics
}

// DefaultMaxInFlight returns the default bound on concurrently executing
// requests: enough to keep every core busy with headroom for requests
// blocked on the database write lock.
func DefaultMaxInFlight() int { return 4 * runtime.GOMAXPROCS(0) }

// Serve starts accepting connections on ln. It returns immediately; Close
// stops the accept loop and all connections.
func Serve(ln net.Listener, db *Database) *Server {
	s := &Server{
		db: db, ln: ln, conns: make(map[net.Conn]struct{}), Log: obs.Default(),
		sem: make(chan struct{}, DefaultMaxInFlight()),
	}
	// Route the database's own warnings (persistence, resource budgets)
	// through the server's logger so one knob silences or redirects both —
	// unless the owner already chose a logger. The indirection through
	// s.logf keeps a later `s.Log = nil` effective for both.
	db.setLoggerDefault(obs.FuncLogger(s.logf))
	// A networked server is always observable: requests are counted and
	// traced, and the metrics RPC answers from this registry.
	s.reg = db.EnableObs()
	s.met = newSrvMetrics(s.reg)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Registry returns the server's metrics registry (nil when the server was
// not built by Serve). The debug HTTP listener mounts it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ListenAndServe listens on addr (TCP) and serves db.
func ListenAndServe(addr string, db *Database) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, db), nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server and closes every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) logf(format string, args ...any) {
	s.Log.Warnf(format, args...)
}

func (s *Server) acquire() {
	if s.sem != nil {
		s.sem <- struct{}{}
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// ServeConn handles one protocol connection until EOF or error. It is
// exported so tests and single-process deployments can drive the protocol
// over net.Pipe. The first four bytes of the connection select the framing:
// the v2 magic, or a v1 frame length from a legacy client.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[:]) != protoMagic {
		s.serveV1(conn, binary.LittleEndian.Uint32(hdr[:]))
		return
	}
	var ver [1]byte
	if _, err := io.ReadFull(conn, ver[:]); err != nil {
		return
	}
	if ver[0] != protoVersion2 {
		writeFrame(conn, msgError, encodeErrorPayload(
			fmt.Errorf("unsupported protocol version %d", ver[0])))
		return
	}
	s.serveV2(conn)
}

// serveV1 is the legacy sequential loop: one request, one response, in
// order. firstLen is the already-consumed length prefix of the first frame.
func (s *Server) serveV1(conn net.Conn, firstLen uint32) {
	n := firstLen
	for {
		typ, payload, err := readFrameBody(conn, n)
		if err != nil {
			return // EOF or broken connection
		}
		rt, resp := s.handle(typ, payload)
		if err := writeFrame(conn, rt, resp); err != nil {
			s.logf("visualprint server: %v", err)
			return
		}
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n = binary.LittleEndian.Uint32(hdr[:])
	}
}

// v2Response is one response queued for the connection's writer goroutine.
type v2Response struct {
	id      uint32
	typ     byte
	payload []byte
}

// serveV2 is the multiplexed loop: requests are dispatched concurrently
// (bounded by the server semaphore) and responses are serialized through a
// single writer goroutine, tagged with the ID of the request they answer.
// Response order is therefore completion order, not request order.
func (s *Server) serveV2(conn net.Conn) {
	out := make(chan v2Response, 32)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		failed := false
		for r := range out {
			if failed {
				continue // drain so handlers never block on a dead writer
			}
			if err := writeFrameV2(conn, r.id, r.typ, r.payload); err != nil {
				s.logf("visualprint server: %v", err)
				failed = true
				conn.Close() // unblocks the read loop below
			}
		}
	}()
	var handlers sync.WaitGroup
	for {
		id, typ, payload, err := readFrameV2(conn)
		if err != nil {
			break // EOF or broken connection
		}
		s.acquire()
		handlers.Add(1)
		go func(id uint32, typ byte, payload []byte) {
			defer handlers.Done()
			defer s.release()
			rt, resp := s.handle(typ, payload)
			out <- v2Response{id: id, typ: rt, payload: resp}
		}(id, typ, payload)
	}
	handlers.Wait()
	close(out)
	<-writerDone
}

// handle executes one request and returns the response frame type and
// payload. Framing and request IDs belong to the caller; handle never
// fails — request errors become msgError responses. It wraps dispatch
// with the wire-level instrumentation: request counts and latency per
// message type, payload bytes in each direction, the in-flight gauge and
// error-code counters.
func (s *Server) handle(typ byte, payload []byte) (byte, []byte) {
	m := s.met
	if m == nil {
		return s.dispatch(typ, payload)
	}
	m.inflight.Add(1)
	m.bytesIn.Add(uint64(len(payload)))
	start := time.Now()
	rt, resp := s.dispatch(typ, payload)
	m.record(typ, start, rt, resp)
	m.inflight.Add(-1)
	return rt, resp
}

// dispatch routes one request to the database.
func (s *Server) dispatch(typ byte, payload []byte) (byte, []byte) {
	switch typ {
	case msgGetOracle:
		blob, err := s.db.OracleBlob()
		if err != nil {
			return errorResponse(err)
		}
		return msgOracleBlob, blob
	case msgIngest:
		ms, err := decodeMappings(payload)
		if err != nil {
			return errorResponse(err)
		}
		if err := s.db.Ingest(ms); err != nil {
			return errorResponse(err)
		}
		ack := make([]byte, 8)
		binary.LittleEndian.PutUint64(ack, uint64(s.db.Len()))
		return msgIngestAck, ack
	case msgQuery:
		intr, kpData, err := decodeQueryHeader(payload)
		if err != nil {
			return errorResponse(err)
		}
		kps, err := decodeKeypoints(kpData)
		if err != nil {
			return errorResponse(err)
		}
		res, err := s.db.Locate(kps, intr)
		if err != nil {
			return errorResponse(err)
		}
		return msgQueryResult, encodeLocateResult(res)
	case msgGetDiff:
		if len(payload) != 8 {
			return errorResponse(errors.New("bad diff request"))
		}
		since := binary.LittleEndian.Uint64(payload)
		diff, ok, err := s.db.OracleDiff(since)
		if err != nil {
			return errorResponse(err)
		}
		if ok {
			return msgDiffBlob, diff
		}
		// Version no longer retained: fall back to the full blob.
		blob, err := s.db.OracleBlob()
		if err != nil {
			return errorResponse(err)
		}
		return msgOracleBlob, blob
	case msgStats:
		// Legacy count-only response: deployed clients require exactly 8
		// bytes here. The extended report lives under msgStatsFull.
		ack := make([]byte, 8)
		binary.LittleEndian.PutUint64(ack, uint64(s.db.Len()))
		return msgStatsResult, ack
	case msgStatsFull:
		return msgStatsResult, encodeDBStats(s.db.Stats())
	case msgGetMetrics:
		if s.reg == nil {
			return errorResponse(errors.New("metrics not enabled on this server"))
		}
		blob, err := json.Marshal(s.reg.Report())
		if err != nil {
			return errorResponse(err)
		}
		return msgMetricsResult, blob
	default:
		return errorResponse(fmt.Errorf("unknown message type %d", typ))
	}
}

func errorResponse(err error) (byte, []byte) {
	return msgError, encodeErrorPayload(err)
}
