package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
)

// Server accepts VisualPrint protocol connections and serves a Database.
type Server struct {
	db *Database
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	// Logf receives connection-level errors; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// Serve starts accepting connections on ln. It returns immediately; Close
// stops the accept loop and all connections.
func Serve(ln net.Listener, db *Database) *Server {
	s := &Server{db: db, ln: ln, conns: make(map[net.Conn]struct{}), Logf: log.Printf}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// ListenAndServe listens on addr (TCP) and serves db.
func ListenAndServe(addr string, db *Database) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, db), nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server and closes every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ServeConn handles one protocol connection until EOF or error. It is
// exported so tests and single-process deployments can drive the protocol
// over net.Pipe.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return // EOF or broken connection
		}
		if err := s.dispatch(conn, typ, payload); err != nil {
			if s.Logf != nil {
				s.Logf("visualprint server: %v", err)
			}
			return
		}
	}
}

func (s *Server) dispatch(conn net.Conn, typ byte, payload []byte) error {
	switch typ {
	case msgGetOracle:
		blob, err := s.db.OracleBlob()
		if err != nil {
			return writeError(conn, err)
		}
		return writeFrame(conn, msgOracleBlob, blob)
	case msgIngest:
		ms, err := decodeMappings(payload)
		if err != nil {
			return writeError(conn, err)
		}
		if err := s.db.Ingest(ms); err != nil {
			return writeError(conn, err)
		}
		ack := make([]byte, 4)
		n := s.db.Len()
		ack[0] = byte(n)
		ack[1] = byte(n >> 8)
		ack[2] = byte(n >> 16)
		ack[3] = byte(n >> 24)
		return writeFrame(conn, msgIngestAck, ack)
	case msgQuery:
		intr, kpData, err := decodeQueryHeader(payload)
		if err != nil {
			return writeError(conn, err)
		}
		kps, err := decodeKeypoints(kpData)
		if err != nil {
			return writeError(conn, err)
		}
		res, err := s.db.Locate(kps, intr)
		if err != nil {
			return writeError(conn, err)
		}
		return writeFrame(conn, msgQueryResult, encodeLocateResult(res))
	case msgGetDiff:
		if len(payload) != 8 {
			return writeError(conn, errors.New("bad diff request"))
		}
		var since uint64
		for i := 0; i < 8; i++ {
			since |= uint64(payload[i]) << (8 * i)
		}
		diff, ok, err := s.db.OracleDiff(since)
		if err != nil {
			return writeError(conn, err)
		}
		if ok {
			return writeFrame(conn, msgDiffBlob, diff)
		}
		// Version no longer retained: fall back to the full blob.
		blob, err := s.db.OracleBlob()
		if err != nil {
			return writeError(conn, err)
		}
		return writeFrame(conn, msgOracleBlob, blob)
	case msgStats:
		buf := make([]byte, 8)
		n := uint64(s.db.Len())
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (8 * i))
		}
		return writeFrame(conn, msgStatsResult, buf)
	default:
		return writeError(conn, fmt.Errorf("unknown message type %d", typ))
	}
}

func writeError(conn net.Conn, err error) error {
	return writeFrame(conn, msgError, []byte(err.Error()))
}

// errRemote wraps a server-reported error.
type errRemote struct{ msg string }

func (e errRemote) Error() string { return "visualprint server: " + e.msg }

// IsRemote reports whether err was returned by the server (as opposed to a
// transport failure).
func IsRemote(err error) bool {
	var r errRemote
	return errors.As(err, &r)
}
