package server

// Failure-injection tests for the paper's section 5 failure modes: "It can
// fail due to: (1) a lack of ample features in the query image, such as
// hallway with white walls; (2) insufficient wardriving — the environment
// at a location may not be well fingerprinted; (3) false positives in
// keypoint matching — some environmental repetition might not be captured
// during wardriving; and (4) dead reckoning errors during wardriving."
// Each mode must fail *safely*: a diagnosable error or degraded accuracy,
// never a panic or a silently confident wrong answer.

import (
	"context"
	"testing"

	"visualprint/internal/scene"
	"visualprint/internal/sift"
	"visualprint/internal/wardrive"
)

// blankWallVenue is a featureless room: white walls, no art, no fixtures.
func blankWallVenue() *scene.World {
	return scene.Build(scene.VenueSpec{
		Name: "blank", Width: 14, Depth: 10, Height: 3,
		UniqueFrac: 0, RepeatedFrac: 0, // every panel flat
		Seed: 31, TileSize: 10, PanelWidth: 2, // near-featureless floor too
	})
}

func TestFailureModeFeaturelessQuery(t *testing.T) {
	// Mode 1: a white-wall query frame yields almost no keypoints, and the
	// query must fail with a diagnosable error rather than a bogus fix.
	w := testVenue()
	s, _ := startServer(t)
	c := dialClient(t, s)
	if _, err := c.Ingest(context.Background(), wardriveMappings(t, w)[:600]); err != nil {
		t.Fatal(err)
	}
	blank := blankWallVenue()
	cam := scene.DefaultCamera(160, 120)
	cam.Pos.X, cam.Pos.Y, cam.Pos.Z = 7, 1.5, 5
	fr, err := scene.Render(blank, cam)
	if err != nil {
		t.Fatal(err)
	}
	kps := sift.Detect(fr.Image, sift.DefaultConfig())
	if len(kps) > 10 {
		t.Fatalf("blank venue produced %d keypoints; scenario invalid", len(kps))
	}
	if _, err := c.Query(context.Background(), kps, IntrinsicsForTest(cam)); err == nil {
		t.Error("featureless query returned a confident fix")
	} else if !IsRemote(err) {
		t.Errorf("want a remote (server-diagnosed) error, got %v", err)
	}
}

func TestFailureModeInsufficientWardriving(t *testing.T) {
	if testing.Short() {
		t.Skip("wardriving is slow")
	}
	// Mode 2: the database covers a DIFFERENT venue than the query. The
	// server must either find no consensus or return a poor match count —
	// there is no correct answer available.
	mapped := testVenue()
	s, _ := startServer(t)
	c := dialClient(t, s)
	if _, err := c.Ingest(context.Background(), wardriveMappings(t, mapped)[:800]); err != nil {
		t.Fatal(err)
	}
	other := scene.Build(scene.VenueSpec{
		Name: "elsewhere", Width: 16, Depth: 10, Height: 3,
		UniqueFrac: 0.7, RepeatedFrac: 0.1,
		Seed: 999, TileSize: 0.5, PanelWidth: 2, // different seed: different art
	})
	pois := other.POIsOfKind(scene.POIUnique)
	cam := scene.CameraFacing(other, pois[0], 3, 0, 0, 200, 150)
	fr, err := scene.Render(other, cam)
	if err != nil {
		t.Fatal(err)
	}
	sc := sift.DefaultConfig()
	sc.ContrastThreshold = 0.02
	kps := sift.Detect(fr.Image, sc)
	res, err := c.Query(context.Background(), kps, IntrinsicsForTest(cam))
	if err == nil && res.Matched > len(kps)/2 {
		t.Errorf("unmapped venue produced a confident match: %+v", res)
	}
}

func TestFailureModeDriftedMapDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("wardriving is slow")
	}
	// Mode 4: heavy dead-reckoning error in the map shifts localization
	// results but must not break the pipeline; error grows roughly with
	// the injected drift, never into NaN or out-of-world fixes.
	w := testVenue()
	cfg := wardrive.DefaultConfig()
	cfg.ImageW, cfg.ImageH = 200, 150
	cfg.StepMeters = 2.5
	cfg.RowSpacing = 4
	cfg.MaxKeypointsPerFrame = 250
	cfg.CloudStride = 0
	cfg.Drift = wardrive.DriftModel{PosStddevPerMeter: 0.15, Seed: 5} // severe
	snaps, err := wardrive.Walk(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(DefaultDatabaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ms []Mapping
	for _, o := range wardrive.Observations(snaps) {
		m := Mapping{Pos: o.Est}
		copy(m.Desc[:], o.Keypoint.Desc[:])
		ms = append(ms, m)
	}
	if err := db.Ingest(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	pois := w.POIsOfKind(scene.POIUnique)
	sc := sift.DefaultConfig()
	sc.ContrastThreshold = 0.02
	for trial := 0; trial < 2 && trial < len(pois); trial++ {
		cam := scene.CameraFacing(w, pois[trial], 3, 0.1, 0, 200, 150)
		fr, err := scene.Render(w, cam)
		if err != nil {
			t.Fatal(err)
		}
		kps := sift.Detect(fr.Image, sc)
		res, err := db.Locate(context.Background(), kps, IntrinsicsForTest(cam))
		if err != nil {
			continue // acceptable: no consensus under severe drift
		}
		p := res.Position
		if p.X != p.X || p.Y != p.Y || p.Z != p.Z { // NaN check
			t.Fatal("NaN position under drift")
		}
		lo, hi, _ := db.Bounds()
		if p.X < lo.X-1 || p.X > hi.X+1 || p.Z < lo.Z-1 || p.Z > hi.Z+1 {
			t.Errorf("position %v far outside the mapped bounds", p)
		}
	}
}
